package rart

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// testEngine builds a one-node cluster with a root, returning the engine
// and a reader for the root node.
func testEngine(t *testing.T, cfg Config) (*Engine, func() *Node) {
	t.Helper()
	f := fabric.New(fabric.InstantConfig())
	node := f.AddNode(64 << 20)
	ring := consistenthash.New([]mem.NodeID{node}, 8)
	boot := mem.NewAllocator(f.Regions(), 0)
	rootAddr, err := BootstrapRoot(f.Region(node), boot, node)
	if err != nil {
		t.Fatal(err)
	}
	c := f.NewClient()
	e := NewEngine(c, mem.NewAllocator(c, 0), ring, cfg)
	readRoot := func() *Node {
		n, err := e.ReadNode(rootAddr, wire.Node256)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return e, readRoot
}

func mustPut(t *testing.T, e *Engine, root func() *Node, key, val string) {
	t.Helper()
	for i := 0; i < 32; i++ {
		_, err := e.PutFrom(root(), []byte(key), []byte(val), PutUpsert, NopHooks{})
		if err == nil {
			return
		}
		if !errors.Is(err, ErrRestart) {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	t.Fatalf("put %q: retries exhausted", key)
}

func mustGet(t *testing.T, e *Engine, root func() *Node, key string) (string, bool) {
	t.Helper()
	leaf, err := e.SearchFrom(root(), []byte(key), NopHooks{})
	if err != nil {
		t.Fatalf("search %q: %v", key, err)
	}
	if leaf == nil || !bytes.Equal(leaf.Key, []byte(key)) {
		return "", false
	}
	return string(leaf.Value), true
}

func TestEnginePutSearchDirect(t *testing.T) {
	e, root := testEngine(t, Config{})
	mustPut(t, e, root, "alpha", "1")
	mustPut(t, e, root, "alps", "2")
	mustPut(t, e, root, "al", "3")
	for k, want := range map[string]string{"alpha": "1", "alps": "2", "al": "3"} {
		got, ok := mustGet(t, e, root, k)
		if !ok || got != want {
			t.Errorf("get %q = %q,%v", k, got, ok)
		}
	}
	if _, ok := mustGet(t, e, root, "alp"); ok {
		t.Error("phantom intermediate prefix")
	}
}

func TestEngineLongChainConversion(t *testing.T) {
	// A shared prefix much longer than MaxPartial forces convertLeaf to
	// build a chain of inner nodes, each with a new full prefix.
	e, root := testEngine(t, Config{})
	long := string(bytes.Repeat([]byte("p"), 3*wire.MaxPartial+5))
	var newPrefixes [][]byte
	h := recordingHooks{onNew: func(p []byte, n *Node) { newPrefixes = append(newPrefixes, append([]byte(nil), p...)) }}

	if _, err := e.PutFrom(root(), []byte(long+"A"), []byte("a"), PutUpsert, h); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PutFrom(root(), []byte(long+"B"), []byte("b"), PutUpsert, h); err != nil {
		t.Fatal(err)
	}
	if len(newPrefixes) < 3 {
		t.Errorf("expected a chain of ≥3 new inner nodes for a %d-byte shared prefix, got %d",
			len(long), len(newPrefixes))
	}
	// Every chain node's partial must respect MaxPartial.
	for _, p := range newPrefixes {
		n, err := e.SearchChainNode(root(), p)
		if err != nil {
			t.Fatalf("walking to chain node %q: %v", p, err)
		}
		if n == nil {
			t.Fatalf("chain node %q unreachable", p)
		}
		if int(n.Hdr.PartialLen) > wire.MaxPartial {
			t.Errorf("chain node partial %d exceeds max", n.Hdr.PartialLen)
		}
	}
	for _, k := range []string{long + "A", long + "B"} {
		if _, ok := mustGet(t, e, root, k); !ok {
			t.Errorf("key %q lost", k)
		}
	}
}

type recordingHooks struct {
	onNew    func(prefix []byte, n *Node)
	onSwitch func(prefix []byte, old, grown *Node)
}

func (h recordingHooks) NewInner(p []byte, n *Node) error {
	if h.onNew != nil {
		h.onNew(p, n)
	}
	return nil
}

func (h recordingHooks) TypeSwitched(p []byte, old, grown *Node) error {
	if h.onSwitch != nil {
		h.onSwitch(p, old, grown)
	}
	return nil
}

func (recordingHooks) SawNode([]byte, *Node) {}

// SearchChainNode walks from start to the inner node with the exact full
// prefix, for white-box tests.
func (e *Engine) SearchChainNode(start *Node, prefix []byte) (*Node, error) {
	n := start
	for {
		if int(n.Hdr.Depth) == len(prefix) {
			return n, nil
		}
		if int(n.Hdr.Depth) > len(prefix) {
			return nil, nil
		}
		slot, _, ok := n.Child(prefix[n.Hdr.Depth])
		if !ok || slot.Leaf {
			return nil, nil
		}
		child, err := e.ReadNode(slot.Addr, slot.ChildType)
		if err != nil {
			return nil, err
		}
		n = child
	}
}

func TestEngineTypeSwitchHooks(t *testing.T) {
	e, root := testEngine(t, Config{})
	var switches []string
	h := recordingHooks{onSwitch: func(p []byte, old, grown *Node) {
		switches = append(switches, fmt.Sprintf("%q:%v→%v", p, old.Hdr.Type, grown.Hdr.Type))
		if old.Addr == grown.Addr {
			t.Error("type switch did not move the node")
		}
		if old.Hdr.PrefixHash != grown.Hdr.PrefixHash {
			t.Error("type switch changed the prefix hash")
		}
	}}
	for i := 0; i < 60; i++ {
		k := []byte{'t', byte(i), 'z'}
		if _, err := e.PutFrom(root(), k, []byte{1}, PutUpsert, h); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// 60 children force N4→N16→N48→N256.
	if len(switches) != 3 {
		t.Errorf("switches = %v, want 3", switches)
	}
	// The retired originals must be Invalid.
	for i := 0; i < 60; i++ {
		if _, ok := mustGet(t, e, root, string([]byte{'t', byte(i), 'z'})); !ok {
			t.Fatalf("key %d lost across type switches", i)
		}
	}
}

func TestEnginePrealloc256NeverSwitches(t *testing.T) {
	e, root := testEngine(t, Config{Prealloc256: true})
	h := recordingHooks{onSwitch: func(p []byte, old, grown *Node) {
		t.Errorf("type switch under Prealloc256: %q", p)
	}}
	for i := 0; i < 256; i++ {
		k := []byte{'p', byte(i), 'z'}
		if _, err := e.PutFrom(root(), k, []byte{1}, PutUpsert, h); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 256; i++ {
		if _, ok := mustGet(t, e, root, string([]byte{'p', byte(i), 'z'})); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestEngineModes(t *testing.T) {
	e, root := testEngine(t, Config{})
	mustPut(t, e, root, "mode", "v1")
	// InsertOnly on an existing key must not overwrite.
	existed, err := e.PutFrom(root(), []byte("mode"), []byte("v2"), PutInsertOnly, NopHooks{})
	if err != nil || !existed {
		t.Fatalf("insert-only: %v %v", existed, err)
	}
	if got, _ := mustGet(t, e, root, "mode"); got != "v1" {
		t.Errorf("insert-only overwrote: %q", got)
	}
	// UpdateOnly on a missing key must not create.
	existed, err = e.PutFrom(root(), []byte("missing"), []byte("x"), PutUpdateOnly, NopHooks{})
	if err != nil || existed {
		t.Fatalf("update-only: %v %v", existed, err)
	}
	if _, ok := mustGet(t, e, root, "missing"); ok {
		t.Error("update-only created a key")
	}
}

func TestEngineDeleteEOLKeepsChildren(t *testing.T) {
	e, root := testEngine(t, Config{})
	mustPut(t, e, root, "pre", "1")
	mustPut(t, e, root, "prefix", "2")
	mustPut(t, e, root, "preface", "3")
	ok, err := e.DeleteFrom(root(), []byte("pre"), NopHooks{})
	if err != nil || !ok {
		t.Fatalf("delete EOL: %v %v", ok, err)
	}
	if _, found := mustGet(t, e, root, "pre"); found {
		t.Error("EOL key survived delete")
	}
	for _, k := range []string{"prefix", "preface"} {
		if _, found := mustGet(t, e, root, k); !found {
			t.Errorf("%q lost after EOL delete", k)
		}
	}
}

func TestEngineNeedParentSignal(t *testing.T) {
	// A put starting from a node whose compressed path diverges from the
	// key must report ErrNeedParent when no parent is known.
	e, root := testEngine(t, Config{})
	mustPut(t, e, root, "abcdXXX1", "1")
	mustPut(t, e, root, "abcdXXX2", "2")
	// Find the inner node with prefix "abcdXXX" and use it as a jump
	// start for a key that diverges inside its coverage.
	n, err := e.SearchChainNode(root(), []byte("abcdXXX"))
	if err != nil || n == nil {
		t.Fatalf("chain node missing: %v", err)
	}
	_, err = e.PutFrom(n, []byte("abcdYYY"), []byte("x"), PutUpsert, NopHooks{})
	if !errors.Is(err, ErrNeedParent) {
		t.Errorf("divergent jump put returned %v, want ErrNeedParent", err)
	}
}

func TestEngineLeafRoundTripsBudget(t *testing.T) {
	// A put of a brand-new key under an existing node: leaf write (1) +
	// lock/read (1) + install+unlock (1), plus descent reads.
	f := fabric.New(fabric.DefaultConfig())
	node := f.AddNode(64 << 20)
	ring := consistenthash.New([]mem.NodeID{node}, 8)
	boot := mem.NewAllocator(f.Regions(), 0)
	rootAddr, err := BootstrapRoot(f.Region(node), boot, node)
	if err != nil {
		t.Fatal(err)
	}
	c := f.NewClient()
	e := NewEngine(c, mem.NewAllocator(c, 0), ring, Config{})
	root := func() *Node {
		n, err := e.ReadNode(rootAddr, wire.Node256)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Prime: two keys create the inner node.
	for _, k := range []string{"budget-a", "budget-b"} {
		if _, err := e.PutFrom(root(), []byte(k), []byte("v"), PutUpsert, NopHooks{}); err != nil {
			t.Fatal(err)
		}
	}
	start := root() // root read paid outside the measurement
	before := c.Stats()
	if _, err := e.PutFrom(start, []byte("budget-c"), []byte("v"), PutUpsert, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	d := c.Stats().Sub(before)
	// Descent: inner node read (1). Install: leaf write (1, slab alloc
	// amortized but the first costs 2 FAA RTs), lock+read (1),
	// slot+unlock (1). Allow slack for the allocator's slab reservation.
	if d.RoundTrips > 8 {
		t.Errorf("fresh-key install took %d round trips", d.RoundTrips)
	}
}
