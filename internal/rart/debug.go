package rart

import (
	"fmt"
	"strings"

	"sphinx/internal/wire"
)

// DumpPath walks from root toward key and renders every node and the
// final leaf for post-mortem debugging of stuck states in tests.
func (e *Engine) DumpPath(root *Node, key []byte) string {
	var b strings.Builder
	n := root
	for hops := 0; hops < 64; hops++ {
		fmt.Fprintf(&b, "node %v %v st=%v depth=%d partial=%q eol=%v\n",
			n.Addr, n.Hdr.Type, n.Hdr.Status, n.Hdr.Depth, n.Partial, n.EOL)
		m, full := MatchPartial(n, key)
		if !full {
			fmt.Fprintf(&b, "  partial mismatch at %d\n", m)
			return b.String()
		}
		depth := int(n.Hdr.Depth)
		var slot wire.Slot
		if len(key) == depth {
			slot = n.EOL
		} else {
			var ok bool
			slot, _, ok = n.Child(key[depth])
			if !ok {
				fmt.Fprintf(&b, "  no child for byte %#x\n", key[depth])
				return b.String()
			}
		}
		fmt.Fprintf(&b, "  slot: %+v\n", slot)
		if !slot.Present {
			return b.String()
		}
		if slot.Leaf {
			leafBuf := make([]byte, e.clampRead(slot.Addr, 4096))
			if err := e.C.Read(slot.Addr, leafBuf); err != nil {
				fmt.Fprintf(&b, "  leaf read error: %v\n", err)
				return b.String()
			}
			hdr := wire.DecodeLeafHeader(leUint64(leafBuf))
			k, v, _, ok := wire.DecodeLeaf(leafBuf)
			fmt.Fprintf(&b, "  leaf %v st=%v units=%d ok=%v key=%q val=%q\n",
				slot.Addr, hdr.Status, hdr.Units, ok, k, v)
			return b.String()
		}
		child, err := e.ReadNode(slot.Addr, slot.ChildType)
		if err != nil {
			fmt.Fprintf(&b, "  node read error: %v\n", err)
			return b.String()
		}
		n = child
	}
	return b.String()
}
