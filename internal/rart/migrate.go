// Online relocation primitives for elastic membership: copy a leaf or an
// inner node to a new owning memory node under the engine's ordinary
// lease-lock/status-field protocols, while concurrent clients keep
// serving. The migrator (internal/core) walks the tree and calls these
// for every object whose ring owner changed; everything here is
// idempotent at the sweep level — a relocation that loses a race simply
// reports a restart and the next sweep retries.
package rart

import (
	"bytes"
	"fmt"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// RelocateLeaf moves the leaf reached from node n along key to the target
// memory node: copy the image to a fresh allocation on target, swing n's
// slot, retire the old leaf — slot swing, retirement and node unlock in
// ONE doorbell batch, exactly like an out-of-place update, so a fault
// cannot leave the old leaf Idle at an address other CNs still have
// cached. Reports whether a copy actually moved.
//
// Concurrency: the node lease serializes the slot against installs,
// deletes and out-of-place updates, but in-place updates touch only the
// leaf header, so the image is re-read UNDER the leaf header lock — an
// equal-length in-place update between the first read and the lock CAS
// would otherwise be silently dropped by copying the stale snapshot.
// Lost races surface as ErrRestart for the sweep to retry.
func (e *Engine) RelocateLeaf(n *Node, key []byte, target mem.NodeID) (bool, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	locked, err := e.lockVerified(n)
	if err != nil {
		return false, err
	}
	depth := int(locked.Hdr.Depth)
	if depth > len(key) {
		// Restructured past this key since the walk snapshot.
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, fmt.Errorf("relocate: node %v outgrew key: %w", locked.Addr, ErrRestart)
	}
	eol := len(key) == depth
	var slot wire.Slot
	var idx int
	if eol {
		slot = locked.EOL
	} else {
		var ok bool
		if slot, idx, ok = locked.Child(key[depth]); !ok {
			slot = wire.Slot{}
		}
	}
	if !slot.Present || !slot.Leaf || slot.Addr.Node() == target {
		// Deleted, converted to a subtree, or already home: nothing to move.
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, nil
	}
	leaf, err := e.ReadLeaf(slot.Addr)
	if err != nil {
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, err
	}
	if leaf.Status == wire.StatusInvalid || !bytes.Equal(leaf.Key, key) {
		// An interrupted delete (completeDelete's business) or a collided
		// edge; either way not this key's leaf to move.
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, nil
	}
	// Lock the leaf header so a concurrent in-place update cannot slip
	// between our snapshot and the copy.
	idleWord := wire.LeafHeader{
		Status: wire.StatusIdle, Units: leaf.Units,
		KeyLen: uint16(len(leaf.Key)), ValLen: uint32(len(leaf.Value)),
	}.Encode()
	old, err := e.C.CompareSwap(slot.Addr, idleWord, wire.WithStatus(idleWord, wire.StatusLocked))
	if err != nil {
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, err
	}
	if old != idleWord {
		// A writer beat us to the leaf; retry on a later sweep.
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, fmt.Errorf("relocate: leaf %v contended: %w", slot.Addr, ErrRestart)
	}
	unlockLeaf := func() error {
		_, cerr := e.C.CompareSwap(slot.Addr, wire.WithStatus(idleWord, wire.StatusLocked), idleWord)
		return cerr
	}
	// Re-read the image under the lock: it is stable now (writers CAS the
	// header before touching bytes, and we hold it).
	buf := e.grabBuf(uint64(leaf.Units) * wire.LeafUnit)
	if err := e.C.Read(slot.Addr, buf); err != nil {
		e.ReleaseBuf(buf)
		if lerr := unlockLeaf(); lerr != nil {
			return false, lerr
		}
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, err
	}
	k, v, _, ok := wire.DecodeLeaf(buf)
	if !ok || !bytes.Equal(k, key) {
		e.ReleaseBuf(buf)
		if lerr := unlockLeaf(); lerr != nil {
			return false, lerr
		}
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, fmt.Errorf("relocate: leaf %v unstable under lock: %w", slot.Addr, ErrRestart)
	}
	img := wire.EncodeLeaf(wire.StatusIdle, k, v)
	e.ReleaseBuf(buf)
	newAddr, err := e.Alloc.Alloc(target, mem.ClassLeaf, uint64(len(img)))
	if err == nil {
		err = e.C.Write(newAddr, img)
	}
	if err != nil {
		if lerr := unlockLeaf(); lerr != nil {
			return false, lerr
		}
		if uerr := e.unlock(locked); uerr != nil {
			return false, uerr
		}
		return false, err
	}
	newSlot := wire.Slot{Present: true, Leaf: true, Addr: newAddr}
	var swing fabric.Op
	if eol {
		swing = fabric.Op{Kind: fabric.Write, Addr: locked.EOLAddr(), Data: leBytes(newSlot.Encode())}
	} else {
		newSlot.KeyByte = slot.KeyByte
		swing = fabric.Op{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(newSlot.Encode())}
	}
	oldHdr := wire.LeafHeader{
		Status: wire.StatusInvalid,
		Units:  leaf.Units,
		KeyLen: uint16(len(k)),
		ValLen: uint32(len(v)),
	}
	// Commit: swing + retirement + unlock in one doorbell. The retirement
	// releases the leaf lock too (Invalid supersedes Locked); readers and
	// remote leaf-address caches holding the old address see Invalid and
	// refute/unlearn through their usual trust-but-verify paths.
	if err := e.completeBatch([]fabric.Op{
		swing,
		{Kind: fabric.Write, Addr: slot.Addr, Data: leBytes(oldHdr.Encode())},
		e.UnlockOp(locked),
	}); err != nil {
		return false, err
	}
	return true, nil
}

// RelocateNode copies inner node child (whose full prefix is prefix and
// whose parent slot lives in parent) onto the target memory node,
// repoints the parent, publishes the address change through publish (the
// same idempotent hook a type switch uses — it must move the node's hash
// entry to the copy), and retires the original so readers holding stale
// pointers restart. Returns the relocated copy for the caller to continue
// its walk in, and whether a move happened.
//
// The protocol is the grow-and-install publication with the type kept:
// both nodes locked, parent slot verified, swing + parent unlock in one
// batch, hook to completion, then invalidation — the original's lease is
// held until after the hook lands, so no competing type switch can read
// the old address in between.
func (e *Engine) RelocateNode(parent, child *Node, prefix []byte, target mem.NodeID, publish func(old, moved *Node) error) (*Node, bool, error) {
	if child.Addr.Node() == target {
		return nil, false, nil
	}
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	lockedChild, err := e.lockVerified(child)
	if err != nil {
		return nil, false, err
	}
	lockedParent, err := e.lockVerified(parent)
	if err != nil {
		if uerr := e.unlock(lockedChild); uerr != nil {
			return nil, false, uerr
		}
		return nil, false, err
	}
	if int(lockedParent.Hdr.Depth) >= len(prefix) {
		if uerr := e.unlockBoth(lockedParent, lockedChild); uerr != nil {
			return nil, false, uerr
		}
		return nil, false, fmt.Errorf("relocate: parent %v outgrew prefix: %w", lockedParent.Addr, ErrRestart)
	}
	edge := prefix[lockedParent.Hdr.Depth]
	ps, idx, ok := lockedParent.Child(edge)
	if !ok || ps.Leaf || ps.Addr != lockedChild.Addr {
		if uerr := e.unlockBoth(lockedParent, lockedChild); uerr != nil {
			return nil, false, uerr
		}
		return nil, false, fmt.Errorf("relocate: parent slot moved on %v: %w", lockedParent.Addr, ErrRestart)
	}

	// Clone the locked image at the same type: fresh lease, Idle status.
	clone := &Node{
		Hdr:     lockedChild.Hdr,
		EOL:     lockedChild.EOL,
		Partial: append([]byte(nil), lockedChild.Partial...),
		Slots:   append([]uint64(nil), lockedChild.Slots...),
	}
	if lockedChild.Index != nil {
		clone.Index = append([]byte(nil), lockedChild.Index...)
	}
	clone.Hdr.Status = wire.StatusIdle
	clone.HdrWord = clone.Hdr.Encode()
	clone.LeaseWord = 0
	addr, err := e.Alloc.Alloc(target, mem.ClassInner, e.nodeAllocSize(clone.Hdr.Type))
	if err == nil {
		clone.Addr = addr
		err = e.C.Write(addr, clone.Encode())
	}
	if err != nil {
		if uerr := e.unlockBoth(lockedParent, lockedChild); uerr != nil {
			return nil, false, uerr
		}
		return nil, false, err
	}
	newSlot := wire.Slot{Present: true, KeyByte: edge, ChildType: clone.Hdr.Type, Addr: clone.Addr}
	// Commit point: from here the publication runs to completion, exactly
	// like a type switch — abandoning it midway would leave the retired
	// original reachable through its stale hash entry.
	if err := e.completeBatch([]fabric.Op{
		{Kind: fabric.Write, Addr: lockedParent.SlotAddr(idx), Data: leBytes(newSlot.Encode())},
		e.UnlockOp(lockedParent),
	}); err != nil {
		return nil, false, err
	}
	if err := e.completeHook(func() error { return publish(lockedChild, clone) }); err != nil {
		return nil, false, err
	}
	if err := e.completeBatch([]fabric.Op{e.InvalidateOp(lockedChild)}); err != nil {
		return nil, false, err
	}
	return clone, true, nil
}
