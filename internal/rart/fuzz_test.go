package rart

import (
	"testing"

	"sphinx/internal/wire"
)

// FuzzDecodeNode feeds arbitrary bytes to the inner-node decoder: remote
// reads can observe torn or (via collided hash entries) entirely wrong
// memory, and the decoder must fail cleanly rather than panic.
func FuzzDecodeNode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, wire.SlotBase))
	n := NewNode(wire.Node16, []byte("seedpref"), 4)
	n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: 'x', Addr: 64})
	f.Add(n.Encode())
	big := NewNode(wire.Node256, []byte("q"), 1).Encode()
	f.Add(big)
	torn := append([]byte(nil), big...)
	copy(torn[100:], n.Encode())
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := Decode(0, data)
		if err != nil {
			return
		}
		// Whatever decoded must be navigable without panics.
		for b := 0; b < 256; b++ {
			node.Child(byte(b))
		}
		node.Children()
		node.NumChildren()
		_ = node.Encode()
		MatchPartial(node, []byte("anything"))
		OnPath(node, []byte("anything at all"))
	})
}
