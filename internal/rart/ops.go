package rart

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// Hooks let an index system react to tree events during shared operations.
// Sphinx maintains its inner-node hash table and filter cache through
// these; the baselines use NopHooks.
type Hooks interface {
	// NewInner runs after a fresh inner node with a brand-new full prefix
	// has been published (leaf conversion or compressed-path split).
	NewInner(prefix []byte, n *Node) error
	// TypeSwitched runs after a node was replaced by a larger copy at a
	// new address. Never called in Prealloc256 mode, where every node is
	// born with the Node256 footprint and never moves.
	TypeSwitched(prefix []byte, old *Node, grown *Node) error
	// SawNode runs for every valid inner node visited during a descent,
	// with the node's full prefix (Sphinx learns these into its filter).
	SawNode(prefix []byte, n *Node)
}

// NopHooks ignores all events.
type NopHooks struct{}

// NewInner implements Hooks.
func (NopHooks) NewInner([]byte, *Node) error { return nil }

// TypeSwitched implements Hooks.
func (NopHooks) TypeSwitched([]byte, *Node, *Node) error { return nil }

// SawNode implements Hooks.
func (NopHooks) SawNode([]byte, *Node) {}

// PutMode selects upsert semantics for PutFrom.
type PutMode int

// Put modes.
const (
	PutUpsert     PutMode = iota // insert or overwrite
	PutInsertOnly                // report existed=true without writing if present
	PutUpdateOnly                // do nothing (existed=false) if absent
)

// freshType is the capacity class of newly created inner nodes: SMART-style
// preallocation births every node as a Node256 (stable addresses, no type
// switches, 2.1–3.0× memory); everything else starts at Node4 and grows.
func (e *Engine) freshType() wire.NodeType {
	if e.Cfg.Prealloc256 {
		return wire.Node256
	}
	return wire.Node4
}

// OnPath verifies that node n really lies on key's path: its partial
// matches and its stored 42-bit full-prefix hash equals the hash of the
// corresponding key prefix (the Fig. 3 metadata check). The hash check
// catches the window during a compressed-path split where a stale parent
// slot still points at a child whose shortened partial coincidentally
// matches unrelated key bytes. inconsistent means the observation must be
// retried; a plain non-match means the key is simply not below n.
func OnPath(n *Node, key []byte) (match bool, inconsistent bool) {
	if _, full := MatchPartial(n, key); !full {
		return false, false
	}
	if n.Hdr.PrefixHash != wire.PrefixHash42(key[:n.Hdr.Depth]) {
		return false, true
	}
	return true, false
}

// SearchFrom descends from start toward key and returns the leaf reached,
// or nil if the key is not in the tree. The returned leaf's Key can differ
// from the searched key only when start was located via a collided hash
// jump; callers that jump (Sphinx) compare and fall back (paper §III-B).
//
// The descent is lock-free; it returns ErrRestart when it observes a
// transient state (invalidated node or leaf) that a retry will resolve.
func (e *Engine) SearchFrom(start *Node, key []byte, h Hooks) (*Leaf, error) {
	n := start
	for hop := 0; hop < wire.MaxDepth+2; hop++ {
		if n.Hdr.Status == wire.StatusInvalid {
			return nil, fmt.Errorf("search: node %v invalid: %w", n.Addr, ErrRestart)
		}
		match, inconsistent := OnPath(n, key)
		if inconsistent {
			return nil, fmt.Errorf("search: node %v off path: %w", n.Addr, ErrRestart)
		}
		if !match {
			return nil, nil
		}
		depth := int(n.Hdr.Depth)
		h.SawNode(key[:depth], n)
		var slot wire.Slot
		if len(key) == depth {
			slot = n.EOL
			if !slot.Present {
				return nil, nil
			}
		} else {
			var ok bool
			slot, _, ok = n.Child(key[depth])
			if !ok {
				return nil, nil
			}
		}
		if slot.Leaf {
			leaf, err := e.ReadLeaf(slot.Addr)
			if err != nil {
				return nil, err
			}
			if leaf.Status == wire.StatusInvalid {
				// An invalid leaf still linked from a slot is a delete that
				// faulted between committing (invalidating the leaf) and
				// clearing the slot. Finish it; the key is absent.
				cleared, cerr := e.completeDelete(n, key, leaf.Addr)
				if cerr != nil {
					return nil, cerr
				}
				if cleared {
					return nil, nil
				}
				return nil, fmt.Errorf("search: leaf %v invalid: %w", leaf.Addr, ErrRestart)
			}
			return leaf, nil
		}
		child, err := e.ReadNode(slot.Addr, slot.ChildType)
		if err != nil {
			return nil, err
		}
		n = child
	}
	return nil, fmt.Errorf("%w: descent exceeded max depth", ErrRetriesExhausted)
}

// PutFrom inserts or updates key starting from the given node, per mode.
// It returns whether the key already existed. ErrRestart and ErrNeedParent
// bubble up for the caller to re-locate its start node and retry.
func (e *Engine) PutFrom(start *Node, key, value []byte, mode PutMode, h Hooks) (existed bool, err error) {
	n := start
	var parent *Node // nil while n == start
	for hop := 0; hop < wire.MaxDepth+2; hop++ {
		if n.Hdr.Status == wire.StatusInvalid {
			return false, fmt.Errorf("put: node %v invalid: %w", n.Addr, ErrRestart)
		}
		match, inconsistent := OnPath(n, key)
		if inconsistent {
			return false, fmt.Errorf("put: node %v off path: %w", n.Addr, ErrRestart)
		}
		if !match {
			// Key diverges inside n's compressed path (or ends within
			// it): split n's partial under a new parent node.
			if mode == PutUpdateOnly {
				return false, nil
			}
			if parent == nil {
				return false, ErrNeedParent
			}
			return false, e.splitPartial(parent, n, key, value, h)
		}
		depth := int(n.Hdr.Depth)
		h.SawNode(key[:depth], n)
		var slot wire.Slot
		eol := len(key) == depth
		if eol {
			slot = n.EOL
		} else {
			slot, _, _ = n.Child(key[depth])
		}
		switch {
		case !slot.Present:
			if mode == PutUpdateOnly {
				return false, nil
			}
			return false, e.installLeaf(parent, n, key, value, eol, h)
		case slot.Leaf:
			leaf, err := e.ReadLeaf(slot.Addr)
			if err != nil {
				return false, err
			}
			if leaf.Status == wire.StatusInvalid {
				// Residue of an interrupted delete (see completeDelete).
				// Repair, then restart: the retried descent sees a free
				// slot and installs normally.
				if _, cerr := e.completeDelete(n, key, leaf.Addr); cerr != nil {
					return false, cerr
				}
				return false, fmt.Errorf("put: leaf %v invalid: %w", leaf.Addr, ErrRestart)
			}
			if bytes.Equal(leaf.Key, key) {
				if mode == PutInsertOnly {
					return true, nil
				}
				return true, e.updateLeaf(n, leaf, key, value, eol)
			}
			if mode == PutUpdateOnly {
				return false, nil
			}
			// Two distinct keys on one edge: grow the edge into a chain
			// of inner nodes covering their shared prefix.
			return false, e.convertLeaf(n, key, value, leaf, h)
		default:
			child, err := e.ReadNode(slot.Addr, slot.ChildType)
			if err != nil {
				return false, err
			}
			parent, n = n, child
		}
	}
	return false, fmt.Errorf("%w: descent exceeded max depth", ErrRetriesExhausted)
}

// lockVerified acquires n's lock and re-verifies that the locked image
// still has the same depth; callers then re-derive slot state from the
// fresh image. Returns ErrRestart if the node was invalidated.
func (e *Engine) lockVerified(n *Node) (*Node, error) {
	locked, err := e.Lock(n.Addr, n.Hdr.Type, n.LeaseWord)
	if err != nil {
		if err == ErrNodeInvalid {
			return nil, fmt.Errorf("lock: node %v invalid: %w", n.Addr, ErrRestart)
		}
		return nil, err
	}
	if locked.Hdr.Depth != n.Hdr.Depth {
		if uerr := e.unlock(locked); uerr != nil {
			return nil, uerr
		}
		return nil, fmt.Errorf("lock: node %v depth changed: %w", n.Addr, ErrRestart)
	}
	return locked, nil
}

// installLeaf writes a fresh leaf and links it into node n (paper §IV
// Insert: write leaf; lock node; install slot with the unlock piggybacked
// on the same doorbell batch).
func (e *Engine) installLeaf(parent, n *Node, key, value []byte, eol bool, h Hooks) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageInstall))
	leafAddr, err := e.WriteLeaf(key, value)
	if err != nil {
		return err
	}
	locked, err := e.lockVerified(n)
	if err != nil {
		return err
	}
	// The locked image is authoritative: if a competing writer claimed the
	// edge first, redo the descent (the written leaf is abandoned, as in
	// any aborted one-sided insert).
	claimed := false
	if eol {
		claimed = locked.EOL.Present
	} else if _, _, ok := locked.Child(key[int(locked.Hdr.Depth)]); ok {
		claimed = true
	}
	if claimed {
		if uerr := e.unlock(locked); uerr != nil {
			return uerr
		}
		return fmt.Errorf("install: edge claimed on %v: %w", locked.Addr, ErrRestart)
	}
	slot := wire.Slot{Present: true, Leaf: true, Addr: leafAddr}
	if eol {
		return e.C.Batch([]fabric.Op{
			{Kind: fabric.Write, Addr: locked.EOLAddr(), Data: leBytes(slot.Encode())},
			e.UnlockOp(locked),
		})
	}
	slot.KeyByte = key[int(locked.Hdr.Depth)]
	idx, ok := locked.FreeSlot(slot.KeyByte)
	if !ok {
		return e.growAndInstall(parent, locked, slot, key, h)
	}
	ops := []fabric.Op{{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(slot.Encode())}}
	if locked.Hdr.Type == wire.Node48 {
		ops = append(ops, fabric.Op{Kind: fabric.Write, Addr: locked.IndexAddr(slot.KeyByte), Data: []byte{uint8(idx + 1)}})
	}
	ops = append(ops, e.UnlockOp(locked))
	return e.C.Batch(ops)
}

// growAndInstall performs a node type switch (paper §III-C): a larger copy
// of the locked node absorbs the new slot, the parent is repointed, the
// hash table is updated through the hook, and the original is invalidated
// so that readers holding stale pointers retry.
func (e *Engine) growAndInstall(parent, locked *Node, slot wire.Slot, key []byte, h Hooks) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	if parent == nil {
		// Root nodes are born Node256 and cannot fill; only a hash-jump
		// start node can land here. Restart through a parent-bearing path.
		if uerr := e.unlock(locked); uerr != nil {
			return uerr
		}
		return ErrNeedParent
	}
	prefix := key[:locked.Hdr.Depth]
	grown := locked.Grown()
	grown.addChildLocal(slot)
	grownOut, err := e.WriteNewNode(grown, prefix)
	if err != nil {
		return err
	}
	lockedParent, err := e.lockVerified(parent)
	if err != nil {
		if uerr := e.unlock(locked); uerr != nil {
			return uerr
		}
		return err
	}
	edge := key[lockedParent.Hdr.Depth]
	ps, idx, ok := lockedParent.Child(edge)
	if !ok || ps.Addr != locked.Addr {
		if uerr := e.unlockBoth(lockedParent, locked); uerr != nil {
			return uerr
		}
		return fmt.Errorf("grow: parent slot moved on %v: %w", lockedParent.Addr, ErrRestart)
	}
	newSlot := wire.Slot{Present: true, KeyByte: edge, ChildType: grownOut.Hdr.Type, Addr: grownOut.Addr}

	// Publish phase: parent slot → grown, hash entry → grown, original →
	// invalid. Abandoning this sequence midway would leave the retired
	// original valid yet reachable through its stale hash entry, and every
	// later jump-started descent would miss children only the grown copy
	// has (a permanent false absence). So once the parent slot is
	// verified, the publish runs to completion under its own backoff.
	if err := e.completeBatch([]fabric.Op{
		{Kind: fabric.Write, Addr: lockedParent.SlotAddr(idx), Data: leBytes(newSlot.Encode())},
		e.UnlockOp(lockedParent),
	}); err != nil {
		return err
	}
	if err := e.completeHook(func() error { return h.TypeSwitched(prefix, locked, grownOut) }); err != nil {
		return err
	}
	// Invalidation both retires the original and releases any waiters on
	// its lock into a retry (paper §III-C).
	return e.completeBatch([]fabric.Op{e.InvalidateOp(locked)})
}

// completeBatch drives one doorbell batch to completion. Only for use
// past an operation's commit point, where abandoning the batch would
// strand the structure mid-protocol. A timeout means every verb executed
// and only the completion was lost, so it counts as done and is never
// re-issued — re-issuing could clobber state the batch's own trailing
// unlock already handed to another client. A transient fault failed
// mid-batch without releasing anything (the unlock, when present, is the
// last verb), so re-issuing is safe.
func (e *Engine) completeBatch(ops []fabric.Op) error {
	bo := e.Backoff()
	for {
		err := e.C.Batch(ops)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, fabric.ErrTimeout):
			atomic.AddUint64(&e.stats.PublishRetries, 1)
			return nil
		case errors.Is(err, fabric.ErrTransient) || errors.Is(err, fabric.ErrNodeDown):
			atomic.AddUint64(&e.stats.PublishRetries, 1)
			if !bo.Wait() {
				return fmt.Errorf("%w: publish batch", ErrRetriesExhausted)
			}
		default:
			return err
		}
	}
}

// completeHook drives a side-structure publication (a hash-table insert
// or swap) to completion across fabric faults. By the time these hooks
// run, the new nodes are already reachable through the tree, and other
// clients' protocols rely on the publication eventually landing — a later
// type switch waits for the node's hash entry before swapping it, so an
// abandoned insert would wedge every grow of that node. The hooks are
// idempotent (the table insert returns early on an already-present entry),
// so re-execution is safe.
func (e *Engine) completeHook(run func() error) error {
	bo := e.Backoff()
	for {
		err := run()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, fabric.ErrTransient) || errors.Is(err, fabric.ErrTimeout) ||
			errors.Is(err, fabric.ErrNodeDown):
			atomic.AddUint64(&e.stats.PublishRetries, 1)
			if !bo.Wait() {
				return fmt.Errorf("%w: hook publication", ErrRetriesExhausted)
			}
		default:
			return err
		}
	}
}

// convertLeaf replaces a leaf edge of n by a chain of inner nodes covering
// the common prefix of the existing leaf's key and the new key, ending in
// a node that holds both. Chains longer than one node arise when the
// shared prefix exceeds the inline partial capacity.
func (e *Engine) convertLeaf(n *Node, key, value []byte, oldLeaf *Leaf, h Hooks) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	locked, err := e.lockVerified(n)
	if err != nil {
		return err
	}
	depth := int(locked.Hdr.Depth)
	edge := key[depth]
	ps, idx, ok := locked.Child(edge)
	if !ok || !ps.Leaf || ps.Addr != oldLeaf.Addr {
		if uerr := e.unlock(locked); uerr != nil {
			return uerr
		}
		return fmt.Errorf("convert: slot moved on %v: %w", locked.Addr, ErrRestart)
	}

	cp := CommonPrefixLen(key, oldLeaf.Key)
	if cp <= depth {
		// The leaf does not actually extend this node's prefix: the
		// descent raced with a structural change (or a collided jump
		// slipped past the hash checks). Redo the operation.
		if uerr := e.unlock(locked); uerr != nil {
			return uerr
		}
		return fmt.Errorf("convert: leaf %v off path: %w", oldLeaf.Addr, ErrRestart)
	}
	newLeafAddr, err := e.WriteLeaf(key, value)
	if err != nil {
		return err
	}

	// Build the chain bottom-up locally: the bottom node at depth cp holds
	// both leaves; intermediates each cover MaxPartial bytes plus an edge.
	bottom := NewNode(e.freshType(), key[:cp], min(cp-(depth+1), wire.MaxPartial))
	place := func(k []byte, addr wire.Slot) {
		if len(k) == cp {
			bottom.EOL = addr
		} else {
			addr.KeyByte = k[cp]
			bottom.addChildLocal(addr)
		}
	}
	place(oldLeaf.Key, wire.Slot{Present: true, Leaf: true, Addr: oldLeaf.Addr})
	place(key, wire.Slot{Present: true, Leaf: true, Addr: newLeafAddr})

	chain := []*Node{bottom} // bottom ... top, each a new prefix
	for bottom.Base() > depth+1 {
		childBase := bottom.Base()
		upper := NewNode(e.freshType(), key[:childBase-1], min(childBase-1-(depth+1), wire.MaxPartial))
		chain = append(chain, upper)
		bottom = upper
	}
	// Write leaf-most first so every published pointer targets complete
	// data; link each node into its parent image before writing it.
	for i := 0; i < len(chain); i++ {
		node := chain[i]
		if i > 0 {
			// chain[i] is the parent of chain[i-1].
			child := chain[i-1]
			node.addChildLocal(wire.Slot{
				Present: true, KeyByte: key[node.Hdr.Depth],
				ChildType: child.Hdr.Type, Addr: child.Addr,
			})
		}
		if _, err := e.WriteNewNode(node, key[:node.Hdr.Depth]); err != nil {
			return err
		}
	}
	top := chain[len(chain)-1]
	newSlot := wire.Slot{Present: true, KeyByte: edge, ChildType: top.Hdr.Type, Addr: top.Addr}
	// The swing is the commit point; it and the hash publications below
	// must land even across faults, or a later type switch of a chain node
	// would wait forever for its hash entry.
	if err := e.completeBatch([]fabric.Op{
		{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(newSlot.Encode())},
		e.UnlockOp(locked),
	}); err != nil {
		return err
	}
	for _, node := range chain {
		node := node
		if err := e.completeHook(func() error { return h.NewInner(key[:node.Hdr.Depth], node) }); err != nil {
			return err
		}
	}
	return nil
}

// splitPartial handles a key diverging inside child's compressed path: a
// new parent node takes over the matched part of the partial, child keeps
// its full prefix (only its partial shrinks — the coherence property of
// §III-B), and the new key's leaf hangs off the new parent.
func (e *Engine) splitPartial(parent, child *Node, key, value []byte, h Hooks) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	lockedChild, err := e.lockVerified(child)
	if err != nil {
		return err
	}
	// Re-derive the divergence from the locked image.
	m, full := MatchPartial(lockedChild, key)
	if full {
		// The partial changed under us and now matches; redo the descent.
		if uerr := e.unlock(lockedChild); uerr != nil {
			return uerr
		}
		return fmt.Errorf("split: partial now matches on %v: %w", lockedChild.Addr, ErrRestart)
	}
	base := lockedChild.Base()
	splitAt := base + m // new parent's depth

	lockedParent, err := e.lockVerified(parent)
	if err != nil {
		if uerr := e.unlock(lockedChild); uerr != nil {
			return uerr
		}
		return err
	}
	edge := key[lockedParent.Hdr.Depth]
	ps, idx, ok := lockedParent.Child(edge)
	if !ok || ps.Leaf || ps.Addr != lockedChild.Addr {
		if uerr := e.unlockBoth(lockedParent, lockedChild); uerr != nil {
			return uerr
		}
		return fmt.Errorf("split: parent slot moved on %v: %w", lockedParent.Addr, ErrRestart)
	}

	mid := NewNode(e.freshType(), key[:splitAt], splitAt-(int(lockedParent.Hdr.Depth)+1))
	// Old child hangs off the partial byte where the paths diverge.
	mid.addChildLocal(wire.Slot{
		Present: true, KeyByte: lockedChild.Partial[m],
		ChildType: lockedChild.Hdr.Type, Addr: lockedChild.Addr,
	})
	// The new key ends at the split point (EOL) or continues below it.
	newLeafAddr, err := e.WriteLeaf(key, value)
	if err != nil {
		return err
	}
	if len(key) == splitAt {
		mid.EOL = wire.Slot{Present: true, Leaf: true, Addr: newLeafAddr}
	} else {
		mid.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: key[splitAt], Addr: newLeafAddr})
	}
	if _, err := e.WriteNewNode(mid, key[:splitAt]); err != nil {
		return err
	}

	// Shrink the child's partial: header + partial bytes live in the first
	// 32 bytes (one 64-byte line), so a single WRITE replaces them
	// atomically for concurrent readers; it also releases the child lock.
	newHdr := lockedChild.Hdr
	newHdr.Status = wire.StatusIdle
	newHdr.PartialLen = uint8(len(lockedChild.Partial) - m - 1)
	var head [wire.SlotBase]byte
	binary.LittleEndian.PutUint64(head[wire.HeaderOff:], newHdr.Encode())
	binary.LittleEndian.PutUint64(head[wire.EOLSlotOff:], lockedChild.EOL.Encode())
	copy(head[wire.PartialOff:], lockedChild.Partial[m+1:])
	// The head write is the commit point: once the child's partial has
	// shrunk, descents through the old parent slot fail the prefix-hash
	// check until mid is published, so the rest of the sequence must land
	// even across faults.
	if err := e.completeBatch([]fabric.Op{
		{Kind: fabric.Write, Addr: lockedChild.Addr, Data: head[:]},
	}); err != nil {
		return err
	}

	// Publish the new parent and release the old one.
	newSlot := wire.Slot{Present: true, KeyByte: edge, ChildType: mid.Hdr.Type, Addr: mid.Addr}
	if err := e.completeBatch([]fabric.Op{
		{Kind: fabric.Write, Addr: lockedParent.SlotAddr(idx), Data: leBytes(newSlot.Encode())},
		e.UnlockOp(lockedParent),
	}); err != nil {
		return err
	}
	return e.completeHook(func() error { return h.NewInner(key[:splitAt], mid) })
}

// updateLeaf applies the paper's update protocol (§III-C, §IV Update):
// in-place with the checksum scheme when the new value fits the leaf's
// 64-byte units, out-of-place (new leaf, repointed slot, invalidated old)
// otherwise.
func (e *Engine) updateLeaf(n *Node, leaf *Leaf, key, value []byte, eol bool) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLeafWrite))
	if wire.LeafSize(len(leaf.Key), len(value)) <= uint64(leaf.Units)*wire.LeafUnit {
		return e.updateLeafInPlace(leaf, value)
	}
	// Out-of-place: write the replacement, swing the pointer under the
	// node lock, retire the old leaf so in-flight readers retry.
	newAddr, err := e.WriteLeaf(key, value)
	if err != nil {
		return err
	}
	locked, err := e.lockVerified(n)
	if err != nil {
		return err
	}
	var slotAddr [1]fabric.Op
	newSlot := wire.Slot{Present: true, Leaf: true, Addr: newAddr}
	if eol {
		if !locked.EOL.Present || locked.EOL.Addr != leaf.Addr {
			if uerr := e.unlock(locked); uerr != nil {
				return uerr
			}
			return fmt.Errorf("update: EOL moved on %v: %w", locked.Addr, ErrRestart)
		}
		slotAddr[0] = fabric.Op{Kind: fabric.Write, Addr: locked.EOLAddr(), Data: leBytes(newSlot.Encode())}
	} else {
		ps, idx, ok := locked.Child(key[int(locked.Hdr.Depth)])
		if !ok || ps.Addr != leaf.Addr {
			if uerr := e.unlock(locked); uerr != nil {
				return uerr
			}
			return fmt.Errorf("update: slot moved on %v: %w", locked.Addr, ErrRestart)
		}
		newSlot.KeyByte = ps.KeyByte
		slotAddr[0] = fabric.Op{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(newSlot.Encode())}
	}
	// Commit batch: swing the slot, retire the old leaf, release the lock —
	// all in one doorbell. Retiring in the SAME batch (not a follow-up round
	// trip) matters for the CN-side leaf-address cache: a timed-out batch
	// executes fully, so a fault here can no longer leave the old leaf
	// checksum-valid and Idle at an address other compute nodes still have
	// cached — an orphan a speculative read would wrongly trust.
	oldHdr := wire.LeafHeader{
		Status: wire.StatusInvalid,
		Units:  leaf.Units,
		KeyLen: uint16(len(leaf.Key)),
		ValLen: uint32(len(leaf.Value)),
	}
	err = e.C.Batch([]fabric.Op{
		slotAddr[0],
		{Kind: fabric.Write, Addr: leaf.Addr, Data: leBytes(oldHdr.Encode())},
		e.UnlockOp(locked),
	})
	if err != nil {
		// A transient fault truncates the batch at a random verb, so the
		// swing may have landed without the retirement. Probe the slot: if
		// it no longer names the old leaf, the swing (or a competing
		// writer's) is live and retiring the old leaf is required — and
		// idempotent if someone else already did.
		if word, rerr := e.C.ReadUint64(slotAddr[0].Addr); rerr == nil {
			if s := wire.DecodeSlot(word); !s.Present || !s.Leaf || s.Addr != leaf.Addr {
				if ierr := e.invalidateLeaf(leaf); ierr == nil {
					atomic.AddUint64(&e.stats.LeafRetireRepairs, 1)
				}
			}
		}
		return err
	}
	return nil
}

// updateLeafInPlace is the checksum-based single-WRITE update (§III-C):
// lock the leaf with one CAS on its header word, then write the whole new
// image — new value, new checksum, Idle status — in one WRITE that doubles
// as the lock release. A lock that never clears (its holder crashed before
// the WRITE; the old image is intact underneath) is broken after a full
// lease of watching, like ReadLeaf does.
func (e *Engine) updateLeafInPlace(leaf *Leaf, value []byte) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLeafWrite))
	units := leaf.Units
	idleWord := wire.LeafHeader{
		Status: wire.StatusIdle, Units: units,
		KeyLen: uint16(len(leaf.Key)), ValLen: uint32(len(leaf.Value)),
	}.Encode()
	locked := false
	bo := e.Backoff()
	var watching uint64
	for {
		lockedWord := wire.WithStatus(idleWord, wire.StatusLocked)
		old, err := e.C.CompareSwap(leaf.Addr, idleWord, lockedWord)
		if err != nil {
			return err
		}
		if old == idleWord {
			locked = true
			break
		}
		got := wire.DecodeLeafHeader(old)
		switch got.Status {
		case wire.StatusInvalid:
			return fmt.Errorf("update: leaf %v invalidated: %w", leaf.Addr, ErrRestart)
		case wire.StatusLocked:
			if old != watching {
				watching = old
				bo.ResetWatch()
			} else if bo.WaitedPs() >= e.Cfg.leasePs() {
				// Stuck lock: restore Idle over the intact old image and
				// retry the acquisition CAS from that word.
				if broke, err := e.C.CompareSwap(leaf.Addr, old, wire.WithStatus(old, wire.StatusIdle)); err != nil {
					return err
				} else if broke == old {
					atomic.AddUint64(&e.stats.LeafLockBreaks, 1)
				}
				idleWord = wire.WithStatus(old, wire.StatusIdle)
				watching = 0
				bo.ResetWatch()
			}
		default:
			// A concurrent in-place update changed the value length;
			// adopt the observed header and retry the CAS.
			idleWord = old
		}
		if !bo.Wait() {
			break
		}
	}
	if !locked {
		return fmt.Errorf("%w: leaf lock at %v", ErrRetriesExhausted, leaf.Addr)
	}
	// One WRITE carries the new image with status Idle: value write and
	// lock release combined (the round trip the paper's scheme saves).
	// The allocated unit count is preserved so future fit checks see the
	// real footprint, and the whole footprint is written so stale bytes
	// cannot survive.
	img := wire.EncodeLeaf(wire.StatusIdle, leaf.Key, value)
	if pad := int(units)*wire.LeafUnit - len(img); pad > 0 {
		img = append(img, make([]byte, pad)...)
	}
	h := wire.DecodeLeafHeader(binary.LittleEndian.Uint64(img))
	h.Units = units
	binary.LittleEndian.PutUint64(img, h.Encode())
	return e.C.Write(leaf.Addr, img)
}

// invalidateLeaf retires a leaf so readers that still hold its address
// restart their operation. The header keeps the lengths the leaf was read
// with, so a reader that decodes it sees a checksum-consistent Invalid
// image.
func (e *Engine) invalidateLeaf(leaf *Leaf) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLeafWrite))
	hdr := wire.LeafHeader{
		Status: wire.StatusInvalid,
		Units:  leaf.Units,
		KeyLen: uint16(len(leaf.Key)),
		ValLen: uint32(len(leaf.Value)),
	}
	return e.C.WriteUint64(leaf.Addr, hdr.Encode())
}

// DeleteFrom removes key, reporting whether it was present (paper §IV
// Delete: invalidate the leaf, then clear the parent slot).
func (e *Engine) DeleteFrom(start *Node, key []byte, h Hooks) (bool, error) {
	n := start
	for hop := 0; hop < wire.MaxDepth+2; hop++ {
		if n.Hdr.Status == wire.StatusInvalid {
			return false, fmt.Errorf("delete: node %v invalid: %w", n.Addr, ErrRestart)
		}
		match, inconsistent := OnPath(n, key)
		if inconsistent {
			return false, fmt.Errorf("delete: node %v off path: %w", n.Addr, ErrRestart)
		}
		if !match {
			return false, nil
		}
		depth := int(n.Hdr.Depth)
		h.SawNode(key[:depth], n)
		eol := len(key) == depth
		var slot wire.Slot
		if eol {
			slot = n.EOL
			if !slot.Present {
				return false, nil
			}
		} else {
			var ok bool
			slot, _, ok = n.Child(key[depth])
			if !ok {
				return false, nil
			}
		}
		if !slot.Leaf {
			child, err := e.ReadNode(slot.Addr, slot.ChildType)
			if err != nil {
				return false, err
			}
			n = child
			continue
		}
		leaf, err := e.ReadLeaf(slot.Addr)
		if err != nil {
			return false, err
		}
		if leaf.Status == wire.StatusInvalid {
			// Residue of an interrupted delete (see completeDelete): finish
			// the clear. Either way the key is already deleted.
			cleared, cerr := e.completeDelete(n, key, leaf.Addr)
			if cerr != nil {
				return false, cerr
			}
			if cleared {
				return false, nil
			}
			return false, fmt.Errorf("delete: leaf %v invalid: %w", leaf.Addr, ErrRestart)
		}
		if !bytes.Equal(leaf.Key, key) {
			return false, nil
		}
		locked, err := e.lockVerified(n)
		if err != nil {
			return false, err
		}
		var clearAddr fabric.Op
		if eol {
			if !locked.EOL.Present || locked.EOL.Addr != leaf.Addr {
				if uerr := e.unlock(locked); uerr != nil {
					return false, uerr
				}
				return false, fmt.Errorf("delete: EOL moved on %v: %w", locked.Addr, ErrRestart)
			}
			clearAddr = fabric.Op{Kind: fabric.Write, Addr: locked.EOLAddr(), Data: leBytes(0)}
		} else {
			ps, idx, ok := locked.Child(key[depth])
			if !ok || ps.Addr != leaf.Addr {
				if uerr := e.unlock(locked); uerr != nil {
					return false, uerr
				}
				return false, fmt.Errorf("delete: slot moved on %v: %w", locked.Addr, ErrRestart)
			}
			clearAddr = fabric.Op{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(0)}
		}
		if err := e.invalidateLeaf(leaf); err != nil {
			return false, err
		}
		ops := []fabric.Op{clearAddr}
		if !eol && locked.Hdr.Type == wire.Node48 {
			ops = append(ops, fabric.Op{Kind: fabric.Write, Addr: locked.IndexAddr(key[depth]), Data: []byte{0}})
		}
		ops = append(ops, e.UnlockOp(locked))
		// The invalidation above was the commit point; drive the clear to
		// completion so the slot does not linger pointing at a dead leaf
		// (completeDelete repairs that state, but only when a descent
		// happens to revisit this edge).
		prevStage := e.C.SetStage(fabric.StageInstall)
		err = e.completeBatch(ops)
		e.C.SetStage(prevStage)
		if err != nil {
			return false, err
		}
		return true, nil
	}
	return false, fmt.Errorf("%w: descent exceeded max depth", ErrRetriesExhausted)
}

// completeDelete finishes an interrupted delete on behalf of whoever
// started it. A slot that still points at an invalidated leaf can only be
// the residue of a delete that faulted between its commit point (the leaf
// invalidation) and the slot clear: out-of-place updates repoint the slot
// before retiring the old leaf, so under the node lock the pairing is
// unambiguous. Clearing the slot here unblocks every descent through this
// edge — without the repair, the tree answers ErrRestart on this key
// forever. Reports whether it cleared the slot; false means the edge
// moved on and the caller should restart its descent.
func (e *Engine) completeDelete(n *Node, key []byte, leafAddr mem.Addr) (bool, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StagePublish))
	locked, err := e.lockVerified(n)
	if err != nil {
		return false, err
	}
	depth := int(locked.Hdr.Depth)
	var ops []fabric.Op
	switch {
	case depth > len(key):
		// The node was restructured past this key; nothing to repair here.
	case depth == len(key):
		if locked.EOL.Present && locked.EOL.Leaf && locked.EOL.Addr == leafAddr {
			ops = append(ops, fabric.Op{Kind: fabric.Write, Addr: locked.EOLAddr(), Data: leBytes(0)})
		}
	default:
		if ps, idx, ok := locked.Child(key[depth]); ok && ps.Leaf && ps.Addr == leafAddr {
			ops = append(ops, fabric.Op{Kind: fabric.Write, Addr: locked.SlotAddr(idx), Data: leBytes(0)})
			if locked.Hdr.Type == wire.Node48 {
				ops = append(ops, fabric.Op{Kind: fabric.Write, Addr: locked.IndexAddr(key[depth]), Data: []byte{0}})
			}
		}
	}
	cleared := len(ops) > 0
	ops = append(ops, e.UnlockOp(locked))
	if err := e.C.Batch(ops); err != nil {
		return false, err
	}
	if cleared {
		atomic.AddUint64(&e.stats.DeleteRepairs, 1)
	}
	return cleared, nil
}

func (e *Engine) unlock(n *Node) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageUnlock))
	return e.C.Batch([]fabric.Op{e.UnlockOp(n)})
}

func (e *Engine) unlockBoth(a, b *Node) error {
	defer e.C.SetStage(e.C.SetStage(fabric.StageUnlock))
	return e.C.Batch([]fabric.Op{e.UnlockOp(a), e.UnlockOp(b)})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
