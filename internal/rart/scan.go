package rart

import (
	"bytes"
	"errors"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// BootstrapRoot creates the tree's root — a Node256 with the empty prefix,
// so it never type-switches and its address stays valid forever — using
// direct region access at cluster-setup time.
func BootstrapRoot(region *mem.Region, alloc *mem.Allocator, node mem.NodeID) (mem.Addr, error) {
	root := NewNode(wire.Node256, nil, 0)
	addr, err := alloc.Alloc(node, mem.ClassInner, wire.NodeSize(wire.Node256))
	if err != nil {
		return 0, err
	}
	region.Write(addr.Offset(), root.Encode())
	return addr, nil
}

// prefixMayContain reports whether a subtree whose keys all start with p
// can intersect [lo, hi].
func prefixMayContain(p, lo, hi []byte) bool {
	if lo != nil {
		m := min(len(p), len(lo))
		if bytes.Compare(p[:m], lo[:m]) < 0 {
			return false
		}
	}
	if hi != nil {
		m := min(len(p), len(hi))
		switch bytes.Compare(p[:m], hi[:m]) {
		case 1:
			return false
		case 0:
			if len(p) > len(hi) {
				return false
			}
		}
	}
	return true
}

func keyInRange(k, lo, hi []byte) bool {
	if lo != nil && bytes.Compare(k, lo) < 0 {
		return false
	}
	if hi != nil && bytes.Compare(k, hi) > 0 {
		return false
	}
	return true
}

// errScanDone terminates the traversal once limit results are collected.
var errScanDone = errors.New("rart: scan limit reached")

// scanner carries one in-order traversal (paper §IV Scan).
type scanner struct {
	e       *Engine
	lo, hi  []byte
	limit   int
	batched bool
	out     []KV
}

// ScanFrom collects keys in [lo, hi] (inclusive; nil bounds open) in
// ascending order starting at the root node, stopping after limit results
// when limit > 0.
//
// The traversal is an ordered depth-first walk. With batched=true, each
// visited inner node's relevant children — leaves and inner nodes alike —
// are fetched in a single doorbell batch, the mechanism behind the
// 2.3–3.1× YCSB-E advantage of Sphinx/SMART over the naive ART port
// (§V-B); with batched=false every child costs its own round trip.
// Limit-bounded scans therefore touch only the subtrees they emit from.
func (e *Engine) ScanFrom(root *Node, lo, hi []byte, limit int, batched bool) ([]KV, error) {
	s := &scanner{e: e, lo: lo, hi: hi, limit: limit, batched: batched}
	err := s.visit(root, nil)
	if err != nil && !errors.Is(err, errScanDone) {
		return nil, err
	}
	return s.out, nil
}

// visit walks one node in key order. prefix is the node's full prefix
// minus its partial (i.e., up to the parent edge).
func (s *scanner) visit(n *Node, prefix []byte) error {
	if n.Hdr.Status == wire.StatusInvalid {
		return nil // retired mid-scan; its replacement is reachable elsewhere
	}
	full := append(append([]byte(nil), prefix...), n.Partial...)
	if !prefixMayContain(full, s.lo, s.hi) {
		return nil
	}

	// Gather the in-range children in key order: the EOL leaf first, then
	// edges ascending.
	type childRef struct {
		slot wire.Slot
		stub []byte // child's prefix including its edge byte (nil for EOL)
	}
	var kids []childRef
	if n.EOL.Present && n.EOL.Leaf && keyInRange(full, s.lo, s.hi) {
		kids = append(kids, childRef{slot: n.EOL, stub: full})
	}
	for _, sl := range n.Children() {
		stub := append(append([]byte(nil), full...), sl.KeyByte)
		if !prefixMayContain(stub, s.lo, s.hi) {
			continue
		}
		kids = append(kids, childRef{slot: sl, stub: stub})
	}
	if len(kids) == 0 {
		return nil
	}

	// Fetch children lazily in in-order chunks, so a limit-bounded scan
	// stops without paying for the rest of the frontier. Batched mode
	// reads each chunk in one doorbell batch; unbatched mode degrades to
	// one child per round trip (chunk size 1).
	chunk := scanChunk
	if !s.batched {
		chunk = 1
	}
	for base := 0; base < len(kids); base += chunk {
		end := base + chunk
		if end > len(kids) {
			end = len(kids)
		}
		part := kids[base:end]
		leaves := make([]*Leaf, len(part))
		nodes := make([]*Node, len(part))

		var ops []fabric.Op
		bufs := make([][]byte, len(part))
		spec := uint64(s.e.Cfg.leafSpecRead())
		for i, k := range part {
			var size uint64
			if k.slot.Leaf {
				size = s.e.clampRead(k.slot.Addr, spec)
			} else {
				size = s.e.nodeReadSize(k.slot.ChildType)
			}
			bufs[i] = make([]byte, size)
			ops = append(ops, fabric.Op{Kind: fabric.Read, Addr: k.slot.Addr, Data: bufs[i]})
		}
		prevStage := s.e.C.SetStage(fabric.StageScan)
		err := s.e.C.Batch(ops)
		s.e.C.SetStage(prevStage)
		if err != nil {
			return err
		}
		for i, k := range part {
			if k.slot.Leaf {
				leaves[i] = s.decodeOrReread(k.slot.Addr, bufs[i])
				if leaves[i] == nil {
					// Torn, locked or under-read: fall back individually.
					l, err := s.e.ReadLeaf(k.slot.Addr)
					if err != nil {
						return err
					}
					leaves[i] = l
				}
			} else {
				nd, err := Decode(k.slot.Addr, bufs[i])
				if err != nil {
					nd, err = s.e.ReadNode(k.slot.Addr, k.slot.ChildType)
					if err != nil {
						return err
					}
				}
				nodes[i] = nd
			}
		}

		// Emit / recurse in order within the chunk.
		for i, k := range part {
			if k.slot.Leaf {
				l := leaves[i]
				if l.Status == wire.StatusInvalid {
					continue
				}
				if !keyInRange(l.Key, s.lo, s.hi) {
					continue
				}
				s.out = append(s.out, KV{Key: l.Key, Value: l.Value})
				if s.limit > 0 && len(s.out) >= s.limit {
					return errScanDone
				}
				continue
			}
			if err := s.visit(nodes[i], k.stub); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanChunk is the doorbell-batch size of a batched scan's child fetches:
// large enough to amortize round trips, small enough that limit-bounded
// scans do not over-fetch wide nodes.
const scanChunk = 32

// decodeOrReread parses a speculatively read leaf, returning nil when the
// image is torn, locked or longer than the speculative read (the caller
// re-reads those individually).
func (s *scanner) decodeOrReread(addr mem.Addr, buf []byte) *Leaf {
	if len(buf) < 8 {
		return nil
	}
	hdr := wire.DecodeLeafHeader(leUint64(buf))
	if hdr.Status == wire.StatusInvalid {
		return &Leaf{Addr: addr, Status: wire.StatusInvalid, Units: hdr.Units}
	}
	if uint64(hdr.Units)*wire.LeafUnit > uint64(len(buf)) {
		return nil
	}
	key, val, st, ok := wire.DecodeLeaf(buf)
	if !ok || st != wire.StatusIdle {
		return nil
	}
	return &Leaf{
		Addr: addr, Status: st, Units: hdr.Units,
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), val...),
	}
}
