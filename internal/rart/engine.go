package rart

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// Errors surfaced to the index layers. ErrNodeInvalid and ErrRestart are
// retry signals: the descent raced with a structural change and must be
// redone (paper §III-C: "If the status field is marked Invalid, the reader
// retries the index operation").
var (
	ErrNodeInvalid = errors.New("rart: node invalidated by a type switch")
	ErrRestart     = errors.New("rart: operation must restart")
	// ErrNeedParent is returned when a compressed-path split is required
	// at the node an operation started from, whose parent is unknown
	// (possible only after a prefix-hash collision in Sphinx's hash-table
	// jump). The caller restarts the operation from the root path.
	ErrNeedParent = errors.New("rart: split required above the start node")

	// ErrRetriesExhausted is the terminal error of every bounded retry
	// loop in the engine; callers test it with errors.Is.
	ErrRetriesExhausted = errors.New("rart: retries exhausted")
)

// Config tunes the engine per system.
type Config struct {
	// Prealloc256 gives every inner node the footprint of a Node256 and
	// performs type switches in place, never moving a node — SMART's
	// design, trading the paper's reported 2.1–3.0× MN memory overhead
	// for cache-friendly stable addresses.
	Prealloc256 bool
	// LeafSpecRead is the speculative first-READ size for leaves of
	// unknown length. 128 covers a 64-byte value with a ≤40-byte key in
	// one round trip. 0 selects the default.
	LeafSpecRead int
	// MaxRetries bounds retry loops on contended structures (it is the
	// default budget of the Backoff policy).
	MaxRetries int
	// LeasePs is the lock lease duration: a waiter that observes the
	// same lock holder for this much of its own virtual time presumes
	// the holder dead and steals the lock. It must comfortably exceed
	// the longest time a live client can hold a lock (a few round trips
	// plus injected timeouts). 0 selects the default.
	LeasePs int64
	// Backoff tunes the shared capped-exponential-backoff-with-jitter
	// policy used by the engine's retry loops. Zero fields select the
	// fabric defaults, with MaxRetries as the budget.
	Backoff fabric.BackoffPolicy
	// Place, if set, overrides ring placement for new allocations
	// (NodeHome/LeafHome). Replica-aware layers install it to steer
	// allocations away from memory nodes known dead; nil keeps pure ring
	// ownership.
	Place func(key []byte) mem.NodeID
}

const (
	defaultLeafSpecRead = 128
	// defaultLeasePs is 500 µs of virtual time: three orders above a
	// round trip and far beyond any live lock hold, yet short enough
	// that waiters recover from a crashed holder within one backoff
	// budget.
	defaultLeasePs = 500_000_000
)

func (c Config) leasePs() int64 {
	if c.LeasePs <= 0 {
		return defaultLeasePs
	}
	return c.LeasePs
}

func (c Config) leafSpecRead() int {
	if c.LeafSpecRead <= 0 {
		return defaultLeafSpecRead
	}
	return c.LeafSpecRead
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 256
	}
	return c.MaxRetries
}

// Engine bundles one client's access to the remote tree: verbs, allocator
// and node placement. Engines are per-worker, like the client they wrap.
type Engine struct {
	C     *fabric.Client
	Alloc *mem.Allocator
	Ring  *consistenthash.Ring
	Cfg   Config

	regionSizes map[mem.NodeID]uint64
	stats       EngineStats
	// bufs is a free list of read buffers for the hot path (node and leaf
	// fetches). Engines are per-worker, so it needs no locking; Decode
	// copies everything it keeps, so a buffer is reusable the moment the
	// image is decoded.
	bufs [][]byte
}

// maxPooledBufs caps the free list; beyond it buffers are dropped to the GC.
const maxPooledBufs = 16

// grabBuf returns a zero-fill-free read buffer of length n, reusing a
// pooled one when large enough.
func (e *Engine) grabBuf(n uint64) []byte {
	for i := len(e.bufs) - 1; i >= 0; i-- {
		if b := e.bufs[i]; uint64(cap(b)) >= n {
			last := len(e.bufs) - 1
			e.bufs[i] = e.bufs[last]
			e.bufs[last] = nil
			e.bufs = e.bufs[:last]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// ReleaseBuf returns a read buffer to the engine's free list. Callers of
// AppendNodeRead release the buffer once the image is decoded; the buffer
// must not be referenced afterwards (decoded nodes are safe to keep).
func (e *Engine) ReleaseBuf(b []byte) {
	if cap(b) == 0 || len(e.bufs) >= maxPooledBufs {
		return
	}
	e.bufs = append(e.bufs, b)
}

// EngineStats counts the engine's lock-recovery events.
type EngineStats struct {
	// LockSteals is the number of node leases this client took over from
	// an apparently dead holder (including reclaiming its own lease after
	// a fault between acquisition and release).
	LockSteals uint64
	// LeafLockBreaks is the number of stuck leaf locks this client broke
	// after watching them for a full lease.
	LeafLockBreaks uint64
	// DeleteRepairs is the number of interrupted deletes this client
	// finished on another client's behalf (a slot still pointing at an
	// invalidated leaf).
	DeleteRepairs uint64
	// PublishRetries is the number of faulted steps re-driven while
	// publishing a node type switch (grow) to completion.
	PublishRetries uint64
	// LeafRetireRepairs is the number of old leaves retired on the error
	// path of an out-of-place update after the commit batch faulted with
	// the slot swing already live (the leaf-address cache must never find
	// such a leaf Idle).
	LeafRetireRepairs uint64
}

// Add returns s + t, field-wise; used to aggregate workers.
func (s EngineStats) Add(t EngineStats) EngineStats {
	s.LockSteals += t.LockSteals
	s.LeafLockBreaks += t.LeafLockBreaks
	s.DeleteRepairs += t.DeleteRepairs
	s.PublishRetries += t.PublishRetries
	s.LeafRetireRepairs += t.LeafRetireRepairs
	return s
}

// Stats returns a snapshot of the engine's recovery counters, loaded
// atomically so a live metrics scrape may call it concurrently with the
// worker driving the engine.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		LockSteals:        atomic.LoadUint64(&e.stats.LockSteals),
		LeafLockBreaks:    atomic.LoadUint64(&e.stats.LeafLockBreaks),
		DeleteRepairs:     atomic.LoadUint64(&e.stats.DeleteRepairs),
		PublishRetries:    atomic.LoadUint64(&e.stats.PublishRetries),
		LeafRetireRepairs: atomic.LoadUint64(&e.stats.LeafRetireRepairs),
	}
}

// Backoff starts one retry sequence under the engine's policy; the
// index layers above use it for their operation-level restart loops so
// every retry in the stack follows one schedule.
func (e *Engine) Backoff() *fabric.Backoff {
	pol := e.Cfg.Backoff
	if pol.Budget == 0 {
		pol.Budget = e.Cfg.maxRetries()
	}
	return pol.Start(e.C)
}

// NewEngine creates an engine over the given client.
func NewEngine(c *fabric.Client, alloc *mem.Allocator, ring *consistenthash.Ring, cfg Config) *Engine {
	return &Engine{C: c, Alloc: alloc, Ring: ring, Cfg: cfg, regionSizes: make(map[mem.NodeID]uint64)}
}

// NodeHome returns the memory node that owns the inner node for a prefix
// (consistent hashing, paper §III).
func (e *Engine) NodeHome(prefix []byte) mem.NodeID {
	if e.Cfg.Place != nil {
		return e.Cfg.Place(prefix)
	}
	return e.Ring.OwnerKey(prefix)
}

// LeafHome returns the memory node that owns the leaf for a key.
func (e *Engine) LeafHome(key []byte) mem.NodeID {
	if e.Cfg.Place != nil {
		return e.Cfg.Place(key)
	}
	return e.Ring.OwnerKey(key)
}

// nodeReadSize returns how many bytes to READ for a node of type t.
func (e *Engine) nodeReadSize(t wire.NodeType) uint64 {
	if e.Cfg.Prealloc256 {
		return wire.NodeSize(wire.Node256)
	}
	return wire.NodeSize(t)
}

// nodeAllocSize returns how many bytes to allocate for a node of type t.
func (e *Engine) nodeAllocSize(t wire.NodeType) uint64 {
	if e.Cfg.Prealloc256 {
		return wire.NodeSize(wire.Node256)
	}
	return wire.NodeSize(t)
}

func (e *Engine) clampRead(addr mem.Addr, want uint64) uint64 {
	size, ok := e.regionSizes[addr.Node()]
	if !ok {
		size = e.C.Fabric().RegionSize(addr.Node())
		e.regionSizes[addr.Node()] = size
	}
	if rem := size - addr.Offset(); want > rem {
		return rem
	}
	return want
}

// ReadNode fetches and decodes the inner node at addr, whose type is known
// from the slot or hash entry that referenced it (one round trip). If the
// node grew in place (Prealloc256 mode) or the hint is stale, the read is
// retried once at the decoded size.
// ReadNode stage-annotates its batches StageNodeRead, as every engine
// batch primitive does for its own stage; callers running mixed phases
// (scan descents, publication chains) set a coarser stage around whole
// call sequences and these fine annotations override it per batch.
func (e *Engine) ReadNode(addr mem.Addr, hint wire.NodeType) (*Node, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageNodeRead))
	want := e.nodeReadSize(hint)
	for attempt := 0; attempt < 2; attempt++ {
		buf := e.grabBuf(want)
		if err := e.C.Read(addr, buf); err != nil {
			e.ReleaseBuf(buf)
			return nil, err
		}
		hdr := wire.DecodeNodeHeader(leUint64(buf))
		if need := wire.NodeSize(hdr.Type); need > want {
			want = need
			e.ReleaseBuf(buf)
			continue
		}
		n, err := Decode(addr, buf)
		e.ReleaseBuf(buf)
		return n, err
	}
	return nil, fmt.Errorf("%w: node at %v kept growing", ErrRetriesExhausted, addr)
}

// AppendNodeRead appends the READ fetching the node at addr to ops, for
// merging into a larger doorbell batch, and returns the extended ops along
// with the destination buffer. The buffer comes from the engine's free
// list; the caller passes it back via ReleaseBuf once the image is decoded.
func (e *Engine) AppendNodeRead(ops []fabric.Op, addr mem.Addr, hint wire.NodeType) ([]fabric.Op, []byte) {
	buf := e.grabBuf(e.nodeReadSize(hint))
	return append(ops, fabric.Op{Kind: fabric.Read, Addr: addr, Data: buf}), buf
}

// Leaf is a decoded leaf image. Units is the leaf's allocated footprint in
// 64-byte units, which bounds what an in-place update may fit.
type Leaf struct {
	Addr   mem.Addr
	Status wire.Status
	Units  uint8
	Key    []byte
	Value  []byte
}

// ReadLeaf fetches the leaf at addr, retrying torn or locked images.
// Usually one round trip (speculative over-read); leaves longer than the
// speculative size cost one more. A leaf whose lock never clears — the
// holder crashed between its lock CAS and its single image WRITE — is
// broken after a full lease of watching: the content under a held leaf
// lock is still the old, checksum-valid image, so CASing the status back
// to Idle restores the leaf exactly (docs/failure-model.md).
func (e *Engine) ReadLeaf(addr mem.Addr) (*Leaf, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLeafRead))
	want := e.clampRead(addr, uint64(e.Cfg.leafSpecRead()))
	bo := e.Backoff()
	var watching uint64
	for {
		buf := e.grabBuf(want)
		if err := e.C.Read(addr, buf); err != nil {
			e.ReleaseBuf(buf)
			return nil, err
		}
		hdrWord := leUint64(buf)
		hdr := wire.DecodeLeafHeader(hdrWord)
		if hdr.Status == wire.StatusInvalid {
			// A retired leaf's content may legitimately disagree with its
			// header (a racing in-place update); Invalid alone is enough
			// for the caller to restart.
			e.ReleaseBuf(buf)
			return &Leaf{Addr: addr, Status: wire.StatusInvalid, Units: hdr.Units}, nil
		}
		if need := uint64(hdr.Units) * wire.LeafUnit; need > uint64(len(buf)) {
			want = e.clampRead(addr, need)
			e.ReleaseBuf(buf)
			continue
		}
		key, val, st, ok := wire.DecodeLeaf(buf)
		if !ok || st == wire.StatusLocked {
			// Torn read (a concurrent in-place update) or a locked leaf:
			// a live writer finishes with a single WRITE, so retry shortly.
			e.ReleaseBuf(buf)
			if hdr.Status == wire.StatusLocked {
				if hdrWord != watching {
					watching = hdrWord
					bo.ResetWatch()
				} else if bo.WaitedPs() >= e.Cfg.leasePs() {
					old, err := e.C.CompareSwap(addr, hdrWord, wire.WithStatus(hdrWord, wire.StatusIdle))
					if err != nil {
						return nil, err
					}
					if old == hdrWord {
						atomic.AddUint64(&e.stats.LeafLockBreaks, 1)
					}
					watching = 0
					bo.ResetWatch()
					continue
				}
			}
			if !bo.Wait() {
				return nil, fmt.Errorf("%w: leaf at %v never stabilized", ErrRetriesExhausted, addr)
			}
			continue
		}
		// Copy key and value out through one backing array (the decoded
		// slices alias buf, which goes back to the free list).
		kv := make([]byte, len(key)+len(val))
		copy(kv, key)
		copy(kv[len(key):], val)
		l := &Leaf{
			Addr:   addr,
			Status: st,
			Units:  hdr.Units,
			Key:    kv[:len(key):len(key)],
			Value:  kv[len(key):],
		}
		e.ReleaseBuf(buf)
		return l, nil
	}
}

// SpecReadLeaf is the speculative fast-path leaf read: exactly ONE READ of
// units*64 bytes at addr — an address supplied by a CN-side cache, not by
// a traversal — with no retry loop and no backoff. The caller owns
// verification; this primitive only reports what one round trip saw:
//
//   - a decoded image (including Status Invalid): (leaf, nil) — the caller
//     checks status and key;
//   - a torn or locked image: (nil, nil) — an in-flight writer, nothing to
//     conclude, fall back without unlearning;
//   - a fabric error: (nil, err) — the caller maps failoverable errors to
//     unlearns.
//
// Batches are stage-annotated StageLeafSpec so the speculative round trips
// reconcile separately from the 3-RT hash path (the lac_reconciled
// verdict).
func (e *Engine) SpecReadLeaf(addr mem.Addr, units uint8) (*Leaf, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLeafSpec))
	want := e.clampRead(addr, uint64(units)*wire.LeafUnit)
	if want < wire.LeafHeaderSize {
		return nil, nil
	}
	buf := e.grabBuf(want)
	if err := e.C.Read(addr, buf); err != nil {
		e.ReleaseBuf(buf)
		return nil, err
	}
	hdr := wire.DecodeLeafHeader(leUint64(buf))
	if hdr.Status == wire.StatusInvalid {
		e.ReleaseBuf(buf)
		return &Leaf{Addr: addr, Status: wire.StatusInvalid, Units: hdr.Units}, nil
	}
	if need := uint64(hdr.Units) * wire.LeafUnit; need > uint64(len(buf)) {
		// The leaf at this address grew past the cached size (the address
		// was reused or the hint is stale): nothing provable in one round
		// trip.
		e.ReleaseBuf(buf)
		return nil, nil
	}
	key, val, st, ok := wire.DecodeLeaf(buf)
	if !ok || st == wire.StatusLocked {
		e.ReleaseBuf(buf)
		return nil, nil
	}
	kv := make([]byte, len(key)+len(val))
	copy(kv, key)
	copy(kv[len(key):], val)
	l := &Leaf{
		Addr:   addr,
		Status: st,
		Units:  hdr.Units,
		Key:    kv[:len(key):len(key)],
		Value:  kv[len(key):],
	}
	e.ReleaseBuf(buf)
	return l, nil
}

// WriteLeaf allocates and writes a fresh leaf for (key, value) on the
// key's home node and returns its address.
func (e *Engine) WriteLeaf(key, value []byte) (mem.Addr, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageAlloc))
	img := wire.EncodeLeaf(wire.StatusIdle, key, value)
	addr, err := e.Alloc.Alloc(e.LeafHome(key), mem.ClassLeaf, uint64(len(img)))
	if err != nil {
		return 0, err
	}
	e.C.SetStage(fabric.StageLeafWrite)
	if err := e.C.Write(addr, img); err != nil {
		return 0, err
	}
	return addr, nil
}

// WriteNewNode allocates space for a locally built node on the home node
// of its prefix and writes it, returning the node with its address set.
func (e *Engine) WriteNewNode(n *Node, prefix []byte) (*Node, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageAlloc))
	addr, err := e.Alloc.Alloc(e.NodeHome(prefix), mem.ClassInner, e.nodeAllocSize(n.Hdr.Type))
	if err != nil {
		return nil, err
	}
	n.Addr = addr
	e.C.SetStage(fabric.StageNodeWrite)
	if err := e.C.Write(addr, n.Encode()); err != nil {
		return nil, err
	}
	return n, nil
}

// Lock acquires the node-grained lease lock on the node at addr and
// returns a fresh image read under the lock. Each attempt is one round
// trip: the lease-word CAS and a full re-read ride the same doorbell
// batch, and the CAS executing first means a winning lock guarantees the
// trailing read is a stable post-lock snapshot (paper §III-C).
//
// The lock is a lease (docs/failure-model.md): acquisition CASes the lease
// word from 0 to (owner, stamp). A waiter that observes the *same* held
// lease word for a full Config.LeasePs of its own virtual waiting time
// presumes the holder crashed and CAS-steals the word — the exact-value
// CAS lets at most one waiter win, and a concurrent release or steal makes
// a stale attempt fail harmlessly. A client that finds its own lease on
// the node (left behind by a fault between its acquisition and release)
// reclaims it immediately.
//
// expectLease is the lease word the caller last observed (from a decoded
// image), letting a first attempt on a free or self-owned lock CAS
// immediately; pass 0 when unknown.
func (e *Engine) Lock(addr mem.Addr, hint wire.NodeType, expectLease uint64) (*Node, error) {
	defer e.C.SetStage(e.C.SetStage(fabric.StageLock))
	want := e.nodeReadSize(hint)
	owner := uint16(e.C.ID())
	leaseAddr := addr.Add(wire.LeaseOff)
	bo := e.Backoff()
	expect := expectLease
	tryCAS := expect == 0 || wire.LeaseOwnedBy(expect, owner)
	watching := expectLease
	var opsArr [2]fabric.Op
	for {
		buf := e.grabBuf(want)
		ops := opsArr[:0]
		casIdx := -1
		if tryCAS {
			casIdx = 0
			ops = append(ops, fabric.Op{
				Kind: fabric.CAS, Addr: leaseAddr,
				Expect:  expect,
				Desired: wire.EncodeLease(owner, e.C.Clock()+e.Cfg.leasePs()),
			})
		}
		ops = append(ops, fabric.Op{Kind: fabric.Read, Addr: addr, Data: buf})
		if err := e.C.Batch(ops); err != nil {
			e.ReleaseBuf(buf)
			return nil, err
		}
		if casIdx >= 0 && ops[casIdx].Old == expect {
			if expect != 0 {
				atomic.AddUint64(&e.stats.LockSteals, 1)
			}
			hdr := wire.DecodeNodeHeader(leUint64(buf))
			if hdr.Status == wire.StatusInvalid {
				// Retired while we raced for the lock. Nobody revives a
				// retired node, so the lease we hold on it is moot.
				e.ReleaseBuf(buf)
				return nil, ErrNodeInvalid
			}
			if need := wire.NodeSize(hdr.Type); need > uint64(len(buf)) {
				// Stale size hint; re-read at full size while holding the
				// lock, under which the image is stable.
				e.ReleaseBuf(buf)
				buf = e.grabBuf(need)
				if err := e.C.Read(addr, buf); err != nil {
					e.ReleaseBuf(buf)
					return nil, err
				}
			}
			n, err := Decode(addr, buf)
			e.ReleaseBuf(buf)
			if err != nil {
				return nil, err
			}
			return n, nil
		}
		hdr := wire.DecodeNodeHeader(leUint64(buf))
		if hdr.Status == wire.StatusInvalid {
			e.ReleaseBuf(buf)
			return nil, ErrNodeInvalid
		}
		if need := wire.NodeSize(hdr.Type); need > want {
			want = need
		}
		lease := leUint64(buf[wire.LeaseOff:])
		e.ReleaseBuf(buf)
		switch {
		case lease == 0:
			tryCAS, expect = true, 0
		case wire.LeaseOwnedBy(lease, owner):
			// Our own abandoned lease: reclaim without waiting it out.
			tryCAS, expect = true, lease
		case lease == watching && bo.WaitedPs() >= e.Cfg.leasePs():
			// Same holder for a full lease of our waiting: presume dead.
			tryCAS, expect = true, lease
		default:
			if lease != watching {
				watching = lease
				bo.ResetWatch()
			}
			tryCAS = false
		}
		if !bo.Wait() {
			return nil, fmt.Errorf("%w: lock on %v", ErrRetriesExhausted, addr)
		}
	}
}

// UnlockOp builds the CAS releasing a lease taken by Lock. It is meant to
// be piggybacked onto the final doorbell batch of a write operation
// (paper §IV: "followed by a piggybacked lock release"). The CAS expects
// our exact lease word, so a release after our lock was presumed dead and
// stolen fails harmlessly instead of unlocking the thief.
func (e *Engine) UnlockOp(n *Node) fabric.Op {
	return fabric.Op{
		Kind: fabric.CAS, Addr: n.LeaseAddr(),
		Expect:  n.LeaseWord,
		Desired: 0,
	}
}

// InvalidateOp builds the write retiring a node after a type switch.
func (e *Engine) InvalidateOp(n *Node) fabric.Op {
	w := wire.WithStatus(n.HdrWord, wire.StatusInvalid)
	return fabric.Op{Kind: fabric.Write, Addr: n.Addr, Data: leBytes(w)}
}

func leUint64(b []byte) uint64 {
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leBytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// MatchPartial compares key against node n's compressed path. It returns
// the number of partial bytes matched and whether the whole partial (and
// thus the node's full prefix) is a prefix of key.
func MatchPartial(n *Node, key []byte) (matched int, full bool) {
	base := n.Base()
	if base > len(key) {
		return 0, false
	}
	rest := key[base:]
	m := 0
	for m < len(n.Partial) && m < len(rest) && n.Partial[m] == rest[m] {
		m++
	}
	return m, m == len(n.Partial)
}

// CommonPrefixLen returns the length of the longest common prefix of two
// keys.
func CommonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
