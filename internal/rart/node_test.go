package rart

import (
	"bytes"
	"testing"
	"testing/quick"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

func TestNewNodeFields(t *testing.T) {
	n := NewNode(wire.Node4, []byte("LYRICS"), 3)
	if n.Hdr.Depth != 6 || n.Hdr.PartialLen != 3 {
		t.Errorf("header = %+v", n.Hdr)
	}
	if string(n.Partial) != "ICS" {
		t.Errorf("partial = %q", n.Partial)
	}
	if n.Hdr.PrefixHash != wire.PrefixHash42([]byte("LYRICS")) {
		t.Error("prefix hash not derived from full prefix")
	}
	if n.Base() != 3 {
		t.Errorf("base = %d", n.Base())
	}
}

func TestNewNodeOversizePartialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for partial > MaxPartial")
		}
	}()
	NewNode(wire.Node4, bytes.Repeat([]byte("x"), 40), wire.MaxPartial+1)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, typ := range []wire.NodeType{wire.Node4, wire.Node16, wire.Node48, wire.Node256} {
		n := NewNode(typ, []byte("prefix!"), 4)
		n.Addr = mem.NewAddr(2, 4096)
		n.EOL = wire.Slot{Present: true, Leaf: true, Addr: mem.NewAddr(1, 64)}
		n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: 'a', Addr: mem.NewAddr(0, 128)})
		n.addChildLocal(wire.Slot{Present: true, KeyByte: 'z', ChildType: wire.Node16, Addr: mem.NewAddr(1, 256)})

		buf := n.Encode()
		if uint64(len(buf)) != wire.NodeSize(typ) {
			t.Fatalf("%v image size %d != %d", typ, len(buf), wire.NodeSize(typ))
		}
		got, err := Decode(n.Addr, buf)
		if err != nil {
			t.Fatalf("%v decode: %v", typ, err)
		}
		if got.Hdr != n.Hdr || !bytes.Equal(got.Partial, n.Partial) || got.EOL != n.EOL {
			t.Errorf("%v metadata mismatch", typ)
		}
		a, _, ok := got.Child('a')
		if !ok || !a.Leaf || a.Addr != mem.NewAddr(0, 128) {
			t.Errorf("%v child a = %+v ok=%v", typ, a, ok)
		}
		z, _, ok := got.Child('z')
		if !ok || z.Leaf || z.ChildType != wire.Node16 {
			t.Errorf("%v child z = %+v ok=%v", typ, z, ok)
		}
		if _, _, ok := got.Child('q'); ok {
			t.Errorf("%v phantom child", typ)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(0, make([]byte, 8)); err == nil {
		t.Error("short buffer decoded")
	}
	n := NewNode(wire.Node48, []byte("p"), 1)
	if _, err := Decode(0, n.Encode()[:100]); err == nil {
		t.Error("truncated Node48 decoded")
	}
}

func TestChildrenSortedAllTypes(t *testing.T) {
	for _, typ := range []wire.NodeType{wire.Node4, wire.Node16, wire.Node48, wire.Node256} {
		n := NewNode(typ, nil, 0)
		for _, b := range []byte{9, 3, 200, 47} {
			n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: b, Addr: mem.NewAddr(0, 64)})
		}
		kids := n.Children()
		if len(kids) != 4 {
			t.Fatalf("%v children = %d", typ, len(kids))
		}
		for i := 1; i < len(kids); i++ {
			if kids[i-1].KeyByte >= kids[i].KeyByte {
				t.Fatalf("%v children unsorted", typ)
			}
		}
	}
}

func TestGrownPreservesEverything(t *testing.T) {
	n := NewNode(wire.Node4, []byte("abcd"), 2)
	n.Addr = mem.NewAddr(0, 512)
	n.EOL = wire.Slot{Present: true, Leaf: true, Addr: mem.NewAddr(0, 64)}
	for _, b := range []byte{1, 2, 3, 4} {
		n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: b, Addr: mem.NewAddr(0, uint64(b)*64)})
	}
	g := n.Grown()
	if g.Hdr.Type != wire.Node16 {
		t.Errorf("grown type = %v", g.Hdr.Type)
	}
	if g.Hdr.Depth != n.Hdr.Depth || g.Hdr.PrefixHash != n.Hdr.PrefixHash ||
		g.Hdr.PartialLen != n.Hdr.PartialLen {
		t.Error("grown header lost fields")
	}
	if g.Hdr.Status != wire.StatusIdle {
		t.Error("grown copy must be born Idle")
	}
	if g.EOL != n.EOL || !bytes.Equal(g.Partial, n.Partial) {
		t.Error("grown copy lost EOL/partial")
	}
	for _, b := range []byte{1, 2, 3, 4} {
		s, _, ok := g.Child(b)
		if !ok || s.Addr != mem.NewAddr(0, uint64(b)*64) {
			t.Errorf("grown copy lost child %d", b)
		}
	}
	// Room for more children now.
	if _, ok := g.FreeSlot(5); !ok {
		t.Error("grown Node16 has no free slot")
	}
}

func TestGrowChainToNode256(t *testing.T) {
	n := NewNode(wire.Node4, nil, 0)
	for b := 0; b < 4; b++ {
		n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: byte(b), Addr: mem.NewAddr(0, 64)})
	}
	for _, want := range []wire.NodeType{wire.Node16, wire.Node48, wire.Node256} {
		n = n.Grown()
		if n.Hdr.Type != want {
			t.Fatalf("grew to %v, want %v", n.Hdr.Type, want)
		}
		for b := n.NumChildren(); b < n.Hdr.Type.Capacity(); b++ {
			n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: byte(b), Addr: mem.NewAddr(0, 64)})
		}
		if _, ok := n.FreeSlot(255); ok && n.Hdr.Type != wire.Node256 {
			t.Fatalf("%v reports free slot while full", n.Hdr.Type)
		}
	}
	if n.NumChildren() != 256 {
		t.Errorf("final children = %d", n.NumChildren())
	}
}

func TestFreeSlotSemantics(t *testing.T) {
	n := NewNode(wire.Node256, nil, 0)
	n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: 7, Addr: mem.NewAddr(0, 64)})
	if _, ok := n.FreeSlot(7); ok {
		t.Error("Node256 slot 7 should be taken")
	}
	if idx, ok := n.FreeSlot(8); !ok || idx != 8 {
		t.Error("Node256 free slot must be the key byte itself")
	}
}

func TestSlotAddrLayout(t *testing.T) {
	n := NewNode(wire.Node48, []byte("xy"), 1)
	n.Addr = mem.NewAddr(3, 8192)
	if n.EOLAddr() != n.Addr.Add(wire.EOLSlotOff) {
		t.Error("EOL addr wrong")
	}
	if n.IndexAddr(10) != n.Addr.Add(wire.SlotBase+10) {
		t.Error("index addr wrong")
	}
	if n.SlotAddr(2) != n.Addr.Add(wire.SlotsOff(wire.Node48)+16) {
		t.Error("slot addr wrong")
	}
}

func TestMatchPartial(t *testing.T) {
	n := NewNode(wire.Node4, []byte("LYRICS"), 3) // base=3 partial="ICS"
	cases := []struct {
		key  string
		m    int
		full bool
	}{
		{"LYRICS", 3, true},
		{"LYRICSAND", 3, true},
		{"LYRICX", 2, false},
		{"LYRI", 1, false},
		{"LYR", 0, false}, // shorter than base+1 but equal to base
		{"LY", 0, false},  // shorter than base
	}
	for _, c := range cases {
		m, full := MatchPartial(n, []byte(c.key))
		if m != c.m || full != c.full {
			t.Errorf("MatchPartial(%q) = (%d,%v), want (%d,%v)", c.key, m, full, c.m, c.full)
		}
	}
}

func TestOnPath(t *testing.T) {
	n := NewNode(wire.Node4, []byte("LYR"), 2)
	if match, inc := OnPath(n, []byte("LYRICS")); !match || inc {
		t.Errorf("on-path key rejected: %v %v", match, inc)
	}
	if match, _ := OnPath(n, []byte("LYX")); match {
		t.Error("diverging key accepted")
	}
	// Corrupt the stored hash: partial matches but hash disagrees →
	// inconsistent observation.
	n.Hdr.PrefixHash ^= 1
	if match, inc := OnPath(n, []byte("LYRICS")); match || !inc {
		t.Errorf("hash mismatch not flagged inconsistent: %v %v", match, inc)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	f := func(a, b []byte) bool {
		n := CommonPrefixLen(a, b)
		if n > len(a) || n > len(b) {
			return false
		}
		if !bytes.Equal(a[:n], b[:n]) {
			return false
		}
		return n == len(a) || n == len(b) || a[n] != b[n]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNode48IndexConsistency(t *testing.T) {
	n := NewNode(wire.Node48, nil, 0)
	for b := 0; b < 48; b++ {
		n.addChildLocal(wire.Slot{Present: true, Leaf: true, KeyByte: byte(b * 5), Addr: mem.NewAddr(0, uint64(b+1)*64)})
	}
	buf := n.Encode()
	got, err := Decode(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 48; b++ {
		s, _, ok := got.Child(byte(b * 5))
		if !ok || s.Addr != mem.NewAddr(0, uint64(b+1)*64) {
			t.Fatalf("child %d lost through encode/decode", b*5)
		}
	}
	if _, ok := got.FreeSlot(1); ok {
		t.Error("full Node48 reports free slot")
	}
}
