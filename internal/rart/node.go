// Package rart is the remote-ART node engine: the machinery for operating
// adaptive-radix-tree nodes that live in memory-node memory, shared by all
// three systems this repository builds (Sphinx, the SMART baseline and the
// naive DM-ART baseline). It provides decoded node images, one-sided
// read/write/lock protocols, and the structural operations of §IV of the
// paper — child installation, node type switches, leaf conversions and
// compressed-path splits — with the status-field coherence protocol of
// §III-C.
//
// The systems differ in how they *find* a node (hash table + filter vs
// cached traversal vs root walk) and in what they do when structure
// changes (Sphinx maintains its inner-node hash table); those parts live
// in internal/core, internal/smart and internal/artdm. Everything that
// touches node bytes lives here.
package rart

import (
	"encoding/binary"
	"fmt"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// Node is a decoded inner-node image together with the address it was read
// from, the raw header word observed, and the raw lease word (the node lock
// — the CAS expectation for acquiring, stealing or releasing it).
type Node struct {
	Addr      mem.Addr
	Hdr       wire.NodeHeader
	HdrWord   uint64
	LeaseWord uint64
	EOL       wire.Slot
	Partial   []byte
	Index     []byte   // Node48 only: 256-byte child index
	Slots     []uint64 // raw slot words; len = capacity
}

// Base returns the length of the full prefix covered before this node's
// partial bytes: Depth - PartialLen. The node's partial spans key bytes
// [Base, Depth).
func (n *Node) Base() int { return int(n.Hdr.Depth) - int(n.Hdr.PartialLen) }

// Decode parses a node image read from addr. The buffer must hold at least
// the node's encoded size; Decode reports how many bytes the node actually
// occupies so callers that over-read can tell.
func Decode(addr mem.Addr, buf []byte) (*Node, error) {
	if len(buf) < wire.SlotBase {
		return nil, fmt.Errorf("rart: node image of %d bytes too short", len(buf))
	}
	w := binary.LittleEndian.Uint64(buf[wire.HeaderOff:])
	hdr := wire.DecodeNodeHeader(w)
	// Reject structurally impossible headers: a torn read or a collided
	// pointer can surface arbitrary bytes, and callers must get a clean
	// error to retry on rather than a garbage node.
	if hdr.PartialLen > wire.MaxPartial {
		return nil, fmt.Errorf("rart: header partialLen %d exceeds max %d", hdr.PartialLen, wire.MaxPartial)
	}
	if int(hdr.PartialLen) > int(hdr.Depth) {
		return nil, fmt.Errorf("rart: header partialLen %d exceeds depth %d", hdr.PartialLen, hdr.Depth)
	}
	if hdr.Status > wire.StatusInvalid {
		return nil, fmt.Errorf("rart: undefined status %d", hdr.Status)
	}
	size := wire.NodeSize(hdr.Type)
	if uint64(len(buf)) < size {
		return nil, fmt.Errorf("rart: %v image needs %d bytes, have %d", hdr.Type, size, len(buf))
	}
	n := &Node{
		Addr:      addr,
		Hdr:       hdr,
		HdrWord:   w,
		LeaseWord: binary.LittleEndian.Uint64(buf[wire.LeaseOff:]),
		EOL:       wire.DecodeSlot(binary.LittleEndian.Uint64(buf[wire.EOLSlotOff:])),
		Partial:   append([]byte(nil), buf[wire.PartialOff:wire.PartialOff+int(hdr.PartialLen)]...),
	}
	if hdr.Type == wire.Node48 {
		n.Index = append([]byte(nil), buf[wire.SlotBase:wire.SlotBase+wire.Node48IndexSize]...)
	}
	cap := hdr.Type.Capacity()
	n.Slots = make([]uint64, cap)
	off := int(wire.SlotsOff(hdr.Type))
	for i := 0; i < cap; i++ {
		n.Slots[i] = binary.LittleEndian.Uint64(buf[off+8*i:])
	}
	return n, nil
}

// Encode serializes the node into a fresh buffer of its exact size.
func (n *Node) Encode() []byte {
	buf := make([]byte, wire.NodeSize(n.Hdr.Type))
	binary.LittleEndian.PutUint64(buf[wire.HeaderOff:], n.Hdr.Encode())
	binary.LittleEndian.PutUint64(buf[wire.LeaseOff:], n.LeaseWord)
	binary.LittleEndian.PutUint64(buf[wire.EOLSlotOff:], n.EOL.Encode())
	copy(buf[wire.PartialOff:], n.Partial)
	if n.Hdr.Type == wire.Node48 {
		copy(buf[wire.SlotBase:], n.Index)
	}
	off := int(wire.SlotsOff(n.Hdr.Type))
	for i, w := range n.Slots {
		binary.LittleEndian.PutUint64(buf[off+8*i:], w)
	}
	return buf
}

// Child returns the slot for edge byte b and the slot's position, or
// ok=false if absent.
func (n *Node) Child(b byte) (slot wire.Slot, idx int, ok bool) {
	switch n.Hdr.Type {
	case wire.Node4, wire.Node16:
		for i, w := range n.Slots {
			s := wire.DecodeSlot(w)
			if s.Present && s.KeyByte == b {
				return s, i, true
			}
		}
	case wire.Node48:
		// A torn or corrupt image can carry index bytes beyond the slot
		// array; treat them as absent (callers re-validate and retry).
		if p := n.Index[b]; p != 0 && int(p) <= len(n.Slots) {
			s := wire.DecodeSlot(n.Slots[p-1])
			if s.Present {
				return s, int(p - 1), true
			}
		}
	case wire.Node256:
		s := wire.DecodeSlot(n.Slots[b])
		if s.Present {
			return s, int(b), true
		}
	}
	return wire.Slot{}, 0, false
}

// FreeSlot returns the position where a child for edge byte b can be
// installed, or ok=false if the node is full for that byte.
func (n *Node) FreeSlot(b byte) (idx int, ok bool) {
	switch n.Hdr.Type {
	case wire.Node4, wire.Node16, wire.Node48:
		for i, w := range n.Slots {
			if w == 0 {
				return i, true
			}
		}
		return 0, false
	case wire.Node256:
		if n.Slots[b] == 0 {
			return int(b), true
		}
		return 0, false
	}
	return 0, false
}

// NumChildren counts present children.
func (n *Node) NumChildren() int {
	c := 0
	for _, w := range n.Slots {
		if wire.DecodeSlot(w).Present {
			c++
		}
	}
	return c
}

// Children returns present (edge byte, slot) pairs in ascending edge order.
func (n *Node) Children() []wire.Slot {
	var out []wire.Slot
	switch n.Hdr.Type {
	case wire.Node4, wire.Node16:
		// Slots are unordered on the wire; collect then sort by key byte.
		for _, w := range n.Slots {
			if s := wire.DecodeSlot(w); s.Present {
				out = append(out, s)
			}
		}
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1].KeyByte > out[j].KeyByte; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	case wire.Node48:
		for b := 0; b < 256; b++ {
			if p := n.Index[b]; p != 0 && int(p) <= len(n.Slots) {
				if s := wire.DecodeSlot(n.Slots[p-1]); s.Present {
					out = append(out, s)
				}
			}
		}
	case wire.Node256:
		for b := 0; b < 256; b++ {
			if s := wire.DecodeSlot(n.Slots[b]); s.Present {
				out = append(out, s)
			}
		}
	}
	return out
}

// SlotAddr returns the global address of slot word idx.
func (n *Node) SlotAddr(idx int) mem.Addr {
	return n.Addr.Add(wire.SlotsOff(n.Hdr.Type) + 8*uint64(idx))
}

// EOLAddr returns the global address of the EOL slot word.
func (n *Node) EOLAddr() mem.Addr { return n.Addr.Add(wire.EOLSlotOff) }

// LeaseAddr returns the global address of the lease (lock) word.
func (n *Node) LeaseAddr() mem.Addr { return n.Addr.Add(wire.LeaseOff) }

// IndexAddr returns the global address of the Node48 index byte for b.
func (n *Node) IndexAddr(b byte) mem.Addr {
	return n.Addr.Add(wire.SlotBase + uint64(b))
}

// Grown returns a copy of n with the next capacity class, preserving
// header fields (depth, partial, prefix hash), EOL and children. The copy
// has no address and Idle status; the caller allocates and publishes it.
func (n *Node) Grown() *Node {
	g := &Node{
		Hdr:     n.Hdr,
		EOL:     n.EOL,
		Partial: append([]byte(nil), n.Partial...),
	}
	g.Hdr.Type = n.Hdr.Type.Grow()
	g.Hdr.Status = wire.StatusIdle
	g.Slots = make([]uint64, g.Hdr.Type.Capacity())
	if g.Hdr.Type == wire.Node48 {
		g.Index = make([]byte, wire.Node48IndexSize)
	}
	for _, s := range n.Children() {
		g.addChildLocal(s)
	}
	g.HdrWord = g.Hdr.Encode()
	return g
}

// addChildLocal inserts into the decoded image only (used when building
// nodes locally before they are written out).
func (g *Node) addChildLocal(s wire.Slot) {
	switch g.Hdr.Type {
	case wire.Node4, wire.Node16:
		for i, w := range g.Slots {
			if w == 0 {
				g.Slots[i] = s.Encode()
				return
			}
		}
	case wire.Node48:
		for i, w := range g.Slots {
			if w == 0 {
				g.Slots[i] = s.Encode()
				g.Index[s.KeyByte] = uint8(i + 1)
				return
			}
		}
	case wire.Node256:
		g.Slots[s.KeyByte] = s.Encode()
		return
	}
	panic("rart: addChildLocal on full node")
}

// NewNode builds a fresh local node image with the given type, depth and
// partial bytes (full prefix = prefix; partial = its tail).
func NewNode(t wire.NodeType, prefix []byte, partialLen int) *Node {
	if partialLen > wire.MaxPartial {
		panic(fmt.Sprintf("rart: partial of %d exceeds max %d", partialLen, wire.MaxPartial))
	}
	n := &Node{
		Hdr: wire.NodeHeader{
			Status:     wire.StatusIdle,
			Type:       t,
			Depth:      uint16(len(prefix)),
			PartialLen: uint8(partialLen),
			PrefixHash: wire.PrefixHash42(prefix),
		},
		Partial: append([]byte(nil), prefix[len(prefix)-partialLen:]...),
		Slots:   make([]uint64, t.Capacity()),
	}
	if t == wire.Node48 {
		n.Index = make([]byte, wire.Node48IndexSize)
	}
	n.HdrWord = n.Hdr.Encode()
	return n
}
