// Package consistenthash implements the consistent-hashing ring Sphinx uses
// to spread ART nodes evenly across memory nodes (paper §III: "The ART
// Nodes of Sphinx are evenly distributed across MNs by consistent
// hashing"). Each Ring value is immutable and shared read-only by every
// client, so lookups are lock-free; elastic membership derives NEW rings
// (WithNode / WithoutNode) and swaps them in atomically at the placement
// layer rather than mutating a ring in place.
package consistenthash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// ErrNoNodes reports a ring built over an empty node list: a cluster
// without memory nodes cannot place anything.
var ErrNoNodes = errors.New("consistenthash: no memory nodes")

// ErrDuplicateNode reports a node list naming the same memory node twice,
// which would silently double-weight it on the ring.
var ErrDuplicateNode = errors.New("consistenthash: duplicate memory node")

// DefaultVirtualNodes is the number of ring points per memory node. A few
// hundred keeps the load imbalance between nodes within a few percent.
const DefaultVirtualNodes = 128

// Ring maps 64-bit placement hashes to memory nodes.
type Ring struct {
	points []point
	nodes  []mem.NodeID
}

type point struct {
	hash uint64
	node mem.NodeID
}

// New builds a ring over the given memory nodes with virtualNodes ring
// points each (0 selects DefaultVirtualNodes). It panics on an invalid
// node list; use NewChecked where a misconfiguration must surface as an
// error instead.
func New(nodes []mem.NodeID, virtualNodes int) *Ring {
	r, err := NewChecked(nodes, virtualNodes)
	if err != nil {
		panic(err)
	}
	return r
}

// NewChecked builds a ring over the given memory nodes with virtualNodes
// ring points each (0 selects DefaultVirtualNodes). It rejects an empty
// node list (ErrNoNodes) and a list naming the same node twice
// (ErrDuplicateNode).
func NewChecked(nodes []mem.NodeID, virtualNodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	seen := make(map[mem.NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("%w: node %d listed twice", ErrDuplicateNode, uint64(n))
		}
		seen[n] = struct{}{}
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{nodes: append([]mem.NodeID(nil), nodes...)}
	// Each virtual point hashes the full 64-bit node ID plus the point
	// index. (An earlier encoding kept only the low byte of the ID, so
	// nodes 256 apart collided on every point and stacked their load.)
	var buf [16]byte
	for _, n := range nodes {
		binary.LittleEndian.PutUint64(buf[0:], uint64(n))
		for v := 0; v < virtualNodes; v++ {
			binary.LittleEndian.PutUint64(buf[8:], uint64(v))
			r.points = append(r.points, point{hash: wire.Hash64Seed(buf[:], 4), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// VirtualNodes reports the ring's points-per-node count, so a derived
// ring (WithNode / WithoutNode) can keep the original's geometry.
func (r *Ring) VirtualNodes() int {
	if len(r.nodes) == 0 {
		return DefaultVirtualNodes
	}
	return len(r.points) / len(r.nodes)
}

// WithNode derives a new ring with node n added. Because every node's
// virtual points depend only on its own ID, all surviving points keep
// their positions: only the key ranges claimed by n's new points change
// owner. Returns ErrDuplicateNode if n is already on the ring.
func (r *Ring) WithNode(n mem.NodeID) (*Ring, error) {
	nodes := append(append([]mem.NodeID(nil), r.nodes...), n)
	return NewChecked(nodes, r.VirtualNodes())
}

// WithoutNode derives a new ring with node n removed: n's ranges fall to
// their clockwise successors and no other key changes owner. Returns
// ErrNoNodes if n is the last node, or an error naming n if it is not on
// the ring.
func (r *Ring) WithoutNode(n mem.NodeID) (*Ring, error) {
	nodes := make([]mem.NodeID, 0, len(r.nodes))
	for _, m := range r.nodes {
		if m != n {
			nodes = append(nodes, m)
		}
	}
	if len(nodes) == len(r.nodes) {
		return nil, fmt.Errorf("consistenthash: node %d not on the ring", uint64(n))
	}
	return NewChecked(nodes, r.VirtualNodes())
}

// Contains reports whether node n is on the ring.
func (r *Ring) Contains(n mem.NodeID) bool {
	for _, m := range r.nodes {
		if m == n {
			return true
		}
	}
	return false
}

// Nodes returns the memory nodes on the ring.
func (r *Ring) Nodes() []mem.NodeID { return r.nodes }

// Owner returns the memory node owning the given placement hash: the first
// ring point clockwise from the hash.
func (r *Ring) Owner(hash uint64) mem.NodeID {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnerKey returns the memory node owning the given key (e.g., an inner
// node's full prefix).
func (r *Ring) OwnerKey(key []byte) mem.NodeID {
	return r.Owner(wire.Hash64Seed(key, 5))
}

// Owners returns the hash's successor list: the first n distinct memory
// nodes clockwise from the hash, in ring order. Owners(h, n)[0] is always
// Owner(h); replicated placement writes to the whole list. n is clamped
// to the node count, so Owners(h, len(Nodes())) enumerates every node in
// failover-preference order.
func (r *Ring) Owners(hash uint64, n int) []mem.NodeID {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	owners := make([]mem.NodeID, 0, n)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	for j := 0; j < len(r.points) && len(owners) < n; j++ {
		cand := r.points[(i+j)%len(r.points)].node
		dup := false
		for _, o := range owners {
			if o == cand {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, cand)
		}
	}
	return owners
}

// OwnersKey returns the key's successor list: the first n distinct memory
// nodes clockwise from the key's placement hash.
func (r *Ring) OwnersKey(key []byte, n int) []mem.NodeID {
	return r.Owners(wire.Hash64Seed(key, 5), n)
}

// String summarizes the ring for diagnostics.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d points)", len(r.nodes), len(r.points))
}
