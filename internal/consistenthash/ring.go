// Package consistenthash implements the consistent-hashing ring Sphinx uses
// to spread ART nodes evenly across memory nodes (paper §III: "The ART
// Nodes of Sphinx are evenly distributed across MNs by consistent
// hashing"). The ring is built once at cluster setup and shared read-only
// by every client, so lookups are lock-free.
package consistenthash

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// DefaultVirtualNodes is the number of ring points per memory node. A few
// hundred keeps the load imbalance between nodes within a few percent.
const DefaultVirtualNodes = 128

// Ring maps 64-bit placement hashes to memory nodes.
type Ring struct {
	points []point
	nodes  []mem.NodeID
}

type point struct {
	hash uint64
	node mem.NodeID
}

// New builds a ring over the given memory nodes with virtualNodes ring
// points each (0 selects DefaultVirtualNodes). It panics on an empty node
// list: a cluster without memory nodes cannot place anything.
func New(nodes []mem.NodeID, virtualNodes int) *Ring {
	if len(nodes) == 0 {
		panic("consistenthash: no memory nodes")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{nodes: append([]mem.NodeID(nil), nodes...)}
	var buf [10]byte
	for _, n := range nodes {
		buf[0] = byte(n)
		buf[1] = byte(n)
		for v := 0; v < virtualNodes; v++ {
			binary.LittleEndian.PutUint64(buf[2:], uint64(v))
			r.points = append(r.points, point{hash: wire.Hash64Seed(buf[:], 4), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the memory nodes on the ring.
func (r *Ring) Nodes() []mem.NodeID { return r.nodes }

// Owner returns the memory node owning the given placement hash: the first
// ring point clockwise from the hash.
func (r *Ring) Owner(hash uint64) mem.NodeID {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnerKey returns the memory node owning the given key (e.g., an inner
// node's full prefix).
func (r *Ring) OwnerKey(key []byte) mem.NodeID {
	return r.Owner(wire.Hash64Seed(key, 5))
}

// Owners returns the hash's successor list: the first n distinct memory
// nodes clockwise from the hash, in ring order. Owners(h, n)[0] is always
// Owner(h); replicated placement writes to the whole list. n is clamped
// to the node count, so Owners(h, len(Nodes())) enumerates every node in
// failover-preference order.
func (r *Ring) Owners(hash uint64, n int) []mem.NodeID {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	owners := make([]mem.NodeID, 0, n)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	for j := 0; j < len(r.points) && len(owners) < n; j++ {
		cand := r.points[(i+j)%len(r.points)].node
		dup := false
		for _, o := range owners {
			if o == cand {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, cand)
		}
	}
	return owners
}

// OwnersKey returns the key's successor list: the first n distinct memory
// nodes clockwise from the key's placement hash.
func (r *Ring) OwnersKey(key []byte, n int) []mem.NodeID {
	return r.Owners(wire.Hash64Seed(key, 5), n)
}

// String summarizes the ring for diagnostics.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d points)", len(r.nodes), len(r.points))
}
