package consistenthash

import (
	"fmt"
	"testing"

	"sphinx/internal/mem"
)

func TestOwnerDeterministic(t *testing.T) {
	r1 := New([]mem.NodeID{0, 1, 2}, 64)
	r2 := New([]mem.NodeID{0, 1, 2}, 64)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r1.OwnerKey(key) != r2.OwnerKey(key) {
			t.Fatalf("ring not deterministic for %q", key)
		}
	}
}

func TestOwnerInNodeSet(t *testing.T) {
	nodes := []mem.NodeID{3, 5, 9}
	r := New(nodes, 0)
	valid := map[mem.NodeID]bool{3: true, 5: true, 9: true}
	for i := 0; i < 1000; i++ {
		n := r.OwnerKey([]byte(fmt.Sprintf("k%d", i)))
		if !valid[n] {
			t.Fatalf("owner %d not in node set", n)
		}
	}
}

func TestBalance(t *testing.T) {
	nodes := []mem.NodeID{0, 1, 2}
	r := New(nodes, DefaultVirtualNodes)
	counts := make(map[mem.NodeID]int)
	const total = 30000
	for i := 0; i < total; i++ {
		counts[r.OwnerKey([]byte(fmt.Sprintf("prefix/%d", i)))]++
	}
	want := total / len(nodes)
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d of %d keys (want ≈%d): imbalanced", n, c, total, want)
		}
	}
}

func TestSingleNode(t *testing.T) {
	r := New([]mem.NodeID{7}, 4)
	for i := 0; i < 100; i++ {
		if n := r.Owner(uint64(i) * 0x9e3779b9); n != 7 {
			t.Fatalf("single-node ring returned %d", n)
		}
	}
}

func TestStabilityUnderNodeAddition(t *testing.T) {
	// Adding a node must move only ~1/n of the keys (the consistent-hash
	// property that motivates its use for node placement).
	rSmall := New([]mem.NodeID{0, 1, 2}, DefaultVirtualNodes)
	rBig := New([]mem.NodeID{0, 1, 2, 3}, DefaultVirtualNodes)
	const total = 20000
	moved := 0
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if rSmall.OwnerKey(key) != rBig.OwnerKey(key) {
			moved++
		}
	}
	// Expect ≈ total/4 moved; fail above half.
	if moved > total/2 {
		t.Errorf("%d of %d keys moved on node addition (want ≈%d)", moved, total, total/4)
	}
	if moved == 0 {
		t.Error("no keys moved to the new node")
	}
}

func TestRemovalRemapsOnlyRemovedNodesKeys(t *testing.T) {
	// Vnode hashes depend only on the node ID, so a ring built over the
	// surviving node subset is exactly the ring with the dead node's
	// points removed. On removal, a key may change owner only if the
	// removed node owned it — everyone else's keys must stay put.
	full := New([]mem.NodeID{0, 1, 2, 3}, DefaultVirtualNodes)
	without := New([]mem.NodeID{0, 1, 3}, DefaultVirtualNodes)
	const removed = mem.NodeID(2)
	const total = 20000
	movedFromRemoved := 0
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		before, after := full.OwnerKey(key), without.OwnerKey(key)
		if before == after {
			continue
		}
		if before != removed {
			t.Fatalf("key %q moved %d→%d though node %d was the one removed",
				key, before, after, removed)
		}
		if after == removed {
			t.Fatalf("key %q assigned to removed node %d", key, removed)
		}
		movedFromRemoved++
	}
	if movedFromRemoved == 0 {
		t.Error("no keys moved off the removed node (it owned none?)")
	}
}

func TestOwnersDistinctAndOrdered(t *testing.T) {
	nodes := []mem.NodeID{0, 1, 2, 3, 4}
	r := New(nodes, DefaultVirtualNodes)
	for i := 0; i < 5000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		for n := 1; n <= len(nodes); n++ {
			owners := r.OwnersKey(key, n)
			if len(owners) != n {
				t.Fatalf("OwnersKey(%q, %d) returned %d owners", key, n, len(owners))
			}
			if owners[0] != r.OwnerKey(key) {
				t.Fatalf("OwnersKey(%q)[0] = %d, Owner = %d", key, owners[0], r.OwnerKey(key))
			}
			seen := make(map[mem.NodeID]bool, n)
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("OwnersKey(%q, %d) placed two replicas on node %d: %v",
						key, n, o, owners)
				}
				seen[o] = true
			}
		}
	}
}

func TestOwnersClampAndEmpty(t *testing.T) {
	r := New([]mem.NodeID{0, 1}, 8)
	if got := r.Owners(42, 5); len(got) != 2 {
		t.Errorf("Owners clamped to node count: got %v", got)
	}
	if got := r.Owners(42, 0); got != nil {
		t.Errorf("Owners(h, 0) = %v, want nil", got)
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty node list")
		}
	}()
	New(nil, 8)
}

func TestNodesAccessor(t *testing.T) {
	nodes := []mem.NodeID{4, 2}
	r := New(nodes, 8)
	got := r.Nodes()
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Errorf("Nodes() = %v", got)
	}
}

func TestString(t *testing.T) {
	r := New([]mem.NodeID{0, 1}, 16)
	if s := r.String(); s != "ring(2 nodes, 32 points)" {
		t.Errorf("String() = %q", s)
	}
}
