package consistenthash

import (
	"fmt"
	"testing"

	"sphinx/internal/mem"
)

func TestOwnerDeterministic(t *testing.T) {
	r1 := New([]mem.NodeID{0, 1, 2}, 64)
	r2 := New([]mem.NodeID{0, 1, 2}, 64)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r1.OwnerKey(key) != r2.OwnerKey(key) {
			t.Fatalf("ring not deterministic for %q", key)
		}
	}
}

func TestOwnerInNodeSet(t *testing.T) {
	nodes := []mem.NodeID{3, 5, 9}
	r := New(nodes, 0)
	valid := map[mem.NodeID]bool{3: true, 5: true, 9: true}
	for i := 0; i < 1000; i++ {
		n := r.OwnerKey([]byte(fmt.Sprintf("k%d", i)))
		if !valid[n] {
			t.Fatalf("owner %d not in node set", n)
		}
	}
}

func TestBalance(t *testing.T) {
	nodes := []mem.NodeID{0, 1, 2}
	r := New(nodes, DefaultVirtualNodes)
	counts := make(map[mem.NodeID]int)
	const total = 30000
	for i := 0; i < total; i++ {
		counts[r.OwnerKey([]byte(fmt.Sprintf("prefix/%d", i)))]++
	}
	want := total / len(nodes)
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d of %d keys (want ≈%d): imbalanced", n, c, total, want)
		}
	}
}

func TestSingleNode(t *testing.T) {
	r := New([]mem.NodeID{7}, 4)
	for i := 0; i < 100; i++ {
		if n := r.Owner(uint64(i) * 0x9e3779b9); n != 7 {
			t.Fatalf("single-node ring returned %d", n)
		}
	}
}

func TestStabilityUnderNodeAddition(t *testing.T) {
	// Adding a node must move only ~1/n of the keys (the consistent-hash
	// property that motivates its use for node placement).
	rSmall := New([]mem.NodeID{0, 1, 2}, DefaultVirtualNodes)
	rBig := New([]mem.NodeID{0, 1, 2, 3}, DefaultVirtualNodes)
	const total = 20000
	moved := 0
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if rSmall.OwnerKey(key) != rBig.OwnerKey(key) {
			moved++
		}
	}
	// Expect ≈ total/4 moved; fail above half.
	if moved > total/2 {
		t.Errorf("%d of %d keys moved on node addition (want ≈%d)", moved, total, total/4)
	}
	if moved == 0 {
		t.Error("no keys moved to the new node")
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty node list")
		}
	}()
	New(nil, 8)
}

func TestNodesAccessor(t *testing.T) {
	nodes := []mem.NodeID{4, 2}
	r := New(nodes, 8)
	got := r.Nodes()
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Errorf("Nodes() = %v", got)
	}
}

func TestString(t *testing.T) {
	r := New([]mem.NodeID{0, 1}, 16)
	if s := r.String(); s != "ring(2 nodes, 32 points)" {
		t.Errorf("String() = %q", s)
	}
}
