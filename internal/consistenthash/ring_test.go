package consistenthash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"sphinx/internal/mem"
)

func sampleKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15)
		keys[i] = k
	}
	return keys
}

// Regression: virtual-point encoding must use the full 64-bit node ID.
// The original encoding kept only byte(n), so nodes 256 apart hashed to
// identical ring points and the tie-break (lower node wins) starved the
// higher ID of all load. Pre-fix, node 257 owns zero keys here.
func TestRingWideNodeIDs(t *testing.T) {
	r := New([]mem.NodeID{1, 257}, 0)
	keys := sampleKeys(2000)
	owned := map[mem.NodeID]int{}
	for _, k := range keys {
		owned[r.OwnerKey(k)]++
	}
	for _, n := range []mem.NodeID{1, 257} {
		if owned[n] == 0 {
			t.Fatalf("node %d owns zero of %d sampled keys: %v", n, len(keys), owned)
		}
		// With 128 virtual points per node the split should be in the
		// ballpark of 50/50; 20% is a generous floor that still catches
		// the collapsed-encoding failure (0%).
		if owned[n] < len(keys)/5 {
			t.Errorf("node %d owns only %d/%d keys — virtual points likely colliding", n, owned[n], len(keys))
		}
	}
}

func TestNewCheckedRejectsEmpty(t *testing.T) {
	if _, err := NewChecked(nil, 0); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("NewChecked(nil) = %v, want ErrNoNodes", err)
	}
}

func TestNewCheckedRejectsDuplicates(t *testing.T) {
	if _, err := NewChecked([]mem.NodeID{1, 2, 1}, 0); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("NewChecked with duplicate = %v, want ErrDuplicateNode", err)
	}
}

// Property: adding one node to an N-node ring moves at most roughly
// 1/(N+1) of the key population, and every moved key moves TO the new
// node — no key changes owner between surviving nodes.
func TestWithNodeRemappingBound(t *testing.T) {
	keys := sampleKeys(10000)
	for _, n := range []int{2, 4, 8} {
		nodes := make([]mem.NodeID, n)
		for i := range nodes {
			nodes[i] = mem.NodeID(i + 1)
		}
		base := New(nodes, 0)
		added := mem.NodeID(n + 1)
		grown, err := base.WithNode(added)
		if err != nil {
			t.Fatalf("WithNode(%d): %v", added, err)
		}
		if grown.VirtualNodes() != base.VirtualNodes() {
			t.Fatalf("derived ring changed geometry: %d vs %d points per node",
				grown.VirtualNodes(), base.VirtualNodes())
		}
		moved := 0
		for _, k := range keys {
			before, after := base.OwnerKey(k), grown.OwnerKey(k)
			if before == after {
				continue
			}
			if after != added {
				t.Fatalf("n=%d: key moved %d→%d, not to the added node %d", n, before, after, added)
			}
			moved++
		}
		// Expected share is 1/(n+1); allow 2x slack for virtual-point
		// placement variance at 128 points per node.
		limit := 2 * len(keys) / (n + 1)
		if moved > limit {
			t.Errorf("n=%d: adding one node moved %d/%d keys (> limit %d)", n, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: added node claimed zero keys", n)
		}
		if _, err := grown.WithNode(added); !errors.Is(err, ErrDuplicateNode) {
			t.Errorf("WithNode of a present node = %v, want ErrDuplicateNode", err)
		}
	}
}

// Property: removing a node hands exactly its ranges to survivors — the
// drained node owns nothing afterwards and no key moves between two
// surviving nodes.
func TestWithoutNodeDrainsCompletely(t *testing.T) {
	keys := sampleKeys(10000)
	base := New([]mem.NodeID{1, 2, 3, 4}, 0)
	drained := mem.NodeID(3)
	shrunk, err := base.WithoutNode(drained)
	if err != nil {
		t.Fatalf("WithoutNode(%d): %v", drained, err)
	}
	if shrunk.Contains(drained) {
		t.Fatalf("drained node %d still on the ring", drained)
	}
	for _, k := range keys {
		before, after := base.OwnerKey(k), shrunk.OwnerKey(k)
		if after == drained {
			t.Fatalf("drained node %d still owns a key", drained)
		}
		if before != drained && before != after {
			t.Fatalf("untouched key moved %d→%d during drain of %d", before, after, drained)
		}
	}
	if _, err := base.WithoutNode(99); err == nil {
		t.Error("WithoutNode of an absent node did not error")
	}
	single := New([]mem.NodeID{7}, 0)
	if _, err := single.WithoutNode(7); !errors.Is(err, ErrNoNodes) {
		t.Errorf("draining the last node = %v, want ErrNoNodes", err)
	}
}

func TestOwnerDeterministic(t *testing.T) {
	r1 := New([]mem.NodeID{0, 1, 2}, 64)
	r2 := New([]mem.NodeID{0, 1, 2}, 64)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r1.OwnerKey(key) != r2.OwnerKey(key) {
			t.Fatalf("ring not deterministic for %q", key)
		}
	}
}

func TestOwnerInNodeSet(t *testing.T) {
	nodes := []mem.NodeID{3, 5, 9}
	r := New(nodes, 0)
	valid := map[mem.NodeID]bool{3: true, 5: true, 9: true}
	for i := 0; i < 1000; i++ {
		n := r.OwnerKey([]byte(fmt.Sprintf("k%d", i)))
		if !valid[n] {
			t.Fatalf("owner %d not in node set", n)
		}
	}
}

func TestBalance(t *testing.T) {
	nodes := []mem.NodeID{0, 1, 2}
	r := New(nodes, DefaultVirtualNodes)
	counts := make(map[mem.NodeID]int)
	const total = 30000
	for i := 0; i < total; i++ {
		counts[r.OwnerKey([]byte(fmt.Sprintf("prefix/%d", i)))]++
	}
	want := total / len(nodes)
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d of %d keys (want ≈%d): imbalanced", n, c, total, want)
		}
	}
}

func TestSingleNode(t *testing.T) {
	r := New([]mem.NodeID{7}, 4)
	for i := 0; i < 100; i++ {
		if n := r.Owner(uint64(i) * 0x9e3779b9); n != 7 {
			t.Fatalf("single-node ring returned %d", n)
		}
	}
}

func TestStabilityUnderNodeAddition(t *testing.T) {
	// Adding a node must move only ~1/n of the keys (the consistent-hash
	// property that motivates its use for node placement).
	rSmall := New([]mem.NodeID{0, 1, 2}, DefaultVirtualNodes)
	rBig := New([]mem.NodeID{0, 1, 2, 3}, DefaultVirtualNodes)
	const total = 20000
	moved := 0
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if rSmall.OwnerKey(key) != rBig.OwnerKey(key) {
			moved++
		}
	}
	// Expect ≈ total/4 moved; fail above half.
	if moved > total/2 {
		t.Errorf("%d of %d keys moved on node addition (want ≈%d)", moved, total, total/4)
	}
	if moved == 0 {
		t.Error("no keys moved to the new node")
	}
}

func TestRemovalRemapsOnlyRemovedNodesKeys(t *testing.T) {
	// Vnode hashes depend only on the node ID, so a ring built over the
	// surviving node subset is exactly the ring with the dead node's
	// points removed. On removal, a key may change owner only if the
	// removed node owned it — everyone else's keys must stay put.
	full := New([]mem.NodeID{0, 1, 2, 3}, DefaultVirtualNodes)
	without := New([]mem.NodeID{0, 1, 3}, DefaultVirtualNodes)
	const removed = mem.NodeID(2)
	const total = 20000
	movedFromRemoved := 0
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		before, after := full.OwnerKey(key), without.OwnerKey(key)
		if before == after {
			continue
		}
		if before != removed {
			t.Fatalf("key %q moved %d→%d though node %d was the one removed",
				key, before, after, removed)
		}
		if after == removed {
			t.Fatalf("key %q assigned to removed node %d", key, removed)
		}
		movedFromRemoved++
	}
	if movedFromRemoved == 0 {
		t.Error("no keys moved off the removed node (it owned none?)")
	}
}

func TestOwnersDistinctAndOrdered(t *testing.T) {
	nodes := []mem.NodeID{0, 1, 2, 3, 4}
	r := New(nodes, DefaultVirtualNodes)
	for i := 0; i < 5000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		for n := 1; n <= len(nodes); n++ {
			owners := r.OwnersKey(key, n)
			if len(owners) != n {
				t.Fatalf("OwnersKey(%q, %d) returned %d owners", key, n, len(owners))
			}
			if owners[0] != r.OwnerKey(key) {
				t.Fatalf("OwnersKey(%q)[0] = %d, Owner = %d", key, owners[0], r.OwnerKey(key))
			}
			seen := make(map[mem.NodeID]bool, n)
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("OwnersKey(%q, %d) placed two replicas on node %d: %v",
						key, n, o, owners)
				}
				seen[o] = true
			}
		}
	}
}

func TestOwnersClampAndEmpty(t *testing.T) {
	r := New([]mem.NodeID{0, 1}, 8)
	if got := r.Owners(42, 5); len(got) != 2 {
		t.Errorf("Owners clamped to node count: got %v", got)
	}
	if got := r.Owners(42, 0); got != nil {
		t.Errorf("Owners(h, 0) = %v, want nil", got)
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty node list")
		}
	}()
	New(nil, 8)
}

func TestNodesAccessor(t *testing.T) {
	nodes := []mem.NodeID{4, 2}
	r := New(nodes, 8)
	got := r.Nodes()
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Errorf("Nodes() = %v", got)
	}
}

func TestString(t *testing.T) {
	r := New([]mem.NodeID{0, 1}, 16)
	if s := r.String(); s != "ring(2 nodes, 32 points)" {
		t.Errorf("String() = %q", s)
	}
}
