package mem

import (
	"testing"
	"testing/quick"
)

func newTestOps(size uint64) (DirectOps, *Region) {
	r := NewRegion(0, size)
	InitRegionHeader(r)
	return DirectOps{Regions: map[NodeID]*Region{0: r}}, r
}

func TestAlign(t *testing.T) {
	cases := []struct{ size, align, want uint64 }{
		{0, 8, 0}, {1, 8, 8}, {8, 8, 8}, {9, 8, 16},
		{63, 64, 64}, {64, 64, 64}, {65, 64, 128},
	}
	for _, c := range cases {
		if got := Align(c.size, c.align); got != c.want {
			t.Errorf("Align(%d,%d) = %d, want %d", c.size, c.align, got, c.want)
		}
	}
}

func TestAllocatorBasic(t *testing.T) {
	ops, _ := newTestOps(1 << 20)
	a := NewAllocator(ops, 0)
	addr, err := a.Alloc(0, ClassInner, 100)
	if err != nil {
		t.Fatal(err)
	}
	if addr.IsNull() {
		t.Fatal("allocation returned null address")
	}
	if addr.Offset() < HeaderSize {
		t.Errorf("allocation at %#x overlaps the region header", addr.Offset())
	}
	if addr.Offset()%8 != 0 {
		t.Errorf("allocation at %#x not 8-byte aligned", addr.Offset())
	}
}

func TestAllocatorLeafAlignment(t *testing.T) {
	ops, _ := newTestOps(1 << 20)
	a := NewAllocator(ops, 0)
	for i := 0; i < 10; i++ {
		addr, err := a.Alloc(0, ClassLeaf, 65)
		if err != nil {
			t.Fatal(err)
		}
		if addr.Offset()%LineSize != 0 {
			t.Errorf("leaf allocation %d at %#x not %d-byte aligned", i, addr.Offset(), LineSize)
		}
	}
}

func TestAllocatorNonOverlap(t *testing.T) {
	ops, _ := newTestOps(1 << 22)
	a := NewAllocator(ops, 4096)
	type span struct{ lo, hi uint64 }
	var spans []span
	sizes := []uint64{8, 24, 64, 100, 4096, 8192, 16, 7, 1}
	for i := 0; i < 400; i++ {
		size := sizes[i%len(sizes)]
		class := Class(i % int(NumClasses))
		addr, err := a.Alloc(0, class, size)
		if err != nil {
			t.Fatal(err)
		}
		s := span{addr.Offset(), addr.Offset() + size}
		for _, prev := range spans {
			if s.lo < prev.hi && prev.lo < s.hi {
				t.Fatalf("allocation [%#x,%#x) overlaps [%#x,%#x)", s.lo, s.hi, prev.lo, prev.hi)
			}
		}
		spans = append(spans, s)
	}
}

func TestAllocatorNonOverlapProperty(t *testing.T) {
	ops, _ := newTestOps(1 << 24)
	a := NewAllocator(ops, 0)
	var prev []struct{ lo, hi uint64 }
	f := func(sz uint16, cls uint8) bool {
		size := uint64(sz)%4096 + 1
		class := Class(cls) % NumClasses
		addr, err := a.Alloc(0, class, size)
		if err != nil {
			return false
		}
		lo, hi := addr.Offset(), addr.Offset()+size
		for _, p := range prev {
			if lo < p.hi && p.lo < hi {
				return false
			}
		}
		prev = append(prev, struct{ lo, hi uint64 }{lo, hi})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorUsageAccounting(t *testing.T) {
	ops, _ := newTestOps(1 << 22)
	a := NewAllocator(ops, 4096)
	// One slab's worth of inner allocations plus one large leaf.
	for i := 0; i < 10; i++ {
		if _, err := a.Alloc(0, ClassInner, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(0, ClassLeaf, 8192); err != nil {
		t.Fatal(err)
	}
	u, err := ReadUsage(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.ByClass[ClassInner] != 4096 {
		t.Errorf("inner class usage = %d, want one 4096 slab", u.ByClass[ClassInner])
	}
	if u.ByClass[ClassLeaf] != 8192 {
		t.Errorf("leaf class usage = %d, want 8192", u.ByClass[ClassLeaf])
	}
	if u.Total != HeaderSize+4096+8192 {
		t.Errorf("total usage = %d, want %d", u.Total, HeaderSize+4096+8192)
	}
}

func TestAllocatorSlabAmortization(t *testing.T) {
	// Many small allocations should trigger few bump-pointer FAAs.
	r := NewRegion(0, 1<<22)
	InitRegionHeader(r)
	ops := countingOps{DirectOps{Regions: map[NodeID]*Region{0: r}}, new(int)}
	a := NewAllocator(ops, 4096)
	for i := 0; i < 64; i++ {
		if _, err := a.Alloc(0, ClassInner, 64); err != nil {
			t.Fatal(err)
		}
	}
	// 64 × 64 B = one 4096-byte slab: 2 FAAs (bump + class counter).
	if *ops.faas != 2 {
		t.Errorf("FAA count = %d, want 2", *ops.faas)
	}
}

type countingOps struct {
	DirectOps
	faas *int
}

func (c countingOps) FetchAdd(addr Addr, delta uint64) (uint64, error) {
	*c.faas++
	return c.DirectOps.FetchAdd(addr, delta)
}

func TestAllocatorMultipleNodes(t *testing.T) {
	r0 := NewRegion(0, 1<<20)
	r1 := NewRegion(1, 1<<20)
	InitRegionHeader(r0)
	InitRegionHeader(r1)
	ops := DirectOps{Regions: map[NodeID]*Region{0: r0, 1: r1}}
	a := NewAllocator(ops, 0)
	a0, err := a.Alloc(0, ClassLeaf, 64)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := a.Alloc(1, ClassLeaf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a0.Node() != 0 || a1.Node() != 1 {
		t.Errorf("allocations landed on wrong nodes: %v %v", a0, a1)
	}
}

func TestDirectOpsUnknownNode(t *testing.T) {
	ops, _ := newTestOps(1 << 20)
	if _, err := ops.FetchAdd(NewAddr(9, 0), 1); err == nil {
		t.Error("expected error for unknown node")
	}
	if _, err := ops.ReadUint64(NewAddr(9, 0)); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestAllocatorLargeObjectBypassesSlab(t *testing.T) {
	ops, _ := newTestOps(1 << 22)
	a := NewAllocator(ops, 4096)
	// Larger than the slab: dedicated reservation, still line-rounded.
	addr, err := a.Alloc(0, ClassHash, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Offset()%LineSize != 0 {
		t.Errorf("large object at %#x not line-aligned", addr.Offset())
	}
	u, err := ReadUsage(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.ByClass[ClassHash] != Align(100_000, LineSize) {
		t.Errorf("large object charged %d bytes", u.ByClass[ClassHash])
	}
	// A following small allocation must not overlap it.
	small, err := a.Alloc(0, ClassHash, 64)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := addr.Offset(), addr.Offset()+Align(100_000, LineSize)
	if small.Offset() >= lo && small.Offset() < hi {
		t.Error("small allocation landed inside the large object")
	}
}

func TestAllocatorSlabRoundsToLine(t *testing.T) {
	ops, _ := newTestOps(1 << 20)
	a := NewAllocator(ops, 1000) // not a line multiple
	addr, err := a.Alloc(0, ClassInner, 64)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Offset()%8 != 0 {
		t.Error("allocation unaligned")
	}
	u, _ := ReadUsage(ops, 0)
	if u.ByClass[ClassInner]%LineSize != 0 {
		t.Errorf("slab reservation %d not line-rounded", u.ByClass[ClassInner])
	}
}

func TestAllocatorMixedAlignmentWithinSlab(t *testing.T) {
	// Leaf-class slabs interleave 64-byte-aligned objects of odd sizes;
	// every returned address must stay aligned and non-overlapping.
	ops, _ := newTestOps(1 << 22)
	a := NewAllocator(ops, 8192)
	type span struct{ lo, hi uint64 }
	var spans []span
	for i := 0; i < 200; i++ {
		size := uint64(65 + i%120)
		addr, err := a.Alloc(0, ClassLeaf, size)
		if err != nil {
			t.Fatal(err)
		}
		if addr.Offset()%LineSize != 0 {
			t.Fatalf("leaf %d at %#x unaligned", i, addr.Offset())
		}
		s := span{addr.Offset(), addr.Offset() + size}
		for _, p := range spans {
			if s.lo < p.hi && p.lo < s.hi {
				t.Fatalf("overlap [%#x,%#x) vs [%#x,%#x)", s.lo, s.hi, p.lo, p.hi)
			}
		}
		spans = append(spans, s)
	}
}
