package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrPackUnpack(t *testing.T) {
	cases := []struct {
		node   NodeID
		offset uint64
	}{
		{0, 0},
		{0, 1},
		{1, 0},
		{3, 4096},
		{255, MaxOffset},
		{17, 0xdeadbeef},
	}
	for _, c := range cases {
		a := NewAddr(c.node, c.offset)
		if a.Node() != c.node {
			t.Errorf("NewAddr(%d,%#x).Node() = %d", c.node, c.offset, a.Node())
		}
		if a.Offset() != c.offset {
			t.Errorf("NewAddr(%d,%#x).Offset() = %#x", c.node, c.offset, a.Offset())
		}
	}
}

func TestAddrPackUnpackProperty(t *testing.T) {
	f := func(node NodeID, offset uint64) bool {
		node %= MaxNodes
		offset &= MaxOffset
		a := NewAddr(node, offset)
		return a.Node() == node && a.Offset() == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrFitsAddrBits(t *testing.T) {
	a := NewAddr(255, MaxOffset)
	if uint64(a) >= 1<<AddrBits {
		t.Errorf("max addr %#x does not fit in %d bits", uint64(a), AddrBits)
	}
}

func TestAddrNull(t *testing.T) {
	if !Addr(0).IsNull() {
		t.Error("zero addr should be null")
	}
	if NewAddr(0, 8).IsNull() {
		t.Error("node 0 offset 8 should not be null")
	}
	if NewAddr(1, 0).IsNull() {
		t.Error("node 1 offset 0 should not be null")
	}
	if got := Addr(0).String(); got != "null" {
		t.Errorf("null String() = %q", got)
	}
}

func TestAddrAdd(t *testing.T) {
	a := NewAddr(7, 100)
	b := a.Add(28)
	if b.Node() != 7 || b.Offset() != 128 {
		t.Errorf("Add: got %v", b)
	}
}

func TestAddrOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on offset overflow")
		}
	}()
	NewAddr(0, MaxOffset+1)
}

func TestAddrNodeOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on node overflow")
		}
	}()
	NewAddr(MaxNodes, 0)
}
