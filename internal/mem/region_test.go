package mem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegionRoundsUpSize(t *testing.T) {
	r := NewRegion(0, 100)
	if r.Size() != 128 {
		t.Errorf("size = %d, want 128", r.Size())
	}
}

func TestRegionReadWriteRoundTrip(t *testing.T) {
	r := NewRegion(2, 4096)
	src := []byte("the quick brown fox jumps over the lazy dog, twice over, for length")
	r.Write(100, src)
	dst := make([]byte, len(src))
	r.Read(100, dst)
	if !bytes.Equal(src, dst) {
		t.Errorf("round trip mismatch: %q != %q", dst, src)
	}
}

func TestRegionReadWriteProperty(t *testing.T) {
	r := NewRegion(0, 1<<16)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		offset := uint64(off)
		if offset+uint64(len(data)) > r.Size() {
			offset = r.Size() - uint64(len(data))
			if uint64(len(data)) > r.Size() {
				return true
			}
		}
		r.Write(offset, data)
		out := make([]byte, len(data))
		r.Read(offset, out)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegionUint64(t *testing.T) {
	r := NewRegion(0, 1024)
	r.WriteUint64(64, 0xdeadbeefcafebabe)
	if got := r.ReadUint64(64); got != 0xdeadbeefcafebabe {
		t.Errorf("ReadUint64 = %#x", got)
	}
}

func TestRegionCompareSwap(t *testing.T) {
	r := NewRegion(0, 1024)
	r.WriteUint64(8, 10)
	if old := r.CompareSwap(8, 10, 20); old != 10 {
		t.Errorf("CAS pre-image = %d, want 10", old)
	}
	if got := r.ReadUint64(8); got != 20 {
		t.Errorf("after CAS = %d, want 20", got)
	}
	if old := r.CompareSwap(8, 10, 30); old != 20 {
		t.Errorf("failed CAS pre-image = %d, want 20", old)
	}
	if got := r.ReadUint64(8); got != 20 {
		t.Errorf("failed CAS must not write, got %d", got)
	}
}

func TestRegionFetchAdd(t *testing.T) {
	r := NewRegion(0, 1024)
	r.WriteUint64(16, 5)
	if old := r.FetchAdd(16, 7); old != 5 {
		t.Errorf("FAA pre-image = %d, want 5", old)
	}
	if got := r.ReadUint64(16); got != 12 {
		t.Errorf("after FAA = %d, want 12", got)
	}
}

func TestRegionFetchAddConcurrent(t *testing.T) {
	r := NewRegion(0, 1024)
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.FetchAdd(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.ReadUint64(0); got != workers*each {
		t.Errorf("concurrent FAA total = %d, want %d", got, workers*each)
	}
}

func TestRegionCASConcurrentLock(t *testing.T) {
	// A CAS-based lock must admit exactly one holder at a time.
	r := NewRegion(0, 1024)
	var inside, maxInside, violations int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for r.CompareSwap(0, 0, 1) != 0 {
				}
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				if inside > 1 {
					violations++
				}
				inside--
				mu.Unlock()
				r.WriteUint64(0, 0)
			}
		}()
	}
	wg.Wait()
	if violations != 0 {
		t.Errorf("lock admitted %d concurrent holders", violations)
	}
}

func TestRegionOutOfBoundsPanics(t *testing.T) {
	r := NewRegion(0, 128)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds read")
		}
	}()
	r.Read(120, make([]byte, 16))
}

func TestRegionUnalignedAtomicPanics(t *testing.T) {
	r := NewRegion(0, 128)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned atomic")
		}
	}()
	r.ReadUint64(4)
}

func TestRegionSingleLineAtomicity(t *testing.T) {
	// Writes confined to one 64-byte line must never be observed torn.
	r := NewRegion(0, 1024)
	patA := bytes.Repeat([]byte{0xaa}, LineSize)
	patB := bytes.Repeat([]byte{0xbb}, LineSize)
	r.Write(0, patA)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if i%2 == 0 {
				r.Write(0, patB)
			} else {
				r.Write(0, patA)
			}
		}
	}()
	buf := make([]byte, LineSize)
	for i := 0; i < 2000; i++ {
		r.Read(0, buf)
		if !bytes.Equal(buf, patA) && !bytes.Equal(buf, patB) {
			t.Fatalf("torn single-line read: % x", buf[:8])
		}
	}
	<-done
}

func TestRegionMultiLineWritesCanTear(t *testing.T) {
	// The documented semantics: transfers spanning 64-byte lines are NOT
	// atomic — exactly like multi-cache-line one-sided RDMA. This test
	// demonstrates (not just tolerates) the tear, because higher layers'
	// checksum protocols exist precisely for it. It is timing-dependent,
	// so it only requires that no *illegal* value ever appears, while
	// recording whether a tear was observed.
	r := NewRegion(0, 1024)
	patA := bytes.Repeat([]byte{0xaa}, 2*LineSize)
	patB := bytes.Repeat([]byte{0xbb}, 2*LineSize)
	r.Write(0, patA)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			if i%2 == 0 {
				r.Write(0, patB)
			} else {
				r.Write(0, patA)
			}
		}
	}()
	torn := false
	buf := make([]byte, 2*LineSize)
	for i := 0; i < 5000; i++ {
		r.Read(0, buf)
		// Each line is individually atomic: all-0xaa or all-0xbb.
		for l := 0; l < 2; l++ {
			line := buf[l*LineSize : (l+1)*LineSize]
			for _, b := range line {
				if b != line[0] {
					t.Fatalf("intra-line tear: % x", line[:8])
				}
			}
		}
		if buf[0] != buf[LineSize] {
			torn = true
		}
	}
	<-done
	t.Logf("observed cross-line tear: %v (legal either way)", torn)
}
