// Package mem provides the memory-node substrate of the simulated
// disaggregated-memory cluster: global addressing, byte-addressable memory
// regions with RDMA-like access semantics, and a remote bump allocator with
// per-class accounting.
//
// A memory node (MN) owns a Region. Compute-node clients never touch a
// Region directly; they go through the fabric package, which models the
// network cost of each access. The Region's job is to make concurrent
// one-sided accesses memory-safe for Go while still allowing the torn
// multi-line reads that real one-sided RDMA exhibits.
package mem

import "fmt"

// Addr is a global 64-bit address in the disaggregated memory pool:
//
//	[63:48] zero (reserved)
//	[47:40] memory-node ID
//	[39:0]  byte offset within that node's region
//
// The packed form fits in the 48 address bits of an 8-byte hash entry or
// slot (see internal/wire). The zero Addr is "null": node 0 reserves offset
// 0 so that no valid object ever encodes to 0.
type Addr uint64

// Address-packing geometry. Exported so wire can validate that packed
// fields stay in range.
const (
	OffsetBits = 40
	NodeBits   = 8
	AddrBits   = OffsetBits + NodeBits // 48: fits in slot/entry address fields

	// MaxOffset is the largest encodable byte offset within one region.
	MaxOffset = (uint64(1) << OffsetBits) - 1
	// MaxNodes is the number of addressable memory nodes.
	MaxNodes = 1 << NodeBits
)

// NodeID identifies one memory node in the cluster. The type is wider
// than the 8 node bits an Addr can pack so that placement layers (the
// consistent-hash ring) handle large IDs without truncation; NewAddr
// rejects IDs outside the addressable range.
type NodeID uint16

// NewAddr packs a node ID and offset into a global address.
// It panics if offset exceeds MaxOffset or node exceeds the 8 packed
// node bits; regions that large (or clusters that wide) cannot be
// allocated in this simulation, so an overflow is always a program bug.
func NewAddr(node NodeID, offset uint64) Addr {
	if offset > MaxOffset {
		panic(fmt.Sprintf("mem: offset %#x exceeds %d-bit address space", offset, OffsetBits))
	}
	if uint64(node) >= MaxNodes {
		panic(fmt.Sprintf("mem: node %d exceeds %d-bit node space", node, NodeBits))
	}
	return Addr(uint64(node)<<OffsetBits | offset)
}

// Node returns the memory-node component of the address.
func (a Addr) Node() NodeID { return NodeID(uint64(a) >> OffsetBits) }

// Offset returns the byte offset within the node's region.
func (a Addr) Offset() uint64 { return uint64(a) & MaxOffset }

// IsNull reports whether a is the null address.
func (a Addr) IsNull() bool { return a == 0 }

// Add returns the address n bytes past a, on the same node.
func (a Addr) Add(n uint64) Addr { return NewAddr(a.Node(), a.Offset()+n) }

// String renders the address as node:offset for diagnostics.
func (a Addr) String() string {
	if a.IsNull() {
		return "null"
	}
	return fmt.Sprintf("%d:%#x", a.Node(), a.Offset())
}
