package mem

import "fmt"

// Class tags each allocation with the kind of object it holds so that
// MN-side memory accounting (paper Fig. 6) can break usage down into inner
// nodes, leaves, hash-table space and metadata.
type Class uint8

// Allocation classes.
const (
	ClassMeta  Class = iota // allocator headers, roots, directories
	ClassInner              // ART inner nodes
	ClassLeaf               // ART leaf nodes
	ClassHash               // inner-node hash-table segments
	NumClasses
)

// String returns the class name for reports.
func (c Class) String() string {
	switch c {
	case ClassMeta:
		return "meta"
	case ClassInner:
		return "inner"
	case ClassLeaf:
		return "leaf"
	case ClassHash:
		return "hash"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Allocator header layout, stored at the start of every region so that
// remote clients can drive allocation with one-sided FAA verbs alone
// (memory nodes have no CPU to run an allocator).
const (
	allocBumpOff  = 0 // uint64: next free offset
	allocClassOff = 8 // NumClasses uint64 counters: bytes allocated per class

	// HeaderSize is the number of bytes reserved at the start of each
	// region for the allocator. Offset 0 therefore never names a user
	// object, which is what makes Addr(0) usable as null.
	HeaderSize = LineSize * 2
)

// RemoteOps is the slice of one-sided verbs the allocator needs. It is
// implemented both by a direct region wrapper (for cluster bootstrap, where
// network cost is irrelevant) and by fabric.Client (for client-driven
// allocation that must pay round trips).
type RemoteOps interface {
	// FetchAdd executes an RDMA FAA on the 8-byte word at addr.
	FetchAdd(addr Addr, delta uint64) (uint64, error)
	// ReadUint64 reads the 8-byte word at addr.
	ReadUint64(addr Addr) (uint64, error)
}

// InitRegionHeader prepares a fresh region's allocator header. Must be
// called once per region before any allocation.
func InitRegionHeader(r *Region) {
	r.WriteUint64(allocBumpOff, HeaderSize)
}

// DefaultSlab is the default number of bytes a client reserves from a
// memory node per FAA. Sub-allocating locally from the slab amortizes the
// allocation round trip across many objects, the standard technique in
// one-sided DM systems.
const DefaultSlab = 64 * 1024

type slab struct {
	next uint64 // next free offset within the slab
	end  uint64 // one past the slab
}

// Allocator is a per-client allocator over the cluster's memory nodes.
// It is not safe for concurrent use; every client (worker) owns one, which
// matches the one-allocator-per-coroutine structure of the paper's systems.
type Allocator struct {
	ops      RemoteOps
	slabSize uint64
	slabs    map[slabKey]*slab
}

type slabKey struct {
	node  NodeID
	class Class
}

// NewAllocator returns an allocator that reserves slabSize-byte slabs
// through ops. A slabSize of 0 selects DefaultSlab.
func NewAllocator(ops RemoteOps, slabSize uint64) *Allocator {
	if slabSize == 0 {
		slabSize = DefaultSlab
	}
	if slabSize%LineSize != 0 {
		slabSize = (slabSize + LineSize - 1) &^ uint64(LineSize-1)
	}
	return &Allocator{ops: ops, slabSize: slabSize, slabs: make(map[slabKey]*slab)}
}

// Align rounds size up to the given power-of-two alignment.
func Align(size, align uint64) uint64 { return (size + align - 1) &^ (align - 1) }

// Alloc reserves size bytes of the given class on the given node and
// returns the global address of the new object. Objects are 8-byte aligned;
// leaf-class objects are 64-byte aligned per the paper's leaf layout.
func (a *Allocator) Alloc(node NodeID, class Class, size uint64) (Addr, error) {
	align := uint64(8)
	if class == ClassLeaf {
		align = LineSize
	}
	size = Align(size, align)
	if size > a.slabSize {
		// Large object: dedicated reservation.
		off, err := a.reserve(node, class, Align(size, LineSize))
		if err != nil {
			return 0, err
		}
		return NewAddr(node, off), nil
	}
	key := slabKey{node, class}
	s := a.slabs[key]
	if s != nil {
		s.next = Align(s.next, align)
	}
	if s == nil || s.next+size > s.end {
		off, err := a.reserve(node, class, a.slabSize)
		if err != nil {
			return 0, err
		}
		s = &slab{next: off, end: off + a.slabSize}
		a.slabs[key] = s
	}
	off := s.next
	s.next += size
	return NewAddr(node, off), nil
}

// reserve claims n contiguous bytes from the node's bump pointer and
// charges them to class. Slabs are line-aligned because the bump pointer
// only ever moves in line multiples.
func (a *Allocator) reserve(node NodeID, class Class, n uint64) (uint64, error) {
	n = Align(n, LineSize)
	off, err := a.ops.FetchAdd(NewAddr(node, allocBumpOff), n)
	if err != nil {
		return 0, err
	}
	if _, err := a.ops.FetchAdd(NewAddr(node, allocClassOff+8*uint64(class)), n); err != nil {
		return 0, err
	}
	return off, nil
}

// Usage is a snapshot of one memory node's allocation counters.
type Usage struct {
	Node    NodeID
	Total   uint64 // bytes past the bump pointer (includes header)
	ByClass [NumClasses]uint64
}

// ReadUsage fetches the allocation counters of one node.
func ReadUsage(ops RemoteOps, node NodeID) (Usage, error) {
	u := Usage{Node: node}
	bump, err := ops.ReadUint64(NewAddr(node, allocBumpOff))
	if err != nil {
		return u, err
	}
	u.Total = bump
	for c := Class(0); c < NumClasses; c++ {
		v, err := ops.ReadUint64(NewAddr(node, allocClassOff+8*uint64(c)))
		if err != nil {
			return u, err
		}
		u.ByClass[c] = v
	}
	return u, nil
}

// DirectOps adapts a set of local regions into a RemoteOps with zero
// network cost. It is used during cluster bootstrap (e.g., carving out the
// hash-table segments before any client exists) and in tests.
type DirectOps struct {
	Regions map[NodeID]*Region
}

// FetchAdd implements RemoteOps directly against the region.
func (d DirectOps) FetchAdd(addr Addr, delta uint64) (uint64, error) {
	r, ok := d.Regions[addr.Node()]
	if !ok {
		return 0, fmt.Errorf("mem: no region for node %d", addr.Node())
	}
	return r.FetchAdd(addr.Offset(), delta), nil
}

// ReadUint64 implements RemoteOps directly against the region.
func (d DirectOps) ReadUint64(addr Addr) (uint64, error) {
	r, ok := d.Regions[addr.Node()]
	if !ok {
		return 0, fmt.Errorf("mem: no region for node %d", addr.Node())
	}
	return r.ReadUint64(addr.Offset()), nil
}
