package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// LineSize is the locking granularity of a Region, matching the 64-byte
// alignment unit the paper uses for leaf nodes. Accesses within one line are
// atomic with respect to each other; accesses spanning lines may be torn,
// exactly like multi-cache-line one-sided RDMA reads. Higher layers that
// need multi-line atomicity must use checksums or status fields (as Sphinx's
// leaf protocol does).
const LineSize = 64

const lineShards = 1024

// Region is the byte-addressable memory owned by one memory node.
//
// All accesses go through Read/Write/CompareSwap/FetchAdd, mirroring the
// one-sided RDMA verb set. Concurrency control is a sharded per-line lock
// table: single-line operations (including all 8-byte atomics) are
// linearizable, while multi-line transfers lock one line at a time and can
// therefore expose partially written data to concurrent readers.
type Region struct {
	node  NodeID
	buf   []byte
	locks [lineShards]sync.RWMutex
}

// NewRegion allocates a region of the given size for the given node.
// Size is rounded up to a whole number of lines.
func NewRegion(node NodeID, size uint64) *Region {
	if size > MaxOffset {
		panic(fmt.Sprintf("mem: region size %#x exceeds addressable range", size))
	}
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	return &Region{node: node, buf: make([]byte, size)}
}

// Node returns the memory node that owns this region.
func (r *Region) Node() NodeID { return r.node }

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.buf)) }

func (r *Region) shard(line uint64) *sync.RWMutex {
	return &r.locks[line%lineShards]
}

// check panics on out-of-bounds access: in a real cluster this would be a
// protection-domain fault; in the simulation it is always a bug in the
// index code, so failing loudly is the right behaviour.
func (r *Region) check(offset, n uint64) {
	if offset+n > uint64(len(r.buf)) || offset+n < offset {
		panic(fmt.Sprintf("mem: access [%#x,%#x) outside region of %d bytes on node %d",
			offset, offset+n, len(r.buf), r.node))
	}
}

// Read copies len(dst) bytes starting at offset into dst.
// The copy is line-atomic but not transfer-atomic.
func (r *Region) Read(offset uint64, dst []byte) {
	r.check(offset, uint64(len(dst)))
	for done := 0; done < len(dst); {
		line := (offset + uint64(done)) / LineSize
		lineEnd := (line + 1) * LineSize
		n := int(lineEnd - (offset + uint64(done)))
		if rem := len(dst) - done; n > rem {
			n = rem
		}
		mu := r.shard(line)
		mu.RLock()
		copy(dst[done:done+n], r.buf[offset+uint64(done):])
		mu.RUnlock()
		done += n
	}
}

// Write copies src into the region starting at offset.
// The copy is line-atomic but not transfer-atomic.
func (r *Region) Write(offset uint64, src []byte) {
	r.check(offset, uint64(len(src)))
	for done := 0; done < len(src); {
		line := (offset + uint64(done)) / LineSize
		lineEnd := (line + 1) * LineSize
		n := int(lineEnd - (offset + uint64(done)))
		if rem := len(src) - done; n > rem {
			n = rem
		}
		mu := r.shard(line)
		mu.Lock()
		copy(r.buf[offset+uint64(done):], src[done:done+n])
		mu.Unlock()
		done += n
	}
}

// ReadUint64 atomically reads the 8-byte little-endian word at offset.
// Offset must be 8-byte aligned (RDMA atomics require alignment).
func (r *Region) ReadUint64(offset uint64) uint64 {
	r.checkAligned(offset)
	mu := r.shard(offset / LineSize)
	mu.RLock()
	v := binary.LittleEndian.Uint64(r.buf[offset:])
	mu.RUnlock()
	return v
}

// WriteUint64 atomically writes the 8-byte little-endian word at offset.
func (r *Region) WriteUint64(offset uint64, v uint64) {
	r.checkAligned(offset)
	mu := r.shard(offset / LineSize)
	mu.Lock()
	binary.LittleEndian.PutUint64(r.buf[offset:], v)
	mu.Unlock()
}

// CompareSwap atomically compares the word at offset with expect and, if
// equal, replaces it with desired. It returns the value observed before the
// operation; the swap succeeded iff the return value equals expect. This is
// the RDMA CAS verb.
func (r *Region) CompareSwap(offset uint64, expect, desired uint64) uint64 {
	r.checkAligned(offset)
	mu := r.shard(offset / LineSize)
	mu.Lock()
	old := binary.LittleEndian.Uint64(r.buf[offset:])
	if old == expect {
		binary.LittleEndian.PutUint64(r.buf[offset:], desired)
	}
	mu.Unlock()
	return old
}

// FetchAdd atomically adds delta to the word at offset and returns the value
// observed before the addition. This is the RDMA FAA verb.
func (r *Region) FetchAdd(offset uint64, delta uint64) uint64 {
	r.checkAligned(offset)
	mu := r.shard(offset / LineSize)
	mu.Lock()
	old := binary.LittleEndian.Uint64(r.buf[offset:])
	binary.LittleEndian.PutUint64(r.buf[offset:], old+delta)
	mu.Unlock()
	return old
}

func (r *Region) checkAligned(offset uint64) {
	r.check(offset, 8)
	if offset%8 != 0 {
		panic(fmt.Sprintf("mem: atomic access at unaligned offset %#x on node %d", offset, r.node))
	}
}
