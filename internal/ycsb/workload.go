package ycsb

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// OpKind is one YCSB operation type.
type OpKind int

// Operation types.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated operation. ScanLen is set for OpScan.
type Op struct {
	Kind    OpKind
	Key     []byte
	ScanLen int
}

// Workload is a YCSB operation mix. Percentages sum to 100.
type Workload struct {
	Name    string
	ReadP   int
	UpdateP int
	InsertP int
	ScanP   int
	// Latest selects the YCSB-D request distribution: reads target
	// recently inserted keys.
	Latest bool
}

// The paper's six workloads (§V-A).
var (
	WorkloadA = Workload{Name: "A", ReadP: 50, UpdateP: 50}
	WorkloadB = Workload{Name: "B", ReadP: 95, UpdateP: 5}
	WorkloadC = Workload{Name: "C", ReadP: 100}
	WorkloadD = Workload{Name: "D", ReadP: 95, UpdateP: 5, Latest: true}
	WorkloadE = Workload{Name: "E", ScanP: 95, InsertP: 5}
	Load      = Workload{Name: "LOAD", InsertP: 100}

	// All lists the workloads in the paper's Fig. 4 order.
	All = []Workload{Load, WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE}
)

// ByName returns the workload with the given name (case-sensitive).
func ByName(name string) (Workload, error) {
	for _, w := range All {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// MaxScanLen is the YCSB default maximum scan length (uniform 1..100).
const MaxScanLen = 100

// KeySpace is the shared state of one benchmark run: the loaded keys, a
// factory for novel keys, and the global insert cursor that the Latest
// distribution follows. Safe for concurrent use by many generators.
type KeySpace struct {
	base  [][]byte
	novel func(i int64) []byte
	// nextIns (count of keys inserted beyond base) is the one mutable,
	// cross-worker word of the key space: every inserting worker bumps it
	// while every other worker's chooseKey reads base/novel. Padding on
	// both sides keeps that write traffic off the cache lines holding the
	// read-only fields.
	_       [64]byte
	nextIns atomic.Int64
	_       [56]byte
}

// NewKeySpace wraps the loaded keys. novel produces the i-th key inserted
// during the run (beyond the loaded set); it may be nil for workloads
// without inserts.
func NewKeySpace(base [][]byte, novel func(i int64) []byte) *KeySpace {
	return &KeySpace{base: base, novel: novel}
}

// Loaded returns the number of pre-loaded keys.
func (ks *KeySpace) Loaded() int { return len(ks.base) }

// Total returns the current key count including run-time inserts.
func (ks *KeySpace) Total() int64 { return int64(len(ks.base)) + ks.nextIns.Load() }

// Key returns the idx-th key in insertion order.
func (ks *KeySpace) Key(idx int64) []byte {
	if idx < int64(len(ks.base)) {
		return ks.base[idx]
	}
	return ks.novel(idx - int64(len(ks.base)))
}

// TakeInsert reserves the next novel key.
func (ks *KeySpace) TakeInsert() []byte {
	i := ks.nextIns.Add(1) - 1
	return ks.novel(i)
}

// Generator produces one worker's deterministic operation stream.
// Not safe for concurrent use; create one per worker.
type Generator struct {
	w    Workload
	ks   *KeySpace
	zipf *Zipfian
	rng  *rand.Rand
}

// NewGenerator creates a worker generator. zipf must be built over the
// loaded key count (shared across workers); seed differentiates workers.
func NewGenerator(w Workload, ks *KeySpace, zipf *Zipfian, seed int64) *Generator {
	return &Generator{w: w, ks: ks, zipf: zipf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Intn(100)
	switch {
	case p < g.w.ReadP:
		return Op{Kind: OpRead, Key: g.chooseKey()}
	case p < g.w.ReadP+g.w.UpdateP:
		return Op{Kind: OpUpdate, Key: g.chooseKey()}
	case p < g.w.ReadP+g.w.UpdateP+g.w.InsertP:
		return Op{Kind: OpInsert, Key: g.ks.TakeInsert()}
	default:
		return Op{Kind: OpScan, Key: g.chooseKey(), ScanLen: 1 + g.rng.Intn(MaxScanLen)}
	}
}

// NextN appends the next n operations to dst and returns it. Pipelined
// workers generate one issue window at a time, so distributions that
// depend on the loaded key count (YCSB-D's latest) stay at most one
// window stale.
func (g *Generator) NextN(dst []Op, n int) []Op {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// chooseKey picks a request key per the workload's distribution.
func (g *Generator) chooseKey() []byte {
	if g.w.Latest {
		// YCSB latest: zipfian over recency — rank 0 is the newest key.
		total := g.ks.Total()
		off := int64(g.zipf.Draw(g.rng))
		idx := total - 1 - off
		if idx < 0 {
			idx = 0
		}
		return g.ks.Key(idx)
	}
	return g.ks.Key(int64(g.zipf.DrawScrambled(g.rng)))
}
