// Package ycsb implements the YCSB benchmark engine [28] used by the
// paper's evaluation (§V-A): the zipfian, scrambled-zipfian, latest and
// uniform request distributions, the workload mixes A–E plus LOAD, and
// per-worker deterministic operation streams.
package ycsb

import (
	"math"
	"math/rand"

	"sphinx/internal/wire"
)

// DefaultTheta is the zipfian skew constant of the paper's workloads
// ("a zipfian key distribution with a skewness factor of 0.99").
const DefaultTheta = 0.99

// Zipfian draws ranks from a zipfian distribution over [0, n) using the
// Gray et al. algorithm, as in the reference YCSB implementation. The
// structure is immutable after construction and safe to share across
// workers (each worker supplies its own rand source).
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta
}

// NewZipfian builds a zipfian distribution over n items with the given
// skew. Construction is O(n) (harmonic sum) and done once per size.
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n == 0 {
		n = 1
	}
	zetan := zetaSum(n, theta)
	zeta2 := zetaSum(2, theta)
	return &Zipfian{
		n:     n,
		theta: theta,
		alpha: 1.0 / (1.0 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

func zetaSum(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the population size.
func (z *Zipfian) N() uint64 { return z.n }

// Theta returns the skew constant the distribution was built with
// (0 means uniform).
func (z *Zipfian) Theta() float64 { return z.theta }

// Draw returns a rank in [0, n), rank 0 being the most popular.
func (z *Zipfian) Draw(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+z.half {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// DrawScrambled spreads the popular ranks over the whole key space (the
// YCSB "scrambled zipfian"), so hot keys are not clustered in key order.
func (z *Zipfian) DrawScrambled(rng *rand.Rand) uint64 {
	return wire.Mix64(z.Draw(rng)) % z.n
}

// HeadRanks returns the scrambled key ranks of the n most popular items,
// hottest first: element i is exactly what DrawScrambled maps rank i to.
// Tests and the skew bench use this to name the concrete hot keys of a
// run instead of re-deriving the scramble by hand. n is clamped to the
// population size; note that the scramble is not injective, so very
// large heads may contain duplicate ranks.
func (z *Zipfian) HeadRanks(n int) []uint64 {
	if n < 0 {
		n = 0
	}
	if uint64(n) > z.n {
		n = int(z.n)
	}
	head := make([]uint64, n)
	for i := range head {
		head[i] = wire.Mix64(uint64(i)) % z.n
	}
	return head
}
