package ycsb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sphinx/internal/dataset"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, DefaultTheta)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		if v := z.Draw(rng); v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
		if v := z.DrawScrambled(rng); v >= 1000 {
			t.Fatalf("scrambled draw %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// With theta 0.99 over 10k items, the most popular rank should absorb
	// a noticeable share and the head should dominate.
	z := NewZipfian(10000, DefaultTheta)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 10000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Draw(rng)]++
	}
	if counts[0] < draws/20 {
		t.Errorf("rank 0 drew %d of %d; not skewed enough", counts[0], draws)
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/draws < 0.4 {
		t.Errorf("top-100 share %.2f; zipf(0.99) should concentrate", float64(head)/draws)
	}
	// Monotone-ish head: rank 0 ≥ rank 1 ≥ rank 10 within noise.
	if counts[0] < counts[10] {
		t.Error("rank 0 less popular than rank 10")
	}
}

func TestZipfianScrambledSpreads(t *testing.T) {
	// Scrambling must spread the hottest ranks across the key space: the
	// top-2 scrambled values should usually not be adjacent indices.
	z := NewZipfian(100000, DefaultTheta)
	rng := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[z.DrawScrambled(rng)]++
	}
	type kc struct {
		k uint64
		c int
	}
	var all []kc
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	if len(all) < 2 {
		t.Fatal("degenerate draw")
	}
	d := int64(all[0].k) - int64(all[1].k)
	if d < 0 {
		d = -d
	}
	if d <= 1 {
		t.Errorf("two hottest scrambled keys adjacent (%d, %d)", all[0].k, all[1].k)
	}
}

func TestUniformTheta0(t *testing.T) {
	// theta → 0 approaches uniform; sanity-check tail mass exists.
	z := NewZipfian(1000, 0.01)
	rng := rand.New(rand.NewSource(4))
	tail := 0
	for i := 0; i < 100000; i++ {
		if z.Draw(rng) >= 500 {
			tail++
		}
	}
	if tail < 30000 {
		t.Errorf("tail mass %d too small for near-uniform draw", tail)
	}
}

func TestWorkloadMixes(t *testing.T) {
	keys := dataset.GenerateU64(1000, 1)
	for _, w := range All {
		ks := NewKeySpace(keys, dataset.Novel(dataset.U64, 9))
		z := NewZipfian(uint64(len(keys)), DefaultTheta)
		g := NewGenerator(w, ks, z, 7)
		counts := map[OpKind]int{}
		const ops = 20000
		for i := 0; i < ops; i++ {
			op := g.Next()
			counts[op.Kind]++
			if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > MaxScanLen) {
				t.Fatalf("scan len %d out of range", op.ScanLen)
			}
			if op.Kind != OpScan && op.ScanLen != 0 {
				t.Fatal("non-scan op carries a scan length")
			}
			if len(op.Key) == 0 {
				t.Fatal("empty key generated")
			}
		}
		within := func(got, wantP int) bool {
			want := ops * wantP / 100
			slack := ops / 50 // ±2%
			return got >= want-slack && got <= want+slack
		}
		if !within(counts[OpRead], w.ReadP) || !within(counts[OpUpdate], w.UpdateP) ||
			!within(counts[OpInsert], w.InsertP) || !within(counts[OpScan], w.ScanP) {
			t.Errorf("workload %s mix off: %v", w.Name, counts)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LOAD", "A", "B", "C", "D", "E"} {
		w, err := ByName(name)
		if err != nil || w.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, w, err)
		}
	}
	if _, err := ByName("Z"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestLatestDistributionFollowsInserts(t *testing.T) {
	keys := dataset.GenerateU64(1000, 1)
	ks := NewKeySpace(keys, dataset.Novel(dataset.U64, 5))
	z := NewZipfian(uint64(len(keys)), DefaultTheta)
	g := NewGenerator(Workload{Name: "D", ReadP: 50, InsertP: 50, Latest: true}, ks, z, 8)
	inserted := map[string]bool{}
	readsOfNew := 0
	reads := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert:
			inserted[string(op.Key)] = true
		case OpRead:
			reads++
			if inserted[string(op.Key)] {
				readsOfNew++
			}
		}
	}
	// With 50% inserts and latest-skewed reads, a large share of reads
	// must target keys inserted during the run.
	if float64(readsOfNew)/float64(reads) < 0.3 {
		t.Errorf("only %d/%d reads hit fresh keys; latest distribution broken", readsOfNew, reads)
	}
}

func TestKeySpaceStableIndexing(t *testing.T) {
	keys := dataset.GenerateU64(100, 1)
	ks := NewKeySpace(keys, dataset.Novel(dataset.U64, 6))
	k1 := ks.TakeInsert()
	k2 := ks.TakeInsert()
	if string(ks.Key(100)) != string(k1) || string(ks.Key(101)) != string(k2) {
		t.Error("Key(idx) does not replay TakeInsert order")
	}
	if ks.Total() != 102 {
		t.Errorf("Total = %d", ks.Total())
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	keys := dataset.GenerateU64(500, 1)
	run := func() []string {
		ks := NewKeySpace(keys, dataset.Novel(dataset.U64, 2))
		z := NewZipfian(uint64(len(keys)), DefaultTheta)
		g := NewGenerator(WorkloadA, ks, z, 99)
		var ops []string
		for i := 0; i < 500; i++ {
			op := g.Next()
			ops = append(ops, fmt.Sprintf("%v:%x", op.Kind, op.Key))
		}
		return ops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different op streams")
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "READ" || OpScan.String() != "SCAN" {
		t.Error("op names wrong")
	}
}

func TestThetaControlsSkew(t *testing.T) {
	// Higher theta concentrates more mass on the head.
	headShare := func(theta float64) float64 {
		z := NewZipfian(10000, theta)
		rng := rand.New(rand.NewSource(5))
		head := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Draw(rng) < 100 {
				head++
			}
		}
		return float64(head) / draws
	}
	low, high := headShare(0.5), headShare(0.99)
	if high <= low {
		t.Errorf("theta 0.99 head share %.3f not above theta 0.5's %.3f", high, low)
	}
}

func TestZipfianLargePopulation(t *testing.T) {
	// Construction over a large population must stay correct (zeta sum).
	z := NewZipfian(5_000_000, DefaultTheta)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10000; i++ {
		if v := z.Draw(rng); v >= 5_000_000 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}
