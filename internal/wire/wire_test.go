package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"sphinx/internal/mem"
)

func TestNodeTypeCapacity(t *testing.T) {
	cases := []struct {
		t    NodeType
		want int
	}{{Node4, 4}, {Node16, 16}, {Node48, 48}, {Node256, 256}}
	for _, c := range cases {
		if got := c.t.Capacity(); got != c.want {
			t.Errorf("%v.Capacity() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestNodeTypeGrow(t *testing.T) {
	if Node4.Grow() != Node16 || Node16.Grow() != Node48 || Node48.Grow() != Node256 {
		t.Error("grow chain wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("growing Node256 should panic")
		}
	}()
	Node256.Grow()
}

func TestNodeSize(t *testing.T) {
	cases := []struct {
		t    NodeType
		want uint64
	}{
		{Node4, 40 + 4*8},
		{Node16, 40 + 16*8},
		{Node48, 40 + 256 + 48*8},
		{Node256, 40 + 256*8},
	}
	for _, c := range cases {
		if got := NodeSize(c.t); got != c.want {
			t.Errorf("NodeSize(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	// The paper's motivation quotes inner nodes of 40–2056 bytes; ours are
	// 72–2088 (EOL slot + lease word + larger partial). Sanity-bound them.
	if NodeSize(Node256) > 2100 {
		t.Errorf("Node256 size %d grew beyond paper-comparable bounds", NodeSize(Node256))
	}
}

func TestSlotsOff(t *testing.T) {
	if SlotsOff(Node4) != 40 || SlotsOff(Node16) != 40 || SlotsOff(Node256) != 40 {
		t.Error("SlotsOff for non-48 nodes must be 40")
	}
	if SlotsOff(Node48) != 40+256 {
		t.Errorf("SlotsOff(Node48) = %d", SlotsOff(Node48))
	}
}

func TestNodeHeaderRoundTrip(t *testing.T) {
	cases := []NodeHeader{
		{},
		{Status: StatusLocked, Type: Node48, Depth: 17, PartialLen: 3, PrefixHash: 0x3ffffffffff},
		{Status: StatusInvalid, Type: Node256, Depth: MaxDepth, PartialLen: MaxPartial, PrefixHash: 1},
		{Status: StatusIdle, Type: Node4, Depth: 0, PartialLen: 0, PrefixHash: 0x2aaaaaaaaaa},
	}
	for _, h := range cases {
		got := DecodeNodeHeader(h.Encode())
		if got != h {
			t.Errorf("round trip: %+v != %+v", got, h)
		}
	}
}

func TestNodeHeaderRoundTripProperty(t *testing.T) {
	f := func(st, ty uint8, depth uint16, pl uint8, ph uint64) bool {
		h := NodeHeader{
			Status:     Status(st % 3),
			Type:       NodeType(ty % 4),
			Depth:      depth % (MaxDepth + 1),
			PartialLen: pl % (MaxPartial + 1),
			PrefixHash: ph & (1<<PrefixHashBits - 1),
		}
		return DecodeNodeHeader(h.Encode()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithStatus(t *testing.T) {
	h := NodeHeader{Status: StatusIdle, Type: Node16, Depth: 9, PartialLen: 2, PrefixHash: 12345}
	w := WithStatus(h.Encode(), StatusLocked)
	got := DecodeNodeHeader(w)
	if got.Status != StatusLocked {
		t.Errorf("status = %v", got.Status)
	}
	got.Status = StatusIdle
	if got != h {
		t.Errorf("WithStatus corrupted other fields: %+v", got)
	}
}

func TestSlotRoundTrip(t *testing.T) {
	cases := []Slot{
		{},
		{Present: true, Leaf: false, KeyByte: 0, ChildType: Node48, Addr: mem.NewAddr(3, 64)},
		{Present: true, Leaf: true, KeyByte: 255, Addr: mem.NewAddr(255, mem.MaxOffset)},
		{Present: true, Leaf: true, KeyByte: 'a', Addr: mem.NewAddr(0, 8)},
		{Present: true, ChildType: Node256, KeyByte: 7, Addr: mem.NewAddr(1, 128)},
	}
	for _, s := range cases {
		got := DecodeSlot(s.Encode())
		if got != s {
			t.Errorf("round trip: %+v != %+v", got, s)
		}
	}
}

func TestSlotRoundTripProperty(t *testing.T) {
	f := func(leaf bool, kb byte, ct uint8, node uint8, off uint64) bool {
		s := Slot{
			Present: true, Leaf: leaf, KeyByte: kb,
			ChildType: NodeType(ct % 4),
			Addr:      mem.NewAddr(mem.NodeID(node), off&mem.MaxOffset),
		}
		return DecodeSlot(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotZeroIsEmpty(t *testing.T) {
	if DecodeSlot(0).Present {
		t.Error("zero word must decode to an absent slot")
	}
	if (Slot{Present: false, KeyByte: 9, Addr: 42}).Encode() != 0 {
		t.Error("absent slot must encode to zero")
	}
}

func TestHashEntryRoundTrip(t *testing.T) {
	cases := []HashEntry{
		{},
		{Valid: true, FP: 0, Type: Node4, Addr: mem.NewAddr(1, 128)},
		{Valid: true, FP: 1<<FPBits - 1, Type: Node256, Addr: mem.NewAddr(255, mem.MaxOffset)},
	}
	for _, e := range cases {
		got := DecodeHashEntry(e.Encode())
		if got != e {
			t.Errorf("round trip: %+v != %+v", got, e)
		}
	}
}

func TestHashEntryRoundTripProperty(t *testing.T) {
	f := func(fp uint16, ty uint8, node uint8, off uint64) bool {
		e := HashEntry{
			Valid: true,
			FP:    fp & (1<<FPBits - 1),
			Type:  NodeType(ty % 4),
			Addr:  mem.NewAddr(mem.NodeID(node), off&mem.MaxOffset),
		}
		return DecodeHashEntry(e.Encode()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeafRoundTrip(t *testing.T) {
	cases := []struct {
		key, val string
	}{
		{"", ""},
		{"k", "v"},
		{"user1000", "value-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"},
		{"a@example.com", string(bytes.Repeat([]byte{0}, 200))},
	}
	for _, c := range cases {
		buf := EncodeLeaf(StatusIdle, []byte(c.key), []byte(c.val))
		if uint64(len(buf))%LeafUnit != 0 {
			t.Errorf("leaf size %d not padded to %d", len(buf), LeafUnit)
		}
		key, val, st, ok := DecodeLeaf(buf)
		if !ok {
			t.Fatalf("decode failed for %q", c.key)
		}
		if st != StatusIdle || string(key) != c.key || string(val) != c.val {
			t.Errorf("decoded (%q,%q,%v)", key, val, st)
		}
	}
}

func TestLeafRoundTripProperty(t *testing.T) {
	f := func(key, val []byte) bool {
		if len(key) > MaxDepth || len(val) > 4096 {
			return true
		}
		buf := EncodeLeaf(StatusIdle, key, val)
		k, v, _, ok := DecodeLeaf(buf)
		return ok && bytes.Equal(k, key) && bytes.Equal(v, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLeafChecksumDetectsTamper(t *testing.T) {
	key, val := []byte("key"), []byte("value")
	buf := EncodeLeaf(StatusIdle, key, val)
	// Every byte of the checksum word, key and value is covered.
	end := LeafHeaderSize + len(key) + len(val)
	for i := 8; i < end; i++ {
		tampered := append([]byte(nil), buf...)
		tampered[i] ^= 0x01
		if _, _, _, ok := DecodeLeaf(tampered); ok {
			t.Errorf("tampering byte %d went undetected", i)
		}
	}
}

func TestLeafTornReadDetected(t *testing.T) {
	// Simulate a torn read: header of leaf A, body of leaf B.
	a := EncodeLeaf(StatusIdle, []byte("key"), []byte("aaaaaaa"))
	b := EncodeLeaf(StatusIdle, []byte("key"), []byte("bbbbbbb"))
	torn := append([]byte(nil), a[:16]...)
	torn = append(torn, b[16:]...)
	if _, _, _, ok := DecodeLeaf(torn); ok {
		t.Error("torn leaf image passed checksum")
	}
}

func TestLeafStatusChangeKeepsChecksum(t *testing.T) {
	// Locking a leaf must not invalidate its checksum: flip status in word0.
	buf := EncodeLeaf(StatusIdle, []byte("key"), []byte("value"))
	w := DecodeLeafHeader(leGet(buf))
	w.Status = StatusLocked
	lePut(buf, w.Encode())
	_, _, st, ok := DecodeLeaf(buf)
	if !ok || st != StatusLocked {
		t.Errorf("status flip broke decode: ok=%v st=%v", ok, st)
	}
}

func leGet(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func lePut(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestLeafHeaderRoundTripProperty(t *testing.T) {
	f := func(st uint8, units uint8, kl uint16, vl uint32) bool {
		h := LeafHeader{
			Status: Status(st % 3),
			Units:  units,
			KeyLen: kl % (MaxDepth + 1),
			ValLen: vl % (MaxValueLen + 1),
		}
		return DecodeLeafHeader(h.Encode()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeafSize(t *testing.T) {
	cases := []struct {
		k, v int
		want uint64
	}{
		{0, 0, 64},
		{8, 40, 64},
		{8, 48, 128},
		{8, 49, 128},
		{32, 64, 128},
	}
	for _, c := range cases {
		if got := LeafSize(c.k, c.v); got != c.want {
			t.Errorf("LeafSize(%d,%d) = %d, want %d", c.k, c.v, got, c.want)
		}
	}
}

func TestDecodeLeafShortBuffer(t *testing.T) {
	if _, _, _, ok := DecodeLeaf(nil); ok {
		t.Error("nil buffer decoded")
	}
	if _, _, _, ok := DecodeLeaf(make([]byte, 8)); ok {
		t.Error("8-byte buffer decoded")
	}
	// Header claiming more bytes than the buffer holds.
	buf := EncodeLeaf(StatusIdle, []byte("key"), []byte("value"))
	if _, _, _, ok := DecodeLeaf(buf[:20]); ok {
		t.Error("truncated buffer decoded")
	}
}

func TestHashDeterminism(t *testing.T) {
	if Hash64([]byte("LYRICS")) != Hash64([]byte("LYRICS")) {
		t.Error("Hash64 not deterministic")
	}
	if Hash64Seed([]byte("x"), 1) == Hash64Seed([]byte("x"), 2) {
		t.Error("seeds should give different hashes")
	}
}

func TestPrefixHash42Range(t *testing.T) {
	for _, s := range []string{"", "a", "LYR", "some-long-prefix-string"} {
		h := PrefixHash42([]byte(s))
		if h >= 1<<PrefixHashBits {
			t.Errorf("PrefixHash42(%q) = %#x exceeds %d bits", s, h, PrefixHashBits)
		}
	}
}

func TestFP12Range(t *testing.T) {
	for _, s := range []string{"", "a", "LYR"} {
		if fp := FP12([]byte(s)); fp >= 1<<FPBits {
			t.Errorf("FP12(%q) = %#x exceeds %d bits", s, fp, FPBits)
		}
	}
}

func TestHashAvalanche(t *testing.T) {
	// Nearby inputs must not collide: all one-byte prefixes distinct.
	seen := make(map[uint64]byte)
	for b := 0; b < 256; b++ {
		h := Hash64([]byte{byte(b)})
		if prev, ok := seen[h]; ok {
			t.Fatalf("Hash64 collision between %#x and %#x", prev, b)
		}
		seen[h] = byte(b)
	}
}

func TestStatusString(t *testing.T) {
	if StatusIdle.String() != "Idle" || StatusLocked.String() != "Locked" || StatusInvalid.String() != "Invalid" {
		t.Error("status names wrong")
	}
}
