package wire

import "sphinx/internal/mem"

// HashEntry is one 8-byte entry of the inner-node hash table (paper Fig. 3
// and §III-A: "fitting within just 8 bytes"). It maps an inner node's full
// prefix to the node's address plus enough metadata — a 12-bit fingerprint
// and the node type — for the client to pick the right entry out of a
// bucket and size the subsequent node READ without an extra round trip.
//
//	bit  63      valid
//	bits 51..62  12-bit prefix fingerprint (FP12)
//	bits 48..50  node type
//	bits  0..47  inner-node address
//
// A zero word is an empty entry, so freshly allocated buckets are empty.
type HashEntry struct {
	Valid bool
	FP    uint16 // FPBits wide
	Type  NodeType
	Addr  mem.Addr
}

// Encode packs the entry into its 8-byte word.
func (e HashEntry) Encode() uint64 {
	if !e.Valid {
		return 0
	}
	return uint64(1)<<63 |
		uint64(e.FP&(1<<FPBits-1))<<51 |
		uint64(e.Type&7)<<48 |
		uint64(e.Addr)&(1<<mem.AddrBits-1)
}

// DecodeHashEntry unpacks an entry word.
func DecodeHashEntry(w uint64) HashEntry {
	if w>>63 == 0 {
		return HashEntry{}
	}
	return HashEntry{
		Valid: true,
		FP:    uint16(w >> 51 & (1<<FPBits - 1)),
		Type:  NodeType(w >> 48 & 7),
		Addr:  mem.Addr(w & (1<<mem.AddrBits - 1)),
	}
}
