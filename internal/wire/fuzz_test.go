package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeLeaf feeds arbitrary bytes to the leaf decoder: it must never
// panic and never accept a buffer whose checksum does not match its
// content — the property the §III-C torn-read recovery depends on.
func FuzzDecodeLeaf(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Add(make([]byte, 64))
	f.Add(EncodeLeaf(StatusIdle, []byte("key"), []byte("value")))
	f.Add(EncodeLeaf(StatusLocked, nil, nil))
	long := EncodeLeaf(StatusIdle, bytes.Repeat([]byte("k"), 100), bytes.Repeat([]byte("v"), 500))
	f.Add(long)
	corrupt := append([]byte(nil), long...)
	corrupt[20] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		key, value, _, ok := DecodeLeaf(data)
		if !ok {
			return
		}
		// Accepted images must re-encode to a checksum-consistent leaf
		// with identical content.
		round := EncodeLeaf(StatusIdle, key, value)
		k2, v2, _, ok2 := DecodeLeaf(round)
		if !ok2 || !bytes.Equal(k2, key) || !bytes.Equal(v2, value) {
			t.Fatalf("accepted leaf does not round-trip: %q %q", key, value)
		}
	})
}

// FuzzHeaderWords checks that arbitrary 8-byte words decode into headers
// and slots that re-encode into a word matching on all defined fields
// (spare bits excepted), without panics.
func FuzzHeaderWords(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(NodeHeader{Status: StatusLocked, Type: Node48, Depth: 300, PartialLen: 7, PrefixHash: 1 << 40}.Encode())
	f.Add(Slot{Present: true, Leaf: true, KeyByte: 200, Addr: 1 << 40}.Encode())

	f.Fuzz(func(t *testing.T, w uint64) {
		h := DecodeNodeHeader(w)
		if h.PartialLen <= MaxPartial { // encoder rejects out-of-range partials by panicking
			if got := DecodeNodeHeader(h.Encode()); got != h {
				t.Fatalf("header %+v did not survive re-encode: %+v", h, got)
			}
		}
		s := DecodeSlot(w)
		if got := DecodeSlot(s.Encode()); got != s {
			t.Fatalf("slot %+v did not survive re-encode: %+v", s, got)
		}
		e := DecodeHashEntry(w)
		if got := DecodeHashEntry(e.Encode()); got != e {
			t.Fatalf("entry %+v did not survive re-encode: %+v", e, got)
		}
		lh := DecodeLeafHeader(w)
		if lh.KeyLen <= MaxDepth && lh.ValLen <= MaxValueLen {
			if got := DecodeLeafHeader(lh.Encode()); got != lh {
				t.Fatalf("leaf header %+v did not survive re-encode: %+v", lh, got)
			}
		}
	})
}
