package wire

import (
	"encoding/binary"
	"fmt"

	"sphinx/internal/mem"
)

// Leaf layout (paper Fig. 3). Leaves are aligned and padded to 64-byte
// units; LeafLen counts those units so the whole leaf can be fetched in one
// READ once its header is known (and over-fetched speculatively before).
//
//	word0 (8 B): bits 0..1  status
//	             bits 2..9  leafLen, in 64-byte units
//	             bits 10..21 keyLen  (≤ MaxDepth)
//	             bits 22..37 valLen
//	word1 (8 B): checksum over (keyLen, valLen, key, value)
//	bytes 16..:  key bytes, then value bytes, zero-padded to 64·leafLen
//
// The checksum is what makes the paper's single-WRITE in-place update safe:
// a reader that races with an update sees either the old or the new leaf
// image, or a torn mix whose checksum fails, in which case it retries.
const (
	LeafHeaderSize = 16
	LeafUnit       = mem.LineSize

	// MaxLeafUnits bounds a leaf at 255 units = 16320 bytes.
	MaxLeafUnits = 1<<8 - 1
	// MaxValueLen bounds the value field (16-bit length).
	MaxValueLen = 1<<16 - 1
)

// LeafHeader is the decoded first word of a leaf.
type LeafHeader struct {
	Status Status
	Units  uint8  // leaf length in 64-byte units
	KeyLen uint16 // 12 bits
	ValLen uint32 // 16 bits
}

// Encode packs the leaf header word.
func (h LeafHeader) Encode() uint64 {
	if h.KeyLen > MaxDepth {
		panic(fmt.Sprintf("wire: key length %d exceeds max %d", h.KeyLen, MaxDepth))
	}
	if h.ValLen > MaxValueLen {
		panic(fmt.Sprintf("wire: value length %d exceeds max %d", h.ValLen, MaxValueLen))
	}
	return uint64(h.Status)&3 |
		uint64(h.Units)<<2 |
		uint64(h.KeyLen)<<10 |
		uint64(h.ValLen)<<22
}

// DecodeLeafHeader unpacks a leaf header word.
func DecodeLeafHeader(w uint64) LeafHeader {
	return LeafHeader{
		Status: Status(w & 3),
		Units:  uint8(w >> 2),
		KeyLen: uint16(w >> 10 & MaxDepth),
		ValLen: uint32(w >> 22 & MaxValueLen),
	}
}

// LeafSize returns the padded on-wire size of a leaf holding the given key
// and value lengths.
func LeafSize(keyLen, valLen int) uint64 {
	return mem.Align(uint64(LeafHeaderSize+keyLen+valLen), LeafUnit)
}

// LeafChecksum computes the integrity checksum of a leaf's logical content.
// Status is deliberately excluded: locking and unlocking a leaf must not
// invalidate its checksum.
func LeafChecksum(key, value []byte) uint64 {
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:], uint32(len(value)))
	h := Hash64(lens[:])
	h = Mix64(h ^ Hash64Seed(key, 2))
	h = Mix64(h ^ Hash64Seed(value, 3))
	return h
}

// EncodeLeaf serializes a leaf with the given status into a fresh padded
// buffer ready for a single WRITE.
func EncodeLeaf(status Status, key, value []byte) []byte {
	size := LeafSize(len(key), len(value))
	units := size / LeafUnit
	if units > MaxLeafUnits {
		panic(fmt.Sprintf("wire: leaf of %d bytes exceeds max size", size))
	}
	buf := make([]byte, size)
	h := LeafHeader{Status: status, Units: uint8(units), KeyLen: uint16(len(key)), ValLen: uint32(len(value))}
	binary.LittleEndian.PutUint64(buf[0:], h.Encode())
	binary.LittleEndian.PutUint64(buf[8:], LeafChecksum(key, value))
	copy(buf[LeafHeaderSize:], key)
	copy(buf[LeafHeaderSize+len(key):], value)
	return buf
}

// DecodeLeaf parses and verifies a leaf image. It returns ok=false if the
// buffer is too short for the declared lengths or the checksum does not
// match (a torn read); the caller must retry the READ. Key and value alias
// buf and must be copied if retained.
func DecodeLeaf(buf []byte) (key, value []byte, status Status, ok bool) {
	if len(buf) < LeafHeaderSize {
		return nil, nil, 0, false
	}
	h := DecodeLeafHeader(binary.LittleEndian.Uint64(buf[0:]))
	end := LeafHeaderSize + int(h.KeyLen) + int(h.ValLen)
	if end > len(buf) {
		return nil, nil, 0, false
	}
	key = buf[LeafHeaderSize : LeafHeaderSize+int(h.KeyLen)]
	value = buf[LeafHeaderSize+int(h.KeyLen) : end]
	if binary.LittleEndian.Uint64(buf[8:]) != LeafChecksum(key, value) {
		return nil, nil, 0, false
	}
	return key, value, h.Status, true
}
