package wire

import (
	"fmt"

	"sphinx/internal/mem"
)

// NodeType is the adaptive capacity class of an ART inner node (paper
// §II-B): 4, 16, 48 or 256 child slots.
type NodeType uint8

// Inner node capacity classes.
const (
	Node4 NodeType = iota
	Node16
	Node48
	Node256
)

// Capacity returns the number of child slots of the node type.
func (t NodeType) Capacity() int {
	switch t {
	case Node4:
		return 4
	case Node16:
		return 16
	case Node48:
		return 48
	case Node256:
		return 256
	default:
		panic(fmt.Sprintf("wire: bad node type %d", t))
	}
}

// Grow returns the next larger node type. Growing Node256 is impossible
// (it already has a slot per byte) and panics.
func (t NodeType) Grow() NodeType {
	if t >= Node256 {
		panic("wire: cannot grow Node256")
	}
	return t + 1
}

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case Node4:
		return "Node4"
	case Node16:
		return "Node16"
	case Node48:
		return "Node48"
	case Node256:
		return "Node256"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// Status is the state word shared by inner nodes and leaves (paper Fig. 3).
// It doubles as the node-grained lock: writers CAS Idle→Locked.
type Status uint8

// Node and leaf states.
const (
	StatusIdle    Status = iota // readable, unlocked
	StatusLocked                // a writer holds the node-grained lock
	StatusInvalid               // node retired by a type switch or delete; readers retry
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "Idle"
	case StatusLocked:
		return "Locked"
	case StatusInvalid:
		return "Invalid"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Inner node layout. The header word packs all per-node metadata into
// 8 bytes so it can be read and CAS'd atomically:
//
//	bits  0..1   status
//	bits  2..3   node type
//	bits  4..15  depth: length of the node's full prefix, in bytes
//	bits 16..20  partialLen: number of path-compressed bytes (≤ MaxPartial)
//	bits 21..62  42-bit full-prefix hash
//	bit  63      spare
//
// Following the header word: the lease word (8 B, the node-grained write
// lock — see EncodeLease), then the EOL slot (8 B) holding the leaf whose
// key equals the node's full prefix exactly (this is how keys that are
// proper prefixes of other keys are stored without terminator bytes), then
// the inline partial bytes (MaxPartial), then the child slots. Node48
// inserts a 256-byte child index between the partial bytes and the slots.
const (
	HeaderOff  = 0
	LeaseOff   = 8
	EOLSlotOff = 16
	PartialOff = 24
	MaxPartial = 16
	SlotBase   = PartialOff + MaxPartial // 40

	Node48IndexSize = 256

	// MaxDepth is the longest representable full prefix, bounding key
	// length at 4095 bytes.
	MaxDepth = 1<<12 - 1
)

// NodeHeader is the decoded header word of an inner node.
type NodeHeader struct {
	Status     Status
	Type       NodeType
	Depth      uint16 // full-prefix length in bytes
	PartialLen uint8
	PrefixHash uint64 // PrefixHashBits wide
}

// Encode packs the header into its 8-byte word.
func (h NodeHeader) Encode() uint64 {
	if h.Depth > MaxDepth {
		panic(fmt.Sprintf("wire: depth %d exceeds max %d", h.Depth, MaxDepth))
	}
	if h.PartialLen > MaxPartial {
		panic(fmt.Sprintf("wire: partialLen %d exceeds max %d", h.PartialLen, MaxPartial))
	}
	return uint64(h.Status)&3 |
		uint64(h.Type)&3<<2 |
		uint64(h.Depth)<<4 |
		uint64(h.PartialLen)<<16 |
		(h.PrefixHash&(1<<PrefixHashBits-1))<<21
}

// DecodeNodeHeader unpacks a header word.
func DecodeNodeHeader(w uint64) NodeHeader {
	return NodeHeader{
		Status:     Status(w & 3),
		Type:       NodeType(w >> 2 & 3),
		Depth:      uint16(w >> 4 & MaxDepth),
		PartialLen: uint8(w >> 16 & 31),
		PrefixHash: w >> 21 & (1<<PrefixHashBits - 1),
	}
}

// WithStatus returns the header word w with its status field replaced;
// used to build CAS operands for lock acquisition and release.
func WithStatus(w uint64, s Status) uint64 { return w&^uint64(3) | uint64(s)&3 }

// NodeSize returns the total on-wire size in bytes of an inner node of the
// given type (paper §III-A quotes 40–2056 B for the original ART; ours are
// 72–2088 B because of the EOL slot and the lease word).
func NodeSize(t NodeType) uint64 {
	n := uint64(SlotBase)
	if t == Node48 {
		n += Node48IndexSize
	}
	return n + 8*uint64(t.Capacity())
}

// SlotsOff returns the byte offset of the child-slot array within a node
// of the given type.
func SlotsOff(t NodeType) uint64 {
	if t == Node48 {
		return SlotBase + Node48IndexSize
	}
	return SlotBase
}

// Slot is one child pointer of an inner node, packed into 8 bytes:
//
//	bit  63      present
//	bit  62      leaf (child is a leaf node rather than an inner node)
//	bits 54..61  key byte labelling the edge to the child
//	bits 51..53  child node type (inner children only): lets a client size
//	             the next READ exactly, keeping descent at one round trip
//	             per level
//	bits  0..47  child address (mem.AddrBits wide)
//
// A zero word is an empty slot, so freshly allocated nodes are born empty.
type Slot struct {
	Present   bool
	Leaf      bool
	KeyByte   byte
	ChildType NodeType
	Addr      mem.Addr
}

// Encode packs the slot into its 8-byte word.
func (s Slot) Encode() uint64 {
	if !s.Present {
		return 0
	}
	w := uint64(1)<<63 | uint64(s.KeyByte)<<54 | uint64(s.ChildType&7)<<51 |
		uint64(s.Addr)&(1<<mem.AddrBits-1)
	if s.Leaf {
		w |= 1 << 62
	}
	return w
}

// DecodeSlot unpacks a slot word.
func DecodeSlot(w uint64) Slot {
	if w>>63 == 0 {
		return Slot{}
	}
	return Slot{
		Present:   true,
		Leaf:      w>>62&1 == 1,
		KeyByte:   byte(w >> 54),
		ChildType: NodeType(w >> 51 & 7),
		Addr:      mem.Addr(w & (1<<mem.AddrBits - 1)),
	}
}
