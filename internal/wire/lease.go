package wire

// Lease word: the node-grained write lock (docs/failure-model.md). A zero
// word means unlocked. A non-zero word records who holds the lock and a
// stamp of the holder's virtual clock at acquisition:
//
//	bits  0..47  stamp: holder's clock + lease duration, in ps (truncated)
//	bits 48..63  owner: holder's client ID + 1 (so a held lease is never 0)
//
// The lock is acquired and released with RDMA CAS on this word, which also
// makes it stealable: a waiter that has watched the *same* lease word for a
// full lease duration of its own virtual time concludes the holder is dead
// and CASes the word from the observed value to its own. The CAS-on-exact-
// value protocol means at most one waiter wins a steal, and a release or a
// competing steal in the meantime makes the stale steal fail harmlessly.
//
// The stamp is diagnostic and an ABA uniquifier (two acquisitions by one
// client virtually never carry the same clock); expiry is judged on the
// waiter's clock by watching, not by comparing cross-client clocks, so
// clock drift between clients cannot cause a false steal.
const (
	LeaseStampBits = 48
	leaseStampMask = 1<<LeaseStampBits - 1
)

// EncodeLease packs a held lease word for the given owner and stamp.
func EncodeLease(owner uint16, stampPs int64) uint64 {
	return uint64(owner+1)<<LeaseStampBits | uint64(stampPs)&leaseStampMask
}

// DecodeLease unpacks a lease word. held is false for the zero (unlocked)
// word, in which case owner and stamp are meaningless.
func DecodeLease(w uint64) (owner uint16, stampPs int64, held bool) {
	if w == 0 {
		return 0, 0, false
	}
	return uint16(w>>LeaseStampBits) - 1, int64(w & leaseStampMask), true
}

// LeaseOwnedBy reports whether w is a held lease belonging to owner.
func LeaseOwnedBy(w uint64, owner uint16) bool {
	o, _, held := DecodeLease(w)
	return held && o == owner
}
