// Package wire defines the on-wire layouts shared by every component that
// touches remote memory: inner-node headers and slots, 64-byte-aligned
// leaves with checksums, and the 8-byte hash entries of the inner-node hash
// table (paper Fig. 3). It also provides the deterministic hash functions
// used for prefix hashing and fingerprints.
//
// Everything here is position-independent bytes: encode on the client,
// WRITE to a memory node, READ back anywhere, decode. All multi-byte fields
// are little-endian.
package wire

// Hash64 returns a 64-bit hash of b (FNV-1a with an avalanche finalizer).
// It is deterministic across runs so that experiments are reproducible.
func Hash64(b []byte) uint64 {
	return Hash64Seed(b, 0)
}

// Hash64Seed returns a seeded 64-bit hash of b. Distinct seeds give
// independent hash functions, which the cuckoo structures rely on.
func Hash64Seed(b []byte, seed uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ (seed * 0x9e3779b97f4a7c15)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return Mix64(h)
}

// Mix64 is the splitmix64 finalizer: a cheap, high-quality avalanche used
// to derive independent bit fields (fingerprints, bucket indices) from one
// hash value.
func Mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// PrefixHashBits is the width of the full-prefix hash stored in every
// inner-node header (paper §III-B: "a 42-bit full prefix hash").
const PrefixHashBits = 42

// PrefixHash42 returns the truncated full-prefix hash stored in inner-node
// headers to detect fingerprint collisions after a filter false positive.
func PrefixHash42(prefix []byte) uint64 {
	return Hash64(prefix) >> (64 - PrefixHashBits)
}

// FPBits is the width of the hash-entry fingerprint (paper §III-B:
// "the hash entry includes a 12-bit hash fingerprint").
const FPBits = 12

// FP12 returns the 12-bit fingerprint of a prefix stored in hash entries.
// It is derived from a different seed than PrefixHash42 so the two checks
// fail independently.
func FP12(prefix []byte) uint16 {
	return uint16(Hash64Seed(prefix, 1) >> (64 - FPBits))
}
