package artdm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/rart"
)

func newCluster(t *testing.T, mns int, cfg fabric.Config) (*fabric.Fabric, Shared) {
	t.Helper()
	f := fabric.New(cfg)
	nodes := make([]mem.NodeID, mns)
	for i := range nodes {
		nodes[i] = f.AddNode(256 << 20)
	}
	ring := consistenthash.New(nodes, 0)
	shared, err := Bootstrap(f, ring)
	if err != nil {
		t.Fatal(err)
	}
	return f, shared
}

func newTestClient(f *fabric.Fabric, shared Shared) *Client {
	return NewClient(shared, f.NewClient(), rart.Config{})
}

func TestEmptyIndex(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	if _, ok, err := c.Search([]byte("missing")); err != nil || ok {
		t.Errorf("Search on empty index = ok=%v err=%v", ok, err)
	}
	if ok, err := c.Delete([]byte("missing")); err != nil || ok {
		t.Errorf("Delete on empty index = ok=%v err=%v", ok, err)
	}
	if ok, err := c.Update([]byte("missing"), []byte("v")); err != nil || ok {
		t.Errorf("Update on empty index = ok=%v err=%v", ok, err)
	}
}

func TestInsertSearch(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig())
	c := newTestClient(f, shared)
	pairs := map[string]string{
		"LYRICS": "v1", "LYRIC": "v2", "LYR": "v3", "L": "v4",
		"MOON": "v5", "LYRA": "v6",
	}
	for k, v := range pairs {
		existed, err := c.Insert([]byte(k), []byte(v))
		if err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
		if existed {
			t.Errorf("fresh insert of %q reported existing", k)
		}
	}
	for k, v := range pairs {
		got, ok, err := c.Search([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Errorf("Search(%q) = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
	if _, ok, _ := c.Search([]byte("LY")); ok {
		t.Error("absent intermediate prefix found")
	}
	if _, ok, _ := c.Search([]byte("LYRICSX")); ok {
		t.Error("absent extension found")
	}
}

func TestUpsertAndUpdate(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	if _, err := c.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	existed, err := c.Insert([]byte("k"), []byte("v2"))
	if err != nil || !existed {
		t.Fatalf("upsert: existed=%v err=%v", existed, err)
	}
	got, _, _ := c.Search([]byte("k"))
	if string(got) != "v2" {
		t.Errorf("after upsert: %q", got)
	}
	ok, err := c.Update([]byte("k"), []byte("v3"))
	if err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	got, _, _ = c.Search([]byte("k"))
	if string(got) != "v3" {
		t.Errorf("after update: %q", got)
	}
}

func TestUpdateGrowingValue(t *testing.T) {
	// Force the out-of-place path: a value too large for the original
	// leaf's 64-byte units.
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	if _, err := c.Insert([]byte("key"), []byte("small")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 300)
	if ok, err := c.Update([]byte("key"), big); err != nil || !ok {
		t.Fatalf("growing update: ok=%v err=%v", ok, err)
	}
	got, ok, err := c.Search([]byte("key"))
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Errorf("after growing update: len=%d ok=%v err=%v", len(got), ok, err)
	}
	// And shrink it back via the in-place path.
	if ok, err := c.Update([]byte("key"), []byte("tiny")); err != nil || !ok {
		t.Fatalf("shrinking update: ok=%v err=%v", ok, err)
	}
	got, _, _ = c.Search([]byte("key"))
	if string(got) != "tiny" {
		t.Errorf("after shrink: %q", got)
	}
}

func TestDelete(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	c := newTestClient(f, shared)
	keys := []string{"a", "ab", "abc", "abd", "b"}
	for _, k := range keys {
		if _, err := c.Insert([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		ok, err := c.Delete([]byte(k))
		if err != nil || !ok {
			t.Fatalf("delete %q: ok=%v err=%v", k, ok, err)
		}
		if _, found, _ := c.Search([]byte(k)); found {
			t.Fatalf("%q found after delete", k)
		}
		for _, rest := range keys[i+1:] {
			if _, found, _ := c.Search([]byte(rest)); !found {
				t.Fatalf("%q lost when deleting %q", rest, k)
			}
		}
	}
	if ok, _ := c.Delete([]byte("a")); ok {
		t.Error("double delete succeeded")
	}
}

func TestNodeGrowthThroughAllTypes(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	c := newTestClient(f, shared)
	// 256 distinct second bytes under one first byte forces N4→16→48→256.
	for i := 0; i < 256; i++ {
		k := []byte{'p', byte(i), 'z'}
		if _, err := c.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 256; i++ {
		k := []byte{'p', byte(i), 'z'}
		v, ok, err := c.Search(k)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("lost key %d after growth: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestLongSharedPrefixChain(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	long := bytes.Repeat([]byte("q"), 100)
	k1 := append(append([]byte{}, long...), 'a')
	k2 := append(append([]byte{}, long...), 'b')
	k3 := append(append([]byte{}, long[:37]...), 'x')
	for i, k := range [][]byte{k1, k2, k3} {
		if _, err := c.Insert(k, []byte{byte(i + 1)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i, k := range [][]byte{k1, k2, k3} {
		v, ok, err := c.Search(k)
		if err != nil || !ok || v[0] != byte(i+1) {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	// k3 forces a split inside the 100-byte compressed chain.
	if _, ok, _ := c.Search(long[:38]); ok {
		t.Error("phantom key found")
	}
}

func TestKeysThatArePrefixes(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	keys := []string{"a", "ab", "abc", "abcd"}
	for i, k := range keys {
		if _, err := c.Insert([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok, err := c.Search([]byte(k))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("prefix key %q: ok=%v err=%v", k, ok, err)
		}
	}
	// Delete the middle prefix keys; extensions must survive.
	if ok, _ := c.Delete([]byte("ab")); !ok {
		t.Fatal("delete ab failed")
	}
	if _, ok, _ := c.Search([]byte("abc")); !ok {
		t.Error("abc lost after deleting ab")
	}
	if _, ok, _ := c.Search([]byte("ab")); ok {
		t.Error("ab still present")
	}
}

func TestScan(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	c := newTestClient(f, shared)
	var want []string
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("user%04d", i*2)
		want = append(want, k)
		if _, err := c.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan([]byte("user0100"), []byte("user0200"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, kv := range kvs {
		got = append(got, string(kv.Key))
	}
	var expect []string
	for _, k := range want {
		if k >= "user0100" && k <= "user0200" {
			expect = append(expect, k)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(expect) {
		t.Errorf("scan got %d keys, want %d", len(got), len(expect))
	}
	if !sort.StringsAreSorted(got) {
		t.Error("scan output unsorted")
	}
	// Limited scan.
	kvs, err = c.Scan([]byte("user0100"), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 7 {
		t.Errorf("limited scan returned %d", len(kvs))
	}
}

func TestU64Keys(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig())
	c := newTestClient(f, shared)
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = rng.Uint64()
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], keys[i])
		if _, err := c.Insert(k[:], []byte(fmt.Sprint(keys[i]))); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range keys {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], u)
		v, ok, err := c.Search(k[:])
		if err != nil || !ok || string(v) != fmt.Sprint(u) {
			t.Fatalf("u64 key %d: ok=%v err=%v", u, ok, err)
		}
	}
}

func TestRandomOpsAgainstOracle(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig())
	c := newTestClient(f, shared)
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	randKey := func() []byte {
		n := 1 + rng.Intn(10)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	for step := 0; step < 4000; step++ {
		k := randKey()
		switch rng.Intn(5) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			existed, err := c.Insert(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			_, want := oracle[string(k)]
			if existed != want {
				t.Fatalf("step %d insert existed=%v oracle=%v", step, existed, want)
			}
			oracle[string(k)] = v
		case 2:
			ok, err := c.Delete(k)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			_, want := oracle[string(k)]
			if ok != want {
				t.Fatalf("step %d delete ok=%v oracle=%v", step, ok, want)
			}
			delete(oracle, string(k))
		case 3:
			v := fmt.Sprintf("u%d", step)
			ok, err := c.Update(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			_, want := oracle[string(k)]
			if ok != want {
				t.Fatalf("step %d update ok=%v oracle=%v", step, ok, want)
			}
			if ok {
				oracle[string(k)] = v
			}
		case 4:
			got, ok, err := c.Search(k)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			want, wantOK := oracle[string(k)]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d search %q = %q,%v oracle %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
	// Final full-scan equivalence.
	kvs, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(oracle) {
		t.Fatalf("scan %d keys, oracle %d", len(kvs), len(oracle))
	}
	var keys []string
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, kv := range kvs {
		if string(kv.Key) != keys[i] || string(kv.Value) != oracle[keys[i]] {
			t.Fatalf("scan[%d] = %q/%q, oracle %q/%q", i, kv.Key, kv.Value, keys[i], oracle[keys[i]])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig())
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%02d-key-%04d", w, i))
				if _, err := c.Insert(k, []byte(fmt.Sprint(i))); err != nil {
					errs <- fmt.Errorf("w%d insert %d: %w", w, i, err)
					return
				}
				// Interleave random reads of own keys.
				j := rng.Intn(i + 1)
				kk := []byte(fmt.Sprintf("w%02d-key-%04d", w, j))
				v, ok, err := c.Search(kk)
				if err != nil || !ok || string(v) != fmt.Sprint(j) {
					errs <- fmt.Errorf("w%d lost own key %d: ok=%v err=%v", w, j, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := newTestClient(f, shared)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%02d-key-%04d", w, i))
			if _, ok, err := c.Search(k); err != nil || !ok {
				t.Fatalf("key %q missing after concurrent load: err=%v", k, err)
			}
		}
	}
}

func TestConcurrentSharedHotspot(t *testing.T) {
	// All workers hammer the same small key set: exercises node locks,
	// leaf conversions under contention, and in-place update races.
	f, shared := newCluster(t, 2, fabric.DefaultConfig())
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared)
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for i := 0; i < 400; i++ {
				k := []byte(fmt.Sprintf("hot%d", rng.Intn(20)))
				switch rng.Intn(3) {
				case 0:
					if _, err := c.Insert(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						errs <- fmt.Errorf("w%d insert: %w", w, err)
						return
					}
				case 1:
					if _, err := c.Update(k, []byte(fmt.Sprintf("u%d-%d", w, i))); err != nil {
						errs <- fmt.Errorf("w%d update: %w", w, err)
						return
					}
				case 2:
					if _, _, err := c.Search(k); err != nil {
						errs <- fmt.Errorf("w%d search: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentInsertDelete(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig())
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared)
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("churn-%d-%d", w, i%25))
				if _, err := c.Insert(k, []byte("v")); err != nil {
					errs <- fmt.Errorf("w%d insert: %w", w, err)
					return
				}
				if _, err := c.Delete(k); err != nil {
					errs <- fmt.Errorf("w%d delete: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSearchCostsOneRoundTripPerLevel(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.DefaultConfig())
	c := newTestClient(f, shared)
	// Two keys diverging at byte 2 build root → node(depth 2) → leaves.
	if _, err := c.Insert([]byte("aax"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert([]byte("aay"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	before := c.Engine().C.Stats()
	if _, ok, err := c.Search([]byte("aax")); err != nil || !ok {
		t.Fatal(err)
	}
	d := c.Engine().C.Stats().Sub(before)
	// root read + inner node read + leaf read = 3 round trips.
	if d.RoundTrips != 3 {
		t.Errorf("search took %d round trips, want 3 (root+inner+leaf)", d.RoundTrips)
	}
}

func TestRejectsOversizeAndEmptyKeys(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := newTestClient(f, shared)
	if _, err := c.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := c.Insert(bytes.Repeat([]byte("k"), 5000), []byte("v")); err == nil {
		t.Error("oversize key accepted")
	}
}

func TestScanUnbatchedCostsPerChild(t *testing.T) {
	// The naive port's defining scan cost (paper §V-B): one round trip
	// per node/leaf visited, no doorbell batching.
	f, shared := newCluster(t, 1, fabric.DefaultConfig())
	c := newTestClient(f, shared)
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("scan%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Engine().C.Stats()
	kvs, err := c.Scan([]byte("scan0000"), []byte("scan0031"), 0)
	if err != nil || len(kvs) != 32 {
		t.Fatalf("scan: %d %v", len(kvs), err)
	}
	d := c.Engine().C.Stats().Sub(before)
	// 32 leaves plus path nodes, each its own round trip.
	if d.RoundTrips < 32 {
		t.Errorf("unbatched scan took only %d round trips for 32 results", d.RoundTrips)
	}
	if d.Verbs != d.RoundTrips {
		t.Errorf("unbatched scan batched something: %d verbs vs %d RTs", d.Verbs, d.RoundTrips)
	}
}

func TestScanLimitBoundsWork(t *testing.T) {
	// A limit-bounded scan must not pay for the rest of the tree.
	f, shared := newCluster(t, 1, fabric.DefaultConfig())
	c := newTestClient(f, shared)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("lim%05d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Engine().C.Stats()
	kvs, err := c.Scan([]byte("lim00000"), nil, 5)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("limited scan: %d %v", len(kvs), err)
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips > 40 {
		t.Errorf("limit-5 scan over 500 keys took %d round trips", d.RoundTrips)
	}
}
