// Package artdm is "the original ART ported to DM" — the paper's naive
// baseline (§V-A): the adaptive radix tree lives on the memory nodes and
// every index operation traverses it from the root, paying one network
// round trip per tree level. Clients cache only the root address. Writes
// use the shared one-sided protocols of internal/rart; scans read nodes
// one at a time (no doorbell batching), which is what costs it 2.3–3.1×
// on YCSB-E in the paper's Fig. 4.
package artdm

import (
	"bytes"
	"errors"
	"fmt"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// Shared is the cluster-wide immutable description of one ART-on-DM index:
// everything a client needs to mount it.
type Shared struct {
	Root mem.Addr
	Ring *consistenthash.Ring
}

// Bootstrap creates an empty index across the fabric's memory nodes and
// returns its shared descriptor. Runs at cluster-setup time with direct
// region access.
func Bootstrap(f *fabric.Fabric, ring *consistenthash.Ring) (Shared, error) {
	alloc := mem.NewAllocator(f.Regions(), 0)
	home := ring.OwnerKey(nil)
	root, err := rart.BootstrapRoot(f.Region(home), alloc, home)
	if err != nil {
		return Shared{}, fmt.Errorf("artdm: bootstrap root: %w", err)
	}
	return Shared{Root: root, Ring: ring}, nil
}

// Client is one worker's handle on the index. Not safe for concurrent use;
// create one per worker goroutine.
type Client struct {
	shared Shared
	eng    *rart.Engine
}

// NewClient mounts the index for one fabric client.
func NewClient(shared Shared, c *fabric.Client, cfg rart.Config) *Client {
	alloc := mem.NewAllocator(c, 0)
	return &Client{shared: shared, eng: rart.NewEngine(c, alloc, shared.Ring, cfg)}
}

// Engine exposes the underlying engine (stats, fabric client).
func (c *Client) Engine() *rart.Engine { return c.eng }

// retriable reports whether an operation should re-run from the root.
func retriable(err error) bool {
	return errors.Is(err, rart.ErrRestart) || errors.Is(err, rart.ErrNeedParent) ||
		errors.Is(err, fabric.ErrTransient) || errors.Is(err, fabric.ErrTimeout)
}

func (c *Client) readRoot() (*rart.Node, error) {
	return c.eng.ReadNode(c.shared.Root, wire.Node256)
}

// Search returns the value for key.
func (c *Client) Search(key []byte) ([]byte, bool, error) {
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		var leaf *rart.Leaf
		if err == nil {
			leaf, err = c.eng.SearchFrom(root, key, rart.NopHooks{})
		}
		if retriable(err) {
			if bo.Wait() {
				continue
			}
			return nil, false, fmt.Errorf("%w: artdm search for %q", rart.ErrRetriesExhausted, key)
		}
		if err != nil {
			return nil, false, err
		}
		if leaf == nil || !bytes.Equal(leaf.Key, key) {
			// A leaf on the key's path can hold a different key that
			// merely shares the prefix up to its edge.
			return nil, false, nil
		}
		return leaf.Value, true, nil
	}
}

// Insert stores value for key (upsert). It reports whether the key
// already existed.
func (c *Client) Insert(key, value []byte) (bool, error) {
	return c.put(key, value, rart.PutUpsert)
}

// Update overwrites the value of an existing key, reporting whether the
// key was present.
func (c *Client) Update(key, value []byte) (bool, error) {
	return c.put(key, value, rart.PutUpdateOnly)
}

func (c *Client) put(key, value []byte, mode rart.PutMode) (bool, error) {
	if len(key) == 0 || len(key) > wire.MaxDepth {
		return false, fmt.Errorf("artdm: key length %d out of range", len(key))
	}
	var last error
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		var existed bool
		if err == nil {
			existed, err = c.eng.PutFrom(root, key, value, mode, rart.NopHooks{})
		}
		if retriable(err) {
			last = err
			if bo.Wait() {
				continue
			}
			return false, fmt.Errorf("%w: artdm put for %q (last: %v)", rart.ErrRetriesExhausted, key, last)
		}
		return existed, err
	}
}

// Delete removes key, reporting whether it was present.
func (c *Client) Delete(key []byte) (bool, error) {
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		var ok bool
		if err == nil {
			ok, err = c.eng.DeleteFrom(root, key, rart.NopHooks{})
		}
		if retriable(err) {
			if bo.Wait() {
				continue
			}
			return false, fmt.Errorf("%w: artdm delete for %q", rart.ErrRetriesExhausted, key)
		}
		return ok, err
	}
}

// Scan returns up to limit keys in [lo, hi], ascending. The naive port
// reads one node per round trip — no doorbell batching.
func (c *Client) Scan(lo, hi []byte, limit int) ([]rart.KV, error) {
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		var kvs []rart.KV
		if err == nil {
			kvs, err = c.eng.ScanFrom(root, lo, hi, limit, false)
		}
		if err == nil {
			return kvs, nil
		}
		if !retriable(err) {
			return nil, err
		}
		if !bo.Wait() {
			return nil, fmt.Errorf("%w: artdm scan", rart.ErrRetriesExhausted)
		}
	}
}
