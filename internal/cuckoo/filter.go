// Package cuckoo implements the succinct data structure at the heart of the
// paper's Succinct Filter Cache (§III-B): a cuckoo filter [14] extended
// with a per-entry hotness bit driving a second-chance replacement policy
// [24], so the filter doubles as a bounded cache of "which inner-node
// prefixes exist".
//
// Entries are 16 bits: a 12-bit fingerprint (never zero; zero means empty),
// one hotness bit, and spare. With 4-way buckets this is ~2 bytes per
// tracked prefix versus the 40–2056 bytes per node of node-based caching —
// the space argument of the paper.
//
// The filter is lock-free and safe for concurrent use by all workers of a
// compute node: each 4-slot bucket is one 64-bit word mutated only by
// whole-word compare-and-swap, so a reader can never observe a torn
// fingerprint. Races are resolved in the direction that is always safe
// for a cache — a lost race may drop an entry or a hotness mark, both
// re-learned on the next traversal. See DESIGN.md §5.10 for the word
// layout and the per-operation CAS protocols.
package cuckoo

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// SlotsPerBucket is the filter's bucket width. Four slots is the standard
// cuckoo-filter configuration [14] and what MemC3-style analyses assume;
// it is also exactly what packs one bucket into a single atomic uint64.
const SlotsPerBucket = 4

// MaxKicks bounds a cuckoo relocation chain before the insert falls back
// to evicting the displaced victim outright. Because the structure is a
// cache, dropping an entry is always safe (it can be re-learned on the
// next traversal); it just costs extra round trips later.
const MaxKicks = 128

const (
	fpBits = 12
	fpMask = 1<<fpBits - 1
	hotBit = 1 << fpBits

	slotBits = 16
	slotMask = 1<<slotBits - 1
)

// maxSpins bounds the CAS retry loops of Insert and Delete. Exhausting it
// means the bucket pair is under heavy concurrent mutation and the
// operation gives up — benign for a cache (the entry is re-learned, or
// re-unlearned, on the next traversal). Single-threaded, no CAS ever
// fails, so the bound is never reached.
const maxSpins = 8

// Stats is a snapshot of the filter's event counters, including
// everything the paper's text evaluates (false-positive probes are
// counted by the caller; eviction pressure is visible here).
type Stats struct {
	Inserts     uint64 // successful inserts
	Duplicates  uint64 // inserts of already-present fingerprints
	Hits        uint64 // Contains == true
	Misses      uint64 // Contains == false
	SecondWins  uint64 // inserts resolved by replacing a cold (hot=0) entry
	Relocations uint64 // entries moved by cuckoo kicks
	Evictions   uint64 // entries dropped (cold replacement or kick overflow)
	KickDrops   uint64 // evictions caused by kick-chain overflow specifically
	HotMarks    uint64 // cold→hot transitions (hotness-bit churn)
	Deletes     uint64 // successful deletes
}

// counter is an atomic event counter padded out to its own cache line:
// different operations bump different counters concurrently, and exact
// telemetry must not reintroduce the cross-worker sharing the lock-free
// rewrite removed.
type counter struct {
	atomic.Uint64
	_ [56]byte
}

// Policy selects the replacement behaviour when both candidate buckets
// are full. The paper's design is second-chance via the hotness bit
// (§III-B); random replacement exists as the ablation baseline it is
// compared against.
type Policy int

// Replacement policies.
const (
	// PolicySecondChance replaces a random cold (hot=0) entry, falling
	// back to cuckoo relocation (which resets hotness) when all are hot.
	PolicySecondChance Policy = iota
	// PolicyRandom replaces a uniformly random entry, ignoring hotness.
	PolicyRandom
)

// Filter is a cuckoo filter with hotness-based second-chance eviction,
// safe for concurrent use without external locking. The paper's filter
// cache is per-CN and shared by that CN's workers; the sphinx core hands
// this structure to them directly.
type Filter struct {
	nBuckets uint64
	policy   Policy
	// rng is the shared replacement-randomness state: a Weyl sequence
	// advanced by one wait-free atomic add per decision. Concurrent
	// callers may draw from the same state value — that merely correlates
	// two replacement choices; single-threaded use stays deterministic.
	rng counter
	// Event counters, one cache line each (see counter).
	inserts, duplicates, hits, misses, secondWins counter
	relocations, evictions, kickDrops             counter
	hotMarks, deletes                             counter
	// occupied is the live occupied-slot gauge, maintained symmetrically
	// by tying every movement to exactly one successful CAS transition:
	// empty→full adds one, full→empty subtracts one, full→full overwrites
	// (evictions, kicks) are net zero. The churn tests cross-check it
	// against a full scan and against inserts−evictions−deletes, in both
	// single-threaded and hammered-concurrent runs.
	occupied counter
	// buckets holds one 64-bit word per bucket: 4 slots × 16 bits, slot s
	// in bits [16s, 16s+16). All mutations are whole-word CAS.
	buckets []atomic.Uint64
}

// New creates a filter with capacity for at least n entries at ~95% load,
// using the paper's second-chance policy. Seed makes replacement decisions
// deterministic for reproducible experiments.
func New(n int, seed uint64) *Filter {
	return NewWithPolicy(n, seed, PolicySecondChance)
}

// NewWithPolicy creates a filter with an explicit replacement policy.
// The bucket count is rounded up to a power of two: because the policy
// evicts a cold entry whenever an insert finds both candidate buckets
// full (cache semantics — it does not kick unless everything is hot),
// "capacity for n entries" needs slack beyond the raw slot count so that
// full bucket pairs stay improbable while n entries are live.
func NewWithPolicy(n int, seed uint64, policy Policy) *Filter {
	if n < 1 {
		n = 1
	}
	want := uint64(float64(n)/0.95)/SlotsPerBucket + 1
	nb := uint64(1)
	for nb < want {
		nb <<= 1
	}
	return newFilter(nb, seed, policy)
}

// NewBytes creates a filter whose entry array fills the byte budget as
// closely as possible without exceeding it, using the paper's
// second-chance policy.
func NewBytes(budget uint64, seed uint64) *Filter {
	return NewBytesPolicy(budget, seed, PolicySecondChance)
}

// NewBytesPolicy creates a byte-budgeted filter with an explicit policy.
// Bucket counts are not constrained to powers of two (the index is a
// multiplicative range reduction and the partner bucket a subtractive
// involution, both of which work for any modulus), so SizeBytes() lands
// within one 8-byte bucket word of the budget.
func NewBytesPolicy(budget uint64, seed uint64, policy Policy) *Filter {
	return newFilter(budget/8, seed, policy)
}

func newFilter(nb uint64, seed uint64, policy Policy) *Filter {
	if nb < 1 {
		nb = 1
	}
	f := &Filter{
		nBuckets: nb,
		policy:   policy,
		buckets:  make([]atomic.Uint64, nb),
	}
	f.rng.Store(seed | 1)
	return f
}

// SizeBytes returns the memory footprint of the filter's entry array — the
// number the CN-side cache budget is charged with.
func (f *Filter) SizeBytes() uint64 { return f.nBuckets * 8 }

// Capacity returns the number of slots in the filter.
func (f *Filter) Capacity() int { return int(f.nBuckets * SlotsPerBucket) }

// Stats returns a snapshot of the filter's counters.
func (f *Filter) Stats() Stats {
	return Stats{
		Inserts:     f.inserts.Load(),
		Duplicates:  f.duplicates.Load(),
		Hits:        f.hits.Load(),
		Misses:      f.misses.Load(),
		SecondWins:  f.secondWins.Load(),
		Relocations: f.relocations.Load(),
		Evictions:   f.evictions.Load(),
		KickDrops:   f.kickDrops.Load(),
		HotMarks:    f.hotMarks.Load(),
		Deletes:     f.deletes.Load(),
	}
}

// Occupancy returns the current number of occupied slots, maintained
// incrementally (no scan).
func (f *Filter) Occupancy() uint64 { return f.occupied.Load() }

// fp derives the non-zero 12-bit fingerprint from a 64-bit item hash.
func fp(hash uint64) uint16 {
	v := uint16(hash>>48) & fpMask
	if v == 0 {
		v = 1
	}
	return v
}

// index derives the primary bucket from the item hash. The hash is
// remixed before the range reduction: reduce consumes the value's high
// bits, which in the raw hash are the fingerprint bits, and a bucket
// index correlated with its own fingerprint would collapse the filter's
// false-positive behaviour.
func (f *Filter) index(hash uint64) uint64 { return reduce(mix(hash), f.nBuckets) }

// altIndex derives the partner bucket from a bucket and a fingerprint
// (partial-key cuckoo hashing). Instead of the classic XOR trick, which
// requires a power-of-two bucket count, it uses the subtractive form
// i2 = (h(fp) − i1) mod n — an involution for any n, which is what lets
// NewBytesPolicy hit arbitrary byte budgets exactly.
func (f *Filter) altIndex(i uint64, fingerprint uint16) uint64 {
	d := reduce(mix(uint64(fingerprint)), f.nBuckets) + f.nBuckets - i
	if d >= f.nBuckets {
		d -= f.nBuckets
	}
	return d
}

// reduce maps a 64-bit value uniformly onto [0, n) without division
// (Lemire's multiplicative range reduction).
func reduce(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}

func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// slotOf extracts slot s from a bucket word.
func slotOf(w uint64, s int) uint16 { return uint16(w >> (uint(s) * slotBits)) }

// withSlot returns the bucket word with slot s replaced by e.
func withSlot(w uint64, s int, e uint16) uint64 {
	sh := uint(s) * slotBits
	return w&^(uint64(slotMask)<<sh) | uint64(e)<<sh
}

// Contains reports whether an item with the given hash may be present: two
// atomic bucket loads on the read path. A hit on a cold entry additionally
// attempts one best-effort CAS to set the hotness bit (second-chance
// "recently used" mark, paper §III-B); if the bucket changed underneath,
// the mark is skipped — losing a hot-mark is harmless and the next hit
// retries.
func (f *Filter) Contains(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	// The alternate index is derived lazily: most hits land in the
	// primary bucket, and altIndex costs a multiply-mix the hot read
	// path shouldn't pay unless the primary probe comes up empty.
	if f.probe(i1, fpv) {
		f.hits.Add(1)
		return true
	}
	if f.probe(f.altIndex(i1, fpv), fpv) {
		f.hits.Add(1)
		return true
	}
	f.misses.Add(1)
	return false
}

// ContainsWasHot behaves exactly like Contains — two bucket probes, a
// best-effort hot-mark on a cold hit, the hit/miss counters — and
// additionally reports whether the matched entry was hot *before* this
// probe. Contains itself cannot answer that (its own mark destroys the
// evidence); the hot-set tracker wants the prior state as its skew
// signal, captured in the same probe the warm path already pays for.
func (f *Filter) ContainsWasHot(hash uint64) (present, wasHot bool) {
	fpv := fp(hash)
	i1 := f.index(hash)
	if ok, was := f.probeWasHot(i1, fpv); ok {
		f.hits.Add(1)
		return true, was
	}
	if ok, was := f.probeWasHot(f.altIndex(i1, fpv), fpv); ok {
		f.hits.Add(1)
		return true, was
	}
	f.misses.Add(1)
	return false, false
}

// probeWasHot is probe, reporting the match's pre-probe hotness bit.
func (f *Filter) probeWasHot(b uint64, fpv uint16) (found, wasHot bool) {
	w := f.buckets[b].Load()
	for s := 0; s < SlotsPerBucket; s++ {
		e := slotOf(w, s)
		if e&fpMask == fpv {
			if e&hotBit == 0 {
				if f.buckets[b].CompareAndSwap(w, withSlot(w, s, e|hotBit)) {
					f.hotMarks.Add(1)
				}
				return true, false
			}
			return true, true
		}
	}
	return false, false
}

// ContainsHot reports whether an item with the given hash may be present
// and, if so, whether its entry currently carries the hotness bit. Unlike
// Contains it is a pure point query: it neither hot-marks the entry nor
// bumps the hit/miss counters, so callers can consult hotness (the
// hot-set tracker seeds its frequency sketch from it) without perturbing
// the second-chance replacement state they are observing.
func (f *Filter) ContainsHot(hash uint64) (present, hot bool) {
	fpv := fp(hash)
	i1 := f.index(hash)
	for _, b := range [2]uint64{i1, f.altIndex(i1, fpv)} {
		w := f.buckets[b].Load()
		for s := 0; s < SlotsPerBucket; s++ {
			if e := slotOf(w, s); e&fpMask == fpv {
				return true, e&hotBit != 0
			}
		}
	}
	return false, false
}

// HotSample iterates over the entries whose hotness bit is currently set,
// calling fn with each entry's bucket index and fingerprint until fn
// returns false or the scan completes. It returns the number of hot
// entries visited. The scan is a sequence of atomic bucket loads — safe
// concurrently with mutation, but the sample is a moving snapshot: an
// entry hot-marked (or evicted) mid-scan may or may not be visited.
// Fingerprints are one-way (the filter never stores keys), so the sample
// names hot *filter entries*, not hot keys; the sfc_hot_entries gauge and
// the hot-set tracker's seeding both work at that granularity.
func (f *Filter) HotSample(fn func(bucket uint64, fingerprint uint16) bool) uint64 {
	var n uint64
	for b := uint64(0); b < f.nBuckets; b++ {
		w := f.buckets[b].Load()
		for s := 0; s < SlotsPerBucket; s++ {
			e := slotOf(w, s)
			if e&fpMask != 0 && e&hotBit != 0 {
				n++
				if fn != nil && !fn(b, e&fpMask) {
					return n
				}
			}
		}
	}
	return n
}

// HotEntries returns the current number of hot-marked entries (one full
// scan; intended for gauges, not per-op paths).
func (f *Filter) HotEntries() uint64 { return f.HotSample(nil) }

// probe scans one bucket for fpv and hot-marks a cold match (one
// best-effort CAS, skipped on contention).
func (f *Filter) probe(b uint64, fpv uint16) bool {
	w := f.buckets[b].Load()
	for s := 0; s < SlotsPerBucket; s++ {
		e := slotOf(w, s)
		if e&fpMask == fpv {
			if e&hotBit == 0 && f.buckets[b].CompareAndSwap(w, withSlot(w, s, e|hotBit)) {
				f.hotMarks.Add(1)
			}
			return true
		}
	}
	return false
}

// Insert adds an item by hash. It returns false only if the item could not
// be stored — kick-chain overflow, or (under concurrency) persistent CAS
// contention — which, for a cache, still leaves the filter correct; the
// return value exists for accounting. Duplicate fingerprints in the
// candidate buckets are not re-inserted.
func (f *Filter) Insert(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	i2 := f.altIndex(i1, fpv)
	for spin := 0; spin < maxSpins; spin++ {
		// Already present (same fp in a candidate bucket) → refresh
		// hotness, best effort like Contains.
		for _, b := range [2]uint64{i1, i2} {
			w := f.buckets[b].Load()
			for s := 0; s < SlotsPerBucket; s++ {
				e := slotOf(w, s)
				if e&fpMask == fpv {
					if e&hotBit == 0 && f.buckets[b].CompareAndSwap(w, withSlot(w, s, e|hotBit)) {
						f.hotMarks.Add(1)
					}
					f.duplicates.Add(1)
					return true
				}
			}
		}
		// Free slot in either bucket: new entries start cold (hot=0),
		// matching the second-chance policy's "not recently used" initial
		// state (paper §III-B). A lost CAS means the bucket changed —
		// possibly a racing insert of this very fingerprint — so rescan
		// from the duplicate check.
		lost := false
		for _, b := range [2]uint64{i1, i2} {
			w := f.buckets[b].Load()
			for s := 0; s < SlotsPerBucket; s++ {
				if slotOf(w, s) == 0 {
					if f.buckets[b].CompareAndSwap(w, withSlot(w, s, fpv)) {
						f.occupied.Add(1)
						f.inserts.Add(1)
						return true
					}
					lost = true
					break
				}
			}
			if lost {
				break
			}
		}
		if lost {
			continue
		}
		// Both buckets full: evict per policy. Replacements overwrite the
		// victim's slot in the same CAS, so occupancy is unchanged
		// (evict −1, insert +1) — unless a racing delete emptied the slot
		// between load and CAS, in which case the "eviction" is really a
		// claim of an empty slot and counts as such.
		if f.policy == PolicyRandom {
			b := [2]uint64{i1, i2}[f.rand(2)]
			s := f.rand(SlotsPerBucket)
			w := f.buckets[b].Load()
			victim := slotOf(w, s)
			if !f.buckets[b].CompareAndSwap(w, withSlot(w, s, fpv)) {
				continue
			}
			f.inserts.Add(1)
			if victim == 0 {
				f.occupied.Add(1)
			} else {
				f.evictions.Add(1)
			}
			return true
		}
		// Second chance: replace a random cold entry if one exists.
		switch f.replaceCold(i1, i2, fpv) {
		case replaceDone:
			f.inserts.Add(1)
			f.secondWins.Add(1)
			f.evictions.Add(1)
			return true
		case replaceLost:
			continue
		}
		// All entries hot: cuckoo relocation. Relocated entries have their
		// hotness reset, making them eligible for future eviction.
		if f.relocate(i1, fpv) {
			f.inserts.Add(1)
			return true
		}
		// Kick chain overflowed: the new item was placed by the first kick;
		// the entry displaced at the end of the chain is dropped. One entry
		// in, one entry out: occupancy is unchanged here too.
		f.inserts.Add(1)
		f.evictions.Add(1)
		f.kickDrops.Add(1)
		return false
	}
	// Persistent contention: every CAS lost for maxSpins rounds. Drop the
	// new entry rather than spin unboundedly — always safe for a cache,
	// and unreachable single-threaded. Nothing is counted, so the
	// occupancy identity occupied == inserts−evictions−deletes holds.
	return false
}

type replaceResult int

const (
	replaceNoCold replaceResult = iota // every candidate entry is hot
	replaceDone                        // a cold entry was overwritten
	replaceLost                        // the chosen bucket changed underneath; rescan
)

// replaceCold overwrites one randomly chosen cold (hot=0, non-empty)
// entry among the two candidate buckets with fpv.
func (f *Filter) replaceCold(i1, i2 uint64, fpv uint16) replaceResult {
	var (
		cb [2 * SlotsPerBucket]uint64 // bucket of each cold entry
		cw [2 * SlotsPerBucket]uint64 // bucket word it was seen in
		cs [2 * SlotsPerBucket]int    // slot within the bucket
	)
	n := 0
	for _, b := range [2]uint64{i1, i2} {
		w := f.buckets[b].Load()
		for s := 0; s < SlotsPerBucket; s++ {
			e := slotOf(w, s)
			if e != 0 && e&hotBit == 0 {
				cb[n], cw[n], cs[n] = b, w, s
				n++
			}
		}
	}
	if n == 0 {
		return replaceNoCold
	}
	j := f.rand(n)
	if f.buckets[cb[j]].CompareAndSwap(cw[j], withSlot(cw[j], cs[j], fpv)) {
		return replaceDone
	}
	return replaceLost
}

// relocate performs cuckoo kicks starting at bucket i, inserting fpv. On
// chain overflow the last displaced fingerprint is dropped (counted as an
// eviction by the caller). Every hop is one whole-word CAS that swaps the
// carried fingerprint for the victim; a lost CAS burns one kick and
// retries, so the chain stays bounded under contention.
func (f *Filter) relocate(i uint64, fpv uint16) bool {
	cur := fpv
	b := i
	for k := 0; k < MaxKicks; k++ {
		s := f.rand(SlotsPerBucket)
		w := f.buckets[b].Load()
		victim := slotOf(w, s)
		if victim == 0 {
			// A racing delete emptied the slot since the bucket was seen
			// full: claim it and the chain ends with one more occupied slot.
			if f.buckets[b].CompareAndSwap(w, withSlot(w, s, cur)) {
				f.occupied.Add(1)
				return true
			}
			continue
		}
		if !f.buckets[b].CompareAndSwap(w, withSlot(w, s, cur)) {
			continue
		}
		f.relocations.Add(1) // relocated entries enter cold (hot=0)
		cur = victim & fpMask
		b = f.altIndex(b, cur)
		w = f.buckets[b].Load()
		for s := 0; s < SlotsPerBucket; s++ {
			if slotOf(w, s) == 0 {
				// The chain ends in a previously empty slot: the insert
				// that started it nets one more occupied slot.
				if f.buckets[b].CompareAndSwap(w, withSlot(w, s, cur)) {
					f.occupied.Add(1)
					return true
				}
				break // word changed underneath: kick again from here
			}
		}
	}
	return false
}

// Delete removes one entry matching the hash's fingerprint, if present.
// Sphinx uses it only when it proactively unlearns a prefix after
// detecting a false positive against the remote index.
func (f *Filter) Delete(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	i2 := f.altIndex(i1, fpv)
	for spin := 0; spin < maxSpins; spin++ {
		lost := false
		for _, b := range [2]uint64{i1, i2} {
			w := f.buckets[b].Load()
			for s := 0; s < SlotsPerBucket; s++ {
				if slotOf(w, s)&fpMask == fpv {
					if f.buckets[b].CompareAndSwap(w, withSlot(w, s, 0)) {
						f.occupied.Add(^uint64(0))
						f.deletes.Add(1)
						return true
					}
					lost = true
				}
			}
		}
		if !lost {
			return false
		}
	}
	// Persistent contention: report not-found. A stale surviving entry is
	// at worst one more false positive, re-unlearned on detection.
	return false
}

// Load returns the fraction of occupied slots, from the incrementally
// maintained count (the churn tests cross-check it against a scan).
func (f *Filter) Load() float64 {
	return float64(f.occupied.Load()) / float64(f.nBuckets*SlotsPerBucket)
}

// AnalyticFPBound returns the standard cuckoo-filter false-positive bound
// at the filter's current load: ε ≈ load · 2b / 2^f for b slots per
// bucket and f fingerprint bits [14]. Exported so telemetry can place the
// measured rate next to the bound it is supposed to obey.
func (f *Filter) AnalyticFPBound() float64 {
	return f.Load() * 2 * SlotsPerBucket / (1 << fpBits)
}

// rand returns a pseudo-random int in [0, n): one wait-free atomic add on
// a Weyl sequence, finalized through mix. Deterministic when the filter
// is driven by one goroutine (the figure experiments); under concurrency,
// two callers may draw correlated values, which only correlates two
// replacement decisions.
func (f *Filter) rand(n int) int {
	return int(mix(f.rng.Add(0x9e3779b97f4a7c15)) % uint64(n))
}

// String summarizes the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("cuckoo(%d buckets, %.1f%% load, %d B)",
		f.nBuckets, f.Load()*100, f.SizeBytes())
}
