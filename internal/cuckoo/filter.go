// Package cuckoo implements the succinct data structure at the heart of the
// paper's Succinct Filter Cache (§III-B): a cuckoo filter [14] extended
// with a per-entry hotness bit driving a second-chance replacement policy
// [24], so the filter doubles as a bounded cache of "which inner-node
// prefixes exist".
//
// Entries are 16 bits: a 12-bit fingerprint (never zero; zero means empty),
// one hotness bit, and spare. With 4-way buckets this is ~2 bytes per
// tracked prefix versus the 40–2056 bytes per node of node-based caching —
// the space argument of the paper.
package cuckoo

import "fmt"

// SlotsPerBucket is the filter's bucket width. Four slots is the standard
// cuckoo-filter configuration [14] and what MemC3-style analyses assume.
const SlotsPerBucket = 4

// MaxKicks bounds a cuckoo relocation chain before the insert falls back
// to evicting the displaced victim outright. Because the structure is a
// cache, dropping an entry is always safe (it can be re-learned on the
// next traversal); it just costs extra round trips later.
const MaxKicks = 128

const (
	fpBits = 12
	fpMask = 1<<fpBits - 1
	hotBit = 1 << fpBits
)

// Stats counts filter events, including everything the paper's text
// evaluates (false-positive probes are counted by the caller; eviction
// pressure is visible here).
type Stats struct {
	Inserts     uint64 // successful inserts
	Duplicates  uint64 // inserts of already-present fingerprints
	Hits        uint64 // Contains == true
	Misses      uint64 // Contains == false
	SecondWins  uint64 // inserts resolved by replacing a cold (hot=0) entry
	Relocations uint64 // entries moved by cuckoo kicks
	Evictions   uint64 // entries dropped (cold replacement or kick overflow)
	KickDrops   uint64 // evictions caused by kick-chain overflow specifically
	HotMarks    uint64 // cold→hot transitions (hotness-bit churn)
	Deletes     uint64 // successful deletes
}

// Policy selects the replacement behaviour when both candidate buckets
// are full. The paper's design is second-chance via the hotness bit
// (§III-B); random replacement exists as the ablation baseline it is
// compared against.
type Policy int

// Replacement policies.
const (
	// PolicySecondChance replaces a random cold (hot=0) entry, falling
	// back to cuckoo relocation (which resets hotness) when all are hot.
	PolicySecondChance Policy = iota
	// PolicyRandom replaces a uniformly random entry, ignoring hotness.
	PolicyRandom
)

// Filter is a cuckoo filter with hotness-based second-chance eviction.
// It is not safe for concurrent use: the paper's filter cache is per-CN
// and accessed by that CN's workers through its client structure; the
// sphinx core wraps it accordingly.
type Filter struct {
	buckets  []uint16 // numBuckets * SlotsPerBucket entries
	nBuckets uint64   // power of two
	mask     uint64
	rng      uint64
	policy   Policy
	stats    Stats
	// occupied is the live occupied-slot count, maintained symmetrically
	// by every insert/evict/delete path so occupancy telemetry never
	// needs the O(n) scan. Every slot transition empty→full adds one,
	// full→empty subtracts one; overwrites (evictions that immediately
	// reuse the slot) are net zero.
	occupied uint64
}

// New creates a filter with capacity for at least n entries at ~95% load,
// using the paper's second-chance policy. The bucket count is rounded up
// to a power of two. Seed makes replacement decisions deterministic for
// reproducible experiments.
func New(n int, seed uint64) *Filter {
	return NewWithPolicy(n, seed, PolicySecondChance)
}

// NewWithPolicy creates a filter with an explicit replacement policy.
func NewWithPolicy(n int, seed uint64, policy Policy) *Filter {
	if n < 1 {
		n = 1
	}
	want := uint64(float64(n)/0.95)/SlotsPerBucket + 1
	nb := uint64(1)
	for nb < want {
		nb <<= 1
	}
	return &Filter{
		buckets:  make([]uint16, nb*SlotsPerBucket),
		nBuckets: nb,
		mask:     nb - 1,
		rng:      seed | 1,
		policy:   policy,
	}
}

// SizeBytes returns the memory footprint of the filter's entry array — the
// number the CN-side cache budget is charged with.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.buckets)) * 2 }

// Capacity returns the number of slots in the filter.
func (f *Filter) Capacity() int { return len(f.buckets) }

// Stats returns a snapshot of the filter's counters.
func (f *Filter) Stats() Stats { return f.stats }

// Occupancy returns the current number of occupied slots, maintained
// incrementally (no scan).
func (f *Filter) Occupancy() uint64 { return f.occupied }

// fp derives the non-zero 12-bit fingerprint from a 64-bit item hash.
func fp(hash uint64) uint16 {
	v := uint16(hash>>48) & fpMask
	if v == 0 {
		v = 1
	}
	return v
}

// index derives the primary bucket from the item hash.
func (f *Filter) index(hash uint64) uint64 { return hash & f.mask }

// altIndex derives the partner bucket from a bucket and a fingerprint
// (partial-key cuckoo hashing: i2 = i1 XOR h(fp), an involution).
func (f *Filter) altIndex(i uint64, fingerprint uint16) uint64 {
	return (i ^ mix(uint64(fingerprint))) & f.mask
}

func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (f *Filter) slot(bucket uint64, s int) *uint16 {
	return &f.buckets[bucket*SlotsPerBucket+uint64(s)]
}

// Contains reports whether an item with the given hash may be present.
// A hit sets the entry's hotness bit (second-chance "recently used" mark,
// paper §III-B).
func (f *Filter) Contains(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	i2 := f.altIndex(i1, fpv)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e&fpMask == fpv {
				if *e&hotBit == 0 {
					f.stats.HotMarks++
				}
				*e |= hotBit
				f.stats.Hits++
				return true
			}
		}
	}
	f.stats.Misses++
	return false
}

// Insert adds an item by hash. It returns false only if the item could not
// be stored without dropping another entry — which, for a cache, still
// leaves the filter correct; the return value exists for accounting.
// Duplicate fingerprints in the candidate buckets are not re-inserted.
func (f *Filter) Insert(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	i2 := f.altIndex(i1, fpv)

	// Already present (same fp in a candidate bucket) → refresh hotness.
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e&fpMask == fpv {
				if *e&hotBit == 0 {
					f.stats.HotMarks++
				}
				*e |= hotBit
				f.stats.Duplicates++
				return true
			}
		}
	}
	// Free slot in either bucket: new entries start cold (hot=0),
	// matching the second-chance policy's "not recently used" initial
	// state (paper §III-B).
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e == 0 {
				*e = fpv
				f.occupied++
				f.stats.Inserts++
				return true
			}
		}
	}
	// Both buckets full: evict per policy. Replacements reuse the
	// victim's slot, so occupancy is unchanged (evict −1, insert +1).
	if f.policy == PolicyRandom {
		b := [2]uint64{i1, i2}[f.rand(2)]
		*f.slot(b, f.rand(SlotsPerBucket)) = fpv
		f.stats.Inserts++
		f.stats.Evictions++
		return true
	}
	// Second chance: replace a random cold entry if one exists.
	if f.replaceCold(i1, i2, fpv) {
		f.stats.Inserts++
		f.stats.SecondWins++
		f.stats.Evictions++
		return true
	}
	// All entries hot: cuckoo relocation. Relocated entries have their
	// hotness reset, making them eligible for future eviction.
	if f.relocate(i1, fpv) {
		f.stats.Inserts++
		return true
	}
	// Kick chain overflowed: the new item was placed by the first kick;
	// the entry displaced at the end of the chain is dropped. One entry
	// in, one entry out: occupancy is unchanged here too.
	f.stats.Inserts++
	f.stats.Evictions++
	f.stats.KickDrops++
	return false
}

// replaceCold overwrites one randomly chosen hot=0 entry among the two
// candidate buckets with fpv. It returns false if every entry is hot.
func (f *Filter) replaceCold(i1, i2 uint64, fpv uint16) bool {
	var cold [2 * SlotsPerBucket]*uint16
	n := 0
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e&hotBit == 0 {
				cold[n] = e
				n++
			}
		}
	}
	if n == 0 {
		return false
	}
	*cold[f.rand(n)] = fpv
	return true
}

// relocate performs cuckoo kicks starting at bucket i, inserting fpv. On
// chain overflow the last displaced fingerprint is dropped (counted as an
// eviction by the caller).
func (f *Filter) relocate(i uint64, fpv uint16) bool {
	cur := fpv
	b := i
	for k := 0; k < MaxKicks; k++ {
		s := f.rand(SlotsPerBucket)
		e := f.slot(b, s)
		victim := *e
		*e = cur // relocated entries enter cold (hot=0)
		f.stats.Relocations++
		cur = victim & fpMask
		b = f.altIndex(b, cur)
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e == 0 {
				// The chain ends in a previously empty slot: the insert
				// that started it nets one more occupied slot.
				*e = cur
				f.occupied++
				return true
			}
		}
	}
	return false
}

// Delete removes one entry matching the hash's fingerprint, if present.
// Sphinx uses it only when it proactively unlearns a prefix after
// detecting a false positive against the remote index.
func (f *Filter) Delete(hash uint64) bool {
	fpv := fp(hash)
	i1 := f.index(hash)
	i2 := f.altIndex(i1, fpv)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < SlotsPerBucket; s++ {
			e := f.slot(b, s)
			if *e&fpMask == fpv {
				*e = 0
				f.occupied--
				f.stats.Deletes++
				return true
			}
		}
	}
	return false
}

// Load returns the fraction of occupied slots, from the incrementally
// maintained count (the churn test cross-checks it against a scan).
func (f *Filter) Load() float64 {
	return float64(f.occupied) / float64(len(f.buckets))
}

// AnalyticFPBound returns the standard cuckoo-filter false-positive bound
// at the filter's current load: ε ≈ load · 2b / 2^f for b slots per
// bucket and f fingerprint bits [14]. Exported so telemetry can place the
// measured rate next to the bound it is supposed to obey.
func (f *Filter) AnalyticFPBound() float64 {
	return f.Load() * 2 * SlotsPerBucket / (1 << fpBits)
}

// rand returns a deterministic pseudo-random int in [0, n) (xorshift64*).
func (f *Filter) rand(n int) int {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return int((f.rng * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
}

// String summarizes the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("cuckoo(%d buckets, %.1f%% load, %d B)",
		f.nBuckets, f.Load()*100, f.SizeBytes())
}
