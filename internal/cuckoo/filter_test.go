package cuckoo

import (
	"fmt"
	"testing"
	"testing/quick"

	"sphinx/internal/wire"
)

func hashOf(s string) uint64 { return wire.Hash64Seed([]byte(s), 7) }

func TestInsertThenContains(t *testing.T) {
	f := New(1000, 1)
	for i := 0; i < 500; i++ {
		f.Insert(hashOf(fmt.Sprintf("prefix-%d", i)))
	}
	for i := 0; i < 500; i++ {
		if !f.Contains(hashOf(fmt.Sprintf("prefix-%d", i))) {
			t.Fatalf("false negative for prefix-%d with ample capacity", i)
		}
	}
}

func TestNoFalseNegativesUnderCapacity(t *testing.T) {
	// Property: while the filter has not evicted anything, every inserted
	// item is found.
	f := New(4096, 42)
	inserted := make(map[uint64]bool)
	g := func(x uint64) bool {
		h := wire.Mix64(x)
		f.Insert(h)
		inserted[h] = true
		if f.Stats().Evictions > 0 {
			return true // eviction happened; contract no longer applies
		}
		for k := range inserted {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateUnderOnePercent(t *testing.T) {
	// The paper (§III-B) relies on the cuckoo-filter property that ~12-bit
	// fingerprints give a false-positive rate below 1%.
	const n = 50000
	f := New(n, 3)
	for i := 0; i < n; i++ {
		f.Insert(hashOf(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Contains(hashOf(fmt.Sprintf("non-member-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate >= 0.01 {
		t.Errorf("false-positive rate %.4f ≥ 1%%", rate)
	}
}

func TestDuplicateInsertIsIdempotent(t *testing.T) {
	f := New(100, 1)
	h := hashOf("LYR")
	f.Insert(h)
	f.Insert(h)
	if f.Stats().Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", f.Stats().Duplicates)
	}
	if !f.Contains(h) {
		t.Error("duplicate insert lost the entry")
	}
}

func TestDelete(t *testing.T) {
	f := New(100, 1)
	h := hashOf("LYRICS")
	f.Insert(h)
	if !f.Delete(h) {
		t.Fatal("delete of present item failed")
	}
	if f.Contains(h) {
		t.Error("item present after delete")
	}
	if f.Delete(h) {
		t.Error("second delete reported success")
	}
}

func TestHotnessSecondChance(t *testing.T) {
	// Under heavy overload with a mix of hot and cold entries, the
	// second-chance policy must resolve some inserts by evicting cold
	// entries rather than always kicking.
	g := New(32, 5) // tiny filter
	for i := 0; i < 4096; i++ {
		g.Insert(wire.Mix64(uint64(i)))
		if i%3 == 0 {
			g.Contains(wire.Mix64(uint64(i / 2))) // heat some entries
		}
	}
	st := g.Stats()
	if st.SecondWins == 0 {
		t.Error("overloaded filter never used second-chance replacement")
	}
	if st.Evictions == 0 {
		t.Error("overloaded filter reported no evictions")
	}
}

func TestRelocationResetsHotness(t *testing.T) {
	// After relocations, previously hot entries must be evictable again:
	// keep inserting into a tiny filter where everything is hot.
	f := New(16, 11)
	var hs []uint64
	for i := 0; i < 64; i++ {
		h := wire.Mix64(uint64(i))
		hs = append(hs, h)
		f.Insert(h)
		for _, k := range hs {
			f.Contains(k) // heat everything present
		}
	}
	// If hotness were never reset, inserts would always end in kick
	// overflow; with second-chance resets the filter keeps functioning.
	if f.Stats().Relocations == 0 {
		t.Error("no relocations in saturated filter")
	}
	if f.Load() < 0.5 {
		t.Errorf("load %.2f collapsed; eviction policy broken", f.Load())
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(1000, 1)
	// 1000/0.95/4 → 264 → rounded to 512 buckets × one 8-byte word
	// (4 slots × 16 bits). NewBytes skips the rounding; see
	// TestNewBytesWithinBudget.
	if f.SizeBytes() != 512*8 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
	// ~2 bytes per tracked item keeps the paper's "succinct" claim honest.
	perItem := float64(f.SizeBytes()) / 1000
	if perItem > 8 {
		t.Errorf("%.1f bytes per item is not succinct", perItem)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() Stats {
		f := New(64, 77)
		for i := 0; i < 2000; i++ {
			f.Insert(wire.Mix64(uint64(i)))
			if i%2 == 0 {
				f.Contains(wire.Mix64(uint64(i - 1)))
			}
		}
		return f.Stats()
	}
	if run() != run() {
		t.Error("same seed produced different filter behaviour")
	}
}

func TestZeroCapacity(t *testing.T) {
	f := New(0, 1)
	h := hashOf("x")
	f.Insert(h)
	if !f.Contains(h) {
		t.Error("minimal filter lost its only item")
	}
}

func TestLoadEmptyAndFull(t *testing.T) {
	f := New(100, 1)
	if f.Load() != 0 {
		t.Errorf("empty filter load = %f", f.Load())
	}
	for i := 0; i < 100; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
	if f.Load() == 0 {
		t.Error("filter load still zero after inserts")
	}
}

func TestFingerprintNeverZero(t *testing.T) {
	for i := uint64(0); i < 100000; i++ {
		if fp(i<<48) == 0 {
			t.Fatalf("zero fingerprint for hash %#x", i<<48)
		}
	}
}

func TestAltIndexIsInvolution(t *testing.T) {
	f := New(1024, 1)
	g := func(h uint64) bool {
		fpv := fp(h)
		i1 := f.index(h)
		i2 := f.altIndex(i1, fpv)
		return f.altIndex(i2, fpv) == i1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	f := New(10, 1)
	if f.String() == "" {
		t.Error("empty String()")
	}
}

func TestPolicyRandomVsSecondChance(t *testing.T) {
	// Under capacity pressure with a skewed access pattern, the hotness
	// bit must retain hot entries better than random replacement — the
	// design rationale of paper §III-B's second-chance mechanism.
	run := func(policy Policy) float64 {
		f := NewWithPolicy(256, 5, policy)
		// Hot set: 64 items, touched constantly. Cold stream: churn.
		hot := make([]uint64, 64)
		for i := range hot {
			hot[i] = wire.Mix64(uint64(i) + 1)
			f.Insert(hot[i])
		}
		hits := 0
		probes := 0
		for step := 0; step < 20000; step++ {
			// Touch hot items to keep their bits set.
			h := hot[step%len(hot)]
			probes++
			if f.Contains(h) {
				hits++
			} else {
				f.Insert(h) // re-learn on miss, as Sphinx does
			}
			// Cold pressure.
			f.Insert(wire.Mix64(uint64(step) * 0x9e3779b97f4a7c15))
		}
		return float64(hits) / float64(probes)
	}
	second := run(PolicySecondChance)
	random := run(PolicyRandom)
	if second <= random {
		t.Errorf("second-chance hot hit rate %.3f not better than random %.3f", second, random)
	}
	if second < 0.5 {
		t.Errorf("second-chance hot hit rate %.3f too low under pressure", second)
	}
}

func TestPolicyRandomStillFunctional(t *testing.T) {
	f := NewWithPolicy(100, 3, PolicyRandom)
	for i := 0; i < 1000; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
	if f.Load() < 0.5 {
		t.Errorf("random-policy filter collapsed to %.2f load", f.Load())
	}
	h := wire.Mix64(99999)
	f.Insert(h)
	if !f.Contains(h) {
		t.Error("just-inserted item missing")
	}
}
