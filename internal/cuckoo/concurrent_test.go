package cuckoo

import (
	"sync"
	"testing"

	"sphinx/internal/wire"
)

// TestConcurrentChurnInvariants hammers one filter from many goroutines
// with mixed Contains/Insert/Delete and checks, after quiescence, the
// invariants that must survive any interleaving of whole-word CASes:
//
//   - incremental occupancy equals a full scan,
//   - occupancy equals inserts − evictions − deletes (every counter
//     movement is tied to exactly one successful CAS transition),
//   - occupancy never exceeds capacity,
//   - no slot holds a torn entry (a set hot bit with a zero fingerprint,
//     or spare bits set) — the forbidden race whole-word CAS rules out.
//
// Run under -race this also proves the filter is data-race-free.
func TestConcurrentChurnInvariants(t *testing.T) {
	for _, policy := range []Policy{PolicySecondChance, PolicyRandom} {
		f := NewWithPolicy(1<<10, 99, policy)
		const workers = 8
		const opsPer = 20000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := uint64(w)*0x9e3779b97f4a7c15 + 1
				for i := 0; i < opsPer; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					// A key universe ~4× capacity: plenty of duplicates,
					// evictions, false deletes and cross-goroutine collisions.
					h := wire.Mix64(rng % (1 << 12))
					switch {
					case rng>>32%16 < 10:
						f.Contains(h)
					case rng>>32%16 < 14:
						f.Insert(h)
					default:
						f.Delete(h)
					}
				}
			}(w)
		}
		wg.Wait()

		occ := f.Occupancy()
		if scan := scanOccupied(f); occ != scan {
			t.Fatalf("policy %d: incremental occupancy %d != scanned %d", policy, occ, scan)
		}
		if occ > uint64(f.Capacity()) {
			t.Fatalf("policy %d: occupancy %d exceeds capacity %d", policy, occ, f.Capacity())
		}
		st := f.Stats()
		if want := st.Inserts - st.Evictions - st.Deletes; occ != want {
			t.Fatalf("policy %d: occupancy %d != inserts-evictions-deletes %d (stats %+v)",
				policy, occ, want, st)
		}
		for i := range f.buckets {
			w := f.buckets[i].Load()
			for s := 0; s < SlotsPerBucket; s++ {
				e := slotOf(w, s)
				if e != 0 && e&fpMask == 0 {
					t.Fatalf("policy %d: torn slot %#x (hot bit without fingerprint)", policy, e)
				}
				if e&^uint16(fpMask|hotBit) != 0 {
					t.Fatalf("policy %d: spare bits set in slot %#x", policy, e)
				}
			}
		}
		if st.Hits == 0 || st.Inserts == 0 || st.Deletes == 0 {
			t.Fatalf("policy %d: churn did not exercise all operations (stats %+v)", policy, st)
		}
	}
}

// TestConcurrentInsertNoFalseNegatives checks the cache's one hard read
// guarantee under concurrency: with ample capacity (no evictions), every
// insert that reported success is subsequently found.
func TestConcurrentInsertNoFalseNegatives(t *testing.T) {
	f := New(1<<14, 3)
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h := wire.Mix64(uint64(w*perWorker + i))
				if !f.Insert(h) {
					t.Errorf("insert failed with ample capacity (worker %d item %d)", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if ev := f.Stats().Evictions; ev != 0 {
		t.Fatalf("%d evictions at %.0f%% load; capacity sizing broken", ev, f.Load()*100)
	}
	for i := 0; i < workers*perWorker; i++ {
		if !f.Contains(wire.Mix64(uint64(i))) {
			t.Fatalf("false negative for item %d with no evictions", i)
		}
	}
}

// TestNewBytesWithinBudget pins the byte-budget constructor's contract:
// SizeBytes() never exceeds the budget and lands within one bucket word
// (8 bytes) below it, across budgets with no power-of-two structure.
func TestNewBytesWithinBudget(t *testing.T) {
	for _, budget := range []uint64{64, 1000, 64 << 10, 100_000, 1 << 20, 3_333_333, 20 << 20} {
		f := NewBytes(budget, 1)
		got := f.SizeBytes()
		if got > budget {
			t.Errorf("budget %d: SizeBytes %d over budget", budget, got)
		}
		if budget-got >= 8 {
			t.Errorf("budget %d: SizeBytes %d wastes %d bytes (≥ one bucket word)",
				budget, got, budget-got)
		}
	}
}

// TestAltIndexInvolutionNonPowerOfTwo re-proves the bucket-pair involution
// on filters whose bucket count is not a power of two — the property the
// subtractive partner-index form exists for.
func TestAltIndexInvolutionNonPowerOfTwo(t *testing.T) {
	for _, budget := range []uint64{1000, 99_992, 3_333_333} {
		f := NewBytes(budget, 1)
		for i := 0; i < 10_000; i++ {
			h := wire.Mix64(uint64(i) * 0x9e3779b97f4a7c15)
			fpv := fp(h)
			i1 := f.index(h)
			i2 := f.altIndex(i1, fpv)
			if i1 >= f.nBuckets || i2 >= f.nBuckets {
				t.Fatalf("budget %d: index out of range (%d, %d of %d)", budget, i1, i2, f.nBuckets)
			}
			if back := f.altIndex(i2, fpv); back != i1 {
				t.Fatalf("budget %d: altIndex not an involution: %d → %d → %d", budget, i1, i2, back)
			}
		}
		// The involution must also hold for entries displaced by kicks,
		// whose bucket may be either of the pair: exercise via churn.
		for i := 0; i < 2000; i++ {
			f.Insert(wire.Mix64(uint64(i)))
		}
		for i := 0; i < 2000; i++ {
			f.Delete(wire.Mix64(uint64(i)))
		}
		if occ, scan := f.Occupancy(), scanOccupied(f); occ != scan {
			t.Fatalf("budget %d: occupancy %d != scan %d after churn (bucket-pair invariant broken?)",
				budget, occ, scan)
		}
	}
}

var sinkBool bool

// BenchmarkContainsParallel measures the raw lock-free read path (two
// atomic loads, warm hits skip the hot-mark CAS) under b.RunParallel.
func BenchmarkContainsParallel(b *testing.B) {
	f := New(1<<16, 1)
	for i := 0; i < 1<<16; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			sinkBool = f.Contains(wire.Mix64(i & (1<<16 - 1)))
			i++
		}
	})
}

func hashSeq(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s++
		return wire.Mix64(s)
	}
}

// BenchmarkInsertParallel measures concurrent inserts with eviction
// pressure (cold stream into a full filter).
func BenchmarkInsertParallel(b *testing.B) {
	f := New(1<<14, 1)
	var lane uint64
	var mu sync.Mutex
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		lane++
		next := hashSeq(lane << 40)
		mu.Unlock()
		for pb.Next() {
			f.Insert(next())
		}
	})
}
