package cuckoo

import (
	"fmt"
	"testing"
)

// scanOccupied is the ground truth the incremental counter must track.
func scanOccupied(f *Filter) uint64 {
	var used uint64
	for i := range f.buckets {
		w := f.buckets[i].Load()
		for s := 0; s < SlotsPerBucket; s++ {
			if slotOf(w, s) != 0 {
				used++
			}
		}
	}
	return used
}

func checkOccupancy(t *testing.T, f *Filter, where string) {
	t.Helper()
	if got, want := f.Occupancy(), scanOccupied(f); got != want {
		t.Fatalf("%s: incremental occupancy %d != scanned %d", where, got, want)
	}
	st := f.Stats()
	if got, want := f.Occupancy(), st.Inserts-st.Evictions-st.Deletes; got != want {
		t.Fatalf("%s: occupancy %d != inserts-evictions-deletes %d (stats %+v)",
			where, got, want, st)
	}
}

// TestOccupancyChurnReturnsToBaseline drives a small filter far past
// capacity (forcing second-chance replacement, relocation chains and
// kick-overflow drops), interleaves deletes, and asserts after every
// phase that the incremental occupancy equals a full scan — i.e. every
// eviction path decrements (or net-zeroes) occupancy symmetrically with
// insert. Finally it empties the filter and requires occupancy back at
// the baseline of zero.
func TestOccupancyChurnReturnsToBaseline(t *testing.T) {
	for _, policy := range []Policy{PolicySecondChance, PolicyRandom} {
		f := NewWithPolicy(48, 42, policy)
		var hashes []uint64
		for round := 0; round < 6; round++ {
			for i := 0; i < 200; i++ {
				h := hashOf(fmt.Sprintf("churn-%d-%d", round, i))
				hashes = append(hashes, h)
				f.Insert(h)
				// Mark a slice hot so second chance has hot entries to kick.
				if i%3 == 0 {
					f.Contains(h)
				}
			}
			checkOccupancy(t, f, fmt.Sprintf("policy %d after insert round %d", policy, round))
			for i := 0; i < 100; i++ {
				f.Delete(hashOf(fmt.Sprintf("churn-%d-%d", round, i)))
			}
			checkOccupancy(t, f, fmt.Sprintf("policy %d after delete round %d", policy, round))
		}
		st := f.Stats()
		if st.Evictions == 0 {
			t.Fatalf("policy %d: churn did not exercise eviction paths (stats %+v)", policy, st)
		}
		if policy == PolicySecondChance && st.SecondWins == 0 {
			t.Fatalf("second chance never replaced a cold entry (stats %+v)", st)
		}
		// Delete-until-absent over everything ever inserted empties the
		// filter: relocations preserve the bucket-pair invariant, so every
		// surviving entry is reachable from one of the inserted hashes.
		for _, h := range hashes {
			for f.Delete(h) {
			}
		}
		checkOccupancy(t, f, fmt.Sprintf("policy %d after emptying", policy))
		if f.Occupancy() != 0 {
			t.Fatalf("policy %d: occupancy %d after deleting everything, want baseline 0",
				policy, f.Occupancy())
		}
	}
}

// TestOccupancyKickDropAccounting checks the kick-overflow path
// specifically: overflow drops must count as evictions and kick drops,
// and keep occupancy saturated, not inflated.
func TestOccupancyKickDropAccounting(t *testing.T) {
	f := New(16, 7)
	var recent []uint64
	for i := 0; i < 5000; i++ {
		h := hashOf(fmt.Sprintf("press-%d", i))
		f.Insert(h)
		// Keep the working set hot so inserts find no cold victim and must
		// take the relocation path; at full occupancy chains overflow.
		recent = append(recent, h)
		if len(recent) > 64 {
			recent = recent[1:]
		}
		for _, r := range recent {
			f.Contains(r)
		}
	}
	checkOccupancy(t, f, "after pressure")
	if f.Occupancy() > uint64(f.Capacity()) {
		t.Fatalf("occupancy %d exceeds capacity %d", f.Occupancy(), f.Capacity())
	}
	st := f.Stats()
	if st.KickDrops == 0 {
		t.Fatalf("pressure run never overflowed a kick chain (stats %+v)", st)
	}
	if st.KickDrops > st.Evictions {
		t.Fatalf("kick drops %d exceed evictions %d", st.KickDrops, st.Evictions)
	}
	if st.HotMarks == 0 {
		t.Fatalf("hotness churn not counted (stats %+v)", st)
	}
}

// TestMeasuredFPRateWithinAnalyticBound loads N items and probes M
// absent items: the measured false-positive rate must sit near the
// cuckoo filter's analytic bound ε ≈ load · 2b / 2^f (b slots per
// bucket, f fingerprint bits).
func TestMeasuredFPRateWithinAnalyticBound(t *testing.T) {
	f := New(4096, 3)
	for i := 0; i < 4096; i++ {
		f.Insert(hashOf(fmt.Sprintf("present-%d", i)))
	}
	before := f.Stats()
	const M = 200_000
	fps := 0
	for i := 0; i < M; i++ {
		if f.Contains(hashOf(fmt.Sprintf("absent-%d", i))) {
			fps++
		}
	}
	if probes := f.Stats().Hits + f.Stats().Misses - before.Hits - before.Misses; probes != M {
		t.Fatalf("probe accounting off: %d probes recorded, want %d", probes, M)
	}
	measured := float64(fps) / float64(M)
	analytic := f.AnalyticFPBound()
	if measured < 0.5*analytic || measured > 1.5*analytic {
		t.Fatalf("measured FP rate %.5f outside [0.5, 1.5]× analytic bound %.5f (load %.2f)",
			measured, analytic, f.Load())
	}
}
