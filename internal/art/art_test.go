package art

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sphinx/internal/wire"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Error("empty tree has nonzero length")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Error("Get on empty tree succeeded")
	}
	if tr.Delete([]byte("x")) {
		t.Error("Delete on empty tree succeeded")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree succeeded")
	}
}

func TestInsertGet(t *testing.T) {
	var tr Tree
	pairs := map[string]string{
		"LYRICS": "v1", "LYRIC": "v2", "LYR": "v3", "L": "v4",
		"LYRICAL": "v5", "MOON": "v6", "": "v7",
	}
	for k, v := range pairs {
		if tr.Insert([]byte(k), []byte(v)) {
			t.Errorf("fresh insert of %q reported replace", k)
		}
	}
	if tr.Len() != len(pairs) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(pairs))
	}
	for k, v := range pairs {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got) != v {
			t.Errorf("Get(%q) = %q,%v want %q", k, got, ok, v)
		}
	}
	if _, ok := tr.Get([]byte("LY")); ok {
		t.Error("Get of absent intermediate prefix succeeded")
	}
	if _, ok := tr.Get([]byte("LYRICSX")); ok {
		t.Error("Get of absent extension succeeded")
	}
}

func TestInsertReplace(t *testing.T) {
	var tr Tree
	tr.Insert([]byte("key"), []byte("old"))
	if !tr.Insert([]byte("key"), []byte("new")) {
		t.Error("overwrite not reported as replace")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
	v, _ := tr.Get([]byte("key"))
	if string(v) != "new" {
		t.Errorf("value = %q", v)
	}
}

func TestKeysThatArePrefixes(t *testing.T) {
	var tr Tree
	keys := []string{"a", "ab", "abc", "abcd", "abcde"}
	for i, k := range keys {
		tr.Insert([]byte(k), []byte{byte(i)})
	}
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v[0] != byte(i) {
			t.Errorf("Get(%q) = %v,%v", k, v, ok)
		}
	}
}

func TestKeysWithNULBytes(t *testing.T) {
	// u64 big-endian keys contain zero bytes; no terminator tricks allowed.
	var tr Tree
	keys := [][]byte{
		{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 1}, {0}, {1, 0, 0},
	}
	for i, k := range keys {
		tr.Insert(k, []byte{byte(i + 1)})
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v[0] != byte(i+1) {
			t.Errorf("Get(% x) = %v,%v", k, v, ok)
		}
	}
}

func TestGrowThroughAllNodeTypes(t *testing.T) {
	var tr Tree
	for i := 0; i < 256; i++ {
		tr.Insert([]byte{byte(i), 'x'}, []byte{byte(i)})
	}
	for i := 0; i < 256; i++ {
		v, ok := tr.Get([]byte{byte(i), 'x'})
		if !ok || v[0] != byte(i) {
			t.Fatalf("lost key %d after growth", i)
		}
	}
	nc := tr.Counts()
	if nc.ByType[wire.Node256] == 0 {
		t.Error("256 children did not produce a Node256")
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	keys := []string{"a", "ab", "abc", "b", "ba", "bb", "c"}
	for _, k := range keys {
		tr.Insert([]byte(k), []byte(k))
	}
	for i, k := range keys {
		if !tr.Delete([]byte(k)) {
			t.Fatalf("delete %q failed", k)
		}
		if tr.Len() != len(keys)-i-1 {
			t.Fatalf("Len = %d after deleting %q", tr.Len(), k)
		}
		if _, ok := tr.Get([]byte(k)); ok {
			t.Fatalf("%q still present after delete", k)
		}
		for _, rest := range keys[i+1:] {
			if _, ok := tr.Get([]byte(rest)); !ok {
				t.Fatalf("%q lost while deleting %q", rest, k)
			}
		}
	}
}

func TestDeleteShrinksNodes(t *testing.T) {
	var tr Tree
	for i := 0; i < 200; i++ {
		tr.Insert([]byte{byte(i)}, []byte{1})
	}
	before := tr.Counts()
	if before.ByType[wire.Node256] == 0 {
		t.Fatal("setup: expected a Node256")
	}
	for i := 0; i < 198; i++ {
		tr.Delete([]byte{byte(i)})
	}
	after := tr.Counts()
	if after.ByType[wire.Node256] != 0 {
		t.Error("Node256 survived shrinking to 2 children")
	}
}

func TestMinMax(t *testing.T) {
	var tr Tree
	for _, k := range []string{"m", "b", "zz", "ba", "z"} {
		tr.Insert([]byte(k), []byte(k))
	}
	k, _, ok := tr.Min()
	if !ok || string(k) != "b" {
		t.Errorf("Min = %q,%v", k, ok)
	}
	k, _, ok = tr.Max()
	if !ok || string(k) != "zz" {
		t.Errorf("Max = %q,%v", k, ok)
	}
}

func TestScanFullTreeSorted(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	keys := map[string]bool{}
	for i := 0; i < 2000; i++ {
		k := make([]byte, 1+rng.Intn(12))
		rng.Read(k)
		keys[string(k)] = true
		tr.Insert(k, []byte("v"))
	}
	var got []string
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, tree has %d", len(got), len(keys))
	}
	if !sort.StringsAreSorted(got) {
		t.Error("scan output not sorted")
	}
}

func TestScanRange(t *testing.T) {
	var tr Tree
	for i := 0; i < 1000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i*3))
		tr.Insert(k[:], []byte{1})
	}
	var lo, hi [8]byte
	binary.BigEndian.PutUint64(lo[:], 300)
	binary.BigEndian.PutUint64(hi[:], 900)
	count := 0
	tr.Scan(lo[:], hi[:], func(k, v []byte) bool {
		x := binary.BigEndian.Uint64(k)
		if x < 300 || x > 900 {
			t.Fatalf("scan leaked out-of-range key %d", x)
		}
		count++
		return true
	})
	want := 0
	for i := 0; i < 1000; i++ {
		if v := i * 3; v >= 300 && v <= 900 {
			want++
		}
	}
	if count != want {
		t.Errorf("scan count = %d, want %d", count, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("key%03d", i)), []byte{1})
	}
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d keys, want 10", count)
	}
}

func TestScanRangeWithPrefixKeys(t *testing.T) {
	var tr Tree
	keys := []string{"a", "ab", "abc", "ac", "b", "ba"}
	for _, k := range keys {
		tr.Insert([]byte(k), []byte(k))
	}
	var got []string
	tr.Scan([]byte("ab"), []byte("b"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"ab", "abc", "ac", "b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("scan = %v, want %v", got, want)
	}
}

// oracle-based randomized comparison

type oracle map[string]string

func (o oracle) scan(lo, hi string) []string {
	var ks []string
	for k := range o {
		if (lo == "" || k >= lo) && (hi == "" || k <= hi) {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

func TestRandomOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Tree
	o := oracle{}
	randKey := func() []byte {
		// Cluster keys to force deep shared prefixes and EOL cases.
		n := 1 + rng.Intn(10)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	for step := 0; step < 20000; step++ {
		k := randKey()
		switch rng.Intn(4) {
		case 0, 1: // insert
			v := fmt.Sprintf("v%d", step)
			tr.Insert(k, []byte(v))
			o[string(k)] = v
		case 2: // delete
			want := false
			if _, ok := o[string(k)]; ok {
				want = true
				delete(o, string(k))
			}
			if got := tr.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%q) = %v, oracle %v", step, k, got, want)
			}
		case 3: // get
			got, ok := tr.Get(k)
			wantV, wantOK := o[string(k)]
			if ok != wantOK || (ok && string(got) != wantV) {
				t.Fatalf("step %d: Get(%q) = %q,%v, oracle %q,%v", step, k, got, ok, wantV, wantOK)
			}
		}
	}
	if tr.Len() != len(o) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(o))
	}
	// Full-scan equivalence.
	var got []string
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if string(v) != o[string(k)] {
			t.Fatalf("scan value mismatch for %q", k)
		}
		return true
	})
	want := o.scan("", "")
	if len(got) != len(want) {
		t.Fatalf("scan count %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, oracle %q", i, got[i], want[i])
		}
	}
	// Random range scans.
	for i := 0; i < 200; i++ {
		lo, hi := randKey(), randKey()
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var ks []string
		tr.Scan(lo, hi, func(k, v []byte) bool {
			ks = append(ks, string(k))
			return true
		})
		wantKs := o.scan(string(lo), string(hi))
		if fmt.Sprint(ks) != fmt.Sprint(wantKs) {
			t.Fatalf("range scan [%q,%q] = %v, oracle %v", lo, hi, ks, wantKs)
		}
	}
}

func TestInsertGetProperty(t *testing.T) {
	var tr Tree
	seen := map[string][]byte{}
	f := func(key, value []byte) bool {
		if len(key) > wire.MaxDepth {
			return true
		}
		tr.Insert(key, value)
		seen[string(key)] = value
		for k, v := range seen {
			got, ok := tr.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCounts(t *testing.T) {
	var tr Tree
	tr.Insert([]byte("aa"), []byte{1})
	tr.Insert([]byte("ab"), []byte{1})
	nc := tr.Counts()
	if nc.ByType[wire.Node4] != 1 || nc.Leaves != 2 {
		t.Errorf("counts = %+v", nc)
	}
}

func TestLongCommonPrefixSplit(t *testing.T) {
	var tr Tree
	long := bytes.Repeat([]byte("x"), 100)
	k1 := append(append([]byte{}, long...), 'a')
	k2 := append(append([]byte{}, long...), 'b')
	k3 := append(append([]byte{}, long[:50]...), 'q')
	tr.Insert(k1, []byte("1"))
	tr.Insert(k2, []byte("2"))
	tr.Insert(k3, []byte("3")) // splits the 100-byte compressed path
	for i, k := range [][]byte{k1, k2, k3} {
		v, ok := tr.Get(k)
		if !ok || string(v) != fmt.Sprint(i+1) {
			t.Errorf("key %d lost after path split", i)
		}
	}
}
