// Package art is a local (single-address-space) adaptive radix tree
// [Leis et al., ICDE'13], the index structure Sphinx distributes across
// memory nodes. It supports variable-length byte-string keys, including
// keys that are proper prefixes of other keys, via per-node EOL values —
// the same convention the remote layout uses (internal/wire).
//
// Within this repository it serves two roles: the reference
// implementation of "the original ART" whose DM port is the paper's
// baseline, and the oracle that the remote index implementations are
// cross-validated against (notably range-scan semantics).
//
// The tree is not safe for concurrent use.
package art

import (
	"bytes"

	"sphinx/internal/wire"
)

// Tree is an adaptive radix tree mapping byte-string keys to byte-string
// values. The zero value is an empty tree ready for use.
type Tree struct {
	root ref
	size int
}

// ref points at either a leaf or an inner node (exactly one is non-nil;
// both nil means empty).
type ref struct {
	leaf  *leafKV
	inner *innerNode
}

func (r ref) empty() bool { return r.leaf == nil && r.inner == nil }

type leafKV struct {
	key   []byte
	value []byte
}

// innerNode is one adaptive node. Children are stored per the node's
// capacity class:
//
//	Node4, Node16:  keys[i] ↔ children[i], kept sorted by key byte
//	Node48:         index[b] = position+1 into children (0 = absent)
//	Node256:        children[b] directly
type innerNode struct {
	typ      wire.NodeType
	partial  []byte // path-compressed bytes between parent edge and this node
	eol      *leafKV
	n        int // number of present children
	keys     []byte
	index    []uint8
	children []ref
}

func newInner(typ wire.NodeType, partial []byte) *innerNode {
	n := &innerNode{typ: typ, partial: append([]byte(nil), partial...)}
	switch typ {
	case wire.Node4, wire.Node16:
		n.keys = make([]byte, 0, typ.Capacity())
		n.children = make([]ref, 0, typ.Capacity())
	case wire.Node48:
		n.index = make([]uint8, 256)
		n.children = make([]ref, 0, 48)
	case wire.Node256:
		n.children = make([]ref, 256)
	}
	return n
}

// child returns the child reference for byte b, or an empty ref.
func (n *innerNode) child(b byte) ref {
	switch n.typ {
	case wire.Node4, wire.Node16:
		for i, k := range n.keys {
			if k == b {
				return n.children[i]
			}
		}
	case wire.Node48:
		if p := n.index[b]; p != 0 {
			return n.children[p-1]
		}
	case wire.Node256:
		return n.children[b]
	}
	return ref{}
}

// setChild replaces an existing child for byte b.
func (n *innerNode) setChild(b byte, r ref) {
	switch n.typ {
	case wire.Node4, wire.Node16:
		for i, k := range n.keys {
			if k == b {
				n.children[i] = r
				return
			}
		}
	case wire.Node48:
		n.children[n.index[b]-1] = r
		return
	case wire.Node256:
		n.children[b] = r
		return
	}
	panic("art: setChild on absent byte")
}

// full reports whether the node cannot accept another child.
func (n *innerNode) full() bool { return n.n >= n.typ.Capacity() }

// addChild inserts a new child; the caller must have grown the node if it
// was full.
func (n *innerNode) addChild(b byte, r ref) {
	switch n.typ {
	case wire.Node4, wire.Node16:
		i := 0
		for i < len(n.keys) && n.keys[i] < b {
			i++
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = b
		n.children = append(n.children, ref{})
		copy(n.children[i+1:], n.children[i:])
		n.children[i] = r
	case wire.Node48:
		n.children = append(n.children, r)
		n.index[b] = uint8(len(n.children))
	case wire.Node256:
		n.children[b] = r
	}
	n.n++
}

// removeChild deletes the child for byte b (which must be present).
func (n *innerNode) removeChild(b byte) {
	switch n.typ {
	case wire.Node4, wire.Node16:
		for i, k := range n.keys {
			if k == b {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.children = append(n.children[:i], n.children[i+1:]...)
				n.n--
				return
			}
		}
		panic("art: removeChild on absent byte")
	case wire.Node48:
		p := n.index[b]
		if p == 0 {
			panic("art: removeChild on absent byte")
		}
		last := uint8(len(n.children))
		n.children[p-1] = n.children[last-1]
		n.children = n.children[:last-1]
		n.index[b] = 0
		if p != last {
			// Fix the index entry that pointed at the relocated child.
			for bb := 0; bb < 256; bb++ {
				if n.index[bb] == last {
					n.index[bb] = p
					break
				}
			}
		}
		n.n--
	case wire.Node256:
		n.children[b] = ref{}
		n.n--
	}
}

// grow returns a copy of n one capacity class larger.
func (n *innerNode) grow() *innerNode {
	g := newInner(n.typ.Grow(), n.partial)
	g.eol = n.eol
	n.forEach(func(b byte, r ref) bool {
		g.addChild(b, r)
		return true
	})
	return g
}

// shrink returns a copy of n one capacity class smaller, or n itself if it
// is already a Node4.
func (n *innerNode) shrink() *innerNode {
	if n.typ == wire.Node4 {
		return n
	}
	g := newInner(n.typ-1, n.partial)
	g.eol = n.eol
	n.forEach(func(b byte, r ref) bool {
		g.addChild(b, r)
		return true
	})
	return g
}

// forEach visits present children in ascending key-byte order.
func (n *innerNode) forEach(fn func(b byte, r ref) bool) bool {
	switch n.typ {
	case wire.Node4, wire.Node16:
		for i, k := range n.keys {
			if !fn(k, n.children[i]) {
				return false
			}
		}
	case wire.Node48:
		for b := 0; b < 256; b++ {
			if p := n.index[b]; p != 0 {
				if !fn(byte(b), n.children[p-1]) {
					return false
				}
			}
		}
	case wire.Node256:
		for b := 0; b < 256; b++ {
			if r := n.children[b]; !r.empty() {
				if !fn(byte(b), r) {
					return false
				}
			}
		}
	}
	return true
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	r := t.root
	depth := 0
	for {
		switch {
		case r.empty():
			return nil, false
		case r.leaf != nil:
			if bytes.Equal(r.leaf.key, key) {
				return r.leaf.value, true
			}
			return nil, false
		}
		n := r.inner
		if commonPrefixLen(key[depth:], n.partial) < len(n.partial) {
			return nil, false
		}
		depth += len(n.partial)
		if depth == len(key) {
			if n.eol != nil {
				return n.eol.value, true
			}
			return nil, false
		}
		r = n.child(key[depth])
		depth++
	}
}

// Insert stores value for key, replacing any existing value. It reports
// whether a previous value was replaced. The key and value are copied.
func (t *Tree) Insert(key, value []byte) bool {
	l := &leafKV{key: append([]byte(nil), key...), value: append([]byte(nil), value...)}
	replaced := t.insert(&t.root, l, 0)
	if !replaced {
		t.size++
	}
	return replaced
}

func (t *Tree) insert(r *ref, l *leafKV, depth int) bool {
	if r.empty() {
		*r = ref{leaf: l}
		return false
	}
	if r.leaf != nil {
		old := r.leaf
		if bytes.Equal(old.key, l.key) {
			old.value = l.value
			return true
		}
		// Split the edge: a new Node4 whose partial is the extra shared
		// prefix beyond depth.
		m := commonPrefixLen(old.key[depth:], l.key[depth:])
		n := newInner(wire.Node4, l.key[depth:depth+m])
		at := depth + m
		place := func(lf *leafKV) {
			if len(lf.key) == at {
				n.eol = lf
			} else {
				n.addChild(lf.key[at], ref{leaf: lf})
			}
		}
		place(old)
		place(l)
		*r = ref{inner: n}
		return false
	}

	n := r.inner
	m := commonPrefixLen(l.key[depth:], n.partial)
	if m < len(n.partial) {
		// Diverges inside the compressed path: insert a new parent above
		// n. n keeps its identity; only its partial shrinks (the property
		// the paper's cache-coherence argument relies on).
		parent := newInner(wire.Node4, n.partial[:m])
		edge := n.partial[m]
		n.partial = append([]byte(nil), n.partial[m+1:]...)
		parent.addChild(edge, ref{inner: n})
		at := depth + m
		if len(l.key) == at {
			parent.eol = l
		} else {
			parent.addChild(l.key[at], ref{leaf: l})
		}
		*r = ref{inner: parent}
		return false
	}
	depth += len(n.partial)
	if len(l.key) == depth {
		replaced := n.eol != nil
		n.eol = l
		return replaced
	}
	b := l.key[depth]
	if c := n.child(b); !c.empty() {
		child := c
		replaced := t.insert(&child, l, depth+1)
		n.setChild(b, child)
		return replaced
	}
	if n.full() {
		g := n.grow()
		g.addChild(b, ref{leaf: l})
		*r = ref{inner: g}
		return false
	}
	n.addChild(b, ref{leaf: l})
	return false
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree) Delete(key []byte) bool {
	deleted := t.delete(&t.root, key, 0)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree) delete(r *ref, key []byte, depth int) bool {
	switch {
	case r.empty():
		return false
	case r.leaf != nil:
		if bytes.Equal(r.leaf.key, key) {
			*r = ref{}
			return true
		}
		return false
	}
	n := r.inner
	if commonPrefixLen(key[depth:], n.partial) < len(n.partial) {
		return false
	}
	depth += len(n.partial)
	if depth == len(key) {
		if n.eol == nil {
			return false
		}
		n.eol = nil
		t.compact(r)
		return true
	}
	b := key[depth]
	c := n.child(b)
	if c.empty() {
		return false
	}
	if !t.delete(&c, key, depth+1) {
		return false
	}
	if c.empty() {
		n.removeChild(b)
		t.compact(r)
	} else {
		n.setChild(b, c)
	}
	return true
}

// compact applies the original ART's space optimizations after a removal:
// collapse nodes left with a single child (re-extending the compressed
// path), replace child-less nodes by their EOL leaf, and shrink
// underfull nodes to a smaller capacity class.
func (t *Tree) compact(r *ref) {
	n := r.inner
	switch {
	case n.n == 0 && n.eol != nil:
		*r = ref{leaf: n.eol}
	case n.n == 0 && n.eol == nil:
		*r = ref{}
	case n.n == 1 && n.eol == nil:
		var edge byte
		var only ref
		n.forEach(func(b byte, c ref) bool { edge, only = b, c; return false })
		if only.inner != nil {
			merged := append(append(append([]byte(nil), n.partial...), edge), only.inner.partial...)
			only.inner.partial = merged
			*r = only
		} else {
			*r = only
		}
	default:
		if n.typ > wire.Node4 && n.n <= (n.typ-1).Capacity()/2 {
			*r = ref{inner: n.shrink()}
		}
	}
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() ([]byte, []byte, bool) {
	r := t.root
	for {
		switch {
		case r.empty():
			return nil, nil, false
		case r.leaf != nil:
			return r.leaf.key, r.leaf.value, true
		}
		n := r.inner
		if n.eol != nil {
			return n.eol.key, n.eol.value, true
		}
		var first ref
		n.forEach(func(b byte, c ref) bool { first = c; return false })
		r = first
	}
}

// Max returns the largest key in the tree.
func (t *Tree) Max() ([]byte, []byte, bool) {
	r := t.root
	for {
		switch {
		case r.empty():
			return nil, nil, false
		case r.leaf != nil:
			return r.leaf.key, r.leaf.value, true
		}
		n := r.inner
		var last ref
		found := false
		n.forEach(func(b byte, c ref) bool { last, found = c, true; return true })
		if !found {
			return n.eol.key, n.eol.value, n.eol != nil
		}
		r = last
	}
}

// Scan visits all keys in [lo, hi] (inclusive; nil bounds are open) in
// ascending order, stopping early if fn returns false. Subtrees entirely
// outside the range are pruned, so a scan costs O(depth + results).
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) {
	t.scan(t.root, nil, lo, hi, fn)
}

// scan visits ref r whose subtree keys all start with prefix cur.
// lo and hi are the still-active bounds: a nil bound is already satisfied
// for every key below this point. The return value is false to stop the
// whole scan (either fn said stop, or the in-order walk passed hi).
func (t *Tree) scan(r ref, cur, lo, hi []byte, fn func(key, value []byte) bool) bool {
	switch {
	case r.empty():
		return true
	case r.leaf != nil:
		k := r.leaf.key
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return true
		}
		if hi != nil && bytes.Compare(k, hi) > 0 {
			return false
		}
		return fn(k, r.leaf.value)
	}
	n := r.inner
	cur = append(cur, n.partial...)
	if lo != nil {
		m := len(cur)
		if len(lo) < m {
			m = len(lo)
		}
		switch bytes.Compare(cur[:m], lo[:m]) {
		case -1:
			return true // entire subtree < lo
		case 1:
			lo = nil // entire subtree > lo
		default:
			if len(cur) >= len(lo) {
				lo = nil // lo is a prefix of cur: every key here ≥ lo
			}
		}
	}
	if hi != nil {
		m := len(cur)
		if len(hi) < m {
			m = len(hi)
		}
		switch bytes.Compare(cur[:m], hi[:m]) {
		case 1:
			return false // entire subtree > hi: in-order walk is done
		case -1:
			hi = nil // entire subtree < hi
		default:
			if len(cur) > len(hi) {
				return false // cur strictly extends hi: every key > hi
			}
		}
	}
	// The EOL leaf's key is exactly cur, which after the pruning above is
	// ≥ lo iff lo was cleared, and always ≤ hi.
	if n.eol != nil && lo == nil {
		if !fn(n.eol.key, n.eol.value) {
			return false
		}
	}
	at := len(cur)
	return n.forEach(func(b byte, c ref) bool {
		if lo != nil && len(lo) > at && b < lo[at] {
			return true // child subtree entirely < lo
		}
		if hi != nil && len(hi) > at && b > hi[at] {
			return false // child subtree entirely > hi
		}
		childLo, childHi := lo, hi
		if lo != nil && len(lo) > at && b > lo[at] {
			childLo = nil
		}
		if hi != nil && len(hi) > at && b < hi[at] {
			childHi = nil
		}
		return t.scan(c, append(cur, b), childLo, childHi, fn)
	})
}

// NodeCounts tallies inner nodes by capacity class, the quantity behind
// the paper's memory-usage comparison (Fig. 6).
type NodeCounts struct {
	ByType [4]int
	Leaves int
}

// Counts walks the tree and returns its node census.
func (t *Tree) Counts() NodeCounts {
	var nc NodeCounts
	var walk func(r ref)
	walk = func(r ref) {
		switch {
		case r.empty():
		case r.leaf != nil:
			nc.Leaves++
		default:
			nc.ByType[r.inner.typ]++
			if r.inner.eol != nil {
				nc.Leaves++
			}
			r.inner.forEach(func(_ byte, c ref) bool { walk(c); return true })
		}
	}
	walk(t.root)
	return nc
}
