package racehash

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// TestConcurrentReplaceDuringSplits mixes entry replacement (the type-
// switch path) with inserts that force segment splits, from multiple
// clients. Every key must resolve to exactly its latest entry.
func TestConcurrentReplaceDuringSplits(t *testing.T) {
	env := newEnv(t, 1)
	const workers = 5
	const perWorker = 250
	type slotState struct {
		mu   sync.Mutex
		last map[int]wire.HashEntry
	}
	states := make([]*slotState, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		states[w] = &slotState{last: make(map[int]wire.HashEntry)}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := env.f.NewClient()
			alloc := mem.NewAllocator(c, 0)
			v := NewView(env.table, c)
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				h, fp := hashFP(id)
				e := env.makeEntry(t, c, alloc, h, fp)
				if err := v.Insert(h, e, alloc); err != nil {
					errs <- fmt.Errorf("w%d insert %d: %w", w, i, err)
					return
				}
				states[w].mu.Lock()
				states[w].last[id] = e
				states[w].mu.Unlock()
				// Replace an earlier own entry every few inserts (the
				// node-type-switch pattern: same prefix, new address).
				if i%5 == 4 {
					victim := w*perWorker + i - 3
					states[w].mu.Lock()
					old := states[w].last[victim]
					states[w].mu.Unlock()
					vh, vfp := hashFP(victim)
					newE := env.makeEntry(t, c, alloc, vh, vfp)
					if err := v.Replace(vh, old, newE); err != nil {
						errs <- fmt.Errorf("w%d replace %d: %w", w, victim, err)
						return
					}
					states[w].mu.Lock()
					states[w].last[victim] = newE
					states[w].mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Verify: each id resolves to its final entry.
	c := env.f.NewClient()
	v := NewView(env.table, c)
	for w := 0; w < workers; w++ {
		for id, want := range states[w].last {
			h, fp := hashFP(id)
			got, err := v.Lookup(h, fp)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, cand := range got {
				if cand.Entry == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("id %d: latest entry missing (candidates %d)", id, len(got))
			}
		}
	}
	if v2 := NewView(env.table, env.f.NewClient()); v2.Stats().Splits != 0 {
		t.Error("fresh view reports splits")
	}
}

// TestConcurrentRemoveDuringSplits interleaves removals with inserts that
// split segments; removed entries must stay gone.
func TestConcurrentRemoveDuringSplits(t *testing.T) {
	env := newEnv(t, 1)
	const workers = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := env.f.NewClient()
			alloc := mem.NewAllocator(c, 0)
			v := NewView(env.table, c)
			var prev wire.HashEntry
			for i := 0; i < 300; i++ {
				id := w*1000 + i
				h, fp := hashFP(id)
				e := env.makeEntry(t, c, alloc, h, fp)
				if err := v.Insert(h, e, alloc); err != nil {
					errs <- fmt.Errorf("w%d insert: %w", w, err)
					return
				}
				if i%2 == 1 {
					// Remove exactly the previous entry (never collided
					// candidates belonging to other keys — as Sphinx's
					// delete path does under node locks).
					ph, _ := hashFP(id - 1)
					if err := v.Remove(ph, prev); err != nil {
						errs <- fmt.Errorf("w%d remove: %w", w, err)
						return
					}
				}
				prev = e
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Odd-indexed ids survive; even-indexed were removed.
	c := env.f.NewClient()
	v := NewView(env.table, c)
	for w := 0; w < workers; w++ {
		for i := 0; i < 300; i++ {
			id := w*1000 + i
			h, fp := hashFP(id)
			got, err := v.Lookup(h, fp)
			if err != nil {
				t.Fatal(err)
			}
			// Fingerprint collisions can surface other ids' candidates;
			// verify via the node's placement hash.
			live := 0
			for _, cand := range got {
				hdr, err := c.ReadUint64(cand.Entry.Addr)
				if err != nil {
					t.Fatal(err)
				}
				if wire.DecodeNodeHeader(hdr).PrefixHash == h {
					live++
				}
			}
			even := i%2 == 0 && i+1 < 300 // removed by the i+1 iteration
			if even && live != 0 {
				t.Fatalf("id %d (removed) still has %d live candidates", id, live)
			}
			if !even && live == 0 {
				t.Fatalf("id %d (kept) lost", id)
			}
		}
	}
}

// TestNoCacheViewBasics exercises the directory-cache ablation view.
func TestNoCacheViewBasics(t *testing.T) {
	env := newEnv(t, 1)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewViewNoCache(env.table, c)
	var entries []wire.HashEntry
	for i := 0; i < 1200; i++ { // enough to split a depth-0 table
		h, fp := hashFP(i)
		e := env.makeEntry(t, c, alloc, h, fp)
		if err := v.Insert(h, e, alloc); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		entries = append(entries, e)
	}
	for i := 0; i < 1200; i += 13 {
		h, fp := hashFP(i)
		got, err := v.Lookup(h, fp)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, cand := range got {
			if cand.Entry == entries[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("uncached view lost entry %d", i)
		}
	}
	if v.DirCacheBytes() != 0 {
		// The uncached view may have populated transient fields, but it
		// should never claim cache memory it doesn't keep coherent.
		t.Logf("note: uncached view reports %d dir bytes (transient)", v.DirCacheBytes())
	}
}

// TestReplaceWaitsForInFlightInsert reproduces the race found under the
// YCSB email load: a node becomes switchable through the tree before its
// creator's table insert lands, so Replace must wait for the old entry
// rather than fail.
func TestReplaceWaitsForInFlightInsert(t *testing.T) {
	env := newEnv(t, 100)
	c1 := env.f.NewClient()
	alloc1 := mem.NewAllocator(c1, 0)
	v1 := NewView(env.table, c1)
	h, fp := hashFP(1)
	old := env.makeEntry(t, c1, alloc1, h, fp)
	newE := env.makeEntry(t, c1, alloc1, h, fp)
	newE.Type = wire.Node16

	done := make(chan error, 1)
	go func() {
		// The "switching" client replaces old→new; old is not yet there.
		c2 := env.f.NewClient()
		v2 := NewView(env.table, c2)
		done <- v2.Replace(h, old, newE)
	}()
	// Let the replacer spin on the missing entry a little, then publish.
	for i := 0; i < 50; i++ {
		runtime.Gosched()
	}
	if err := v1.Insert(h, old, alloc1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("replace did not wait for the in-flight insert: %v", err)
	}
	got, err := v1.Lookup(h, fp)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cand := range got {
		if cand.Entry == newE {
			found = true
		}
		if cand.Entry == old {
			t.Error("old entry survived the replace")
		}
	}
	if !found {
		t.Error("new entry missing after waited replace")
	}
}
