package racehash

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// ErrRetryExhausted is returned when a lookup or mutation cannot reach a
// stable view of the table after many refresh attempts. It indicates a bug
// (or a pathological hash collision) rather than a transient condition.
var ErrRetryExhausted = errors.New("racehash: retries exhausted")

const maxAttempts = 64

// Stats counts a view's table interactions. The view increments the
// fields atomically and Stats() loads them atomically, so a live metrics
// scrape can read a view its worker goroutine is driving.
type Stats struct {
	Lookups         uint64
	Inserts         uint64 // Insert calls (idempotent re-inserts included)
	Replaces        uint64 // Replace calls
	Removes         uint64 // Remove calls
	Refreshes       uint64
	RetryReads      uint64 // bucket-pair reads retried on a stale directory
	Splits          uint64
	DirDoubles      uint64
	SplitWaits      uint64
	BucketOverflows uint64 // inserts that found both candidate buckets full
	Reinserted      uint64 // leftover entries re-inserted after a split
	StaleChecks     uint64 // post-CAS verifications forced by a concurrent split
}

// Add returns s + t, field-wise; used to aggregate the per-memory-node
// views of one client.
func (s Stats) Add(t Stats) Stats {
	s.Lookups += t.Lookups
	s.Inserts += t.Inserts
	s.Replaces += t.Replaces
	s.Removes += t.Removes
	s.Refreshes += t.Refreshes
	s.RetryReads += t.RetryReads
	s.Splits += t.Splits
	s.DirDoubles += t.DirDoubles
	s.SplitWaits += t.SplitWaits
	s.BucketOverflows += t.BucketOverflows
	s.Reinserted += t.Reinserted
	s.StaleChecks += t.StaleChecks
	return s
}

// View is one client's handle on one memory node's table. It holds the
// client-side directory cache (paper §IV: "each CN maintains a local
// directory cache"). A view is single-threaded, like the client it wraps.
type View struct {
	t       Table
	c       *fabric.Client
	depth   uint8
	dirAddr mem.Addr
	dir     []uint64
	noCache bool
	stats   Stats
	// scratch backs LookupAppend's bucket read, sparing the warm read path
	// one PreparedRead allocation per lookup. Only the lookup path may use
	// it: mutations hold their reads across nested reads (waitSplit).
	scratch PreparedRead
}

// NewView creates a view; the directory cache is fetched lazily on first
// use.
func NewView(t Table, c *fabric.Client) *View { return &View{t: t, c: c} }

// NewViewNoCache creates a view without a client-side directory cache:
// every bucket-pair resolution reads the meta word and the directory entry
// remotely (two extra dependent round trips). This is the ablation of the
// paper's §IV directory cache ("each CN maintains a local directory
// cache"); splits still use a transient full fetch.
func NewViewNoCache(t Table, c *fabric.Client) *View {
	return &View{t: t, c: c, noCache: true}
}

// Table returns the table this view operates on.
func (v *View) Table() Table { return v.t }

// Stats returns a snapshot of the view's counters, loaded atomically.
func (v *View) Stats() Stats {
	var s Stats
	s.Lookups = atomic.LoadUint64(&v.stats.Lookups)
	s.Inserts = atomic.LoadUint64(&v.stats.Inserts)
	s.Replaces = atomic.LoadUint64(&v.stats.Replaces)
	s.Removes = atomic.LoadUint64(&v.stats.Removes)
	s.Refreshes = atomic.LoadUint64(&v.stats.Refreshes)
	s.RetryReads = atomic.LoadUint64(&v.stats.RetryReads)
	s.Splits = atomic.LoadUint64(&v.stats.Splits)
	s.DirDoubles = atomic.LoadUint64(&v.stats.DirDoubles)
	s.SplitWaits = atomic.LoadUint64(&v.stats.SplitWaits)
	s.BucketOverflows = atomic.LoadUint64(&v.stats.BucketOverflows)
	s.Reinserted = atomic.LoadUint64(&v.stats.Reinserted)
	s.StaleChecks = atomic.LoadUint64(&v.stats.StaleChecks)
	return s
}

// DirCacheBytes returns the size of the client-side directory cache.
func (v *View) DirCacheBytes() uint64 { return uint64(len(v.dir)) * 8 }

// refresh (re)loads the meta word and the directory: two dependent round
// trips, paid only on first use and after a segment split invalidates the
// cache.
func (v *View) refresh() error {
	w, err := v.c.ReadUint64(v.t.Meta.Add(metaWordOff))
	if err != nil {
		return err
	}
	depth, dirAddr := unpackMeta(w)
	buf := make([]byte, (uint64(1)<<depth)*8)
	if err := v.c.Read(dirAddr, buf); err != nil {
		return err
	}
	v.depth = depth
	v.dirAddr = dirAddr
	v.dir = make([]uint64, 1<<depth)
	for i := range v.dir {
		v.dir[i] = getUint64(buf[i*8:])
	}
	atomic.AddUint64(&v.stats.Refreshes, 1)
	return nil
}

func (v *View) ensureDir() error {
	if v.dir == nil {
		return v.refresh()
	}
	return nil
}

// segFor resolves a placement hash through the cached directory.
func (v *View) segFor(h uint64) (seg mem.Addr, localDepth uint8) {
	w := v.dir[h&depthMask(v.depth)]
	localDepth, seg = unpackDirEntry(w)
	return seg, localDepth
}

// Candidate is a matching hash entry plus the address of the slot holding
// it, so callers can later CAS that exact slot (type switches, deletes).
type Candidate struct {
	Entry wire.HashEntry
	Slot  mem.Addr
}

// PreparedRead is a bucket-pair read that a caller can merge into a larger
// doorbell batch (the paper's parallel multi-prefix read, §III-A). Use
// Prepare → collect Ops from several PreparedReads → Client.Batch →
// Candidates on each.
type PreparedRead struct {
	view  *View
	h     uint64
	addrs [2]mem.Addr
	bufs  [2][BucketSize]byte
}

// Prepare resolves the candidate buckets for h through the directory cache
// and returns the pending read. It costs no network round trips (beyond a
// first-use directory fetch) — unless the view runs without a directory
// cache, in which case the resolution itself is two dependent round trips.
func (v *View) Prepare(h uint64) (*PreparedRead, error) {
	p := new(PreparedRead)
	if err := v.prepareInto(p, h); err != nil {
		return nil, err
	}
	return p, nil
}

// prepareInto is Prepare into caller-provided storage.
func (v *View) prepareInto(p *PreparedRead, h uint64) error {
	if v.noCache {
		return v.prepareUncached(p, h)
	}
	if err := v.ensureDir(); err != nil {
		return err
	}
	seg, _ := v.segFor(h)
	b1, b2 := bucketPair(h)
	p.view, p.h = v, h
	p.addrs[0] = seg.Add(uint64(b1) * BucketSize)
	p.addrs[1] = seg.Add(uint64(b2) * BucketSize)
	return nil
}

// Ops returns the two READ verbs of the prepared bucket-pair fetch.
func (p *PreparedRead) Ops() []fabric.Op { return p.AppendOps(nil) }

// AppendOps appends the two READ verbs of the prepared bucket-pair fetch
// to ops, letting callers assemble multi-prefix batches without per-read
// slice allocations.
func (p *PreparedRead) AppendOps(ops []fabric.Op) []fabric.Op {
	return append(ops,
		fabric.Op{Kind: fabric.Read, Addr: p.addrs[0], Data: p.bufs[0][:]},
		fabric.Op{Kind: fabric.Read, Addr: p.addrs[1], Data: p.bufs[1][:]},
	)
}

// Valid reports whether the fetched buckets belong to the hash — i.e. the
// client's directory cache was fresh. On false the caller must Refresh the
// view and retry the prepared read.
func (p *PreparedRead) Valid() bool {
	return headerMatches(getUint64(p.bufs[0][:]), p.h) &&
		headerMatches(getUint64(p.bufs[1][:]), p.h)
}

// Candidates scans the fetched buckets for entries matching fp.
func (p *PreparedRead) Candidates(fp uint16) []Candidate { return p.AppendCandidates(nil, fp) }

// AppendCandidates appends the entries matching fp to out. Candidates are
// self-contained values: they stay valid after the PreparedRead is reused.
func (p *PreparedRead) AppendCandidates(out []Candidate, fp uint16) []Candidate {
	for b := 0; b < 2; b++ {
		for s := 0; s < EntriesPerBucket; s++ {
			w := getUint64(p.bufs[b][8*(1+s):])
			e := wire.DecodeHashEntry(w)
			if e.Valid && e.FP == fp {
				out = append(out, Candidate{Entry: e, Slot: p.addrs[b].Add(uint64(8 * (1 + s)))})
			}
		}
	}
	return out
}

// locked reports whether either fetched bucket header carries the split
// lock.
func (p *PreparedRead) locked() bool {
	_, _, l1 := unpackBucketHeader(getUint64(p.bufs[0][:]))
	_, _, l2 := unpackBucketHeader(getUint64(p.bufs[1][:]))
	return l1 || l2
}

// header returns the fetched header word of bucket b (0 or 1).
func (p *PreparedRead) header(b int) uint64 { return getUint64(p.bufs[b][:]) }

// emptySlot returns the address of the first empty entry slot and the
// header word of its bucket as observed by this read, or ok=false if both
// buckets are full.
func (p *PreparedRead) emptySlot() (slot mem.Addr, hdr uint64, ok bool) {
	for b := 0; b < 2; b++ {
		for s := 0; s < EntriesPerBucket; s++ {
			if getUint64(p.bufs[b][8*(1+s):]) == 0 {
				return p.addrs[b].Add(uint64(8 * (1 + s))), p.header(b), true
			}
		}
	}
	return 0, 0, false
}

// find returns the slot currently holding the exact entry word and its
// bucket's observed header word, if present.
func (p *PreparedRead) find(word uint64) (slot mem.Addr, hdr uint64, ok bool) {
	for b := 0; b < 2; b++ {
		for s := 0; s < EntriesPerBucket; s++ {
			if getUint64(p.bufs[b][8*(1+s):]) == word {
				return p.addrs[b].Add(uint64(8 * (1 + s))), p.header(b), true
			}
		}
	}
	return 0, 0, false
}

// prepareUncached resolves h by reading the meta word and the directory
// entry remotely.
func (v *View) prepareUncached(p *PreparedRead, h uint64) error {
	w, err := v.c.ReadUint64(v.t.Meta.Add(metaWordOff))
	if err != nil {
		return err
	}
	depth, dirAddr := unpackMeta(w)
	dw, err := v.c.ReadUint64(dirAddr.Add((h & depthMask(depth)) * 8))
	if err != nil {
		return err
	}
	_, seg := unpackDirEntry(dw)
	// Keep the transient state consistent for split paths that consult
	// the cached fields.
	v.depth = depth
	v.dirAddr = dirAddr
	b1, b2 := bucketPair(h)
	p.view, p.h = v, h
	p.addrs[0] = seg.Add(uint64(b1) * BucketSize)
	p.addrs[1] = seg.Add(uint64(b2) * BucketSize)
	return nil
}

// Refresh discards and refetches the directory cache.
func (v *View) Refresh() error { return v.refresh() }

// read performs a validated bucket-pair read, refreshing the directory
// cache as needed. One round trip in the common case.
func (v *View) read(h uint64) (*PreparedRead, error) {
	p := new(PreparedRead)
	if err := v.readInto(p, h); err != nil {
		return nil, err
	}
	return p, nil
}

// readInto is read into caller-provided storage.
func (v *View) readInto(p *PreparedRead, h uint64) error {
	var opsArr [2]fabric.Op
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := v.prepareInto(p, h); err != nil {
			return err
		}
		if err := v.c.Batch(p.AppendOps(opsArr[:0])); err != nil {
			return err
		}
		if p.Valid() {
			return nil
		}
		// Stale directory cache: the retried bucket read is an extra
		// round trip charged to this stage.
		atomic.AddUint64(&v.stats.RetryReads, 1)
		if err := v.refresh(); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w: bucket read for h=%#x", ErrRetryExhausted, h)
}

// Lookup returns all entries whose fingerprint matches fp in the candidate
// buckets of h. One round trip with a warm directory cache.
func (v *View) Lookup(h uint64, fp uint16) ([]Candidate, error) {
	return v.LookupAppend(nil, h, fp)
}

// LookupAppend is Lookup with caller-provided result storage; the bucket
// read itself reuses view-held scratch, so a warm hit in already-grown dst
// allocates nothing.
func (v *View) LookupAppend(dst []Candidate, h uint64, fp uint16) ([]Candidate, error) {
	atomic.AddUint64(&v.stats.Lookups, 1)
	if err := v.readInto(&v.scratch, h); err != nil {
		return dst, err
	}
	return v.scratch.AppendCandidates(dst, fp), nil
}

// casChecked CASes an entry slot and, in the same doorbell batch, re-reads
// the slot's bucket header. Only a segment split ever modifies a bucket
// header, so if the header read back differs in any way from the one
// observed when the slot was chosen (lock bit set, depth bumped, suffix
// changed), a split overlapped the CAS and may have missed it; the caller
// must wait for the split and re-verify. This closes the window between a
// split's segment snapshot and its old-segment rewrite.
func (v *View) casChecked(slot mem.Addr, old, new, wantHdr uint64) (won, ambiguous bool, err error) {
	bucket := mem.NewAddr(slot.Node(), slot.Offset()&^uint64(BucketSize-1))
	var hdr [8]byte
	ops := []fabric.Op{
		{Kind: fabric.CAS, Addr: slot, Expect: old, Desired: new},
		{Kind: fabric.Read, Addr: bucket, Data: hdr[:]},
	}
	if err := v.c.Batch(ops); err != nil {
		return false, false, err
	}
	return ops[0].Old == old, getUint64(hdr[:]) != wantHdr, nil
}

// waitSplit polls the candidate buckets of h until no split lock is
// visible, then returns the fresh read.
func (v *View) waitSplit(h uint64) (*PreparedRead, error) {
	atomic.AddUint64(&v.stats.SplitWaits, 1)
	for attempt := 0; attempt < maxAttempts*16; attempt++ {
		p, err := v.read(h)
		if err != nil {
			return nil, err
		}
		if !p.locked() {
			return p, nil
		}
		// Model a brief backoff before polling again; Gosched lets the
		// goroutine driving the split make progress on a busy machine.
		v.c.AdvanceClock(500_000) // 0.5 µs
		runtime.Gosched()
	}
	return nil, fmt.Errorf("%w: split lock never cleared for h=%#x", ErrRetryExhausted, h)
}

// Insert adds an entry for placement hash h. If the entry word is already
// present the insert is a no-op (idempotent re-insert after an ambiguous
// race). Full candidate buckets trigger a segment split, for which alloc
// provides memory.
func (v *View) Insert(h uint64, e wire.HashEntry, alloc *mem.Allocator) error {
	atomic.AddUint64(&v.stats.Inserts, 1)
	word := e.Encode()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		p, err := v.read(h)
		if err != nil {
			return err
		}
		if p.locked() {
			if _, err := v.waitSplit(h); err != nil {
				return err
			}
			continue
		}
		if _, _, ok := p.find(word); ok {
			return nil
		}
		slot, hdr, ok := p.emptySlot()
		if !ok {
			atomic.AddUint64(&v.stats.BucketOverflows, 1)
			if err := v.split(h, alloc); err != nil {
				return err
			}
			continue
		}
		won, ambiguous, err := v.casChecked(slot, 0, word, hdr)
		if err != nil {
			return err
		}
		if !won {
			continue // someone claimed the slot; rescan
		}
		if !ambiguous {
			return nil
		}
		// A split overlapped the CAS: it may have snapshotted the bucket
		// before our entry landed and rebuilt the segment without it.
		// Wait for the split, then verify through the (possibly new)
		// segment.
		atomic.AddUint64(&v.stats.StaleChecks, 1)
		q, err := v.waitSplit(h)
		if err != nil {
			return err
		}
		if _, _, ok := q.find(word); ok {
			return nil
		}
		// Lost to the rewrite. Best-effort cleanup of the orphan word in
		// case it survived in a segment that is no longer this hash's
		// home, then retry the insert from scratch.
		if _, err := v.c.CompareSwap(slot, word, 0); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w: insert h=%#x", ErrRetryExhausted, h)
}

// Replace atomically swaps an existing entry for a new one (node type
// switch, §IV Insert: "the inner node hash table is updated ... performed
// atomically using an RDMA CAS"). The caller must hold the node-grained
// lock that serializes competing replaces of the same entry.
func (v *View) Replace(h uint64, old, new wire.HashEntry) error {
	atomic.AddUint64(&v.stats.Replaces, 1)
	oldWord, newWord := old.Encode(), new.Encode()
	waits := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		p, err := v.read(h)
		if err != nil {
			return err
		}
		if p.locked() {
			if _, err := v.waitSplit(h); err != nil {
				return err
			}
			continue
		}
		if _, _, ok := p.find(newWord); ok {
			return nil
		}
		slot, hdr, ok := p.find(oldWord)
		if !ok {
			// The old entry's own publication can still be in flight: a
			// node becomes reachable through the tree (and thus
			// switchable) before its creator's table insert lands. That
			// insert is guaranteed to complete, so wait for it rather
			// than failing the switch — on a budget independent of the
			// CAS retry budget.
			if waits++; waits > maxAttempts*64 {
				return fmt.Errorf("%w: replace target never appeared for h=%#x", ErrRetryExhausted, h)
			}
			attempt--
			v.c.AdvanceClock(500_000)
			runtime.Gosched()
			continue
		}
		won, ambiguous, err := v.casChecked(slot, oldWord, newWord, hdr)
		if err != nil {
			return err
		}
		if won && !ambiguous {
			return nil
		}
		if won && ambiguous {
			atomic.AddUint64(&v.stats.StaleChecks, 1)
			q, err := v.waitSplit(h)
			if err != nil {
				return err
			}
			if _, _, ok := q.find(newWord); ok {
				return nil
			}
			// The split captured the pre-CAS image: the old word is live
			// again somewhere; loop and redo the replace.
			if _, err := v.c.CompareSwap(slot, newWord, 0); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("%w: replace h=%#x", ErrRetryExhausted, h)
}

// SwapIfPresent atomically swaps old for new like Replace, but returns
// won=false instead of waiting when old is not (or no longer) in the
// table. Replace's wait-for-publication semantics assume the caller
// holds a lock serializing competing replaces; last-writer-wins callers
// (the anchor tables) hold no such lock, so for them "the expected entry
// vanished" means a concurrent writer won the race — an outcome to
// re-read and re-decide on, not a publication still in flight.
func (v *View) SwapIfPresent(h uint64, old, new wire.HashEntry) (bool, error) {
	atomic.AddUint64(&v.stats.Replaces, 1)
	oldWord, newWord := old.Encode(), new.Encode()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		p, err := v.read(h)
		if err != nil {
			return false, err
		}
		if p.locked() {
			if _, err := v.waitSplit(h); err != nil {
				return false, err
			}
			continue
		}
		if _, _, ok := p.find(newWord); ok {
			return true, nil
		}
		slot, hdr, ok := p.find(oldWord)
		if !ok {
			return false, nil
		}
		won, ambiguous, err := v.casChecked(slot, oldWord, newWord, hdr)
		if err != nil {
			return false, err
		}
		if won && !ambiguous {
			return true, nil
		}
		if won && ambiguous {
			atomic.AddUint64(&v.stats.StaleChecks, 1)
			q, err := v.waitSplit(h)
			if err != nil {
				return false, err
			}
			if _, _, ok := q.find(newWord); ok {
				return true, nil
			}
			// The split captured the pre-CAS image: clean our orphan and
			// redo from the re-read.
			if _, err := v.c.CompareSwap(slot, newWord, 0); err != nil {
				return false, err
			}
		}
	}
	return false, fmt.Errorf("%w: swap h=%#x", ErrRetryExhausted, h)
}

// Remove deletes an existing entry (key delete path). Idempotent: removing
// an absent entry succeeds.
func (v *View) Remove(h uint64, old wire.HashEntry) error {
	atomic.AddUint64(&v.stats.Removes, 1)
	oldWord := old.Encode()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		p, err := v.read(h)
		if err != nil {
			return err
		}
		if p.locked() {
			if _, err := v.waitSplit(h); err != nil {
				return err
			}
			continue
		}
		slot, hdr, ok := p.find(oldWord)
		if !ok {
			return nil
		}
		won, ambiguous, err := v.casChecked(slot, oldWord, 0, hdr)
		if err != nil {
			return err
		}
		if won && !ambiguous {
			return nil
		}
		if won && ambiguous {
			// The split may have resurrected the entry from its pre-CAS
			// snapshot; loop until a clean read shows it gone.
			atomic.AddUint64(&v.stats.StaleChecks, 1)
			if _, err := v.waitSplit(h); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("%w: remove h=%#x", ErrRetryExhausted, h)
}
