package racehash

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// testEnv bundles a one-node fabric with a bootstrapped table. Because
// segment splits recover entry placement from inner-node headers, every
// test entry must point at a fake node header carrying its placement hash.
type testEnv struct {
	f     *fabric.Fabric
	node  mem.NodeID
	table Table
}

func newEnv(t *testing.T, expected int) *testEnv {
	t.Helper()
	f := fabric.New(fabric.InstantConfig())
	node := f.AddNode(64 << 20)
	alloc := mem.NewAllocator(f.Regions(), 0)
	table, err := Bootstrap(f.Region(node), alloc, node, expected)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{f: f, node: node, table: table}
}

// makeEntry fabricates an inner node whose header carries placement hash h
// and returns a hash entry pointing at it.
func (e *testEnv) makeEntry(t *testing.T, c *fabric.Client, alloc *mem.Allocator, h uint64, fp uint16) wire.HashEntry {
	t.Helper()
	addr, err := alloc.Alloc(e.node, mem.ClassInner, 64)
	if err != nil {
		t.Fatal(err)
	}
	hdr := wire.NodeHeader{Status: wire.StatusIdle, Type: wire.Node4, Depth: 1, PrefixHash: h}
	if err := c.WriteUint64(addr, hdr.Encode()); err != nil {
		t.Fatal(err)
	}
	return wire.HashEntry{Valid: true, FP: fp, Type: wire.Node4, Addr: addr}
}

func hashFP(i int) (uint64, uint16) {
	h := wire.Hash64([]byte(fmt.Sprintf("prefix-%d", i))) & (1<<42 - 1)
	fp := wire.FP12([]byte(fmt.Sprintf("prefix-%d", i)))
	return h, fp
}

func TestInsertLookup(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)

	h, fp := hashFP(1)
	e := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Insert(h, e, alloc); err != nil {
		t.Fatal(err)
	}
	got, err := v.Lookup(h, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Entry != e {
		t.Fatalf("lookup = %+v, want %+v", got, e)
	}
}

func TestLookupMiss(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	v := NewView(env.table, c)
	h, fp := hashFP(999)
	got, err := v.Lookup(h, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("lookup of absent key returned %+v", got)
	}
}

func TestWarmLookupIsOneRoundTrip(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	h, fp := hashFP(2)
	e := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Insert(h, e, alloc); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if _, err := v.Lookup(h, fp); err != nil {
		t.Fatal(err)
	}
	d := c.Stats().Sub(before)
	if d.RoundTrips != 1 {
		t.Errorf("warm lookup took %d round trips, want 1 (the paper's §III-A guarantee)", d.RoundTrips)
	}
	if d.Verbs != 2 {
		t.Errorf("warm lookup issued %d verbs, want 2 bucket reads", d.Verbs)
	}
}

func TestInsertIdempotent(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	h, fp := hashFP(3)
	e := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Insert(h, e, alloc); err != nil {
		t.Fatal(err)
	}
	if err := v.Insert(h, e, alloc); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Lookup(h, fp)
	if len(got) != 1 {
		t.Fatalf("idempotent insert produced %d entries", len(got))
	}
}

func TestReplace(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	h, fp := hashFP(4)
	old := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Insert(h, old, alloc); err != nil {
		t.Fatal(err)
	}
	// Node type switch: same prefix, new address and type.
	newE := env.makeEntry(t, c, alloc, h, fp)
	newE.Type = wire.Node16
	if err := v.Replace(h, old, newE); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Lookup(h, fp)
	if len(got) != 1 || got[0].Entry != newE {
		t.Fatalf("after replace: %+v", got)
	}
	// Replace is idempotent if the new entry is already installed.
	if err := v.Replace(h, old, newE); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceMissingEntryFails(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	h, fp := hashFP(5)
	ghost := env.makeEntry(t, c, alloc, h, fp)
	other := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Replace(h, ghost, other); err == nil {
		t.Error("replace of absent entry succeeded")
	}
}

func TestRemove(t *testing.T) {
	env := newEnv(t, 100)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	h, fp := hashFP(6)
	e := env.makeEntry(t, c, alloc, h, fp)
	if err := v.Insert(h, e, alloc); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove(h, e); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Lookup(h, fp)
	if len(got) != 0 {
		t.Fatalf("entry survived remove: %+v", got)
	}
	// Removing again is a no-op.
	if err := v.Remove(h, e); err != nil {
		t.Fatal(err)
	}
}

func TestManyInsertsForceSplits(t *testing.T) {
	// Start with a single-segment table and insert far beyond its
	// capacity: segments must split and the directory must double, and
	// every entry must remain findable afterwards.
	env := newEnv(t, 1) // initial depth 0
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)

	const n = 3000
	entries := make([]wire.HashEntry, n)
	for i := 0; i < n; i++ {
		h, fp := hashFP(i)
		entries[i] = env.makeEntry(t, c, alloc, h, fp)
		if err := v.Insert(h, entries[i], alloc); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := v.Stats()
	if st.Splits == 0 {
		t.Error("no segment splits for 3000 entries in a 1-segment table")
	}
	if st.DirDoubles == 0 {
		t.Error("directory never doubled")
	}
	for i := 0; i < n; i++ {
		h, fp := hashFP(i)
		got, err := v.Lookup(h, fp)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		found := false
		for _, cand := range got {
			if cand.Entry == entries[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %d lost after splits", i)
		}
	}
}

func TestFreshViewSeesExistingEntries(t *testing.T) {
	env := newEnv(t, 1)
	c1 := env.f.NewClient()
	alloc := mem.NewAllocator(c1, 0)
	v1 := NewView(env.table, c1)
	var hs []uint64
	var fps []uint16
	var es []wire.HashEntry
	for i := 0; i < 800; i++ {
		h, fp := hashFP(i)
		e := env.makeEntry(t, c1, alloc, h, fp)
		if err := v1.Insert(h, e, alloc); err != nil {
			t.Fatal(err)
		}
		hs, fps, es = append(hs, h), append(fps, fp), append(es, e)
	}
	// A second client with a cold directory cache must find everything.
	c2 := env.f.NewClient()
	v2 := NewView(env.table, c2)
	for i := range hs {
		got, err := v2.Lookup(hs[i], fps[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, cand := range got {
			if cand.Entry == es[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("fresh view missed entry %d", i)
		}
	}
}

func TestStaleDirectoryCacheRecovers(t *testing.T) {
	env := newEnv(t, 1)
	c1 := env.f.NewClient()
	alloc1 := mem.NewAllocator(c1, 0)
	v1 := NewView(env.table, c1)
	// Warm v2's cache while the table is tiny.
	c2 := env.f.NewClient()
	v2 := NewView(env.table, c2)
	h0, fp0 := hashFP(0)
	e0 := env.makeEntry(t, c1, alloc1, h0, fp0)
	if err := v1.Insert(h0, e0, alloc1); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Lookup(h0, fp0); err != nil {
		t.Fatal(err)
	}
	// Grow the table through v1 only.
	for i := 1; i < 2000; i++ {
		h, fp := hashFP(i)
		e := env.makeEntry(t, c1, alloc1, h, fp)
		if err := v1.Insert(h, e, alloc1); err != nil {
			t.Fatal(err)
		}
	}
	// v2's stale cache must transparently refresh on every lookup.
	for i := 0; i < 2000; i += 37 {
		h, fp := hashFP(i)
		got, err := v2.Lookup(h, fp)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("stale view lost entry %d", i)
		}
	}
	if v2.Stats().Refreshes == 0 {
		t.Error("stale view never refreshed its directory cache")
	}
}

func TestConcurrentInsertsAndLookups(t *testing.T) {
	env := newEnv(t, 1)
	const workers = 6
	const perWorker = 400
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := env.f.NewClient()
			alloc := mem.NewAllocator(c, 0)
			v := NewView(env.table, c)
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				h, fp := hashFP(id)
				e := env.makeEntry(t, c, alloc, h, fp)
				if err := v.Insert(h, e, alloc); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
				if got, err := v.Lookup(h, fp); err != nil || len(got) == 0 {
					errs <- fmt.Errorf("worker %d lost own entry %d (err=%v)", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Global check from a fresh client.
	c := env.f.NewClient()
	v := NewView(env.table, c)
	for id := 0; id < workers*perWorker; id++ {
		h, fp := hashFP(id)
		got, err := v.Lookup(h, fp)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("entry %d missing after concurrent load", id)
		}
	}
}

func TestDirCacheBytesReported(t *testing.T) {
	env := newEnv(t, 10000)
	c := env.f.NewClient()
	v := NewView(env.table, c)
	if _, err := v.Lookup(1, 1); err != nil {
		t.Fatal(err)
	}
	if v.DirCacheBytes() == 0 {
		t.Error("directory cache size not reported")
	}
}

func TestInsertLookupProperty(t *testing.T) {
	env := newEnv(t, 64)
	c := env.f.NewClient()
	alloc := mem.NewAllocator(c, 0)
	v := NewView(env.table, c)
	inserted := map[uint64]wire.HashEntry{}
	i := 0
	prop := func(seed uint64) bool {
		i++
		h := wire.Mix64(seed) & (1<<42 - 1)
		fp := uint16(wire.Mix64(seed^1) & (1<<wire.FPBits - 1))
		e := env.makeEntry(t, c, alloc, h, fp)
		if err := v.Insert(h, e, alloc); err != nil {
			t.Logf("insert: %v", err)
			return false
		}
		inserted[h] = e
		// Every inserted entry remains findable.
		for hh, ee := range inserted {
			cands, err := v.Lookup(hh, ee.FP)
			if err != nil {
				return false
			}
			found := false
			for _, cand := range cands {
				if cand.Entry == ee {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
