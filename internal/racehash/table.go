// Package racehash implements the Inner Node Hash Table (paper §III-A): a
// RACE-style [22] extendible hash table living in memory-node memory and
// operated entirely with one-sided verbs. It maps an inner node's full
// prefix to an 8-byte wire.HashEntry, and guarantees that any lookup
// completes in a single round trip once the client's directory cache is
// warm — the property Sphinx's "read one hash entry instead of traversing"
// fast path depends on.
//
// # Layout
//
// Each memory node hosts one table for the inner nodes placed on it. A
// table is:
//
//   - a meta block: word0 packs [globalDepth:8 | directoryAddr:48], word1 is
//     the table-wide split lock;
//   - a directory: 2^globalDepth words, each packing
//     [localDepth:8 | segmentAddr:48];
//   - segments: SegBuckets buckets of 64 bytes. A bucket is a header word
//     [marker | splitLock | localDepth:8 | suffix:40] followed by
//     EntriesPerBucket hash-entry words.
//
// A key's placement hash is its 42-bit full-prefix hash (wire.PrefixHash42)
// — deliberately the same value stored in every inner node's header, so a
// splitting client can re-derive any entry's placement by reading the
// node's header word, which is what makes one-sided segment splits possible
// (entries alone are too small to carry their key).
//
// # Concurrency
//
// Entry reads take no locks. Entry writes are single-word CAS, followed in
// the same doorbell batch by a read of the bucket header; if the header's
// split lock was set, a splitting client may have missed the write, so the
// writer waits for the split and re-verifies (see view.go). Splits take the
// per-table split lock, lock every bucket header of the old segment, and
// publish the new segment before rewriting the old one, so readers always
// find live entries.
package racehash

import (
	"fmt"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// Table geometry.
const (
	// SegBuckets is the number of buckets per segment (a 4 KiB segment).
	SegBuckets = 64
	// EntriesPerBucket is the number of hash entries per 64-byte bucket;
	// the eighth word is the bucket header.
	EntriesPerBucket = 7
	// BucketSize is the on-wire size of one bucket.
	BucketSize = 64
	// SegmentSize is the on-wire size of one segment.
	SegmentSize = SegBuckets * BucketSize
	// MaxGlobalDepth bounds directory growth; 2^28 segments is far beyond
	// any simulation this repository runs.
	MaxGlobalDepth = 28
)

// Meta block layout.
const (
	metaWordOff = 0 // [globalDepth:8 | dirAddr:48]
	metaLockOff = 8 // table-wide split lock: 0 free, 1 held
	// MetaSize is the allocation size of the meta block.
	MetaSize = mem.LineSize
)

// Table identifies one memory node's inner-node hash table. It is built at
// bootstrap and shared read-only by all clients.
type Table struct {
	Node mem.NodeID
	Meta mem.Addr
}

// packMeta builds the meta word.
func packMeta(depth uint8, dir mem.Addr) uint64 {
	return uint64(depth)<<mem.AddrBits | uint64(dir)&(1<<mem.AddrBits-1)
}

// unpackMeta splits the meta word.
func unpackMeta(w uint64) (depth uint8, dir mem.Addr) {
	return uint8(w >> mem.AddrBits), mem.Addr(w & (1<<mem.AddrBits - 1))
}

// packDirEntry builds a directory word.
func packDirEntry(localDepth uint8, seg mem.Addr) uint64 {
	return uint64(localDepth)<<mem.AddrBits | uint64(seg)&(1<<mem.AddrBits-1)
}

// unpackDirEntry splits a directory word.
func unpackDirEntry(w uint64) (localDepth uint8, seg mem.Addr) {
	return uint8(w >> mem.AddrBits), mem.Addr(w & (1<<mem.AddrBits - 1))
}

// Bucket header word:
//
//	bit  63      marker (always 1 once initialized)
//	bit  62      split lock
//	bits 48..55  localDepth
//	bits  0..39  suffix (low localDepth bits of placement hashes stored here)
const (
	hdrMarker    = uint64(1) << 63
	hdrSplitLock = uint64(1) << 62
	hdrDepthOff  = 48
	hdrSuffixCap = uint64(1)<<40 - 1
)

func packBucketHeader(localDepth uint8, suffix uint64, locked bool) uint64 {
	w := hdrMarker | uint64(localDepth)<<hdrDepthOff | suffix&hdrSuffixCap
	if locked {
		w |= hdrSplitLock
	}
	return w
}

func unpackBucketHeader(w uint64) (localDepth uint8, suffix uint64, locked bool) {
	return uint8(w >> hdrDepthOff), w & hdrSuffixCap, w&hdrSplitLock != 0
}

// headerMatches reports whether a bucket header is valid for placement
// hash h: the low localDepth bits of h equal the bucket's suffix. A
// mismatch means the client's directory cache is stale.
func headerMatches(w uint64, h uint64) bool {
	if w&hdrMarker == 0 {
		return false
	}
	d, suffix, _ := unpackBucketHeader(w)
	return h&depthMask(d) == suffix
}

func depthMask(depth uint8) uint64 { return uint64(1)<<depth - 1 }

// PlacementHash returns the placement hash of a prefix: its 42-bit
// full-prefix hash. The same value is stored in the inner node's header,
// which is what lets splits re-derive entry placement.
func PlacementHash(prefix []byte) uint64 { return wire.PrefixHash42(prefix) }

// bucketPair returns the two candidate bucket indices within a segment for
// a placement hash. Both are derived deterministically from the hash alone.
func bucketPair(h uint64) (b1, b2 int) {
	m1 := wire.Mix64(h ^ 0xa5a5a5a5a5a5a5a5)
	m2 := wire.Mix64(h ^ 0x5a5a5a5a5a5a5a5a)
	b1 = int(m1 % SegBuckets)
	b2 = int(m2 % SegBuckets)
	if b2 == b1 {
		b2 = (b1 + 1) % SegBuckets
	}
	return b1, b2
}

// InitialDepth returns a directory depth sized so the table holds
// expectedEntries at roughly half load, leaving headroom before splits.
func InitialDepth(expectedEntries int) uint8 {
	perSeg := SegBuckets * EntriesPerBucket / 2
	depth := uint8(0)
	for (1<<depth)*perSeg < expectedEntries && depth < MaxGlobalDepth {
		depth++
	}
	return depth
}

// Bootstrap builds an empty table on the given memory node using direct
// (cost-free) region access; it runs during cluster setup, before clients
// exist. The allocator must target the same node.
func Bootstrap(region *mem.Region, alloc *mem.Allocator, node mem.NodeID, expectedEntries int) (Table, error) {
	depth := InitialDepth(expectedEntries)
	nSegs := 1 << depth

	meta, err := alloc.Alloc(node, mem.ClassMeta, MetaSize)
	if err != nil {
		return Table{}, fmt.Errorf("racehash: alloc meta: %w", err)
	}
	dir, err := alloc.Alloc(node, mem.ClassHash, uint64(nSegs)*8)
	if err != nil {
		return Table{}, fmt.Errorf("racehash: alloc directory: %w", err)
	}
	for i := 0; i < nSegs; i++ {
		seg, err := alloc.Alloc(node, mem.ClassHash, SegmentSize)
		if err != nil {
			return Table{}, fmt.Errorf("racehash: alloc segment: %w", err)
		}
		writeEmptySegment(region, seg, depth, uint64(i))
		region.WriteUint64(dir.Offset()+uint64(i)*8, packDirEntry(depth, seg))
	}
	region.WriteUint64(meta.Offset()+metaWordOff, packMeta(depth, dir))
	region.WriteUint64(meta.Offset()+metaLockOff, 0)
	return Table{Node: node, Meta: meta}, nil
}

// writeEmptySegment initializes all bucket headers of a fresh segment.
func writeEmptySegment(region *mem.Region, seg mem.Addr, localDepth uint8, suffix uint64) {
	buf := make([]byte, SegmentSize)
	for b := 0; b < SegBuckets; b++ {
		putUint64(buf[b*BucketSize:], packBucketHeader(localDepth, suffix, false))
	}
	region.Write(seg.Offset(), buf)
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
