package racehash

import (
	"testing"
	"testing/quick"

	"sphinx/internal/mem"
)

func TestPackUnpackMeta(t *testing.T) {
	f := func(depth uint8, off uint64) bool {
		addr := mem.NewAddr(3, off&mem.MaxOffset)
		d, a := unpackMeta(packMeta(depth, addr))
		return d == depth && a == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackDirEntry(t *testing.T) {
	f := func(depth uint8, off uint64) bool {
		addr := mem.NewAddr(9, off&mem.MaxOffset)
		d, a := unpackDirEntry(packDirEntry(depth, addr))
		return d == depth && a == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		depth  uint8
		suffix uint64
		locked bool
	}{
		{0, 0, false},
		{1, 1, false},
		{12, 0xabc, true},
		{28, (1 << 28) - 1, false},
	}
	for _, c := range cases {
		d, s, l := unpackBucketHeader(packBucketHeader(c.depth, c.suffix, c.locked))
		if d != c.depth || s != c.suffix || l != c.locked {
			t.Errorf("round trip (%d,%#x,%v) → (%d,%#x,%v)", c.depth, c.suffix, c.locked, d, s, l)
		}
	}
}

func TestHeaderMatches(t *testing.T) {
	h := uint64(0b1011)
	w := packBucketHeader(3, h&7, false)
	if !headerMatches(w, h) {
		t.Error("matching header rejected")
	}
	if headerMatches(w, h^0b100) {
		t.Error("mismatching suffix accepted")
	}
	if headerMatches(0, h) {
		t.Error("uninitialized header accepted")
	}
	// The split-lock bit must not affect matching.
	wl := packBucketHeader(3, h&7, true)
	if !headerMatches(wl, h) {
		t.Error("locked header rejected")
	}
}

func TestBucketPairDistinctAndStable(t *testing.T) {
	f := func(h uint64) bool {
		h &= 1<<42 - 1
		b1, b2 := bucketPair(h)
		c1, c2 := bucketPair(h)
		return b1 != b2 && b1 == c1 && b2 == c2 &&
			b1 >= 0 && b1 < SegBuckets && b2 >= 0 && b2 < SegBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialDepth(t *testing.T) {
	if InitialDepth(1) != 0 {
		t.Errorf("InitialDepth(1) = %d", InitialDepth(1))
	}
	perSeg := SegBuckets * EntriesPerBucket / 2
	if d := InitialDepth(perSeg + 1); d != 1 {
		t.Errorf("InitialDepth(%d) = %d, want 1", perSeg+1, d)
	}
	d := InitialDepth(1 << 30)
	if d > MaxGlobalDepth {
		t.Errorf("depth %d exceeds cap %d", d, MaxGlobalDepth)
	}
	if (1<<d)*perSeg < 1<<30 {
		t.Errorf("depth %d does not cover 2^30 entries at half load", d)
	}
	if dHuge := InitialDepth(1 << 62); dHuge != MaxGlobalDepth {
		t.Errorf("absurd table depth = %d, want capped at %d", dHuge, MaxGlobalDepth)
	}
}

func TestGeometry(t *testing.T) {
	if SegmentSize != 4096 {
		t.Errorf("segment size = %d", SegmentSize)
	}
	if BucketSize != mem.LineSize {
		t.Errorf("bucket size %d must equal the atomicity line size %d", BucketSize, mem.LineSize)
	}
	if 8*(1+EntriesPerBucket) != BucketSize {
		t.Error("bucket layout does not fill exactly one line")
	}
}
