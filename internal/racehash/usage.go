package racehash

import "sphinx/internal/mem"

// Usage is an MN-side occupancy summary of one inner node hash table,
// produced by scanning the table's live segments.
type Usage struct {
	GlobalDepth uint8
	DirEntries  uint64 // directory size (2^GlobalDepth)
	Segments    uint64 // distinct live segments
	Entries     uint64 // valid hash entries stored
	Capacity    uint64 // Segments × SegBuckets × EntriesPerBucket
}

// LoadFactor returns Entries / Capacity (0 for an empty table).
func (u Usage) LoadFactor() float64 {
	if u.Capacity == 0 {
		return 0
	}
	return float64(u.Entries) / float64(u.Capacity)
}

// Add returns u + v with Segments/Entries/Capacity summed and the deepest
// directory kept; used to aggregate the per-memory-node tables of one
// cluster into a single INHT gauge set.
func (u Usage) Add(v Usage) Usage {
	if v.GlobalDepth > u.GlobalDepth {
		u.GlobalDepth = v.GlobalDepth
	}
	u.DirEntries += v.DirEntries
	u.Segments += v.Segments
	u.Entries += v.Entries
	u.Capacity += v.Capacity
	return u
}

// ReadUsage scans a table through direct region access: meta word →
// directory → each distinct segment, counting non-empty entry words. It
// is a telemetry path — it bypasses the fabric (no virtual-clock cost, no
// round-trip accounting) and tolerates concurrent mutation: the region's
// internal locking keeps every word read race-clean, and the result is a
// point-in-time approximation, exactly what a load-factor gauge needs.
func ReadUsage(region *mem.Region, t Table) Usage {
	depth, dirAddr := unpackMeta(region.ReadUint64(t.Meta.Offset() + metaWordOff))
	u := Usage{GlobalDepth: depth, DirEntries: uint64(1) << depth}

	// With localDepth < globalDepth a segment appears under several
	// directory slots; count each segment once.
	seen := make(map[mem.Addr]struct{}, u.DirEntries)
	for i := uint64(0); i < u.DirEntries; i++ {
		_, seg := unpackDirEntry(region.ReadUint64(dirAddr.Offset() + i*8))
		if seg == 0 {
			continue
		}
		if _, dup := seen[seg]; dup {
			continue
		}
		seen[seg] = struct{}{}
		u.Segments++
		var buf [SegmentSize]byte
		region.Read(seg.Offset(), buf[:])
		for b := 0; b < SegBuckets; b++ {
			for s := 0; s < EntriesPerBucket; s++ {
				if getUint64(buf[b*BucketSize+8*(1+s):]) != 0 {
					u.Entries++
				}
			}
		}
	}
	u.Capacity = u.Segments * SegBuckets * EntriesPerBucket
	return u
}
