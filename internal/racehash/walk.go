package racehash

import (
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// Walk visits every valid entry of the table, invoking fn for each. It
// reads the directory once, deduplicates segment pointers (after a split
// short of a directory double, multiple directory slots alias one
// segment), then reads whole segments — paying one round trip per segment
// on top of the directory fetch.
//
// Walk is a best-effort snapshot: entries inserted, removed or moved by a
// concurrent split during the walk may be seen zero or two times. Callers
// (the anti-entropy repair sweeper) must therefore be idempotent per entry
// and rely on repeated sweeps, not on any one walk being exact.
func (v *View) Walk(fn func(e wire.HashEntry) error) error {
	if err := v.refresh(); err != nil {
		return err
	}
	segs := make([]uint64, 0, len(v.dir))
	seen := make(map[uint64]bool, len(v.dir))
	for _, w := range v.dir {
		_, seg := unpackDirEntry(w)
		if !seen[uint64(seg)] {
			seen[uint64(seg)] = true
			segs = append(segs, uint64(seg))
		}
	}
	buf := make([]byte, SegmentSize)
	for _, seg := range segs {
		if err := v.c.Read(mem.Addr(seg), buf); err != nil {
			return err
		}
		for b := 0; b < SegBuckets; b++ {
			bucket := buf[b*BucketSize:]
			for s := 0; s < EntriesPerBucket; s++ {
				e := wire.DecodeHashEntry(getUint64(bucket[8*(1+s):]))
				if !e.Valid {
					continue
				}
				if err := fn(e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
