package racehash

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// split grows the table when the candidate buckets for h are full. It is
// the extendible-hashing resize of RACE [22], driven entirely by one-sided
// verbs from the inserting client:
//
//  1. take the table-wide split lock (meta block, CAS);
//  2. if the segment's local depth equals the global depth, double the
//     directory;
//  3. set the split-lock bit in every bucket header of the old segment
//     (one doorbell batch of CAS) — entry writers that race with the split
//     detect this bit and re-verify afterwards;
//  4. read the old segment, then batch-read the header word of every
//     referenced inner node to recover each entry's placement hash (the
//     42-bit prefix hash is stored in both places by design);
//  5. write the fully built new segment, repoint the affected directory
//     words, rewrite the old segment with depth+1 headers and the lock
//     bits cleared;
//  6. release the table lock and re-insert any entries that no longer fit
//     their rebuilt buckets.
//
// Publishing the new segment before rewriting the old one means a reader
// can always find a live entry: through the old segment until the
// directory flips, through the new one after.
func (v *View) split(h uint64, alloc *mem.Allocator) error {
	lockAddr := v.t.Meta.Add(metaLockOff)
	for attempt := 0; ; attempt++ {
		old, err := v.c.CompareSwap(lockAddr, 0, 1)
		if err != nil {
			return err
		}
		if old == 0 {
			break
		}
		if attempt > maxAttempts*64 {
			return fmt.Errorf("%w: table split lock", ErrRetryExhausted)
		}
		v.c.AdvanceClock(1_000_000) // back off 1 µs before re-polling
		runtime.Gosched()
	}
	leftovers, err := v.splitLocked(h, alloc)
	if uerr := v.c.WriteUint64(lockAddr, 0); uerr != nil && err == nil {
		err = uerr
	}
	if err != nil {
		return err
	}
	for _, lo := range leftovers {
		atomic.AddUint64(&v.stats.Reinserted, 1)
		if err := v.Insert(lo.h, lo.entry, alloc); err != nil {
			return fmt.Errorf("racehash: re-inserting split leftover: %w", err)
		}
	}
	return nil
}

type leftover struct {
	h     uint64
	entry wire.HashEntry
}

func (v *View) splitLocked(h uint64, alloc *mem.Allocator) ([]leftover, error) {
	if err := v.refresh(); err != nil {
		return nil, err
	}
	// Another client may have split this segment while we waited for the
	// lock; if the candidate buckets have room now, there is nothing to do.
	p, err := v.Prepare(h)
	if err != nil {
		return nil, err
	}
	if err := v.c.Batch(p.Ops()); err != nil {
		return nil, err
	}
	if p.Valid() {
		if _, _, ok := p.emptySlot(); ok {
			return nil, nil
		}
	}

	dirIdx := h & depthMask(v.depth)
	localDepth, segAddr := unpackDirEntry(v.dir[dirIdx])
	if localDepth >= MaxGlobalDepth {
		return nil, fmt.Errorf("racehash: segment at max depth %d", localDepth)
	}
	if localDepth == v.depth {
		if err := v.doubleDirectory(alloc); err != nil {
			return nil, err
		}
	}
	suffix := h & depthMask(localDepth)
	atomic.AddUint64(&v.stats.Splits, 1)

	// Lock every bucket header of the old segment in one doorbell batch.
	unlocked := packBucketHeader(localDepth, suffix, false)
	locked := packBucketHeader(localDepth, suffix, true)
	lockOps := make([]fabric.Op, SegBuckets)
	for b := 0; b < SegBuckets; b++ {
		lockOps[b] = fabric.Op{
			Kind: fabric.CAS, Addr: segAddr.Add(uint64(b) * BucketSize),
			Expect: unlocked, Desired: locked,
		}
	}
	if err := v.c.Batch(lockOps); err != nil {
		return nil, err
	}
	for b := range lockOps {
		if lockOps[b].Old != unlocked {
			return nil, fmt.Errorf("racehash: bucket %d header %#x unexpected during split", b, lockOps[b].Old)
		}
	}

	// Snapshot the segment and recover every entry's placement hash from
	// its inner node's header word.
	segBuf := make([]byte, SegmentSize)
	if err := v.c.Read(segAddr, segBuf); err != nil {
		return nil, err
	}
	type liveEntry struct {
		word uint64
		h    uint64
	}
	var live []liveEntry
	var hdrOps []fabric.Op
	var hdrBufs [][8]byte
	for b := 0; b < SegBuckets; b++ {
		for s := 0; s < EntriesPerBucket; s++ {
			w := getUint64(segBuf[b*BucketSize+8*(1+s):])
			if w == 0 {
				continue
			}
			live = append(live, liveEntry{word: w})
			hdrBufs = append(hdrBufs, [8]byte{})
		}
	}
	for i := range live {
		e := wire.DecodeHashEntry(live[i].word)
		hdrOps = append(hdrOps, fabric.Op{Kind: fabric.Read, Addr: e.Addr, Data: hdrBufs[i][:]})
	}
	if len(hdrOps) > 0 {
		if err := v.c.Batch(hdrOps); err != nil {
			return nil, err
		}
	}
	for i := range live {
		live[i].h = wire.DecodeNodeHeader(getUint64(hdrBufs[i][:])).PrefixHash
	}

	// Build both segment images locally.
	newDepth := localDepth + 1
	newSuffix := suffix | uint64(1)<<localDepth
	oldImg := emptySegmentImage(newDepth, suffix)
	newImg := emptySegmentImage(newDepth, newSuffix)
	var leftovers []leftover
	for _, le := range live {
		img := oldImg
		if le.h>>localDepth&1 == 1 {
			img = newImg
		}
		if !placeEntry(img, le.h, le.word) {
			leftovers = append(leftovers, leftover{h: le.h, entry: wire.DecodeHashEntry(le.word)})
		}
	}

	newSeg, err := alloc.Alloc(v.t.Node, mem.ClassHash, SegmentSize)
	if err != nil {
		return nil, err
	}
	if err := v.c.Write(newSeg, newImg); err != nil {
		return nil, err
	}

	// Repoint the directory: every index with the old suffix splits on bit
	// localDepth between the two segments, both at depth+1.
	var dirOps []fabric.Op
	_, dirAddr := v.metaCached()
	for j := uint64(0); j < uint64(1)<<v.depth; j++ {
		if j&depthMask(localDepth) != suffix {
			continue
		}
		var w uint64
		if j>>localDepth&1 == 1 {
			w = packDirEntry(newDepth, newSeg)
		} else {
			w = packDirEntry(newDepth, segAddr)
		}
		v.dir[j] = w
		buf := make([]byte, 8)
		putUint64(buf, w)
		dirOps = append(dirOps, fabric.Op{Kind: fabric.Write, Addr: dirAddr.Add(j * 8), Data: buf})
	}
	for len(dirOps) > 0 {
		n := len(dirOps)
		if n > 256 {
			n = 256
		}
		if err := v.c.Batch(dirOps[:n]); err != nil {
			return nil, err
		}
		dirOps = dirOps[n:]
	}

	// Finally rewrite the old segment: moved entries gone, headers at the
	// new depth, lock bits cleared.
	if err := v.c.Write(segAddr, oldImg); err != nil {
		return nil, err
	}
	return leftovers, nil
}

// metaCached reconstructs the cached meta fields. The directory address is
// tracked alongside the cache by refresh; to avoid a second field it is
// recomputed here from the last refresh.
func (v *View) metaCached() (uint8, mem.Addr) { return v.depth, v.dirAddr }

// doubleDirectory doubles the directory under the table lock: the new
// half mirrors the old, then the meta word flips atomically. Readers
// holding the old directory stay correct — its entries still point at
// valid segments — and migrate on their next suffix-mismatch refresh.
func (v *View) doubleDirectory(alloc *mem.Allocator) error {
	if v.depth >= MaxGlobalDepth {
		return fmt.Errorf("racehash: directory at max depth %d", v.depth)
	}
	newDepth := v.depth + 1
	half := uint64(1) << v.depth
	buf := make([]byte, (uint64(1)<<newDepth)*8)
	for i := uint64(0); i < half; i++ {
		putUint64(buf[i*8:], v.dir[i])
		putUint64(buf[(i+half)*8:], v.dir[i])
	}
	newDir, err := alloc.Alloc(v.t.Node, mem.ClassHash, uint64(len(buf)))
	if err != nil {
		return err
	}
	if err := v.c.Write(newDir, buf); err != nil {
		return err
	}
	if err := v.c.WriteUint64(v.t.Meta.Add(metaWordOff), packMeta(newDepth, newDir)); err != nil {
		return err
	}
	newCache := make([]uint64, 1<<newDepth)
	copy(newCache, v.dir)
	copy(newCache[half:], v.dir)
	v.depth = newDepth
	v.dir = newCache
	v.dirAddr = newDir
	atomic.AddUint64(&v.stats.DirDoubles, 1)
	return nil
}

// emptySegmentImage builds a segment image with initialized headers.
func emptySegmentImage(localDepth uint8, suffix uint64) []byte {
	img := make([]byte, SegmentSize)
	for b := 0; b < SegBuckets; b++ {
		putUint64(img[b*BucketSize:], packBucketHeader(localDepth, suffix, false))
	}
	return img
}

// placeEntry stores an entry word into one of its candidate buckets in a
// local segment image; false if both are full.
func placeEntry(img []byte, h uint64, word uint64) bool {
	b1, b2 := bucketPair(h)
	for _, b := range [2]int{b1, b2} {
		for s := 0; s < EntriesPerBucket; s++ {
			off := b*BucketSize + 8*(1+s)
			if getUint64(img[off:]) == 0 {
				putUint64(img[off:], word)
				return true
			}
		}
	}
	return false
}
