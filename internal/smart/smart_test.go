package smart

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/rart"
)

func newCluster(t *testing.T, mns int, cfg fabric.Config) (*fabric.Fabric, Shared) {
	t.Helper()
	f := fabric.New(cfg)
	nodes := make([]mem.NodeID, mns)
	for i := range nodes {
		nodes[i] = f.AddNode(512 << 20)
	}
	ring := consistenthash.New(nodes, 0)
	shared, err := Bootstrap(f, ring)
	if err != nil {
		t.Fatal(err)
	}
	return f, shared
}

func TestInsertSearchBasic(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig())
	c := NewClient(shared, f.NewClient(), Options{})
	pairs := map[string]string{
		"LYRICS": "v1", "LYRIC": "v2", "LYR": "v3", "L": "v4", "MOON": "v5",
	}
	for k, v := range pairs {
		if existed, err := c.Insert([]byte(k), []byte(v)); err != nil || existed {
			t.Fatalf("insert %q: %v %v", k, existed, err)
		}
	}
	for k, v := range pairs {
		got, ok, err := c.Search([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Errorf("Search(%q) = %q,%v,%v", k, got, ok, err)
		}
	}
	if _, ok, _ := c.Search([]byte("LYRI")); ok {
		t.Error("absent key found")
	}
}

func TestAllNodesAreNode256Footprint(t *testing.T) {
	// SMART's defining property: every inner node consumes the Node-256
	// footprint on the memory node (paper §II-B / Fig. 6).
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	c := NewClient(shared, f.NewClient(), Options{})
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("prefix-%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	u, err := mem.ReadUsage(f.Regions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// With ~a handful of inner nodes at 2080+ bytes each, inner usage per
	// node must be ≥ Node256 size; a Node4-based tree would use ~64 B.
	if u.ByClass[mem.ClassInner] < 2080*2 {
		t.Errorf("inner-class usage %d too small for Node-256 preallocation", u.ByClass[mem.ClassInner])
	}
}

func TestCacheReducesRoundTrips(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig())
	c := NewClient(shared, f.NewClient(), Options{CacheBudget: 8 << 20})
	var keys [][]byte
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("users/account/%05d", i))
		keys = append(keys, k)
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// First search warms the cache along the path.
	if _, ok, _ := c.Search(keys[50]); !ok {
		t.Fatal("warm search failed")
	}
	before := c.Engine().C.Stats()
	if _, ok, _ := c.Search(keys[50]); !ok {
		t.Fatal("search failed")
	}
	d := c.Engine().C.Stats().Sub(before)
	// Jump target read + leaf read: 2 round trips with a warm cache.
	if d.RoundTrips > 3 {
		t.Errorf("cached search took %d round trips, want ≤3", d.RoundTrips)
	}
	if c.Cache().Stats().Hits == 0 {
		t.Error("cache never hit")
	}
}

func TestTinyCacheDegradesToPerLevelRoundTrips(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig())
	// A cache that fits nothing: every level costs a round trip, like the
	// naive port — the regime of the paper's small-cache comparison.
	c := NewClient(shared, f.NewClient(), Options{CacheBudget: 1})
	var keys [][]byte
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("deep/path/%05d", i))
		keys = append(keys, k)
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Engine().C.Stats()
	if _, ok, _ := c.Search(keys[30]); !ok {
		t.Fatal("search failed")
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips < 3 {
		t.Errorf("cacheless SMART search took %d round trips; expected per-level cost", d.RoundTrips)
	}
}

func TestStaleCacheRecovers(t *testing.T) {
	// B caches a path, A restructures it (path split changes partials);
	// B's reverse check must recover.
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	a := NewClient(shared, f.NewClient(), Options{})
	b := NewClient(shared, f.NewClient(), Options{})
	k1 := []byte("commonprefix/aaa")
	k2 := []byte("commonprefix/bbb")
	if _, err := a.Insert(k1, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(k2, []byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Search(k1); !ok {
		t.Fatal("warm failed")
	}
	// Split the compressed path above B's cached node.
	k3 := []byte("commonp/short")
	if _, err := a.Insert(k3, []byte("3")); err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct{ k, v string }{
		{"commonprefix/aaa", "1"}, {"commonprefix/bbb", "2"}, {"commonp/short", "3"},
	} {
		got, ok, err := b.Search([]byte(kv.k))
		if err != nil || !ok || string(got) != kv.v {
			t.Errorf("B search %q = %q,%v,%v", kv.k, got, ok, err)
		}
	}
}

func TestRandomOpsAgainstOracle(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig())
	c := NewClient(shared, f.NewClient(), Options{CacheBudget: 1 << 20})
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(21))
	randKey := func() []byte {
		n := 1 + rng.Intn(10)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	for step := 0; step < 3000; step++ {
		k := randKey()
		switch rng.Intn(5) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			existed, err := c.Insert(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, want := oracle[string(k)]; existed != want {
				t.Fatalf("step %d insert existed=%v want %v", step, existed, want)
			}
			oracle[string(k)] = v
		case 2:
			ok, err := c.Delete(k)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if _, want := oracle[string(k)]; ok != want {
				t.Fatalf("step %d delete ok=%v want %v", step, ok, want)
			}
			delete(oracle, string(k))
		case 3:
			v := fmt.Sprintf("u%d", step)
			ok, err := c.Update(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			if _, want := oracle[string(k)]; ok != want {
				t.Fatalf("step %d update ok=%v want %v", step, ok, want)
			}
			if ok {
				oracle[string(k)] = v
			}
		default:
			got, ok, err := c.Search(k)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			want, wantOK := oracle[string(k)]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d search %q = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
	kvs, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(oracle) {
		t.Fatalf("scan %d keys, oracle %d", len(kvs), len(oracle))
	}
	var keys []string
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := range kvs {
		if string(kvs[i].Key) != keys[i] {
			t.Fatalf("scan[%d] = %q want %q", i, kvs[i].Key, keys[i])
		}
	}
}

func TestConcurrentClientsSharedCache(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig())
	cache := NewNodeCache(8 << 20)
	const workers = 6
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(shared, f.NewClient(), Options{Cache: cache})
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if _, err := c.Insert(k, []byte(fmt.Sprint(i))); err != nil {
					errs <- fmt.Errorf("w%d insert: %w", w, err)
					return
				}
				if v, ok, err := c.Search(k); err != nil || !ok || string(v) != fmt.Sprint(i) {
					errs <- fmt.Errorf("w%d readback %d: %v %v", w, i, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	verify := NewClient(shared, f.NewClient(), Options{})
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%02d-%04d", w, i))
			if _, ok, err := verify.Search(k); err != nil || !ok {
				t.Fatalf("%q missing: %v", k, err)
			}
		}
	}
}

func TestConcurrentChurn(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig())
	cache := NewNodeCache(4 << 20)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(shared, f.NewClient(), Options{Cache: cache})
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("churn-%d-%d", w, i%20))
				if _, err := c.Insert(k, []byte("v")); err != nil {
					errs <- fmt.Errorf("w%d insert: %w", w, err)
					return
				}
				if _, err := c.Delete(k); err != nil {
					errs <- fmt.Errorf("w%d delete: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	c := NewClient(shared, f.NewClient(), Options{})
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("s%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan([]byte("s0100"), []byte("s0199"), 0)
	if err != nil || len(kvs) != 100 {
		t.Fatalf("scan: %d %v", len(kvs), err)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("unsorted scan")
		}
	}
}

func TestCacheEviction(t *testing.T) {
	nc := NewNodeCache(3 * cachedNodeCost)
	for i := 0; i < 10; i++ {
		n := rart.NewNode(3, []byte{byte(i)}, 1)
		n.Addr = mem.NewAddr(0, uint64(i+1)*4096)
		nc.Add(n)
	}
	st := nc.Stats()
	if st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 7 {
		t.Errorf("evictions = %d, want 7", st.Evictions)
	}
	if st.UsedBytes != 3*cachedNodeCost {
		t.Errorf("used = %d", st.UsedBytes)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	nc := NewNodeCache(2 * cachedNodeCost)
	n1 := rart.NewNode(3, []byte("a"), 1)
	n1.Addr = mem.NewAddr(0, 4096)
	n2 := rart.NewNode(3, []byte("b"), 1)
	n2.Addr = mem.NewAddr(0, 8192)
	n3 := rart.NewNode(3, []byte("c"), 1)
	n3.Addr = mem.NewAddr(0, 12288)
	nc.Add(n1)
	nc.Add(n2)
	nc.Get(n1.Addr) // refresh n1
	nc.Add(n3)      // must evict n2
	if nc.Get(n2.Addr) != nil {
		t.Error("LRU evicted the wrong entry")
	}
	if nc.Get(n1.Addr) == nil || nc.Get(n3.Addr) == nil {
		t.Error("expected entries missing")
	}
}

func TestLargerCacheJumpsDeeper(t *testing.T) {
	// SMART+C's advantage: with a larger cache the local walk terminates
	// deeper, shaving remote levels. Compare average jump depth across
	// budgets on the same key set.
	f, shared := newCluster(t, 2, fabric.InstantConfig())
	loader := NewClient(shared, f.NewClient(), Options{})
	var keys [][]byte
	for i := 0; i < 800; i++ {
		k := []byte(fmt.Sprintf("deep/%02d/%02d/%04d", i%4, i%16, i))
		keys = append(keys, k)
		if _, err := loader.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	meanJump := func(budget uint64) float64 {
		c := NewClient(shared, f.NewClient(), Options{CacheBudget: budget})
		for _, k := range keys {
			if _, ok, err := c.Search(k); err != nil || !ok {
				t.Fatal(ok, err)
			}
		}
		st := c.ClientStats()
		return float64(st.JumpDepthSum) / float64(st.Searches)
	}
	small := meanJump(2 * cachedNodeCost) // two nodes
	big := meanJump(32 << 20)             // everything fits
	if big <= small {
		t.Errorf("bigger cache did not deepen jumps: %.2f vs %.2f", big, small)
	}
}

func TestReverseCheckCountsRejections(t *testing.T) {
	// Stale cache entries whose fresh image fails the path check must be
	// invalidated and counted.
	f, shared := newCluster(t, 1, fabric.InstantConfig())
	a := NewClient(shared, f.NewClient(), Options{})
	b := NewClient(shared, f.NewClient(), Options{})
	k1, k2 := []byte("stale/check/one"), []byte("stale/check/two")
	if _, err := a.Insert(k1, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(k2, []byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Search(k1); !ok {
		t.Fatal("warm failed")
	}
	// Restructure above B's cached node repeatedly.
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("stale/%c%04d", 'a'+i%8, i))
		if _, err := a.Insert(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("stale/%c%04d", 'a'+i%8, i))
		if _, ok, err := b.Search(k); err != nil || !ok {
			t.Fatalf("B search %q: %v %v", k, ok, err)
		}
	}
	// Not asserting a count > 0 (depends on layout), but the cache stats
	// must be internally consistent.
	cs := b.Cache().Stats()
	if cs.UsedBytes > cs.BudgetBytes {
		t.Errorf("cache over budget: %+v", cs)
	}
}
