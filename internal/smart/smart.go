// Package smart reimplements SMART [OSDI'23], the state-of-the-art ART for
// disaggregated memory the paper compares against (§II-B, §V-A), as the
// paper characterises it:
//
//   - every inner node is preallocated with a Node-256 footprint and grows
//     in place, so node addresses never change — the design that avoids
//     cache-coherence problems at the price of the 2.1–3.0× MN-side memory
//     overhead reported in Fig. 6;
//   - each compute node keeps a byte-budgeted cache of inner nodes. Index
//     operations first walk the cached tree locally, then continue the
//     traversal remotely from the deepest cached node, one round trip per
//     remaining level, re-validating the jump target against the key path
//     (the reverse-check mechanism) and invalidating stale entries.
//
// With a large cache over a static tree, a search can reach the deepest
// inner node in one round trip; with the realistic small caches of the
// paper's evaluation, most levels miss and the round-trip count approaches
// the naive port's — the effect behind Fig. 4 and Fig. 5.
package smart

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"sync"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// Shared is the cluster-wide descriptor of one SMART index.
type Shared struct {
	Root mem.Addr
	Ring *consistenthash.Ring
}

// Bootstrap creates an empty SMART index at cluster-setup time.
func Bootstrap(f *fabric.Fabric, ring *consistenthash.Ring) (Shared, error) {
	alloc := mem.NewAllocator(f.Regions(), 0)
	home := ring.OwnerKey(nil)
	root, err := rart.BootstrapRoot(f.Region(home), alloc, home)
	if err != nil {
		return Shared{}, fmt.Errorf("smart: bootstrap root: %w", err)
	}
	return Shared{Root: root, Ring: ring}, nil
}

// NodeCache is the per-CN node cache, shared by the CN's workers and
// bounded by a byte budget. Every cached node is charged its full
// preallocated Node-256 footprint, matching how SMART's cache budget is
// consumed on real hardware.
type NodeCache struct {
	mu     sync.Mutex
	budget uint64
	used   uint64
	ll     *list.List // front = most recently used
	items  map[mem.Addr]*list.Element

	hits, misses, evictions, invalidations uint64
}

type cacheEntry struct {
	addr mem.Addr
	node *rart.Node // treated as immutable once cached
}

const cachedNodeCost = wire.SlotBase + 8*256 // wire.NodeSize(Node256)

// NewNodeCache creates a cache with the given byte budget.
func NewNodeCache(budget uint64) *NodeCache {
	return &NodeCache{budget: budget, ll: list.New(), items: make(map[mem.Addr]*list.Element)}
}

// CacheStats summarizes cache behaviour.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations uint64
	UsedBytes, BudgetBytes                 uint64
	Entries                                int
}

// Stats returns a snapshot of the cache counters.
func (nc *NodeCache) Stats() CacheStats {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return CacheStats{
		Hits: nc.hits, Misses: nc.misses, Evictions: nc.evictions,
		Invalidations: nc.invalidations,
		UsedBytes:     nc.used, BudgetBytes: nc.budget, Entries: len(nc.items),
	}
}

// Get returns the cached node at addr, refreshing its recency.
func (nc *NodeCache) Get(addr mem.Addr) *rart.Node {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	el, ok := nc.items[addr]
	if !ok {
		nc.misses++
		return nil
	}
	nc.hits++
	nc.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).node
}

// Add caches a freshly read node, evicting LRU entries past the budget.
func (nc *NodeCache) Add(n *rart.Node) {
	if n.Addr.IsNull() {
		return
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if el, ok := nc.items[n.Addr]; ok {
		el.Value.(*cacheEntry).node = n
		nc.ll.MoveToFront(el)
		return
	}
	if uint64(cachedNodeCost) > nc.budget {
		return
	}
	for nc.used+cachedNodeCost > nc.budget && nc.ll.Len() > 0 {
		back := nc.ll.Back()
		nc.removeLocked(back)
		nc.evictions++
	}
	el := nc.ll.PushFront(&cacheEntry{addr: n.Addr, node: n})
	nc.items[n.Addr] = el
	nc.used += cachedNodeCost
}

// Invalidate drops a stale entry (reverse check failed).
func (nc *NodeCache) Invalidate(addr mem.Addr) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if el, ok := nc.items[addr]; ok {
		nc.removeLocked(el)
		nc.invalidations++
	}
}

func (nc *NodeCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(nc.items, e.addr)
	nc.ll.Remove(el)
	nc.used -= cachedNodeCost
}

// Options tunes one SMART client.
type Options struct {
	// Cache is the CN's shared node cache; if nil, CacheBudget sizes a
	// private one (default 16 MiB).
	Cache       *NodeCache
	CacheBudget uint64
	// Engine passes through node-engine tuning; Prealloc256 is forced on.
	Engine rart.Config
}

// Client is one worker's handle on a SMART index. Not safe for concurrent
// use; workers of a CN share only the NodeCache.
type Client struct {
	shared Shared
	eng    *rart.Engine
	cache  *NodeCache
	stats  Stats
}

// Stats counts SMART-level events.
type Stats struct {
	Searches, Inserts, Updates, Deletes, Scans uint64
	JumpDepthSum                               uint64 // cumulative depth of cache-walk jump targets
	JumpRejected                               uint64 // reverse check failed; cache entry dropped
	Restarts                                   uint64
}

// NewClient mounts a SMART index over one fabric client.
func NewClient(shared Shared, c *fabric.Client, opts Options) *Client {
	cfg := opts.Engine
	cfg.Prealloc256 = true
	alloc := mem.NewAllocator(c, 0)
	cache := opts.Cache
	if cache == nil {
		budget := opts.CacheBudget
		if budget == 0 {
			budget = 16 << 20
		}
		cache = NewNodeCache(budget)
	}
	return &Client{
		shared: shared,
		eng:    rart.NewEngine(c, alloc, shared.Ring, cfg),
		cache:  cache,
	}
}

// Engine exposes the underlying engine.
func (c *Client) Engine() *rart.Engine { return c.eng }

// Cache exposes the CN node cache.
func (c *Client) Cache() *NodeCache { return c.cache }

// ClientStats returns the client's counters.
func (c *Client) ClientStats() Stats { return c.stats }

func retriable(err error) bool {
	return errors.Is(err, rart.ErrRestart) ||
		errors.Is(err, fabric.ErrTransient) ||
		errors.Is(err, fabric.ErrTimeout)
}

// hooks caches every inner node fetched during remote traversals.
type hooks struct{ c *Client }

// SawNode implements rart.Hooks.
func (h hooks) SawNode(prefix []byte, n *rart.Node) { h.c.cache.Add(n) }

// NewInner implements rart.Hooks: fresh nodes go straight into the cache.
func (h hooks) NewInner(prefix []byte, n *rart.Node) error {
	h.c.cache.Add(n)
	return nil
}

// TypeSwitched implements rart.Hooks; unreachable under Prealloc256.
func (h hooks) TypeSwitched(prefix []byte, old, grown *rart.Node) error { return nil }

// localWalk walks the cached tree and returns the deepest cached node
// lying on key's path, or the root address when nothing useful is cached.
// Purely CN-local: zero round trips.
func (c *Client) localWalk(key []byte, maxDepth int) (mem.Addr, int) {
	bestAddr, bestDepth := c.shared.Root, 0
	addr := c.shared.Root
	for hops := 0; hops < wire.MaxDepth+2; hops++ {
		n := c.cache.Get(addr)
		if n == nil {
			return bestAddr, bestDepth
		}
		if match, _ := rart.OnPath(n, key); !match {
			return bestAddr, bestDepth
		}
		depth := int(n.Hdr.Depth)
		if depth > maxDepth {
			return bestAddr, bestDepth
		}
		bestAddr, bestDepth = addr, depth
		if depth >= len(key) {
			return bestAddr, bestDepth
		}
		slot, _, ok := n.Child(key[depth])
		if !ok || slot.Leaf {
			return bestAddr, bestDepth
		}
		addr = slot.Addr
	}
	return bestAddr, bestDepth
}

// jump fetches and validates the local walk's target: the fresh remote
// image must still lie on the key's path (SMART's reverse check). On
// failure the stale cache entry is dropped and the walk retried shallower.
func (c *Client) jump(key []byte) (*rart.Node, int, error) {
	maxDepth := len(key)
	for {
		addr, depth := c.localWalk(key, maxDepth)
		n, err := c.eng.ReadNode(addr, wire.Node256)
		if err != nil {
			return nil, 0, err
		}
		if addr == c.shared.Root {
			return n, 0, nil
		}
		match, _ := rart.OnPath(n, key)
		if n.Hdr.Status != wire.StatusInvalid && match {
			c.cache.Add(n)
			c.stats.JumpDepthSum += uint64(depth)
			return n, depth, nil
		}
		c.stats.JumpRejected++
		c.cache.Invalidate(addr)
		maxDepth = depth - 1
	}
}

// Search returns the value stored for key.
func (c *Client) Search(key []byte) ([]byte, bool, error) {
	if err := c.checkKey(key); err != nil {
		return nil, false, err
	}
	c.stats.Searches++
	for bo := c.eng.Backoff(); ; {
		start, _, err := c.jump(key)
		var leaf *rart.Leaf
		if err == nil {
			leaf, err = c.eng.SearchFrom(start, key, hooks{c})
		}
		if retriable(err) {
			c.stats.Restarts++
			if bo.Wait() {
				continue
			}
			return nil, false, fmt.Errorf("%w: smart search for %q", rart.ErrRetriesExhausted, key)
		}
		if err != nil {
			return nil, false, err
		}
		if leaf == nil || !bytes.Equal(leaf.Key, key) {
			return nil, false, nil
		}
		return leaf.Value, true, nil
	}
}

// Insert stores value for key (upsert), reporting whether it existed.
func (c *Client) Insert(key, value []byte) (bool, error) {
	c.stats.Inserts++
	return c.put(key, value, rart.PutUpsert)
}

// Update overwrites an existing key, reporting whether it was present.
func (c *Client) Update(key, value []byte) (bool, error) {
	c.stats.Updates++
	return c.put(key, value, rart.PutUpdateOnly)
}

func (c *Client) put(key, value []byte, mode rart.PutMode) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	for bo := c.eng.Backoff(); ; {
		start, depth, err := c.jump(key)
		var existed bool
		if err == nil {
			existed, err = c.eng.PutFrom(start, key, value, mode, hooks{c})
		}
		switch {
		case errors.Is(err, rart.ErrNeedParent):
			// A split is needed at the jump target; its parent is not
			// known from here, so force a shallower start.
			c.cache.Invalidate(start.Addr)
			if depth == 0 {
				return false, fmt.Errorf("smart: split required at root for %q", key)
			}
		case retriable(err):
			c.stats.Restarts++
		case err != nil:
			return false, err
		default:
			return existed, nil
		}
		if !bo.Wait() {
			return false, fmt.Errorf("%w: smart put for %q", rart.ErrRetriesExhausted, key)
		}
	}
}

// Delete removes key, reporting whether it was present.
func (c *Client) Delete(key []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	c.stats.Deletes++
	for bo := c.eng.Backoff(); ; {
		start, _, err := c.jump(key)
		var ok bool
		if err == nil {
			ok, err = c.eng.DeleteFrom(start, key, hooks{c})
		}
		if retriable(err) {
			c.stats.Restarts++
			if bo.Wait() {
				continue
			}
			return false, fmt.Errorf("%w: smart delete for %q", rart.ErrRetriesExhausted, key)
		}
		return ok, err
	}
}

// Scan returns up to limit keys in [lo, hi], ascending, using doorbell
// batching per level like Sphinx (the paper groups SMART with Sphinx on
// YCSB-E for exactly this reason).
func (c *Client) Scan(lo, hi []byte, limit int) ([]rart.KV, error) {
	c.stats.Scans++
	for bo := c.eng.Backoff(); ; {
		root, err := c.eng.ReadNode(c.shared.Root, wire.Node256)
		var kvs []rart.KV
		if err == nil {
			kvs, err = c.eng.ScanFrom(root, lo, hi, limit, true)
		}
		if err == nil {
			return kvs, nil
		}
		if !retriable(err) {
			return nil, err
		}
		c.stats.Restarts++
		if !bo.Wait() {
			return nil, fmt.Errorf("%w: smart scan", rart.ErrRetriesExhausted)
		}
	}
}

func (c *Client) checkKey(key []byte) error {
	if len(key) == 0 || len(key) > wire.MaxDepth {
		return fmt.Errorf("smart: key length %d out of range", len(key))
	}
	return nil
}
