package obs

import (
	"errors"
	"sync"
	"testing"
)

// TestSeriesRejectsZeroWindows checks the typed construction error for
// non-positive window length or count.
func TestSeriesRejectsZeroWindows(t *testing.T) {
	for _, tc := range []struct{ ps int64; n int }{
		{0, 8}, {-1, 8}, {1000, 0}, {1000, -3}, {0, 0},
	} {
		if _, err := NewSeries(tc.ps, tc.n); !errors.Is(err, ErrZeroWindow) {
			t.Fatalf("NewSeries(%d,%d) err = %v, want ErrZeroWindow", tc.ps, tc.n, err)
		}
	}
	if s, err := NewSeries(1000, 4); err != nil || s == nil {
		t.Fatalf("valid NewSeries failed: %v", err)
	}
}

// TestSeriesAggregation checks per-window count/sum/min/max/last and
// ordering of Windows().
func TestSeriesAggregation(t *testing.T) {
	s, _ := NewSeries(100, 8)
	s.Record(10, 3)
	s.Record(20, 1)
	s.Record(99, 7)
	s.Record(150, 5) // next window
	ws := s.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	w0 := ws[0]
	if w0.StartPs != 0 || w0.Count != 3 || w0.Sum != 11 || w0.Min != 1 || w0.Max != 7 || w0.Last != 7 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w0.Mean() != 11.0/3.0 {
		t.Fatalf("mean = %v", w0.Mean())
	}
	if ws[1].StartPs != 100 || ws[1].Count != 1 || ws[1].Last != 5 {
		t.Fatalf("window 1 = %+v", ws[1])
	}
	if latest, ok := s.Latest(); !ok || latest.StartPs != 100 {
		t.Fatalf("latest = %+v ok=%v", latest, ok)
	}
}

// TestSeriesWrapAround fills more windows than the ring holds and
// checks that only the newest `windows` survive, in order.
func TestSeriesWrapAround(t *testing.T) {
	s, _ := NewSeries(10, 4)
	for i := int64(0); i < 10; i++ { // windows 0..9, ring keeps 6..9
		s.Record(i*10, float64(i))
	}
	ws := s.Windows()
	if len(ws) != 4 {
		t.Fatalf("windows = %d, want ring capacity 4", len(ws))
	}
	for i, w := range ws {
		wantStart := int64(60 + 10*i)
		if w.StartPs != wantStart || w.Count != 1 || w.Last != float64(6+i) {
			t.Fatalf("window %d = %+v, want start %d", i, w, wantStart)
		}
	}
}

// TestSeriesClockJumps checks virtual-clock jumps: a jump across a few
// windows leaves empty intermediates in the ring; a jump past the whole
// ring restarts it; a stale (backwards) clock folds into the newest
// window instead of corrupting the ring.
func TestSeriesClockJumps(t *testing.T) {
	s, _ := NewSeries(10, 8)
	s.Record(5, 1)
	s.Record(35, 2) // skips windows 10 and 20
	ws := s.Windows()
	if len(ws) != 4 {
		t.Fatalf("windows = %d, want 4 (two empty intermediates)", len(ws))
	}
	if ws[1].Count != 0 || ws[2].Count != 0 {
		t.Fatalf("intermediate windows not empty: %+v %+v", ws[1], ws[2])
	}
	if ws[3].StartPs != 30 || ws[3].Count != 1 {
		t.Fatalf("newest window = %+v", ws[3])
	}

	// Jump far beyond the ring: everything resets to one fresh window.
	s.Record(1_000_000, 9)
	ws = s.Windows()
	if len(ws) != 1 || ws[0].StartPs != 1_000_000 || ws[0].Last != 9 {
		t.Fatalf("after huge jump windows = %+v", ws)
	}

	// Stale clock: folded into the newest window.
	s.Record(500, 4)
	ws = s.Windows()
	if len(ws) != 1 || ws[0].Count != 2 || ws[0].Last != 4 {
		t.Fatalf("after stale record windows = %+v", ws)
	}
}

// TestSeriesConcurrentScrape races recorders advancing the ring against
// scrapers; run under -race this checks the locking discipline, and the
// final state must account for every sample in the retained windows.
func TestSeriesConcurrentScrape(t *testing.T) {
	s, _ := NewSeries(100, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Record(int64(i)*7, 1)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, w := range s.Windows() {
					if w.Count == 0 && w.Sum != 0 {
						t.Error("torn window: zero count with nonzero sum")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// All four recorders end in the top window range; everything still
	// in the ring must sum consistently (count == sum since v == 1).
	var count uint64
	var sum float64
	for _, w := range s.Windows() {
		count += w.Count
		sum += w.Sum
	}
	if float64(count) != sum {
		t.Fatalf("count %d != sum %v", count, sum)
	}
	if count == 0 || count > 4000 {
		t.Fatalf("retained count %d out of range", count)
	}

	// The nil series (plane disabled) is inert.
	var nils *Series
	nils.Record(0, 1)
	if nils.Windows() != nil {
		t.Fatal("nil series not inert")
	}
}
