package obs

import "fmt"

// Rule is a declarative alert condition over plane signals, e.g.
// {Signal: "nic_busy_ratio", Over: 0.8, ForTicks: 3} reads as
// "nic_busy_ratio > 0.8 for 3 windows". Signals are labeled (per MN
// node, per SLO name); a rule evaluates every label of its signal
// independently unless Label pins one.
type Rule struct {
	Name  string `json:"name"`
	// Signal names a plane signal family: nic_busy_ratio,
	// nic_wait_ratio, nic_verb_share, hash_load, arena_occupancy,
	// health, slo_fast_burn, slo_slow_burn.
	Signal string `json:"signal"`
	// Label pins the rule to one label value (a node number or SLO
	// name); empty means every label of the signal.
	Label string `json:"label,omitempty"`
	// Over is the firing threshold: the condition is "value > Over"
	// (or "value < Over" when Below is set).
	Over  float64 `json:"over"`
	Below bool    `json:"below,omitempty"`
	// ForTicks is the hysteresis on the way up: the condition must hold
	// for this many consecutive ticks before the alert fires (min 1).
	ForTicks int `json:"for_ticks"`
	// ClearTicks is the hysteresis on the way down: the condition must
	// be false for this many consecutive ticks before a firing alert
	// resolves. Defaults to ForTicks.
	ClearTicks int `json:"clear_ticks,omitempty"`
}

func (r Rule) String() string {
	cmp := ">"
	if r.Below {
		cmp = "<"
	}
	return fmt.Sprintf("%s %s %g for %d windows", r.Signal, cmp, r.Over, max(1, r.ForTicks))
}

// DefaultRules is the rule set installed when the caller configures
// none: NIC saturation and queueing per MN, SRE fast/slow SLO burn, and
// dead-node detection.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "mn-nic-saturated", Signal: "nic_busy_ratio", Over: 0.8, ForTicks: 3},
		{Name: "mn-nic-queueing", Signal: "nic_wait_ratio", Over: 0.5, ForTicks: 3},
		{Name: "slo-fast-burn", Signal: "slo_fast_burn", Over: 14, ForTicks: 1, ClearTicks: 2},
		{Name: "slo-slow-burn", Signal: "slo_slow_burn", Over: 6, ForTicks: 2},
		{Name: "mn-dead", Signal: "health", Over: 1.5, ForTicks: 1},
	}
}

// AlertState is the lifecycle of one (rule, label) pair.
type AlertState uint8

const (
	AlertInactive AlertState = iota // condition false, not firing
	AlertPending                    // condition true, ForTicks not yet reached
	AlertFiring                     // fired, not yet resolved
)

func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return "inactive"
	}
}

func (s AlertState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the state names String produces, so snapshots
// round-trip through JSON (e.g. a client decoding the /mn or /alerts
// endpoints).
func (s *AlertState) UnmarshalText(b []byte) error {
	switch string(b) {
	case "inactive":
		*s = AlertInactive
	case "pending":
		*s = AlertPending
	case "firing":
		*s = AlertFiring
	default:
		return fmt.Errorf("unknown alert state %q", b)
	}
	return nil
}

// Alert is the externally visible state of one (rule, label) pair.
type Alert struct {
	Rule     string     `json:"rule"`
	Signal   string     `json:"signal"`
	Label    string     `json:"label"`
	State    AlertState `json:"state"`
	Value    float64    `json:"value"`     // last evaluated signal value
	SincePs  int64      `json:"since_ps"`  // tick time of the last fire transition
	Fired    uint64     `json:"fired"`     // lifetime inactive->firing transitions
	Resolved uint64     `json:"resolved"`  // lifetime firing->inactive transitions
}

// alertEngine evaluates rules against a per-tick signal map with
// fire/resolve hysteresis. Not self-locking: the Plane serializes ticks.
type alertEngine struct {
	rules  []Rule
	states map[string]*alertState // key: rule name + \x00 + label
	order  []string               // stable output order (first-seen)
}

type alertState struct {
	rule       Rule
	label      string
	violStreak int
	okStreak   int
	alert      Alert
}

func newAlertEngine(rules []Rule) *alertEngine {
	return &alertEngine{rules: rules, states: make(map[string]*alertState)}
}

// tick evaluates every rule against signals[signal][label] = value.
func (e *alertEngine) tick(nowPs int64, signals map[string]map[string]float64) {
	for _, r := range e.rules {
		labels := signals[r.Signal]
		for label, v := range labels {
			if r.Label != "" && r.Label != label {
				continue
			}
			key := r.Name + "\x00" + label
			st, ok := e.states[key]
			if !ok {
				st = &alertState{rule: r, label: label,
					alert: Alert{Rule: r.Name, Signal: r.Signal, Label: label}}
				e.states[key] = st
				e.order = append(e.order, key)
			}
			st.step(nowPs, v)
		}
		// Labels that vanished from the signal map (e.g. a removed MN)
		// count as condition-false so firing alerts still resolve.
		for _, key := range e.order {
			st := e.states[key]
			if st.rule.Name != r.Name {
				continue
			}
			if _, live := labels[st.label]; !live {
				st.stepMissing()
			}
		}
	}
}

func (st *alertState) violated(v float64) bool {
	if st.rule.Below {
		return v < st.rule.Over
	}
	return v > st.rule.Over
}

func (st *alertState) step(nowPs int64, v float64) {
	st.alert.Value = v
	if st.violated(v) {
		st.violStreak++
		st.okStreak = 0
		forTicks := max(1, st.rule.ForTicks)
		if st.alert.State != AlertFiring {
			if st.violStreak >= forTicks {
				st.alert.State = AlertFiring
				st.alert.SincePs = nowPs
				st.alert.Fired++
			} else {
				st.alert.State = AlertPending
			}
		}
		return
	}
	st.okStreak++
	st.violStreak = 0
	if st.alert.State == AlertFiring {
		clear := st.rule.ClearTicks
		if clear < 1 {
			clear = max(1, st.rule.ForTicks)
		}
		if st.okStreak >= clear {
			st.alert.State = AlertInactive
			st.alert.Resolved++
		}
	} else {
		st.alert.State = AlertInactive
	}
}

// stepMissing treats an absent signal label as condition-false with
// value 0.
func (st *alertState) stepMissing() { st.step(0, st.neutral()) }

func (st *alertState) neutral() float64 {
	if st.rule.Below {
		return st.rule.Over // not below → not violated
	}
	return 0
}

// alerts returns every tracked (rule, label) state in first-seen order.
func (e *alertEngine) alerts() []Alert {
	out := make([]Alert, 0, len(e.order))
	for _, key := range e.order {
		out = append(out, e.states[key].alert)
	}
	return out
}
