package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"

	"sphinx/internal/fabric"
)

// TailSample is one auto-captured slow operation: its full round-trip
// timeline plus a derived one-line cause, so the trace arrives
// pre-explained ("sfc false positive at prefix 3: unlearned" or a
// dominant-stage summary).
type TailSample struct {
	Trace       *Trace
	Kind        OpKind
	LatencyPs   uint64
	ThresholdPs uint64 // the moving-quantile bar the op cleared
	Cause       string
	Seq         uint64 // monotone capture number
}

// TailSampler is an always-on reservoir of slow-operation traces: every
// finished op's latency feeds a per-op-kind moving distribution, and ops
// at or above the configured quantile (p99 by default) have their trace
// deep-copied into a bounded ring. It is mutex-guarded so sequential
// workers across goroutines can share one sampler; the recorders feeding
// it remain per-worker.
type TailSampler struct {
	mu       sync.Mutex
	quantile float64
	warmup   uint64
	minPop   uint64 // observations needed before the quantile is meaningful
	buckets  [NumOps][NumBuckets]uint64 // power-of-two latency counts
	counts   [NumOps]uint64
	samples  []TailSample // ring of the most recent captures
	next     int
	seq      uint64
	offered  uint64
	captured uint64
}

// NewTailSampler creates a sampler keeping up to capacity traces at or
// above the given latency quantile (0 < quantile < 1; out-of-range
// values select the default p99). A per-op-kind minimum population must
// pass before anything is captured: at least the 64-observation warmup,
// and at least ceil(1/(1-quantile)) observations so the quantile itself
// is meaningful — below that, the target rank equals the population and
// the "threshold" degenerates to the busiest bucket's lower edge,
// capturing essentially every op.
func NewTailSampler(quantile float64, capacity int) *TailSampler {
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.99
	}
	if capacity <= 0 {
		capacity = 32
	}
	return &TailSampler{
		quantile: quantile,
		warmup:   64,
		minPop:   uint64(math.Ceil(1 / (1 - quantile))),
		samples:  make([]TailSample, 0, capacity),
	}
}

// thresholdLocked returns the lower edge of the bucket holding the
// quantile-th observation for kind: an op is "tail" when it lands in the
// same power-of-two bucket as the quantile or above it.
func (ts *TailSampler) thresholdLocked(kind OpKind) uint64 {
	target := uint64(math.Ceil(ts.quantile * float64(ts.counts[kind])))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range ts.buckets[kind] {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			return BucketUpper(i-1) + 1
		}
	}
	return math.MaxUint64
}

// Offer feeds one finished operation. It always updates the latency
// distribution; if the op clears the current quantile bar (and warmup
// has passed) its trace is cloned and retained, and Offer reports true.
// Nil-receiver- and nil-trace-safe.
func (ts *TailSampler) Offer(kind OpKind, tr *Trace) bool {
	if ts == nil || tr == nil {
		return false
	}
	lat := uint64(0)
	if d := tr.EndPs - tr.StartPs; d > 0 {
		lat = uint64(d)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.offered++
	ts.buckets[kind][bits.Len64(lat)]++
	ts.counts[kind]++
	if ts.counts[kind] <= ts.warmup || ts.counts[kind] < ts.minPop {
		return false
	}
	thr := ts.thresholdLocked(kind)
	if lat < thr || lat == 0 {
		return false
	}
	ts.seq++
	sample := TailSample{
		Trace: tr.Clone(), Kind: kind, LatencyPs: lat,
		ThresholdPs: thr, Cause: Explain(tr), Seq: ts.seq,
	}
	if len(ts.samples) < cap(ts.samples) {
		ts.samples = append(ts.samples, sample)
	} else {
		ts.samples[ts.next] = sample
		ts.next = (ts.next + 1) % len(ts.samples)
	}
	ts.captured++
	return true
}

// Samples returns the retained captures, newest first.
func (ts *TailSampler) Samples() []TailSample {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := len(ts.samples)
	out := make([]TailSample, 0, n)
	if n == 0 {
		return out
	}
	// Walk the ring backwards from the most recent write.
	start := n - 1
	if n == cap(ts.samples) {
		start = (ts.next - 1 + n) % n
	}
	for i := 0; i < n; i++ {
		out = append(out, ts.samples[(start-i+n)%n])
	}
	return out
}

// Stats reports how many ops were offered and how many were captured.
func (ts *TailSampler) Stats() (offered, captured uint64) {
	if ts == nil {
		return 0, 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.offered, ts.captured
}

// Threshold returns the current capture bar for an op kind in
// picoseconds (0 before warmup).
func (ts *TailSampler) Threshold(kind OpKind) uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.counts[kind] <= ts.warmup || ts.counts[kind] < ts.minPop {
		return 0
	}
	return ts.thresholdLocked(kind)
}

// Counters exposes the sampler's totals for registry registration.
func (ts *TailSampler) Counters() map[string]uint64 {
	offered, captured := ts.Stats()
	return map[string]uint64{"offered": offered, "captured": captured}
}

// Explain derives a one-line cause from a trace: the stage that consumed
// the most virtual time, any faulted batches, and the recorder's local
// annotations (false positives, collisions, restarts), which name the
// event that bought the extra round trips.
func Explain(t *Trace) string {
	if t == nil {
		return ""
	}
	var stageDur [fabric.NumStages]int64
	var stageRT [fabric.NumStages]uint64
	var notes []string
	faulted := 0
	for _, e := range t.Events {
		if e.Batch {
			if int(e.Stage) < fabric.NumStages {
				stageDur[e.Stage] += e.EndPs - e.StartPs
				stageRT[e.Stage] += e.RoundTrips
			}
			if e.Err != "" {
				faulted++
			}
		} else if e.Note != "" {
			notes = append(notes, e.Note)
		}
	}
	best := -1
	for i, d := range stageDur {
		if d > 0 && (best < 0 || d > stageDur[best]) {
			best = i
		}
	}
	var parts []string
	if best >= 0 {
		parts = append(parts, fmt.Sprintf("dominant stage %s: %d rt, %.2fµs of %.2fµs",
			fabric.Stage(best), stageRT[best], us(stageDur[best]), us(t.EndPs-t.StartPs)))
	}
	if faulted > 0 {
		parts = append(parts, fmt.Sprintf("%d faulted batches", faulted))
	}
	if len(notes) > 0 {
		const keep = 3
		if len(notes) > keep {
			notes = append(notes[:keep], fmt.Sprintf("(+%d more notes)", len(notes)-keep))
		}
		parts = append(parts, strings.Join(notes, "; "))
	}
	if len(parts) == 0 {
		return "no batches recorded"
	}
	return strings.Join(parts, "; ")
}
