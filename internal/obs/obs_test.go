package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"sphinx/internal/fabric"
)

func TestHistogramBucketsAndSummary(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1010 {
		t.Fatalf("count=%d sum=%d, want 6, 1010", s.Count, s.Sum)
	}
	// bits.Len64 indexing: 0→bucket 0, 1→1, {2,3}→2, 4→3, 1000→10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if got := s.Mean(); got != 1010.0/6 {
		t.Errorf("mean = %v", got)
	}
	// The 50th percentile of 6 observations is the 3rd (value 2, bucket
	// 2, upper bound 3); the max lives in bucket 10 (upper bound 1023).
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := s.Max(); got != 1023 {
		t.Errorf("max = %d, want 1023", got)
	}
	if got := s.Quantile(1.0); got != 1023 {
		t.Errorf("p100 = %d, want 1023", got)
	}
}

func TestHistogramSubAndNegativeClamp(t *testing.T) {
	var h Histogram
	h.ObservePs(-5) // clamps to zero
	before := h.Snapshot()
	h.Observe(7)
	d := h.Snapshot().Sub(before)
	if d.Count != 1 || d.Sum != 7 || d.Buckets[3] != 1 || d.Buckets[0] != 0 {
		t.Errorf("diff = %+v", d)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Begin("op", 0)
	r.Note(fabric.StageNone, 0, "note")
	r.ObserveBatch(fabric.BatchEvent{})
	r.End(0)
	if r.Trace() != nil {
		t.Error("nil recorder returned a trace")
	}
	// A live recorder before Begin drops events rather than panicking.
	live := NewRecorder()
	live.Note(fabric.StageNone, 0, "early")
	live.ObserveBatch(fabric.BatchEvent{})
	if live.Trace() != nil {
		t.Error("recorder had a trace before Begin")
	}
}

func TestRecorderTimelineAndFormat(t *testing.T) {
	r := NewRecorder()
	r.Begin("get K", 100)
	r.Note(fabric.StageFilterProbe, 100, "sfc probe hit")
	r.ObserveBatch(fabric.BatchEvent{
		Stage: fabric.StageHashRead, StartPs: 100, EndPs: 2_100_000,
		Verbs: 2, Bytes: 128, RoundTrips: 1,
	})
	r.ObserveBatch(fabric.BatchEvent{
		Stage: fabric.StageLeafRead, StartPs: 2_100_000, EndPs: 4_200_000,
		Verbs: 1, Bytes: 64, RoundTrips: 1,
	})
	r.End(4_200_000)
	tr := r.Trace()
	if tr.RoundTrips() != 2 || tr.Verbs() != 3 || tr.Bytes() != 192 {
		t.Fatalf("totals rt=%d verbs=%d bytes=%d", tr.RoundTrips(), tr.Verbs(), tr.Bytes())
	}
	if len(tr.Events) != 3 || tr.Events[0].Batch || !tr.Events[1].Batch {
		t.Fatalf("events = %+v", tr.Events)
	}
	out := tr.Format()
	for _, want := range []string{"get K: 2 round trips, 3 verbs, 192 B", "sfc probe hit", "hash-read", "leaf-read"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	a, b := NewMetrics(), NewRecorder()
	b.Begin("op", 0)
	tee := Tee{A: a, B: b}
	tee.ObserveBatch(fabric.BatchEvent{Stage: fabric.StageNodeRead, RoundTrips: 1, Verbs: 1})
	if a.StageRT(fabric.StageNodeRead).Sum != 1 {
		t.Error("metrics side missed the event")
	}
	if len(b.Trace().Events) != 1 {
		t.Error("recorder side missed the event")
	}
	Tee{}.ObserveBatch(fabric.BatchEvent{}) // both nil: no panic
}

func TestMetricsStageAndOpAccounting(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(fabric.BatchEvent{Stage: fabric.StageHashRead, RoundTrips: 1, Verbs: 2, Bytes: 128})
	m.ObserveBatch(fabric.BatchEvent{Stage: fabric.StageHashRead, RoundTrips: 0, Verbs: 1, Bytes: 64})
	m.ObserveBatch(fabric.BatchEvent{Stage: fabric.StageLeafRead, RoundTrips: 1, Verbs: 1, Bytes: 64,
		Err: fabric.ErrTransient})
	m.ObserveOp(OpGet, 4_000_000, 2)
	verbs, bytes, faults := m.StageCounters(fabric.StageHashRead)
	if verbs != 3 || bytes != 192 || faults != 0 {
		t.Errorf("hash-read counters = %d, %d, %d", verbs, bytes, faults)
	}
	if _, _, faults := m.StageCounters(fabric.StageLeafRead); faults != 1 {
		t.Errorf("leaf-read faults = %d, want 1", faults)
	}
	if got := m.StageRTTotal(); got != 2 {
		t.Errorf("stage RT total = %d, want 2", got)
	}
	if got := m.OpRTTotal(); got != 2 {
		t.Errorf("op RT total = %d, want 2", got)
	}
	if lat := m.OpLatency(OpGet); lat.Count != 1 || lat.Sum != 4_000_000 {
		t.Errorf("op latency = %+v", lat)
	}
}

func TestFieldsFlattening(t *testing.T) {
	type stats struct {
		RoundTrips uint64
		ByKind     [2]uint64
		RTTotal    uint64
		Name       string // ignored: not uint64
		small      uint64 // ignored: unexported
	}
	_ = stats{}.small
	got := Fields(&stats{RoundTrips: 7, ByKind: [2]uint64{1, 2}, RTTotal: 9})
	want := map[string]uint64{"round_trips": 7, "by_kind_0": 1, "by_kind_1": 2, "rt_total": 9}
	if len(got) != len(want) {
		t.Fatalf("fields = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if n := len(Fields((*stats)(nil))); n != 0 {
		t.Errorf("nil pointer yielded %d counters", n)
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"RoundTrips": "round_trips",
		"ByKind":     "by_kind",
		"RTTotal":    "rt_total",
		"Verbs":      "verbs",
		"BytesRead":  "bytes_read",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistrySnapshotDiffAndExport(t *testing.T) {
	var hits uint64
	m := NewMetrics()
	r := NewRegistry()
	r.AddCounters("cache", func() map[string]uint64 { return map[string]uint64{"hits": hits} })
	r.AddMetrics("sess", m)

	before := r.Snapshot()
	hits = 5
	m.ObserveBatch(fabric.BatchEvent{Stage: fabric.StageHashRead, RoundTrips: 1, Verbs: 1, Bytes: 64})
	m.ObserveOp(OpPut, 1_000_000, 3)
	after := r.Snapshot()

	d := after.Sub(before)
	if d.Counters["cache_hits"] != 5 {
		t.Errorf("diffed cache_hits = %d, want 5", d.Counters["cache_hits"])
	}
	key := `sess_op_round_trips{op="put"}`
	if h, ok := d.Hists[key]; !ok || h.Sum != 3 {
		t.Errorf("diffed %s = %+v (present %v)", key, d.Hists[key], ok)
	}
	// Histograms with zero observations stay out of the export.
	if _, ok := after.Hists[`sess_op_round_trips{op="scan"}`]; ok {
		t.Error("empty histogram was exported")
	}

	var prom strings.Builder
	if err := after.WritePrometheus(&prom, "t"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"t_cache_hits 5",
		`t_sess_stage_verbs{stage="hash-read"} 1`,
		`t_sess_op_round_trips_bucket{op="put",le="3"} 1`,
		`t_sess_op_round_trips_bucket{op="put",le="+Inf"} 1`,
		`t_sess_op_round_trips_sum{op="put"} 3`,
		`t_sess_op_round_trips_count{op="put"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	var js strings.Builder
	if err := after.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]uint64          `json:"counters"`
		Hists    map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if decoded.Counters["cache_hits"] != 5 || len(decoded.Hists) == 0 {
		t.Errorf("JSON export = %+v", decoded)
	}
}
