package obs

// IndexMetrics holds the index-semantic distributions the transport-level
// metrics cannot see: how deep the Succinct Filter Cache routes each
// locate, how many local probes that takes, and how many fingerprint-
// matching candidates each hash-entry read returns. One instance is
// shared by every worker (and pipeline lane) of a session or bench
// cluster; histograms are atomic, so concurrent observation and snapshot
// are race-clean.
type IndexMetrics struct {
	// SFCHitDepth is the prefix length (bytes) of filter-routed locates —
	// the paper's "longest live prefix" the warm path jumps to.
	SFCHitDepth Histogram
	// SFCProbes is the number of local filter probes one locate spent
	// before resolving (hit, false-positive retry chain, or full miss).
	SFCProbes Histogram
	// INHTCandidates is the number of fingerprint-matching candidates per
	// hash-entry lookup; >1 means a 12-bit fingerprint collision forced
	// extra node reads.
	INHTCandidates Histogram
}

// NewIndexMetrics returns an empty metric set.
func NewIndexMetrics() *IndexMetrics { return &IndexMetrics{} }

// Register exposes the histograms on a registry as sfc_hit_depth,
// sfc_probes and inht_candidates (the sphinx_sfc_* / sphinx_inht_*
// families once the exporter's namespace is applied).
func (im *IndexMetrics) Register(r *Registry) {
	r.AddHistogram("sfc_hit_depth", &im.SFCHitDepth)
	r.AddHistogram("sfc_probes", &im.SFCProbes)
	r.AddHistogram("inht_candidates", &im.INHTCandidates)
}
