package obs

import (
	"sync/atomic"

	"sphinx/internal/fabric"
)

// OpKind names a public index operation for per-op metrics.
type OpKind uint8

// Operation kinds, matching the public Session surface.
const (
	OpGet OpKind = iota
	OpPut
	OpUpdate
	OpDelete
	OpScan

	// NumOps sizes per-op arrays.
	NumOps = int(OpScan) + 1
)

// String names the op kind as metrics report it.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return "op?"
	}
}

// Metrics is the fixed-size metric set of one measurement domain (a
// session, or one bench run phase): latency and round-trip histograms
// per op kind, plus latency/RT histograms and verb/byte/fault counters
// per batch stage. It implements fabric.BatchObserver, so installing one
// Metrics on a set of clients (workers, pipeline mains and lanes) is all
// the wiring the stage side needs. Safe for concurrent use.
//
// Round-trip accounting invariant: summing the per-stage RT histograms
// reproduces the observed clients' fabric.Stats.RoundTrips at any
// pipeline depth (flush events carry the round trip, lane events carry
// zero); summing the per-op RT histograms reproduces it only for
// sequential (depth-1) runs, where ops observe their own RT deltas.
type Metrics struct {
	opLat [NumOps]Histogram
	opRT  [NumOps]Histogram

	stageLat   [fabric.NumStages]Histogram
	stageRT    [fabric.NumStages]Histogram
	stageVerbs [fabric.NumStages]atomic.Uint64
	stageBytes [fabric.NumStages]atomic.Uint64
	stageErrs  [fabric.NumStages]atomic.Uint64
}

// NewMetrics returns an empty metric set.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveOp records one completed operation's virtual latency and
// round-trip count.
func (m *Metrics) ObserveOp(k OpKind, latencyPs int64, roundTrips uint64) {
	m.opLat[k].ObservePs(latencyPs)
	m.opRT[k].Observe(roundTrips)
}

// ObserveBatch implements fabric.BatchObserver.
func (m *Metrics) ObserveBatch(ev fabric.BatchEvent) {
	s := int(ev.Stage)
	m.stageLat[s].ObservePs(ev.EndPs - ev.StartPs)
	m.stageRT[s].Observe(ev.RoundTrips)
	m.stageVerbs[s].Add(uint64(ev.Verbs))
	m.stageBytes[s].Add(ev.Bytes)
	if ev.Err != nil {
		m.stageErrs[s].Add(1)
	}
}

// OpLatency snapshots the latency histogram of one op kind.
func (m *Metrics) OpLatency(k OpKind) HistSnapshot { return m.opLat[k].Snapshot() }

// OpRT snapshots the round-trip histogram of one op kind.
func (m *Metrics) OpRT(k OpKind) HistSnapshot { return m.opRT[k].Snapshot() }

// StageLatency snapshots the latency histogram of one batch stage.
func (m *Metrics) StageLatency(s fabric.Stage) HistSnapshot { return m.stageLat[s].Snapshot() }

// StageRT snapshots the round-trip histogram of one batch stage.
func (m *Metrics) StageRT(s fabric.Stage) HistSnapshot { return m.stageRT[s].Snapshot() }

// StageCounters returns the verb, byte and fault totals of one stage.
func (m *Metrics) StageCounters(s fabric.Stage) (verbs, bytes, faults uint64) {
	return m.stageVerbs[s].Load(), m.stageBytes[s].Load(), m.stageErrs[s].Load()
}

// OpRTTotal sums round trips over all per-op histograms.
func (m *Metrics) OpRTTotal() uint64 {
	var total uint64
	for k := 0; k < NumOps; k++ {
		total += m.opRT[k].Snapshot().Sum
	}
	return total
}

// StageRTTotal sums round trips over all per-stage histograms. This is
// the side of the reconciliation check that holds at every pipeline
// depth.
func (m *Metrics) StageRTTotal() uint64 {
	var total uint64
	for s := 0; s < fabric.NumStages; s++ {
		total += m.stageRT[s].Snapshot().Sum
	}
	return total
}

// Tee fans one client's batch events out to two observers; either may be
// nil. It lets a trace recorder be armed without disturbing an installed
// Metrics observer.
type Tee struct {
	A, B fabric.BatchObserver
}

// ObserveBatch implements fabric.BatchObserver.
func (t Tee) ObserveBatch(ev fabric.BatchEvent) {
	if t.A != nil {
		t.A.ObserveBatch(ev)
	}
	if t.B != nil {
		t.B.ObserveBatch(ev)
	}
}
