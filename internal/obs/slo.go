package obs

import "math/bits"

// SLO is a per-op-kind latency objective: at least Quantile of ops must
// complete within LatencyPs. The error budget is 1-Quantile; burn rate
// is the windowed violation rate divided by that budget, so a burn of 1
// spends the budget exactly as fast as allowed, and (per the SRE
// multi-window convention) a fast-window burn above ~14 exhausts a
// 30-day budget in hours.
//
// Latencies come from the existing power-of-two histograms, so the
// effective threshold rounds LatencyPs up to the enclosing bucket's
// upper edge: an op is "good" iff it lands in a bucket whose upper
// bound is <= that edge.
type SLO struct {
	Name      string  `json:"name"`
	Op        OpKind  `json:"-"`
	Quantile  float64 `json:"quantile"`
	LatencyPs uint64  `json:"latency_ps"`
}

// goodBucket returns the highest histogram bucket index counted as
// within-objective for this SLO.
func (s SLO) goodBucket() int {
	if s.LatencyPs == 0 {
		return -1
	}
	return bits.Len64(s.LatencyPs)
}

// Evaluate scores the delta between two cumulative latency snapshots
// against the objective: how many ops the interval saw, how many missed
// the threshold, and the interval's burn rate. This is the same math the
// plane's SLO engine applies per tick, exposed for drivers (benchmarks)
// that want exact per-phase verdicts independent of tick cadence.
func (s SLO) Evaluate(prev, cur HistSnapshot) (ops, bad uint64, burn float64) {
	delta := cur.Sub(prev)
	goodIdx := s.goodBucket()
	var good uint64
	for i := 0; i <= goodIdx && i < NumBuckets; i++ {
		good += delta.Buckets[i]
	}
	ops = delta.Count
	bad = ops - good
	return ops, bad, burnRate(bad, ops, s.Quantile)
}

// SLOStatus is the engine's verdict for one SLO at the latest tick.
type SLOStatus struct {
	SLO        SLO     `json:"slo"`
	OpName     string  `json:"op"`
	WindowOps  uint64  `json:"window_ops"`  // ops in the latest tick window
	WindowBad  uint64  `json:"window_bad"`  // of those, above-threshold
	TotalOps   uint64  `json:"total_ops"`   // cumulative since engine start
	TotalBad   uint64  `json:"total_bad"`
	FastBurn   float64 `json:"fast_burn"`   // burn rate over the latest window
	SlowBurn   float64 `json:"slow_burn"`   // burn rate over the last slowWindows windows
	Attainment float64 `json:"attainment"`  // cumulative good fraction, 1 when idle
}

// sloState tracks one SLO across ticks: the previous cumulative
// histogram snapshot and a small ring of per-tick good/bad counts for
// the slow burn window.
type sloState struct {
	slo  SLO
	prev HistSnapshot
	ring []sloWindow
	head int
	n    int

	status SLOStatus
}

type sloWindow struct{ ops, bad uint64 }

func newSLOState(s SLO, slowWindows int) *sloState {
	if slowWindows < 1 {
		slowWindows = 1
	}
	return &sloState{slo: s, ring: make([]sloWindow, slowWindows)}
}

func burnRate(bad, ops uint64, quantile float64) float64 {
	if ops == 0 {
		return 0
	}
	budget := 1 - quantile
	if budget <= 0 {
		budget = 1e-9
	}
	return float64(bad) / float64(ops) / budget
}

// tick folds the next cumulative latency snapshot into the state and
// recomputes the status.
func (st *sloState) tick(cur HistSnapshot) SLOStatus {
	delta := cur.Sub(st.prev)
	st.prev = cur

	goodIdx := st.slo.goodBucket()
	var good uint64
	for i := 0; i <= goodIdx && i < NumBuckets; i++ {
		good += delta.Buckets[i]
	}
	ops := delta.Count
	bad := ops - good

	st.head = (st.head + 1) % len(st.ring)
	st.ring[st.head] = sloWindow{ops: ops, bad: bad}
	if st.n < len(st.ring) {
		st.n++
	}
	var slowOps, slowBad uint64
	for i := 0; i < st.n; i++ {
		w := st.ring[(st.head-i+len(st.ring)*2)%len(st.ring)]
		slowOps += w.ops
		slowBad += w.bad
	}

	st.status.SLO = st.slo
	st.status.OpName = st.slo.Op.String()
	st.status.WindowOps = ops
	st.status.WindowBad = bad
	st.status.TotalOps += ops
	st.status.TotalBad += bad
	st.status.FastBurn = burnRate(bad, ops, st.slo.Quantile)
	st.status.SlowBurn = burnRate(slowBad, slowOps, st.slo.Quantile)
	st.status.Attainment = 1
	if st.status.TotalOps > 0 {
		st.status.Attainment = 1 - float64(st.status.TotalBad)/float64(st.status.TotalOps)
	}
	return st.status
}
