// Package obs is the observability layer: allocation-free power-of-two
// histograms, per-op/per-stage metrics fed by fabric batch events, an
// optional per-operation trace recorder, and a registry that unifies the
// counter sets scattered across core, fabric and the filter cache into
// one snapshot with Prometheus-text and JSON exporters.
//
// Everything is recorded on the fabric's virtual clock, so metrics are
// deterministic for a given workload and seed, and all mutable state is
// atomic so one Metrics instance can be shared by every worker of a
// bench run under -race.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket i
// counts values v with bits.Len64(v) == i — bucket 0 holds zeros, bucket
// i ≥ 1 holds the power-of-two range [2^(i-1), 2^i). 65 buckets cover
// the whole uint64 range, so Observe never allocates and never saturates.
const NumBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram. The zero value is
// ready to use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
	// Pad the struct to a cache-line multiple (536 → 576 bytes) so that
	// in the per-op and per-stage histogram arrays one histogram's hot
	// count/sum words never share a line with a neighbour's tail buckets
	// — every worker of a phase observes into the same array.
	_ [40]byte
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObservePs records a virtual-clock duration, clamping negatives (which
// cannot happen on a monotone clock, but cheap insurance) to zero.
func (h *Histogram) ObservePs(ps int64) {
	if ps < 0 {
		ps = 0
	}
	h.Observe(uint64(ps))
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are
// read individually, so a snapshot taken concurrently with Observe calls
// is a consistent set of monotone counters, not an atomic cut — fine for
// the deterministic quiesce-then-snapshot uses in this repo.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Sub returns s - prev, bucket-wise; used to diff registry snapshots.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	for i := range s.Buckets {
		s.Buckets[i] -= prev.Buckets[i]
	}
	return s
}

// Mean returns the exact mean of the observed values (Sum is exact even
// though buckets are coarse).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket in which the q-th observation falls. With
// power-of-two buckets the answer is within 2× of the true value.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper edge of the highest populated bucket.
func (s HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}
