package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultWindowPs is the plane's default series window length: 250 ms,
// matched to the wall-clock sampling cadence of `-serve` mode. Virtual
// clock drivers (tests, bench) pick much shorter windows.
const DefaultWindowPs = 250_000_000_000

// MNSample is one memory node's cumulative counters and instantaneous
// gauges as seen by a collector. The plane differences the counters
// between ticks; the gauges pass through.
type MNSample struct {
	Node       int
	Member     bool    // in the current placement ring
	Health     string  // breaker state: closed / open / dead
	HealthCode float64 // 0 closed, 1 open, 2 dead

	// Cumulative NIC counters (monotone since fabric creation).
	RoundTrips uint64
	Verbs      uint64
	Bytes      uint64
	Faults     uint64
	BusyPs     int64
	WaitPs     int64

	// Instantaneous gauges.
	HashLoad    float64 // racehash load factor across the node's tables
	HashEntries uint64
	ArenaUsed   uint64 // bytes allocated in the node's region
	ArenaCap    uint64 // region size
}

// MNStatus is one node's row in the /mn table: latest-tick windowed
// rates plus cumulative counters, and the recent busy-ratio / verb-share
// windows for trend rendering.
type MNStatus struct {
	Node    int    `json:"node"`
	Member  bool   `json:"member"`
	Health  string `json:"health"`

	BusyRatio  float64 `json:"busy_ratio"` // NIC busy ps per elapsed ps, latest tick
	WaitRatio  float64 `json:"wait_ratio"`
	VerbShare  float64 `json:"verb_share"` // node's share of verbs, latest tick
	WindowVerbs uint64 `json:"window_verbs"`
	WindowRTs   uint64 `json:"window_rts"`

	HashLoad       float64 `json:"hash_load"`
	HashEntries    uint64  `json:"hash_entries"`
	ArenaOccupancy float64 `json:"arena_occupancy"`

	Verbs      uint64 `json:"verbs"` // cumulative
	RoundTrips uint64 `json:"round_trips"`
	Bytes      uint64 `json:"bytes"`
	Faults     uint64 `json:"faults"`

	BusyWindows  []Window `json:"busy_ratio_windows,omitempty"`
	ShareWindows []Window `json:"verb_share_windows,omitempty"`
	RTWindows    []Window `json:"rt_windows,omitempty"`
}

// PlaneOptions configures a Plane.
type PlaneOptions struct {
	// WindowPs is the series window length (DefaultWindowPs when 0).
	WindowPs int64
	// Windows is the ring length per series (default 64).
	Windows int
	// Collect returns one sample per memory node; required.
	Collect func() []MNSample
	// Latency supplies cumulative per-op latency histograms for the
	// SLO engine; nil disables SLO evaluation.
	Latency func(OpKind) HistSnapshot
	// SLOs to evaluate each tick.
	SLOs []SLO
	// Rules for the alert engine; nil installs DefaultRules.
	Rules []Rule
	// SlowWindows is the slow burn-rate window in ticks (default 6).
	SlowWindows int
}

// Plane is the cluster observability plane: per-MN windowed load
// series, SLO burn rates, and hysteresis alerting, advanced by Tick.
// Ticks are virtual-clock driven in tests and bench, wall-clock driven
// (EnsureWallTicker) in -serve mode. All methods are safe for
// concurrent use; Tick calls are serialized by the plane's lock.
type Plane struct {
	mu       sync.Mutex
	windowPs int64
	windows  int
	collect  func() []MNSample
	latency  func(OpKind) HistSnapshot
	slos     []*sloState
	engine   *alertEngine
	nodes    map[int]*mnState
	lastPs   int64
	ticks    uint64
	wallOnce sync.Once
}

type mnState struct {
	prev   MNSample
	status MNStatus
	busy   *Series
	share  *Series
	rts    *Series
}

// NewPlane builds a plane; ErrZeroWindow if WindowPs or Windows is
// negative, and Collect must be non-nil.
func NewPlane(opts PlaneOptions) (*Plane, error) {
	if opts.WindowPs == 0 {
		opts.WindowPs = DefaultWindowPs
	}
	if opts.Windows == 0 {
		opts.Windows = 64
	}
	if opts.WindowPs < 0 || opts.Windows < 0 {
		return nil, ErrZeroWindow
	}
	if opts.Collect == nil {
		return nil, fmt.Errorf("obs: plane requires a Collect func")
	}
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	slow := opts.SlowWindows
	if slow == 0 {
		slow = 6
	}
	p := &Plane{
		windowPs: opts.WindowPs,
		windows:  opts.Windows,
		collect:  opts.Collect,
		latency:  opts.Latency,
		engine:   newAlertEngine(rules),
		nodes:    make(map[int]*mnState),
	}
	for _, s := range opts.SLOs {
		p.slos = append(p.slos, newSLOState(s, slow))
	}
	return p, nil
}

// WindowPs returns the plane's series window length.
func (p *Plane) WindowPs() int64 { return p.windowPs }

// Tick advances the plane to nowPs: collects per-MN samples, records
// windowed deltas into the series, evaluates SLO burn rates from the
// latency histograms, and steps the alert engine.
func (p *Plane) Tick(nowPs int64) {
	if p == nil {
		return
	}
	samples := p.collect()
	p.mu.Lock()
	defer p.mu.Unlock()

	dt := nowPs - p.lastPs
	if dt <= 0 {
		dt = 1
	}
	p.lastPs = nowPs
	p.ticks++

	signals := map[string]map[string]float64{
		"nic_busy_ratio":  {},
		"nic_wait_ratio":  {},
		"nic_verb_share":  {},
		"hash_load":       {},
		"arena_occupancy": {},
		"health":          {},
	}

	var totalVerbs uint64
	deltas := make([]MNSample, len(samples))
	for i, s := range samples {
		st := p.nodes[s.Node]
		if st == nil {
			busy, _ := NewSeries(p.windowPs, p.windows)
			share, _ := NewSeries(p.windowPs, p.windows)
			rts, _ := NewSeries(p.windowPs, p.windows)
			st = &mnState{busy: busy, share: share, rts: rts}
			p.nodes[s.Node] = st
		}
		d := MNSample{
			RoundTrips: s.RoundTrips - st.prev.RoundTrips,
			Verbs:      s.Verbs - st.prev.Verbs,
			Bytes:      s.Bytes - st.prev.Bytes,
			Faults:     s.Faults - st.prev.Faults,
			BusyPs:     s.BusyPs - st.prev.BusyPs,
			WaitPs:     s.WaitPs - st.prev.WaitPs,
		}
		deltas[i] = d
		totalVerbs += d.Verbs
	}
	for i, s := range samples {
		st := p.nodes[s.Node]
		d := deltas[i]
		busy := float64(d.BusyPs) / float64(dt)
		wait := float64(d.WaitPs) / float64(dt)
		share := 0.0
		if totalVerbs > 0 {
			share = float64(d.Verbs) / float64(totalVerbs)
		}
		occ := 0.0
		if s.ArenaCap > 0 {
			occ = float64(s.ArenaUsed) / float64(s.ArenaCap)
		}
		st.busy.Record(nowPs, busy)
		st.share.Record(nowPs, share)
		st.rts.Record(nowPs, float64(d.RoundTrips))
		st.status = MNStatus{
			Node: s.Node, Member: s.Member, Health: s.Health,
			BusyRatio: busy, WaitRatio: wait, VerbShare: share,
			WindowVerbs: d.Verbs, WindowRTs: d.RoundTrips,
			HashLoad: s.HashLoad, HashEntries: s.HashEntries, ArenaOccupancy: occ,
			Verbs: s.Verbs, RoundTrips: s.RoundTrips, Bytes: s.Bytes, Faults: s.Faults,
		}
		st.prev = s

		label := strconv.Itoa(s.Node)
		signals["nic_busy_ratio"][label] = busy
		signals["nic_wait_ratio"][label] = wait
		signals["nic_verb_share"][label] = share
		signals["hash_load"][label] = s.HashLoad
		signals["arena_occupancy"][label] = occ
		signals["health"][label] = s.HealthCode
	}

	if p.latency != nil {
		fast := map[string]float64{}
		slowSig := map[string]float64{}
		for _, st := range p.slos {
			status := st.tick(p.latency(st.slo.Op))
			fast[st.slo.Name] = status.FastBurn
			slowSig[st.slo.Name] = status.SlowBurn
		}
		signals["slo_fast_burn"] = fast
		signals["slo_slow_burn"] = slowSig
	}

	p.engine.tick(nowPs, signals)
}

// EnsureWallTicker starts (at most once) a background goroutine that
// ticks the plane every interval of wall time, with nowPs measured as
// real elapsed picoseconds. Used by -serve mode; it keeps ticking after
// load stops so firing alerts resolve, and runs for the process
// lifetime.
func (p *Plane) EnsureWallTicker(interval time.Duration) {
	if p == nil {
		return
	}
	p.wallOnce.Do(func() {
		go func() {
			start := time.Now()
			for {
				time.Sleep(interval)
				p.Tick(time.Since(start).Nanoseconds() * 1000)
			}
		}()
	})
}

// PlaneSnapshot is the JSON shape served at /mn and embedded in bench
// reports: the per-MN table plus SLO statuses and alert states.
type PlaneSnapshot struct {
	TickPs   int64       `json:"tick_ps"`
	Ticks    uint64      `json:"ticks"`
	WindowPs int64       `json:"window_ps"`
	Nodes    []MNStatus  `json:"nodes"`
	SLOs     []SLOStatus `json:"slos,omitempty"`
	Alerts   []Alert     `json:"alerts,omitempty"`
}

// Snapshot returns the current plane state, nodes sorted by id, with
// per-node series windows included.
func (p *Plane) Snapshot() PlaneSnapshot {
	if p == nil {
		return PlaneSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := PlaneSnapshot{TickPs: p.lastPs, Ticks: p.ticks, WindowPs: p.windowPs}
	ids := make([]int, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := p.nodes[id]
		row := st.status
		row.BusyWindows = st.busy.Windows()
		row.ShareWindows = st.share.Windows()
		row.RTWindows = st.rts.Windows()
		snap.Nodes = append(snap.Nodes, row)
	}
	for _, st := range p.slos {
		snap.SLOs = append(snap.SLOs, st.status)
	}
	snap.Alerts = p.engine.alerts()
	return snap
}

// Alerts returns the current alert states in first-seen order.
func (p *Plane) Alerts() []Alert {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.alerts()
}

// SLOStatuses returns the latest SLO verdicts.
func (p *Plane) SLOStatuses() []SLOStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SLOStatus, 0, len(p.slos))
	for _, st := range p.slos {
		out = append(out, st.status)
	}
	return out
}

// Register exports the plane on a registry as the mn_* / slo_* /
// alert_* families, following the node_health{node=...} label idiom.
func (p *Plane) Register(r *Registry) {
	if p == nil {
		return
	}
	r.AddGauges("mn", func() map[string]float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		g := make(map[string]float64, len(p.nodes)*6)
		for id, st := range p.nodes {
			n := strconv.Itoa(id)
			g[fmt.Sprintf("busy_ratio{node=%q}", n)] = st.status.BusyRatio
			g[fmt.Sprintf("wait_ratio{node=%q}", n)] = st.status.WaitRatio
			g[fmt.Sprintf("verb_share{node=%q}", n)] = st.status.VerbShare
			g[fmt.Sprintf("hash_load{node=%q}", n)] = st.status.HashLoad
			g[fmt.Sprintf("arena_occupancy{node=%q}", n)] = st.status.ArenaOccupancy
			g[fmt.Sprintf("member{node=%q}", n)] = b2f(st.status.Member)
		}
		return g
	})
	r.AddCounters("mn", func() map[string]uint64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		c := make(map[string]uint64, len(p.nodes)*4)
		for id, st := range p.nodes {
			n := strconv.Itoa(id)
			c[fmt.Sprintf("verbs_total{node=%q}", n)] = st.status.Verbs
			c[fmt.Sprintf("round_trips_total{node=%q}", n)] = st.status.RoundTrips
			c[fmt.Sprintf("bytes_total{node=%q}", n)] = st.status.Bytes
			c[fmt.Sprintf("faults_total{node=%q}", n)] = st.status.Faults
		}
		return c
	})
	r.AddGauges("slo", func() map[string]float64 {
		g := make(map[string]float64)
		for _, st := range p.SLOStatuses() {
			g[fmt.Sprintf("fast_burn{slo=%q}", st.SLO.Name)] = st.FastBurn
			g[fmt.Sprintf("slow_burn{slo=%q}", st.SLO.Name)] = st.SlowBurn
			g[fmt.Sprintf("attainment{slo=%q}", st.SLO.Name)] = st.Attainment
		}
		return g
	})
	r.AddCounters("slo", func() map[string]uint64 {
		c := make(map[string]uint64)
		for _, st := range p.SLOStatuses() {
			c[fmt.Sprintf("ops_total{slo=%q}", st.SLO.Name)] = st.TotalOps
			c[fmt.Sprintf("bad_total{slo=%q}", st.SLO.Name)] = st.TotalBad
		}
		return c
	})
	r.AddGauges("alert", func() map[string]float64 {
		g := map[string]float64{}
		var firing float64
		for _, a := range p.Alerts() {
			g[fmt.Sprintf("state{rule=%q,label=%q}", a.Rule, a.Label)] = float64(a.State)
			if a.State == AlertFiring {
				firing++
			}
		}
		g["firing"] = firing
		return g
	})
	r.AddCounters("alert", func() map[string]uint64 {
		c := make(map[string]uint64)
		for _, a := range p.Alerts() {
			c[fmt.Sprintf("fired_total{rule=%q,label=%q}", a.Rule, a.Label)] = a.Fired
			c[fmt.Sprintf("resolved_total{rule=%q,label=%q}", a.Rule, a.Label)] = a.Resolved
		}
		return c
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
