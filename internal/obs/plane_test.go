package obs

import (
	"strings"
	"sync"
	"testing"
)

// fakeMNs is a mutable collector backing for plane tests.
type fakeMNs struct {
	mu      sync.Mutex
	samples []MNSample
}

func (f *fakeMNs) set(s ...MNSample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.samples = append(f.samples[:0], s...)
}

func (f *fakeMNs) collect() []MNSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]MNSample, len(f.samples))
	copy(out, f.samples)
	return out
}

// TestPlaneWindowedDeltas checks that the plane differences cumulative
// NIC counters per tick and derives busy ratio and verb share.
func TestPlaneWindowedDeltas(t *testing.T) {
	f := &fakeMNs{}
	p, err := NewPlane(PlaneOptions{WindowPs: 1000, Windows: 8, Collect: f.collect})
	if err != nil {
		t.Fatal(err)
	}
	f.set(
		MNSample{Node: 0, Member: true, Health: "closed", Verbs: 100, RoundTrips: 40, BusyPs: 500},
		MNSample{Node: 1, Member: true, Health: "closed", Verbs: 100, RoundTrips: 30, BusyPs: 300},
	)
	p.Tick(1000)
	// Second tick: node 0 did 300 more verbs, node 1 did 100.
	f.set(
		MNSample{Node: 0, Member: true, Health: "closed", Verbs: 400, RoundTrips: 90, BusyPs: 1300},
		MNSample{Node: 1, Member: true, Health: "closed", Verbs: 200, RoundTrips: 50, BusyPs: 500},
	)
	p.Tick(2000)

	snap := p.Snapshot()
	if len(snap.Nodes) != 2 || snap.Ticks != 2 {
		t.Fatalf("snapshot nodes=%d ticks=%d", len(snap.Nodes), snap.Ticks)
	}
	n0 := snap.Nodes[0]
	if n0.Node != 0 || n0.WindowVerbs != 300 || n0.WindowRTs != 50 {
		t.Fatalf("node0 = %+v", n0)
	}
	if n0.VerbShare != 0.75 {
		t.Fatalf("node0 verb share = %v, want 0.75", n0.VerbShare)
	}
	if n0.BusyRatio != 0.8 { // 800 busy ps over dt=1000
		t.Fatalf("node0 busy ratio = %v, want 0.8", n0.BusyRatio)
	}
	if n0.Verbs != 400 || n0.RoundTrips != 90 {
		t.Fatalf("node0 cumulative = %+v", n0)
	}
	if len(n0.BusyWindows) != 2 || n0.BusyWindows[1].Last != 0.8 {
		t.Fatalf("node0 busy windows = %+v", n0.BusyWindows)
	}
	if snap.Nodes[1].VerbShare != 0.25 {
		t.Fatalf("node1 verb share = %v", snap.Nodes[1].VerbShare)
	}
}

// TestSLOBurn drives the SLO engine with scripted histograms: burn 0
// while within objective, fast burn spikes on violation, slow burn
// smooths it, attainment accumulates.
func TestSLOBurn(t *testing.T) {
	var h Histogram
	slo := SLO{Name: "read-p99", Op: OpGet, Quantile: 0.99, LatencyPs: 1 << 20}
	f := &fakeMNs{}
	f.set(MNSample{Node: 0, Member: true, Health: "closed"})
	p, err := NewPlane(PlaneOptions{
		WindowPs: 1000, Windows: 8, Collect: f.collect,
		Latency: func(OpKind) HistSnapshot { return h.Snapshot() },
		SLOs:    []SLO{slo}, SlowWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tick 1: 100 good ops.
	for i := 0; i < 100; i++ {
		h.Observe(1000) // well under the 1<<20 ps threshold
	}
	p.Tick(1000)
	s := p.SLOStatuses()[0]
	if s.FastBurn != 0 || s.SlowBurn != 0 || s.WindowOps != 100 || s.WindowBad != 0 {
		t.Fatalf("steady status = %+v", s)
	}
	if s.Attainment != 1 {
		t.Fatalf("attainment = %v", s.Attainment)
	}

	// Tick 2: 50 good, 50 bad → error rate 0.5, budget 0.01, burn 50.
	for i := 0; i < 50; i++ {
		h.Observe(1000)
		h.Observe(1 << 30)
	}
	p.Tick(2000)
	s = p.SLOStatuses()[0]
	if s.WindowOps != 100 || s.WindowBad != 50 {
		t.Fatalf("violation window = %+v", s)
	}
	if s.FastBurn < 49.9 || s.FastBurn > 50.1 {
		t.Fatalf("fast burn = %v, want ~50", s.FastBurn)
	}
	// Slow burn spans both ticks: 50 bad / 200 ops / 0.01 = 25.
	if s.SlowBurn < 24.9 || s.SlowBurn > 25.1 {
		t.Fatalf("slow burn = %v, want ~25", s.SlowBurn)
	}

	// Tick 3: idle window → fast burn back to 0, totals preserved.
	p.Tick(3000)
	s = p.SLOStatuses()[0]
	if s.FastBurn != 0 || s.WindowOps != 0 {
		t.Fatalf("idle status = %+v", s)
	}
	if s.TotalOps != 200 || s.TotalBad != 50 {
		t.Fatalf("totals = %+v", s)
	}
	if s.Attainment != 0.75 {
		t.Fatalf("attainment = %v, want 0.75", s.Attainment)
	}
}

// TestAlertHysteresis checks fire-after-N-ticks, resolve-after-clear
// hysteresis, transition counters, and vanished-label resolution.
func TestAlertHysteresis(t *testing.T) {
	f := &fakeMNs{}
	p, err := NewPlane(PlaneOptions{
		WindowPs: 1000, Windows: 8, Collect: f.collect,
		Rules: []Rule{{Name: "hot", Signal: "nic_busy_ratio", Over: 0.8, ForTicks: 3, ClearTicks: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	busy := func(ps int64) { // one node whose busy delta per 1000-ps tick is ps
		cur := f.collect()
		var prev MNSample
		if len(cur) > 0 {
			prev = cur[0]
		}
		prev.Node = 0
		prev.Member = true
		prev.Health = "closed"
		prev.BusyPs += ps
		f.set(prev)
	}
	now := int64(0)
	tick := func(ps int64) {
		busy(ps)
		now += 1000
		p.Tick(now)
	}

	tick(400) // ratio 0.4: inactive
	if a := p.Alerts()[0]; a.State != AlertInactive {
		t.Fatalf("state after ok tick = %v", a.State)
	}
	tick(900) // violation 1: pending
	tick(900) // violation 2: pending
	if a := p.Alerts()[0]; a.State != AlertPending || a.Fired != 0 {
		t.Fatalf("pre-fire alert = %+v", a)
	}
	tick(900) // violation 3: fires
	a := p.Alerts()[0]
	if a.State != AlertFiring || a.Fired != 1 || a.SincePs != now {
		t.Fatalf("fired alert = %+v (now=%d)", a, now)
	}
	if a.Rule != "hot" || a.Label != "0" || a.Value != 0.9 {
		t.Fatalf("alert identity = %+v", a)
	}
	tick(900) // still firing, Fired stays 1
	if a := p.Alerts()[0]; a.State != AlertFiring || a.Fired != 1 {
		t.Fatalf("refire? %+v", a)
	}
	tick(100) // ok 1: still firing (ClearTicks 2)
	if a := p.Alerts()[0]; a.State != AlertFiring || a.Resolved != 0 {
		t.Fatalf("resolved too early: %+v", a)
	}
	tick(100) // ok 2: resolves
	a = p.Alerts()[0]
	if a.State != AlertInactive || a.Resolved != 1 || a.Fired != 1 {
		t.Fatalf("post-resolve alert = %+v", a)
	}

	// Fire again, then remove the node entirely: the vanished label
	// counts as condition-false and the alert resolves.
	tick(900)
	tick(900)
	tick(900)
	if a := p.Alerts()[0]; a.State != AlertFiring || a.Fired != 2 {
		t.Fatalf("second fire = %+v", a)
	}
	f.set() // node gone
	now += 1000
	p.Tick(now)
	now += 1000
	p.Tick(now)
	if a := p.Alerts()[0]; a.State != AlertInactive || a.Resolved != 2 {
		t.Fatalf("vanished-label resolve = %+v", a)
	}
}

// TestPlaneRegisterFamilies checks the mn_* / slo_* / alert_* exports
// land in the registry snapshot and render as labeled Prometheus
// families.
func TestPlaneRegisterFamilies(t *testing.T) {
	var h Histogram
	f := &fakeMNs{}
	f.set(MNSample{Node: 0, Member: true, Health: "closed", Verbs: 10, RoundTrips: 5,
		ArenaUsed: 256, ArenaCap: 1024, HashLoad: 0.5})
	p, err := NewPlane(PlaneOptions{
		WindowPs: 1000, Windows: 4, Collect: f.collect,
		Latency: func(OpKind) HistSnapshot { return h.Snapshot() },
		SLOs:    []SLO{{Name: "read-p99", Op: OpGet, Quantile: 0.99, LatencyPs: 1 << 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(1000)

	r := NewRegistry()
	p.Register(r)
	snap := r.Snapshot()
	for _, k := range []string{
		`mn_busy_ratio{node="0"}`,
		`mn_arena_occupancy{node="0"}`,
		`slo_fast_burn{slo="read-p99"}`,
		`alert_firing`,
	} {
		if _, ok := snap.Gauges[k]; !ok {
			t.Fatalf("gauge %q missing; have %v", k, snap.Gauges)
		}
	}
	if got := snap.Counters[`mn_verbs_total{node="0"}`]; got != 10 {
		t.Fatalf("mn_verbs_total = %d", got)
	}
	if snap.Gauges[`mn_arena_occupancy{node="0"}`] != 0.25 {
		t.Fatalf("arena occupancy = %v", snap.Gauges[`mn_arena_occupancy{node="0"}`])
	}
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb, "sphinx"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sphinx_mn_busy_ratio{node="0"}`,
		`sphinx_slo_attainment{slo="read-p99"} 1`,
		`sphinx_alert_firing 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// Concurrent scrape vs tick is race-clean.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			p.Tick(int64(i+2) * 1000)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = p.Snapshot()
		}
	}()
	wg.Wait()

	// The nil plane (observability disabled) is inert.
	var np *Plane
	np.Tick(1)
	if np.Alerts() != nil || np.SLOStatuses() != nil || len(np.Snapshot().Nodes) != 0 {
		t.Fatal("nil plane not inert")
	}
}
