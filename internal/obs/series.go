package obs

import (
	"errors"
	"sync"
)

// ErrZeroWindow is returned by NewSeries when the window length or the
// window count is not positive.
var ErrZeroWindow = errors.New("obs: series window length and window count must be positive")

// Window is one fixed-length aggregation window of a Series. Count is
// the number of samples recorded in [StartPs, StartPs+windowPs); Sum,
// Min, Max and Last summarize them. A window with Count == 0 carries no
// samples (Min/Max/Sum/Last are zero).
type Window struct {
	StartPs int64   `json:"start_ps"`
	Count   uint64  `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Last    float64 `json:"last"`
}

// Mean returns the window's average sample, or 0 for an empty window.
func (w Window) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// Series is a bounded ring of fixed-length time windows. Record places
// a sample into the window owning its timestamp, advancing the ring and
// zeroing skipped windows when time moves forward (virtual-clock jumps
// across many windows are fine: intermediate windows stay empty, and a
// jump past the whole ring simply restarts it at the new position).
// Samples older than the newest window are folded into the newest
// window rather than dropped, so slightly stale virtual clocks from
// concurrent recorders cannot corrupt the ring.
//
// The hot path (Record) is allocation-free; the ring is allocated once
// at construction. All methods are safe for concurrent use, so a scrape
// (Windows) can race a rotation.
type Series struct {
	mu       sync.Mutex
	windowPs int64
	ring     []Window
	head     int // ring index of the newest window
	n        int // number of populated windows, 0..len(ring)
}

// NewSeries builds a series of `windows` ring slots, each covering
// windowPs picoseconds. Both must be positive or ErrZeroWindow is
// returned.
func NewSeries(windowPs int64, windows int) (*Series, error) {
	if windowPs <= 0 || windows <= 0 {
		return nil, ErrZeroWindow
	}
	return &Series{windowPs: windowPs, ring: make([]Window, windows)}, nil
}

// WindowPs returns the fixed window length.
func (s *Series) WindowPs() int64 { return s.windowPs }

// Record adds sample v at time nowPs.
func (s *Series) Record(nowPs int64, v float64) {
	if s == nil {
		return
	}
	if nowPs < 0 {
		nowPs = 0
	}
	start := nowPs - nowPs%s.windowPs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		s.ring[s.head] = Window{StartPs: start}
		s.n = 1
	}
	cur := s.ring[s.head].StartPs
	switch {
	case start > cur:
		steps := (start - cur) / s.windowPs
		if steps >= int64(len(s.ring)) {
			// Jumped past the whole ring: restart it at the new window.
			s.head = 0
			s.n = 1
			for i := range s.ring {
				s.ring[i] = Window{}
			}
			s.ring[0] = Window{StartPs: start}
		} else {
			for i := int64(0); i < steps; i++ {
				cur += s.windowPs
				s.head = (s.head + 1) % len(s.ring)
				s.ring[s.head] = Window{StartPs: cur}
				if s.n < len(s.ring) {
					s.n++
				}
			}
		}
	case start < cur:
		// Stale clock: fold into the newest window.
	}
	w := &s.ring[s.head]
	if w.Count == 0 || v < w.Min {
		w.Min = v
	}
	if w.Count == 0 || v > w.Max {
		w.Max = v
	}
	w.Count++
	w.Sum += v
	w.Last = v
}

// Windows returns a copy of the populated windows, oldest first. The
// newest window may still be accumulating.
func (s *Series) Windows() []Window {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	out := make([]Window, s.n)
	first := (s.head - s.n + 1 + len(s.ring)*2) % len(s.ring)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(first+i)%len(s.ring)]
	}
	return out
}

// Latest returns the newest window and whether any window exists.
func (s *Series) Latest() (Window, bool) {
	if s == nil {
		return Window{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Window{}, false
	}
	return s.ring[s.head], true
}
