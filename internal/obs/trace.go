package obs

import (
	"fmt"
	"strings"

	"sphinx/internal/fabric"
)

// Event is one entry of an operation trace: either a doorbell batch
// (Batch true, with costs) or a local annotation such as a filter probe,
// a detected collision or a restart (Batch false, Note set).
type Event struct {
	Stage      fabric.Stage
	StartPs    int64
	EndPs      int64
	Verbs      int
	Bytes      uint64
	RoundTrips uint64
	Batch      bool
	Err        string
	Note       string
}

// Trace is the recorded timeline of one index operation on the virtual
// clock.
type Trace struct {
	Op      string
	StartPs int64
	EndPs   int64
	Events  []Event
}

// RoundTrips sums the round trips of the recorded batches.
func (t *Trace) RoundTrips() uint64 {
	var total uint64
	for _, e := range t.Events {
		total += e.RoundTrips
	}
	return total
}

// Verbs sums the executed verbs of the recorded batches.
func (t *Trace) Verbs() int {
	total := 0
	for _, e := range t.Events {
		total += e.Verbs
	}
	return total
}

// Bytes sums the payload bytes of the recorded batches.
func (t *Trace) Bytes() uint64 {
	var total uint64
	for _, e := range t.Events {
		total += e.Bytes
	}
	return total
}

// Clone returns a deep copy of the trace, safe to retain after the
// recorder that produced it reuses its storage (tail sampling keeps
// clones; live recording keeps reusing the original).
func (t *Trace) Clone() *Trace {
	cp := *t
	cp.Events = append([]Event(nil), t.Events...)
	return &cp
}

func us(ps int64) float64 { return float64(ps) / 1e6 }

// Format renders the trace as the round-trip timeline sphinxcli prints:
// one line per event with the virtual timestamp relative to the op start,
// the event's own duration, its stage, and its verb/byte costs.
func (t *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d round trips, %d verbs, %d B, %.2f µs virtual\n",
		t.Op, t.RoundTrips(), t.Verbs(), t.Bytes(), us(t.EndPs-t.StartPs))
	fmt.Fprintf(&b, "  %-3s %8s %8s  %-10s %3s %5s %6s  %s\n",
		"#", "t(µs)", "+µs", "stage", "rt", "verbs", "bytes", "detail")
	for i, e := range t.Events {
		detail := e.Note
		if e.Err != "" {
			if detail != "" {
				detail += "; "
			}
			detail += "error: " + e.Err
		}
		if e.Batch {
			fmt.Fprintf(&b, "  %-3d %8.2f %8.2f  %-10s %3d %5d %6d  %s\n",
				i+1, us(e.StartPs-t.StartPs), us(e.EndPs-e.StartPs),
				e.Stage, e.RoundTrips, e.Verbs, e.Bytes, detail)
		} else {
			fmt.Fprintf(&b, "  %-3d %8.2f %8s  %-10s %3s %5s %6s  %s\n",
				i+1, us(e.StartPs-t.StartPs), "—", e.Stage, "—", "—", "—", detail)
		}
	}
	return b.String()
}

// Recorder captures one operation's trace. It implements
// fabric.BatchObserver; arming it means installing it as (or teeing it
// into) the fabric client's observer and handing it to the core client
// for local annotations, for the duration of one operation.
//
// A Recorder is NOT safe for concurrent clients — tracing is a
// sequential-session diagnostic. (Pipeline lanes notify observers before
// the flush releases the lane goroutine, so a recorder on a single lane
// is still well-ordered.) All methods are nil-receiver-safe so call
// sites need no guards beyond the cheap pointer test they already do to
// skip argument construction.
type Recorder struct {
	tr *Trace
	// live gates event capture to the Begin..End window, so a recorder
	// can stay installed as a permanent observer (always-on tail
	// sampling) without accumulating events between operations.
	live bool
}

// NewRecorder returns an idle recorder; call Begin to start a trace.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin starts recording a new trace for the named op at the given
// virtual time, discarding any previous trace.
func (r *Recorder) Begin(op string, nowPs int64) {
	if r == nil {
		return
	}
	r.tr = &Trace{Op: op, StartPs: nowPs}
	r.live = true
}

// BeginReuse is Begin reusing the previous trace's storage: after the
// first few operations an always-on recorder stops allocating entirely.
// Callers that keep a trace across BeginReuse calls must Clone it.
func (r *Recorder) BeginReuse(op string, nowPs int64) {
	if r == nil {
		return
	}
	if r.tr == nil {
		r.tr = &Trace{}
	}
	r.tr.Op, r.tr.StartPs, r.tr.EndPs = op, nowPs, 0
	r.tr.Events = r.tr.Events[:0]
	r.live = true
}

// End closes the active trace at the given virtual time.
func (r *Recorder) End(nowPs int64) {
	if r == nil || r.tr == nil {
		return
	}
	r.tr.EndPs = nowPs
	r.live = false
}

// Trace returns the most recently recorded trace (nil before Begin).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.tr
}

// Note appends a local (non-batch) annotation at the given virtual time.
func (r *Recorder) Note(stage fabric.Stage, nowPs int64, note string) {
	if r == nil || !r.live {
		return
	}
	r.tr.Events = append(r.tr.Events, Event{
		Stage: stage, StartPs: nowPs, EndPs: nowPs, Note: note,
	})
}

// ObserveBatch implements fabric.BatchObserver.
func (r *Recorder) ObserveBatch(ev fabric.BatchEvent) {
	if r == nil || !r.live {
		return
	}
	e := Event{
		Stage: ev.Stage, StartPs: ev.StartPs, EndPs: ev.EndPs,
		Verbs: ev.Verbs, Bytes: ev.Bytes, RoundTrips: ev.RoundTrips,
		Batch: true,
	}
	if ev.Err != nil {
		e.Err = ev.Err.Error()
	}
	r.tr.Events = append(r.tr.Events, e)
}
