package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeOptions configures the observability HTTP handler.
type ServeOptions struct {
	// Registry backs /metrics and /snapshot. Required.
	Registry *Registry
	// Namespace prefixes every Prometheus metric name; default "sphinx".
	Namespace string
	// Tail, when non-nil, backs /traces with the captured slow-op
	// timelines.
	Tail *TailSampler
	// Plane, when non-nil, backs /mn (per-MN load table), /slo (SLO
	// burn rates) and /alerts (alert states) with the cluster
	// observability plane.
	Plane *Plane
}

// NewHandler builds the live observability endpoint:
//
//	/metrics   Prometheus text exposition (cumulative counters)
//	/snapshot  JSON registry diff since the handler was created
//	/traces    recent tail-sampled slow-op traces, annotated
//	/mn        per-MN load table (JSON): busy/wait ratios, verb share,
//	           occupancy, health, recent windows
//	/slo       SLO statuses (JSON): fast/slow burn rates, attainment
//	/alerts    alert states (JSON): firing/pending/inactive, counters
//	/debug/pprof/...  the standard Go profiling endpoints
//
// The handler snapshots the registry once at creation so /snapshot
// reports activity "since serving started"; /metrics stays cumulative,
// as Prometheus counters must.
func NewHandler(opts ServeOptions) http.Handler {
	ns := opts.Namespace
	if ns == "" {
		ns = "sphinx"
	}
	var base Snapshot
	if opts.Registry != nil {
		base = opts.Registry.Snapshot()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "sphinx observability endpoint\n\n"+
			"/metrics       Prometheus text exposition\n"+
			"/snapshot      JSON registry diff since serving started\n"+
			"/traces        recent tail-sampled slow-op traces\n"+
			"/mn            per-MN load table (JSON)\n"+
			"/slo           SLO burn rates and attainment (JSON)\n"+
			"/alerts        alert states (JSON)\n"+
			"/debug/pprof/  Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Registry == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.Snapshot().WritePrometheus(w, ns)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if opts.Registry == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		s := opts.Registry.Snapshot()
		if r.URL.Query().Get("absolute") == "" {
			s = s.Sub(base)
		}
		_ = s.WriteJSON(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		offered, captured := opts.Tail.Stats()
		fmt.Fprintf(w, "tail samples: %d captured of %d ops offered\n\n", captured, offered)
		for _, s := range opts.Tail.Samples() {
			fmt.Fprintf(w, "#%d %s: %.2f µs (threshold %.2f µs)\n  cause: %s\n%s\n",
				s.Seq, s.Kind, float64(s.LatencyPs)/1e6, float64(s.ThresholdPs)/1e6,
				s.Cause, s.Trace.Format())
		}
	})
	planeJSON := func(w http.ResponseWriter, v func() any) {
		if opts.Plane == nil {
			http.Error(w, "no observability plane", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v())
	}
	mux.HandleFunc("/mn", func(w http.ResponseWriter, r *http.Request) {
		planeJSON(w, func() any { return opts.Plane.Snapshot() })
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		planeJSON(w, func() any { return opts.Plane.SLOStatuses() })
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		planeJSON(w, func() any { return opts.Plane.Alerts() })
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (pass host:0 for an ephemeral port) and serves h in a
// background goroutine. The caller owns the returned server: Close it to
// stop serving. The returned address is the bound listen address.
func Serve(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
