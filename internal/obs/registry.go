package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"

	"sphinx/internal/fabric"
)

// Registry unifies the counter sets scattered across the system —
// core.Stats, fabric.Stats, cuckoo.Stats, rart.EngineStats and the obs
// histograms — behind one snapshot-and-diff surface with Prometheus-text
// and JSON exporters. Sources are registered once as closures; every
// Snapshot re-reads them, so diffing two snapshots measures exactly what
// happened in between.
type Registry struct {
	mu       sync.Mutex
	counters []counterSource
	gauges   []gaugeSource
	hists    []histSource
	metrics  []metricsSource
}

type counterSource struct {
	prefix string
	fn     func() map[string]uint64
}

type gaugeSource struct {
	prefix string
	fn     func() map[string]float64
}

type histSource struct {
	name string
	h    *Histogram
}

type metricsSource struct {
	prefix string
	m      *Metrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddCounters registers a named counter source; fn is called at snapshot
// time and each entry becomes a counter named prefix_key.
func (r *Registry) AddCounters(prefix string, fn func() map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, counterSource{prefix: prefix, fn: fn})
}

// AddCounterStruct registers a struct-valued counter source: fn is
// called at snapshot time and every uint64 field (and fixed-size uint64
// array element) of the returned struct becomes a counter named
// prefix_field_name. This is how the repo's existing Stats structs plug
// in without hand-written adapters.
func (r *Registry) AddCounterStruct(prefix string, fn func() any) {
	r.AddCounters(prefix, func() map[string]uint64 { return Fields(fn()) })
}

// AddGauges registers a named gauge source: fn is called at snapshot
// time and each entry becomes a float64 gauge named prefix_key. Gauges
// carry instantaneous values (ratios, load factors), so Sub keeps the
// newer snapshot's reading instead of differencing.
func (r *Registry) AddGauges(prefix string, fn func() map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeSource{prefix: prefix, fn: fn})
}

// AddHistogram registers a standalone histogram under a fixed name
// (which may carry a {label} block). The index-semantic distributions —
// SFC hit depth, INHT candidates per lookup — plug in here.
func (r *Registry) AddHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists = append(r.hists, histSource{name: name, h: h})
}

// AddMetrics registers a Metrics set: its per-op and per-stage
// histograms appear as prefix_op_latency_ps{op="..."} etc., and the
// per-stage verb/byte/fault counters as plain counters.
func (r *Registry) AddMetrics(prefix string, m *Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, metricsSource{prefix: prefix, m: m})
}

// Snapshot reads every registered source. Histograms with zero
// observations are omitted to keep exports small; Sub treats a missing
// histogram as empty, so diffs stay correct.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
		Hists:    make(map[string]HistSnapshot),
	}
	for _, src := range r.counters {
		for k, v := range src.fn() {
			s.Counters[src.prefix+"_"+k] += v
		}
	}
	for _, src := range r.gauges {
		for k, v := range src.fn() {
			s.Gauges[src.prefix+"_"+k] = v
		}
	}
	for _, src := range r.hists {
		addHist(s.Hists, src.name, src.h.Snapshot())
	}
	for _, src := range r.metrics {
		for k := 0; k < NumOps; k++ {
			op := OpKind(k)
			addHist(s.Hists, fmt.Sprintf("%s_op_latency_ps{op=%q}", src.prefix, op), src.m.OpLatency(op))
			addHist(s.Hists, fmt.Sprintf("%s_op_round_trips{op=%q}", src.prefix, op), src.m.OpRT(op))
		}
		for st := 0; st < fabric.NumStages; st++ {
			stage := fabric.Stage(st)
			addHist(s.Hists, fmt.Sprintf("%s_stage_latency_ps{stage=%q}", src.prefix, stage), src.m.StageLatency(stage))
			addHist(s.Hists, fmt.Sprintf("%s_stage_round_trips{stage=%q}", src.prefix, stage), src.m.StageRT(stage))
			verbs, bytes, faults := src.m.StageCounters(stage)
			if verbs != 0 || bytes != 0 || faults != 0 {
				s.Counters[fmt.Sprintf("%s_stage_verbs{stage=%q}", src.prefix, stage)] += verbs
				s.Counters[fmt.Sprintf("%s_stage_bytes{stage=%q}", src.prefix, stage)] += bytes
				s.Counters[fmt.Sprintf("%s_stage_faults{stage=%q}", src.prefix, stage)] += faults
			}
		}
	}
	return s
}

func addHist(dst map[string]HistSnapshot, key string, h HistSnapshot) {
	if h.Count == 0 {
		return
	}
	dst[key] = h
}

// Snapshot is one point-in-time reading of a Registry.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// Sub returns s - prev, entry-wise; entries absent from prev are taken
// as zero. Gauges are instantaneous readings, not monotone counters, so
// the diff carries s's values unchanged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]float64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Hists {
		d := v.Sub(prev.Hists[k])
		if d.Count != 0 {
			out.Hists[k] = d
		}
	}
	return out
}

// splitName separates an optionally labeled key ("name{labels}") into
// its metric name and label block.
func splitName(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

func promLabels(labels, extra string) string {
	if labels == "" {
		if extra == "" {
			return ""
		}
		return "{" + extra + "}"
	}
	if extra == "" {
		return labels
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, prefixing every metric name with namespace. Histograms emit
// cumulative _bucket/_sum/_count series with le edges at the power-of-
// two bucket bounds.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	ns := ""
	if namespace != "" {
		ns = namespace + "_"
	}
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, labels := splitName(k)
		if _, err := fmt.Fprintf(w, "%s%s%s %d\n", ns, name, labels, s.Counters[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, labels := splitName(k)
		if _, err := fmt.Fprintf(w, "%s%s%s %g\n", ns, name, labels, s.Gauges[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Hists[k]
		name, labels := splitName(k)
		var cum uint64
		for i, b := range h.Buckets {
			if b == 0 {
				continue
			}
			cum += b
			// Sparse output: only populated buckets, cumulative as the
			// format requires.
			le := promLabels(labels, fmt.Sprintf("le=%q", fmt.Sprint(BucketUpper(i))))
			if _, err := fmt.Fprintf(w, "%s%s_bucket%s %d\n", ns, name, le, cum); err != nil {
				return err
			}
		}
		inf := promLabels(labels, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s%s_bucket%s %d\n", ns, name, inf, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s_sum%s %d\n", ns, name, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s_count%s %d\n", ns, name, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as expvar-style JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters map[string]uint64   `json:"counters"`
		Gauges   map[string]float64  `json:"gauges,omitempty"`
		Hists    map[string]histJSON `json:"histograms"`
	}{
		Counters: s.Counters,
		Gauges:   s.Gauges,
		Hists:    histsJSON(s.Hists),
	})
}

type histJSON struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

func histsJSON(in map[string]HistSnapshot) map[string]histJSON {
	out := make(map[string]histJSON, len(in))
	for k, h := range in {
		out[k] = histJSON{
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Max: h.Max(),
		}
	}
	return out
}

// Fields flattens a struct value's uint64 fields into snake_case-named
// counters; fixed-size uint64 array fields contribute one counter per
// element (name_0, name_1, …). Non-uint64 fields are ignored. Pointers
// are followed; a nil pointer yields no counters.
func Fields(v any) map[string]uint64 {
	out := make(map[string]uint64)
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return out
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return out
	}
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name := snakeCase(f.Name)
		fv := rv.Field(i)
		switch {
		case fv.Kind() == reflect.Uint64:
			out[name] = fv.Uint()
		case fv.Kind() == reflect.Array && fv.Type().Elem().Kind() == reflect.Uint64:
			for j := 0; j < fv.Len(); j++ {
				out[fmt.Sprintf("%s_%d", name, j)] = fv.Index(j).Uint()
			}
		}
	}
	return out
}

// snakeCase converts a Go exported field name (CamelCase) to
// lower_snake_case, keeping acronym runs together (ByKind → by_kind,
// RTTotal → rt_total).
func snakeCase(s string) string {
	var b strings.Builder
	for i, r := range s {
		upper := r >= 'A' && r <= 'Z'
		if upper && i > 0 {
			prevLower := s[i-1] >= 'a' && s[i-1] <= 'z'
			nextLower := i+1 < len(s) && s[i+1] >= 'a' && s[i+1] <= 'z'
			if prevLower || nextLower {
				b.WriteByte('_')
			}
		}
		if upper {
			b.WriteByte(byte(r) + 'a' - 'A')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
