package obs

import (
	"strings"
	"testing"

	"sphinx/internal/fabric"
)

func mkTrace(latPs int64, events ...Event) *Trace {
	return &Trace{Op: "Get", StartPs: 1000, EndPs: 1000 + latPs, Events: events}
}

func batchEvent(stage fabric.Stage, durPs int64, rts uint64) Event {
	return Event{Stage: stage, StartPs: 0, EndPs: durPs, RoundTrips: rts,
		Verbs: int(rts), Batch: true}
}

// TestTailSamplerThreshold feeds a known latency distribution and checks
// that only post-warmup, above-quantile, nonzero-latency ops are
// captured, and that Threshold reports the quantile bucket's lower edge.
func TestTailSamplerThreshold(t *testing.T) {
	ts := NewTailSampler(0.99, 8)

	// Warmup: the first 64 offers update the distribution but never
	// capture, no matter how slow.
	for i := 0; i < 64; i++ {
		if ts.Offer(OpGet, mkTrace(1_000_000)) {
			t.Fatalf("offer %d captured during warmup", i)
		}
	}
	if thr := ts.Threshold(OpGet); thr != 0 {
		t.Fatalf("threshold %d during warmup, want 0", thr)
	}

	// 936 more fast ops (1ms bucket) → 1000 total. A 100× outlier is
	// above the p99 bucket and must be captured.
	for i := 0; i < 936; i++ {
		ts.Offer(OpGet, mkTrace(1_000_000))
	}
	if thr := ts.Threshold(OpGet); thr == 0 || thr > 1_000_000 {
		t.Fatalf("post-warmup threshold %d, want in (0, 1e6]", thr)
	}
	if !ts.Offer(OpGet, mkTrace(100_000_000)) {
		t.Fatal("100x outlier not captured")
	}

	// Zero-latency ops (instant timing) are never tail, even though the
	// all-zero distribution puts the quantile in bucket zero.
	instant := NewTailSampler(0.99, 8)
	for i := 0; i < 200; i++ {
		if instant.Offer(OpPut, mkTrace(0)) {
			t.Fatal("zero-latency op captured")
		}
	}

	// Other kinds keep independent thresholds: OpPut saw nothing here.
	if thr := ts.Threshold(OpPut); thr != 0 {
		t.Fatalf("OpPut threshold %d leaked from OpGet observations", thr)
	}
}

// TestTailSamplerColdStart is the pre-fix-failing regression for the
// cold-start hole: between the 64-op warmup and the ~100 observations a
// p99 needs to be meaningful, the target rank ceil(0.99*n) equals n, so
// the "threshold" collapsed to the busiest bucket's lower edge and the
// sampler captured essentially every op. With the minimum-population
// gate, nothing is captured (and no threshold is reported) until the
// p99 has at least ceil(1/(1-q)) = 100 observations.
func TestTailSamplerColdStart(t *testing.T) {
	ts := NewTailSampler(0.99, 32)
	for i := 0; i < 99; i++ {
		if ts.Offer(OpGet, mkTrace(6_600_000)) { // uniform warm-Get latency
			t.Fatalf("offer %d captured before the p99 had a meaningful population", i+1)
		}
		if thr := ts.Threshold(OpGet); thr != 0 {
			t.Fatalf("threshold %d reported at population %d, want 0 before 100", thr, i+1)
		}
	}
	if _, captured := ts.Stats(); captured != 0 {
		t.Fatalf("captured %d ops during cold start, want 0", captured)
	}
	// At 100 observations the quantile becomes meaningful and the
	// sampler behaves as before: a genuine outlier is captured.
	ts.Offer(OpGet, mkTrace(6_600_000))
	if thr := ts.Threshold(OpGet); thr == 0 {
		t.Fatal("threshold still zero at population 100")
	}
	if !ts.Offer(OpGet, mkTrace(600_000_000)) {
		t.Fatal("100x outlier not captured post-gate")
	}

	// Low quantiles need smaller populations: the old 64-op warmup
	// already exceeds ceil(1/(1-0.5)) = 2, so p50 behavior is unchanged.
	p50 := NewTailSampler(0.5, 4)
	for i := 0; i < 64; i++ {
		p50.Offer(OpGet, mkTrace(1_000_000))
	}
	if !p50.Offer(OpGet, mkTrace(2_000_000)) {
		t.Fatal("p50 capture gated beyond its warmup")
	}
}

// TestTailSamplerRing checks ring-buffer retention: capacity bounds the
// sample count, Samples returns newest first, and the retained traces
// are clones that survive recorder reuse.
func TestTailSamplerRing(t *testing.T) {
	ts := NewTailSampler(0.5, 4) // p50 so every slow op captures
	for i := 0; i < 64; i++ {
		ts.Offer(OpGet, mkTrace(1_000_000))
	}
	shared := mkTrace(0, batchEvent(fabric.StageNodeRead, 5, 1))
	for i := int64(1); i <= 10; i++ {
		shared.EndPs = shared.StartPs + i*10_000_000 // monotone: each offer is the new max
		if !ts.Offer(OpGet, shared) {
			t.Fatalf("offer %d not captured at p50", i)
		}
		shared.Events[0].Note = "mutated after capture"
	}
	offered, captured := ts.Stats()
	if offered != 74 || captured != 10 {
		t.Fatalf("stats offered=%d captured=%d, want 74/10", offered, captured)
	}
	samples := ts.Samples()
	if len(samples) != 4 {
		t.Fatalf("ring retained %d samples, want capacity 4", len(samples))
	}
	for i, s := range samples {
		wantLat := uint64((10 - int64(i)) * 10_000_000)
		if s.LatencyPs != wantLat {
			t.Fatalf("sample %d latency %d, want %d (newest first)", i, s.LatencyPs, wantLat)
		}
		if s.Trace == shared {
			t.Fatal("sampler retained the live trace, not a clone")
		}
		if s.ThresholdPs == 0 || s.LatencyPs < s.ThresholdPs {
			t.Fatalf("sample %d: latency %d below threshold %d", i, s.LatencyPs, s.ThresholdPs)
		}
	}
	if samples[0].Seq != 10 {
		t.Fatalf("newest sample seq %d, want 10", samples[0].Seq)
	}

	// The nil sampler (sessions without tail sampling) is inert.
	var nilTS *TailSampler
	if nilTS.Offer(OpGet, shared) {
		t.Fatal("nil sampler captured")
	}
	if nilTS.Samples() != nil || nilTS.Threshold(OpGet) != 0 {
		t.Fatal("nil sampler not inert")
	}
}

// TestExplain checks the pre-explanation: dominant stage attribution,
// fault counting and note forwarding.
func TestExplain(t *testing.T) {
	tr := mkTrace(9_000_000,
		batchEvent(fabric.StageHashRead, 1_000_000, 1),
		batchEvent(fabric.StageNodeRead, 6_000_000, 3),
		Event{Stage: fabric.StageNodeRead, Batch: true, EndPs: 500, Err: "transient"},
		Event{Note: "sfc false positive at prefix 3: unlearned"},
	)
	got := Explain(tr)
	for _, want := range []string{
		"dominant stage " + fabric.StageNodeRead.String(),
		"1 faulted batches",
		"sfc false positive at prefix 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain = %q, missing %q", got, want)
		}
	}
	if Explain(nil) != "" {
		t.Error("Explain(nil) not empty")
	}
	if got := Explain(mkTrace(5)); got != "no batches recorded" {
		t.Errorf("Explain(empty) = %q", got)
	}
}

// TestRegistryGaugesSnapshotAndDiff checks gauge semantics: present in
// snapshots, carried through Sub as instantaneous readings (not
// differenced), and rendered as prometheus gauges.
func TestRegistryGaugesSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	load := 0.25
	r.AddGauges("sfc", func() map[string]float64 {
		return map[string]float64{"load": load}
	})
	r.AddCounters("tail", func() map[string]uint64 {
		return map[string]uint64{"captured": 7}
	})
	first := r.Snapshot()
	load = 0.75
	second := r.Snapshot()
	diff := second.Sub(first)
	if got := diff.Gauges["sfc_load"]; got != 0.75 {
		t.Fatalf("diff gauge = %v, want the later instantaneous reading 0.75", got)
	}
	if got := diff.Counters["tail_captured"]; got != 0 {
		t.Fatalf("diff counter = %d, want 0 (unchanged)", got)
	}
	var sb strings.Builder
	if err := second.WritePrometheus(&sb, "sphinx"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sphinx_sfc_load 0.75") ||
		!strings.Contains(out, "sphinx_tail_captured 7") {
		t.Fatalf("prometheus gauge rendering wrong:\n%s", out)
	}
}
