// Hot-spot tolerance: hotness-driven read replication with
// contention-aware replica choice.
//
// Single-owner placement concentrates a Zipfian workload's head keys on
// one MN's NIC. This layer lets each CN promote the keys its HotSet
// tracker finds hot into R-way replicated placement: the key's value is
// republished as immutable versioned records — the anchor-record format
// of replica.go — into dedicated per-MN hot tables on the key's first R
// ring successors. A promoted read then takes one round trip to a replica
// chosen by power-of-two-choices on the fabric's cached per-MN queued-wait
// signal, spreading the head of the distribution across NICs.
//
// The read keeps the trust-but-verify shape of the leaf-address cache:
// the cached record address is only a hint, the record image is verified
// in place (status word, full key), and any mismatch refutes the route
// and falls back to the authoritative path. Staleness is prevented by the
// write path: a put or delete to a promoted key LWW-swaps (or removes)
// every matching record on the replica set before acknowledging, and
// retires the superseded image by overwriting its status word, so a
// reader holding the old address refutes instead of serving old data.
//
// Promotion closes the publish-vs-write race with a placeholder phase:
//
//	open the writers' gate        // Published() true from here on
//	v0 := nextHotVersion()        // drawn before anything else
//	publish Locked placeholders   // key now discoverable to writers
//	v1 := nextHotVersion()        // still before the read
//	value := authoritative read
//	swap records in at v1         // swap-only: absence aborts
//
// Any write committing after the promoter's read draws a version > v1
// (the counter is cluster-ordered) and finds a record to swap — the
// placeholder guarantees discoverability — so the promoter's value can
// never overwrite a fresher one, and a record the promoter replaces is
// always older than what it read. The swap-only final phase means a
// concurrent delete (which removes records before acking) simply makes
// the promotion fizzle. The gate ordering is load-bearing: writers skip
// the per-write replica probe while Published() is false, so the flag
// must be set before the first placeholder can be seen — were it set
// only after the promotion completed, a write committing between the
// placeholder publish and the promoter's read would skip the swap that
// outranks v1, and the promoter would bury the fresher value under a
// verified-servable stale record.
//
// Benign imperfections, all bounded by verification: duplicate records
// from racing promoters (deduplicated by the next swap), placeholders
// orphaned by a promoter error (swapped live by the next write, removed
// by the next delete or demotion, never readable — routes only learn
// Idle records), records orphaned by a sketch-slot steal (still
// write-refreshed via the tables; still correct to serve).
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/racehash"
	"sphinx/internal/wire"
)

// DefaultHotReplication is the replica factor hot keys are promoted to:
// the head of a Zipfian distribution spread over three NICs, which keeps
// the hottest key's share below the per-MN fair share for the cluster
// sizes the skew experiment runs.
const DefaultHotReplication = 3

// HotReplicas is the cluster-wide descriptor of the hot-replication
// layer, created by BootstrapHot and shared read-only (counters atomic)
// by every client. It is independent of the fault-tolerance layer: hot
// records are a performance cache of the tree, not a durability store.
type HotReplicas struct {
	// R is how many ring successors a promoted key is replicated onto.
	R int
	// Health is the fabric's shared breaker table (diagnostics; targeting
	// is deterministic so writers and readers agree on the replica set).
	Health *fabric.Health
	// Tables maps each bootstrap-time memory node to its hot-record
	// table. Deliberately static: nodes added by elastic scale-out simply
	// do not host hot replicas, and targeting skips nodes without tables.
	Tables map[mem.NodeID]racehash.Table
	// Load is the shared per-MN contention snapshot cache driving the
	// power-of-two-choices replica pick.
	Load *fabric.LoadCache

	// verCounter issues cluster-ordered LWW versions for hot records
	// (same construction as FaultTolerance.verCounter).
	verCounter uint64
	// published is nonzero once a hot record — including a promotion
	// placeholder — may be discoverable; writers skip the per-write
	// replica probe while it is still zero (nothing can be stale). Set
	// by hotPlacehold BEFORE the first insert, never after a promotion
	// completes: see the gate-ordering note in the package comment.
	published uint64
}

// Published reports whether any hot record may ever have been
// discoverable (records or placeholders, including since-removed ones).
func (hr *HotReplicas) Published() bool {
	return atomic.LoadUint64(&hr.published) != 0
}

// targetsAppend appends the key's hot replica set to dst: the first R
// distinct ring successors that host a hot table. No health filter — the
// set must be deterministic so writers provably cover every record a
// reader could reach; unreachable targets are handled by error policy
// (writers skip only permanently killed nodes, whose records no reader
// can fetch either).
func (hr *HotReplicas) targetsAppend(dst []mem.NodeID, ring *consistenthash.Ring, key []byte) []mem.NodeID {
	start := len(dst)
	owners := ring.OwnersKey(key, len(ring.Nodes()))
	for _, o := range owners {
		if _, ok := hr.Tables[o]; !ok {
			continue
		}
		dst = append(dst, o)
		if len(dst)-start >= hr.R {
			break
		}
	}
	return dst
}

// BootstrapHot adds the hot-replication layer to a bootstrapped cluster:
// one hot-record table per current memory node (sized for expectedHot
// promoted keys at replica factor r) plus the shared descriptor, stored
// in sh.Hot. r < 2 selects DefaultHotReplication; r is clamped to the
// node count. Call after Bootstrap/BootstrapReplicated, before clients
// are created.
func BootstrapHot(f *fabric.Fabric, sh *Shared, expectedHot, r int) error {
	if r < 2 {
		r = DefaultHotReplication
	}
	ring := sh.Ring
	nodes := ring.Nodes()
	if r > len(nodes) {
		r = len(nodes)
	}
	if expectedHot < 1 {
		expectedHot = 1
	}
	alloc := mem.NewAllocator(f.Regions(), 0)
	perNode := expectedHot*r/len(nodes) + 1
	tables := make(map[mem.NodeID]racehash.Table, len(nodes))
	for _, node := range nodes {
		t, err := racehash.Bootstrap(f.Region(node), alloc, node, perNode)
		if err != nil {
			return fmt.Errorf("core: bootstrap hot table on node %d: %w", node, err)
		}
		tables[node] = t
	}
	sh.Hot = &HotReplicas{
		R:      r,
		Health: f.Health(),
		Tables: tables,
		Load:   f.NewLoadCache(0),
	}
	return nil
}

// hotViewOf returns the client's view on node's hot table (nil if the
// node hosts none). Views are lazy copy-on-write like the anchor views.
func (c *Client) hotViewOf(node mem.NodeID) *racehash.View {
	if v, ok := c.hotViews.Load().m[node]; ok {
		return v
	}
	t, ok := c.shared.Hot.Tables[node]
	if !ok {
		return nil
	}
	v := racehash.NewView(t, c.eng.C)
	c.storeView(&c.hotViews, node, v)
	return v
}

// nextHotVersion returns a fresh cluster-ordered LWW version for hot
// records, tagged with the client ID.
func (c *Client) nextHotVersion() uint64 {
	return atomic.AddUint64(&c.shared.Hot.verCounter, 1)<<8 | uint64(c.eng.C.ID())&0xff
}

// hotEnabled reports whether this client participates in the hot layer.
// DisableHot is an ablation lever and only safe cluster-wide: a writing
// client that skips the replica refresh would leave records stale for
// every other CN.
func (c *Client) hotEnabled() bool {
	return c.shared.Hot != nil && !c.opts.DisableHot
}

// hotTargets resolves the key's replica set under the current placement,
// unioned with the previous epoch's mid-transition (records published
// against the old ring must keep being refreshed until cutover). curN is
// how many leading entries come from the current ring — their position
// defines the replica rank for the route caches.
func (c *Client) hotTargets(key []byte, includePrev bool) (ts []mem.NodeID, curN int) {
	hot := c.shared.Hot
	p := c.members.Current()
	ts = hot.targetsAppend(c.hotNodeScratch[:0], p.Ring, key)
	curN = len(ts)
	if includePrev && p.Prev != nil {
	prev:
		for _, t := range hot.targetsAppend(nil, p.Prev.Ring, key) {
			for _, u := range ts {
				if u == t {
					continue prev
				}
			}
			ts = append(ts, t)
		}
	}
	c.hotNodeScratch = ts
	return ts, curN
}

// hotUnits converts a record image length to the route cache's 64-byte
// unit count; 0 (unroutable) when the record exceeds the 8-bit field.
func hotUnits(imgLen int) uint8 {
	u := (imgLen + 63) / 64
	if u > 255 {
		return 0
	}
	return uint8(u)
}

// hotRoutable reports whether a (key, value) pair still fits the route
// cache's 8-bit unit field once encoded as a record image (~16 KiB).
// Oversized pairs are excluded from the hot layer up front, at the
// hotTouch observation gate: promoting one would publish records no
// route can hold, so every promotion would end at routed=0, unclaim,
// and be retried as soon as the sketch re-crossed the threshold —
// steady candidate-lookup churn plus orphaned records, zero benefit.
func hotRoutable(key []byte, valLen int) bool {
	return hotUnits(anchorDataOff+len(key)+valLen) != 0
}

// hotCand is one decoded hot-table candidate whose record stores the key.
type hotCand struct {
	entry   wire.HashEntry
	status  wire.Status
	value   []byte
	version uint64
	imgLen  int
}

// hotCandidates returns every candidate on node's hot table whose record
// matches key exactly, decoded. Maintenance traffic: StageHotPub.
func (c *Client) hotCandidates(node mem.NodeID, key []byte) ([]hotCand, error) {
	view := c.hotViewOf(node)
	if view == nil {
		return nil, nil
	}
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	cands, err := view.Lookup(racehash.PlacementHash(key), wire.FP12(key))
	if err != nil {
		return nil, err
	}
	var out []hotCand
	for _, cand := range cands {
		st, k, v, ver, err := c.readRecord(cand.Entry.Addr)
		if err != nil {
			return nil, err
		}
		if bytes.Equal(k, key) {
			out = append(out, hotCand{cand.Entry, st, v, ver, anchorDataOff + len(k) + len(v)})
		}
	}
	return out, nil
}

// retireRecord overwrites a superseded record's status word with
// StatusInvalid so any route cache still holding its address refutes on
// the next read instead of serving stale data. One 8-byte write.
func (c *Client) retireRecord(addr mem.Addr, key []byte) error {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	hdr := wire.NodeHeader{
		Status:     wire.StatusInvalid,
		Type:       wire.Node4,
		Depth:      uint16(len(key)),
		PrefixHash: wire.PrefixHash42(key),
	}
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], hdr.Encode())
	return c.eng.C.Write(addr, w[:])
}

// hotDedup removes and retires every candidate except keep — losers of
// racing promotions. CAS-exact removes, so a concurrently refreshed entry
// survives; its old image was superseded anyway, so retiring it stays
// correct.
func (c *Client) hotDedup(node mem.NodeID, key []byte, cands []hotCand, keep int) {
	view := c.hotViewOf(node)
	h42 := racehash.PlacementHash(key)
	for i := range cands {
		if i == keep {
			continue
		}
		_ = view.Remove(h42, cands[i].entry)
		_ = c.retireRecord(cands[i].entry.Addr, key)
	}
}

// hotSwapIn publishes (key, value, version) over whatever records node
// currently holds for key — swap-only, never insert: absence means the
// key is not (or no longer) promoted there, and inserting could resurrect
// a concurrently deleted key. Returns the address and size of the record
// now servable for the key (ours, or a newer Idle winner's); ok=false
// when the node holds nothing servable.
func (c *Client) hotSwapIn(node mem.NodeID, key, value []byte, version uint64) (addr mem.Addr, imgLen int, ok bool, err error) {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	var img []byte
	var newAddr mem.Addr
	// dropOrphan retires a written-but-never-published image when an exit
	// abandons it — a retry iteration adopted a newer winner, the record
	// vanished, or the race budget ran out. The bump allocator cannot
	// reclaim the bytes, but invalidating the status word keeps the
	// orphan permanently un-servable instead of a live-looking Idle
	// record floating in dead memory.
	dropOrphan := func() {
		if img != nil {
			_ = c.retireRecord(newAddr, key)
		}
	}
	for attempt := 0; attempt < anchorPutMaxRaces; attempt++ {
		cands, err := c.hotCandidates(node, key)
		if err != nil {
			dropOrphan()
			return 0, 0, false, err
		}
		if len(cands) == 0 {
			dropOrphan()
			return 0, 0, false, nil
		}
		best := 0
		for i := range cands {
			if cands[i].version > cands[best].version {
				best = i
			}
		}
		if cands[best].version >= version {
			// A newer write already won; keep it (LWW).
			dropOrphan()
			if cands[best].status != wire.StatusIdle {
				return 0, 0, false, nil
			}
			c.hotDedup(node, key, cands, best)
			return cands[best].entry.Addr, cands[best].imgLen, true, nil
		}
		if img == nil {
			// Immutable record: one allocation serves every retry. img is
			// only set once the image is fully written, so dropOrphan never
			// touches a half-initialized record.
			rec := encodeRecord(wire.StatusIdle, key, value, version)
			newAddr, err = c.eng.Alloc.Alloc(node, mem.ClassLeaf, uint64(len(rec)))
			if err != nil {
				return 0, 0, false, err
			}
			if err := c.eng.C.Write(newAddr, rec); err != nil {
				return 0, 0, false, err
			}
			img = rec
		}
		newEntry := wire.HashEntry{Valid: true, FP: wire.FP12(key), Type: wire.Node4, Addr: newAddr}
		won, err := c.hotViewOf(node).SwapIfPresent(racehash.PlacementHash(key), cands[best].entry, newEntry)
		if err != nil {
			dropOrphan()
			return 0, 0, false, err
		}
		if won {
			_ = c.retireRecord(cands[best].entry.Addr, key)
			c.hotDedup(node, key, cands, best)
			return newAddr, len(img), true, nil
		}
		// Lost the swap race; re-read and re-decide by version.
	}
	dropOrphan()
	return 0, 0, false, fmt.Errorf("core: hot publish for %q lost %d consecutive swap races", key, anchorPutMaxRaces)
}

// hotPlacehold publishes a Locked placeholder at version v0 on every
// target that holds nothing for the key yet, making the key discoverable
// to concurrent writers before the promoter's authoritative read.
func (c *Client) hotPlacehold(targets []mem.NodeID, key []byte, v0 uint64) error {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	for _, t := range targets {
		cands, err := c.hotCandidates(t, key)
		if err != nil {
			if errors.Is(err, fabric.ErrNodeKilled) {
				continue // no reader can fetch from a killed node either
			}
			return err
		}
		if len(cands) > 0 {
			continue // already discoverable (record or racing placeholder)
		}
		img := encodeRecord(wire.StatusLocked, key, nil, v0)
		addr, err := c.eng.Alloc.Alloc(t, mem.ClassLeaf, uint64(len(img)))
		if err != nil {
			return err
		}
		if err := c.eng.C.Write(addr, img); err != nil {
			return err
		}
		entry := wire.HashEntry{Valid: true, FP: wire.FP12(key), Type: wire.Node4, Addr: addr}
		// Open the writers' probe gate before the placeholder becomes
		// discoverable: a put/delete committing between this insert and
		// the promoter's authoritative read must see Published() true and
		// run the swap that outranks v1, or the promoter's pre-write
		// value would stick as a verified-servable stale record. Once the
		// gate opened it stays open even if this promotion fizzles —
		// correctness over the probe's cost.
		atomic.StoreUint64(&c.shared.Hot.published, 1)
		if err := c.hotViewOf(t).Insert(racehash.PlacementHash(key), entry, c.eng.Alloc); err != nil {
			return err
		}
	}
	return nil
}

// hotAbandon removes the promoter's own placeholders (exact version v0,
// still Locked) after an aborted promotion. CAS-exact: a placeholder a
// writer already swapped live is left alone.
func (c *Client) hotAbandon(targets []mem.NodeID, key []byte, v0 uint64) {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	for _, t := range targets {
		cands, err := c.hotCandidates(t, key)
		if err != nil {
			continue
		}
		view := c.hotViewOf(t)
		for i := range cands {
			if cands[i].version == v0 && cands[i].status == wire.StatusLocked {
				if view.Remove(racehash.PlacementHash(key), cands[i].entry) == nil {
					_ = c.retireRecord(cands[i].entry.Addr, key)
				}
			}
		}
	}
}

// hotPromote publishes a hot key into R-way replicated placement. Best
// effort: any failure unclaims the key in the sketch so a later Observe
// retries; leftover placeholders are benign (see the package comment).
//
// Targets that already hold an Idle record for the key are ADOPTED, not
// republished: an Idle record was placed by a completed promotion or
// write refresh (publish-to-completion + LWW), so its image is at least
// as fresh as the last acknowledged write, and learning its address
// costs one lookup. Republishing instead would retire the record every
// other CN has routes to, and with one independent promoter per CN the
// cluster would churn through refute → re-promote cycles — each CN's
// promotion invalidating everyone else's routes — instead of serving
// hot reads. The placeholder/versioned-swap protocol below runs only
// against targets that hold nothing yet.
func (c *Client) hotPromote(key []byte) {
	targets, _ := c.hotTargets(key, false)
	if len(targets) == 0 {
		c.hotset.Unclaim(key)
		return
	}
	routed := 0
	fresh := targets[:0]
	freshRanks := make([]int, 0, len(targets))
	for i, t := range targets {
		cands, err := c.hotCandidates(t, key)
		if err != nil {
			continue // killed or transient: forgo this rank
		}
		best := -1
		for j := range cands {
			if cands[j].status == wire.StatusIdle && (best < 0 || cands[j].version > cands[best].version) {
				best = j
			}
		}
		if best >= 0 {
			if units := hotUnits(cands[best].imgLen); units != 0 && i < c.hotset.Ranks() {
				c.hotset.Rank(i).Learn(key, cands[best].entry.Addr, units)
				routed++
			}
			continue
		}
		fresh = append(fresh, t)
		freshRanks = append(freshRanks, i)
	}
	if len(fresh) > 0 {
		v0 := c.nextHotVersion()
		if err := c.hotPlacehold(fresh, key, v0); err != nil {
			c.hotset.Unclaim(key)
			return
		}
		// Both versions are drawn before the read: any write committing
		// after it outranks v1, so our swap below can never bury a fresher
		// value.
		v1 := c.nextHotVersion()
		val, ok, err := c.searchTree(key)
		if err != nil {
			c.hotset.Unclaim(key)
			return
		}
		if !ok {
			c.hotAbandon(fresh, key, v0)
			c.hotset.Unclaim(key)
			return
		}
		if !hotRoutable(key, len(val)) {
			// The value outgrew the routable bound between the observation
			// and this read: retract our placeholders and stand down —
			// the hotTouch size gate keeps the key from being re-claimed,
			// so this is a terminal demotion, not a retry loop.
			c.hotAbandon(fresh, key, v0)
			c.hotset.Unclaim(key)
			return
		}
		for i, t := range fresh {
			addr, imgLen, ok, err := c.hotSwapIn(t, key, val, v1)
			if err != nil || !ok {
				continue
			}
			if units := hotUnits(imgLen); units != 0 && freshRanks[i] < c.hotset.Ranks() {
				c.hotset.Rank(freshRanks[i]).Learn(key, addr, units)
				routed++
			}
		}
	}
	if routed == 0 {
		c.hotset.Unclaim(key)
		return
	}
	atomic.AddUint64(&c.stats.HotPromotes, 1)
}

// hotRefresh republishes a committed write over the key's hot records,
// called by put between tree commit and acknowledgement. LWW-idempotent,
// so the caller's retry machinery can re-run it. Killed targets are
// skipped — no reader can fetch their records; any other failure
// propagates so the write is not acknowledged with a stale replica
// readable.
func (c *Client) hotRefresh(key, value []byte) error {
	if !c.shared.Hot.Published() {
		return nil
	}
	version := c.nextHotVersion()
	refreshed := false
	targets, curN := c.hotTargets(key, true)
	for i, t := range targets {
		addr, imgLen, ok, err := c.hotSwapIn(t, key, value, version)
		if err != nil {
			if errors.Is(err, fabric.ErrNodeKilled) {
				continue
			}
			return err
		}
		refreshed = refreshed || ok
		// The old record was just retired, so this CN's route to it is
		// stale; re-learn the fresh address in the same breath (rank =
		// position among the current ring's targets). Other CNs refute
		// once and re-promote — see hotGet.
		if ok && c.hotset != nil && i < curN && i < c.hotset.Ranks() {
			if units := hotUnits(imgLen); units != 0 {
				c.hotset.Rank(i).Learn(key, addr, units)
			}
		}
	}
	if refreshed {
		atomic.AddUint64(&c.stats.HotRefreshes, 1)
	}
	return nil
}

// hotRemove removes and retires every hot record of the key, called by
// Delete between tree commit and acknowledgement (strict=true: failures
// other than killed nodes propagate) and by demotion (strict=false: best
// effort).
func (c *Client) hotRemove(key []byte, strict bool) error {
	if !c.shared.Hot.Published() {
		return nil
	}
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotPub))
	h42 := racehash.PlacementHash(key)
	targets, _ := c.hotTargets(key, true)
	for _, t := range targets {
		cands, err := c.hotCandidates(t, key)
		if err != nil {
			if !strict || errors.Is(err, fabric.ErrNodeKilled) {
				continue
			}
			return err
		}
		view := c.hotViewOf(t)
		for i := range cands {
			if err := view.Remove(h42, cands[i].entry); err != nil {
				if !strict || errors.Is(err, fabric.ErrNodeKilled) {
					continue
				}
				return err
			}
			_ = c.retireRecord(cands[i].entry.Addr, key)
		}
	}
	return nil
}

// hotDemote tears down a cooled key: forget the routes, best-effort
// remove the records. Other CNs still tracking the key re-promote it
// (their reads refute the retired records and their sketches stay hot),
// which is churn, not wrongness.
func (c *Client) hotDemote(key []byte) {
	for i := 0; i < c.hotset.Ranks(); i++ {
		c.hotset.Rank(i).Unlearn(key)
	}
	_ = c.hotRemove(key, false)
	atomic.AddUint64(&c.stats.HotDemotes, 1)
}

// hotTouch feeds one served read into the tracker and runs whatever
// maintenance the observation triggered. Skipped in degraded mode (the
// hot layer is entirely off there — degraded writes land anchor-only and
// would leave records stale) and for values too large to route (see
// hotRoutable) — valLen is the length of the value the read served.
func (c *Client) hotTouch(key []byte, valLen int, sfcHot bool) {
	if c.hotset == nil || !c.hotEnabled() || !hotRoutable(key, valLen) {
		return
	}
	switch c.hotset.Observe(key, sfcHot) {
	case HotPromoteNow:
		if c.degraded() {
			c.hotset.Unclaim(key)
			return
		}
		c.hotPromote(key)
	case HotDemoteNow:
		c.hotDemote(key)
	}
}

// Outcomes of one speculative hot-record read attempt.
const (
	hotReadHit    = iota // verified; value served
	hotReadRefute        // provably stale route; unlearn (1 RT paid)
	hotReadAbort         // transient fault; keep route, fall back (1 RT paid)
	hotReadSkip          // locally dropped before any round trip
)

// hotReadRecord speculatively reads one replica record in a single round
// trip and verifies it in place: Idle status and the exact key bytes. No
// follow-up reads — the route cache learned the record's exact size, and
// records are immutable, so a size mismatch already proves staleness.
func (c *Client) hotReadRecord(addr mem.Addr, units uint8, key []byte) ([]byte, int) {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHotRead))
	regionSize := c.eng.C.Fabric().RegionSize(addr.Node())
	size := uint64(units) * 64
	if addr.Offset() >= regionSize {
		return nil, hotReadSkip
	}
	if addr.Offset()+size > regionSize {
		size = regionSize - addr.Offset()
	}
	if size < anchorDataOff {
		return nil, hotReadSkip
	}
	buf := make([]byte, size)
	if err := c.eng.C.Read(addr, buf); err != nil {
		if errors.Is(err, fabric.ErrNodeKilled) || errors.Is(err, fabric.ErrBreakerOpen) {
			return nil, hotReadRefute
		}
		return nil, hotReadAbort
	}
	hdr := wire.DecodeNodeHeader(binary.LittleEndian.Uint64(buf[0:]))
	if hdr.Status != wire.StatusIdle {
		return nil, hotReadRefute
	}
	lens := binary.LittleEndian.Uint64(buf[anchorLensOff:])
	keyLen := int(lens & 0xffff)
	valLen := int(lens >> 16)
	if keyLen != len(key) || anchorDataOff+keyLen+valLen > len(buf) {
		return nil, hotReadRefute
	}
	if !bytes.Equal(buf[anchorDataOff:anchorDataOff+keyLen], key) {
		return nil, hotReadRefute
	}
	val := append([]byte(nil), buf[anchorDataOff+keyLen:anchorDataOff+keyLen+valLen]...)
	return val, hotReadHit
}

// hotGet attempts the replicated 1-RT fast path: gather the key's routes
// from the rank caches, pick a starting replica by power-of-two-choices
// on the cached per-MN contention snapshot, and read-verify records until
// one serves or all refute. Aborts (transient faults) stop the attempt
// with routes kept. Only a verified hit is served.
func (c *Client) hotGet(key []byte) ([]byte, bool) {
	hs := c.hotset
	if hs == nil || !c.hotEnabled() {
		return nil, false
	}
	hs.FlushRoutes(c.members.Current().Epoch)
	type route struct {
		rank  int
		addr  mem.Addr
		units uint8
	}
	var routes [8]route
	n := 0
	for i := 0; i < hs.Ranks() && n < len(routes); i++ {
		if a, u, ok := hs.Rank(i).Lookup(key); ok {
			routes[n] = route{i, a, u}
			n++
		}
	}
	if n == 0 {
		// Claimed but routeless: another CN's write retired the records
		// this CN's routes pointed at (each refutation unlearned one), or
		// an epoch flush dropped them. Rebuild by re-promoting — one
		// authoritative read plus the swap-only republish — so the hot
		// path recovers instead of staying dead until demotion. A failed
		// re-promotion unclaims, letting the sketch decide again.
		if hs.Claimed(key) && !c.degraded() {
			c.hotPromote(key)
		}
		return nil, false
	}
	start := 0
	if n >= 2 {
		// Two choices, one comparison against the tick-refreshed per-MN
		// queued-wait snapshot; ~zero cost, no extra round trips.
		x := int(hs.NextPick() % uint64(n))
		y := (x + 1) % n
		start = x
		if c.shared.Hot.Load.PickLighter(routes[x].addr.Node(), routes[y].addr.Node()) == routes[y].addr.Node() {
			start = y
		}
	}
	for k := 0; k < n; k++ {
		r := routes[(start+k)%n]
		val, verdict := c.hotReadRecord(r.addr, r.units, key)
		switch verdict {
		case hotReadHit:
			atomic.AddUint64(&c.stats.HotHits, 1)
			return val, true
		case hotReadRefute:
			atomic.AddUint64(&c.stats.HotRefutes, 1)
			hs.Rank(r.rank).Unlearn(key)
		case hotReadAbort:
			atomic.AddUint64(&c.stats.HotAborts, 1)
			return nil, false
		case hotReadSkip:
			hs.Rank(r.rank).Unlearn(key)
		}
	}
	return nil, false
}
