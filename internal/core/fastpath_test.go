package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sphinx/internal/fabric"
)

// The fastpath suite pins the speculative 1-RT warm-read contract
// (DESIGN.md §5.12): a leaf-address-cache hit serves a verified value in
// one round trip; a stale entry — after a delete, an out-of-place update,
// or a memory-node loss — is always refuted and re-routed, never served;
// and the refuted fallback is a routing decision that burns no retry
// backoff or budget.

// warmSearch searches key and fails the test on any miss; the successful
// traversal teaches the client's leaf-address cache.
func warmSearch(t *testing.T, c *Client, key, want []byte) {
	t.Helper()
	v, ok, err := c.Search(key)
	if err != nil || !ok || !bytes.Equal(v, want) {
		t.Fatalf("warm Search(%q) = %q, %v, %v; want %q", key, v, ok, err, want)
	}
}

// TestSpecStaleEntryNoBackoff is the retry-accounting satellite for the
// fast path: a refuted speculative read must fall back to the hash path
// as ONE no-backoff decision — no sleep, no retry budget — exactly like
// the failover and need-parent re-routes. A stale entry is planted by
// hand (key A's slot pointing at key B's live leaf), so the verification
// fails on the full-key comparison with a perfectly healthy leaf image.
func TestSpecStaleEntryNoBackoff(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	keyA, keyB := []byte("alpha-key"), []byte("bravo-key")
	if _, err := c.Insert(keyA, []byte("va")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(keyB, []byte("vb")); err != nil {
		t.Fatal(err)
	}
	warmSearch(t, c, keyB, []byte("vb"))
	addrB, unitsB, ok := c.lac.Lookup(keyB)
	if !ok {
		t.Fatal("warm search did not learn keyB's leaf address")
	}
	// Plant the stale hint: keyA's slot claims keyB's leaf.
	c.lac.Learn(keyA, addrB, unitsB)

	clock0 := c.eng.C.Clock()
	st0 := c.Stats()
	v, found, err := c.Search(keyA)
	if err != nil || !found || !bytes.Equal(v, []byte("va")) {
		t.Fatalf("Search(keyA) with stale hint = %q, %v, %v", v, found, err)
	}
	// Under InstantConfig every verb is free, so any clock advance can
	// only come from backoff sleeps — which the refuted fallback must not
	// take.
	if dt := c.eng.C.Clock() - clock0; dt != 0 {
		t.Errorf("refuted speculation slept %d ps of backoff; want 0", dt)
	}
	st := c.Stats()
	if st.Restarts != st0.Restarts {
		t.Errorf("refuted speculation consumed %d retry budget; want 0", st.Restarts-st0.Restarts)
	}
	if st.SpecRefutes != st0.SpecRefutes+1 {
		t.Errorf("SpecRefutes = %d, want %d", st.SpecRefutes, st0.SpecRefutes+1)
	}
	// The refutation unlearned the stale entry AND the fallback traversal
	// re-learned the true address, so the next search is a clean 1-RT hit.
	rt0 := c.eng.C.Stats().RoundTrips
	warmSearch(t, c, keyA, []byte("va"))
	if rt := c.eng.C.Stats().RoundTrips - rt0; rt != 1 {
		t.Errorf("post-refutation search took %d round trips, want 1", rt)
	}
	if got := c.Stats().SpecHits; got != st.SpecHits+1 {
		t.Errorf("SpecHits = %d, want %d", got, st.SpecHits+1)
	}
}

// TestSpecRefuteAfterDelete: a delete retires the leaf in place (status
// Invalid) before clearing its slot, so a stale leaf-address-cache entry
// MUST be refuted — a speculative read may never resurrect a deleted key.
func TestSpecRefuteAfterDelete(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	key := []byte("doomed-key")
	if _, err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert([]byte("doomed-kin"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	warmSearch(t, c, key, []byte("v1"))
	if _, _, ok := c.lac.Lookup(key); !ok {
		t.Fatal("warm search did not learn the leaf address")
	}
	if ok, err := c.Delete(key); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}

	st0 := c.Stats()
	v, found, err := c.Search(key)
	if err != nil || found {
		t.Fatalf("Search after delete = %q, %v, %v; want absent", v, found, err)
	}
	st := c.Stats()
	if st.SpecRefutes != st0.SpecRefutes+1 {
		t.Errorf("SpecRefutes = %d, want %d (stale entry must be refuted)", st.SpecRefutes, st0.SpecRefutes+1)
	}
	if _, _, ok := c.lac.Lookup(key); ok {
		t.Error("stale entry survived its refutation")
	}
	// The next search must not re-speculate: the entry is gone.
	if _, found, err := c.Search(key); err != nil || found {
		t.Fatalf("second Search after delete = %v, %v", found, err)
	}
	if got := c.Stats().SpecMisses; got != st.SpecMisses+1 {
		t.Errorf("SpecMisses = %d, want %d", got, st.SpecMisses+1)
	}
}

// TestSpecRefuteAfterLeafMove: an update that outgrows the leaf moves the
// key out of place and retires the old image in the SAME commit batch, so
// the stale cached address must be refuted — the old value may never be
// served after the update acked — and the fallback re-learns the new
// address for a clean hit right after.
func TestSpecRefuteAfterLeafMove(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	key := []byte("growing-key")
	if _, err := c.Insert(key, []byte("small")); err != nil {
		t.Fatal(err)
	}
	warmSearch(t, c, key, []byte("small"))
	oldAddr, _, ok := c.lac.Lookup(key)
	if !ok {
		t.Fatal("warm search did not learn the leaf address")
	}

	big := bytes.Repeat([]byte("B"), 1000) // forces an out-of-place move
	if ok, err := c.Update(key, big); err != nil || !ok {
		t.Fatalf("grow update = %v, %v", ok, err)
	}

	st0 := c.Stats()
	v, found, err := c.Search(key)
	if err != nil || !found || !bytes.Equal(v, big) {
		t.Fatalf("Search after move = %d bytes, %v, %v; want the new value", len(v), found, err)
	}
	st := c.Stats()
	if st.SpecRefutes != st0.SpecRefutes+1 {
		t.Errorf("SpecRefutes = %d, want %d (moved leaf must refute)", st.SpecRefutes, st0.SpecRefutes+1)
	}
	newAddr, _, ok := c.lac.Lookup(key)
	if !ok {
		t.Fatal("fallback did not re-learn the moved leaf")
	}
	if newAddr == oldAddr {
		t.Fatal("update did not move the leaf; the scenario exercises nothing")
	}
	rt0 := c.eng.C.Stats().RoundTrips
	warmSearch(t, c, key, big)
	if rt := c.eng.C.Stats().RoundTrips - rt0; rt != 1 {
		t.Errorf("search after re-learn took %d round trips, want 1", rt)
	}
}

// TestSpecCrossClientInvalidation: sessions of one CN share the
// leaf-address cache; a delete issued by one client must be seen by the
// other through verification, not through any cache coherence protocol —
// the other client's next read refutes, unlearns, and serves the truth.
func TestSpecCrossClientInvalidation(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	lac := NewLeafCache(1<<12, 1)
	c1 := newTestClient(f, shared, Options{LeafCache: lac})
	c2 := newTestClient(f, shared, Options{LeafCache: lac})
	key := []byte("shared-key")
	if _, err := c1.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Insert([]byte("shared-kin"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	warmSearch(t, c1, key, []byte("v1"))

	// c2 deletes and re-inserts through the shared cache's blind spot.
	if ok, err := c2.Delete(key); err != nil || !ok {
		t.Fatalf("c2 delete = %v, %v", ok, err)
	}
	if _, err := c2.Insert(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// c1's cached address points at the retired leaf: refute, fall back,
	// serve the re-inserted value.
	st0 := c1.Stats()
	v, found, err := c1.Search(key)
	if err != nil || !found || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("c1 Search after c2 rewrite = %q, %v, %v; want \"v2\"", v, found, err)
	}
	if got := c1.Stats().SpecRefutes; got != st0.SpecRefutes+1 {
		t.Errorf("c1 SpecRefutes = %d, want %d", got, st0.SpecRefutes+1)
	}
	// The shared cache now carries the new address: c2 hits on it without
	// ever having searched the key itself.
	rt0 := c2.eng.C.Stats().RoundTrips
	warmSearch(t, c2, key, []byte("v2"))
	if rt := c2.eng.C.Stats().RoundTrips - rt0; rt != 1 {
		t.Errorf("c2 search via shared cache took %d round trips, want 1", rt)
	}
	if c2.Stats().SpecHits == 0 {
		t.Error("c2 never hit the shared cache")
	}
}

// TestSpecFailoverRefutesThenDegradedBypass: after a memory-node kill in
// a replicated cluster, a warm leaf-address cache full of addresses into
// dead memory must never produce a wrong answer. The first read whose
// cached leaf died refutes (node lost), unlearns, and fails over to the
// anchor replicas; once the breaker knows the death, degraded mode
// bypasses the cache wholesale — no speculative read may be served while
// the tree is not authoritative.
func TestSpecFailoverRefutesThenDegradedBypass(t *testing.T) {
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	keys := testKeys(64)
	for _, k := range keys {
		if _, err := c.Insert(k, append([]byte("val-"), k...)); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	for _, k := range keys {
		warmSearch(t, c, k, append([]byte("val-"), k...))
	}
	if c.Stats().SpecMisses == 0 {
		t.Fatal("warm pass never consulted the leaf-address cache")
	}

	victim := victimFor(shared, keys)
	f.KillNode(victim)

	// No probe: the measured client itself discovers the death, possibly
	// through a speculative read against dead memory. Every answer must
	// still be correct.
	for _, k := range keys {
		v, ok, err := c.Search(k)
		if err != nil {
			t.Fatalf("search %q after kill: %v", k, err)
		}
		if !ok || !bytes.Equal(v, append([]byte("val-"), k...)) {
			t.Fatalf("search %q after kill: ok=%v v=%q — speculative read served stale data", k, ok, v)
		}
	}
	if f.Health().State(victim) != fabric.HealthDead {
		t.Fatal("breaker never learned the death")
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded after the kill")
	}

	// Degraded mode: the cache is bypassed wholesale — further searches
	// move NO speculative counter, hit or otherwise.
	for _, k := range keys {
		v, ok, err := c.Search(k)
		if err != nil || !ok || !bytes.Equal(v, append([]byte("val-"), k...)) {
			t.Fatalf("degraded search %q = %q, %v, %v", k, v, ok, err)
		}
	}
	st2 := c.Stats()
	if st2.SpecHits != st.SpecHits || st2.SpecMisses != st.SpecMisses ||
		st2.SpecRefutes != st.SpecRefutes || st2.SpecAborts != st.SpecAborts {
		t.Errorf("degraded searches moved speculative counters: %+v -> %+v", st, st2)
	}
}

// TestChaosLACChurn drives concurrent workers through insert/grow-update/
// delete churn on a SHARED leaf-address cache (sessions of one CN), with
// probabilistic fabric faults, in both cache modes. Every worker's own
// keys follow a per-worker oracle; a preloaded immutable key set must
// never go absent or change value, no matter how stale the shared cache
// gets. Run under -race this is the data-race check for the whole
// speculative path.
func TestChaosLACChurn(t *testing.T) {
	for _, mode := range []string{"lac-on", "lac-off"} {
		t.Run(mode, func(t *testing.T) {
			f, shared := newCluster(t, 2, fabric.DefaultConfig(), 4000)
			f.SetFaultPlan(chaosPlan(17))
			opts := func() Options {
				if mode == "lac-on" {
					return Options{LeafCache: NewLeafCache(1<<10, 7)} // shared, collision-prone
				}
				return Options{DisableLeafCache: true}
			}
			sharedOpts := opts()

			loader := newTestClient(f, shared, sharedOpts)
			const immutable = 60
			for i := 0; i < immutable; i++ {
				k := []byte(fmt.Sprintf("pinned-%03d", i))
				if _, err := loader.Insert(k, append([]byte("pin-"), k...)); err != nil {
					t.Fatalf("preload %q: %v", k, err)
				}
			}

			const workers = 6
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			clients := make([]*Client, workers)
			for w := 0; w < workers; w++ {
				clients[w] = newTestClient(f, shared, sharedOpts)
			}
			big := bytes.Repeat([]byte("G"), 700)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := clients[w]
					rng := rand.New(rand.NewSource(int64(1000 + w)))
					oracle := map[string][]byte{}
					for i := 0; i < 400; i++ {
						k := fmt.Sprintf("own-%d-%02d", w, rng.Intn(20))
						switch rng.Intn(6) {
						case 0:
							v := []byte(fmt.Sprintf("v%d", i))
							if _, err := c.Insert([]byte(k), v); err != nil {
								errCh <- fmt.Errorf("w%d insert %q: %w", w, k, err)
								return
							}
							oracle[k] = v
						case 1:
							// Grow update: moves the leaf out of place,
							// staling every shared-cache entry for it.
							if _, err := c.Insert([]byte(k), big); err != nil {
								errCh <- fmt.Errorf("w%d grow %q: %w", w, k, err)
								return
							}
							oracle[k] = big
						case 2:
							if _, err := c.Delete([]byte(k)); err != nil {
								errCh <- fmt.Errorf("w%d delete %q: %w", w, k, err)
								return
							}
							delete(oracle, k)
						case 3, 4:
							got, ok, err := c.Search([]byte(k))
							if err != nil {
								errCh <- fmt.Errorf("w%d search %q: %w", w, k, err)
								return
							}
							want, wantOK := oracle[k]
							if ok != wantOK || (ok && !bytes.Equal(got, want)) {
								errCh <- fmt.Errorf("w%d: %q = %.20q,%v want %.20q,%v", w, k, got, ok, want, wantOK)
								return
							}
						default:
							pk := []byte(fmt.Sprintf("pinned-%03d", (w*67+i)%immutable))
							got, ok, err := c.Search(pk)
							if err != nil {
								errCh <- fmt.Errorf("w%d pinned %q: %w", w, pk, err)
								return
							}
							if !ok || !bytes.Equal(got, append([]byte("pin-"), pk...)) {
								errCh <- fmt.Errorf("w%d: pinned %q = %.20q,%v — stale or lost", w, pk, got, ok)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			var agg Stats
			for _, c := range clients {
				agg = agg.Add(c.Stats())
			}
			if mode == "lac-on" {
				if agg.SpecHits == 0 {
					t.Error("churn never hit the shared leaf-address cache")
				}
				if agg.SpecRefutes == 0 {
					t.Error("churn never refuted a stale entry; the scenario exercises nothing")
				}
			} else if agg.SpecHits+agg.SpecMisses+agg.SpecRefutes+agg.SpecAborts != 0 {
				t.Errorf("disabled cache moved speculative counters: %+v", agg)
			}
		})
	}
}
