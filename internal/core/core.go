// Package core implements Sphinx, the paper's contribution: a hybrid range
// index for variable-length keys on disaggregated memory. It combines
//
//   - the ART node engine (internal/rart) for the tree itself,
//   - the Inner Node Hash Table (internal/racehash, paper §III-A): one
//     RACE-style table per memory node mapping inner-node full prefixes to
//     8-byte entries, letting a client reach the deepest relevant inner
//     node with a single hash-entry read instead of a root-to-node walk,
//   - the Succinct Filter Cache (internal/cuckoo, paper §III-B): a per-CN
//     cuckoo filter tracking which prefixes exist, so the client usually
//     knows the deepest prefix locally and reads exactly one hash entry.
//
// A warm-path Search therefore costs three network round trips: hash
// entry, inner node, leaf (paper §III-B), independent of key length and
// tree depth.
package core

import (
	"sync"
	"sync/atomic"

	"sphinx/internal/consistenthash"
	"sphinx/internal/cuckoo"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// sfcSeed derives the filter-cache hash from a prefix; distinct from every
// other hash use in the system.
const sfcSeed = 8

// PrefixFilterHash returns the succinct-filter-cache hash of a prefix.
func PrefixFilterHash(prefix []byte) uint64 { return wire.Hash64Seed(prefix, sfcSeed) }

// Shared is the cluster-wide descriptor of one Sphinx index. Everything
// in it is immutable except Members, which republishes the placement
// (ring + tables) when memory nodes are added or drained.
type Shared struct {
	Root   mem.Addr
	Ring   *consistenthash.Ring
	Tables map[mem.NodeID]racehash.Table
	// FT, when non-nil, enables the MN fault-tolerance layer (replicated
	// anchors, health-gated failover, online repair — see replica.go).
	// Built by BootstrapReplicated; nil keeps the original single-copy
	// behaviour byte-for-byte.
	FT *FaultTolerance
	// Members publishes epoch-versioned placement snapshots (see
	// membership.go); elastic scale-out/in swaps them atomically. When
	// nil (hand-built Shared values), clients fall back to the static
	// Ring/Tables fields above — epoch 0 forever.
	Members *Membership
	// Hot, when non-nil, enables the hot-key read-replication layer
	// (hotness-driven R-way replica records with contention-aware replica
	// choice — see hotreplica.go). Built by BootstrapHot; nil keeps
	// single-owner placement byte-for-byte.
	Hot *HotReplicas
}

// Bootstrap creates an empty Sphinx index: the root node plus one inner
// node hash table per memory node, sized for the expected number of keys
// (inner-node count is bounded by key count; tables resize beyond that).
// Runs at cluster-setup time with direct region access.
func Bootstrap(f *fabric.Fabric, ring *consistenthash.Ring, expectedKeys int) (Shared, error) {
	alloc := mem.NewAllocator(f.Regions(), 0)
	home := ring.OwnerKey(nil)
	root, err := rart.BootstrapRoot(f.Region(home), alloc, home)
	if err != nil {
		return Shared{}, err
	}
	tables := make(map[mem.NodeID]racehash.Table, len(ring.Nodes()))
	// Inner nodes are a fraction of the key count (one per shared-prefix
	// branch point); a quarter is generous for both datasets, and the
	// table resizes itself beyond that.
	perNode := expectedKeys/(4*len(ring.Nodes())) + 1
	for _, node := range ring.Nodes() {
		t, err := racehash.Bootstrap(f.Region(node), alloc, node, perNode)
		if err != nil {
			return Shared{}, err
		}
		tables[node] = t
	}
	sh := Shared{Root: root, Ring: ring, Tables: tables}
	sh.Members = NewMembership(&Placement{Ring: ring, Tables: tables})
	return sh, nil
}

// FilterCacheMode selects the concurrency control of a FilterCache.
type FilterCacheMode int

// FilterCache concurrency modes.
const (
	// FilterModeDefault resolves to the build's default: lock-free,
	// unless the `sfc_mutex` build tag selects the serialized baseline.
	FilterModeDefault FilterCacheMode = iota
	// FilterLockFree shares the lock-free cuckoo filter directly (the
	// filter's own whole-word CAS protocols carry all synchronization).
	FilterLockFree
	// FilterMutex serializes every access behind one mutex — the
	// pre-lock-free design, retained as the CN-scaling ablation baseline
	// (see the `sphinxbench scaling` experiment).
	FilterMutex
)

func (m FilterCacheMode) resolve() FilterCacheMode {
	if m == FilterModeDefault {
		return buildFilterCacheMode
	}
	return m
}

// String names the mode as the scaling experiment's tables do.
func (m FilterCacheMode) String() string {
	switch m.resolve() {
	case FilterMutex:
		return "mutex"
	default:
		return "lockfree"
	}
}

// FilterCache is the per-compute-node Succinct Filter Cache: a cuckoo
// filter shared by all workers of one CN (paper §III-B, "a lightweight
// per-CN cache"). By default it is lock-free — Contains is two atomic
// bucket loads (plus a best-effort CAS marking hotness), so the
// read-dominant warm path scales with the CN's cores instead of
// funnelling every worker through one lock. The mutex mode keeps the old
// serialized behaviour for ablation.
type FilterCache struct {
	mu *sync.Mutex // non-nil only in FilterMutex mode
	f  *cuckoo.Filter
}

func newFilterCache(f *cuckoo.Filter, mode FilterCacheMode) *FilterCache {
	fc := &FilterCache{f: f}
	if mode.resolve() == FilterMutex {
		fc.mu = new(sync.Mutex)
	}
	return fc
}

// NewFilterCache creates a filter cache with capacity for n prefixes.
func NewFilterCache(n int, seed uint64) *FilterCache {
	return NewFilterCacheMode(n, seed, FilterModeDefault)
}

// NewFilterCacheMode creates a capacity-sized filter cache with an
// explicit concurrency mode.
func NewFilterCacheMode(n int, seed uint64, mode FilterCacheMode) *FilterCache {
	return newFilterCache(cuckoo.New(n, seed), mode)
}

// NewFilterCacheBytes creates a filter cache bounded by a CN-side memory
// budget (the quantity the paper's evaluation fixes at 20 MB).
func NewFilterCacheBytes(budget uint64, seed uint64) *FilterCache {
	return NewFilterCacheBytesPolicy(budget, seed, cuckoo.PolicySecondChance)
}

// NewFilterCacheBytesPolicy additionally selects the eviction policy —
// the paper's hotness-driven second chance, or random replacement for the
// ablation comparison.
func NewFilterCacheBytesPolicy(budget uint64, seed uint64, policy cuckoo.Policy) *FilterCache {
	return NewFilterCacheBytesPolicyMode(budget, seed, policy, FilterModeDefault)
}

// NewFilterCacheBytesPolicyMode additionally selects the concurrency
// mode. The filter fills the budget exactly (within one 8-byte bucket
// word): cuckoo bucket counts are not constrained to powers of two, so
// none of the budget is lost to rounding.
func NewFilterCacheBytesPolicyMode(budget uint64, seed uint64, policy cuckoo.Policy, mode FilterCacheMode) *FilterCache {
	if budget < 16 {
		budget = 16
	}
	return newFilterCache(cuckoo.NewBytesPolicy(budget, seed, policy), mode)
}

// Mode reports the cache's resolved concurrency mode.
func (fc *FilterCache) Mode() FilterCacheMode {
	if fc.mu != nil {
		return FilterMutex
	}
	return FilterLockFree
}

// Contains checks a prefix hash, marking it hot on a hit.
func (fc *FilterCache) Contains(h uint64) bool {
	if fc.mu != nil {
		fc.mu.Lock()
		defer fc.mu.Unlock()
	}
	return fc.f.Contains(h)
}

// Insert learns a prefix hash.
func (fc *FilterCache) Insert(h uint64) {
	if fc.mu != nil {
		fc.mu.Lock()
		defer fc.mu.Unlock()
	}
	fc.f.Insert(h)
}

// ContainsWasHot checks a prefix hash like Contains (marking it hot on a
// hit) and additionally reports whether the entry was already hot before
// this probe — the signal the hot-key tracker uses as corroborating
// evidence of skew.
func (fc *FilterCache) ContainsWasHot(h uint64) (present, wasHot bool) {
	if fc.mu != nil {
		fc.mu.Lock()
		defer fc.mu.Unlock()
	}
	return fc.f.ContainsWasHot(h)
}

// HotEntries returns how many live filter entries currently carry the
// hotness bit (exported as the sfc_hot_entries gauge).
func (fc *FilterCache) HotEntries() uint64 {
	if fc.mu != nil {
		fc.mu.Lock()
		defer fc.mu.Unlock()
	}
	return fc.f.HotEntries()
}

// Delete unlearns a prefix hash (after a detected false positive).
func (fc *FilterCache) Delete(h uint64) {
	if fc.mu != nil {
		fc.mu.Lock()
		defer fc.mu.Unlock()
	}
	fc.f.Delete(h)
}

// SizeBytes returns the filter's memory footprint.
func (fc *FilterCache) SizeBytes() uint64 { return fc.f.SizeBytes() }

// FilterStats returns the underlying filter counters.
func (fc *FilterCache) FilterStats() cuckoo.Stats { return fc.f.Stats() }

// Occupancy returns the filter's occupied slots and total slot capacity.
func (fc *FilterCache) Occupancy() (occupied, capacity uint64) {
	return fc.f.Occupancy(), uint64(fc.f.Capacity())
}

// Load returns the filter's occupied-slot fraction.
func (fc *FilterCache) Load() float64 { return fc.f.Load() }

// AnalyticFPBound returns the filter's analytic false-positive bound at
// its current load.
func (fc *FilterCache) AnalyticFPBound() float64 { return fc.f.AnalyticFPBound() }

// Options tunes one Sphinx client.
type Options struct {
	// Filter is the CN's shared Succinct Filter Cache. If nil and
	// FilterEntries > 0, the client builds a private one; if nil and
	// FilterEntries == 0, a default-sized private one is built.
	Filter *FilterCache
	// FilterEntries sizes the private filter when Filter is nil.
	FilterEntries int
	// DisableFilter turns the Succinct Filter Cache off: every operation
	// falls back to the parallel multi-prefix hash read (the Θ(L) mode of
	// §III-B's analysis). Ablation lever.
	DisableFilter bool
	// LeafCache is the CN's shared speculative leaf-address cache. If nil
	// (and not disabled), the client builds a private one sized by
	// LeafCacheEntries (default 1<<16).
	LeafCache *LeafCache
	// LeafCacheEntries sizes the private leaf-address cache when LeafCache
	// is nil.
	LeafCacheEntries int
	// DisableLeafCache turns the speculative 1-RT fast path off: every
	// Search pays the full 3-RT hash path. Ablation lever.
	DisableLeafCache bool
	// DisableDirCache drops the client-side hash-table directory caches:
	// every bucket resolution reads the meta word and directory entry
	// remotely. Ablation lever for the §IV directory cache.
	DisableDirCache bool
	// Engine passes through node-engine tuning.
	Engine rart.Config
	// Seed makes the private filter deterministic.
	Seed uint64
	// Observer, when non-nil, is installed on the fabric client so every
	// doorbell batch is reported with its stage annotation (obs.Metrics
	// implements it). Shared observers must be concurrency-safe.
	Observer fabric.BatchObserver
	// Index, when non-nil, receives index-semantic distributions: SFC
	// hit depths and probe counts per locate, INHT candidate counts per
	// hash-entry lookup. Histograms are atomic, so one IndexMetrics may
	// be shared by all workers of a CN.
	Index *obs.IndexMetrics
	// Hot is the CN's shared hot-key tracker (sketch + replica route
	// caches). If nil and Shared.Hot is active, the client builds a
	// private one sized by HotSetBytes. Share one HotSet across a CN's
	// workers so promotion decisions see the CN's aggregate traffic.
	Hot *HotSet
	// HotSetBytes sizes the private tracker when Hot is nil (0 selects
	// DefaultHotSetBytes).
	HotSetBytes int
	// DisableHot turns the hot read-replication layer off for this client
	// even when the cluster has it bootstrapped. Ablation lever — only
	// meaningful cluster-wide (a writer with the layer off would leave
	// replica records stale for everyone else).
	DisableHot bool
}

// Stats counts Sphinx-level events per client.
type Stats struct {
	Searches        uint64
	Inserts         uint64
	Updates         uint64
	Deletes         uint64
	Scans           uint64
	FilterHits      uint64 // locates resolved via the filter cache
	FilterFallbacks uint64 // locates that fell back to the parallel read
	RootStarts      uint64 // locates that started at the root
	FalsePositives  uint64 // filter said yes, index said no (unlearned)
	CollisionRetry  uint64 // leaf-level common-prefix check tripped (§III-B)
	Restarts        uint64 // operation-level retries (coherence protocol)
	ParentRetries   uint64 // ErrNeedParent re-routes (structural, no backoff)
	StaleEntries    uint64 // invalid hash entries cleaned opportunistically
	FPMismatches    uint64 // candidate nodes read but failing the §III-B checks
	Failovers       uint64 // reads served from anchor replicas after node loss
	DegradedPuts    uint64 // writes/deletes served anchor-only (tree path dead)
	PartialReplicas uint64 // acked writes that reached fewer than R replicas
	AnchorConfirms  uint64 // degraded-mode absent answers verified via anchors
	SpecHits        uint64 // searches served by one speculative leaf read
	SpecMisses      uint64 // searches with no leaf-address-cache entry
	SpecRefutes     uint64 // speculative reads refuted in-place (unlearned)
	SpecAborts      uint64 // speculative reads abandoned on unstable leaf or fabric error
	EpochFallbacks  uint64 // reads served from the previous epoch mid-transition
	Cutovers        uint64 // membership transitions this client retired after convergence
	HotHits         uint64 // searches served by one verified hot-replica read
	HotRefutes      uint64 // hot-replica reads refuted in place (route unlearned)
	HotAborts       uint64 // hot-replica reads abandoned on a transient fabric fault
	HotPromotes     uint64 // keys promoted into replicated placement
	HotDemotes      uint64 // cooled keys torn back down to single-owner
	HotRefreshes    uint64 // writes that republished at least one hot record
}

// Add returns s + t, field-wise; used to aggregate workers.
func (s Stats) Add(t Stats) Stats {
	s.Searches += t.Searches
	s.Inserts += t.Inserts
	s.Updates += t.Updates
	s.Deletes += t.Deletes
	s.Scans += t.Scans
	s.FilterHits += t.FilterHits
	s.FilterFallbacks += t.FilterFallbacks
	s.RootStarts += t.RootStarts
	s.FalsePositives += t.FalsePositives
	s.CollisionRetry += t.CollisionRetry
	s.Restarts += t.Restarts
	s.ParentRetries += t.ParentRetries
	s.StaleEntries += t.StaleEntries
	s.FPMismatches += t.FPMismatches
	s.Failovers += t.Failovers
	s.DegradedPuts += t.DegradedPuts
	s.PartialReplicas += t.PartialReplicas
	s.AnchorConfirms += t.AnchorConfirms
	s.SpecHits += t.SpecHits
	s.SpecMisses += t.SpecMisses
	s.SpecRefutes += t.SpecRefutes
	s.SpecAborts += t.SpecAborts
	s.EpochFallbacks += t.EpochFallbacks
	s.Cutovers += t.Cutovers
	s.HotHits += t.HotHits
	s.HotRefutes += t.HotRefutes
	s.HotAborts += t.HotAborts
	s.HotPromotes += t.HotPromotes
	s.HotDemotes += t.HotDemotes
	s.HotRefreshes += t.HotRefreshes
	return s
}

// viewSet is a copy-on-write map of per-node hash-table views. The owning
// worker goroutine alone replaces it (growing it lazily when an elastic
// membership change introduces a node); metrics scrapes on other
// goroutines only Load and iterate a snapshot.
type viewSet struct {
	m map[mem.NodeID]*racehash.View
}

// Client is one worker's handle on a Sphinx index. Not safe for concurrent
// use; workers of one CN share only the FilterCache.
type Client struct {
	shared  Shared
	members *Membership
	eng     *rart.Engine
	views   atomic.Pointer[viewSet]
	filter  *FilterCache
	lac     *LeafCache
	opts    Options
	// stats fields are incremented atomically and loaded atomically by
	// Stats(), so a live metrics scrape can snapshot a client while its
	// worker goroutine runs operations.
	stats Stats
	index *obs.IndexMetrics // nil when index distributions are off
	rec   *obs.Recorder     // armed per-op by Session.Trace; nil when idle

	// Fault-tolerance state (empty without Shared.FT): per-node views on
	// the anchor tables, copy-on-write like views.
	anchorViews atomic.Pointer[viewSet]

	// Hot-replication state (inert without Shared.Hot): per-node views on
	// the hot-record tables, the CN's hot-key tracker, the SFC hotness
	// observation of the last locate, and target-resolution scratch.
	hotViews       atomic.Pointer[viewSet]
	hotset         *HotSet
	sfcWasHot      bool
	hotNodeScratch []mem.NodeID

	// Warm-path scratch, reused across operations (clients are
	// single-goroutine). Valid only within one locate step.
	candScratch []racehash.Candidate
	opScratch   []fabric.Op
	bufScratch  [][]byte
	nodeScratch []*rart.Node
}

// NewClient mounts a Sphinx index over one fabric client.
func NewClient(shared Shared, c *fabric.Client, opts Options) *Client {
	members := shared.Members
	if members == nil {
		// Hand-built Shared (tests, static deployments): synthesize the
		// epoch-0 placement from the legacy fields.
		p := &Placement{Ring: shared.Ring, Tables: shared.Tables}
		if shared.FT != nil {
			p.Anchors = shared.FT.Anchors
		}
		members = NewMembership(p)
	}
	if ft := shared.FT; ft != nil {
		// Steer new tree allocations (inner nodes, leaves) to the first
		// healthy successor on the CURRENT ring, so post-loss growth avoids
		// dead nodes and post-rebalance growth lands on the new placement.
		opts.Engine.Place = func(key []byte) mem.NodeID {
			return ft.place(members.Current().Ring, key)
		}
	} else {
		opts.Engine.Place = func(key []byte) mem.NodeID {
			return members.Current().Ring.OwnerKey(key)
		}
	}
	alloc := mem.NewAllocator(c, 0)
	cl := &Client{
		shared:  shared,
		members: members,
		eng:     rart.NewEngine(c, alloc, shared.Ring, opts.Engine),
		filter:  opts.Filter,
		lac:     opts.LeafCache,
		opts:    opts,
		index:   opts.Index,
	}
	cur := members.Current()
	views := &viewSet{m: make(map[mem.NodeID]*racehash.View, len(cur.Tables))}
	for node, t := range cur.Tables {
		views.m[node] = cl.newDirView(t, c)
	}
	cl.views.Store(views)
	anchors := &viewSet{m: make(map[mem.NodeID]*racehash.View, len(cur.Anchors))}
	for node, t := range cur.Anchors {
		anchors.m[node] = racehash.NewView(t, c)
	}
	cl.anchorViews.Store(anchors)
	cl.hotViews.Store(&viewSet{m: make(map[mem.NodeID]*racehash.View)})
	if hot := shared.Hot; hot != nil && !opts.DisableHot {
		cl.hotset = opts.Hot
		if cl.hotset == nil {
			cl.hotset = NewHotSet(uint64(opts.HotSetBytes), opts.Seed, hot.R)
		}
	}
	if cl.filter == nil && !opts.DisableFilter {
		n := opts.FilterEntries
		if n == 0 {
			n = 1 << 16
		}
		cl.filter = NewFilterCache(n, opts.Seed|1)
	}
	if cl.lac == nil && !opts.DisableLeafCache {
		n := opts.LeafCacheEntries
		if n == 0 {
			n = 1 << 16
		}
		cl.lac = NewLeafCache(n, opts.Seed)
	}
	if opts.Observer != nil {
		c.SetObserver(opts.Observer)
	}
	return cl
}

// SetRecorder arms (or, with nil, disarms) a per-operation trace
// recorder: locate and the op entry points annotate local events —
// filter probes, collisions, restarts — on it. Batch events reach the
// recorder through the fabric observer; Session.Trace wires both ends.
func (c *Client) SetRecorder(r *obs.Recorder) { c.rec = r }

// Engine exposes the node engine (fabric client, allocator) for stats.
func (c *Client) Engine() *rart.Engine { return c.eng }

// Stats returns a snapshot of the client's counters, loaded atomically so
// it is safe to call concurrently with the worker driving the client.
func (c *Client) Stats() Stats {
	var s Stats
	s.Searches = atomic.LoadUint64(&c.stats.Searches)
	s.Inserts = atomic.LoadUint64(&c.stats.Inserts)
	s.Updates = atomic.LoadUint64(&c.stats.Updates)
	s.Deletes = atomic.LoadUint64(&c.stats.Deletes)
	s.Scans = atomic.LoadUint64(&c.stats.Scans)
	s.FilterHits = atomic.LoadUint64(&c.stats.FilterHits)
	s.FilterFallbacks = atomic.LoadUint64(&c.stats.FilterFallbacks)
	s.RootStarts = atomic.LoadUint64(&c.stats.RootStarts)
	s.FalsePositives = atomic.LoadUint64(&c.stats.FalsePositives)
	s.CollisionRetry = atomic.LoadUint64(&c.stats.CollisionRetry)
	s.Restarts = atomic.LoadUint64(&c.stats.Restarts)
	s.ParentRetries = atomic.LoadUint64(&c.stats.ParentRetries)
	s.StaleEntries = atomic.LoadUint64(&c.stats.StaleEntries)
	s.FPMismatches = atomic.LoadUint64(&c.stats.FPMismatches)
	s.Failovers = atomic.LoadUint64(&c.stats.Failovers)
	s.DegradedPuts = atomic.LoadUint64(&c.stats.DegradedPuts)
	s.PartialReplicas = atomic.LoadUint64(&c.stats.PartialReplicas)
	s.AnchorConfirms = atomic.LoadUint64(&c.stats.AnchorConfirms)
	s.SpecHits = atomic.LoadUint64(&c.stats.SpecHits)
	s.SpecMisses = atomic.LoadUint64(&c.stats.SpecMisses)
	s.SpecRefutes = atomic.LoadUint64(&c.stats.SpecRefutes)
	s.SpecAborts = atomic.LoadUint64(&c.stats.SpecAborts)
	s.EpochFallbacks = atomic.LoadUint64(&c.stats.EpochFallbacks)
	s.Cutovers = atomic.LoadUint64(&c.stats.Cutovers)
	s.HotHits = atomic.LoadUint64(&c.stats.HotHits)
	s.HotRefutes = atomic.LoadUint64(&c.stats.HotRefutes)
	s.HotAborts = atomic.LoadUint64(&c.stats.HotAborts)
	s.HotPromotes = atomic.LoadUint64(&c.stats.HotPromotes)
	s.HotDemotes = atomic.LoadUint64(&c.stats.HotDemotes)
	s.HotRefreshes = atomic.LoadUint64(&c.stats.HotRefreshes)
	return s
}

// HashStats aggregates the inner-node-hash-table view counters across all
// memory nodes this client talks to. Safe to call from scrape goroutines:
// the view set is copy-on-write.
func (c *Client) HashStats() racehash.Stats {
	var total racehash.Stats
	for _, v := range c.views.Load().m {
		total = total.Add(v.Stats())
	}
	return total
}

// Filter returns the client's filter cache (nil when disabled).
func (c *Client) Filter() *FilterCache { return c.filter }

// LeafCache returns the client's speculative leaf-address cache (nil when
// disabled).
func (c *Client) LeafCache() *LeafCache { return c.lac }

// HotSet returns the client's hot-key tracker (nil when the hot layer is
// off for this client).
func (c *Client) HotSet() *HotSet { return c.hotset }

// CacheBytes reports the client's total CN-side cache consumption: the
// succinct filter cache plus the hash-table directory caches (paper §IV:
// "typically 2-5% of the succinct filter cache size").
func (c *Client) CacheBytes() uint64 {
	var total uint64
	if c.filter != nil {
		total += c.filter.SizeBytes()
	}
	if c.lac != nil {
		total += c.lac.SizeBytes()
	}
	for _, v := range c.views.Load().m {
		total += v.DirCacheBytes()
	}
	return total
}

// newDirView builds an INHT view honoring the directory-cache ablation.
func (c *Client) newDirView(t racehash.Table, fc *fabric.Client) *racehash.View {
	if c.opts.DisableDirCache {
		return racehash.NewViewNoCache(t, fc)
	}
	return racehash.NewView(t, fc)
}

// ring returns the current epoch's consistent-hash ring.
func (c *Client) ring() *consistenthash.Ring { return c.members.Current().Ring }

// placeIn resolves the memory node owning key under placement p: the ring
// owner, or (with fault tolerance) the first healthy successor.
func (c *Client) placeIn(p *Placement, key []byte) mem.NodeID {
	if ft := c.shared.FT; ft != nil {
		return ft.place(p.Ring, key)
	}
	return p.Ring.OwnerKey(key)
}

// viewOf returns the client's view on node's inner-node hash table,
// creating it lazily for nodes that joined after the client did. The
// table is resolved from the current placement, falling back to the
// in-transition previous epoch. Returns nil for an unknown node.
func (c *Client) viewOf(node mem.NodeID) *racehash.View {
	if v, ok := c.views.Load().m[node]; ok {
		return v
	}
	p := c.members.Current()
	t, ok := p.Tables[node]
	if !ok && p.Prev != nil {
		t, ok = p.Prev.Tables[node]
	}
	if !ok {
		return nil
	}
	v := c.newDirView(t, c.eng.C)
	c.storeView(&c.views, node, v)
	return v
}

// anchorViewOf is viewOf for the anchor-replica tables.
func (c *Client) anchorViewOf(node mem.NodeID) *racehash.View {
	if v, ok := c.anchorViews.Load().m[node]; ok {
		return v
	}
	p := c.members.Current()
	t, ok := p.Anchors[node]
	if !ok && p.Prev != nil {
		t, ok = p.Prev.Anchors[node]
	}
	if !ok {
		return nil
	}
	v := racehash.NewView(t, c.eng.C)
	c.storeView(&c.anchorViews, node, v)
	return v
}

// storeView publishes a grown copy of a view set. Only the owning worker
// goroutine mutates view sets, so a plain load-copy-store suffices; the
// atomic pointer is for concurrent metrics scrapes.
func (c *Client) storeView(set *atomic.Pointer[viewSet], node mem.NodeID, v *racehash.View) {
	old := set.Load()
	next := &viewSet{m: make(map[mem.NodeID]*racehash.View, len(old.m)+1)}
	for n, ov := range old.m {
		next.m[n] = ov
	}
	next.m[node] = v
	set.Store(next)
}

// viewFor returns the hash-table view of the memory node owning a prefix
// under the current placement. With fault tolerance active, ownership
// skips dead nodes: new entries and lookups for prefixes whose ring owner
// died consistently use the first healthy successor's table.
func (c *Client) viewFor(prefix []byte) *racehash.View {
	return c.viewOf(c.placeIn(c.members.Current(), prefix))
}

// prevViewFor returns the previous epoch's view for a prefix during a
// membership transition, or nil when there is no transition or the owner
// did not change — reads then need no second probe.
func (c *Client) prevViewFor(p *Placement, prefix []byte) *racehash.View {
	if p.Prev == nil {
		return nil
	}
	prevOwner := c.placeIn(p.Prev, prefix)
	if prevOwner == c.placeIn(p, prefix) {
		return nil
	}
	return c.viewOf(prevOwner)
}
