// Pipelined execution: a Pipeline runs a window of operations with up to
// depth of them in flight, each on its own lane (a private core.Client
// over a fabric lane client). Lanes execute the ordinary resumable
// operation machinery from ops.go/locate.go unchanged — a lane goroutine
// blocked in a doorbell batch IS the suspended stage machine — while the
// fabric.Pipe coalesces the same-stage batches of all in-flight
// operations into shared doorbell flushes (one round trip each).
package core

import (
	"fmt"
	"sync"

	"sphinx/internal/fabric"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
)

// PipeKind selects the verb of one pipelined operation.
type PipeKind uint8

// The pipelined operation kinds.
const (
	PipeGet PipeKind = iota
	PipePut
	PipeUpdate
	PipeDelete
	PipeScan
)

// PipeOp is one operation in a pipelined window: inputs filled by the
// caller, results filled by Pipeline.Run. Latency spans the operation's
// own in-flight window on its lane's virtual clock.
type PipeOp struct {
	Kind  PipeKind
	Key   []byte
	Value []byte // Put/Update payload
	Hi    []byte // Scan upper bound (nil = open end)
	Limit int    // Scan result cap

	// Results, valid after Run returns.
	Val     []byte    // Get: the value found
	Found   bool      // Get/Update/Delete: key existed; Put: key already existed
	KVs     []rart.KV // Scan results
	Err     error
	StartPs int64
	EndPs   int64
}

// Pipeline executes windows of operations over a fixed set of lanes.
// Lanes (and their directory caches, backoff streams and lock-owner IDs)
// persist across Run calls, so a long-lived session keeps its warmth. A
// Pipeline is single-caller: one Run at a time.
type Pipeline struct {
	shared Shared
	opts   Options
	pipe   *fabric.Pipe

	// laneMu guards the lane slices: Run appends lanes on demand while a
	// metrics scrape may be aggregating Stats from another goroutine.
	laneMu sync.Mutex
	lanefc []*fabric.Client
	lanes  []*Client
}

// NewPipeline mounts a pipelined executor flushing on the given main
// client. All network accounting lands on that client. When opts carries
// no shared FilterCache (or leaf-address cache), one is created here and
// shared across lanes — per-lane private caches would be cold and
// scheduling-dependent. Sharing the LAC also means a speculative read on
// one lane coalesces into the same doorbell flush as the other lanes'
// batches, so the 1-RT fast path stacks with depth>1 pipelining.
func NewPipeline(shared Shared, main *fabric.Client, opts Options) *Pipeline {
	if opts.Filter == nil && !opts.DisableFilter {
		n := opts.FilterEntries
		if n == 0 {
			n = 1 << 16
		}
		opts.Filter = NewFilterCache(n, opts.Seed|1)
	}
	if opts.LeafCache == nil && !opts.DisableLeafCache {
		n := opts.LeafCacheEntries
		if n == 0 {
			n = 1 << 16
		}
		opts.LeafCache = NewLeafCache(n, opts.Seed)
	}
	return &Pipeline{shared: shared, opts: opts, pipe: fabric.NewPipe(main)}
}

// Pipe exposes the underlying coalescer (flush accounting for tests).
func (p *Pipeline) Pipe() *fabric.Pipe { return p.pipe }

// Lanes returns how many lanes have been materialized so far.
func (p *Pipeline) Lanes() int {
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	return len(p.lanes)
}

func (p *Pipeline) ensureLanes(n int) {
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	for len(p.lanes) < n {
		fc := p.pipe.NewLane()
		p.lanefc = append(p.lanefc, fc)
		p.lanes = append(p.lanes, NewClient(p.shared, fc, p.opts))
	}
}

// snapshotLanes returns the current lane set; the returned slice is safe
// to iterate while Run grows the pipeline.
func (p *Pipeline) snapshotLanes() []*Client {
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	return p.lanes[:len(p.lanes):len(p.lanes)]
}

// Run executes ops with up to depth in flight. Ops are dealt round-robin
// to lanes (lane i runs ops i, i+K, i+2K, …), which keeps the mapping —
// and with it every flush's composition — independent of goroutine
// scheduling. Run returns when every op has completed; per-op errors are
// reported in PipeOp.Err, not returned, so one failing op cannot hide
// the results of the window's others.
func (p *Pipeline) Run(ops []*PipeOp, depth int) {
	if len(ops) == 0 {
		return
	}
	k := depth
	if k < 1 {
		k = 1
	}
	if k > len(ops) {
		k = len(ops)
	}
	p.ensureLanes(k)
	p.pipe.BeginLanes(p.lanefc[:k])
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc, cl := p.lanefc[i], p.lanes[i]
			defer p.pipe.Done(fc)
			for j := i; j < len(ops); j += k {
				runPipeOp(cl, fc, ops[j])
			}
		}(i)
	}
	wg.Wait()
}

func runPipeOp(cl *Client, fc *fabric.Client, op *PipeOp) {
	op.StartPs = fc.Clock()
	switch op.Kind {
	case PipeGet:
		op.Val, op.Found, op.Err = cl.Search(op.Key)
	case PipePut:
		op.Found, op.Err = cl.Insert(op.Key, op.Value)
	case PipeUpdate:
		op.Found, op.Err = cl.Update(op.Key, op.Value)
	case PipeDelete:
		op.Found, op.Err = cl.Delete(op.Key)
	case PipeScan:
		op.KVs, op.Err = cl.Scan(op.Key, op.Hi, op.Limit)
	default:
		op.Err = fmt.Errorf("core: unknown pipelined op kind %d", op.Kind)
	}
	op.EndPs = fc.Clock()
}

// Stats aggregates the Sphinx-level counters of all lanes.
func (p *Pipeline) Stats() Stats {
	var agg Stats
	for _, cl := range p.snapshotLanes() {
		agg = agg.Add(cl.Stats())
	}
	return agg
}

// EngineStats aggregates the node-engine recovery counters of all lanes.
func (p *Pipeline) EngineStats() rart.EngineStats {
	var agg rart.EngineStats
	for _, cl := range p.snapshotLanes() {
		agg = agg.Add(cl.Engine().Stats())
	}
	return agg
}

// HashStats aggregates the inner-node-hash-table view counters of all
// lanes.
func (p *Pipeline) HashStats() racehash.Stats {
	var agg racehash.Stats
	for _, cl := range p.snapshotLanes() {
		agg = agg.Add(cl.HashStats())
	}
	return agg
}
