package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sphinx/internal/fabric"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// The chaos suite drives mixed workloads through the fault-injection
// fabric (docs/failure-model.md) and checks the invariants the retry and
// recovery machinery owes the caller: no lost updates, no false absences,
// convergence to the fault-free result, and progress past crashed lock
// holders.

// chaosPlan exercises every probabilistic fault class at once: ~2% of
// batches fail transiently, ~1% lose their completion, ~1% complete late.
func chaosPlan(seed uint64) *fabric.FaultPlan {
	return &fabric.FaultPlan{
		Seed:            seed,
		TransientPer64k: 1311,
		TimeoutPer64k:   655,
		TimeoutPs:       2_000_000,
		DelayPer64k:     655,
		DelayPs:         5_000_000,
	}
}

// runChaosWorkload runs a fixed seeded single-client workload and returns
// the final index contents plus the client's fabric stats.
func runChaosWorkload(t *testing.T, plan *fabric.FaultPlan) ([]rart.KV, fabric.Stats) {
	t.Helper()
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	f.SetFaultPlan(plan)
	c := newTestClient(f, shared, Options{Seed: 7})
	rng := rand.New(rand.NewSource(99))
	oracle := map[string]string{}
	for step := 0; step < 1500; step++ {
		k := fmt.Sprintf("chaos-%03d", rng.Intn(150))
		switch rng.Intn(5) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			if _, err := c.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d insert %q: %v", step, k, err)
			}
			oracle[k] = v
		case 2:
			if _, err := c.Delete([]byte(k)); err != nil {
				t.Fatalf("step %d delete %q: %v", step, k, err)
			}
			delete(oracle, k)
		default:
			got, ok, err := c.Search([]byte(k))
			if err != nil {
				t.Fatalf("step %d search %q: %v", step, k, err)
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d: search %q = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
	// Read the final contents fault-free.
	f.SetFaultPlan(nil)
	verify := newTestClient(f, shared, Options{})
	kvs, err := verify.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(oracle) {
		t.Fatalf("final scan has %d keys, oracle has %d", len(kvs), len(oracle))
	}
	for _, kv := range kvs {
		if oracle[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("final %q = %q, oracle %q", kv.Key, kv.Value, oracle[string(kv.Key)])
		}
	}
	return kvs, c.Engine().C.Stats()
}

// TestChaosConvergence: the same workload converges to the same final
// contents with faults injected as without, and the same plan seed yields
// the same fault sequence.
func TestChaosConvergence(t *testing.T) {
	faulted, st := runChaosWorkload(t, chaosPlan(42))
	if st.Transients == 0 || st.Timeouts == 0 || st.Delays == 0 {
		t.Fatalf("workload did not exercise every fault class: %+v", st)
	}
	again, st2 := runChaosWorkload(t, chaosPlan(42))
	if st != st2 {
		t.Errorf("same seed, different fault sequence: %+v vs %+v", st, st2)
	}
	clean, cleanSt := runChaosWorkload(t, nil)
	if cleanSt.Transients != 0 || cleanSt.Timeouts != 0 || cleanSt.Delays != 0 {
		t.Errorf("fault-free run has fault stats: %+v", cleanSt)
	}
	for i, runKVs := range [][]rart.KV{again, clean} {
		if len(runKVs) != len(faulted) {
			t.Fatalf("run %d: %d keys vs %d", i, len(runKVs), len(faulted))
		}
		for j := range runKVs {
			if !bytes.Equal(runKVs[j].Key, faulted[j].Key) || !bytes.Equal(runKVs[j].Value, faulted[j].Value) {
				t.Fatalf("run %d diverges at %q", i, runKVs[j].Key)
			}
		}
	}
}

// TestChaosConcurrentMixedFaults: concurrent workers under every
// probabilistic fault class at once. Each worker owns a key range (its
// updates must never be lost) and all workers read a shared preloaded
// range (those keys must never go absent).
func TestChaosConcurrentMixedFaults(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 4000)
	preload := newTestClient(f, shared, Options{})
	const sharedKeys = 40
	for i := 0; i < sharedKeys; i++ {
		if _, err := preload.Insert([]byte(fmt.Sprintf("s-%03d", i)), []byte("stable")); err != nil {
			t.Fatal(err)
		}
	}
	f.SetFaultPlan(chaosPlan(7))

	const workers = 6
	oracles := make([]map[string]string, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(w)})
			rng := rand.New(rand.NewSource(int64(w)))
			oracle := map[string]string{}
			oracles[w] = oracle
			key := func(i int) string { return fmt.Sprintf("%c-key-%03d", 'a'+w, i) }
			for step := 0; step < 250; step++ {
				k := key(rng.Intn(40))
				switch rng.Intn(6) {
				case 0, 1:
					v := fmt.Sprintf("w%d.%d", w, step)
					if _, err := c.Insert([]byte(k), []byte(v)); err != nil {
						errs <- fmt.Errorf("w%d insert: %w", w, err)
						return
					}
					oracle[k] = v
				case 2:
					if _, err := c.Delete([]byte(k)); err != nil {
						errs <- fmt.Errorf("w%d delete: %w", w, err)
						return
					}
					delete(oracle, k)
				case 3:
					// Shared read-only keys must never look absent.
					sk := fmt.Sprintf("s-%03d", rng.Intn(sharedKeys))
					v, ok, err := c.Search([]byte(sk))
					if err != nil || !ok || string(v) != "stable" {
						errs <- fmt.Errorf("w%d: shared key %q = %q,%v,%v", w, sk, v, ok, err)
						return
					}
				case 4:
					// A scan over the worker's own range sees exactly its
					// own writes.
					kvs, err := c.Scan([]byte(key(0)), []byte(key(999)), 0)
					if err != nil {
						errs <- fmt.Errorf("w%d scan: %w", w, err)
						return
					}
					seen := map[string]string{}
					for _, kv := range kvs {
						seen[string(kv.Key)] = string(kv.Value)
					}
					for k := range seen {
						if _, ok := oracle[k]; !ok {
							errs <- fmt.Errorf("w%d scan step %d: ghost key %q=%q (oracle %d, scan %d)", w, step, k, seen[k], len(oracle), len(kvs))
							return
						}
					}
					for k := range oracle {
						if _, ok := seen[k]; !ok {
							errs <- fmt.Errorf("w%d scan step %d: missing key %q (oracle %d, scan %d)", w, step, k, len(oracle), len(kvs))
							return
						}
					}
					if len(kvs) != len(seen) {
						errs <- fmt.Errorf("w%d scan step %d: %d entries but %d distinct keys", w, step, len(kvs), len(seen))
						return
					}
				default:
					v, ok, err := c.Search([]byte(k))
					if err != nil {
						errs <- fmt.Errorf("w%d search: %w", w, err)
						return
					}
					want, wantOK := oracle[k]
					if ok != wantOK || (ok && string(v) != want) {
						errs <- fmt.Errorf("w%d: %q = %q,%v want %q,%v", w, k, v, ok, want, wantOK)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	f.SetFaultPlan(nil)
	verify := newTestClient(f, shared, Options{})
	for w := 0; w < workers; w++ {
		for k, want := range oracles[w] {
			v, ok, err := verify.Search([]byte(k))
			if err != nil || !ok || string(v) != want {
				t.Fatalf("lost update: %q = %q,%v,%v want %q", k, v, ok, err, want)
			}
		}
	}
	for i := 0; i < sharedKeys; i++ {
		k := fmt.Sprintf("s-%03d", i)
		if _, ok, err := verify.Search([]byte(k)); err != nil || !ok {
			t.Fatalf("shared key %q absent after chaos: %v", k, err)
		}
	}
}

// TestChaosNodeDown: operations issued while a memory node is down retry
// through the backoff schedule and complete once the window passes.
func TestChaosNodeDown(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	nodeIDs := shared.Ring.Nodes()
	f.SetFaultPlan(&fabric.FaultPlan{
		Seed: 3,
		Down: []fabric.DownWindow{{Node: nodeIDs[0], FromPs: 0, ToPs: 300_000_000}},
	})
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	rejects := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(w)})
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("down-%d-%03d", w, i))
				if _, err := c.Insert(k, []byte("v")); err != nil {
					errs <- fmt.Errorf("w%d insert %q: %w", w, k, err)
					return
				}
			}
			rejects[w] = c.Engine().C.Stats().NodeDownRejects
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range rejects {
		total += r
	}
	if total == 0 {
		t.Fatal("no operation ever hit the down window; test exercises nothing")
	}
	f.SetFaultPlan(nil)
	verify := newTestClient(f, shared, Options{})
	for w := 0; w < workers; w++ {
		for i := 0; i < 60; i++ {
			k := []byte(fmt.Sprintf("down-%d-%03d", w, i))
			if _, ok, err := verify.Search(k); err != nil || !ok {
				t.Fatalf("%q lost across the down window: %v", k, err)
			}
		}
	}
}

// TestChaosLockSteal: a client that crashes while holding an inner-node
// lease must not block others — a waiter that watches the same lease for a
// full lease duration steals it and proceeds.
func TestChaosLockSteal(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.DefaultConfig(), 1000)
	a := newTestClient(f, shared, Options{})
	for _, k := range []string{"alpha", "beta"} {
		if _, err := a.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A takes the root lease and dies without releasing it.
	root, err := a.eng.ReadNode(shared.Root, wire.Node256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.eng.Lock(root.Addr, root.Hdr.Type, root.LeaseWord); err != nil {
		t.Fatal(err)
	}
	a.eng.C.Kill()

	// B's insert of a new top-level edge needs the root lease; it must
	// steal the dead client's lock and complete.
	b := newTestClient(f, shared, Options{})
	if _, err := b.Insert([]byte("zeta"), []byte("new")); err != nil {
		t.Fatalf("insert blocked by dead lock holder: %v", err)
	}
	if steals := b.Engine().Stats().LockSteals; steals == 0 {
		t.Error("LockSteals = 0; the stuck lease was never stolen")
	}
	for _, k := range []string{"alpha", "beta", "zeta"} {
		if _, ok, err := b.Search([]byte(k)); err != nil || !ok {
			t.Errorf("%q missing after steal: %v", k, err)
		}
	}
}

// TestChaosLeafLockBreak: a leaf whose holder crashed between the lock CAS
// and the image WRITE still carries the old checksum-valid image; waiters
// break the lock after a full lease of watching.
func TestChaosLeafLockBreak(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.DefaultConfig(), 1000)
	a := newTestClient(f, shared, Options{})
	key, val := []byte("victim"), []byte("old-value")
	if _, err := a.Insert(key, val); err != nil {
		t.Fatal(err)
	}
	root, err := a.eng.ReadNode(shared.Root, wire.Node256)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := a.eng.SearchFrom(root, key, rart.NopHooks{})
	if err != nil || leaf == nil {
		t.Fatalf("leaf lookup: %v", err)
	}
	idle := wire.LeafHeader{
		Status: wire.StatusIdle, Units: leaf.Units,
		KeyLen: uint16(len(key)), ValLen: uint32(len(val)),
	}.Encode()
	old, err := a.eng.C.CompareSwap(leaf.Addr, idle, wire.WithStatus(idle, wire.StatusLocked))
	if err != nil || old != idle {
		t.Fatalf("could not wedge leaf lock: old=%#x err=%v", old, err)
	}
	a.eng.C.Kill()

	b := newTestClient(f, shared, Options{})
	got, ok, err := b.Search(key)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("search under stuck leaf lock = %q,%v,%v", got, ok, err)
	}
	if _, err := b.Update(key, []byte("new-value")); err != nil {
		t.Fatalf("update blocked by stuck leaf lock: %v", err)
	}
	if breaks := b.Engine().Stats().LeafLockBreaks; breaks == 0 {
		t.Error("LeafLockBreaks = 0; the stuck leaf lock was never broken")
	}
	if got, ok, _ := b.Search(key); !ok || !bytes.Equal(got, []byte("new-value")) {
		t.Errorf("after break: %q = %q,%v", key, got, ok)
	}
}

// TestChaosCrashMidWrite: a client killed by the fault plan partway
// through its verb stream (wherever that lands it — possibly holding
// locks) must not stop a later client from writing the same key space.
func TestChaosCrashMidWrite(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	f.SetFaultPlan(&fabric.FaultPlan{Seed: 5, CrashAfterVerbs: map[int]uint64{0: 600}})
	a := newTestClient(f, shared, Options{})
	if a.eng.C.ID() != 0 {
		t.Fatalf("first client ID = %d, want 0", a.eng.C.ID())
	}
	crashed := false
	for i := 0; i < 400 && !crashed; i++ {
		k := []byte(fmt.Sprintf("cr-%03d", i))
		if _, err := a.Insert(k, []byte("from-a")); err != nil {
			if !errors.Is(err, fabric.ErrClientCrashed) {
				t.Fatalf("insert %q: %v", k, err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("workload finished before the planned crash point")
	}
	b := newTestClient(f, shared, Options{})
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("cr-%03d", i))
		if _, err := b.Insert(k, []byte("from-b")); err != nil {
			t.Fatalf("survivor insert %q: %v", k, err)
		}
	}
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("cr-%03d", i))
		v, ok, err := b.Search(k)
		if err != nil || !ok || string(v) != "from-b" {
			t.Fatalf("%q = %q,%v,%v after recovery", k, v, ok, err)
		}
	}
}

// TestChaosPipelinedConvergence drives the mixed-fault oracle workload
// through pipelined windows: every probabilistic fault class fires under
// coalesced doorbell flushes, each fault must stay isolated to the
// in-flight operation it hit (the lane's retry machinery absorbs it, so
// PipeOp.Err stays nil), and the index must converge to the oracle.
// Windows use distinct keys so concurrent lanes never race on one key and
// the oracle stays well-defined.
func TestChaosPipelinedConvergence(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	f.SetFaultPlan(chaosPlan(23))
	main := f.NewClient()
	pl := NewPipeline(shared, main, Options{Seed: 11})

	const depth, perWindow, rounds = 6, 24, 50
	rng := rand.New(rand.NewSource(17))
	oracle := map[string]string{}
	ops := make([]*PipeOp, 0, perWindow)
	for round := 0; round < rounds; round++ {
		ops = ops[:0]
		used := map[string]bool{}
		for len(ops) < perWindow {
			k := fmt.Sprintf("pchaos-%03d", rng.Intn(240))
			if used[k] {
				continue
			}
			used[k] = true
			op := &PipeOp{Key: []byte(k)}
			switch rng.Intn(5) {
			case 0, 1:
				op.Kind = PipePut
				op.Value = []byte(fmt.Sprintf("r%d.%d", round, len(ops)))
			case 2:
				op.Kind = PipeDelete
			default:
				op.Kind = PipeGet
			}
			ops = append(ops, op)
		}
		pl.Run(ops, depth)
		for _, op := range ops {
			k := string(op.Key)
			if op.Err != nil {
				t.Fatalf("round %d: %q err = %v (faults must be absorbed per lane)", round, k, op.Err)
			}
			want, existed := oracle[k]
			switch op.Kind {
			case PipePut:
				// Found is not checked: a faulted-and-retried insert can
				// observe its own first attempt and report the key present.
				oracle[k] = string(op.Value)
			case PipeDelete:
				delete(oracle, k)
			case PipeGet:
				if op.Found != existed || (existed && string(op.Val) != want) {
					t.Fatalf("round %d: get %q = %q,%v want %q,%v", round, k, op.Val, op.Found, want, existed)
				}
			}
		}
	}

	st := main.Stats()
	if st.Transients == 0 || st.Timeouts == 0 || st.Delays == 0 {
		t.Fatalf("pipelined workload did not exercise every fault class: %+v", st)
	}
	if flushes, verbs := pl.Pipe().Coalesced(); flushes == 0 || verbs == 0 {
		t.Fatal("no coalesced flushes; the windows ran effectively sequentially")
	}

	// The final contents, read fault-free, must match the oracle exactly.
	f.SetFaultPlan(nil)
	verify := newTestClient(f, shared, Options{})
	kvs, err := verify.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(oracle) {
		t.Fatalf("final scan has %d keys, oracle has %d", len(kvs), len(oracle))
	}
	for _, kv := range kvs {
		if oracle[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("final %q = %q, oracle %q", kv.Key, kv.Value, oracle[string(kv.Key)])
		}
	}
}

// TestChaosPipelinedNodeDown: a pipelined window issued against a downed
// memory node blocks in lane backoff like a sequential client would, then
// completes once the window passes — no op may fail or be dropped.
func TestChaosPipelinedNodeDown(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	nodeIDs := shared.Ring.Nodes()
	f.SetFaultPlan(&fabric.FaultPlan{
		Seed: 9,
		Down: []fabric.DownWindow{{Node: nodeIDs[0], FromPs: 0, ToPs: 300_000_000}},
	})
	main := f.NewClient()
	pl := NewPipeline(shared, main, Options{Seed: 3})
	const n = 48
	ops := make([]*PipeOp, n)
	for i := range ops {
		ops[i] = &PipeOp{
			Kind:  PipePut,
			Key:   []byte(fmt.Sprintf("pdown-%03d", i)),
			Value: []byte("v"),
		}
	}
	pl.Run(ops, 8)
	for _, op := range ops {
		if op.Err != nil {
			t.Fatalf("put %q: %v", op.Key, op.Err)
		}
	}
	if main.Stats().NodeDownRejects == 0 {
		t.Fatal("no operation ever hit the down window; test exercises nothing")
	}
	f.SetFaultPlan(nil)
	verify := newTestClient(f, shared, Options{})
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("pdown-%03d", i))
		if _, ok, err := verify.Search(k); err != nil || !ok {
			t.Fatalf("%q lost across the down window: %v", k, err)
		}
	}
}
