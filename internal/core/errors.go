package core

import (
	"errors"
	"fmt"

	"sphinx/internal/fabric"
	"sphinx/internal/rart"
)

// Typed terminal errors. Operations that give up return one of these
// sentinels wrapped with the operation name and key, so callers can match
// with errors.Is and still see what failed.
var (
	// ErrRetriesExhausted is returned when an operation burned its whole
	// retry budget without completing. It is the same sentinel the node
	// engine uses for lock and read retries, so errors.Is matches
	// exhaustion anywhere in the stack.
	ErrRetriesExhausted = rart.ErrRetriesExhausted

	// ErrNodeUnavailable is returned instead of ErrRetriesExhausted when
	// the budget ran out while a memory node was rejecting every attempt
	// (a fault plan's down window outlasted the backoff schedule).
	ErrNodeUnavailable = errors.New("core: memory node unavailable")

	// ErrInvalidScan reports a malformed Scan range before any round trip
	// is paid.
	ErrInvalidScan = errors.New("core: invalid scan range")

	// ErrReplicaSetUnavailable is the typed terminal error of the
	// fault-tolerance layer: every replica of a key's anchor set is
	// unreachable, so the operation cannot be served (or acknowledged) even
	// degraded. It means more simultaneous MN losses than the replication
	// factor tolerates.
	ErrReplicaSetUnavailable = errors.New("core: replica set unavailable")
)

// exhausted builds the terminal error for an operation that ran out of
// retries, picking the sentinel by what the operation last saw.
func exhausted(op string, key []byte, last error) error {
	base := ErrRetriesExhausted
	if errors.Is(last, fabric.ErrNodeDown) {
		base = ErrNodeUnavailable
	}
	if last != nil {
		return fmt.Errorf("%w: %s for %q (last: %v)", base, op, key, last)
	}
	return fmt.Errorf("%w: %s for %q", base, op, key)
}
