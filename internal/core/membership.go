// Elastic memory-node membership: epoch-versioned placement snapshots.
//
// The cluster's placement state — the consistent-hash ring plus the
// per-node hash tables it points into — was frozen at bootstrap. Elastic
// membership wraps it in an immutable Placement snapshot carrying an
// epoch number, published through one atomic pointer. Adding or draining
// a memory node derives a NEW snapshot (rings are immutable; see
// consistenthash.WithNode/WithoutNode) whose Prev field keeps the old
// epoch readable: during the transition, readers consult the current
// placement first and fall back to the previous one, so every key stays
// findable while the migrator copies state range by range. Once a
// migration sweep reports nothing left to move, Cutover retires the old
// epoch and the transition window closes.
//
// Invariants:
//
//   - At most one transition is active at a time (Prev chains never grow
//     past length one); BeginChange rejects overlap with
//     ErrTransitionActive.
//   - A Placement is never mutated after publication. Clients snapshot it
//     once per decision (Current()), so a single operation sees one
//     coherent (ring, tables) pair even if a cutover lands mid-flight.
//   - Cutover only strips Prev; the current epoch's ring and tables are
//     untouched, so a racing reader that loaded the pre-cutover snapshot
//     keeps working — it merely probes the old epoch's tables and finds
//     them empty of migrated entries.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/racehash"
)

// ErrTransitionActive reports an AddMemoryNode/DrainMemoryNode attempted
// while a previous membership change has not cut over yet. Finish the
// running migration (MigrateSweep until converged) first.
var ErrTransitionActive = errors.New("core: membership transition already active")

// Placement is one epoch's immutable placement snapshot: which memory
// nodes exist, how keys map onto them, and where each node's inner-node
// hash table (and anchor table, under fault tolerance) lives.
type Placement struct {
	// Epoch numbers placements monotonically from 0 (bootstrap).
	Epoch uint64
	// Ring is this epoch's consistent-hash ring.
	Ring *consistenthash.Ring
	// Tables maps each member node to its inner-node hash table.
	Tables map[mem.NodeID]racehash.Table
	// Anchors maps each member node to its anchor-replica table; nil when
	// the fault-tolerance layer is off.
	Anchors map[mem.NodeID]racehash.Table
	// Prev is the preceding epoch, non-nil only while its migration is in
	// flight. Readers fall back to it for state not yet moved.
	Prev *Placement
}

// Membership publishes the cluster's placement snapshots. One shared
// instance lives in Shared; all clients read it lock-free.
type Membership struct {
	cur atomic.Pointer[Placement]
}

// NewMembership wraps an initial placement (epoch 0, no transition).
func NewMembership(p *Placement) *Membership {
	m := &Membership{}
	m.cur.Store(p)
	return m
}

// Current returns the live placement snapshot. Callers must capture it
// once per decision rather than re-reading mid-operation.
func (m *Membership) Current() *Placement { return m.cur.Load() }

// Transitioning reports whether a membership change is mid-migration.
func (m *Membership) Transitioning() bool { return m.cur.Load().Prev != nil }

// BeginChange derives and publishes the next epoch. derive receives the
// current placement and returns the new one with Epoch and Prev unset —
// BeginChange fills both. It fails with ErrTransitionActive if the
// previous change has not cut over.
func (m *Membership) BeginChange(derive func(cur *Placement) (*Placement, error)) (*Placement, error) {
	for {
		cur := m.cur.Load()
		if cur.Prev != nil {
			return nil, ErrTransitionActive
		}
		next, err := derive(cur)
		if err != nil {
			return nil, err
		}
		next.Epoch = cur.Epoch + 1
		next.Prev = cur
		if m.cur.CompareAndSwap(cur, next) {
			return next, nil
		}
	}
}

// Cutover retires the previous epoch, ending the transition window. It
// returns the now-final placement and whether a transition was actually
// closed (false means there was nothing to cut over).
func (m *Membership) Cutover() (*Placement, bool) {
	for {
		cur := m.cur.Load()
		if cur.Prev == nil {
			return cur, false
		}
		final := *cur
		final.Prev = nil
		if m.cur.CompareAndSwap(cur, &final) {
			return &final, true
		}
	}
}

// BeginAddNode opens the transition that brings memory node id — already
// registered with the fabric via AddNode — into the placement: it
// bootstraps the node's inner-node hash table (and anchor table, under
// fault tolerance) sized like the original bootstrap's, then publishes a
// new epoch whose ring includes the node. The tree and anchor state that
// the new node now owns is moved by MigrateSweep; until a sweep converges
// and cuts over, reads fall back to the old owners.
func BeginAddNode(f *fabric.Fabric, sh Shared, id mem.NodeID, expectedKeys int) (*Placement, error) {
	if sh.Members == nil {
		return nil, errors.New("core: elastic membership requires a membership-aware bootstrap")
	}
	cur := sh.Members.Current()
	if cur.Ring.Contains(id) {
		return nil, fmt.Errorf("core: node %d already a member", id)
	}
	alloc := mem.NewAllocator(f.Regions(), 0)
	members := len(cur.Ring.Nodes()) + 1
	table, err := racehash.Bootstrap(f.Region(id), alloc, id, expectedKeys/(4*members)+1)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap hash table on node %d: %w", id, err)
	}
	var anchorTable racehash.Table
	if sh.FT != nil {
		anchorTable, err = racehash.Bootstrap(f.Region(id), alloc, id, expectedKeys*sh.FT.R/members+1)
		if err != nil {
			return nil, fmt.Errorf("core: bootstrap anchor table on node %d: %w", id, err)
		}
	}
	return sh.Members.BeginChange(func(cur *Placement) (*Placement, error) {
		ring, err := cur.Ring.WithNode(id)
		if err != nil {
			return nil, err
		}
		next := &Placement{Ring: ring, Tables: extendTables(cur.Tables, id, table)}
		if sh.FT != nil {
			next.Anchors = extendTables(cur.Anchors, id, anchorTable)
		}
		return next, nil
	})
}

// BeginDrainNode opens the transition that removes memory node id from
// the placement gracefully: the node stays alive and readable while
// MigrateSweep relocates everything it owns to the surviving members;
// only after convergence does the cutover stop routing to it. (Contrast
// with KillNode, the crash-failure path — see docs/failure-model.md.)
// The node hosting the pinned tree root cannot be drained.
func BeginDrainNode(sh Shared, id mem.NodeID) (*Placement, error) {
	if sh.Members == nil {
		return nil, errors.New("core: elastic membership requires a membership-aware bootstrap")
	}
	if sh.Root.Node() == id {
		return nil, fmt.Errorf("core: node %d hosts the pinned tree root and cannot be drained", id)
	}
	return sh.Members.BeginChange(func(cur *Placement) (*Placement, error) {
		ring, err := cur.Ring.WithoutNode(id)
		if err != nil {
			return nil, err
		}
		// The drained node's tables stay reachable through Prev for the
		// duration of the migration and are empty by convergence.
		next := &Placement{Ring: ring, Tables: dropTable(cur.Tables, id)}
		if cur.Anchors != nil {
			next.Anchors = dropTable(cur.Anchors, id)
		}
		return next, nil
	})
}

func extendTables(m map[mem.NodeID]racehash.Table, id mem.NodeID, t racehash.Table) map[mem.NodeID]racehash.Table {
	out := make(map[mem.NodeID]racehash.Table, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[id] = t
	return out
}

func dropTable(m map[mem.NodeID]racehash.Table, id mem.NodeID) map[mem.NodeID]racehash.Table {
	out := make(map[mem.NodeID]racehash.Table, len(m))
	for k, v := range m {
		if k != id {
			out[k] = v
		}
	}
	return out
}
