package core

import (
	"fmt"
	"testing"

	"sphinx/internal/fabric"
)

// loadKeys inserts n keys through a sequential client and returns them.
func loadKeys(t *testing.T, f *fabric.Fabric, shared Shared, filter *FilterCache, n int) [][]byte {
	t.Helper()
	c := newTestClient(f, shared, Options{Filter: filter})
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("pipe-key-%05d", i))
		if _, err := c.Insert(keys[i], []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestPipelineGetCorrectness(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 2000)
	filter := NewFilterCache(1<<16, 9)
	keys := loadKeys(t, f, shared, filter, 500)

	pl := NewPipeline(shared, f.NewClient(), Options{Filter: filter})
	ops := make([]*PipeOp, len(keys))
	for i, k := range keys {
		ops[i] = &PipeOp{Kind: PipeGet, Key: k}
	}
	pl.Run(ops, 8)
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("op %d: %v", i, op.Err)
		}
		if !op.Found || string(op.Val) != fmt.Sprintf("val-%05d", i) {
			t.Errorf("op %d: found=%v val=%q", i, op.Found, op.Val)
		}
		if op.EndPs <= op.StartPs {
			t.Errorf("op %d: non-positive latency window [%d,%d]", i, op.StartPs, op.EndPs)
		}
	}
	// Missing keys report Found=false without error.
	miss := []*PipeOp{{Kind: PipeGet, Key: []byte("pipe-key-nothere")}}
	pl.Run(miss, 4)
	if miss[0].Err != nil || miss[0].Found {
		t.Errorf("missing key: found=%v err=%v", miss[0].Found, miss[0].Err)
	}
}

func TestPipelineMixedOps(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	pl := NewPipeline(shared, f.NewClient(), Options{})

	const n = 200
	puts := make([]*PipeOp, n)
	for i := range puts {
		puts[i] = &PipeOp{Kind: PipePut,
			Key:   []byte(fmt.Sprintf("mix-%04d", i)),
			Value: []byte(fmt.Sprintf("v0-%04d", i))}
	}
	pl.Run(puts, 6)
	for i, op := range puts {
		if op.Err != nil || op.Found {
			t.Fatalf("put %d: existed=%v err=%v", i, op.Found, op.Err)
		}
	}

	// Update evens, delete every fourth, get all — distinct keys per window.
	var ops []*PipeOp
	for i := 0; i < n; i += 2 {
		ops = append(ops, &PipeOp{Kind: PipeUpdate,
			Key:   []byte(fmt.Sprintf("mix-%04d", i)),
			Value: []byte(fmt.Sprintf("v1-%04d", i))})
	}
	for i := 1; i < n; i += 4 {
		ops = append(ops, &PipeOp{Kind: PipeDelete, Key: []byte(fmt.Sprintf("mix-%04d", i))})
	}
	pl.Run(ops, 6)
	for i, op := range ops {
		if op.Err != nil || !op.Found {
			t.Fatalf("mutate %d: found=%v err=%v", i, op.Found, op.Err)
		}
	}

	gets := make([]*PipeOp, n)
	for i := range gets {
		gets[i] = &PipeOp{Kind: PipeGet, Key: []byte(fmt.Sprintf("mix-%04d", i))}
	}
	pl.Run(gets, 6)
	for i, op := range gets {
		if op.Err != nil {
			t.Fatalf("get %d: %v", i, op.Err)
		}
		switch {
		case i%4 == 1: // deleted
			if op.Found {
				t.Errorf("get %d: deleted key still present", i)
			}
		case i%2 == 0: // updated
			if !op.Found || string(op.Val) != fmt.Sprintf("v1-%04d", i) {
				t.Errorf("get %d: found=%v val=%q want v1", i, op.Found, op.Val)
			}
		default: // untouched
			if !op.Found || string(op.Val) != fmt.Sprintf("v0-%04d", i) {
				t.Errorf("get %d: found=%v val=%q want v0", i, op.Found, op.Val)
			}
		}
	}
}

// TestPipelineCoalescesWarmGets is the core round-trip accounting proof:
// N warm-filter Gets pipelined at depth d must spend strictly fewer
// doorbell round trips than N sequential Gets (which pay 3 RTs each),
// because same-stage verbs of concurrent ops share flushes. The
// leaf-address cache is disabled on both sides so the 3-RT hash path is
// actually what's being coalesced; TestPipelineCoalescesSpecGets covers
// the 1-RT speculative path.
func TestPipelineCoalescesWarmGets(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 2000)
	filter := NewFilterCache(1<<16, 9)
	keys := loadKeys(t, f, shared, filter, 512)

	// Sequential reference: warm client, count RTs for N gets.
	seq := newTestClient(f, shared, Options{Filter: filter, DisableLeafCache: true})
	warm := func(get func(k []byte)) {
		for _, k := range keys {
			get(k)
		}
	}
	warm(func(k []byte) {
		if _, ok, err := seq.Search(k); err != nil || !ok {
			t.Fatal("warmup", err)
		}
	})
	const n = 256
	before := seq.Engine().C.Stats()
	for _, k := range keys[:n] {
		if _, ok, err := seq.Search(k); err != nil || !ok {
			t.Fatal(err)
		}
	}
	seqRTs := seq.Engine().C.Stats().Sub(before).RoundTrips

	// Pipelined: same warm state, same N gets, depth 8.
	main := f.NewClient()
	pl := NewPipeline(shared, main, Options{Filter: filter, DisableLeafCache: true})
	warmOps := make([]*PipeOp, len(keys))
	for i, k := range keys {
		warmOps[i] = &PipeOp{Kind: PipeGet, Key: k}
	}
	pl.Run(warmOps, 8) // warm every lane's directory cache
	pbefore := main.Stats()
	ops := make([]*PipeOp, n)
	for i := range ops {
		ops[i] = &PipeOp{Kind: PipeGet, Key: keys[i]}
	}
	pl.Run(ops, 8)
	for i, op := range ops {
		if op.Err != nil || !op.Found {
			t.Fatalf("pipelined get %d: found=%v err=%v", i, op.Found, op.Err)
		}
	}
	pipeRTs := main.Stats().Sub(pbefore).RoundTrips

	if seqRTs != 3*n {
		t.Errorf("sequential warm gets = %d RTs, want %d (3 per op)", seqRTs, 3*n)
	}
	if pipeRTs >= seqRTs {
		t.Errorf("pipelined %d RTs not fewer than sequential %d", pipeRTs, seqRTs)
	}
	// Depth 8 should approach 3 RTs per *window* of 8 ops, i.e. ~n/8*3
	// flushes plus stragglers; insist on at least a 4× reduction.
	if pipeRTs*4 > seqRTs {
		t.Errorf("pipelined %d RTs; expected ≤ 1/4 of sequential %d", pipeRTs, seqRTs)
	}
	if merged, verbs := pl.Pipe().Coalesced(); merged == 0 || verbs == 0 {
		t.Error("no flush carried verbs from multiple concurrent ops")
	}
}

// TestPipelineCoalescesSpecGets: the speculative 1-RT fast path stacks
// with pipelining — warm Gets spec-hit the shared leaf-address cache, and
// depth-d lanes coalesce their speculative leaf reads into shared
// flushes, so N warm Gets cost roughly N/d round trips.
func TestPipelineCoalescesSpecGets(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 2000)
	filter := NewFilterCache(1<<16, 9)
	keys := loadKeys(t, f, shared, filter, 512)

	main := f.NewClient()
	pl := NewPipeline(shared, main, Options{Filter: filter})
	warmOps := make([]*PipeOp, len(keys))
	for i, k := range keys {
		warmOps[i] = &PipeOp{Kind: PipeGet, Key: k}
	}
	pl.Run(warmOps, 8) // lanes learn leaf addresses into the shared LAC
	const n = 256
	pbefore := main.Stats()
	ops := make([]*PipeOp, n)
	for i := range ops {
		ops[i] = &PipeOp{Kind: PipeGet, Key: keys[i]}
	}
	pl.Run(ops, 8)
	for i, op := range ops {
		if op.Err != nil || !op.Found {
			t.Fatalf("pipelined spec get %d: found=%v err=%v", i, op.Found, op.Err)
		}
	}
	pipeRTs := main.Stats().Sub(pbefore).RoundTrips
	st := pl.Stats()
	if st.SpecHits < n*9/10 {
		t.Errorf("only %d/%d warm pipelined gets spec-hit", st.SpecHits, n)
	}
	// 256 one-RT ops at depth 8 should flush well under once per op;
	// allow generous slack for stragglers and refuted collisions.
	if pipeRTs > n {
		t.Errorf("pipelined spec gets = %d RTs for %d ops; speculative reads did not coalesce", pipeRTs, n)
	}
}

// TestPipelineDepthOneMatchesSequential: at depth 1 the pipeline
// degrades to exactly the sequential client's round-trip behavior.
func TestPipelineDepthOneMatchesSequential(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 2000)
	filter := NewFilterCache(1<<16, 9)
	keys := loadKeys(t, f, shared, filter, 256)

	seq := newTestClient(f, shared, Options{Filter: filter})
	for _, k := range keys {
		if _, ok, err := seq.Search(k); err != nil || !ok {
			t.Fatal("warmup", err)
		}
	}
	before := seq.Engine().C.Stats()
	for _, k := range keys {
		if _, ok, err := seq.Search(k); err != nil || !ok {
			t.Fatal(err)
		}
	}
	seqStats := seq.Engine().C.Stats().Sub(before)

	main := f.NewClient()
	pl := NewPipeline(shared, main, Options{Filter: filter})
	warmOps := make([]*PipeOp, len(keys))
	for i, k := range keys {
		warmOps[i] = &PipeOp{Kind: PipeGet, Key: k}
	}
	pl.Run(warmOps, 1)
	pbefore := main.Stats()
	ops := make([]*PipeOp, len(keys))
	for i, k := range keys {
		ops[i] = &PipeOp{Kind: PipeGet, Key: k}
	}
	pl.Run(ops, 1)
	pipeStats := main.Stats().Sub(pbefore)

	if seqStats.RoundTrips != pipeStats.RoundTrips {
		t.Errorf("depth-1 RTs = %d, sequential = %d", pipeStats.RoundTrips, seqStats.RoundTrips)
	}
	if seqStats.Verbs != pipeStats.Verbs || seqStats.BytesRead != pipeStats.BytesRead {
		t.Errorf("depth-1 stats %+v != sequential %+v", pipeStats, seqStats)
	}
}
