package core

import (
	"fmt"
	"sync"
	"testing"

	"sphinx/internal/cuckoo"
	"sphinx/internal/wire"
)

// TestFilterCacheConcurrentChurn hammers one shared FilterCache — the
// object every worker of a CN shares — with mixed Contains/Insert/Delete
// from many goroutines, in both concurrency modes, and asserts the
// occupancy invariants PR 4 pinned down for the single-threaded filter:
// occupancy is never negative (it is unsigned: "negative" shows up as a
// huge value above capacity), never above capacity, and stays equal to
// inserts − evictions − deletes. Run under -race this is the
// data-race-freedom proof for the lock-free mode.
func TestFilterCacheConcurrentChurn(t *testing.T) {
	for _, mode := range []FilterCacheMode{FilterLockFree, FilterMutex} {
		t.Run(mode.String(), func(t *testing.T) {
			fc := NewFilterCacheBytesPolicyMode(32<<10, 7, cuckoo.PolicySecondChance, mode)
			if got := fc.Mode(); got != mode {
				t.Fatalf("mode = %v, want %v", got, mode)
			}
			const workers = 8
			const opsPer = 15000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := uint64(w)*0x9e3779b97f4a7c15 + 1
					for i := 0; i < opsPer; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						// Key universe ~2× slot capacity: constant eviction
						// pressure plus plenty of hits.
						h := PrefixFilterHash([]byte(fmt.Sprintf("p%d", rng%(64<<10))))
						switch {
						case rng>>32%16 < 10:
							fc.Contains(h)
						case rng>>32%16 < 14:
							fc.Insert(h)
						default:
							fc.Delete(h)
						}
					}
				}(w)
			}
			wg.Wait()

			occupied, capacity := fc.Occupancy()
			if occupied > capacity {
				t.Fatalf("occupancy %d above capacity %d (or negative via wraparound)", occupied, capacity)
			}
			st := fc.FilterStats()
			if want := st.Inserts - st.Evictions - st.Deletes; occupied != want {
				t.Fatalf("occupancy %d != inserts-evictions-deletes %d (stats %+v)", occupied, want, st)
			}
			if l := fc.Load(); l < 0 || l > 1 {
				t.Fatalf("load %f outside [0, 1]", l)
			}
			if st.Hits == 0 || st.Inserts == 0 || st.Deletes == 0 || st.Evictions == 0 {
				t.Fatalf("churn did not exercise all paths (stats %+v)", st)
			}
		})
	}
}

// TestFilterCacheModesAgreeSingleThreaded drives both modes through an
// identical single-goroutine mixed sequence: the mutex shim must be
// behaviourally transparent (same filter underneath, same seed, same
// decisions), so every counter and the occupancy must match exactly.
func TestFilterCacheModesAgreeSingleThreaded(t *testing.T) {
	run := func(mode FilterCacheMode) (cuckoo.Stats, uint64) {
		fc := NewFilterCacheBytesPolicyMode(8<<10, 3, cuckoo.PolicySecondChance, mode)
		for i := 0; i < 30000; i++ {
			h := wire.Mix64(uint64(i % 5000))
			switch i % 5 {
			case 0, 1, 2:
				fc.Contains(h)
			case 3:
				fc.Insert(h)
			default:
				if i%35 == 4 {
					fc.Delete(h)
				} else {
					fc.Insert(wire.Mix64(uint64(i)))
				}
			}
		}
		occ, _ := fc.Occupancy()
		return fc.FilterStats(), occ
	}
	lfStats, lfOcc := run(FilterLockFree)
	muStats, muOcc := run(FilterMutex)
	if lfStats != muStats {
		t.Errorf("modes diverged:\nlockfree %+v\nmutex    %+v", lfStats, muStats)
	}
	if lfOcc != muOcc {
		t.Errorf("occupancy diverged: lockfree %d, mutex %d", lfOcc, muOcc)
	}
}
