package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
)

func newCluster(t *testing.T, mns int, cfg fabric.Config, expected int) (*fabric.Fabric, Shared) {
	t.Helper()
	f := fabric.New(cfg)
	nodes := make([]mem.NodeID, mns)
	for i := range nodes {
		nodes[i] = f.AddNode(256 << 20)
	}
	ring := consistenthash.New(nodes, 0)
	shared, err := Bootstrap(f, ring, expected)
	if err != nil {
		t.Fatal(err)
	}
	return f, shared
}

func newTestClient(f *fabric.Fabric, shared Shared, opts Options) *Client {
	return NewClient(shared, f.NewClient(), opts)
}

func TestEmptyIndex(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	if _, ok, err := c.Search([]byte("missing")); err != nil || ok {
		t.Errorf("Search on empty = %v,%v", ok, err)
	}
	if ok, err := c.Delete([]byte("missing")); err != nil || ok {
		t.Errorf("Delete on empty = %v,%v", ok, err)
	}
	if ok, err := c.Update([]byte("missing"), []byte("v")); err != nil || ok {
		t.Errorf("Update on empty = %v,%v", ok, err)
	}
}

func TestInsertSearchBasic(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	pairs := map[string]string{
		"LYRICS": "v1", "LYRIC": "v2", "LYR": "v3", "L": "v4",
		"MOON": "v5", "LYRA": "v6", "LYRE": "v7",
	}
	for k, v := range pairs {
		if existed, err := c.Insert([]byte(k), []byte(v)); err != nil || existed {
			t.Fatalf("insert %q: existed=%v err=%v", k, existed, err)
		}
	}
	for k, v := range pairs {
		got, ok, err := c.Search([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Errorf("Search(%q) = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
	if _, ok, _ := c.Search([]byte("LY")); ok {
		t.Error("found absent intermediate prefix")
	}
	if _, ok, _ := c.Search([]byte("LYRICSX")); ok {
		t.Error("found absent extension")
	}
}

func TestWarmSearchIsThreeRoundTrips(t *testing.T) {
	// The paper's headline property (§III-B): with a warm filter cache
	// and directory cache — but without the speculative leaf-address
	// cache — a search costs three round trips: hash entry, inner node,
	// leaf.
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 1000)
	c := newTestClient(f, shared, Options{DisableLeafCache: true})
	// Build enough structure for a real inner node below the root.
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("user%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	key := []byte("user0017")
	// Warm everything: one search learns the path and the directories.
	if _, ok, err := c.Search(key); err != nil || !ok {
		t.Fatalf("warming search failed: %v %v", ok, err)
	}
	before := c.Engine().C.Stats()
	v, ok, err := c.Search(key)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("warm search failed: %v %v", ok, err)
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips != 3 {
		t.Errorf("warm search took %d round trips, want 3 (hash entry, inner node, leaf)", d.RoundTrips)
	}
}

func TestWarmSearchIsOneRoundTripWithLAC(t *testing.T) {
	// The speculative fast path: with the leaf-address cache (the
	// default), a warm search is ONE round trip — a verified read
	// straight at the leaf the previous traversal found.
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("user%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	key := []byte("user0017")
	if _, ok, err := c.Search(key); err != nil || !ok {
		t.Fatalf("warming search failed: %v %v", ok, err)
	}
	before := c.Engine().C.Stats()
	v, ok, err := c.Search(key)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("warm search failed: %v %v", ok, err)
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips != 1 {
		t.Errorf("warm speculative search took %d round trips, want 1 (verified leaf read)", d.RoundTrips)
	}
	st := c.Stats()
	if st.SpecHits != 1 || st.SpecRefutes != 0 || st.SpecAborts != 0 {
		t.Errorf("speculative counters = hits %d refutes %d aborts %d, want 1/0/0",
			st.SpecHits, st.SpecRefutes, st.SpecAborts)
	}
}

func TestSearchIndependentOfKeyLength(t *testing.T) {
	// The whole point of the hybrid design: deep trees (long keys with
	// shared prefixes) cost the same three warm round trips.
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	long := bytes.Repeat([]byte("prefix/"), 20) // 140 bytes shared
	var keys [][]byte
	for i := 0; i < 20; i++ {
		k := append(append([]byte{}, long...), []byte(fmt.Sprintf("leaf%04d", i))...)
		keys = append(keys, k)
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := c.Search(keys[7]); err != nil || !ok {
		t.Fatalf("warming search: %v %v", ok, err)
	}
	before := c.Engine().C.Stats()
	if _, ok, err := c.Search(keys[7]); err != nil || !ok {
		t.Fatalf("warm search: %v %v", ok, err)
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips > 4 {
		t.Errorf("deep-tree warm search took %d round trips; tree depth must not matter", d.RoundTrips)
	}
}

func TestFilterDisabledParallelFallback(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 1000)
	// The leaf-address cache is disabled so the warm search below actually
	// exercises the parallel multi-prefix fallback instead of spec-hitting
	// the leaf in one round trip.
	c := newTestClient(f, shared, Options{DisableFilter: true, DisableLeafCache: true})
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("user%04d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("user%04d", i))
		v, ok, err := c.Search(k)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("filterless search %d: %v %v", i, ok, err)
		}
	}
	if c.Stats().FilterFallbacks == 0 {
		t.Error("DisableFilter never used the parallel fallback")
	}
	// The fallback still avoids sequential descent: a warm search reads
	// all prefix buckets in one round trip + node + leaf.
	key := []byte("user0031")
	before := c.Engine().C.Stats()
	if _, ok, _ := c.Search(key); !ok {
		t.Fatal("search failed")
	}
	d := c.Engine().C.Stats().Sub(before)
	if d.RoundTrips > 4 {
		t.Errorf("parallel fallback took %d round trips, want ≤4", d.RoundTrips)
	}
	// But it reads Θ(L) hash entries: bandwidth is the filter's win.
	if d.Verbs < 8 {
		t.Errorf("parallel fallback issued only %d verbs; expected Θ(key length) bucket reads", d.Verbs)
	}
}

func TestFilterLearnsFromOtherClientsInserts(t *testing.T) {
	// Coherence story (§III-B): client B's filter never sees client A's
	// inserts directly, yet B's searches succeed and B learns prefixes
	// lazily during traversals.
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	a := newTestClient(f, shared, Options{})
	b := newTestClient(f, shared, Options{})
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("shared%04d", i))
		if _, err := a.Insert(k, []byte("va")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("shared%04d", i))
		v, ok, err := b.Search(k)
		if err != nil || !ok || string(v) != "va" {
			t.Fatalf("client B search %d: %v %v", i, ok, err)
		}
	}
	if b.Stats().FilterHits == 0 {
		t.Error("client B never converted learned prefixes into filter hits")
	}
}

func TestCoherenceUnderTypeSwitch(t *testing.T) {
	// A type switch moves a node; other clients' filters stay valid
	// (prefixes unchanged) and their hash lookups find the new address.
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	a := newTestClient(f, shared, Options{})
	b := newTestClient(f, shared, Options{})
	// Warm B on a small node.
	for i := 0; i < 3; i++ {
		k := []byte{'t', 's', byte(i), 'x'}
		if _, err := a.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := b.Search([]byte{'t', 's', 0, 'x'}); !ok {
		t.Fatal("warmup search failed")
	}
	// Force the node at prefix "ts" through N4→N16→N48→N256.
	for i := 3; i < 200; i++ {
		k := []byte{'t', 's', byte(i), 'x'}
		if _, err := a.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatalf("growth insert %d: %v", i, err)
		}
	}
	// B (stale filter, stale everything) must still read correctly.
	for i := 0; i < 200; i++ {
		k := []byte{'t', 's', byte(i), 'x'}
		v, ok, err := b.Search(k)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("B search after type switch, key %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestKeysThatArePrefixes(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	keys := []string{"a", "ab", "abc", "abcd", "abcde"}
	for i, k := range keys {
		if _, err := c.Insert([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok, err := c.Search([]byte(k))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("prefix key %q: ok=%v err=%v", k, ok, err)
		}
	}
	if ok, _ := c.Delete([]byte("abc")); !ok {
		t.Fatal("delete failed")
	}
	if _, ok, _ := c.Search([]byte("abcd")); !ok {
		t.Error("extension lost after prefix delete")
	}
}

func TestU64BigEndianKeys(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], keys[i])
		if _, err := c.Insert(k[:], []byte(fmt.Sprint(keys[i]))); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range keys {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], u)
		v, ok, err := c.Search(k[:])
		if err != nil || !ok || string(v) != fmt.Sprint(u) {
			t.Fatalf("u64 %d: ok=%v err=%v", u, ok, err)
		}
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	if _, err := c.Insert([]byte("key"), []byte("short")); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Update([]byte("key"), []byte("other")); err != nil || !ok {
		t.Fatal(err)
	}
	v, _, _ := c.Search([]byte("key"))
	if string(v) != "other" {
		t.Errorf("after in-place update: %q", v)
	}
	big := bytes.Repeat([]byte("B"), 500)
	if ok, err := c.Update([]byte("key"), big); err != nil || !ok {
		t.Fatal(err)
	}
	v, _, _ = c.Search([]byte("key"))
	if !bytes.Equal(v, big) {
		t.Errorf("after out-of-place update: %d bytes", len(v))
	}
}

func TestScan(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("scan%04d", i*2))
		if _, err := c.Insert(k, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan([]byte("scan0100"), []byte("scan0300"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("scan%04d", i*2)
		if s >= "scan0100" && s <= "scan0300" {
			want++
		}
	}
	if len(kvs) != want {
		t.Errorf("scan returned %d, want %d", len(kvs), want)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("scan output not strictly ascending")
		}
	}
	// Limit.
	kvs, err = c.Scan([]byte("scan0100"), nil, 9)
	if err != nil || len(kvs) != 9 {
		t.Errorf("limited scan: %d,%v", len(kvs), err)
	}
}

func TestScanUsesFewerRoundTripsThanNaive(t *testing.T) {
	// Fig. 4 YCSB-E mechanism: batched scans beat per-node round trips.
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("e%05d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Engine().C.Stats()
	kvs, err := c.Scan([]byte("e00050"), []byte("e00149"), 0)
	if err != nil || len(kvs) != 100 {
		t.Fatalf("scan: %d,%v", len(kvs), err)
	}
	d := c.Engine().C.Stats().Sub(before)
	// 100 leaves + path nodes without batching would be >100 round trips.
	if d.RoundTrips > 20 {
		t.Errorf("batched scan took %d round trips for 100 results", d.RoundTrips)
	}
}

func TestRandomOpsAgainstOracle(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig(), 2000)
	c := newTestClient(f, shared, Options{})
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	randKey := func() []byte {
		n := 1 + rng.Intn(10)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	for step := 0; step < 4000; step++ {
		k := randKey()
		switch rng.Intn(5) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			existed, err := c.Insert(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, want := oracle[string(k)]; existed != want {
				t.Fatalf("step %d insert existed=%v want %v", step, existed, want)
			}
			oracle[string(k)] = v
		case 2:
			ok, err := c.Delete(k)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if _, want := oracle[string(k)]; ok != want {
				t.Fatalf("step %d delete ok=%v want %v", step, ok, want)
			}
			delete(oracle, string(k))
		case 3:
			v := fmt.Sprintf("u%d", step)
			ok, err := c.Update(k, []byte(v))
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			if _, want := oracle[string(k)]; ok != want {
				t.Fatalf("step %d update ok=%v want %v", step, ok, want)
			}
			if ok {
				oracle[string(k)] = v
			}
		default:
			got, ok, err := c.Search(k)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			want, wantOK := oracle[string(k)]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d search %q = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
	kvs, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(oracle) {
		t.Fatalf("scan %d keys, oracle %d", len(kvs), len(oracle))
	}
	var keys []string
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, kv := range kvs {
		if string(kv.Key) != keys[i] || string(kv.Value) != oracle[keys[i]] {
			t.Fatalf("scan[%d] mismatch", i)
		}
	}
}

func TestOracleWithTinyFilterEviction(t *testing.T) {
	// A capacity-starved filter evicts constantly; correctness must hold
	// (evictions only cost round trips).
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 2000)
	c := newTestClient(f, shared, Options{FilterEntries: 32})
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 2500; step++ {
		k := []byte(fmt.Sprintf("key-%d", rng.Intn(400)))
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("v%d", step)
			if _, err := c.Insert(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[string(k)] = v
		} else {
			got, ok, err := c.Search(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := oracle[string(k)]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d: search %q = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.DefaultConfig(), 5000)
	sharedFilter := NewFilterCache(1<<14, 7)
	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Filter: sharedFilter})
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%02d-key-%04d", w, i))
				if _, err := c.Insert(k, []byte(fmt.Sprint(i))); err != nil {
					errs <- fmt.Errorf("w%d insert %d: %w", w, i, err)
					return
				}
				j := rng.Intn(i + 1)
				kk := []byte(fmt.Sprintf("w%02d-key-%04d", w, j))
				v, ok, err := c.Search(kk)
				if err != nil || !ok || string(v) != fmt.Sprint(j) {
					errs <- fmt.Errorf("w%d lost key %d: ok=%v err=%v", w, j, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	verify := newTestClient(f, shared, Options{})
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%02d-key-%04d", w, i))
			if _, ok, err := verify.Search(k); err != nil || !ok {
				t.Fatalf("%q missing after concurrent load: %v", k, err)
			}
		}
	}
}

func TestConcurrentChurnSharedKeys(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(w)})
			for i := 0; i < 250; i++ {
				k := []byte(fmt.Sprintf("churn-%d-%d", w, i%20))
				if _, err := c.Insert(k, []byte("v")); err != nil {
					errs <- fmt.Errorf("w%d insert: %w", w, err)
					return
				}
				if _, err := c.Delete(k); err != nil {
					errs <- fmt.Errorf("w%d delete: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCacheBytesReported(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{FilterEntries: 10000})
	if _, err := c.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Search([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if c.CacheBytes() == 0 {
		t.Error("CacheBytes = 0")
	}
	// The directory caches must be small relative to the filter (paper
	// §IV: "typically 2-5% of the succinct filter cache size").
	var dirBytes uint64
	for _, v := range c.views.Load().m {
		dirBytes += v.DirCacheBytes()
	}
	if dirBytes*2 > c.filter.SizeBytes() {
		t.Errorf("directory caches (%d B) not small vs filter (%d B)", dirBytes, c.filter.SizeBytes())
	}
}

func TestFilterCacheBudget(t *testing.T) {
	fc := NewFilterCacheBytes(1<<20, 1) // 1 MB budget
	if fc.SizeBytes() > 1<<20 || fc.SizeBytes() < 1<<19 {
		t.Errorf("filter sized %d bytes for a 1 MB budget", fc.SizeBytes())
	}
}

func TestStatsAccumulate(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("s%03d", i))
		if _, err := c.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("s%03d", i))
		if _, _, err := c.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Searches != 20 || st.Inserts != 20 {
		t.Errorf("stats = %+v", st)
	}
	if st.FilterHits == 0 {
		t.Error("no filter hits recorded")
	}
}

func TestRejectsBadKeys(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	if _, err := c.Insert(nil, []byte("v")); err == nil {
		t.Error("nil key accepted")
	}
	if _, _, err := c.Search(bytes.Repeat([]byte("x"), 1<<13)); err == nil {
		t.Error("oversize key accepted")
	}
}

func TestInsertSearchProperty(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 2000)
	c := newTestClient(f, shared, Options{})
	seen := map[string][]byte{}
	prop := func(key, value []byte) bool {
		if len(key) == 0 || len(key) > 64 {
			return true
		}
		if len(value) > 256 {
			value = value[:256]
		}
		if _, err := c.Insert(key, value); err != nil {
			t.Logf("insert error: %v", err)
			return false
		}
		seen[string(key)] = append([]byte(nil), value...)
		// Every key ever inserted stays readable with its latest value.
		for k, v := range seen {
			got, ok, err := c.Search([]byte(k))
			if err != nil || !ok || !bytes.Equal(got, v) {
				t.Logf("readback %q: ok=%v err=%v", k, ok, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDeleteInsertAlternationProperty(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 2000)
	c := newTestClient(f, shared, Options{})
	present := map[string]bool{}
	prop := func(key []byte, del bool) bool {
		if len(key) == 0 || len(key) > 32 {
			return true
		}
		if del {
			ok, err := c.Delete(key)
			if err != nil {
				return false
			}
			if ok != present[string(key)] {
				return false
			}
			delete(present, string(key))
		} else {
			existed, err := c.Insert(key, []byte("v"))
			if err != nil || existed != present[string(key)] {
				return false
			}
			present[string(key)] = true
		}
		_, ok, err := c.Search(key)
		return err == nil && ok == present[string(key)]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
