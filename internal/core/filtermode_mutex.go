//go:build sfc_mutex

package core

// buildFilterCacheMode under the `sfc_mutex` tag: every
// default-constructed FilterCache serializes behind one mutex, restoring
// the pre-lock-free behaviour for A/B runs of the scaling experiment
// without touching call sites.
const buildFilterCacheMode = FilterMutex
