// MN fault tolerance: replicated anchor placement, health-gated failover
// and online anti-entropy repair.
//
// The tree and the inner-node hash table shard entries across MNs with no
// redundancy, so a permanently lost MN takes its slice of both with it.
// The fault-tolerance layer adds a replicated "anchor" store beside them:
// every acknowledged write also publishes an immutable anchor record —
// (key, value, version) — to the first R healthy memory nodes clockwise
// from the key on the consistent-hash ring, each node holding its replicas
// in a dedicated RACE-style table. Writes acknowledge only after the
// anchor publish completes, so:
//
//   - a read that hits a killed node on its tree path fails over to the
//     key's anchor replicas in one decision (the fabric health breaker
//     rejects suspect nodes locally, at zero virtual-time cost);
//   - killing any single MN of an R=2 placement loses no acknowledged
//     write: the surviving replica of every acked key is, by construction,
//     the first healthy successor at read time;
//   - a background repair sweep walks every live node's anchor table and
//     re-replicates entries whose replica set fell below R onto the next
//     healthy successors, returning the system to full replication while
//     CNs keep serving.
//
// Anchor records are immutable and versioned; updates publish a new record
// and swap the table entry with the view's CAS-based Replace, giving
// last-writer-wins per replica (exact when a key has one writer, as the
// failover benchmark arranges; approximate under concurrent writers to the
// same key, like the tree itself). The record's first word is a
// wire.NodeHeader carrying the key's 42-bit prefix hash — the format the
// hash table's one-sided segment split relies on to re-derive placement.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/racehash"
	"sphinx/internal/wire"
)

// DefaultReplication is the replication factor the paper-scale clusters
// use: every anchor on two distinct MNs, surviving any single MN loss.
const DefaultReplication = 2

// FaultTolerance is the cluster-wide descriptor of the replication layer,
// created by BootstrapReplicated and shared read-only (its counters are
// atomic) by every client.
type FaultTolerance struct {
	// R is the replication factor: each anchor targets the first R healthy
	// distinct successors of its key on the ring.
	R int
	// Health is the fabric's shared per-MN breaker table; placement skips
	// nodes it reports dead.
	Health *fabric.Health
	// Anchors maps each memory node to its anchor table.
	Anchors map[mem.NodeID]racehash.Table

	// verCounter issues LWW versions for anchor records. Shared across
	// clients (modelling a CN-side timestamp oracle) so that versions are
	// totally ordered cluster-wide: a fresh client's update must outrank
	// anchors written earlier by longer-lived clients.
	verCounter uint64

	// underReplicated is the gauge the repair sweeper maintains: replica
	// deficits found by the latest sweep (0 once repair has converged).
	underReplicated uint64
	// repairSweeps / repairCopied accumulate across sweeps for metrics.
	repairSweeps uint64
	repairCopied uint64
}

// UnderReplicated returns the latest sweep's replica-deficit gauge.
func (ft *FaultTolerance) UnderReplicated() uint64 {
	return atomic.LoadUint64(&ft.underReplicated)
}

// RepairTotals returns the cumulative sweep count and copied-replica count.
func (ft *FaultTolerance) RepairTotals() (sweeps, copied uint64) {
	return atomic.LoadUint64(&ft.repairSweeps), atomic.LoadUint64(&ft.repairCopied)
}

// place returns the first healthy successor of key — the node that must
// hold every acknowledged key, and where new tree allocations and hash
// entries go so they avoid dead nodes.
func (ft *FaultTolerance) place(ring *consistenthash.Ring, key []byte) mem.NodeID {
	owners := ring.OwnersKey(key, len(ring.Nodes()))
	for _, o := range owners {
		if ft.Health.Alive(o) {
			return o
		}
	}
	return owners[0]
}

// targets returns the key's anchor replica set: the first R healthy
// distinct successors (fewer when fewer healthy nodes remain).
func (ft *FaultTolerance) targets(ring *consistenthash.Ring, key []byte) []mem.NodeID {
	owners := ring.OwnersKey(key, len(ring.Nodes()))
	targets := make([]mem.NodeID, 0, ft.R)
	for _, o := range owners {
		if ft.Health.Alive(o) {
			targets = append(targets, o)
			if len(targets) == ft.R {
				break
			}
		}
	}
	return targets
}

// anyDead reports whether any ring node is known permanently lost — the
// cluster's degraded mode, in which tree-"absent" answers are confirmed
// against the anchors (degraded writes are anchor-only).
func (ft *FaultTolerance) anyDead(ring *consistenthash.Ring) bool {
	for _, n := range ring.Nodes() {
		if !ft.Health.Alive(n) {
			return true
		}
	}
	return false
}

// BootstrapReplicated is Bootstrap plus the fault-tolerance layer: one
// anchor table per memory node (sized for the expected keys at replication
// factor r), the shared FaultTolerance descriptor, and health-breaker
// gating enabled on the fabric. r < 2 selects DefaultReplication.
func BootstrapReplicated(f *fabric.Fabric, ring *consistenthash.Ring, expectedKeys, r int) (Shared, error) {
	if r < 2 {
		r = DefaultReplication
	}
	sh, err := Bootstrap(f, ring, expectedKeys)
	if err != nil {
		return Shared{}, err
	}
	alloc := mem.NewAllocator(f.Regions(), 0)
	perNode := expectedKeys*r/len(ring.Nodes()) + 1
	anchors := make(map[mem.NodeID]racehash.Table, len(ring.Nodes()))
	for _, node := range ring.Nodes() {
		t, err := racehash.Bootstrap(f.Region(node), alloc, node, perNode)
		if err != nil {
			return Shared{}, fmt.Errorf("core: bootstrap anchor table on node %d: %w", node, err)
		}
		anchors[node] = t
	}
	sh.FT = &FaultTolerance{R: r, Health: f.Health(), Anchors: anchors}
	// Republish the epoch-0 placement with the anchor tables included, so
	// elastic membership changes can carry them forward.
	sh.Members = NewMembership(&Placement{Ring: ring, Tables: sh.Tables, Anchors: anchors})
	f.Health().EnableGating(true)
	return sh, nil
}

// Anchor record layout (immutable once written):
//
//	word 0: wire.NodeHeader — Status Idle, Type Node4, Depth = len(key),
//	        PrefixHash = the key's 42-bit hash. The hash table's segment
//	        split recovers entry placement by reading this word, so anchor
//	        records must carry it exactly like inner nodes do.
//	word 1: version (LWW order: per-writer counter ‖ writer ID)
//	word 2: len(key) | len(value)<<16
//	24..  : key bytes, then value bytes
const (
	anchorVersionOff = 8
	anchorLensOff    = 16
	anchorDataOff    = 24
	// anchorSpecRead is the speculative first-read size for anchor records
	// of unknown length: header plus a typical small-key/64-byte-value
	// payload in one round trip.
	anchorSpecRead = 256
)

func encodeAnchor(key, value []byte, version uint64) []byte {
	return encodeRecord(wire.StatusIdle, key, value, version)
}

// encodeRecord builds one immutable record image in the anchor layout with
// an explicit status word — StatusIdle for servable records, StatusLocked
// for hot-promotion placeholders (see hotreplica.go).
func encodeRecord(st wire.Status, key, value []byte, version uint64) []byte {
	img := make([]byte, anchorDataOff+len(key)+len(value))
	hdr := wire.NodeHeader{
		Status:     st,
		Type:       wire.Node4,
		Depth:      uint16(len(key)),
		PrefixHash: wire.PrefixHash42(key),
	}
	binary.LittleEndian.PutUint64(img[0:], hdr.Encode())
	binary.LittleEndian.PutUint64(img[anchorVersionOff:], version)
	binary.LittleEndian.PutUint64(img[anchorLensOff:], uint64(len(key))|uint64(len(value))<<16)
	copy(img[anchorDataOff:], key)
	copy(img[anchorDataOff+len(key):], value)
	return img
}

// readAnchor fetches and decodes one anchor record, dropping the status
// (anchor records are always published Idle).
func (c *Client) readAnchor(addr mem.Addr) (key, value []byte, version uint64, err error) {
	_, key, value, version, err = c.readRecord(addr)
	return key, value, version, err
}

// readRecord fetches and decodes one record in the anchor layout: a
// speculative read clamped at the region boundary, with a follow-up read
// when the record outgrows the speculation.
func (c *Client) readRecord(addr mem.Addr) (st wire.Status, key, value []byte, version uint64, err error) {
	regionSize := c.eng.C.Fabric().RegionSize(addr.Node())
	size := uint64(anchorSpecRead)
	if addr.Offset()+size > regionSize {
		size = regionSize - addr.Offset()
	}
	if size < anchorDataOff {
		return 0, nil, nil, 0, fmt.Errorf("core: anchor record at %v truncated by region boundary", addr)
	}
	buf := make([]byte, size)
	if err := c.eng.C.Read(addr, buf); err != nil {
		return 0, nil, nil, 0, err
	}
	lens := binary.LittleEndian.Uint64(buf[anchorLensOff:])
	keyLen := int(lens & 0xffff)
	valLen := int(lens >> 16)
	if keyLen == 0 || keyLen > wire.MaxDepth || uint64(anchorDataOff+keyLen+valLen) > regionSize {
		return 0, nil, nil, 0, fmt.Errorf("core: malformed anchor record at %v (keyLen=%d valLen=%d)", addr, keyLen, valLen)
	}
	total := anchorDataOff + keyLen + valLen
	if total > len(buf) {
		buf = make([]byte, total)
		if err := c.eng.C.Read(addr, buf); err != nil {
			return 0, nil, nil, 0, err
		}
	}
	st = wire.DecodeNodeHeader(binary.LittleEndian.Uint64(buf[0:])).Status
	version = binary.LittleEndian.Uint64(buf[anchorVersionOff:])
	key = append([]byte(nil), buf[anchorDataOff:anchorDataOff+keyLen]...)
	value = append([]byte(nil), buf[anchorDataOff+keyLen:total]...)
	return st, key, value, version, nil
}

// findAnchor locates the exact key's live entry in one node's anchor
// table, returning the entry, its record's value and version.
func (c *Client) findAnchor(node mem.NodeID, key []byte) (entry wire.HashEntry, value []byte, version uint64, found bool, err error) {
	view := c.anchorViewOf(node)
	if view == nil {
		return wire.HashEntry{}, nil, 0, false, fmt.Errorf("core: no anchor table known for node %d", node)
	}
	cands, err := view.Lookup(racehash.PlacementHash(key), wire.FP12(key))
	if err != nil {
		return wire.HashEntry{}, nil, 0, false, err
	}
	for _, cand := range cands {
		k, v, ver, err := c.readAnchor(cand.Entry.Addr)
		if err != nil {
			return wire.HashEntry{}, nil, 0, false, err
		}
		if bytes.Equal(k, key) {
			return cand.Entry, v, ver, true, nil
		}
	}
	return wire.HashEntry{}, nil, 0, false, nil
}

// anchorPutMaxRaces bounds how many lost same-key swap races one anchor
// publish will absorb before giving up (each loss means another writer
// landed a version in the meantime, so starvation needs a pathological
// single-key write storm).
const anchorPutMaxRaces = 16

// anchorPutOne publishes (key, value, version) to one node's anchor table:
// allocate an immutable record, write it, then CAS the table entry in
// (Insert for a new key, SwapIfPresent for an update). Last-writer-wins
// without any serializing lock: competing writers to the same key race
// on the entry CAS, and the loser re-reads the winner's version and
// re-decides — never waits for its own stale expectation to reappear
// (View.Replace's wait loop assumes a lock-holding caller and would spin
// to exhaustion here). A replica already holding version ≥ ours is left
// untouched.
func (c *Client) anchorPutOne(node mem.NodeID, key, value []byte, version uint64) (existed, wrote bool, err error) {
	h42 := racehash.PlacementHash(key)
	var img []byte
	var addr mem.Addr
	for attempt := 0; attempt < anchorPutMaxRaces; attempt++ {
		oldEntry, _, oldVer, found, err := c.findAnchor(node, key)
		if err != nil {
			return false, false, err
		}
		if found && oldVer >= version {
			// A newer write already won; last-writer-wins keeps it.
			return true, false, nil
		}
		if img == nil {
			// The record is immutable; one allocation serves every retry.
			img = encodeAnchor(key, value, version)
			addr, err = c.eng.Alloc.Alloc(node, mem.ClassLeaf, uint64(len(img)))
			if err != nil {
				return found, false, err
			}
			if err := c.eng.C.Write(addr, img); err != nil {
				return found, false, err
			}
		}
		newEntry := wire.HashEntry{Valid: true, FP: wire.FP12(key), Type: wire.Node4, Addr: addr}
		view := c.anchorViewOf(node)
		if !found {
			if err := view.Insert(h42, newEntry, c.eng.Alloc); err != nil {
				return false, false, err
			}
			return false, true, nil
		}
		won, err := view.SwapIfPresent(h42, oldEntry, newEntry)
		if err != nil {
			return true, false, err
		}
		if won {
			return true, true, nil
		}
		// Lost the swap race: a concurrent writer replaced the entry
		// between our read and our CAS. Re-read and re-decide by version.
	}
	return true, false, fmt.Errorf("core: anchor put for %q lost %d consecutive swap races", key, anchorPutMaxRaces)
}

// nextVersion returns a fresh LWW version from the cluster-wide counter,
// tagged with the client ID for debuggability. Totally ordered across
// clients — exact when each key has a single writer at a time,
// last-writer-wins under concurrent writers to the same key.
func (c *Client) nextVersion() uint64 {
	return atomic.AddUint64(&c.shared.FT.verCounter, 1)<<8 | uint64(c.eng.C.ID())&0xff
}

// anchorUpsert publishes the write to the key's replica set,
// publish-to-completion: the caller acknowledges only after it returns.
// Dead or unreachable replicas are skipped (counted as partial); if no
// replica is reachable the write fails with ErrReplicaSetUnavailable.
func (c *Client) anchorUpsert(key, value []byte) (existed bool, err error) {
	ft := c.shared.FT
	version := c.nextVersion()
	targets := ft.targets(c.ring(), key)
	written := 0
	for _, t := range targets {
		ex, _, err := c.anchorPutOne(t, key, value, version)
		if err != nil {
			if errors.Is(err, fabric.ErrNodeDown) {
				continue
			}
			return false, err
		}
		existed = existed || ex
		written++
	}
	if written == 0 {
		return false, fmt.Errorf("%w: no anchor replica reachable for %q", ErrReplicaSetUnavailable, key)
	}
	if written < ft.R {
		atomic.AddUint64(&c.stats.PartialReplicas, 1)
	}
	return existed, nil
}

// anchorGet reads the key from its replica set, returning the freshest
// version found across reachable replicas. Absence on every reachable
// replica is an authoritative "not found" for acknowledged data: an acked
// write reached all (then-healthy) replicas, so any one surviving replica
// suffices. If no replica is reachable, ErrReplicaSetUnavailable.
func (c *Client) anchorGet(key []byte) (value []byte, ok bool, err error) {
	ft := c.shared.FT
	p := c.members.Current()
	targets := ft.targets(p.Ring, key)
	reached := 0
	var best []byte
	var bestVer uint64
	var found bool
	probe := func(nodes []mem.NodeID, seen map[mem.NodeID]bool) error {
		for _, t := range nodes {
			if seen != nil && seen[t] {
				continue
			}
			_, v, ver, f, err := c.findAnchor(t, key)
			if err != nil {
				if errors.Is(err, fabric.ErrNodeDown) {
					continue
				}
				return err
			}
			reached++
			if f && (!found || ver > bestVer) {
				found, best, bestVer = true, v, ver
			}
		}
		return nil
	}
	if err := probe(targets, nil); err != nil {
		return nil, false, err
	}
	if !found && p.Prev != nil {
		// Mid-transition the migrator may not have copied this key's
		// anchors to the new epoch's replica set yet; consult the old one.
		seen := make(map[mem.NodeID]bool, len(targets))
		for _, t := range targets {
			seen[t] = true
		}
		if err := probe(ft.targets(p.Prev.Ring, key), seen); err != nil {
			return nil, false, err
		}
		if found {
			atomic.AddUint64(&c.stats.EpochFallbacks, 1)
		}
	}
	if reached == 0 {
		return nil, false, fmt.Errorf("%w: no anchor replica reachable for %q", ErrReplicaSetUnavailable, key)
	}
	return best, found, nil
}

// anchorRemove deletes the key from every reachable replica. No
// tombstones: a replica that was unreachable during the delete and later
// repairs from a stale peer can resurrect the key (documented in
// docs/failure-model.md).
func (c *Client) anchorRemove(key []byte) (present bool, err error) {
	ft := c.shared.FT
	p := c.members.Current()
	targets := ft.targets(p.Ring, key)
	if p.Prev != nil {
		// Mid-transition, delete from the UNION of the new and old replica
		// sets: a replica left behind on the previous epoch's targets would
		// otherwise resurrect the key when the migration sweep LWW-copies it
		// forward.
		seen := make(map[mem.NodeID]bool, len(targets))
		for _, t := range targets {
			seen[t] = true
		}
		for _, t := range ft.targets(p.Prev.Ring, key) {
			if !seen[t] {
				targets = append(targets, t)
			}
		}
	}
	reached := 0
	for _, t := range targets {
		entry, _, _, f, err := c.findAnchor(t, key)
		if err != nil {
			if errors.Is(err, fabric.ErrNodeDown) {
				continue
			}
			return false, err
		}
		if f {
			if err := c.anchorViewOf(t).Remove(racehash.PlacementHash(key), entry); err != nil {
				if errors.Is(err, fabric.ErrNodeDown) {
					continue
				}
				return false, err
			}
			present = true
		}
		reached++
	}
	if reached == 0 {
		return false, fmt.Errorf("%w: no anchor replica reachable for %q", ErrReplicaSetUnavailable, key)
	}
	return present, nil
}

// RepairReport summarizes one anti-entropy sweep.
type RepairReport struct {
	// Scanned counts anchor records visited across all live nodes (each
	// replica counts once, so a fully replicated key at R=2 contributes 2).
	Scanned uint64
	// Deficits counts missing or stale replica slots found by this sweep —
	// the under-replicated gauge. 0 means the sweep found the system fully
	// replicated.
	Deficits uint64
	// Copied counts replicas this sweep re-published.
	Copied uint64
	// Remaining counts deficits the sweep could not repair (unreachable
	// target, lost race); they stay for the next sweep.
	Remaining uint64
}

// RepairSweep runs one online anti-entropy pass: walk every live node's
// anchor table, and for each record make sure the key is present at its
// record's version on all current replica targets, re-publishing where a
// target is missing it or holds an older version. Serving continues
// throughout — the sweep uses only the same one-sided protocols as
// foreground writes, and last-writer-wins versioning makes it idempotent
// and safe against concurrent updates.
//
// The walk is a best-effort snapshot under concurrent splits, so
// convergence is judged across sweeps: once a sweep reports zero deficits,
// the system is fully replicated. The sweep updates the shared
// under-replicated gauge with its deficit count.
func (c *Client) RepairSweep() (RepairReport, error) {
	ft := c.shared.FT
	if ft == nil {
		return RepairReport{}, errors.New("core: repair sweep on a cluster without fault tolerance")
	}
	var rep RepairReport
	ring := c.ring()
	for _, src := range ring.Nodes() {
		if !ft.Health.Alive(src) {
			continue
		}
		err := c.anchorViewOf(src).Walk(func(e wire.HashEntry) error {
			key, value, ver, err := c.readAnchor(e.Addr)
			if err != nil {
				// Concurrently replaced record or transient fault: the
				// surviving entry will be seen by the next sweep.
				rep.Remaining++
				return nil
			}
			rep.Scanned++
			for _, t := range ft.targets(ring, key) {
				if t == src {
					continue // this record is node src's replica
				}
				_, wrote, err := c.anchorPutOne(t, key, value, ver)
				if err != nil {
					rep.Deficits++
					rep.Remaining++
					continue
				}
				if wrote {
					rep.Deficits++
					rep.Copied++
				}
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, fabric.ErrNodeDown) {
				// src died mid-walk: its records are repaired from the
				// surviving replicas on later sweeps. Counted as a deficit
				// so this sweep cannot report convergence.
				rep.Deficits++
				rep.Remaining++
				continue
			}
			return rep, fmt.Errorf("core: repair walk of node %d: %w", src, err)
		}
	}
	atomic.StoreUint64(&ft.underReplicated, rep.Deficits)
	atomic.AddUint64(&ft.repairSweeps, 1)
	atomic.AddUint64(&ft.repairCopied, rep.Copied)
	return rep, nil
}

// failoverable reports whether an error should trigger replica failover
// rather than backoff-and-retry: the fault-tolerance layer is active and
// the error says the target node is permanently gone (killed) or
// breaker-rejected (suspected down). Plain down-window errors keep the
// retry path — the node will come back.
func (c *Client) failoverable(err error) bool {
	return c.shared.FT != nil &&
		(errors.Is(err, fabric.ErrNodeKilled) || errors.Is(err, fabric.ErrBreakerOpen))
}

// degraded reports whether the cluster has lost a node permanently; in
// that mode tree-"absent" answers are double-checked against the anchors,
// because degraded writes land only there.
func (c *Client) degraded() bool {
	return c.shared.FT != nil && c.shared.FT.anyDead(c.ring())
}
