//go:build !sfc_mutex

package core

// buildFilterCacheMode is the FilterCache concurrency mode that
// FilterModeDefault resolves to in this build: the lock-free filter.
// Build with `-tags sfc_mutex` to flip every default-constructed
// FilterCache to the mutex-serialized baseline — the shim the scaling
// ablation keeps around for before/after comparison.
const buildFilterCacheMode = FilterLockFree
