// Online rebalancing for elastic membership (the migrator half of the
// epoch protocol in membership.go): while a transition is active — the
// current placement still carries its predecessor — MigrateSweep walks
// the tree and the anchor tables and moves every object whose ring owner
// changed onto its new home, using only the same one-sided lease-lock /
// status-field protocols as foreground writes. Serving never stops:
// lookups fall back to the previous epoch's tables for entries the sweep
// has not moved yet (locate.go), structural writes publish into whichever
// table currently holds their entry (ops.go TypeSwitched), and leaf moves
// retire the old image so remote leaf-address caches refute and unlearn
// through their ordinary trust-but-verify path.
//
// Sweeps are idempotent: relocations that lose a race against foreground
// writers surface as restarts, are counted as Remaining, and retry on the
// next sweep. A sweep that finds nothing left to move — and hit no race —
// declares convergence and cuts the membership over, retiring the old
// epoch.
package core

import (
	"sync/atomic"

	"sphinx/internal/mem"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// MigrateReport summarizes one rebalancing sweep.
type MigrateReport struct {
	// Epoch is the placement epoch the sweep ran against.
	Epoch uint64
	// ScannedNodes / ScannedLeaves count tree objects visited.
	ScannedNodes  uint64
	ScannedLeaves uint64
	// MovedNodes / MovedLeaves count tree objects relocated to new owners.
	MovedNodes  uint64
	MovedLeaves uint64
	// AnchorsScanned / AnchorsCopied / AnchorsRemoved count anchor records
	// visited, re-replicated onto new targets, and retired from nodes that
	// left a key's replica set.
	AnchorsScanned uint64
	AnchorsCopied  uint64
	AnchorsRemoved uint64
	// Remaining counts objects the sweep could not settle (lost race,
	// unreachable node); they stay for the next sweep.
	Remaining uint64
	// Converged reports that this sweep found nothing left to move.
	Converged bool
	// CutOver reports that this sweep retired the previous epoch.
	CutOver bool
}

// MigrateSweep runs one online rebalancing pass over the current
// membership transition. With no transition active it reports immediate
// convergence. Convergence requires a fully clean sweep — zero moves and
// zero unsettled objects — because a sweep that moved anything may have
// raced a concurrent writer publishing into the old epoch; only a sweep
// that proves the placement already settled is allowed to cut over.
func (c *Client) MigrateSweep() (MigrateReport, error) {
	p := c.members.Current()
	rep := MigrateReport{Epoch: p.Epoch}
	if p.Prev == nil {
		rep.Converged = true
		return rep, nil
	}
	root, err := c.readRoot()
	if err != nil {
		return rep, err
	}
	c.migrateVisit(p, root, nil, &rep)
	if c.shared.FT != nil {
		c.migrateAnchors(p, &rep)
	}
	rep.Converged = rep.MovedNodes+rep.MovedLeaves+rep.AnchorsCopied+rep.AnchorsRemoved == 0 &&
		rep.Remaining == 0
	if rep.Converged {
		if _, ok := c.members.Cutover(); ok {
			rep.CutOver = true
			atomic.AddUint64(&c.stats.Cutovers, 1)
		}
	}
	return rep, nil
}

// migrateVisit walks one node's children in the snapshot read by the
// caller and relocates every child whose ring owner changed under the
// transition's target placement. prefix is the node's full prefix minus
// its partial (the scanner's convention). The node itself is never moved
// here — each node is moved by the visit of its PARENT, which holds the
// parent slot that must swing; the root is therefore never relocated,
// matching its pinned-forever contract.
//
// Failures are contained: any error on a child counts it as Remaining and
// skips its subtree, so one contended path cannot abort the sweep.
func (c *Client) migrateVisit(p *Placement, n *rart.Node, prefix []byte, rep *MigrateReport) {
	if n.Hdr.Status == wire.StatusInvalid {
		// Retired mid-sweep (type switch or a competing migrator); its
		// replacement is reachable through a later sweep's fresh walk.
		rep.Remaining++
		return
	}
	rep.ScannedNodes++
	full := append(append([]byte(nil), prefix...), n.Partial...)

	if n.EOL.Present && n.EOL.Leaf {
		rep.ScannedLeaves++
		if target := c.placeIn(p, full); n.EOL.Addr.Node() != target {
			moved, err := c.eng.RelocateLeaf(n, full, target)
			if err != nil {
				rep.Remaining++
			} else if moved {
				rep.MovedLeaves++
			}
		}
	}

	for _, sl := range n.Children() {
		if sl.Leaf {
			rep.ScannedLeaves++
			leaf, err := c.eng.ReadLeaf(sl.Addr)
			if err != nil {
				rep.Remaining++
				continue
			}
			if leaf.Status == wire.StatusInvalid {
				continue // interrupted delete; completeDelete's business
			}
			if target := c.placeIn(p, leaf.Key); sl.Addr.Node() != target {
				moved, err := c.eng.RelocateLeaf(n, leaf.Key, target)
				if err != nil {
					rep.Remaining++
				} else if moved {
					rep.MovedLeaves++
				}
			}
			continue
		}
		child, err := c.eng.ReadNode(sl.Addr, sl.ChildType)
		if err != nil {
			rep.Remaining++
			continue
		}
		stub := append(append([]byte(nil), full...), sl.KeyByte)
		childFull := append(append([]byte(nil), stub...), child.Partial...)
		if target := c.placeIn(p, childFull); sl.Addr.Node() != target {
			// The node's bytes and its hash entry share a home keyed by its
			// full prefix; RelocateNode moves the bytes and reuses the
			// type-switch hook to move the entry cur/prev-aware.
			moved, did, err := c.eng.RelocateNode(n, child, childFull, target,
				func(old, grown *rart.Node) error {
					return hooks{c}.TypeSwitched(childFull, old, grown)
				})
			if err != nil {
				rep.Remaining++
				continue
			}
			if did {
				rep.MovedNodes++
				child = moved
			}
		}
		c.migrateVisit(p, child, stub, rep)
	}
}

// migrateAnchors rebalances the replicated anchor store onto the target
// ring: every live node's table is walked (the union of old and new
// membership, so a draining node's records are carried off), each record
// is LWW-republished to the key's new replica targets, and records on
// nodes that left the key's replica set are retired once every new target
// confirmed the copy — remove-after-copy, so the replica count never dips
// below the invariant mid-transition.
func (c *Client) migrateAnchors(p *Placement, rep *MigrateReport) {
	ft := c.shared.FT
	seen := make(map[mem.NodeID]bool)
	var srcs []mem.NodeID
	for _, n := range p.Prev.Ring.Nodes() {
		if !seen[n] {
			seen[n] = true
			srcs = append(srcs, n)
		}
	}
	for _, n := range p.Ring.Nodes() {
		if !seen[n] {
			seen[n] = true
			srcs = append(srcs, n)
		}
	}
	for _, src := range srcs {
		if !ft.Health.Alive(src) {
			continue
		}
		view := c.anchorViewOf(src)
		if view == nil {
			rep.Remaining++
			continue
		}
		err := view.Walk(func(e wire.HashEntry) error {
			key, value, ver, err := c.readAnchor(e.Addr)
			if err != nil {
				rep.Remaining++
				return nil
			}
			rep.AnchorsScanned++
			inTargets := false
			settled := true
			for _, t := range ft.targets(p.Ring, key) {
				if t == src {
					inTargets = true
					continue
				}
				_, wrote, err := c.anchorPutOne(t, key, value, ver)
				if err != nil {
					settled = false
					rep.Remaining++
					continue
				}
				if wrote {
					rep.AnchorsCopied++
				}
			}
			if !inTargets && settled {
				if err := view.Remove(racehash.PlacementHash(key), e); err != nil {
					rep.Remaining++
				} else {
					rep.AnchorsRemoved++
				}
			}
			return nil
		})
		if err != nil {
			// The source became unreachable mid-walk; its records stay for
			// the next sweep, which cannot then report convergence.
			rep.Remaining++
		}
	}
}
