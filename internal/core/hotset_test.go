package core

import (
	"fmt"
	"testing"
)

func TestHotSetPromotesAtThreshold(t *testing.T) {
	hs := NewHotSet(0, 1, 3)
	hs.SetThresholds(5, 2, 1<<40)
	key := []byte("k")
	for i := 1; i < 5; i++ {
		if a := hs.Observe(key, false); a != HotNone {
			t.Fatalf("Observe #%d = %v, want HotNone", i, a)
		}
	}
	if a := hs.Observe(key, false); a != HotPromoteNow {
		t.Fatalf("Observe #5 = %v, want HotPromoteNow", a)
	}
	if !hs.Claimed(key) {
		t.Error("key not claimed after promote signal")
	}
	// Further observations on a claimed key stay quiet.
	if a := hs.Observe(key, false); a != HotNone {
		t.Errorf("Observe on claimed = %v, want HotNone", a)
	}
}

func TestHotSetSFCBoostCountsDouble(t *testing.T) {
	hs := NewHotSet(0, 1, 1)
	hs.SetThresholds(6, 2, 1<<40)
	key := []byte("k")
	got := HotNone
	n := 0
	for got == HotNone {
		n++
		got = hs.Observe(key, true)
	}
	if n != 3 {
		t.Errorf("promotion after %d boosted observations, want 3 (weight %d)", n, hotSFCBoost)
	}
}

func TestHotSetUnclaimAllowsRetry(t *testing.T) {
	hs := NewHotSet(0, 1, 1)
	hs.SetThresholds(2, 1, 1<<40)
	key := []byte("k")
	hs.Observe(key, false)
	if a := hs.Observe(key, false); a != HotPromoteNow {
		t.Fatalf("no promote signal: %v", a)
	}
	hs.Unclaim(key)
	if hs.Claimed(key) {
		t.Fatal("still claimed after Unclaim")
	}
	if a := hs.Observe(key, false); a != HotPromoteNow {
		t.Errorf("re-observe after Unclaim = %v, want HotPromoteNow", a)
	}
}

func TestHotSetDecayDemotes(t *testing.T) {
	hs := NewHotSet(0, 1, 1)
	// Promote at 4, demote below 3, decay every 8 observations.
	hs.SetThresholds(4, 3, 8)
	key := []byte("k")
	var a HotAction
	for i := 0; i < 4; i++ {
		a = hs.Observe(key, false)
	}
	if a != HotPromoteNow {
		t.Fatalf("no promotion: %v", a)
	}
	// Burn observations on other keys to advance decay epochs; the
	// claimed key's count halves per epoch (4 → 2 < 3 after one).
	for i := 0; i < 64; i++ {
		hs.Observe([]byte(fmt.Sprintf("other-%d", i)), false)
	}
	got := hs.Observe(key, false)
	if got != HotDemoteNow {
		t.Errorf("Observe after decay = %v, want HotDemoteNow", got)
	}
	if hs.Claimed(key) {
		t.Error("still claimed after demote signal")
	}
}

func TestHotSetFlushRoutesOncePerEpoch(t *testing.T) {
	hs := NewHotSet(0, 1, 2)
	key := []byte("k")
	hs.Rank(0).Learn(key, 42, 1)
	hs.Rank(1).Learn(key, 43, 1)
	if !hs.FlushRoutes(1) {
		t.Fatal("first flush at epoch 1 did not run")
	}
	if _, _, ok := hs.Rank(0).Lookup(key); ok {
		t.Error("rank 0 route survived the flush")
	}
	if _, _, ok := hs.Rank(1).Lookup(key); ok {
		t.Error("rank 1 route survived the flush")
	}
	if hs.FlushRoutes(1) {
		t.Error("second flush at the same epoch ran again")
	}
	hs.Rank(0).Learn(key, 44, 1)
	if !hs.FlushRoutes(2) {
		t.Error("flush at epoch 2 did not run")
	}
}

func TestHotSetSizeWithinBudget(t *testing.T) {
	const budget = 128 << 10
	hs := NewHotSet(budget, 1, 3)
	if got := hs.SizeBytes(); got > budget {
		t.Errorf("SizeBytes = %d exceeds budget %d", got, budget)
	}
	if hs.Ranks() != 3 {
		t.Errorf("Ranks = %d, want 3", hs.Ranks())
	}
}
