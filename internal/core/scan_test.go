package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sphinx/internal/art"
	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
)

// TestScanAgainstLocalART cross-validates the remote ordered scan against
// the local reference ART on random variable-length keys and random
// bounds, including open bounds and limits.
func TestScanAgainstLocalART(t *testing.T) {
	f, shared := newCluster(t, 3, fabric.InstantConfig(), 3000)
	c := newTestClient(f, shared, Options{})
	var oracle art.Tree
	rng := rand.New(rand.NewSource(77))
	randKey := func() []byte {
		n := 1 + rng.Intn(12)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(5))
		}
		return k
	}
	for i := 0; i < 2500; i++ {
		k := randKey()
		v := []byte(fmt.Sprintf("v%d", i))
		if _, err := c.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		oracle.Insert(k, v)
	}
	check := func(lo, hi []byte, limit int) {
		t.Helper()
		got, err := c.Scan(lo, hi, limit)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		oracle.Scan(lo, hi, func(k, v []byte) bool {
			want = append(want, string(k)+"="+string(v))
			return limit <= 0 || len(want) < limit
		})
		if len(got) != len(want) {
			t.Fatalf("scan [%q,%q] limit %d: %d results, oracle %d", lo, hi, limit, len(got), len(want))
		}
		for i, kv := range got {
			if string(kv.Key)+"="+string(kv.Value) != want[i] {
				t.Fatalf("scan [%q,%q][%d] = %q=%q, oracle %q", lo, hi, i, kv.Key, kv.Value, want[i])
			}
		}
	}
	check(nil, nil, 0)
	for i := 0; i < 100; i++ {
		lo, hi := randKey(), randKey()
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		check(lo, hi, 0)
		check(lo, nil, 1+rng.Intn(40))
		check(nil, hi, 0)
	}
}

// TestScanDuringConcurrentInserts: scans racing inserts must return a
// consistent subset/superset around the moving state — specifically, every
// key present before the scan started and never deleted must appear.
func TestScanDuringConcurrentInserts(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 4000)
	c := newTestClient(f, shared, Options{})
	const stable = 300
	for i := 0; i < stable; i++ {
		k := []byte(fmt.Sprintf("stable/%04d", i))
		if _, err := c.Insert(k, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := newTestClient(f, shared, Options{Seed: 9})
		for i := 0; !stop.Load(); i++ {
			k := []byte(fmt.Sprintf("moving/%06d", i))
			if _, err := w.Insert(k, []byte("m")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 15; round++ {
		kvs, err := c.Scan([]byte("stable/"), []byte("stable/~"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != stable {
			t.Fatalf("round %d: scan saw %d stable keys, want %d", round, len(kvs), stable)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestEmailDatasetEndToEnd loads a slice of the synthetic email dataset
// and validates point lookups, prefix scans and deletes against a map.
func TestEmailDatasetEndToEnd(t *testing.T) {
	keys := dataset.GenerateEmail(3000, 5)
	f, shared := newCluster(t, 3, fabric.InstantConfig(), len(keys))
	c := newTestClient(f, shared, Options{})
	oracle := map[string]string{}
	for i, k := range keys {
		v := fmt.Sprintf("m%d", i)
		if _, err := c.Insert(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		oracle[string(k)] = v
	}
	for k, v := range oracle {
		got, ok, err := c.Search([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("email %q: %v %v", k, ok, err)
		}
	}
	// Spot-check a domain-prefix scan count against the oracle.
	lo, hi := []byte("james"), []byte("jamesz")
	want := 0
	for k := range oracle {
		if k >= string(lo) && k <= string(hi) {
			want++
		}
	}
	kvs, err := c.Scan(lo, hi, 0)
	if err != nil || len(kvs) != want {
		t.Fatalf("prefix scan: %d results, oracle %d (err=%v)", len(kvs), want, err)
	}
	// Delete a third of the keys and re-validate.
	i := 0
	for k := range oracle {
		if i%3 == 0 {
			if ok, err := c.Delete([]byte(k)); err != nil || !ok {
				t.Fatalf("delete %q: %v %v", k, ok, err)
			}
			delete(oracle, k)
		}
		i++
	}
	total, err := c.Scan(nil, nil, 0)
	if err != nil || len(total) != len(oracle) {
		t.Fatalf("after deletes: scan %d, oracle %d", len(total), len(oracle))
	}
}

// TestNoDirCacheCorrectness runs the oracle workload with the directory
// cache ablation enabled.
func TestNoDirCacheCorrectness(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 2000)
	c := newTestClient(f, shared, Options{DisableDirCache: true})
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(31))
	for step := 0; step < 1500; step++ {
		k := []byte(fmt.Sprintf("k%d", rng.Intn(300)))
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("v%d", step)
			if _, err := c.Insert(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[string(k)] = v
		} else {
			got, ok, err := c.Search(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := oracle[string(k)]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("step %d: %q = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
	}
	// Without the cache, lookups pay two extra dependent round trips.
	f2, shared2 := newCluster(t, 1, fabric.DefaultConfig(), 100)
	warmup := newTestClient(f2, shared2, Options{})
	for i := 0; i < 30; i++ {
		if _, err := warmup.Insert([]byte(fmt.Sprintf("rt%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	withCache := newTestClient(f2, shared2, Options{})
	noCache := newTestClient(f2, shared2, Options{DisableDirCache: true})
	measure := func(c *Client) float64 {
		if _, _, err := c.Search([]byte("rt010")); err != nil { // warm
			t.Fatal(err)
		}
		before := c.Engine().C.Stats()
		for i := 0; i < 10; i++ {
			if _, ok, err := c.Search([]byte(fmt.Sprintf("rt%03d", i))); err != nil || !ok {
				t.Fatal(ok, err)
			}
		}
		return float64(c.Engine().C.Stats().Sub(before).RoundTrips) / 10
	}
	rtCache := measure(withCache)
	rtNo := measure(noCache)
	if rtNo < rtCache+1.5 {
		t.Errorf("dir-cache ablation: %.1f vs %.1f RT/op — expected ≥+2 round trips", rtNo, rtCache)
	}
}
