package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sphinx/internal/fabric"
)

// TestNoTornValuesUnderConcurrentUpdates is the checksum protocol's acid
// test (paper §III-C): leaf reads and single-WRITE in-place updates race
// on the same keys, with every written value a uniform byte pattern. A
// torn read that slipped past the checksum would surface as a mixed
// pattern.
func TestNoTornValuesUnderConcurrentUpdates(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 1000)
	// Values span multiple 64-byte lines so that torn images are physically
	// possible in the region model.
	mkVal := func(b byte) []byte { return bytes.Repeat([]byte{b}, 200) }

	setup := newTestClient(f, shared, Options{})
	const hotKeys = 8
	for i := 0; i < hotKeys; i++ {
		if _, err := setup.Insert([]byte(fmt.Sprintf("torn-%d", i)), mkVal(0)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	// Writers: each writes its own uniform byte value.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(w)})
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("torn-%d", i%hotKeys))
				if _, err := c.Update(k, mkVal(byte(w+1))); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	// Readers: every observed value must be uniform.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(100 + r)})
			for i := 0; !stop.Load() && i < 600; i++ {
				k := []byte(fmt.Sprintf("torn-%d", i%hotKeys))
				v, ok, err := c.Search(k)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("reader %d: key %s vanished", r, k)
					return
				}
				if len(v) != 200 {
					errs <- fmt.Errorf("reader %d: value length %d", r, len(v))
					return
				}
				for _, b := range v {
					if b != v[0] {
						errs <- fmt.Errorf("reader %d: TORN VALUE observed: % x...", r, v[:8])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	stop.Store(true)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFalsePositiveInjection plants filter entries for prefixes that do
// not exist in the index and verifies the §III-B recovery: the probe is
// refuted, the entry unlearned, and the operation still returns the right
// answer.
func TestFalsePositiveInjection(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < 50; i++ {
		if _, err := c.Insert([]byte(fmt.Sprintf("real-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Poison the filter: claim deep bogus prefixes of the lookup keys.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("real-%04d", i)
		c.filter.Insert(PrefixFilterHash([]byte(k[:7]))) // "real-00..." level rarely a real node
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("real-%04d", i))
		v, ok, err := c.Search(k)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("search with poisoned filter: %v %v", ok, err)
		}
	}
	if _, ok, _ := c.Search([]byte("real-9999")); ok {
		t.Error("phantom key found")
	}
	// At least some probes must have been refuted and unlearned.
	if c.Stats().FalsePositives == 0 {
		t.Skip("planted prefixes coincided with real nodes; nothing to verify")
	}
}

// TestStaleHashEntryCleanup forces type switches and verifies that stale
// entries pointing at invalidated nodes get removed opportunistically.
func TestStaleHashEntryCleanup(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 2000)
	a := newTestClient(f, shared, Options{})
	// Grow one node through every type: each switch leaves a window where
	// the entry still points at the invalidated node for OTHER clients
	// whose lookups race. Drive lookups from a second client between
	// growth spurts.
	b := newTestClient(f, shared, Options{})
	for i := 0; i < 250; i++ {
		k := []byte{'g', 'r', byte(i), 'x'}
		if _, err := a.Insert(k, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if _, _, err := b.Search([]byte{'g', 'r', byte(i), 'x'}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All keys remain reachable through both clients.
	for i := 0; i < 250; i++ {
		k := []byte{'g', 'r', byte(i), 'x'}
		if _, ok, err := b.Search(k); err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestDeleteThenReuseUnderConcurrency interleaves deletes of a prefix
// range with inserts that rebuild it, from different clients.
func TestDeleteThenReuseUnderConcurrency(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(w)})
			for round := 0; round < 30; round++ {
				for i := 0; i < 15; i++ {
					k := []byte(fmt.Sprintf("cycle/%d/%02d", w, i))
					if _, err := c.Insert(k, []byte{byte(round)}); err != nil {
						errs <- err
						return
					}
				}
				for i := 0; i < 15; i++ {
					k := []byte(fmt.Sprintf("cycle/%d/%02d", w, i))
					ok, err := c.Delete(k)
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						errs <- fmt.Errorf("w%d round %d: own key %d missing", w, round, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything deleted.
	c := newTestClient(f, shared, Options{})
	kvs, err := c.Scan([]byte("cycle/"), []byte("cycle/~"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Errorf("%d keys survived the delete cycles", len(kvs))
	}
}
