package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// The retry-path suite pins down the failure-window correctness of the
// operation retry loops: deterministic re-routes must not burn backoff,
// confirm-path faults must restart the op rather than fabricate answers,
// and §III-B prefix narrowing must survive unrelated fabric faults. The
// fault-window tests sweep an injected fault across every point of the
// operation rather than aiming at one, so they stay robust to cost-model
// changes.

// leafAddrOf returns key's leaf address via a fault-free root descent.
func leafAddrOf(t *testing.T, c *Client, key []byte) mem.Addr {
	t.Helper()
	root, err := c.readRoot()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := c.eng.SearchFrom(root, key, rart.NopHooks{})
	if err != nil || leaf == nil {
		t.Fatalf("leaf of %q: %v", key, err)
	}
	return leaf.Addr
}

// plantImpostor publishes a hand-built Node4 at the given prefix whose
// only child (slot, on edge byte) points somewhere off the prefix's true
// path, and poisons the filter cache so jumps land on it. This fabricates
// the paper's §III-B double collision (filter fingerprint plus 42-bit
// prefix hash) deterministically: the node is genuine for its prefix, so
// it passes every metadata check, but it is not on the searched key's
// path.
func plantImpostor(t *testing.T, c *Client, prefix []byte, edge byte, slot wire.Slot) *rart.Node {
	t.Helper()
	n := rart.NewNode(wire.Node4, prefix, 0)
	slot.Present = true
	slot.KeyByte = edge
	n.Slots[0] = slot.Encode()
	n, err := c.eng.WriteNewNode(n, prefix)
	if err != nil {
		t.Fatal(err)
	}
	entry := wire.HashEntry{Valid: true, FP: wire.FP12(prefix), Type: n.Hdr.Type, Addr: n.Addr}
	if err := c.viewFor(prefix).Insert(n.Hdr.PrefixHash, entry, c.eng.Alloc); err != nil {
		t.Fatal(err)
	}
	if c.filter != nil {
		c.filter.Insert(PrefixFilterHash(prefix))
	}
	return n
}

// TestPutNeedParentNoBackoff: a jump-started insert that discovers it
// needs the parent (full node at the jump target) is a deterministic
// structural re-route, not contention — it must re-loop immediately
// without advancing the backoff clock or burning retry budget.
func TestPutNeedParentNoBackoff(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 1000)
	filter := NewFilterCache(1<<12, 1)
	c := newTestClient(f, shared, Options{Filter: filter})
	// Four keys sharing the prefix "ab" build one full Node4 at depth 2;
	// the splits publish it, so the filter knows the prefix.
	for _, k := range []string{"ab1z", "ab2z", "ab3z", "ab4z"} {
		if _, err := c.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !filter.Contains(PrefixFilterHash([]byte("ab"))) {
		t.Fatal("filter never learned the shared prefix; the insert below would not jump")
	}

	clock0 := c.eng.C.Clock()
	restarts0 := c.stats.Restarts
	if _, err := c.Insert([]byte("ab5z"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if c.stats.ParentRetries == 0 {
		t.Fatal("insert never hit ErrNeedParent; the scenario exercises nothing")
	}
	// Under InstantConfig every batch is free, so any clock advance can
	// only come from backoff sleep — which this path must not take.
	if dt := c.eng.C.Clock() - clock0; dt != 0 {
		t.Errorf("need-parent re-route slept %d ps of backoff; want 0", dt)
	}
	if c.stats.Restarts != restarts0 {
		t.Errorf("need-parent re-route consumed %d retry budget; want 0",
			c.stats.Restarts-restarts0)
	}
	for _, k := range []string{"ab1z", "ab2z", "ab3z", "ab4z", "ab5z"} {
		if _, ok, err := c.Search([]byte(k)); err != nil || !ok {
			t.Errorf("%q missing after grow: %v", k, err)
		}
	}
}

// deleteCollisionCluster builds the Delete collision-confirm scenario:
// key K is present, and the filter + hash table carry an impostor node at
// K[:4] whose only child leads to an unrelated key's leaf, so a jumped
// Delete(K) first lands beside the key and must confirm through a
// shallower start. Returns the fabric, the shared descriptor and the
// filter (shared between setup and victim clients, as CN sessions share
// their filter cache).
func deleteCollisionCluster(t *testing.T) (*fabric.Fabric, Shared, *FilterCache) {
	t.Helper()
	f, shared := newCluster(t, 1, fabric.DefaultConfig(), 1000)
	filter := NewFilterCache(1<<12, 1)
	setup := newTestClient(f, shared, Options{Filter: filter})
	K, Z := []byte("kkkkkkkk"), []byte("zzzzzzzz")
	for _, k := range [][]byte{K, Z} {
		if _, err := setup.Insert(k, []byte("v-"+string(k[:1]))); err != nil {
			t.Fatal(err)
		}
	}
	plantImpostor(t, setup, K[:4], K[4], wire.Slot{Leaf: true, Addr: leafAddrOf(t, setup, Z)})
	return f, shared, filter
}

// TestDeleteCollisionConfirmCrashSweep: a Delete whose jump lands beside
// the key (prefix collision) confirms through a shallower start; a fault
// during that confirm must surface or restart the operation — it must
// never be swallowed into a fabricated (false, nil) "absent" answer while
// the key is still present. The test sweeps a planned client crash across
// every verb of the operation, so the confirm read's whole window is
// covered.
func TestDeleteCollisionConfirmCrashSweep(t *testing.T) {
	K := []byte("kkkkkkkk")

	// Calibrate: the clean (fault-free) victim run must detect exactly one
	// collision and delete the key; count its verbs to bound the sweep.
	f, shared, filter := deleteCollisionCluster(t)
	fc := f.NewClient()
	victim := NewClient(shared, fc, Options{Filter: filter})
	if id := fc.ID(); id != 1 {
		t.Fatalf("victim client ID = %d, want 1", id)
	}
	ok, err := victim.Delete(K)
	if err != nil || !ok {
		t.Fatalf("clean delete = %v, %v; want true, nil", ok, err)
	}
	if victim.stats.CollisionRetry != 1 {
		t.Fatalf("clean delete detected %d collisions, want 1; scenario broken", victim.stats.CollisionRetry)
	}
	verbs := fc.Stats().Verbs
	if verbs == 0 {
		t.Fatal("clean delete posted no verbs")
	}

	sawCrash := false
	for n := uint64(1); n <= verbs; n++ {
		f, shared, filter := deleteCollisionCluster(t)
		f.SetFaultPlan(&fabric.FaultPlan{Seed: 1, CrashAfterVerbs: map[int]uint64{1: n}})
		fc := f.NewClient()
		victim := NewClient(shared, fc, Options{Filter: filter})
		ok, err := victim.Delete(K)
		if err != nil {
			sawCrash = true
			continue // surfacing the crash is correct
		}
		if ok {
			continue // completed before the crash point
		}
		// (false, nil) claims the key was absent; it must actually be.
		f.SetFaultPlan(nil)
		check := newTestClient(f, shared, Options{})
		if _, present, cerr := check.Search(K); cerr != nil || present {
			t.Fatalf("crash after %d/%d verbs: Delete(%q) = (false, nil) but the key is still present (err=%v)",
				n, verbs, K, cerr)
		}
	}
	if !sawCrash {
		t.Fatal("no sweep point crashed the victim; the sweep exercises nothing")
	}
}

// searchCollisionCluster builds the two-level §III-B collision chain for
// key K: impostor A at K[:5] leads to impostor B at K[:6], whose only
// child is an unrelated key's leaf. A clean Search(K) detects exactly two
// collisions (narrowing 6 → 5 → root) before finding the key.
func searchCollisionCluster(t *testing.T, cfg fabric.Config) (*fabric.Fabric, Shared, *FilterCache) {
	t.Helper()
	f, shared := newCluster(t, 1, cfg, 1000)
	filter := NewFilterCache(1<<12, 1)
	setup := newTestClient(f, shared, Options{Filter: filter})
	K, Z := []byte("kkkkkkkk"), []byte("zzzzzzzz")
	for _, k := range [][]byte{K, Z} {
		if _, err := setup.Insert(k, []byte("v-"+string(k[:1]))); err != nil {
			t.Fatal(err)
		}
	}
	b := plantImpostor(t, setup, K[:6], K[6], wire.Slot{Leaf: true, Addr: leafAddrOf(t, setup, Z)})
	plantImpostor(t, setup, K[:5], K[5], wire.Slot{ChildType: b.Hdr.Type, Addr: b.Addr})
	return f, shared, filter
}

// TestSearchCollisionNarrowingNodeDownSweep: the §III-B narrowed prefix
// bound must survive retriable fabric faults. Descents re-learn collided
// prefixes into the filter (SawNode fires before the leaf-level check),
// so widening the bound on a fault re-detects the same collisions and can
// loop arbitrarily. The test sweeps a one-instant node-down window across
// the operation's timeline; wherever it lands, the search must still find
// the key with at most the clean run's two collision detections.
func TestSearchCollisionNarrowingNodeDownSweep(t *testing.T) {
	cfg := fabric.Config{RTTPs: 1_000_000}
	K := []byte("kkkkkkkk")

	// Calibrate the clean run: two collisions, and its elapsed time bounds
	// the sweep.
	f, shared, filter := searchCollisionCluster(t, cfg)
	fc := f.NewClient()
	probe := NewClient(shared, fc, Options{Filter: filter})
	v, ok, err := probe.Search(K)
	if err != nil || !ok || !bytes.Equal(v, []byte("v-k")) {
		t.Fatalf("clean search = %q, %v, %v", v, ok, err)
	}
	if probe.stats.CollisionRetry != 2 {
		t.Fatalf("clean search detected %d collisions, want 2; scenario broken", probe.stats.CollisionRetry)
	}
	elapsed := fc.Clock()
	if elapsed == 0 {
		t.Fatal("clean search consumed no virtual time")
	}

	var faulted int
	for ps := int64(0); ps <= elapsed; ps += cfg.RTTPs {
		f, shared, filter := searchCollisionCluster(t, cfg)
		f.SetFaultPlan(&fabric.FaultPlan{
			Seed: 1,
			Down: []fabric.DownWindow{{Node: shared.Ring.Nodes()[0], FromPs: ps, ToPs: ps + 1}},
		})
		fc := f.NewClient()
		c := NewClient(shared, fc, Options{Filter: filter})
		v, ok, err := c.Search(K)
		if err != nil || !ok || !bytes.Equal(v, []byte("v-k")) {
			t.Fatalf("window at %d ps: search = %q, %v, %v", ps, v, ok, err)
		}
		if fc.Stats().NodeDownRejects > 0 {
			faulted++
		}
		if c.stats.CollisionRetry > 2 {
			t.Fatalf("window at %d ps: %d collision detections (clean run: 2); narrowing was lost across the fault",
				ps, c.stats.CollisionRetry)
		}
	}
	if faulted == 0 {
		t.Fatal("no sweep window ever hit a batch; the sweep exercises nothing")
	}
}

// TestInvalidArgsLeaveStatsUntouched: rejected arguments pay no round
// trip and must not count as operations — otherwise per-op rates (RT/op,
// restarts/kop) are skewed by calls that never touched the index.
func TestInvalidArgsLeaveStatsUntouched(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	if _, err := c.Insert([]byte("anchor"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	rt0 := c.eng.C.Stats().RoundTrips

	tooLong := make([]byte, wire.MaxDepth+1)
	if _, _, err := c.Search(nil); err == nil {
		t.Error("Search(nil) succeeded")
	}
	if _, err := c.Insert(nil, []byte("v")); err == nil {
		t.Error("Insert(nil) succeeded")
	}
	if _, err := c.Insert(tooLong, []byte("v")); err == nil {
		t.Error("Insert(overlong) succeeded")
	}
	if _, err := c.Update(nil, []byte("v")); err == nil {
		t.Error("Update(nil) succeeded")
	}
	if _, err := c.Delete(nil); err == nil {
		t.Error("Delete(nil) succeeded")
	}
	if _, err := c.Scan([]byte("b"), []byte("a"), 0); err == nil {
		t.Error("Scan(lo>hi) succeeded")
	}
	if _, err := c.Scan(nil, nil, -1); err == nil {
		t.Error("Scan(limit<0) succeeded")
	}

	if after := c.Stats(); after != before {
		t.Errorf("rejected arguments moved counters:\nbefore %+v\nafter  %+v", before, after)
	}
	if rt := c.eng.C.Stats().RoundTrips; rt != rt0 {
		t.Errorf("rejected arguments paid %d round trips", rt-rt0)
	}
}

// TestChaosRegistryCounters: under a probabilistic fault plan, a registry
// assembled from fabric counters, core counters and a batch-observing
// metric set must reconcile — the per-stage round-trip histograms account
// for exactly the round trips the fabric counted, and snapshot diffs
// isolate the faulted window.
func TestChaosRegistryCounters(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 2000)
	f.SetFaultPlan(chaosPlan(31))
	m := obs.NewMetrics()
	fc := f.NewClient()
	c := NewClient(shared, fc, Options{Seed: 5, Observer: m})

	reg := obs.NewRegistry()
	reg.AddCounterStruct("fabric", func() any { return fc.Stats() })
	reg.AddCounterStruct("core", func() any { return c.Stats() })
	reg.AddMetrics("session", m)
	before := reg.Snapshot()

	for i := 0; i < 600; i++ {
		k := []byte(fmt.Sprintf("reg-%03d", i%120))
		switch i % 3 {
		case 0:
			if _, err := c.Insert(k, []byte("v")); err != nil {
				t.Fatalf("insert %q: %v", k, err)
			}
		case 1:
			if _, _, err := c.Search(k); err != nil {
				t.Fatalf("search %q: %v", k, err)
			}
		default:
			if _, err := c.Delete(k); err != nil {
				t.Fatalf("delete %q: %v", k, err)
			}
		}
	}

	diff := reg.Snapshot().Sub(before)
	if diff.Counters["fabric_transients"] == 0 {
		t.Fatal("workload saw no transient faults; the plan exercises nothing")
	}
	if diff.Counters["core_restarts"] == 0 {
		t.Fatal("faults never restarted an operation")
	}
	if got, want := m.StageRTTotal(), fc.Stats().RoundTrips; got != want {
		t.Errorf("stage histograms hold %d round trips, fabric counted %d", got, want)
	}
	if got, want := diff.Counters["fabric_round_trips"], fc.Stats().RoundTrips; got != want {
		t.Errorf("diffed fabric_round_trips = %d, want %d (before-snapshot was not empty)", got, want)
	}

	var prom strings.Builder
	if err := reg.Snapshot().WritePrometheus(&prom, "sphinx"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sphinx_fabric_round_trips ",
		"sphinx_fabric_transients ",
		"sphinx_core_restarts ",
		`sphinx_session_stage_round_trips_count{stage="hash-read"}`,
		`sphinx_session_stage_latency_ps_bucket{stage="leaf-read",le=`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
