package core

import (
	"errors"
	"strings"
	"testing"

	"sphinx/internal/fabric"
	"sphinx/internal/rart"
)

// smallBudget is a backoff policy tight enough to exhaust quickly under an
// always-faulting plan without making the test slow.
var smallBudget = rart.Config{Backoff: fabric.BackoffPolicy{BasePs: 1_000, CapPs: 16_000, Budget: 6}}

// TestRetriesExhaustedTyped: under a plan that fails every batch, every
// operation gives up with an error matching core.ErrRetriesExhausted via
// errors.Is, and the message names the operation and key.
func TestRetriesExhaustedTyped(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.DefaultConfig(), 100)
	seedClient := newTestClient(f, shared, Options{})
	if _, err := seedClient.Insert([]byte("present"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	f.SetFaultPlan(&fabric.FaultPlan{Seed: 1, TransientPer64k: 65536})
	c := newTestClient(f, shared, Options{Engine: smallBudget})

	_, _, err := c.Search([]byte("present"))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Search err = %v, want ErrRetriesExhausted", err)
	}
	if !strings.Contains(err.Error(), "search") || !strings.Contains(err.Error(), "present") {
		t.Errorf("error %q does not name the operation and key", err)
	}
	if _, err := c.Insert([]byte("newkey"), []byte("v")); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("Insert err = %v, want ErrRetriesExhausted", err)
	}
	if _, err := c.Delete([]byte("present")); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("Delete err = %v, want ErrRetriesExhausted", err)
	}
	if _, err := c.Scan(nil, nil, 0); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("Scan err = %v, want ErrRetriesExhausted", err)
	}

	// The faults stop, the same index works again for a fresh client.
	f.SetFaultPlan(nil)
	after := newTestClient(f, shared, Options{})
	if v, ok, err := after.Search([]byte("present")); err != nil || !ok || string(v) != "v" {
		t.Errorf("after faults: Search = %q,%v,%v", v, ok, err)
	}
}

// TestNodeUnavailableTyped: when the retry budget dies against a down
// node, the terminal error is the more specific ErrNodeUnavailable.
func TestNodeUnavailableTyped(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.DefaultConfig(), 100)
	seedClient := newTestClient(f, shared, Options{})
	if _, err := seedClient.Insert([]byte("stranded"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	node := shared.Ring.Nodes()[0]
	f.SetFaultPlan(&fabric.FaultPlan{
		Seed: 2,
		Down: []fabric.DownWindow{{Node: node, FromPs: 0, ToPs: 1 << 62}},
	})
	c := newTestClient(f, shared, Options{Engine: smallBudget})
	_, _, err := c.Search([]byte("stranded"))
	if !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("Search err = %v, want ErrNodeUnavailable", err)
	}
}

// TestScanArgValidation: malformed ranges fail fast with ErrInvalidScan;
// the documented degenerate-but-legal forms still work.
func TestScanArgValidation(t *testing.T) {
	f, shared := newCluster(t, 1, fabric.InstantConfig(), 100)
	c := newTestClient(f, shared, Options{})
	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.Insert([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := c.Scan([]byte("a"), []byte("c"), -1); !errors.Is(err, ErrInvalidScan) {
		t.Errorf("negative limit err = %v, want ErrInvalidScan", err)
	}
	if _, err := c.Scan([]byte("z"), []byte("a"), 0); !errors.Is(err, ErrInvalidScan) {
		t.Errorf("lo > hi err = %v, want ErrInvalidScan", err)
	}

	// Legal degenerate forms: empty bounds are unbounded, lo == hi is a
	// point range, limit 0 is unlimited.
	if kvs, err := c.Scan(nil, nil, 0); err != nil || len(kvs) != 3 {
		t.Errorf("unbounded scan = %d kvs, %v; want 3", len(kvs), err)
	}
	if kvs, err := c.Scan([]byte{}, []byte{}, 0); err != nil || len(kvs) != 3 {
		t.Errorf("empty-bound scan = %d kvs, %v; want 3", len(kvs), err)
	}
	if kvs, err := c.Scan([]byte("b"), []byte("b"), 0); err != nil || len(kvs) != 1 || string(kvs[0].Key) != "b" {
		t.Errorf("point scan = %v, %v; want just b", kvs, err)
	}
	if kvs, err := c.Scan(nil, nil, 2); err != nil || len(kvs) != 2 {
		t.Errorf("limited scan = %d kvs, %v; want 2", len(kvs), err)
	}
}
