package core

import (
	"fmt"
	"sync"
	"testing"

	"sphinx/internal/mem"
)

// TestLACWordPacking: the packed word must round-trip every field for
// representative corner values — the present bit, the 8-bit unit count,
// the 7-bit fingerprint and the full 48-bit address — and the zero word
// must never look like a valid entry.
func TestLACWordPacking(t *testing.T) {
	cases := []struct {
		addr  mem.Addr
		units uint8
		fp    uint64
	}{
		{mem.NewAddr(0, 64), 1, 0},
		{mem.NewAddr(1, 0), 1, 0x7f},
		{mem.NewAddr(255, mem.MaxOffset), 255, 0x55},
		{mem.NewAddr(3, 0xdead_beef), 17, 0x2a},
	}
	for _, tc := range cases {
		w := packLACWord(tc.addr, tc.units, tc.fp)
		if w&lacPresentBit == 0 {
			t.Errorf("pack(%v,%d,%#x): present bit clear", tc.addr, tc.units, tc.fp)
		}
		if got := mem.Addr(w & lacAddrMask); got != tc.addr {
			t.Errorf("pack(%v,%d,%#x): addr round-trips to %v", tc.addr, tc.units, tc.fp, got)
		}
		if got := uint8(w >> lacUnitsShift); got != tc.units {
			t.Errorf("pack(%v,%d,%#x): units round-trips to %d", tc.addr, tc.units, tc.fp, got)
		}
		if got := (w >> lacFPShift) & lacFPMask; got != tc.fp {
			t.Errorf("pack(%v,%d,%#x): fp round-trips to %#x", tc.addr, tc.units, tc.fp, got)
		}
	}
}

// TestLACLearnLookupUnlearn: the basic hint lifecycle, including that an
// unlearn is fingerprint-checked (an unlearn for key A must not remove a
// colliding slot now owned by key B) and that displacing another key's
// entry counts as an eviction.
func TestLACLearnLookupUnlearn(t *testing.T) {
	lc := NewLeafCache(64, 1)
	key := []byte("alpha")
	addr := mem.NewAddr(2, 4096)

	if _, _, ok := lc.Lookup(key); ok {
		t.Fatal("empty cache claims an opinion")
	}
	lc.Learn(key, addr, 3)
	gotAddr, gotUnits, ok := lc.Lookup(key)
	if !ok || gotAddr != addr || gotUnits != 3 {
		t.Fatalf("Lookup after Learn = (%v, %d, %v), want (%v, 3, true)", gotAddr, gotUnits, ok, addr)
	}

	// Re-learning the same key updates in place: no eviction counted.
	lc.Learn(key, addr, 5)
	if _, gotUnits, _ := lc.Lookup(key); gotUnits != 5 {
		t.Fatalf("re-Learn did not update units: got %d", gotUnits)
	}
	if st := lc.Stats(); st.Evictions != 0 {
		t.Fatalf("same-key re-learn counted %d evictions", st.Evictions)
	}

	// Find a key that collides with alpha's slot but carries a different
	// fingerprint; learning it must displace alpha and count an eviction.
	slotA, fpA := lc.slotFP(key)
	var other []byte
	for i := 0; ; i++ {
		cand := []byte(fmt.Sprintf("other-%d", i))
		if s, f := lc.slotFP(cand); s == slotA && f != fpA {
			other = cand
			break
		}
	}
	lc.Learn(other, mem.NewAddr(1, 128), 2)
	if _, _, ok := lc.Lookup(key); ok {
		t.Fatal("displaced entry still answers")
	}
	if st := lc.Stats(); st.Evictions != 1 {
		t.Fatalf("eviction count = %d, want 1", st.Evictions)
	}

	// Unlearning the displaced key must NOT clobber the new owner.
	lc.Unlearn(key)
	if _, _, ok := lc.Lookup(other); !ok {
		t.Fatal("unlearn of a displaced key removed the slot's new owner")
	}
	lc.Unlearn(other)
	if _, _, ok := lc.Lookup(other); ok {
		t.Fatal("entry survives its own unlearn")
	}
	st := lc.Stats()
	if st.Unlearns != 1 {
		t.Fatalf("unlearn count = %d, want 1 (fp-mismatched unlearn must not count)", st.Unlearns)
	}
	if occupied, _ := lc.Occupancy(); occupied != 0 {
		t.Fatalf("occupancy = %d after full unlearn, want 0", occupied)
	}
}

// TestLACBytesBudget: the byte-budget constructor must never exceed its
// budget (power-of-two rounded DOWN) and must respect the 64-entry floor.
func TestLACBytesBudget(t *testing.T) {
	for _, budget := range []uint64{0, 100, 512, 8 << 10, 512 << 10, (512 << 10) + 8, 1 << 20} {
		lc := NewLeafCacheBytes(budget, 1)
		if lc.SizeBytes() > budget && budget >= 64*8 {
			t.Errorf("budget %d: cache uses %d bytes", budget, lc.SizeBytes())
		}
		if lc.Entries() < 64 {
			t.Errorf("budget %d: %d entries, want >= 64", budget, lc.Entries())
		}
		if n := lc.Entries(); n&(n-1) != 0 {
			t.Errorf("budget %d: %d entries not a power of two", budget, n)
		}
	}
	if got := NewLeafCacheBytes(512<<10, 1).Entries(); got != 64<<10 {
		t.Errorf("512 KiB budget = %d entries, want %d", got, 64<<10)
	}
}

// TestLACConcurrentChurn: all operations are single-word atomics; under
// -race, concurrent learns, unlearns and lookups over a colliding key set
// must be clean, and any lookup that returns ok must return a word some
// learner actually wrote (no torn reads).
func TestLACConcurrentChurn(t *testing.T) {
	lc := NewLeafCache(64, 1) // small: plenty of slot collisions
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("churn-%d", i%97))
				switch (w + i) % 3 {
				case 0:
					lc.Learn(key, mem.NewAddr(mem.NodeID(w), uint64(i+1)*64), uint8(w+1))
				case 1:
					lc.Unlearn(key)
				default:
					if addr, units, ok := lc.Lookup(key); ok {
						if addr == 0 || units == 0 || units > workers {
							t.Errorf("torn lookup: addr=%v units=%d", addr, units)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := lc.Stats()
	if st.Learns == 0 {
		t.Fatal("no learns recorded")
	}
}
