package core

import (
	"fmt"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// locate finds the deepest inner node whose full prefix is a prefix of
// key, considering only prefixes of length ≤ maxLen (a false-positive
// retry shrinks maxLen, per §III-B). It returns the node and the prefix
// length the jump targeted (0 for the root).
//
// With the filter cache this is the paper's warm path: local existence
// checks pick the longest live prefix, then one hash-entry round trip and
// one node round trip. Without it (ablation / cold fallback), all prefix
// buckets are fetched in a single doorbell batch (§III-A).
func (c *Client) locate(key []byte, maxLen int) (*rart.Node, int, error) {
	if maxLen > len(key) {
		maxLen = len(key)
	}
	if c.opts.DisableFilter {
		return c.locateParallel(key, maxLen)
	}
	var probes uint64
	for l := maxLen; l >= 1; l-- {
		prefix := key[:l]
		h := PrefixFilterHash(prefix)
		probes++
		present, wasHot := c.filter.ContainsWasHot(h)
		if !present {
			continue
		}
		// The deepest prefix's pre-probe hotness bit seeds the hot-key
		// tracker (hotTouch reads this after the walk): a prefix the SFC
		// already marked recently-used corroborates skew.
		c.sfcWasHot = wasHot
		if c.rec != nil {
			c.rec.Note(fabric.StageFilterProbe, c.eng.C.Clock(),
				fmt.Sprintf("sfc probe hit: prefix %d/%d, fetching", l, len(key)))
		}
		n, err := c.fetchValidated(prefix)
		if err != nil {
			return nil, 0, err
		}
		if n != nil {
			atomic.AddUint64(&c.stats.FilterHits, 1)
			if c.index != nil {
				c.index.SFCHitDepth.Observe(uint64(l))
				c.index.SFCProbes.Observe(probes)
			}
			return n, l, nil
		}
		// The filter claimed a prefix the index does not have: unlearn it
		// and retry shorter (paper §III-B false-positive handling).
		atomic.AddUint64(&c.stats.FalsePositives, 1)
		c.filter.Delete(h)
		if c.rec != nil {
			c.rec.Note(fabric.StageFilterProbe, c.eng.C.Clock(),
				fmt.Sprintf("sfc false positive at prefix %d: unlearned", l))
		}
	}
	atomic.AddUint64(&c.stats.RootStarts, 1)
	if c.index != nil {
		c.index.SFCProbes.Observe(probes)
	}
	if c.rec != nil {
		c.rec.Note(fabric.StageFilterProbe, c.eng.C.Clock(), "sfc miss on all prefixes: root start")
	}
	root, err := c.readRoot()
	return root, 0, err
}

// fetchValidated looks the prefix up in the inner node hash table, reads
// all fingerprint-matching candidate nodes in one doorbell batch, and
// returns the first that passes the metadata checks of Fig. 3: live
// status, matching depth and matching 42-bit full-prefix hash. Stale
// entries pointing at retired nodes are removed opportunistically.
//
// During a membership transition, a miss on the current epoch's table
// falls back to the previous owner's table: an entry the migrator has
// not moved yet is still authoritative there.
func (c *Client) fetchValidated(prefix []byte) (*rart.Node, error) {
	p := c.members.Current()
	n, err := c.fetchValidatedIn(c.viewOf(c.placeIn(p, prefix)), prefix)
	if n != nil || err != nil {
		return n, err
	}
	if prev := c.prevViewFor(p, prefix); prev != nil {
		n, err = c.fetchValidatedIn(prev, prefix)
		if n != nil && err == nil {
			atomic.AddUint64(&c.stats.EpochFallbacks, 1)
		}
	}
	return n, err
}

func (c *Client) fetchValidatedIn(view *racehash.View, prefix []byte) (*rart.Node, error) {
	if view == nil {
		return nil, nil
	}
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHashRead))
	h42 := racehash.PlacementHash(prefix)
	fp := wire.FP12(prefix)
	cands, err := view.LookupAppend(c.candScratch[:0], h42, fp)
	c.candScratch = cands
	if err != nil {
		return nil, err
	}
	if c.index != nil {
		c.index.INHTCandidates.Observe(uint64(len(cands)))
	}
	if len(cands) == 0 {
		return nil, nil
	}
	nodes, err := c.readCandidates(cands)
	if err != nil {
		return nil, err
	}
	var found *rart.Node
	for i, n := range nodes {
		if n == nil {
			continue
		}
		switch {
		case n.Hdr.Status == wire.StatusInvalid:
			// Retired by a type switch whose table update this entry
			// predates; clean it up so future lookups stay single-read.
			atomic.AddUint64(&c.stats.StaleEntries, 1)
			if err := view.Remove(h42, cands[i].Entry); err != nil {
				return nil, err
			}
		case !c.validPrefixNode(n, prefix):
			// The 12-bit entry fingerprint matched, but the node's depth or
			// 42-bit full-prefix hash did not: a hash-table-level
			// fingerprint collision, paid for with a wasted node read.
			atomic.AddUint64(&c.stats.FPMismatches, 1)
		case found == nil:
			found = n
		}
	}
	return found, nil
}

// validPrefixNode applies the §III-B metadata checks.
func (c *Client) validPrefixNode(n *rart.Node, prefix []byte) bool {
	return int(n.Hdr.Depth) == len(prefix) && n.Hdr.PrefixHash == wire.PrefixHash42(prefix)
}

// readCandidates fetches candidate inner nodes in one doorbell batch.
// Entries whose size hint proved stale are re-read individually. The
// returned slice is client-owned scratch, valid until the next locate step.
func (c *Client) readCandidates(cands []racehash.Candidate) ([]*rart.Node, error) {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageNodeRead))
	ops := c.opScratch[:0]
	bufs := c.bufScratch[:0]
	for _, cand := range cands {
		var buf []byte
		ops, buf = c.eng.AppendNodeRead(ops, cand.Entry.Addr, cand.Entry.Type)
		bufs = append(bufs, buf)
	}
	c.opScratch, c.bufScratch = ops, bufs
	if err := c.eng.C.Batch(ops); err != nil {
		for _, buf := range bufs {
			c.eng.ReleaseBuf(buf)
		}
		return nil, err
	}
	nodes := c.nodeScratch[:0]
	for i, cand := range cands {
		n, err := rart.Decode(cand.Entry.Addr, bufs[i])
		c.eng.ReleaseBuf(bufs[i])
		if err != nil {
			// Stale size hint or garbage behind a collided entry: retry
			// once at full fidelity, and treat a second failure as a
			// non-candidate rather than an operation error.
			if n, err = c.eng.ReadNode(cand.Entry.Addr, cand.Entry.Type); err != nil {
				n = nil
			}
		}
		nodes = append(nodes, n)
	}
	c.nodeScratch = nodes
	return nodes, nil
}

// locateParallel is the filter-less path: read the candidate buckets of
// every prefix of the key in one doorbell batch (Θ(L) entries, one round
// trip — §III-A), then fetch the deepest candidate node.
func (c *Client) locateParallel(key []byte, maxLen int) (*rart.Node, int, error) {
	defer c.eng.C.SetStage(c.eng.C.SetStage(fabric.StageHashRead))
	type pending struct {
		l    int
		view *racehash.View
		h42  uint64
		fp   uint16
		read *racehash.PreparedRead
	}
	pendings := make([]pending, 0, maxLen)
	var ops []fabric.Op
	for l := 1; l <= maxLen; l++ {
		prefix := key[:l]
		view := c.viewFor(prefix)
		p, err := view.Prepare(racehash.PlacementHash(prefix))
		if err != nil {
			return nil, 0, err
		}
		pendings = append(pendings, pending{
			l: l, view: view,
			h42: racehash.PlacementHash(prefix), fp: wire.FP12(prefix),
			read: p,
		})
		ops = p.AppendOps(ops)
	}
	if len(ops) > 0 {
		if err := c.eng.C.Batch(ops); err != nil {
			return nil, 0, err
		}
	}
	atomic.AddUint64(&c.stats.FilterFallbacks, 1)

	// Deepest first: validate the bucket read, collect candidates, fetch.
	for i := len(pendings) - 1; i >= 0; i-- {
		p := pendings[i]
		cands := p.read.Candidates(p.fp)
		if !p.read.Valid() {
			// Stale directory cache for this prefix: redo just this one.
			fresh, err := p.view.Lookup(p.h42, p.fp)
			if err != nil {
				return nil, 0, err
			}
			cands = fresh
		}
		if len(cands) == 0 {
			continue
		}
		nodes, err := c.readCandidates(cands)
		if err != nil {
			return nil, 0, err
		}
		for _, n := range nodes {
			if n != nil && n.Hdr.Status != wire.StatusInvalid && c.validPrefixNode(n, key[:p.l]) {
				return n, p.l, nil
			}
		}
	}
	atomic.AddUint64(&c.stats.RootStarts, 1)
	root, err := c.readRoot()
	return root, 0, err
}

func (c *Client) readRoot() (*rart.Node, error) {
	n, err := c.eng.ReadNode(c.shared.Root, wire.Node256)
	if err != nil {
		return nil, fmt.Errorf("core: reading root: %w", err)
	}
	return n, nil
}
