package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sphinx/internal/fabric"
)

// sweepToCutover drives migration sweeps until the transition cuts over,
// failing the test if it does not converge within a generous bound.
func sweepToCutover(t *testing.T, c *Client) MigrateReport {
	t.Helper()
	for i := 0; i < 30; i++ {
		rep, err := c.MigrateSweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		if rep.CutOver {
			return rep
		}
	}
	t.Fatal("migration did not converge within 30 sweeps")
	return MigrateReport{}
}

func verifyAll(t *testing.T, c *Client, n int, context string) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("elastic-key-%05d", i))
		want := fmt.Sprintf("val-%05d", i)
		v, ok, err := c.Search(key)
		if err != nil || !ok {
			t.Fatalf("%s: Search(%s) = %v, %v", context, key, ok, err)
		}
		if string(v) != want {
			t.Fatalf("%s: Search(%s) = %q, want %q", context, key, v, want)
		}
	}
}

func TestElasticAddNode(t *testing.T) {
	const keys = 400
	f, shared := newCluster(t, 2, fabric.InstantConfig(), keys)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("elastic-key-%05d", i))
		if _, err := c.Insert(key, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	id := f.AddNode(256 << 20)
	p, err := BeginAddNode(f, shared, id, keys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 1 || !shared.Members.Transitioning() {
		t.Fatalf("after BeginAddNode: epoch=%d transitioning=%v", p.Epoch, shared.Members.Transitioning())
	}
	if !p.Ring.Contains(id) {
		t.Fatal("new node missing from the next epoch's ring")
	}

	// Mid-transition, before any migration: every key must stay readable
	// via the previous-epoch fallback.
	verifyAll(t, c, keys, "mid-transition")
	if fb := c.Stats().EpochFallbacks; fb == 0 {
		t.Error("no epoch fallbacks recorded while reading mid-transition")
	}

	// New keys written mid-transition land in the new epoch's placement.
	if _, err := c.Insert([]byte("elastic-new-key"), []byte("new")); err != nil {
		t.Fatal(err)
	}

	first, err := c.MigrateSweep()
	if err != nil {
		t.Fatal(err)
	}
	if first.MovedLeaves+first.MovedNodes == 0 {
		t.Errorf("first sweep moved nothing: %+v", first)
	}
	rep := sweepToCutover(t, c)
	if shared.Members.Transitioning() {
		t.Fatal("still transitioning after cutover")
	}
	if got := shared.Members.Current().Epoch; got != 1 {
		t.Fatalf("post-cutover epoch = %d, want 1", got)
	}
	t.Logf("cutover report: %+v", rep)

	verifyAll(t, c, keys, "post-cutover")
	if v, ok, err := c.Search([]byte("elastic-new-key")); err != nil || !ok || string(v) != "new" {
		t.Fatalf("mid-transition insert lost: %q, %v, %v", v, ok, err)
	}

	// A fresh client — no warm caches, only the new placement — must see
	// everything too.
	c2 := newTestClient(f, shared, Options{})
	verifyAll(t, c2, keys, "fresh client post-cutover")
}

func TestElasticDrainNode(t *testing.T) {
	const keys = 300
	f, shared := newCluster(t, 3, fabric.InstantConfig(), keys)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("elastic-key-%05d", i))
		if _, err := c.Insert(key, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Drain any member that does not host the pinned root.
	var victim = shared.Root.Node()
	for _, n := range shared.Members.Current().Ring.Nodes() {
		if n != shared.Root.Node() {
			victim = n
			break
		}
	}
	if _, err := BeginDrainNode(shared, victim); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, c, keys, "mid-drain")
	sweepToCutover(t, c)
	if shared.Members.Current().Ring.Contains(victim) {
		t.Fatal("drained node still on the ring after cutover")
	}
	verifyAll(t, c, keys, "post-drain")

	// The strongest possible check that nothing references the drained
	// node anymore: kill it and re-verify with a fresh client. Without the
	// fault-tolerance layer there is no failover, so any surviving pointer
	// into the drained node would fail the read outright.
	f.KillNode(victim)
	c2 := newTestClient(f, shared, Options{})
	verifyAll(t, c2, keys, "post-drain with drained node killed")
}

func TestElasticDrainRootRefused(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 100)
	_ = f
	if _, err := BeginDrainNode(shared, shared.Root.Node()); err == nil {
		t.Fatal("draining the root-hosting node must be refused")
	}
	if shared.Members.Transitioning() {
		t.Fatal("refused drain left a transition open")
	}
}

func TestElasticOverlappingTransitionRejected(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.InstantConfig(), 100)
	id := f.AddNode(256 << 20)
	if _, err := BeginAddNode(f, shared, id, 100); err != nil {
		t.Fatal(err)
	}
	id2 := f.AddNode(256 << 20)
	if _, err := BeginAddNode(f, shared, id2, 100); !errors.Is(err, ErrTransitionActive) {
		t.Fatalf("overlapping add: err = %v, want ErrTransitionActive", err)
	}
	nodes := shared.Members.Current().Ring.Nodes()
	if _, err := BeginDrainNode(shared, nodes[len(nodes)-1]); !errors.Is(err, ErrTransitionActive) {
		t.Fatalf("drain during add: err = %v, want ErrTransitionActive", err)
	}
}

func TestElasticAddNodeReplicated(t *testing.T) {
	const keys = 300
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), keys)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("elastic-key-%05d", i))
		if _, err := c.Insert(key, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	id := f.AddNode(256 << 20)
	if _, err := BeginAddNode(f, shared, id, keys); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, c, keys, "mid-transition")
	rep := sweepToCutover(t, c)
	if rep.AnchorsScanned == 0 {
		t.Error("replicated add: no anchors scanned by migration")
	}
	verifyAll(t, c, keys, "post-cutover")

	// The anchor store must be back at full replication under the NEW
	// placement: a repair sweep finds no deficits.
	for i := 0; i < 10; i++ {
		rr, err := c.RepairSweep()
		if err != nil {
			t.Fatal(err)
		}
		if rr.Deficits == 0 {
			break
		}
		if i == 9 {
			t.Fatalf("repair did not converge after migration: %+v", rr)
		}
	}
	if ur := shared.FT.UnderReplicated(); ur != 0 {
		t.Fatalf("under-replicated gauge = %d after migration + repair", ur)
	}
}

func TestElasticDrainReplicated(t *testing.T) {
	const keys = 200
	f, shared := newReplicatedCluster(t, 4, fabric.InstantConfig(), keys)
	c := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("elastic-key-%05d", i))
		if _, err := c.Insert(key, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var victim = shared.Root.Node()
	for _, n := range shared.Members.Current().Ring.Nodes() {
		if n != shared.Root.Node() {
			victim = n
			break
		}
	}
	if _, err := BeginDrainNode(shared, victim); err != nil {
		t.Fatal(err)
	}
	rep := sweepToCutover(t, c)
	if rep.Epoch != 1 {
		t.Fatalf("cutover epoch = %d, want 1", rep.Epoch)
	}
	verifyAll(t, c, keys, "post-drain")

	// After the graceful drain the victim holds nothing; killing it must
	// not lose a single key, and repair must find full replication among
	// the survivors.
	f.KillNode(victim)
	verifyAll(t, c, keys, "post-drain with victim killed")
	for i := 0; i < 10; i++ {
		rr, err := c.RepairSweep()
		if err != nil {
			t.Fatal(err)
		}
		if rr.Deficits == 0 {
			break
		}
		if i == 9 {
			t.Fatalf("repair did not converge after drain: %+v", rr)
		}
	}
}

// TestElasticMigrationUnderLoad runs the migration while concurrent
// clients keep writing: the sweep's relocations and the writers' ordinary
// publications race on the same nodes, leaves and tables, which is
// exactly the online-rebalancing claim. Run with -race.
func TestElasticMigrationUnderLoad(t *testing.T) {
	const keys = 200
	const workers = 3
	f, shared := newCluster(t, 2, fabric.InstantConfig(), keys)
	loader := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("load-key-%05d", i))
		if _, err := loader.Insert(key, []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}

	id := f.AddNode(256 << 20)
	if _, err := BeginAddNode(f, shared, id, keys); err != nil {
		t.Fatal(err)
	}

	// Writers churn their own key shards (single writer per key, so the
	// final value is deterministic) while the migrator runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := newTestClient(f, shared, Options{})
			for round := 1; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < keys; i += workers {
					key := []byte(fmt.Sprintf("load-key-%05d", i))
					if _, err := wc.Update(key, []byte(fmt.Sprintf("v%d-%d", w, round))); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	migrator := newTestClient(f, shared, Options{})
	for i := 0; i < 40 && shared.Members.Transitioning(); i++ {
		if _, err := migrator.MigrateSweep(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Writers stopped; drive the remaining moves home.
	if shared.Members.Transitioning() {
		sweepToCutover(t, migrator)
	}

	// Every key must exist with some worker-written value.
	reader := newTestClient(f, shared, Options{})
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("load-key-%05d", i))
		v, ok, err := reader.Search(key)
		if err != nil || !ok {
			t.Fatalf("post-migration Search(%s) = %v, %v", key, ok, err)
		}
		if len(v) == 0 {
			t.Fatalf("post-migration Search(%s) returned empty value", key)
		}
	}
}
