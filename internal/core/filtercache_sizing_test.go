package core

import (
	"testing"

	"sphinx/internal/cuckoo"
)

// TestFilterCacheBudgetPrecision pins the byte-budget sizing contract
// across the range of budgets the experiments use (64 KiB tiny-SFC
// ablations up to the paper's 20 MB): SizeBytes() never exceeds the
// budget and lands within 5% of it. The old sizing chain (entries =
// budget/2·95%, then the constructor's own ~95%-load headroom and
// power-of-two rounding) could overshoot a budget by almost 2×; the
// byte-exact constructor makes the budget the filter's actual footprint.
func TestFilterCacheBudgetPrecision(t *testing.T) {
	budgets := []uint64{
		64 << 10, // tiny-SFC ablation scale
		100_000,  // no power-of-two structure
		128 << 10,
		333_333,
		1 << 20,
		3_333_333,
		5 << 20,
		10 << 20,
		20 << 20, // the paper's CN cache budget
	}
	for _, budget := range budgets {
		for _, policy := range []cuckoo.Policy{cuckoo.PolicySecondChance, cuckoo.PolicyRandom} {
			for _, mode := range []FilterCacheMode{FilterLockFree, FilterMutex} {
				fc := NewFilterCacheBytesPolicyMode(budget, 1, policy, mode)
				got := fc.SizeBytes()
				if got > budget {
					t.Errorf("budget %d policy %d mode %v: SizeBytes %d exceeds budget",
						budget, policy, mode, got)
				}
				if float64(got) < 0.95*float64(budget) {
					t.Errorf("budget %d policy %d mode %v: SizeBytes %d is under 95%% of budget",
						budget, policy, mode, got)
				}
			}
		}
	}
}
