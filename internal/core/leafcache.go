package core

import (
	"sync/atomic"

	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// lacSeed derives the leaf-address-cache hash from a full key; distinct
// from the filter seed (8) and the leaf checksum seeds (2, 3).
const lacSeed = 9

// lacWord packs one leaf-address-cache entry into a single uint64 so the
// cache needs no locks — the same whole-word atomic discipline the cuckoo
// filter buckets use:
//
//	[63]    present
//	[62:55] leaf size in 64-byte units (exact, so a speculative read
//	        fetches the whole leaf in one round trip)
//	[54:48] 7-bit key fingerprint (tags the slot's owner so an unlearn
//	        for key A cannot evict a fresher entry for key B)
//	[47:0]  packed leaf mem.Addr (node in [47:40], offset in [39:0])
//
// The zero word is "empty": a valid entry always has the present bit set,
// and no valid leaf ever lives at the null address.
const (
	lacPresentBit = uint64(1) << 63
	lacUnitsShift = 55
	lacFPShift    = 48
	lacFPMask     = uint64(0x7f)
	lacAddrMask   = (uint64(1) << 48) - 1
)

func packLACWord(addr mem.Addr, units uint8, fp uint64) uint64 {
	return lacPresentBit |
		uint64(units)<<lacUnitsShift |
		(fp&lacFPMask)<<lacFPShift |
		uint64(addr)&lacAddrMask
}

// LACStats counts leaf-address-cache maintenance events. Hit/refute
// outcomes are operation-level decisions and live in core.Stats; these are
// the cache's own bookkeeping.
type LACStats struct {
	Learns    uint64 // entries written (fresh or overwriting)
	Unlearns  uint64 // entries removed after a refuted speculative read
	Evictions uint64 // learns that displaced a live entry for another key
}

// Add returns s + t, field-wise.
func (s LACStats) Add(t LACStats) LACStats {
	s.Learns += t.Learns
	s.Unlearns += t.Unlearns
	s.Evictions += t.Evictions
	return s
}

// LeafCache is the per-CN speculative leaf-address cache (LAC): a
// direct-mapped, lock-free map from key hash to the leaf address the key
// was last found at, plus the leaf's exact size. A hit lets a warm Get
// issue one doorbell read straight at the leaf and verify in place —
// trust-but-verify, the same shape as the succinct filter cache, but for
// the whole traversal instead of the deepest prefix.
//
// Entries are single uint64 words accessed with atomic load/store/CAS, so
// all workers of one CN share the cache with no locks. The cache is only a
// hint: a wrong or stale entry costs one refuted read, never a wrong
// answer (verification is the leaf's checksum, status word and full-key
// comparison — see specGet in ops.go).
type LeafCache struct {
	words []uint64
	mask  uint64
	seed  uint64
	stats LACStats
}

// NewLeafCache creates a leaf-address cache with capacity for n entries
// (rounded up to a power of two; minimum 64).
func NewLeafCache(n int, seed uint64) *LeafCache {
	size := 64
	for size < n {
		size <<= 1
	}
	return &LeafCache{
		words: make([]uint64, size),
		mask:  uint64(size) - 1,
		seed:  seed,
	}
}

// NewLeafCacheBytes creates a leaf-address cache bounded by a CN-side
// memory budget (8 bytes per entry).
func NewLeafCacheBytes(budget uint64, seed uint64) *LeafCache {
	n := int(budget / 8)
	if n < 64 {
		n = 64
	}
	// Round down to a power of two so the cache never exceeds the budget.
	size := 64
	for size*2 <= n {
		size <<= 1
	}
	return NewLeafCache(size, seed)
}

// slotFP derives the slot index and fingerprint of a key from one hash:
// low bits index, bits above the table's width tag.
func (lc *LeafCache) slotFP(key []byte) (slot uint64, fp uint64) {
	h := wire.Hash64Seed(key, lacSeed^lc.seed)
	slot = h & lc.mask
	fp = (h >> 48) & lacFPMask
	return slot, fp
}

// Lookup returns the cached leaf address and exact unit count for a key.
// A false return means the cache has no opinion; a true return is a hint
// that MUST be verified against the leaf image it resolves to.
func (lc *LeafCache) Lookup(key []byte) (addr mem.Addr, units uint8, ok bool) {
	slot, fp := lc.slotFP(key)
	w := atomic.LoadUint64(&lc.words[slot])
	if w&lacPresentBit == 0 || (w>>lacFPShift)&lacFPMask != fp {
		return 0, 0, false
	}
	return mem.Addr(w & lacAddrMask), uint8(w >> lacUnitsShift), true
}

// Learn records that key was found at addr in a leaf of the given exact
// size. Direct-mapped: a colliding entry for another key is displaced
// (counted as an eviction).
func (lc *LeafCache) Learn(key []byte, addr mem.Addr, units uint8) {
	slot, fp := lc.slotFP(key)
	next := packLACWord(addr, units, fp)
	prev := atomic.SwapUint64(&lc.words[slot], next)
	atomic.AddUint64(&lc.stats.Learns, 1)
	if prev&lacPresentBit != 0 && (prev>>lacFPShift)&lacFPMask != fp {
		atomic.AddUint64(&lc.stats.Evictions, 1)
	}
}

// Unlearn removes the entry for key after a refuted speculative read. The
// removal is a CAS on the exact observed word, so a concurrent Learn that
// already replaced the slot (fresher information) is never clobbered.
func (lc *LeafCache) Unlearn(key []byte) {
	slot, fp := lc.slotFP(key)
	w := atomic.LoadUint64(&lc.words[slot])
	if w&lacPresentBit == 0 || (w>>lacFPShift)&lacFPMask != fp {
		return
	}
	if atomic.CompareAndSwapUint64(&lc.words[slot], w, 0) {
		atomic.AddUint64(&lc.stats.Unlearns, 1)
	}
}

// Reset clears every entry with plain atomic stores. Concurrent Learns
// racing the sweep may be lost — acceptable for the one caller (the hot
// tracker's route flush on a membership change), where a lost entry only
// costs a relearn.
func (lc *LeafCache) Reset() {
	for i := range lc.words {
		atomic.StoreUint64(&lc.words[i], 0)
	}
}

// SizeBytes returns the cache's memory footprint.
func (lc *LeafCache) SizeBytes() uint64 { return uint64(len(lc.words)) * 8 }

// Entries returns the cache's slot capacity.
func (lc *LeafCache) Entries() int { return len(lc.words) }

// Occupancy returns the number of live entries and the slot capacity.
func (lc *LeafCache) Occupancy() (occupied, capacity uint64) {
	for i := range lc.words {
		if atomic.LoadUint64(&lc.words[i])&lacPresentBit != 0 {
			occupied++
		}
	}
	return occupied, uint64(len(lc.words))
}

// Stats returns a snapshot of the cache's maintenance counters.
func (lc *LeafCache) Stats() LACStats {
	return LACStats{
		Learns:    atomic.LoadUint64(&lc.stats.Learns),
		Unlearns:  atomic.LoadUint64(&lc.stats.Unlearns),
		Evictions: atomic.LoadUint64(&lc.stats.Evictions),
	}
}
