package core

import (
	"sync/atomic"

	"sphinx/internal/wire"
)

// hotSeed derives the hot-set sketch hash from a full key; distinct from
// the filter seed (8) and the leaf-address-cache seed (9).
const hotSeed = 10

// Hot-set sketch word layout. Each slot is one uint64 mutated only by
// whole-word CAS — the same lock-free discipline as the cuckoo filter
// buckets and the leaf-address cache:
//
//	[63:48] 16-bit key tag (owner fingerprint; 0 in an empty word means
//	        the slot is free, a zero tag from the hash is remapped to 1)
//	[47]    claim bit: this CN has promoted the key (or is promoting it)
//	[46:32] 15-bit decay epoch the count was last normalized to
//	[31:0]  frequency count, halved once per elapsed epoch (lazy decay)
const (
	hotTagShift   = 48
	hotClaimBit   = uint64(1) << 47
	hotEpochShift = 32
	hotEpochMask  = uint64(1)<<15 - 1
	hotCountMask  = uint64(1)<<32 - 1
	// hotCountCap bounds the count so bursts cannot take epochs of decay
	// to cool back below the demotion threshold.
	hotCountCap = uint64(1) << 20
)

// Hot-set tuning defaults. The thresholds are rates, not raw counts: a
// key promotes when it accumulates hotPromoteAt observations faster than
// the sketch decays them (one halving per hotDecayFloor..4×slots
// observations), which uniform traffic over a reasonably sized keyspace
// essentially never does — so the hot layer stays inert unless the
// workload is actually skewed.
const (
	hotPromoteAt   = 32
	hotDemoteAt    = 8
	hotDecayFloor  = 4096
	hotSFCBoost    = 2 // observation weight when the SFC hotness bit agrees
	// DefaultHotSetBytes is the per-CN tracker budget: half frequency
	// sketch, half split across the per-replica-rank route caches.
	DefaultHotSetBytes = 256 << 10
)

// HotAction tells the caller of Observe what maintenance the key needs.
type HotAction int

// Observe outcomes.
const (
	// HotNone: nothing to do.
	HotNone HotAction = iota
	// HotPromoteNow: the key just crossed the promotion threshold and this
	// caller won the claim; it should publish hot replicas (a failed
	// publish must Unclaim so a later Observe can retry).
	HotPromoteNow
	// HotDemoteNow: a claimed key decayed below the demotion threshold and
	// this caller cleared the claim; it should tear the replicas down.
	HotDemoteNow
)

// HotSet is the per-CN hot-key tracker: a decaying frequency sketch that
// decides which keys deserve replicated placement, plus one route cache
// per replica rank mapping a hot key to the address of its replica record
// on that rank's memory node. Everything is lock-free single-word atomics
// and shared by all workers of one CN.
//
// The sketch is approximate in the usual ways — tags can collide (two
// keys pooling one count), slots can be stolen (a cold key's count aged
// away by a busier neighbour) — and every approximation is benign: a
// spurious promotion wastes a few round trips, a missed one only forgoes
// the optimization, and a stale route is refuted by record verification,
// never served (see hotreplica.go).
type HotSet struct {
	words []uint64
	mask  uint64
	seed  uint64
	ranks []*LeafCache

	obs  atomic.Uint64 // observation counter; epoch = obs / decayEvery
	pick atomic.Uint64 // Weyl state for replica sampling (p2c)
	// routeEpoch is the membership epoch the route caches are valid for;
	// a transition flushes them (replica targets move with the ring, and
	// records on departed nodes are no longer refreshed by writers).
	routeEpoch atomic.Uint64

	decayEvery uint64
	promoteAt  uint32
	demoteAt   uint32
}

// NewHotSet creates a tracker within a CN-side byte budget (0 selects
// DefaultHotSetBytes), with r route caches — one per replica rank.
func NewHotSet(budget uint64, seed uint64, r int) *HotSet {
	if budget == 0 {
		budget = DefaultHotSetBytes
	}
	if r < 1 {
		r = 1
	}
	size := 64
	for uint64(size)*2*8 <= budget/2 {
		size <<= 1
	}
	hs := &HotSet{
		words: make([]uint64, size),
		mask:  uint64(size) - 1,
		seed:  seed,
		ranks: make([]*LeafCache, r),
	}
	perRank := budget / 2 / uint64(r)
	for i := range hs.ranks {
		hs.ranks[i] = NewLeafCacheBytes(perRank, seed+uint64(i)*0x9e3779b97f4a7c15+1)
	}
	hs.pick.Store(seed | 1)
	hs.decayEvery = 4 * uint64(size)
	if hs.decayEvery < hotDecayFloor {
		hs.decayEvery = hotDecayFloor
	}
	hs.promoteAt = hotPromoteAt
	hs.demoteAt = hotDemoteAt
	return hs
}

// SetThresholds overrides the promotion/demotion counts and the decay
// period (observations per halving). Zero keeps the current value.
// Intended for tests and experiments; not safe to call concurrently with
// Observe.
func (hs *HotSet) SetThresholds(promoteAt, demoteAt uint32, decayEvery uint64) {
	if promoteAt != 0 {
		hs.promoteAt = promoteAt
	}
	if demoteAt != 0 {
		hs.demoteAt = demoteAt
	}
	if decayEvery != 0 {
		hs.decayEvery = decayEvery
	}
}

// Ranks returns the number of replica-rank route caches.
func (hs *HotSet) Ranks() int { return len(hs.ranks) }

// Rank returns rank i's route cache (key → replica record address).
func (hs *HotSet) Rank(i int) *LeafCache { return hs.ranks[i] }

// NextPick advances the shared sampling state for power-of-two-choices
// replica selection. Wait-free; concurrent draws may correlate, which
// only correlates two route choices.
func (hs *HotSet) NextPick() uint64 {
	h := hs.pick.Add(0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return h
}

// SizeBytes returns the tracker's CN memory footprint (sketch + routes).
func (hs *HotSet) SizeBytes() uint64 {
	total := uint64(len(hs.words)) * 8
	for _, rc := range hs.ranks {
		total += rc.SizeBytes()
	}
	return total
}

func (hs *HotSet) slotTag(key []byte) (slot uint64, tag uint64) {
	h := wire.Hash64Seed(key, hotSeed^hs.seed)
	slot = h & hs.mask
	tag = (h >> 48) & 0xffff
	if tag == 0 {
		tag = 1
	}
	return slot, tag
}

func hotDecay(count uint64, delta uint64) uint64 {
	if delta > 31 {
		return 0
	}
	return count >> delta
}

// epochDelta returns how many decay epochs elapsed between two 15-bit
// epoch stamps (modular, so the counter wrapping is harmless).
func epochDelta(cur, old uint64) uint64 {
	return (cur - old) & hotEpochMask
}

// Observe records one access to key, decaying lazily, and reports
// whether the key just crossed a promotion or demotion threshold with
// this CN winning the state transition (the claim bit arbitrates, so
// concurrent workers of one CN produce exactly one promoter). sfcHot
// weights the observation by the SFC hotness bit — a prefix the filter
// already marked recently-used is corroborating evidence of skew.
func (hs *HotSet) Observe(key []byte, sfcHot bool) HotAction {
	slot, tag := hs.slotTag(key)
	inc := uint64(1)
	if sfcHot {
		inc = hotSFCBoost
	}
	epoch := (hs.obs.Add(1) / hs.decayEvery) & hotEpochMask
	for spin := 0; spin < maxHotSpins; spin++ {
		w := atomic.LoadUint64(&hs.words[slot])
		wtag := w >> hotTagShift
		wepoch := (w >> hotEpochShift) & hotEpochMask
		count := hotDecay(w&hotCountMask, epochDelta(epoch, wepoch))
		var next uint64
		action := HotNone
		switch {
		case wtag == 0:
			// Free slot: claim it for this key.
			next = tag<<hotTagShift | epoch<<hotEpochShift | inc
		case wtag == tag:
			claim := w & hotClaimBit
			count += inc
			if count > hotCountCap {
				count = hotCountCap
			}
			if claim == 0 && count >= uint64(hs.promoteAt) {
				claim = hotClaimBit
				action = HotPromoteNow
			} else if claim != 0 && count < uint64(hs.demoteAt) {
				claim = 0
				action = HotDemoteNow
			}
			next = tag<<hotTagShift | claim | epoch<<hotEpochShift | count
		default:
			// Another key owns the slot: age it (TinyLFU-style), stealing
			// once fully cold. Stealing a still-claimed slot is allowed —
			// the orphaned key's replicas stay valid (writers refresh them
			// through the tables, not the sketch) and its route entries
			// fall out of the rank caches by eviction or refutation.
			if count > 0 {
				count--
			}
			if count == 0 {
				next = tag<<hotTagShift | epoch<<hotEpochShift | inc
			} else {
				next = wtag<<hotTagShift | w&hotClaimBit | epoch<<hotEpochShift | count
			}
		}
		if atomic.CompareAndSwapUint64(&hs.words[slot], w, next) {
			return action
		}
	}
	return HotNone
}

// maxHotSpins bounds Observe's CAS loop; losing every spin just drops one
// observation.
const maxHotSpins = 4

// Unclaim clears the key's claim bit after a failed promotion so a later
// Observe can retry. CAS-exact: a concurrent state change wins.
func (hs *HotSet) Unclaim(key []byte) {
	slot, tag := hs.slotTag(key)
	for spin := 0; spin < maxHotSpins; spin++ {
		w := atomic.LoadUint64(&hs.words[slot])
		if w>>hotTagShift != tag || w&hotClaimBit == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&hs.words[slot], w, w&^hotClaimBit) {
			return
		}
	}
}

// Claimed reports whether the key currently holds this CN's claim bit
// (promoted, or promotion in flight). Diagnostic/test helper.
func (hs *HotSet) Claimed(key []byte) bool {
	slot, tag := hs.slotTag(key)
	w := atomic.LoadUint64(&hs.words[slot])
	return w>>hotTagShift == tag && w&hotClaimBit != 0
}

// FlushRoutes invalidates every route cache if the membership epoch moved
// since the last flush, returning whether a flush happened. After a ring
// change, replica targets shift and records on departed members are no
// longer write-refreshed, so pre-transition routes must not be trusted;
// the sketch itself survives (frequency is placement-independent).
// Exactly one caller wins the epoch CAS and performs the zeroing; entries
// learned concurrently with it may be lost, which only costs a relearn.
func (hs *HotSet) FlushRoutes(epoch uint64) bool {
	old := hs.routeEpoch.Load()
	if old == epoch {
		return false
	}
	if !hs.routeEpoch.CompareAndSwap(old, epoch) {
		return false
	}
	for _, rc := range hs.ranks {
		rc.Reset()
	}
	return true
}
