package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// hooks wires tree events into Sphinx's side structures: descent
// discoveries feed the filter cache; structural changes maintain the inner
// node hash table (paper §IV).
type hooks struct{ c *Client }

// SawNode learns every prefix encountered during a descent into the filter
// cache ("the client updates the succinct filter cache for any prefixes
// not present in the cache", §IV Search).
func (h hooks) SawNode(prefix []byte, n *rart.Node) {
	if len(prefix) == 0 || h.c.filter == nil {
		return
	}
	h.c.filter.Insert(PrefixFilterHash(prefix))
}

// NewInner publishes a fresh inner node: an 8-byte entry keyed by its full
// prefix goes into the owning memory node's hash table, and the local
// filter learns the prefix. Remote CNs learn it lazily during traversals
// (§IV Insert: "synchronization of caches on other CNs is deferred").
func (h hooks) NewInner(prefix []byte, n *rart.Node) error {
	entry := wire.HashEntry{Valid: true, FP: wire.FP12(prefix), Type: n.Hdr.Type, Addr: n.Addr}
	if err := h.c.viewFor(prefix).Insert(n.Hdr.PrefixHash, entry, h.c.eng.Alloc); err != nil {
		return err
	}
	if h.c.filter != nil {
		h.c.filter.Insert(PrefixFilterHash(prefix))
	}
	return nil
}

// TypeSwitched swaps the node's hash entry for the grown copy with one CAS
// (§IV Insert: "This update can be performed atomically using an RDMA CAS,
// as the client modifies only one 8-byte hash entry"). The full prefix —
// the entry's key — is unchanged, so no other state moves.
func (h hooks) TypeSwitched(prefix []byte, old, grown *rart.Node) error {
	fp := wire.FP12(prefix)
	oldE := wire.HashEntry{Valid: true, FP: fp, Type: old.Hdr.Type, Addr: old.Addr}
	newE := wire.HashEntry{Valid: true, FP: fp, Type: grown.Hdr.Type, Addr: grown.Addr}
	return h.c.viewFor(prefix).Replace(old.Hdr.PrefixHash, oldE, newE)
}

// noteRestart annotates an operation-level restart on the armed trace
// recorder; the fmt.Sprintf only runs while tracing.
func (c *Client) noteRestart(err error) {
	if c.rec != nil {
		c.rec.Note(fabric.StageNone, c.eng.C.Clock(), fmt.Sprintf("restart: %v", err))
	}
}

func (c *Client) checkKey(key []byte) error {
	if len(key) == 0 || len(key) > wire.MaxDepth {
		return fmt.Errorf("core: key length %d out of range [1,%d]", len(key), wire.MaxDepth)
	}
	return nil
}

// retriable reports whether an error is worth re-running the operation
// for: a lost structural race, or an injected fabric fault that a later
// attempt can outlive. Budget exhaustion and client crashes are terminal.
func retriable(err error) bool {
	return errors.Is(err, rart.ErrRestart) ||
		errors.Is(err, fabric.ErrTransient) ||
		errors.Is(err, fabric.ErrTimeout) ||
		errors.Is(err, fabric.ErrNodeDown)
}

// Search returns the value stored for key (paper §IV Search). Warm path:
// one hash-entry round trip, one inner-node round trip, one leaf round
// trip.
func (c *Client) Search(key []byte) ([]byte, bool, error) {
	if err := c.checkKey(key); err != nil {
		return nil, false, err
	}
	atomic.AddUint64(&c.stats.Searches, 1)
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var leaf *rart.Leaf
			leaf, err = c.eng.SearchFrom(start, key, hooks{c})
			if err == nil {
				if leaf == nil {
					return nil, false, nil
				}
				if !bytes.Equal(leaf.Key, key) {
					if cp := rart.CommonPrefixLen(leaf.Key, key); cp < startLen {
						// The start node was not on the key's path after
						// all: the filter fingerprint and the 42-bit prefix
						// hash both collided. Unlearn and retry with a
						// shorter prefix (paper §III-B's leaf-level
						// detection).
						c.noteCollision(key, startLen)
						maxLen = startLen - 1
						continue
					}
					return nil, false, nil
				}
				return leaf.Value, true, nil
			}
		}
		if !retriable(err) {
			return nil, false, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		// maxLen stays narrowed: a retriable fabric fault says nothing
		// about the collided prefix, and SawNode re-learns it into the
		// filter during descents, so widening here would re-detect the
		// same collision on every retry (§III-B narrowing must survive
		// restarts).
		if !bo.Wait() {
			return nil, false, exhausted("search", key, last)
		}
	}
}

func (c *Client) noteCollision(key []byte, startLen int) {
	atomic.AddUint64(&c.stats.CollisionRetry, 1)
	if c.filter != nil {
		c.filter.Delete(PrefixFilterHash(key[:startLen]))
	}
	if c.rec != nil {
		c.rec.Note(fabric.StageFilterProbe, c.eng.C.Clock(),
			fmt.Sprintf("prefix collision at %d: unlearned, narrowing to %d", startLen, startLen-1))
	}
}

// Insert stores value for key, overwriting any existing value (paper §IV
// Insert). It reports whether the key already existed. Counters track
// validated operations only, so malformed arguments do not skew per-op
// metrics (same policy as Scan).
func (c *Client) Insert(key, value []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Inserts, 1)
	return c.put(key, value, rart.PutUpsert)
}

// Update overwrites an existing key's value (paper §IV Update: in place
// when the new value fits the leaf, out of place otherwise). It reports
// whether the key was present.
func (c *Client) Update(key, value []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Updates, 1)
	return c.put(key, value, rart.PutUpdateOnly)
}

func (c *Client) put(key, value []byte, mode rart.PutMode) (bool, error) {
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var existed bool
			existed, err = c.eng.PutFrom(start, key, value, mode, hooks{c})
			switch {
			case errors.Is(err, rart.ErrNeedParent) && startLen > 0:
				// A split is needed at or above the jump target. This is a
				// deterministic structural condition, not contention: re-route
				// immediately through a path that knows the parent, without
				// consuming retry budget or injecting backoff sleep.
				atomic.AddUint64(&c.stats.ParentRetries, 1)
				if c.rec != nil {
					c.rec.Note(fabric.StagePublish, c.eng.C.Clock(),
						fmt.Sprintf("need parent: re-routing via prefix %d, no backoff", startLen-1))
				}
				maxLen = startLen - 1
				continue
			case retriable(err) || errors.Is(err, rart.ErrNeedParent):
				atomic.AddUint64(&c.stats.Restarts, 1)
				c.noteRestart(err)
				maxLen = len(key)
			case err != nil:
				return false, err
			default:
				return existed, nil
			}
		} else if retriable(err) {
			atomic.AddUint64(&c.stats.Restarts, 1)
			c.noteRestart(err)
			maxLen = len(key)
		} else {
			return false, err
		}
		last = err
		if !bo.Wait() {
			return false, exhausted("put", key, last)
		}
	}
}

// Delete removes key (paper §IV Delete), reporting whether it was present.
func (c *Client) Delete(key []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Deletes, 1)
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var ok bool
			ok, err = c.eng.DeleteFrom(start, key, hooks{c})
			if err == nil && !ok && startLen > 0 {
				// The jump may have landed beside the key (hash collision):
				// deletes must not report absence on a collided path, so
				// confirm through a shallower start once. A confirm error
				// flows into the shared retry machinery below — a transient
				// fault here must restart the operation, never turn into a
				// fabricated "absent" answer.
				var leafCheck *rart.Leaf
				leafCheck, err = c.eng.SearchFrom(start, key, hooks{c})
				if err == nil && leafCheck != nil && !bytes.Equal(leafCheck.Key, key) {
					if cp := rart.CommonPrefixLen(leafCheck.Key, key); cp < startLen {
						c.noteCollision(key, startLen)
						maxLen = startLen - 1
						continue
					}
				}
			}
			if err == nil {
				return ok, nil
			}
		}
		if !retriable(err) {
			return false, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		maxLen = len(key)
		if !bo.Wait() {
			return false, exhausted("delete", key, last)
		}
	}
}

// Scan returns up to limit key-value pairs in [lo, hi], ascending (paper
// §IV Scan: root-anchored traversal with doorbell-batched node and leaf
// reads). A nil or empty bound means unbounded on that side; limit 0 means
// unlimited. Malformed arguments fail with ErrInvalidScan before any round
// trip is paid.
func (c *Client) Scan(lo, hi []byte, limit int) ([]rart.KV, error) {
	if len(lo) == 0 {
		lo = nil
	}
	if len(hi) == 0 {
		hi = nil
	}
	if limit < 0 {
		return nil, fmt.Errorf("%w: negative limit %d", ErrInvalidScan, limit)
	}
	if lo != nil && hi != nil && bytes.Compare(lo, hi) > 0 {
		return nil, fmt.Errorf("%w: lo %q > hi %q", ErrInvalidScan, lo, hi)
	}
	// Counted after validation: rejected calls pay no round trip and must
	// not inflate per-op metrics.
	atomic.AddUint64(&c.stats.Scans, 1)
	var last error
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		if err == nil {
			var kvs []rart.KV
			kvs, err = c.eng.ScanFrom(root, lo, hi, limit, true)
			if err == nil {
				return kvs, nil
			}
		}
		if !retriable(err) {
			return nil, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		if !bo.Wait() {
			return nil, exhausted("scan", lo, last)
		}
	}
}
