package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"sphinx/internal/fabric"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/wire"
)

// hooks wires tree events into Sphinx's side structures: descent
// discoveries feed the filter cache; structural changes maintain the inner
// node hash table (paper §IV).
type hooks struct{ c *Client }

// SawNode learns every prefix encountered during a descent into the filter
// cache ("the client updates the succinct filter cache for any prefixes
// not present in the cache", §IV Search).
func (h hooks) SawNode(prefix []byte, n *rart.Node) {
	if len(prefix) == 0 || h.c.filter == nil {
		return
	}
	h.c.filter.Insert(PrefixFilterHash(prefix))
}

// NewInner publishes a fresh inner node: an 8-byte entry keyed by its full
// prefix goes into the owning memory node's hash table, and the local
// filter learns the prefix. Remote CNs learn it lazily during traversals
// (§IV Insert: "synchronization of caches on other CNs is deferred").
func (h hooks) NewInner(prefix []byte, n *rart.Node) error {
	entry := wire.HashEntry{Valid: true, FP: wire.FP12(prefix), Type: n.Hdr.Type, Addr: n.Addr}
	if err := h.c.viewFor(prefix).Insert(n.Hdr.PrefixHash, entry, h.c.eng.Alloc); err != nil {
		return err
	}
	if h.c.filter != nil {
		h.c.filter.Insert(PrefixFilterHash(prefix))
	}
	return nil
}

// TypeSwitched swaps the node's hash entry for the grown copy with one CAS
// (§IV Insert: "This update can be performed atomically using an RDMA CAS,
// as the client modifies only one 8-byte hash entry"). The full prefix —
// the entry's key — is unchanged, so no other state moves.
//
// During a membership transition the old entry may still live in the
// PREVIOUS epoch's table (the migrator has not moved this prefix yet), so
// the hook locates the holding table first: held by the current table →
// plain Replace; held by the previous one → Insert into the current table,
// then retire the old entry (in that order, so a concurrent locate always
// finds at least one of the two). The caller holds the node's lease, which
// serializes all entry movement for this prefix. The migrator's node-copy
// publication reuses this hook verbatim.
func (h hooks) TypeSwitched(prefix []byte, old, grown *rart.Node) error {
	c := h.c
	fp := wire.FP12(prefix)
	oldE := wire.HashEntry{Valid: true, FP: fp, Type: old.Hdr.Type, Addr: old.Addr}
	newE := wire.HashEntry{Valid: true, FP: fp, Type: grown.Hdr.Type, Addr: grown.Addr}
	h42 := old.Hdr.PrefixHash
	p := c.members.Current()
	cur := c.viewOf(c.placeIn(p, prefix))
	prev := c.prevViewFor(p, prefix)
	if prev == nil {
		return cur.Replace(h42, oldE, newE)
	}
	if held, err := viewHolds(cur, h42, fp, oldE); err != nil {
		return err
	} else if held {
		return cur.Replace(h42, oldE, newE)
	}
	if held, err := viewHolds(prev, h42, fp, oldE); err != nil {
		return err
	} else if held {
		if err := cur.Insert(h42, newE, c.eng.Alloc); err != nil {
			return err
		}
		return prev.Remove(h42, oldE)
	}
	// Neither table holds the entry yet: an in-flight publication into the
	// current table (Insert CAS between our lookups). Replace spin-waits
	// for it to land.
	return cur.Replace(h42, oldE, newE)
}

// viewHolds reports whether a table currently holds exactly this entry.
func viewHolds(v *racehash.View, h42 uint64, fp uint16, e wire.HashEntry) (bool, error) {
	cands, err := v.Lookup(h42, fp)
	if err != nil {
		return false, err
	}
	for _, cand := range cands {
		if cand.Entry == e {
			return true, nil
		}
	}
	return false, nil
}

// noteRestart annotates an operation-level restart on the armed trace
// recorder; the fmt.Sprintf only runs while tracing.
func (c *Client) noteRestart(err error) {
	if c.rec != nil {
		c.rec.Note(fabric.StageNone, c.eng.C.Clock(), fmt.Sprintf("restart: %v", err))
	}
}

func (c *Client) checkKey(key []byte) error {
	if len(key) == 0 || len(key) > wire.MaxDepth {
		return fmt.Errorf("core: key length %d out of range [1,%d]", len(key), wire.MaxDepth)
	}
	return nil
}

// retriable reports whether an error is worth re-running the operation
// for: a lost structural race, or an injected fabric fault that a later
// attempt can outlive. Budget exhaustion and client crashes are terminal.
func retriable(err error) bool {
	return errors.Is(err, rart.ErrRestart) ||
		errors.Is(err, fabric.ErrTransient) ||
		errors.Is(err, fabric.ErrTimeout) ||
		errors.Is(err, fabric.ErrNodeDown)
}

// Search returns the value stored for key (paper §IV Search). Warm path:
// one hash-entry round trip, one inner-node round trip, one leaf round
// trip.
func (c *Client) Search(key []byte) ([]byte, bool, error) {
	if err := c.checkKey(key); err != nil {
		return nil, false, err
	}
	atomic.AddUint64(&c.stats.Searches, 1)
	if c.degraded() {
		// A node is permanently lost, so the tree is not authoritative:
		// degraded writes land only in the anchor store, while a tree read
		// may still succeed on a stale leaf via a path that happens to
		// avoid the dead node. Serve from the replicated anchors — for any
		// acked key a healthy replica exists by the placement invariant.
		atomic.AddUint64(&c.stats.Failovers, 1)
		return c.anchorGet(key)
	}
	// Hottest path: a key promoted into replicated placement serves from a
	// contention-chosen replica record in one verified round trip (see
	// hotreplica.go). A refute or abort falls through with a fresh budget,
	// like the speculative path below.
	if val, served := c.hotGet(key); served {
		c.hotTouch(key, len(val), false)
		return val, true, nil
	}
	// Speculative fast path: if the leaf-address cache has an opinion, one
	// doorbell read against the cached address, verified in place. A refuted
	// or aborted speculation falls through to the 3-RT hash path below with
	// a FRESH backoff — the fallback is a routing decision, not contention,
	// so it consumes no retry budget and injects no sleep (same contract as
	// the ErrNeedParent re-route in put).
	if val, served := c.specGet(key); served {
		c.hotTouch(key, len(val), false)
		return val, true, nil
	}
	// The authoritative walk below probes the filter inside locate, which
	// records the SFC hotness observation into sfcWasHot for hotTouch.
	c.sfcWasHot = false
	val, ok, err := c.searchTree(key)
	if err == nil && ok {
		c.hotTouch(key, len(val), c.sfcWasHot)
	}
	return val, ok, err
}

// searchTree is the authoritative read: locate (filter-guided jump) plus
// the tree walk, with collision narrowing, failover and retry. Factored
// out of Search so hot promotion can fetch an authoritative value without
// recursing through the fast paths or the operation counters.
func (c *Client) searchTree(key []byte) ([]byte, bool, error) {
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var leaf *rart.Leaf
			leaf, err = c.eng.SearchFrom(start, key, hooks{c})
			if err == nil {
				if leaf == nil {
					return c.searchAbsent(key)
				}
				if !bytes.Equal(leaf.Key, key) {
					if cp := rart.CommonPrefixLen(leaf.Key, key); cp < startLen {
						// The start node was not on the key's path after
						// all: the filter fingerprint and the 42-bit prefix
						// hash both collided. Unlearn and retry with a
						// shorter prefix (paper §III-B's leaf-level
						// detection).
						c.noteCollision(key, startLen)
						maxLen = startLen - 1
						continue
					}
					return c.searchAbsent(key)
				}
				c.learn(key, leaf)
				return leaf.Value, true, nil
			}
		}
		if c.failoverable(err) {
			// The key's tree path crosses a lost node: answer from the
			// anchor replicas in one decision, no backoff (acked writes
			// reached every replica, so any survivor is authoritative).
			atomic.AddUint64(&c.stats.Failovers, 1)
			c.noteRestart(err)
			return c.anchorGet(key)
		}
		if !retriable(err) {
			return nil, false, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		// maxLen stays narrowed: a retriable fabric fault says nothing
		// about the collided prefix, and SawNode re-learns it into the
		// filter during descents, so widening here would re-detect the
		// same collision on every retry (§III-B narrowing must survive
		// restarts).
		if !bo.Wait() {
			return nil, false, exhausted("search", key, last)
		}
	}
}

// specGet attempts the speculative 1-RT fast path (trust-but-verify, the
// SFC's shape applied to the whole traversal): read the leaf at the cached
// address in one round trip and verify the image in place — checksum (the
// read decoded), status word (Idle), and the full key the leaf stores.
// Only a positive, verified hit is served; a mismatched leaf proves
// nothing about absence, so misses always take the authoritative path.
//
//   - Verified hit: value served, one round trip total.
//   - Refuted (Invalid status, wrong key, or the address is on a lost
//     node): the entry is unlearned and the caller falls back.
//   - Aborted (torn or locked image, transient fabric error): nothing is
//     provable either way; the entry survives — an in-flight writer's
//     in-place update keeps the address valid.
//
// Never called in degraded mode: degraded writes land anchor-only, so a
// cached tree address could serve a stale value with a clean checksum.
// Search's degraded() check precedes this call.
func (c *Client) specGet(key []byte) ([]byte, bool) {
	if c.lac == nil {
		return nil, false
	}
	addr, units, ok := c.lac.Lookup(key)
	if !ok {
		atomic.AddUint64(&c.stats.SpecMisses, 1)
		return nil, false
	}
	leaf, err := c.eng.SpecReadLeaf(addr, units)
	if err != nil {
		if errors.Is(err, fabric.ErrNodeKilled) || errors.Is(err, fabric.ErrBreakerOpen) {
			// The cached address points into permanently lost memory.
			c.lac.Unlearn(key)
			atomic.AddUint64(&c.stats.SpecRefutes, 1)
			c.noteSpec(key, "lac refuted: node lost, unlearned")
		} else {
			atomic.AddUint64(&c.stats.SpecAborts, 1)
			c.noteSpec(key, "lac aborted: fabric error, entry kept")
		}
		return nil, false
	}
	if leaf == nil {
		// Torn or locked image: an in-flight single-WRITE updater. The
		// address is still the key's leaf, so keep the entry.
		atomic.AddUint64(&c.stats.SpecAborts, 1)
		c.noteSpec(key, "lac aborted: leaf unstable, entry kept")
		return nil, false
	}
	if leaf.Status != wire.StatusIdle || !bytes.Equal(leaf.Key, key) {
		c.lac.Unlearn(key)
		atomic.AddUint64(&c.stats.SpecRefutes, 1)
		c.noteSpec(key, "lac refuted: verification failed, unlearned")
		return nil, false
	}
	atomic.AddUint64(&c.stats.SpecHits, 1)
	c.noteSpec(key, "lac hit: leaf verified in one round trip")
	return leaf.Value, true
}

// learn records a verified (key → leaf) binding in the leaf-address cache
// after a successful authoritative traversal.
func (c *Client) learn(key []byte, leaf *rart.Leaf) {
	if c.lac == nil || leaf.Units == 0 {
		return
	}
	c.lac.Learn(key, leaf.Addr, leaf.Units)
}

// noteSpec annotates a speculative fast-path decision on the armed trace
// recorder; the fmt.Sprintf only runs while tracing.
func (c *Client) noteSpec(key []byte, msg string) {
	if c.rec != nil {
		c.rec.Note(fabric.StageLeafSpec, c.eng.C.Clock(), msg)
	}
}

// searchAbsent finalizes a tree search that found nothing. In degraded
// mode (a node permanently lost) absence in the tree is not authoritative:
// degraded writes land only in the anchors, so confirm there.
func (c *Client) searchAbsent(key []byte) ([]byte, bool, error) {
	if !c.degraded() {
		return nil, false, nil
	}
	atomic.AddUint64(&c.stats.AnchorConfirms, 1)
	return c.anchorGet(key)
}

func (c *Client) noteCollision(key []byte, startLen int) {
	atomic.AddUint64(&c.stats.CollisionRetry, 1)
	if c.filter != nil {
		c.filter.Delete(PrefixFilterHash(key[:startLen]))
	}
	if c.rec != nil {
		c.rec.Note(fabric.StageFilterProbe, c.eng.C.Clock(),
			fmt.Sprintf("prefix collision at %d: unlearned, narrowing to %d", startLen, startLen-1))
	}
}

// Insert stores value for key, overwriting any existing value (paper §IV
// Insert). It reports whether the key already existed. Counters track
// validated operations only, so malformed arguments do not skew per-op
// metrics (same policy as Scan).
func (c *Client) Insert(key, value []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Inserts, 1)
	return c.put(key, value, rart.PutUpsert)
}

// Update overwrites an existing key's value (paper §IV Update: in place
// when the new value fits the leaf, out of place otherwise). It reports
// whether the key was present.
func (c *Client) Update(key, value []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Updates, 1)
	return c.put(key, value, rart.PutUpdateOnly)
}

func (c *Client) put(key, value []byte, mode rart.PutMode) (bool, error) {
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var existed bool
			existed, err = c.eng.PutFrom(start, key, value, mode, hooks{c})
			switch {
			case errors.Is(err, rart.ErrNeedParent) && startLen > 0:
				// A split is needed at or above the jump target. This is a
				// deterministic structural condition, not contention: re-route
				// immediately through a path that knows the parent, without
				// consuming retry budget or injecting backoff sleep.
				atomic.AddUint64(&c.stats.ParentRetries, 1)
				if c.rec != nil {
					c.rec.Note(fabric.StagePublish, c.eng.C.Clock(),
						fmt.Sprintf("need parent: re-routing via prefix %d, no backoff", startLen-1))
				}
				maxLen = startLen - 1
				continue
			case c.failoverable(err):
				return c.degradedPut(key, value, mode)
			case retriable(err) || errors.Is(err, rart.ErrNeedParent):
				atomic.AddUint64(&c.stats.Restarts, 1)
				c.noteRestart(err)
				maxLen = len(key)
			case err != nil:
				return false, err
			default:
				// Publish-to-completion to the replica set before the write
				// is acknowledged: from here on, losing any single replica
				// cannot lose this write. An update-only miss wrote nothing
				// to the tree, so nothing is published either — except in
				// degraded mode, where the key may live only in the anchors.
				if c.shared.FT != nil && (mode == rart.PutUpsert || existed || c.degraded()) {
					anchorExisted, aerr := c.anchorUpsert(key, value)
					if aerr != nil {
						return false, aerr
					}
					existed = existed || anchorExisted
				}
				// Same publish-to-completion contract for the hot replica
				// records: a promoted key's replicas carry this write (LWW)
				// before it is acknowledged, so no reader can verify a hit
				// on the superseded value afterwards.
				if c.hotEnabled() && (mode == rart.PutUpsert || existed) {
					if herr := c.hotRefresh(key, value); herr != nil {
						return false, herr
					}
				}
				return existed, nil
			}
		} else if c.failoverable(err) {
			return c.degradedPut(key, value, mode)
		} else if retriable(err) {
			atomic.AddUint64(&c.stats.Restarts, 1)
			c.noteRestart(err)
			maxLen = len(key)
		} else {
			return false, err
		}
		last = err
		if !bo.Wait() {
			return false, exhausted("put", key, last)
		}
	}
}

// degradedPut serves a write whose tree path crosses a permanently lost
// node: the value goes to the anchor replicas only, acknowledged once the
// reachable replica set holds it. Update-only semantics are preserved by
// checking anchor presence first — an absent key stays absent. The tree
// copy is reconstructed offline (tree rebuild is future work; degraded
// reads are served from the anchors, so the gap is invisible).
func (c *Client) degradedPut(key, value []byte, mode rart.PutMode) (bool, error) {
	atomic.AddUint64(&c.stats.DegradedPuts, 1)
	if mode == rart.PutUpdateOnly {
		if _, ok, err := c.anchorGet(key); err != nil {
			return false, err
		} else if !ok {
			return false, nil
		}
	}
	return c.anchorUpsert(key, value)
}

// Delete removes key (paper §IV Delete), reporting whether it was present.
func (c *Client) Delete(key []byte) (bool, error) {
	if err := c.checkKey(key); err != nil {
		return false, err
	}
	atomic.AddUint64(&c.stats.Deletes, 1)
	maxLen := len(key)
	var last error
	for bo := c.eng.Backoff(); ; {
		start, startLen, err := c.locate(key, maxLen)
		if err == nil {
			var ok bool
			ok, err = c.eng.DeleteFrom(start, key, hooks{c})
			if err == nil && !ok && startLen > 0 {
				// The jump may have landed beside the key (hash collision):
				// deletes must not report absence on a collided path, so
				// confirm through a shallower start once. A confirm error
				// flows into the shared retry machinery below — a transient
				// fault here must restart the operation, never turn into a
				// fabricated "absent" answer.
				var leafCheck *rart.Leaf
				leafCheck, err = c.eng.SearchFrom(start, key, hooks{c})
				if err == nil && leafCheck != nil && !bytes.Equal(leafCheck.Key, key) {
					if cp := rart.CommonPrefixLen(leafCheck.Key, key); cp < startLen {
						c.noteCollision(key, startLen)
						maxLen = startLen - 1
						continue
					}
				}
			}
			if err == nil {
				if c.shared.FT != nil {
					// Remove the anchors before acknowledging, mirroring the
					// put path's publish-to-completion.
					anchorPresent, aerr := c.anchorRemove(key)
					if aerr != nil {
						return false, aerr
					}
					ok = ok || anchorPresent
				}
				// Hot replica records go before the ack too: a reader must
				// not verify a hit on a key whose delete was acknowledged.
				if c.hotEnabled() {
					if herr := c.hotRemove(key, true); herr != nil {
						return false, herr
					}
				}
				return ok, nil
			}
		}
		if c.failoverable(err) {
			// Tree path lost: delete the anchors only; presence is judged
			// from them (acked writes reached every replica).
			atomic.AddUint64(&c.stats.DegradedPuts, 1)
			c.noteRestart(err)
			return c.anchorRemove(key)
		}
		if !retriable(err) {
			return false, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		maxLen = len(key)
		if !bo.Wait() {
			return false, exhausted("delete", key, last)
		}
	}
}

// Scan returns up to limit key-value pairs in [lo, hi], ascending (paper
// §IV Scan: root-anchored traversal with doorbell-batched node and leaf
// reads). A nil or empty bound means unbounded on that side; limit 0 means
// unlimited. Malformed arguments fail with ErrInvalidScan before any round
// trip is paid.
func (c *Client) Scan(lo, hi []byte, limit int) ([]rart.KV, error) {
	if len(lo) == 0 {
		lo = nil
	}
	if len(hi) == 0 {
		hi = nil
	}
	if limit < 0 {
		return nil, fmt.Errorf("%w: negative limit %d", ErrInvalidScan, limit)
	}
	if lo != nil && hi != nil && bytes.Compare(lo, hi) > 0 {
		return nil, fmt.Errorf("%w: lo %q > hi %q", ErrInvalidScan, lo, hi)
	}
	// Counted after validation: rejected calls pay no round trip and must
	// not inflate per-op metrics.
	atomic.AddUint64(&c.stats.Scans, 1)
	if c.degraded() {
		// Degraded writes live only in the unordered anchor store, so a
		// tree traversal — even one that avoids the dead node — could
		// return stale values. Scans fail fast rather than lie; point
		// reads keep full coverage via the anchors.
		return nil, fmt.Errorf("%w: scan %q..%q while a memory node is lost (tree not authoritative)",
			ErrReplicaSetUnavailable, lo, hi)
	}
	var last error
	for bo := c.eng.Backoff(); ; {
		root, err := c.readRoot()
		if err == nil {
			var kvs []rart.KV
			kvs, err = c.eng.ScanFrom(root, lo, hi, limit, true)
			if err == nil {
				return kvs, nil
			}
		}
		if errors.Is(err, fabric.ErrNodeKilled) || errors.Is(err, fabric.ErrBreakerOpen) {
			// The traversal crossed a permanently lost (or breaker-
			// rejected) node. Anchors are unordered, so scans cannot fail
			// over to them; fail fast with a typed error instead of
			// sleeping out the backoff budget. Post-loss scans regain full
			// coverage only after a tree rebuild (future work).
			return nil, fmt.Errorf("%w: scan range %q..%q crosses a lost node (%v)",
				ErrReplicaSetUnavailable, lo, hi, err)
		}
		if !retriable(err) {
			return nil, err
		}
		atomic.AddUint64(&c.stats.Restarts, 1)
		c.noteRestart(err)
		last = err
		if !bo.Wait() {
			return nil, exhausted("scan", lo, last)
		}
	}
}
