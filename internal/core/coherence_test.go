package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sphinx/internal/fabric"
)

// TestReadMonotonicity is a linearizability-lite check on the coherence
// protocols: one writer per key bumps a version number with in-place
// updates; concurrent readers on other clients must never observe a key's
// version move backwards. A stale filter entry, a resurrected leaf, or a
// mis-ordered pointer swing would all surface as time travel here.
func TestReadMonotonicity(t *testing.T) {
	f, shared := newCluster(t, 2, fabric.DefaultConfig(), 1000)
	const keys = 6
	const versionsPerKey = 400

	setup := newTestClient(f, shared, Options{})
	val := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return b
	}
	for k := 0; k < keys; k++ {
		if _, err := setup.Insert([]byte(fmt.Sprintf("mono-%d", k)), val(0)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, keys+4)

	// One writer per key: strictly increasing versions.
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(k + 1)})
			key := []byte(fmt.Sprintf("mono-%d", k))
			for v := uint64(1); v <= versionsPerKey; v++ {
				if _, err := c.Update(key, val(v)); err != nil {
					errs <- fmt.Errorf("writer %d v%d: %w", k, v, err)
					return
				}
			}
		}(k)
	}
	// Readers: per-key high-water marks must never regress.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Seed: uint64(100 + r)})
			high := make([]uint64, keys)
			for i := 0; !stop.Load(); i++ {
				k := i % keys
				key := []byte(fmt.Sprintf("mono-%d", k))
				b, ok, err := c.Search(key)
				if err != nil || !ok || len(b) != 8 {
					errs <- fmt.Errorf("reader %d key %d: ok=%v len=%d err=%v", r, k, ok, len(b), err)
					return
				}
				v := binary.BigEndian.Uint64(b)
				if v < high[k] {
					errs <- fmt.Errorf("reader %d: key %d went backwards %d → %d", r, k, high[k], v)
					return
				}
				high[k] = v
			}
		}(r)
	}

	// Stop readers once writers are done.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	writerWait := sync.WaitGroup{}
	writerWait.Add(1)
	go func() {
		defer writerWait.Done()
		// Poll until all writers finished: final values reach max version.
		c := newTestClient(f, shared, Options{Seed: 999})
		for {
			allDone := true
			for k := 0; k < keys; k++ {
				b, ok, err := c.Search([]byte(fmt.Sprintf("mono-%d", k)))
				if err != nil || !ok {
					allDone = false
					break
				}
				if binary.BigEndian.Uint64(b) < versionsPerKey {
					allDone = false
					break
				}
			}
			if allDone {
				stop.Store(true)
				return
			}
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
		}
	}()
	<-done
	writerWait.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
