package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/wire"
)

// The hotreplica suite pins the hot-spot tolerance contract (DESIGN.md
// §5.13): a promoted key serves warm Gets from a replica record in one
// verified round trip; writes republish or remove every replica before
// acknowledging, so a route to a superseded record is always refuted and
// re-routed, never served; and under concurrent promote/demote/write
// churn no Get ever returns a value older than the last acknowledged
// write for its key.

// newHotCluster is newCluster plus the hot-replication layer at factor r.
func newHotCluster(t *testing.T, mns int, cfg fabric.Config, r int) (*fabric.Fabric, Shared) {
	t.Helper()
	f, shared := newCluster(t, mns, cfg, 1000)
	if err := BootstrapHot(f, &shared, 256, r); err != nil {
		t.Fatal(err)
	}
	return f, shared
}

// eagerHotSet builds a tracker that promotes on the n-th observation and
// effectively never decays or demotes, so tests control promotion timing
// exactly.
func eagerHotSet(r int, promoteAt uint32) *HotSet {
	hs := NewHotSet(0, 7, r)
	hs.SetThresholds(promoteAt, 1, 1<<40)
	return hs
}

func TestHotPromoteAndServe(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	key, val := []byte("popular-key"), []byte("v1")
	if _, err := c.Insert(key, val); err != nil {
		t.Fatal(err)
	}
	// Drive Searches until the tracker promotes (threshold 3). The
	// speculative leaf cache serves some of these; all of them feed the
	// tracker.
	for i := 0; i < 8 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, key, val)
	}
	st := c.Stats()
	if st.HotPromotes != 1 {
		t.Fatalf("HotPromotes = %d after warm searches, want 1", st.HotPromotes)
	}
	// Promoted: the next Search must be ONE round trip served by the hot
	// path, ahead of the leaf-address cache.
	rt0 := c.eng.C.Stats().RoundTrips
	warmSearch(t, c, key, val)
	if rt := c.eng.C.Stats().RoundTrips - rt0; rt != 1 {
		t.Errorf("promoted Search took %d round trips, want 1", rt)
	}
	if got := c.Stats().HotHits; got != st.HotHits+1 {
		t.Errorf("HotHits = %d, want %d", got, st.HotHits+1)
	}
	// Every replica rank learned a route (R targets on 3 nodes).
	routed := 0
	for i := 0; i < hs.Ranks(); i++ {
		if _, _, ok := hs.Rank(i).Lookup(key); ok {
			routed++
		}
	}
	if routed != 3 {
		t.Errorf("routes learned on %d ranks, want 3", routed)
	}
}

func TestHotWriteRefreshesReplicas(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	key := []byte("popular-key")
	if _, err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, key, []byte("v1"))
	}
	if c.Stats().HotPromotes == 0 {
		t.Fatal("key did not promote")
	}
	// The write must republish the replicas before acking…
	if _, err := c.Update(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().HotRefreshes; got != 1 {
		t.Errorf("HotRefreshes = %d after update, want 1", got)
	}
	// …so the very next hot-path read serves the NEW value, still in one
	// round trip, with no refutation.
	st := c.Stats()
	rt0 := c.eng.C.Stats().RoundTrips
	warmSearch(t, c, key, []byte("v2"))
	if rt := c.eng.C.Stats().RoundTrips - rt0; rt != 1 {
		t.Errorf("post-update hot Search took %d round trips, want 1", rt)
	}
	if got := c.Stats(); got.HotHits != st.HotHits+1 || got.HotRefutes != st.HotRefutes {
		t.Errorf("post-update hot read: hits %d→%d refutes %d→%d; want one clean hit",
			st.HotHits, got.HotHits, st.HotRefutes, got.HotRefutes)
	}
}

func TestHotDeleteRemovesReplicas(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	key := []byte("popular-key")
	if _, err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, key, []byte("v1"))
	}
	if ok, err := c.Delete(key); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	// The routes still point at the removed records: the next Search must
	// refute them all and answer absent — never the deleted value.
	v, ok, err := c.Search(key)
	if err != nil || ok {
		t.Fatalf("Search(deleted) = %q, %v, %v; want absent", v, ok, err)
	}
	if c.Stats().HotHits != 0 {
		t.Errorf("HotHits = %d after delete, want 0", c.Stats().HotHits)
	}
}

// TestHotStaleRouteRefutedNoBackoff pins the trust-but-verify contract
// at the record level: a route left pointing at a retired record image
// costs one refuted round trip and falls back with no backoff sleep and
// no retry budget, mirroring the leaf-address-cache contract.
func TestHotStaleRouteRefutedNoBackoff(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	key := []byte("popular-key")
	if _, err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, key, []byte("v1"))
	}
	// Retire every replica record behind the tracker's back, leaving the
	// route caches stale (the shape a lost write-refresh race would have
	// if the protocol allowed one).
	for i := 0; i < hs.Ranks(); i++ {
		if addr, _, ok := hs.Rank(i).Lookup(key); ok {
			if err := c.retireRecord(addr, key); err != nil {
				t.Fatal(err)
			}
		}
	}
	clock0 := c.eng.C.Clock()
	st0 := c.Stats()
	warmSearch(t, c, key, []byte("v1")) // authoritative fallback still serves
	if dt := c.eng.C.Clock() - clock0; dt != 0 {
		t.Errorf("refuted hot reads slept %d ps of backoff; want 0", dt)
	}
	st := c.Stats()
	if st.Restarts != st0.Restarts {
		t.Errorf("refuted hot reads consumed %d retry budget; want 0", st.Restarts-st0.Restarts)
	}
	if st.HotRefutes == st0.HotRefutes {
		t.Error("no HotRefutes counted for retired records")
	}
	if st.HotHits != st0.HotHits {
		t.Errorf("retired record served as a hit (%d→%d)", st0.HotHits, st.HotHits)
	}
}

// TestHotReadReconciled pins the accounting identity the bench verdict
// relies on: every StageHotRead round trip is a hit or a refutation
// (aborts are zero without fault injection), so the hot fast path's RTs
// reconcile exactly.
func TestHotReadReconciled(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.DefaultConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	obsv := newStageCounter()
	c.eng.C.SetObserver(obsv)
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		if _, err := c.Insert(keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 12; round++ {
		for _, k := range keys {
			warmSearch(t, c, k, []byte("v"))
		}
		if round == 6 {
			for _, k := range keys {
				if _, err := c.Update(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	st := c.Stats()
	if st.HotHits == 0 {
		t.Fatal("workload never hit the hot path; test is vacuous")
	}
	hotRTs := obsv.rts(fabric.StageHotRead)
	if hotRTs != st.HotHits+st.HotRefutes || st.HotAborts != 0 {
		t.Errorf("hot reconciliation: %d StageHotRead RTs != %d hits + %d refutes (aborts %d)",
			hotRTs, st.HotHits, st.HotRefutes, st.HotAborts)
	}
}

// stageCounter tallies round trips per stage from batch events.
type stageCounter struct {
	mu  sync.Mutex
	rtm map[fabric.Stage]uint64
}

func newStageCounter() *stageCounter {
	return &stageCounter{rtm: make(map[fabric.Stage]uint64)}
}

func (s *stageCounter) ObserveBatch(ev fabric.BatchEvent) {
	s.mu.Lock()
	s.rtm[ev.Stage] += uint64(ev.RoundTrips)
	s.mu.Unlock()
}

func (s *stageCounter) rts(st fabric.Stage) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rtm[st]
}

// TestHotChurn hammers a small hot keyspace with concurrent readers,
// writers and the promote/demote machinery, asserting the acknowledged-
// write floor: a Get that begins after write seq S was acknowledged for
// its key must never return a value older than S. Run with -race and
// -cpu 1,4,8 (CI's churn matrix) this doubles as the memory-model check
// for the CN-shared tracker and route caches.
func TestHotChurn(t *testing.T) {
	f, shared := newHotCluster(t, 4, fabric.InstantConfig(), 3)
	const (
		workers = 6
		keys    = 8
		opsEach = 400
	)
	// One CN: every worker client shares the tracker, filter and leaf
	// cache, exactly as sessions of one ComputeNode do. Aggressive
	// thresholds maximize promote/demote churn.
	hs := NewHotSet(0, 7, 3)
	hs.SetThresholds(4, 3, 512)
	filter := NewFilterCache(1<<12, 1)
	lac := NewLeafCache(1<<12, 1)
	setup := newTestClient(f, shared, Options{Hot: hs, Filter: filter, LeafCache: lac})

	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("hot-%02d", i)) }
	valOf := func(k int, seq uint64) []byte {
		v := make([]byte, 16)
		binary.LittleEndian.PutUint64(v, uint64(k))
		binary.LittleEndian.PutUint64(v[8:], seq)
		return v
	}
	// acked[k] is the highest sequence acknowledged for key k (0 = the
	// seeded value). Writers store AFTER the ack returns; readers load
	// BEFORE issuing the Get, so the floor is always conservative.
	var acked [keys]atomic.Uint64
	for k := 0; k < keys; k++ {
		if _, err := setup.Insert(keyOf(k), valOf(k, 0)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{Hot: hs, Filter: filter, LeafCache: lac})
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for i := 0; i < opsEach; i++ {
				k := int(next(keys))
				key := keyOf(k)
				// Writers own disjoint keys (worker w writes k ≡ w mod
				// workers), so per-key sequences are monotone; everyone
				// reads everything.
				if next(4) == 0 && k%workers == w {
					seq := acked[k].Load() + 1
					if _, err := c.Update(key, valOf(k, seq)); err != nil {
						errc <- fmt.Errorf("worker %d: update %q: %w", w, key, err)
						return
					}
					acked[k].Store(seq)
					continue
				}
				floor := acked[k].Load()
				v, ok, err := c.Search(key)
				if err != nil {
					errc <- fmt.Errorf("worker %d: search %q: %w", w, key, err)
					return
				}
				if !ok {
					errc <- fmt.Errorf("worker %d: %q absent; nothing deletes it", w, key)
					return
				}
				if len(v) != 16 || binary.LittleEndian.Uint64(v) != uint64(k) {
					errc <- fmt.Errorf("worker %d: %q returned foreign value %q", w, key, v)
					return
				}
				if got := binary.LittleEndian.Uint64(v[8:]); got < floor {
					errc <- fmt.Errorf("worker %d: %q returned seq %d older than acked floor %d",
						w, key, got, floor)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The churn must have exercised the machinery, or the floor assertion
	// proved nothing.
	st := setup.Stats()
	var total Stats
	total = total.Add(st)
	if hsSum := st.HotPromotes; hsSum == 0 {
		// Promotions may have happened on any worker client; sum is not
		// available here (clients are goroutine-local), so check the
		// cluster-wide published counter instead.
		if !shared.Hot.Published() {
			t.Error("churn never promoted a key; thresholds too high for the workload")
		}
	}
	_ = total
}

// TestHotDemoteTearsDown drives a promoted key cold and checks demotion
// removes its records and routes (a later Get takes the normal path and
// re-promotion still works).
func TestHotDemoteTearsDown(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := NewHotSet(0, 7, 3)
	// Demote at < 4, decay every 32 observations: a burst promotes, a
	// stream of other-key traffic decays it cold.
	hs.SetThresholds(6, 4, 32)
	c := newTestClient(f, shared, Options{Hot: hs})
	hot := []byte("hot-key")
	if _, err := c.Insert(hot, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, hot, []byte("v"))
	}
	if c.Stats().HotPromotes == 0 {
		t.Fatal("key did not promote")
	}
	// Cool it: hammer other keys so the epoch advances and the hot key's
	// count halves below the demotion threshold, then touch it once to
	// trigger the demotion decision.
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("cold-%03d", i))
		if _, err := c.Insert(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		warmSearch(t, c, k, []byte("x"))
	}
	for i := 0; i < 8 && c.Stats().HotDemotes == 0; i++ {
		warmSearch(t, c, hot, []byte("v"))
	}
	if c.Stats().HotDemotes == 0 {
		t.Fatal("cooled key never demoted")
	}
	// Routes are gone; the key still reads correctly via the normal path.
	if _, _, ok := hs.Rank(0).Lookup(hot); ok {
		// Rank 0 may have been re-learned by a re-promotion burst above;
		// only fail if the demotion count never moved.
		t.Log("rank-0 route present after demotion (re-promoted)")
	}
	warmSearch(t, c, hot, []byte("v"))
}

// TestHotDisabledIsInert checks the ablation lever: with DisableHot the
// client neither consults nor maintains the hot layer.
func TestHotDisabledIsInert(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	c := newTestClient(f, shared, Options{DisableHot: true})
	key := []byte("popular-key")
	if _, err := c.Insert(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		warmSearch(t, c, key, []byte("v"))
	}
	st := c.Stats()
	if st.HotPromotes != 0 || st.HotHits != 0 {
		t.Errorf("disabled hot layer moved: promotes %d hits %d", st.HotPromotes, st.HotHits)
	}
	if c.HotSet() != nil {
		t.Error("disabled client built a tracker")
	}
}

// TestHotPublishGateOpensBeforePlaceholders replays the first-promotion
// race single-threaded: once a promotion placeholder is discoverable,
// Published() must already be true, so a write committing between the
// placeholder publish and the promoter's final swap runs the replica
// refresh instead of skipping it — and the promoter's pre-write value
// then loses the LWW swap instead of sticking as a verified-servable
// stale record.
func TestHotPublishGateOpensBeforePlaceholders(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 1<<30) // never auto-promotes: phases run by hand
	c := newTestClient(f, shared, Options{Hot: hs})
	key := []byte("raced-key")
	if _, err := c.Insert(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if shared.Hot.Published() {
		t.Fatal("Published() true before any hot record exists")
	}
	// Promoter phase 1: placeholders become discoverable, versions drawn.
	targets, _ := c.hotTargets(key, false)
	if len(targets) == 0 {
		t.Fatal("no hot targets for key")
	}
	// hotTargets returns the client's scratch slice; the Update below
	// reuses it, so keep a private copy across the race.
	targets = append([]mem.NodeID(nil), targets...)
	v0 := c.nextHotVersion()
	if err := c.hotPlacehold(targets, key, v0); err != nil {
		t.Fatal(err)
	}
	if !shared.Hot.Published() {
		t.Fatal("Published() false with placeholders discoverable; a racing write would skip the replica refresh")
	}
	v1 := c.nextHotVersion()
	stale, ok, err := c.searchTree(key)
	if err != nil || !ok {
		t.Fatalf("authoritative read = %v, %v", ok, err)
	}
	// The racing write commits after the promoter's read, before its swap.
	if _, err := c.Update(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Promoter phase 2: swapping the pre-write value in at v1 must lose
	// on every target; whatever record is servable must hold v2.
	for _, tgt := range targets {
		addr, _, ok, err := c.hotSwapIn(tgt, key, stale, v1)
		if err != nil {
			t.Fatalf("hotSwapIn(node %d): %v", tgt, err)
		}
		if !ok {
			continue // nothing servable there: fine, never stale
		}
		st, k, v, _, err := c.readRecord(addr)
		if err != nil {
			t.Fatalf("readRecord(node %d): %v", tgt, err)
		}
		if st != wire.StatusIdle || !bytes.Equal(k, key) {
			t.Fatalf("node %d: servable record status=%v key=%q", tgt, st, k)
		}
		if !bytes.Equal(v, []byte("v2")) {
			t.Errorf("node %d: hot record serves %q after racing write, want %q", tgt, v, "v2")
		}
	}
}

// TestHotOversizedValueExcluded pins the size gate: a value whose record
// image exceeds the route cache's 8-bit unit field (~16 KiB) must never
// enter the hot layer — without the gate every promotion ended at
// routed=0, unclaimed, and was retried as soon as the sketch re-crossed
// the threshold, churning forever with no routable result.
func TestHotOversizedValueExcluded(t *testing.T) {
	f, shared := newHotCluster(t, 3, fabric.InstantConfig(), 3)
	hs := eagerHotSet(3, 3)
	c := newTestClient(f, shared, Options{Hot: hs})
	key := []byte("jumbo-key")
	// The hot record header (24 B) is larger than the leaf header (16 B),
	// so a narrow band of pairs fits a 255-unit tree leaf but not a hot
	// record image; this value puts key+value at the top of that band.
	big := make([]byte, 16304-len(key))
	for i := range big {
		big[i] = byte(i)
	}
	if hotRoutable(key, len(big)) {
		t.Fatal("test value unexpectedly routable; grow it")
	}
	if _, err := c.Insert(key, big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		warmSearch(t, c, key, big)
	}
	if got := c.Stats().HotPromotes; got != 0 {
		t.Errorf("HotPromotes = %d for unroutable value, want 0", got)
	}
	if shared.Hot.Published() {
		t.Error("unroutable key left discoverable hot records; the size gate failed")
	}
	if hs.Claimed(key) {
		t.Error("unroutable key holds a promotion claim; Observe saw an unroutable key")
	}
	// The gate is per-key, not a kill switch: a routable key on the same
	// client still promotes.
	small := []byte("small-key")
	if _, err := c.Insert(small, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && c.Stats().HotPromotes == 0; i++ {
		warmSearch(t, c, small, []byte("v"))
	}
	if got := c.Stats().HotPromotes; got != 1 {
		t.Errorf("HotPromotes = %d for routable key, want 1", got)
	}
}
