package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"sphinx/internal/consistenthash"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
)

// newReplicatedCluster is newCluster with the fault-tolerance layer
// bootstrapped (anchor tables, R=2 replication, breaker gating on).
func newReplicatedCluster(t *testing.T, mns int, cfg fabric.Config, expected int) (*fabric.Fabric, Shared) {
	t.Helper()
	f := fabric.New(cfg)
	nodes := make([]mem.NodeID, mns)
	for i := range nodes {
		nodes[i] = f.AddNode(256 << 20)
	}
	ring := consistenthash.New(nodes, 0)
	shared, err := BootstrapReplicated(f, ring, expected, DefaultReplication)
	if err != nil {
		t.Fatal(err)
	}
	return f, shared
}

// victimFor returns a node that owns at least one of the keys, so killing
// it actually severs tree paths.
func victimFor(shared Shared, keys [][]byte) mem.NodeID {
	for _, k := range keys {
		return shared.Ring.OwnerKey(k)
	}
	return shared.Ring.Nodes()[0]
}

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("failover-key-%04d", i))
	}
	return keys
}

// TestSearchFailoverNoBackoff is the retry-accounting satellite: with the
// breaker aware of the dead node, a read whose home died must fail over to
// a replica without consuming a single backoff sleep. Under InstantConfig
// every verb is free and gated rejects cost nothing, so any clock advance
// can only come from backoff sleeps — which the fail-fast path must not
// take.
func TestSearchFailoverNoBackoff(t *testing.T) {
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	keys := testKeys(64)
	for _, k := range keys {
		if _, err := c.Insert(k, append([]byte("val-"), k...)); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	victim := victimFor(shared, keys)
	f.KillNode(victim)
	// One discovery contact teaches the shared breaker about the death (a
	// dedicated client keeps the measured client's stats clean).
	probe := newTestClient(f, shared, Options{})
	probe.Search(keys[0])
	if f.Health().State(victim) != fabric.HealthDead {
		t.Fatalf("breaker did not learn the death")
	}

	clock0 := c.eng.C.Clock()
	served := 0
	for _, k := range keys {
		v, ok, err := c.Search(k)
		if err != nil {
			t.Fatalf("search %q after kill: %v", k, err)
		}
		if !ok || !bytes.Equal(v, append([]byte("val-"), k...)) {
			t.Fatalf("search %q after kill: ok=%v v=%q", k, ok, v)
		}
		served++
	}
	if dt := c.eng.C.Clock() - clock0; dt != 0 {
		t.Errorf("post-kill searches advanced the clock by %dps: backoff sleeps on the failover path", dt)
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Errorf("no failovers recorded across %d post-kill searches", served)
	}
	if st.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0 (failover must bypass the retry loop)", st.Restarts)
	}
}

// TestKilledClusterWritesSurvive: every acknowledged write before and
// after the kill must stay readable; degraded writes land anchor-only and
// are found via the degraded-absent confirmation path.
func TestKilledClusterWritesSurvive(t *testing.T) {
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	keys := testKeys(200)
	for i, k := range keys {
		if _, err := c.Insert(k, []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	victim := victimFor(shared, keys)
	f.KillNode(victim)

	// Post-kill writes: updates of old keys and brand-new inserts, all of
	// which must be acknowledged and durable.
	for i, k := range keys[:100] {
		if _, err := c.Insert(k, []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatalf("post-kill update %q: %v", k, err)
		}
	}
	fresh := make([][]byte, 50)
	for i := range fresh {
		fresh[i] = []byte(fmt.Sprintf("post-kill-key-%04d", i))
		if _, err := c.Insert(fresh[i], []byte(fmt.Sprintf("p-%d", i))); err != nil {
			t.Fatalf("post-kill insert %q: %v", fresh[i], err)
		}
	}

	for i, k := range keys {
		want := fmt.Sprintf("v0-%d", i)
		if i < 100 {
			want = fmt.Sprintf("v1-%d", i)
		}
		v, ok, err := c.Search(k)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("search %q: ok=%v v=%q err=%v (want %q)", k, ok, v, err, want)
		}
	}
	for i, k := range fresh {
		v, ok, err := c.Search(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("p-%d", i) {
			t.Fatalf("search fresh %q: ok=%v v=%q err=%v", k, ok, v, err)
		}
	}
	// Absent keys stay absent (the degraded confirm path must not
	// fabricate values).
	if _, ok, err := c.Search([]byte("never-written")); err != nil || ok {
		t.Errorf("absent key after kill: ok=%v err=%v", ok, err)
	}
}

// TestRepairConvergence: after a kill, sweeps re-replicate every surviving
// anchor onto a healthy successor and the deficit gauge reaches zero.
func TestRepairConvergence(t *testing.T) {
	f, shared := newReplicatedCluster(t, 4, fabric.InstantConfig(), 1000)
	c := newTestClient(f, shared, Options{})
	keys := testKeys(300)
	for i, k := range keys {
		if _, err := c.Insert(k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	victim := victimFor(shared, keys)
	f.KillNode(victim)
	// Teach the breaker (repair placement consults Health).
	newTestClient(f, shared, Options{}).Search(keys[0])

	repairer := newTestClient(f, shared, Options{})
	var rep RepairReport
	converged := false
	for sweep := 0; sweep < 6; sweep++ {
		var err error
		rep, err = repairer.RepairSweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		if rep.Deficits == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("repair did not converge: final report %+v", rep)
	}
	if shared.FT.UnderReplicated() != 0 {
		t.Errorf("under-replicated gauge = %d after convergence", shared.FT.UnderReplicated())
	}
	sweeps, copied := shared.FT.RepairTotals()
	if sweeps == 0 || copied == 0 {
		t.Errorf("repair totals: sweeps=%d copied=%d, want both > 0", sweeps, copied)
	}
	// Kill a second node: every key must still be served, because repair
	// restored full replication — any acked key now has a live replica
	// among the survivors.
	var second mem.NodeID
	for _, n := range shared.Ring.Nodes() {
		if n != victim {
			second = n
			break
		}
	}
	f.KillNode(second)
	reader := newTestClient(f, shared, Options{})
	for i, k := range keys {
		v, ok, err := reader.Search(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("search %q after second kill: ok=%v v=%q err=%v", k, ok, v, err)
		}
	}
}

// TestConcurrentKillRepairServe drives workers, a mid-run kill and repair
// sweeps concurrently; run under -race this is the data-race check for the
// whole failover stack.
func TestConcurrentKillRepairServe(t *testing.T) {
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), 2000)
	loader := newTestClient(f, shared, Options{})
	const workers = 4
	const perWorker = 120
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
			if _, err := loader.Insert(k, []byte("seed")); err != nil {
				t.Fatalf("load %q: %v", k, err)
			}
		}
	}
	victim := shared.Ring.OwnerKey([]byte("w0-key-0000"))

	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{})
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
				if w == 0 && i == perWorker/2 {
					f.KillNode(victim)
				}
				if i%2 == 0 {
					if _, err := c.Insert(k, []byte(fmt.Sprintf("v%d", i))); err != nil && !errors.Is(err, ErrReplicaSetUnavailable) {
						errCh <- fmt.Errorf("w%d insert %q: %w", w, k, err)
						return
					}
				} else {
					if _, _, err := c.Search(k); err != nil && !errors.Is(err, ErrReplicaSetUnavailable) {
						errCh <- fmt.Errorf("w%d search %q: %w", w, k, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := newTestClient(f, shared, Options{})
		for s := 0; s < 4; s++ {
			if _, err := r.RepairSweep(); err != nil {
				errCh <- fmt.Errorf("repair sweep %d: %w", s, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestAnchorConcurrentSameKeyUpdates is the regression test for the
// anchor last-writer-wins race: concurrent updates to the same key race
// on the anchor-table entry CAS, and before the SwapIfPresent fix the
// losing writer called View.Replace with its stale expectation — a wait
// loop meant for lock-holding callers — and died with "replace target
// never appeared". Competing writers must all succeed, and the surviving
// value must be one of the acknowledged ones on every replica.
func TestAnchorConcurrentSameKeyUpdates(t *testing.T) {
	f, shared := newReplicatedCluster(t, 3, fabric.InstantConfig(), 1000)
	loader := newTestClient(f, shared, Options{})
	key := []byte("anchor-race-key")
	if _, err := loader.Insert(key, []byte("v0")); err != nil {
		t.Fatal(err)
	}

	const writers, updates = 6, 40
	written := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newTestClient(f, shared, Options{})
			for i := 0; i < updates; i++ {
				val := []byte(fmt.Sprintf("w%d-i%d", w, i))
				if _, err := c.Update(key, val); err != nil {
					errCh <- fmt.Errorf("writer %d update %d: %w", w, i, err)
					return
				}
				mu.Lock()
				written[string(val)] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The tree's value and every anchor replica must hold an acknowledged
	// value (LWW: the winner is the highest version, which is one of them).
	r := newTestClient(f, shared, Options{})
	v, ok, err := r.Search(key)
	if err != nil || !ok {
		t.Fatalf("read after race: ok=%v err=%v", ok, err)
	}
	if !written[string(v)] {
		t.Fatalf("surviving value %q was never acknowledged", v)
	}
	for _, node := range shared.FT.targets(shared.Ring, key) {
		_, av, _, found, err := r.findAnchor(node, key)
		if err != nil || !found {
			t.Fatalf("anchor on node %d: found=%v err=%v", node, found, err)
		}
		if !written[string(av)] {
			t.Fatalf("anchor on node %d holds unacknowledged value %q", node, av)
		}
	}
}
