// Package dataset generates the two key datasets of the paper's evaluation
// (§V-A):
//
//   - u64: 8-byte fixed-length integers drawn from a uniform distribution,
//     encoded big-endian so that integer order equals byte order;
//   - email: the paper uses a public dump of 300 M addresses [29], which
//     cannot be shipped; this package substitutes a deterministic synthetic
//     generator matching the published statistics — lengths 2–32 bytes with
//     a mean of ≈18.9 — and the shared-prefix structure (common domains,
//     clustered local parts) that makes email keys build deep trees.
//
// All generators are seeded and reproducible.
package dataset

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Kind selects a dataset.
type Kind int

// The paper's two datasets.
const (
	U64 Kind = iota
	Email
)

// String names the dataset.
func (k Kind) String() string {
	switch k {
	case U64:
		return "u64"
	case Email:
		return "email"
	default:
		return fmt.Sprintf("dataset(%d)", int(k))
	}
}

// Generate returns n distinct keys of the given dataset kind.
func Generate(kind Kind, n int, seed int64) [][]byte {
	switch kind {
	case U64:
		return GenerateU64(n, seed)
	case Email:
		return GenerateEmail(n, seed)
	default:
		panic(fmt.Sprintf("dataset: unknown kind %d", kind))
	}
}

// GenerateU64 returns n distinct uniformly distributed 8-byte big-endian
// integer keys.
func GenerateU64(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]struct{}, n)
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		v := rng.Uint64()
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, v)
		keys = append(keys, k)
	}
	return keys
}

// Email-generation vocabulary. Domain popularity is heavily skewed, like
// real mail providers; local parts combine common first/last names with
// numeric suffixes, giving the dataset the dense shared prefixes that make
// email trees deep.
var (
	emailDomains = []string{
		"gmail.com", "yahoo.com", "hotmail.com", "aol.com", "msn.com",
		"live.com", "mail.ru", "qq.com", "163.com", "web.de",
		"gmx.de", "orange.fr", "comcast.net", "icloud.com", "me.com",
	}
	// Cumulative weights approximating a zipf-ish provider distribution.
	emailDomainCum = []int{30, 45, 57, 64, 70, 75, 80, 84, 88, 91, 93, 95, 97, 99, 100}

	emailFirst = []string{
		"james", "mary", "john", "wei", "anna", "lee", "sam", "kim",
		"alex", "maria", "chen", "mo", "eva", "tom", "lena", "raj",
		"omar", "zoe", "max", "amy", "bo", "li", "ed", "jo",
	}
	emailLast = []string{
		"smith", "jones", "zhang", "wang", "brown", "garcia", "kumar",
		"mueller", "rossi", "tanaka", "kowalski", "novak", "santos",
		"silva", "park", "nguyen", "lopez", "kim", "chan", "ali",
	}
)

// GenerateEmail returns n distinct synthetic email-address keys with
// lengths in [2, 32] and mean length ≈ 18.9, matching the paper's dataset
// statistics.
func GenerateEmail(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]struct{}, n)
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		s := genEmail(rng)
		if len(s) > 32 {
			continue
		}
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		keys = append(keys, []byte(s))
	}
	return keys
}

func genEmail(rng *rand.Rand) string {
	// A small share of very short addresses drags the minimum to 2 and
	// keeps the mean near 18.9.
	if rng.Intn(100) < 3 {
		n := 2 + rng.Intn(3)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	first := emailFirst[rng.Intn(len(emailFirst))]
	domain := pickDomain(rng)
	switch rng.Intn(4) {
	case 0: // first+digits@domain
		return fmt.Sprintf("%s%d@%s", first, rng.Intn(1000), domain)
	case 1: // first.last@domain
		last := emailLast[rng.Intn(len(emailLast))]
		return fmt.Sprintf("%s.%s@%s", first, last, domain)
	case 2: // initial+last+digits@domain
		last := emailLast[rng.Intn(len(emailLast))]
		return fmt.Sprintf("%c%s%d@%s", first[0], last, rng.Intn(100), domain)
	default: // handle-style
		n := 4 + rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return fmt.Sprintf("%s%d@%s", b, rng.Intn(100), domain)
	}
}

func pickDomain(rng *rand.Rand) string {
	p := rng.Intn(100)
	for i, cum := range emailDomainCum {
		if p < cum {
			return emailDomains[i]
		}
	}
	return emailDomains[len(emailDomains)-1]
}

// Novel returns a deterministic factory for the keys a workload inserts
// during a run (YCSB D/E/LOAD), disjoint from Generate's keys: u64 keys
// come from an independently seeded mix, emails use a reserved domain that
// the base vocabulary never produces.
func Novel(kind Kind, seed int64) func(i int64) []byte {
	switch kind {
	case U64:
		return func(i int64) []byte {
			k := make([]byte, 8)
			v := mix64(uint64(i)*0x9e3779b97f4a7c15 ^ uint64(seed))
			binary.BigEndian.PutUint64(k, v)
			return k
		}
	case Email:
		return func(i int64) []byte {
			return []byte(fmt.Sprintf("u%d.%d@new.run", uint64(seed)%1000, i))
		}
	default:
		panic(fmt.Sprintf("dataset: unknown kind %d", kind))
	}
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// MeanLen returns the average key length of a dataset sample.
func MeanLen(keys [][]byte) float64 {
	if len(keys) == 0 {
		return 0
	}
	total := 0
	for _, k := range keys {
		total += len(k)
	}
	return float64(total) / float64(len(keys))
}
