package dataset

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestU64Distinct(t *testing.T) {
	keys := GenerateU64(5000, 1)
	seen := map[string]bool{}
	for _, k := range keys {
		if len(k) != 8 {
			t.Fatalf("u64 key of %d bytes", len(k))
		}
		if seen[string(k)] {
			t.Fatal("duplicate u64 key")
		}
		seen[string(k)] = true
	}
}

func TestU64BigEndianOrder(t *testing.T) {
	// Integer order must equal byte order for range scans to make sense.
	keys := GenerateU64(1000, 2)
	for i := 0; i < len(keys)-1; i++ {
		a := binary.BigEndian.Uint64(keys[i])
		b := binary.BigEndian.Uint64(keys[i+1])
		if (a < b) != (bytes.Compare(keys[i], keys[i+1]) < 0) {
			t.Fatal("byte order disagrees with integer order")
		}
	}
}

func TestU64Deterministic(t *testing.T) {
	a := GenerateU64(100, 42)
	b := GenerateU64(100, 42)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("same seed produced different keys")
		}
	}
	c := GenerateU64(100, 43)
	same := 0
	for i := range a {
		if bytes.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestEmailStatistics(t *testing.T) {
	// Paper §V-A: sizes ranging from 2 to 32 bytes, average ≈ 18.93.
	keys := GenerateEmail(50000, 1)
	min, max := 1<<30, 0
	for _, k := range keys {
		if len(k) < min {
			min = len(k)
		}
		if len(k) > max {
			max = len(k)
		}
	}
	if min < 2 || max > 32 {
		t.Errorf("email lengths [%d,%d] outside [2,32]", min, max)
	}
	mean := MeanLen(keys)
	if mean < 16.5 || mean > 21.5 {
		t.Errorf("email mean length %.2f too far from the paper's 18.93", mean)
	}
}

func TestEmailDistinct(t *testing.T) {
	keys := GenerateEmail(20000, 3)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[string(k)] {
			t.Fatalf("duplicate email %q", k)
		}
		seen[string(k)] = true
	}
}

func TestEmailSharedPrefixStructure(t *testing.T) {
	// The dataset must produce substantial shared prefixes (deep trees):
	// many keys should share their first 4 bytes with some other key.
	keys := GenerateEmail(10000, 4)
	prefixes := map[string]int{}
	for _, k := range keys {
		if len(k) >= 4 {
			prefixes[string(k[:4])]++
		}
	}
	sharing := 0
	for _, k := range keys {
		if len(k) >= 4 && prefixes[string(k[:4])] > 1 {
			sharing++
		}
	}
	if float64(sharing)/float64(len(keys)) < 0.5 {
		t.Errorf("only %d/%d keys share a 4-byte prefix; tree would be too shallow", sharing, len(keys))
	}
}

func TestGenerateDispatch(t *testing.T) {
	if len(Generate(U64, 10, 1)) != 10 || len(Generate(Email, 10, 1)) != 10 {
		t.Fatal("Generate returned wrong count")
	}
	if U64.String() != "u64" || Email.String() != "email" {
		t.Error("dataset names wrong")
	}
}
