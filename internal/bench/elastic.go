package bench

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"sort"

	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/ycsb"
)

// MNLoad is one memory node's share of a measurement window's NIC
// traffic. Verbs is the windowed verb count (the per-MN round-trip
// proxy: every posted work request lands on exactly one MN NIC), WaitPs
// the windowed queueing delay — the saturation signal rebalancing is
// supposed to relieve.
type MNLoad struct {
	Node   int     `json:"node"`
	Member bool    `json:"member"` // on the serving ring during this window
	Verbs  uint64  `json:"verbs"`
	Bytes  uint64  `json:"bytes"`
	BusyPs int64   `json:"busy_ps"`
	WaitPs int64   `json:"wait_ps"`
	Share  float64 `json:"verb_share"` // of the window's total verbs
	// RoundTrips is the window's completed doorbell batches charged to
	// this NIC (gating-node attribution); across a steady window they sum
	// to exactly the worker clients' own round-trip counters.
	RoundTrips uint64 `json:"round_trips"`
}

// MNWindow is the per-MN load breakdown of one steady-state measurement
// window (no migration traffic: windows run only between transitions).
// MaxMinRatio is max/min verb share over the ring members of the window;
// 0 means some member served nothing, i.e. the worst possible imbalance
// — before rebalancing, a freshly added member's share is exactly that.
type MNWindow struct {
	Window      string   `json:"window"`
	Members     []int    `json:"members"`
	Loads       []MNLoad `json:"loads"`
	MaxShare    float64  `json:"max_share"`
	MinShare    float64  `json:"min_share"`
	MaxMinRatio float64  `json:"max_min_ratio"`
	// ClientRTs is the sum of the window's worker-client round-trip
	// counters; RTsReconciled is the per-MN attribution check — the
	// windowed per-NIC RoundTrips must sum to exactly ClientRTs (steady
	// windows have no other traffic source).
	ClientRTs     uint64 `json:"client_rts,omitempty"`
	RTsReconciled *bool  `json:"rts_reconciled,omitempty"`
}

// ElasticSLOPhase is one ledgered phase's verdict against the chaos
// run's calibrated read-latency SLO: exact per-phase op/violation counts
// and the phase burn rate (1 spends the error budget exactly as fast as
// allowed; steady windows should burn ~0, transitions may spike).
type ElasticSLOPhase struct {
	Phase string  `json:"phase"`
	Ops   uint64  `json:"ops"`
	Bad   uint64  `json:"bad"`
	Burn  float64 `json:"burn"`
	// P99Ps/MaxPs are the phase's exact read-latency tail, for
	// eyeballing how far the phase sat from the threshold.
	P99Ps uint64 `json:"p99_ps"`
	MaxPs uint64 `json:"max_ps"`
}

// ElasticChaos is one membership transition's accounting: the workload
// phase it ran under, the migration work, and the CN-side counters that
// show stale state being refuted rather than trusted.
type ElasticChaos struct {
	Phase          string `json:"phase"` // "add" | "drain"
	Node           int    `json:"node"`  // the added / drained MN
	Sweeps         int    `json:"sweeps"`
	MovedNodes     uint64 `json:"moved_nodes"`
	MovedLeaves    uint64 `json:"moved_leaves"`
	AnchorsCopied  uint64 `json:"anchors_copied"`
	AnchorsRemoved uint64 `json:"anchors_removed"`
	EpochAfter     uint64 `json:"epoch_after"`

	// Worker-side counters of the phase: reads served from the previous
	// epoch mid-transition, and the trust-but-verify unlearns that refute
	// CN state pointing at migrated leaves (LAC refutes, SFC false
	// positives).
	EpochFallbacks uint64 `json:"epoch_fallbacks"`
	SpecRefutes    uint64 `json:"spec_refutes"`
	FalsePositives uint64 `json:"false_positives"`
	Restarts       uint64 `json:"restarts"`

	mig *core.Client // migration driver for the inline sweep pacing
}

// ElasticReport is the elastic-membership chaos experiment's result: did
// a mid-run scale-out and scale-in lose any acknowledged write, did
// migration converge and cut over, and did per-MN load actually
// rebalance. The CI elastic-smoke gate reads LostAckedWrites,
// LostAfterDecommission, FinalEpoch/Converged and the window shares.
type ElasticReport struct {
	System      string `json:"system"`
	MNsStart    int    `json:"mns_start"`
	Replication int    `json:"replication"`
	Workers     int    `json:"workers"`

	AddedNode   int `json:"added_node"`
	DrainedNode int `json:"drained_node"`

	// Durability: every acknowledged write across every phase is re-read
	// twice — once after the final window, and again after the drained
	// node is killed outright (drain must leave nothing behind worth
	// keeping alive). All four loss counters must be zero.
	AckedWrites            uint64 `json:"acked_writes"`
	VerifiedReads          uint64 `json:"verified_reads"`
	LostAckedWrites        uint64 `json:"lost_acked_writes"`
	WrongValueReads        uint64 `json:"wrong_value_reads"`
	LostAfterDecommission  uint64 `json:"lost_after_decommission"`
	WrongAfterDecommission uint64 `json:"wrong_after_decommission"`

	// Membership transitions, in order.
	Add   ElasticChaos `json:"add"`
	Drain ElasticChaos `json:"drain"`

	// Convergence: the placement epoch after both cutovers (2), with no
	// transition left open and the final sweep reporting nothing to move.
	FinalEpoch uint64 `json:"final_epoch"`
	Converged  bool   `json:"converged"`
	Cutovers   uint64 `json:"cutovers"`

	// Steady-state per-MN load windows: before the add (the new node is
	// attached but serves nothing), after the add cut over (it must carry
	// a fair share), and after the drain cut over (the drained node must
	// be idle).
	Windows []MNWindow `json:"windows"`
	// AddedShareBefore/After and DrainedShareAfter are the headline
	// rebalancing numbers, duplicated out of Windows for easy gating.
	AddedShareBefore  float64 `json:"added_share_before"`
	AddedShareAfter   float64 `json:"added_share_after"`
	DrainedShareAfter float64 `json:"drained_share_after"`

	// SLO is the read-latency objective of the chaos run, calibrated
	// from a full-contention warm pass before the first window
	// (threshold = exact read p99 + 1/8 headroom); SLOPhases is its
	// per-phase verdict, evaluated on exact read latencies.
	SLO       *obs.SLO          `json:"slo,omitempty"`
	SLOPhases []ElasticSLOPhase `json:"slo_phases,omitempty"`
	// Plane is the observability plane's final snapshot over the chaos
	// run: per-MN windowed nic_busy_ratio / verb-share / round-trip
	// series (the added node's share series converging to fair share is
	// the rebalancing story in time-series form), SLO statuses and alert
	// states.
	Plane *obs.PlaneSnapshot `json:"plane,omitempty"`
}

// ElasticMNSweep is the default MN-count sweep of the elastic experiment.
var ElasticMNSweep = []int{2, 3, 5}

// Elastic is the elastic-membership experiment. It has two parts:
//
// First, an MN-count sweep: independent static clusters at growing MN
// counts run YCSB-A, showing what a bigger pool buys before elasticity
// enters the picture (one MN's NIC is the throughput ceiling the ROADMAP
// names).
//
// Second, the add-then-drain chaos run on one replicated cluster:
// workers drive a ledgered 50/50 read/update workload (unique value per
// write) without pause while a new MN joins mid-phase — epoch bumped,
// migration sweeps relocating every leaf, tree node and anchor the new
// member now owns, cutover retiring the old placement — and then an
// original MN drains out the same way. Steady-state windows before and
// between the transitions measure each MN's NIC verb share: the added
// node must go from serving nothing to a fair share (max/min member
// ratio improving from 0, i.e. ∞-imbalance, toward 1) and the drained
// node back to nothing. Every acknowledged write must remain readable,
// even after the drained node is killed outright.
func Elastic(cfg Config, out io.Writer) ([]Result, *ElasticReport, error) {
	if cfg.Replication < 2 {
		cfg.Replication = core.DefaultReplication
	}
	cfg = cfg.withDefaults()
	if cfg.MNs < 3 {
		return nil, nil, fmt.Errorf("elastic: need >= 3 memory nodes, have %d", cfg.MNs)
	}

	// Part 1 — MN-count sweep on static clusters.
	fmt.Fprintf(out, "# Elastic — MN-count sweep (YCSB-A), then mid-run add+drain chaos, R=%d, dataset=%v keys=%d workers=%d\n",
		cfg.Replication, cfg.Dataset, cfg.Keys, cfg.Workers)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, mn := range ElasticMNSweep {
		c := cfg
		c.MNs = mn
		cl, err := NewCluster(Sphinx, c)
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, nil, fmt.Errorf("elastic sweep mns=%d load: %w", mn, err)
		}
		r, err := cl.Run(ycsb.WorkloadA, 0, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("elastic sweep mns=%d: %w", mn, err)
		}
		r.Workload = fmt.Sprintf("A/mn=%d", mn)
		results = append(results, r)
		fmt.Fprintln(out, r.Row())
	}

	// Part 2 — the chaos run.
	cl, err := NewCluster(Sphinx, cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := cl.Load(0); err != nil {
		return nil, nil, fmt.Errorf("elastic load: %w", err)
	}
	rep := &ElasticReport{
		System:      Sphinx.String(),
		MNsStart:    cfg.MNs,
		Replication: cfg.Replication,
		Workers:     cfg.Workers,
	}

	// Attach the future member now (idle: nothing routes to a node that
	// is not on the ring), so the pre-add window can show its zero share.
	perMN := uint64(64<<20) + uint64(cfg.Keys)*6*1024/uint64(cfg.MNs)
	added := cl.F.AddNode(perMN)
	rep.AddedNode = int(added)

	// The drain victim is any original member not hosting the pinned root.
	root := cl.sphinxShared.Root.Node()
	victim := root
	for _, n := range cl.memberNodes() {
		if n != root {
			victim = n
			break
		}
	}
	rep.DrainedNode = int(victim)

	led := newLedger(cl, cfg)
	// Calibrate the read-latency SLO and bring up the observability
	// plane before the first measured phase.
	if err := led.calibrate(); err != nil {
		return nil, nil, fmt.Errorf("elastic calibrate: %w", err)
	}

	// Window 1: steady state before the add.
	w1, err := led.window("pre-add")
	if err != nil {
		return nil, nil, err
	}

	// Chaos phase 1: scale-out mid-run.
	addChaos, err := led.chaos("add", func() (*core.Placement, error) {
		return core.BeginAddNode(cl.F, cl.sphinxShared, added, cfg.Keys)
	})
	if err != nil {
		return nil, nil, err
	}
	addChaos.Node = int(added)
	rep.Add = *addChaos

	// Window 2: steady state with the new member serving.
	w2, err := led.window("post-add")
	if err != nil {
		return nil, nil, err
	}

	// Chaos phase 2: scale-in mid-run.
	drainChaos, err := led.chaos("drain", func() (*core.Placement, error) {
		return core.BeginDrainNode(cl.sphinxShared, victim)
	})
	if err != nil {
		return nil, nil, err
	}
	drainChaos.Node = int(victim)
	rep.Drain = *drainChaos

	// Window 3: steady state with the drained node out of the ring.
	w3, err := led.window("post-drain")
	if err != nil {
		return nil, nil, err
	}
	rep.Windows = []MNWindow{w1, w2, w3}
	rep.AddedShareBefore = shareOf(w1, int(added))
	rep.AddedShareAfter = shareOf(w2, int(added))
	rep.DrainedShareAfter = shareOf(w3, int(victim))

	p := cl.sphinxShared.Members.Current()
	rep.FinalEpoch = p.Epoch
	rep.Converged = p.Prev == nil
	rep.Cutovers = addChaos.Cutovers() + drainChaos.Cutovers()

	rep.SLO = &led.slo
	rep.SLOPhases = led.sloPhases
	planeSnap := led.plane.Snapshot()
	rep.Plane = &planeSnap

	// Verification pass 1: a fresh client re-reads every acknowledged
	// write from every phase.
	rep.AckedWrites = uint64(led.size())
	vidx, _ := cl.NewIndex(0)
	led.verify(vidx, &rep.VerifiedReads, &rep.LostAckedWrites, &rep.WrongValueReads)

	// Verification pass 2: kill the drained node outright. Drain is only
	// graceful decommissioning if nothing still depends on the node — a
	// fresh client (cold caches, current placement only) must still see
	// every acknowledged write.
	cl.F.KillNode(victim)
	kidx, _ := cl.NewIndex(1 % cfg.CNs)
	var verifiedAfterKill uint64
	led.verify(kidx, &verifiedAfterKill, &rep.LostAfterDecommission, &rep.WrongAfterDecommission)

	fmt.Fprintf(out, "\nadded MN %d mid-run: %d sweeps moved %d leaves, %d nodes, %d anchors (epoch %d)\n",
		rep.AddedNode, rep.Add.Sweeps, rep.Add.MovedLeaves, rep.Add.MovedNodes, rep.Add.AnchorsCopied, rep.Add.EpochAfter)
	fmt.Fprintf(out, "drained MN %d mid-run: %d sweeps moved %d leaves, %d nodes, %d anchors (epoch %d)\n",
		rep.DrainedNode, rep.Drain.Sweeps, rep.Drain.MovedLeaves, rep.Drain.MovedNodes, rep.Drain.AnchorsCopied, rep.Drain.EpochAfter)
	fmt.Fprintf(out, "stale-state refutation: epoch fallbacks %d/%d, LAC refutes %d/%d, SFC false positives %d/%d (add/drain)\n",
		rep.Add.EpochFallbacks, rep.Drain.EpochFallbacks,
		rep.Add.SpecRefutes, rep.Drain.SpecRefutes,
		rep.Add.FalsePositives, rep.Drain.FalsePositives)
	for _, w := range rep.Windows {
		recon := "-"
		if w.RTsReconciled != nil {
			recon = fmt.Sprintf("%v", *w.RTsReconciled)
		}
		fmt.Fprintf(out, "window %-10s members %v  max/min share %.3f/%.3f  ratio %.2f  rts reconciled %s\n",
			w.Window, w.Members, w.MaxShare, w.MinShare, w.MaxMinRatio, recon)
	}
	fmt.Fprintf(out, "SLO %s: %.0f%% of reads under %.2f µs (calibrated)\n",
		rep.SLO.Name, rep.SLO.Quantile*100, float64(rep.SLO.LatencyPs)/1e6)
	for _, sp := range rep.SLOPhases {
		fmt.Fprintf(out, "  phase %-10s ops %6d bad %4d burn %.2f  p99 %.2f µs max %.2f µs\n",
			sp.Phase, sp.Ops, sp.Bad, sp.Burn, float64(sp.P99Ps)/1e6, float64(sp.MaxPs)/1e6)
	}
	fmt.Fprintf(out, "added-node share %.3f -> %.3f, drained-node share -> %.3f\n",
		rep.AddedShareBefore, rep.AddedShareAfter, rep.DrainedShareAfter)
	fmt.Fprintf(out, "acked writes %d, verified %d: lost %d, wrong %d; after decommission kill: lost %d, wrong %d\n",
		rep.AckedWrites, rep.VerifiedReads, rep.LostAckedWrites, rep.WrongValueReads,
		rep.LostAfterDecommission, rep.WrongAfterDecommission)
	fmt.Fprintf(out, "final epoch %d converged %v cutovers %d\n", rep.FinalEpoch, rep.Converged, rep.Cutovers)
	return results, rep, nil
}

// Cutovers extracts the transition's cutover count (1 per retired epoch).
func (c *ElasticChaos) Cutovers() uint64 {
	if c.EpochAfter > 0 {
		return 1
	}
	return 0
}

// shareOf returns a node's verb share in a window.
func shareOf(w MNWindow, node int) float64 {
	for _, l := range w.Loads {
		if l.Node == node {
			return l.Share
		}
	}
	return 0
}

// ledger runs the chaos experiment's ledgered worker phases: every write
// acknowledged to a worker is recorded (single writer per key, so the
// last acknowledged value is the exact expected value), and verify
// re-reads the union of all phases.
type ledger struct {
	cl     *Cluster
	cfg    Config
	shards [][][]byte       // per-worker key partition
	acked  []map[int][]byte // per-worker shard index -> last acked value
	phase  int

	// Observability of the chaos run: every worker op's virtual latency
	// and round trips land in metrics; worker 0 ticks the plane on its
	// virtual clock offset by basePs (the accumulated end time of the
	// finished phases — per-phase clients restart their clocks at zero).
	metrics   *obs.Metrics
	plane     *obs.Plane
	slo       obs.SLO
	basePs    int64
	tickEvery int
	sloPhases []ElasticSLOPhase
	// lastLats is the previous pass's exact sorted read latencies. The
	// per-phase SLO verdicts are computed from these rather than from
	// the power-of-two histograms: the one-round-trip cost of an epoch
	// fallback shifts a read by ~25%, which bucket edges cannot resolve.
	lastLats []int64
}

func newLedger(cl *Cluster, cfg Config) *ledger {
	l := &ledger{cl: cl, cfg: cfg, metrics: obs.NewMetrics()}
	l.shards = make([][][]byte, cfg.Workers)
	l.acked = make([]map[int][]byte, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		for i := w; i < len(cl.keys); i += cfg.Workers {
			l.shards[w] = append(l.shards[w], cl.keys[i])
		}
		l.acked[w] = make(map[int][]byte)
	}
	return l
}

// calibrate runs one full ledgered pass under the same contention as
// the measured phases and derives the chaos run's read-latency SLO
// from its exact read latencies: threshold = median * 3/2.
//
// The median is the right anchor because warm-path read latency is
// quantized by round-trip count: the warm locate-descend read costs 3
// RTs (the median, >85% of reads), the slowest steady shapes (a filter
// false positive or a deep structural jump) cost 4 RTs ~ 1.35x the
// median, and a mid-transition epoch fallback stacked on one of those
// costs >=5 RTs ~ 1.65x. A threshold at 1.5x the median therefore
// sits above every steady-state shape and below the chaos tail by
// construction. Tail percentiles (p99/max) are NOT usable here: they
// land inside the 4-RT band or on a rare steady 5-RT coincidence (FP +
// fingerprint collision in one read) and either verdict flips with one
// sample, while the median is immune to both tails.
//
// The observability plane's windows are sized from the pass's measured
// duration so each later phase spans several windows. The pass's
// writes are ledgered like any other phase's, so they are covered by
// the final verification.
func (l *ledger) calibrate() error {
	if _, err := l.run("calibrate", nil); err != nil {
		return err
	}
	lats := l.lastLats
	if len(lats) == 0 {
		return fmt.Errorf("calibrate: no reads observed")
	}
	median := uint64(lats[len(lats)/2])
	l.slo = obs.SLO{Name: "read-p99", Op: obs.OpGet, Quantile: 0.99,
		LatencyPs: median * 3 / 2}

	windowPs := max(l.basePs/8, 1)
	l.tickEvery = max(l.cfg.OpsPerWorker/32, 1)
	plane, err := obs.NewPlane(obs.PlaneOptions{
		WindowPs: windowPs,
		Windows:  512,
		Collect:  l.cl.collectMNs,
		Latency:  l.metrics.OpLatency,
		SLOs:     []obs.SLO{l.slo},
	})
	l.plane = plane
	return err
}

func (l *ledger) size() int {
	n := 0
	for _, m := range l.acked {
		n += len(m)
	}
	return n
}

// window runs one ledgered 50/50 read/update pass over a quiescent
// placement and returns the per-MN NIC load it induced. The only
// traffic sources of a steady window are the phase's own worker
// clients, so the per-MN attributed round trips must reconcile exactly
// against the clients' counters.
func (l *ledger) window(name string) (MNWindow, error) {
	cl := l.cl
	cl.F.ResetTimelines()
	before := cl.F.NICStats()
	stats, err := l.run(name, nil)
	if err != nil {
		return MNWindow{}, fmt.Errorf("%s: %w", name, err)
	}
	after := cl.F.NICStats()
	w := nicWindow(name, before, after, cl.memberNodes())
	w.ClientRTs = stats.clientRTs
	var mnRTs uint64
	for _, ld := range w.Loads {
		mnRTs += ld.RoundTrips
	}
	ok := mnRTs == stats.clientRTs
	w.RTsReconciled = &ok
	return w, nil
}

// chaos runs one ledgered pass during which the given membership
// transition opens a quarter of the way in and worker 0 paces the
// migration sweeps through the rest of its own op loop. Every worker
// barriers on the transition opening (sync.Once blocks late arrivals
// until the first call returns), so all post-trigger reads run against
// an open transition — the epoch-fallback window deterministically
// overlaps the measured load instead of racing a background migrator
// that may finish before any read observes it. The phase's worker
// counters (epoch fallbacks, unlearns) land in the returned
// ElasticChaos.
func (l *ledger) chaos(name string, begin func() (*core.Placement, error)) (*ElasticChaos, error) {
	cl := l.cl
	ch := &ElasticChaos{Phase: name}
	tr := &chaosTrigger{
		open: func() error {
			p, err := begin()
			if err != nil {
				return fmt.Errorf("begin %s: %w", name, err)
			}
			ch.EpochAfter = p.Epoch
			midx, _ := cl.NewIndex(0)
			ch.mig = midx.(sphinxIndex).c
			return nil
		},
		step: func() (bool, error) {
			if ch.Sweeps >= 100 {
				return false, fmt.Errorf("%s: migration did not converge in %d sweeps", name, ch.Sweeps)
			}
			srep, err := ch.mig.MigrateSweep()
			if err != nil {
				return false, fmt.Errorf("%s sweep %d: %w", name, ch.Sweeps, err)
			}
			ch.Sweeps++
			ch.MovedNodes += srep.MovedNodes
			ch.MovedLeaves += srep.MovedLeaves
			ch.AnchorsCopied += srep.AnchorsCopied
			ch.AnchorsRemoved += srep.AnchorsRemoved
			return srep.CutOver, nil
		},
	}
	stats, err := l.run(name, tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	ch.EpochFallbacks = stats.core.EpochFallbacks
	ch.SpecRefutes = stats.core.SpecRefutes
	ch.FalsePositives = stats.core.FalsePositives
	ch.Restarts = stats.core.Restarts
	return ch, nil
}

// chaosTrigger is the contract between chaos and run: open begins the
// transition (called under the workers' barrier), step advances the
// migration one sweep and reports cutover. Worker 0 paces step calls
// through its remaining ops and drains any leftover sweeps after its
// loop, so migration is concurrent with serving but its progress is
// tied to measured load rather than wall-clock scheduling luck.
type chaosTrigger struct {
	open func() error
	step func() (bool, error)
}

// phaseStats is one ledgered pass's aggregated accounting: the worker
// clients' core counters and their summed fabric round trips.
type phaseStats struct {
	core      core.Stats
	clientRTs uint64
}

// run drives one ledgered 50/50 read/update pass: cfg.Workers workers,
// cfg.OpsPerWorker ops each over their fixed key shard, read-your-write
// checked against the ledger on every read. Every op's virtual latency
// feeds the ledger metrics; worker 0 ticks the observability plane as
// it goes, and the phase ends with one tick at its accumulated end
// time. Returns the phase's aggregated counters; its SLO verdict is
// appended to sloPhases (skipped for the calibration pass, which runs
// before the SLO exists).
func (l *ledger) run(name string, trigger *chaosTrigger) (phaseStats, error) {
	cl, cfg := l.cl, l.cfg
	workers := cfg.Workers
	ops := cfg.OpsPerWorker
	// Open the transition an eighth of the way in and pace the sweeps so
	// cutover lands around 80% through worker 0's loop: the transition
	// stays open across most of the phase's measured reads, which is what
	// makes the chaos phases' SLO burn a reliable signal rather than a
	// race against how fast a migrator happens to be scheduled.
	triggerAt := ops / 8
	sweepEvery := max((ops-triggerAt)*2/5, 1)
	var triggerOnce sync.Once
	var triggerErr error

	stats := make([]core.Stats, workers)
	clientRTs := make([]uint64, workers)
	clocks := make([]int64, workers)
	lats := make([][]int64, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Measured workers run without the speculative leaf-address
			// cache (see NewIndexNoSpec): the SLO below must see the
			// migration's fallback cost, not the fast path hiding it.
			idx, fc := cl.NewIndexNoSpec(w % cfg.CNs)
			si := idx.(sphinxIndex)
			shard := l.shards[w]
			lastAcked := l.acked[w]
			// Warm the fresh client over its whole shard before measuring.
			// This pays the cold directory-view round trips up front AND
			// unlearns the succinct filter's false positives for every key
			// the measured loop can draw: an FP costs the same 2 extra
			// round trips as a mid-transition epoch fallback, so leaving
			// them in would make steady phases indistinguishable from
			// chaos in the latency tail.
			for _, key := range shard {
				if _, _, err := idx.Search(key); err != nil {
					errCh <- fmt.Errorf("worker %d warmup: %w", w, err)
					return
				}
			}
			rng := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(l.phase*workers+w+1)
			cutOver := trigger == nil
			for i := 0; i < ops; i++ {
				if trigger != nil && i == triggerAt {
					// Barrier: every worker blocks here until the
					// transition is open (Once.Do holds late arrivals
					// until the first call returns), so all post-trigger
					// ops run against it.
					triggerOnce.Do(func() { triggerErr = trigger.open() })
					if triggerErr != nil {
						errCh <- triggerErr
						return
					}
				}
				if w == 0 && !cutOver && i > triggerAt && (i-triggerAt)%sweepEvery == 0 {
					done, err := trigger.step()
					if err != nil {
						errCh <- err
						return
					}
					cutOver = done
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				ki := int(rng>>33) % len(shard)
				key := shard[ki]
				t0, rt0 := fc.Clock(), fc.RoundTrips()
				isRead := rng&1 == 0
				if isRead {
					v, ok, err := idx.Search(key)
					if err != nil {
						errCh <- fmt.Errorf("worker %d read op %d: %w", w, i, err)
						return
					}
					if want, wrote := lastAcked[ki]; wrote && (!ok || !bytes.Equal(v, want)) {
						errCh <- fmt.Errorf("worker %d op %d: read-your-write violated for %q", w, i, key)
						return
					}
					lat := fc.Clock() - t0
					l.metrics.ObserveOp(obs.OpGet, lat, fc.RoundTrips()-rt0)
					lats[w] = append(lats[w], lat)
				} else {
					val := []byte(fmt.Sprintf("p%d-w%d-op%d", l.phase, w, i))
					if _, err := idx.Update(key, val); err != nil {
						errCh <- fmt.Errorf("worker %d update op %d: %w", w, i, err)
						return
					}
					lastAcked[ki] = val
					l.metrics.ObserveOp(obs.OpUpdate, fc.Clock()-t0, fc.RoundTrips()-rt0)
				}
				if w == 0 && l.plane != nil && (i+1)%l.tickEvery == 0 {
					l.plane.Tick(l.basePs + fc.Clock())
				}
			}
			// Worker 0 drains any sweeps the pacing left unfinished, so
			// the phase always ends cut over and converged.
			for w == 0 && !cutOver {
				done, err := trigger.step()
				if err != nil {
					errCh <- err
					return
				}
				cutOver = done
			}
			stats[w] = si.c.Stats()
			clientRTs[w] = fc.RoundTrips()
			clocks[w] = fc.Clock()
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return phaseStats{}, err
	}
	l.phase++
	var agg phaseStats
	var maxClock int64
	var all []int64
	for w, s := range stats {
		agg.core = agg.core.Add(s)
		agg.clientRTs += clientRTs[w]
		maxClock = max(maxClock, clocks[w])
		all = append(all, lats[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	l.lastLats = all

	// Advance the accumulated virtual time to the phase's end (the
	// slowest worker's clock) and close the phase out on the plane, then
	// score the phase against the SLO from the exact read latencies.
	l.basePs += maxClock
	if l.plane == nil {
		return agg, nil // calibration pass: no SLO configured yet
	}
	l.plane.Tick(l.basePs)
	var bad uint64
	for i := len(all) - 1; i >= 0 && uint64(all[i]) > l.slo.LatencyPs; i-- {
		bad++
	}
	sp := ElasticSLOPhase{Phase: name, Ops: uint64(len(all)), Bad: bad}
	if len(all) > 0 {
		sp.Burn = float64(bad) / float64(len(all)) / (1 - l.slo.Quantile)
		sp.P99Ps = uint64(all[int(0.99*float64(len(all)-1))])
		sp.MaxPs = uint64(all[len(all)-1])
	}
	l.sloPhases = append(l.sloPhases, sp)
	return agg, nil
}

// verify re-reads every acknowledged write through idx, counting into
// the three result slots.
func (l *ledger) verify(idx Index, verified, lost, wrong *uint64) {
	for w := range l.acked {
		for ki, want := range l.acked[w] {
			v, ok, err := idx.Search(l.shards[w][ki])
			*verified++
			switch {
			case err != nil || !ok:
				*lost++
			case !bytes.Equal(v, want):
				*wrong++
			}
		}
	}
}

// nicWindow diffs two NIC snapshots into a per-MN load window.
func nicWindow(name string, before, after []fabric.NICStats, members []mem.NodeID) MNWindow {
	member := make(map[int]bool, len(members))
	w := MNWindow{Window: name}
	for _, n := range members {
		member[int(n)] = true
		w.Members = append(w.Members, int(n))
	}
	prev := make(map[mem.NodeID]fabric.NICStats, len(before))
	for _, s := range before {
		prev[s.Node] = s
	}
	var total uint64
	for _, s := range after {
		p := prev[s.Node]
		l := MNLoad{
			Node:       int(s.Node),
			Member:     member[int(s.Node)],
			Verbs:      s.Verbs - p.Verbs,
			Bytes:      s.Bytes - p.Bytes,
			BusyPs:     s.BusyPs - p.BusyPs,
			WaitPs:     s.WaitPs - p.WaitPs,
			RoundTrips: s.RoundTrips - p.RoundTrips,
		}
		total += l.Verbs
		w.Loads = append(w.Loads, l)
	}
	first := true
	for i := range w.Loads {
		if total > 0 {
			w.Loads[i].Share = float64(w.Loads[i].Verbs) / float64(total)
		}
		if !w.Loads[i].Member {
			continue
		}
		s := w.Loads[i].Share
		if first || s > w.MaxShare {
			w.MaxShare = s
		}
		if first || s < w.MinShare {
			w.MinShare = s
		}
		first = false
	}
	if w.MinShare > 0 {
		w.MaxMinRatio = w.MaxShare / w.MinShare
	}
	return w
}
