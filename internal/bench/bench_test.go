package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
	"sphinx/internal/ycsb"
)

func smallConfig(kind dataset.Kind) Config {
	return Config{
		Dataset:      kind,
		Keys:         3000,
		Workers:      6,
		OpsPerWorker: 100,
		Net:          fabric.DefaultConfig(),
		Seed:         1,
	}
}

func TestLoadAndRunAllSystems(t *testing.T) {
	for _, sys := range PaperSystems {
		cl, err := NewCluster(sys, smallConfig(dataset.U64))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		load, err := cl.Load(0)
		if err != nil {
			t.Fatalf("%v load: %v", sys, err)
		}
		if load.Ops != 3000 || load.ThroughputMops <= 0 {
			t.Errorf("%v load result: %+v", sys, load)
		}
		// Every loaded key must be readable through a fresh index.
		idx, _ := cl.NewIndex(0)
		for i, k := range cl.Keys() {
			if i%97 != 0 {
				continue
			}
			v, ok, err := idx.Search(k)
			if err != nil || !ok || !bytes.Equal(v, cl.Value()) {
				t.Fatalf("%v key %d unreadable: ok=%v err=%v", sys, i, ok, err)
			}
		}
		r, err := cl.Run(ycsb.WorkloadA, 0, 0)
		if err != nil {
			t.Fatalf("%v run A: %v", sys, err)
		}
		if r.Ops != 600 || r.ThroughputMops <= 0 || r.AvgLatUs <= 0 {
			t.Errorf("%v A result: %+v", sys, r)
		}
	}
}

func TestAllWorkloadsExecute(t *testing.T) {
	cl, err := NewCluster(Sphinx, smallConfig(dataset.Email))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load(0); err != nil {
		t.Fatal(err)
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE} {
		r, err := cl.Run(w, 0, 0)
		if err != nil {
			t.Fatalf("workload %s: %v", w.Name, err)
		}
		if r.RoundTripsPerOp <= 0 {
			t.Errorf("workload %s: no network accounting", w.Name)
		}
	}
}

func TestSphinxBeatsARTOnScans(t *testing.T) {
	// The Fig. 4 YCSB-E shape: batched scans must use far fewer round
	// trips per op than the naive port.
	cfg := smallConfig(dataset.U64)
	run := func(sys System) Result {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Load(0); err != nil {
			t.Fatal(err)
		}
		r, err := cl.Run(ycsb.WorkloadE, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sphinx := run(Sphinx)
	art := run(ART)
	if art.RoundTripsPerOp < sphinx.RoundTripsPerOp*1.5 {
		t.Errorf("scan round trips: ART %.1f vs Sphinx %.1f — batching advantage missing",
			art.RoundTripsPerOp, sphinx.RoundTripsPerOp)
	}
}

func TestSphinxReadsFewerBytesThanSMART(t *testing.T) {
	// The §III-B bandwidth argument: Sphinx reads one 64 B bucket plus an
	// adaptive node; SMART reads Node-256 images.
	cfg := smallConfig(dataset.Email)
	run := func(sys System) Result {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Load(0); err != nil {
			t.Fatal(err)
		}
		r, err := cl.Run(ycsb.WorkloadC, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sphinx := run(Sphinx)
	smart := run(SMART)
	if smart.BytesPerOp < sphinx.BytesPerOp*3 {
		t.Errorf("bytes/op: SMART %.0f vs Sphinx %.0f — bandwidth gap missing",
			smart.BytesPerOp, sphinx.BytesPerOp)
	}
}

func TestFig6Shapes(t *testing.T) {
	var sb strings.Builder
	usages, err := Fig6(smallConfig(dataset.Email), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(usages) != 3 {
		t.Fatalf("fig6 returned %d systems", len(usages))
	}
	art, sphinx, smart := usages[0], usages[1], usages[2]
	// Sphinx's tree is the same as ART's, plus the hash table.
	if sphinx.HashBytes() == 0 {
		t.Error("Sphinx reports no hash-table bytes")
	}
	if smart.IndexBytes() <= art.IndexBytes() {
		t.Errorf("SMART (%d) not larger than ART (%d)", smart.IndexBytes(), art.IndexBytes())
	}
	if got := float64(smart.IndexBytes()) / float64(art.IndexBytes()); got < 1.3 {
		t.Errorf("SMART/ART ratio %.2f too small for Node-256 preallocation", got)
	}
}

func TestAblationOrdering(t *testing.T) {
	var sb strings.Builder
	results, err := Ablation(smallConfig(dataset.Email), &sb)
	if err != nil {
		t.Fatal(err)
	}
	// results: [Sphinx C, Sphinx A, noSFC C, noSFC A, noDB C, noDB A, tiny C, tiny A]
	full, noSFC := results[0], results[2]
	if noSFC.BytesPerOp < full.BytesPerOp*2 {
		t.Errorf("disabling the filter cache should multiply bytes/op: %.0f vs %.0f",
			noSFC.BytesPerOp, full.BytesPerOp)
	}
	noDB := results[4]
	if noDB.RoundTripsPerOp <= full.RoundTripsPerOp {
		t.Errorf("disabling batching should raise round trips: %.2f vs %.2f",
			noDB.RoundTripsPerOp, full.RoundTripsPerOp)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Keys == 0 || c.ValueSize != 64 || c.MNs != 3 || c.CNs != 3 {
		t.Errorf("defaults: %+v", c)
	}
	if c.SmartCCache != c.SmartCache*10 {
		t.Errorf("SMART+C cache must be 10× SMART's: %d vs %d", c.SmartCCache, c.SmartCache)
	}
}

func TestResultRow(t *testing.T) {
	r := Result{System: "Sphinx", Workload: "A", Dataset: "u64", Workers: 6, ThroughputMops: 1.5}
	if !strings.Contains(r.Row(), "Sphinx") || !strings.Contains(ResultHeader(), "tput") {
		t.Error("row formatting broken")
	}
}

func TestScalingTrend(t *testing.T) {
	var sb strings.Builder
	base := smallConfig(dataset.Email)
	results, err := TreeDepthScaling(base, []int{1000, 8000}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("scaling returned %d results", len(results))
	}
	// ART's round trips must grow with tree depth; Sphinx's must not.
	sphinxSmall, artSmall := results[0], results[1]
	sphinxBig, artBig := results[2], results[3]
	if artBig.RoundTripsPerOp <= artSmall.RoundTripsPerOp {
		t.Errorf("ART RT/op did not grow with keys: %.2f vs %.2f",
			artSmall.RoundTripsPerOp, artBig.RoundTripsPerOp)
	}
	if sphinxBig.RoundTripsPerOp > sphinxSmall.RoundTripsPerOp+0.5 {
		t.Errorf("Sphinx RT/op grew with keys: %.2f vs %.2f",
			sphinxSmall.RoundTripsPerOp, sphinxBig.RoundTripsPerOp)
	}
}

func TestWorkerScalingShape(t *testing.T) {
	var sb strings.Builder
	base := smallConfig(dataset.U64)
	base.Keys = 2000
	base.OpsPerWorker = 60
	results, err := WorkerScaling(base, []int{1, 2}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Two modes × two worker counts, in mode-major order.
	if len(results) != 4 {
		t.Fatalf("worker scaling returned %d results", len(results))
	}
	wantSys := []string{"Sphinx", "Sphinx", "Sphinx-mutexSFC", "Sphinx-mutexSFC"}
	wantWkr := []int{1, 2, 1, 2}
	for i, r := range results {
		if r.System != wantSys[i] || r.Workers != wantWkr[i] {
			t.Errorf("result %d = %s/%d workers, want %s/%d", i, r.System, r.Workers, wantSys[i], wantWkr[i])
		}
		if r.WallElapsedNs <= 0 || r.WallMops <= 0 {
			t.Errorf("result %d (%s w%d) has no wall-clock measurement: %+v ns %.4f Mops",
				i, r.System, r.Workers, r.WallElapsedNs, r.WallMops)
		}
		if r.ParallelEfficiency <= 0 {
			t.Errorf("result %d (%s w%d) has no parallel efficiency", i, r.System, r.Workers)
		}
		if r.Workload != fmt.Sprintf("C/w%d", r.Workers) {
			t.Errorf("result %d workload = %q", i, r.Workload)
		}
	}
	// First point of each mode is its own efficiency baseline.
	if results[0].ParallelEfficiency != 1 || results[2].ParallelEfficiency != 1 {
		t.Errorf("first-point efficiencies = %.2f, %.2f, want 1",
			results[0].ParallelEfficiency, results[2].ParallelEfficiency)
	}
	// The mutex shim must not change what the cluster computes, only how
	// fast the CPU gets it done: op counts match point for point, and
	// virtual throughput stays in the same ballpark (exact equality does
	// not hold — worker interleaving on the shared filter perturbs
	// replacement decisions in either mode).
	for i := 0; i < 2; i++ {
		lf, mx := results[i], results[i+2]
		if lf.Ops != mx.Ops {
			t.Errorf("op counts diverged between SFC modes at %d workers: %d vs %d",
				lf.Workers, lf.Ops, mx.Ops)
		}
		if ratio := lf.ThroughputMops / mx.ThroughputMops; ratio < 0.5 || ratio > 2 {
			t.Errorf("virtual throughput diverged between SFC modes at %d workers: %.4f vs %.4f",
				lf.Workers, lf.ThroughputMops, mx.ThroughputMops)
		}
	}
}

func TestValueSweepInPlaceThreshold(t *testing.T) {
	var sb strings.Builder
	base := smallConfig(dataset.U64)
	results, err := ValueSweep(base, []int{64, 512}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("valsweep returned %d results", len(results))
	}
	// Larger values exceed the speculative leaf read: more bytes and at
	// least one extra round trip per op.
	if results[1].BytesPerOp <= results[0].BytesPerOp {
		t.Error("larger values did not increase bytes/op")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	rs := []Result{{System: "Sphinx", Workload: "A", Dataset: "u64", Workers: 6, Ops: 100, ThroughputMops: 1.5}}
	if err := WriteCSV(rs, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "system,workload") || !strings.Contains(out, "Sphinx,A,u64,6,100,1.5000") {
		t.Errorf("csv output:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("csv line count wrong:\n%s", out)
	}
}

func TestSphinxDiagAttached(t *testing.T) {
	cl, err := NewCluster(Sphinx, smallConfig(dataset.U64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load(0); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Run(ycsb.WorkloadC, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SphinxFilterHitPct <= 0 {
		t.Errorf("no filter-hit diagnostics attached: %+v", r)
	}
	if r.Diag() == "" {
		t.Error("Diag() empty for Sphinx run")
	}
	// Baselines carry no Sphinx diagnostics.
	art, err := NewCluster(ART, smallConfig(dataset.U64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := art.Load(0); err != nil {
		t.Fatal(err)
	}
	ra, err := art.Run(ycsb.WorkloadC, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Diag() != "" {
		t.Errorf("ART run carries Sphinx diagnostics: %s", ra.Diag())
	}
}

func TestCrossSystemEquivalence(t *testing.T) {
	// The strongest functional check in the repository: one random
	// operation stream applied to Sphinx, SMART and the naive ART port
	// must leave all three indexes in identical states (validated by a
	// full scan), agreeing with a map oracle at every read.
	cfg := smallConfig(dataset.U64)
	cfg.Net = fabric.InstantConfig()
	type sysState struct {
		name string
		idx  Index
	}
	var systems []sysState
	var scanners []*Cluster
	for _, sys := range []System{Sphinx, SMART, ART} {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx, _ := cl.NewIndex(0)
		systems = append(systems, sysState{sys.String(), idx})
		scanners = append(scanners, cl)
	}
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(2024))
	randKey := func() []byte {
		n := 1 + rng.Intn(9)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte('a' + rng.Intn(4))
		}
		return k
	}
	for step := 0; step < 2500; step++ {
		k := randKey()
		op := rng.Intn(5)
		v := fmt.Sprintf("v%d", step)
		for _, s := range systems {
			switch op {
			case 0, 1:
				existed, err := s.idx.Insert(k, []byte(v))
				if err != nil {
					t.Fatalf("step %d %s insert: %v", step, s.name, err)
				}
				if _, want := oracle[string(k)]; existed != want {
					t.Fatalf("step %d %s insert existed=%v want %v", step, s.name, existed, want)
				}
			case 2:
				ok, err := s.idx.Delete(k)
				if err != nil {
					t.Fatalf("step %d %s delete: %v", step, s.name, err)
				}
				if _, want := oracle[string(k)]; ok != want {
					t.Fatalf("step %d %s delete ok=%v want %v", step, s.name, ok, want)
				}
			case 3:
				ok, err := s.idx.Update(k, []byte(v))
				if err != nil {
					t.Fatalf("step %d %s update: %v", step, s.name, err)
				}
				if _, want := oracle[string(k)]; ok != want {
					t.Fatalf("step %d %s update ok=%v want %v", step, s.name, ok, want)
				}
			default:
				got, ok, err := s.idx.Search(k)
				if err != nil {
					t.Fatalf("step %d %s search: %v", step, s.name, err)
				}
				want, wantOK := oracle[string(k)]
				if ok != wantOK || (ok && string(got) != want) {
					t.Fatalf("step %d %s search %q = %q,%v want %q,%v",
						step, s.name, k, got, ok, want, wantOK)
				}
			}
		}
		// Mirror into the oracle after all systems executed.
		switch op {
		case 0, 1:
			oracle[string(k)] = v
		case 2:
			delete(oracle, string(k))
		case 3:
			if _, present := oracle[string(k)]; present {
				oracle[string(k)] = v
			}
		}
	}
	// Full-state equivalence via scans.
	var images []string
	for i, s := range systems {
		kvs, err := s.idx.ScanN([]byte{0}, 0)
		if err != nil {
			t.Fatalf("%s scan: %v", s.name, err)
		}
		img := ""
		for _, kv := range kvs {
			img += fmt.Sprintf("%q=%q;", kv.Key, kv.Value)
		}
		images = append(images, img)
		if len(kvs) != len(oracle) {
			t.Fatalf("%s holds %d keys, oracle %d", s.name, len(kvs), len(oracle))
		}
		_ = scanners[i]
	}
	if images[0] != images[1] || images[1] != images[2] {
		t.Fatal("systems diverged in final state")
	}
}

// TestPipelineSpeedup is the issue-depth acceptance criterion: YCSB-C
// with a warm filter must run at least 1.5x faster (virtual time) at
// depth 8 than at depth 1, with fewer round trips per op, because the
// concurrent ops' same-stage verbs share doorbell batches.
func TestPipelineSpeedup(t *testing.T) {
	cfg := smallConfig(dataset.U64)
	cfg.Keys = 10_000
	cfg.Workers = 4
	cfg.OpsPerWorker = 400
	cl, err := NewCluster(Sphinx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load(0); err != nil {
		t.Fatal(err)
	}
	run := func(depth int) Result {
		cl.Cfg.Depth = depth
		r, err := cl.Run(ycsb.WorkloadC, 0, 0)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if r.Depth != depth {
			t.Fatalf("result depth = %d, want %d", r.Depth, depth)
		}
		return r
	}
	d1 := run(1)
	d8 := run(8)
	speedup := d8.ThroughputMops / d1.ThroughputMops
	if speedup < 1.5 {
		t.Errorf("depth-8 speedup = %.2fx (%.3f vs %.3f Mops), want >= 1.5x",
			speedup, d8.ThroughputMops, d1.ThroughputMops)
	}
	if d8.RoundTripsPerOp >= d1.RoundTripsPerOp {
		t.Errorf("depth-8 RT/op %.2f not below depth-1 %.2f",
			d8.RoundTripsPerOp, d1.RoundTripsPerOp)
	}
	t.Logf("depth-8 speedup %.2fx, RT/op %.2f -> %.2f", speedup, d1.RoundTripsPerOp, d8.RoundTripsPerOp)
}

// TestPipelineSweepRuns exercises the experiment end to end at tiny
// scale, including the JSON artifact it feeds.
func TestPipelineSweepRuns(t *testing.T) {
	cfg := smallConfig(dataset.U64)
	var buf bytes.Buffer
	results, err := PipelineSweep(cfg, []int{1, 4}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 { // C and A at two depths each
		t.Fatalf("got %d results, want 4", len(results))
	}
	if !strings.Contains(buf.String(), "C/d4") {
		t.Errorf("sweep output missing depth row:\n%s", buf.String())
	}
	rep := NewJSONReport("pipeline", cfg)
	rep.Results = results
	var out bytes.Buffer
	if err := rep.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if back.Experiment != "pipeline" || len(back.Results) != 4 {
		t.Errorf("round-tripped report: experiment=%q results=%d", back.Experiment, len(back.Results))
	}
	if back.Results[1].Depth != 4 || back.Results[1].ThroughputMops <= back.Results[0].ThroughputMops {
		t.Errorf("depth-4 row %+v not faster than depth-1 %+v", back.Results[1], back.Results[0])
	}
}
