package bench

import "testing"

// TestSkewGateRequiresGatePoint pins the fail-closed contract of the
// skew report: a custom theta sweep that omits the θ≈0.99 gate point
// cannot pass — the speedup/imbalance gate was never evaluated, so a
// green verdict would assert nothing beyond reconciliation.
func TestSkewGateRequiresGatePoint(t *testing.T) {
	yes := true
	rep := &SkewReport{Gate: SkewSpeedupGate, Points: []SkewPoint{
		{Theta: 0, Speedup: 1.0, HotReconciled: &yes},
		{Theta: 1.2, Speedup: 3.0, BaseImbalance: 5, HotImbalance: 2, HotReconciled: &yes},
	}}
	if gated := rep.evaluate(); gated || rep.Pass {
		t.Errorf("sweep without theta~0.99: gated=%v pass=%v, want false/false", gated, rep.Pass)
	}
}

// TestSkewGateEvaluates covers the gate point present in both verdicts:
// clearing the speedup and imbalance thresholds passes, missing the
// speedup threshold fails.
func TestSkewGateEvaluates(t *testing.T) {
	yes := true
	pass := &SkewReport{Gate: SkewSpeedupGate, Points: []SkewPoint{
		{Theta: 0.99, Speedup: 2.0, BaseImbalance: 5, HotImbalance: 2, HotReconciled: &yes},
	}}
	if gated := pass.evaluate(); !gated || !pass.Pass {
		t.Errorf("passing sweep: gated=%v pass=%v, want true/true", gated, pass.Pass)
	}
	if pass.SpeedupAt099 != 2.0 {
		t.Errorf("SpeedupAt099 = %v, want 2.0", pass.SpeedupAt099)
	}
	fail := &SkewReport{Gate: SkewSpeedupGate, Points: []SkewPoint{
		{Theta: 0.99, Speedup: 1.1, BaseImbalance: 5, HotImbalance: 2, HotReconciled: &yes},
	}}
	if gated := fail.evaluate(); !gated || fail.Pass {
		t.Errorf("slow sweep: gated=%v pass=%v, want true/false", gated, fail.Pass)
	}
}
