package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"sphinx/internal/core"
	"sphinx/internal/fabric"
)

// FailoverReport is the MN-loss chaos experiment's result: did killing a
// memory node mid-run lose any acknowledged write, how much did the tail
// degrade, and did online repair restore full replication while the
// cluster kept serving. The CI chaos gate reads LostAckedWrites and
// UnderReplicatedFinal.
type FailoverReport struct {
	System      string `json:"system"`
	MNs         int    `json:"mns"`
	Replication int    `json:"replication"`
	Workers     int    `json:"workers"`
	KilledNode  int    `json:"killed_node"`

	// Durability: every write acknowledged to a worker (before or after
	// the kill) is re-read in the verification phase. A lost write is a
	// verified read that found nothing; a wrong value is a verified read
	// that found a stale value. Both must be zero.
	AckedWrites     uint64 `json:"acked_writes"`
	VerifiedReads   uint64 `json:"verified_reads"`
	LostAckedWrites uint64 `json:"lost_acked_writes"`
	WrongValueReads uint64 `json:"wrong_value_reads"`

	// Latency split at the kill: the post-kill window includes the
	// breaker's discovery cost and every failover read, so its tail shows
	// the degradation the paper's availability story must bound.
	PreKillOps    uint64  `json:"pre_kill_ops"`
	PostKillOps   uint64  `json:"post_kill_ops"`
	PreKillP50Us  float64 `json:"pre_kill_p50_us"`
	PreKillP99Us  float64 `json:"pre_kill_p99_us"`
	PostKillP50Us float64 `json:"post_kill_p50_us"`
	PostKillP99Us float64 `json:"post_kill_p99_us"`
	// MaxPostKillUs is the single worst post-kill operation — it bounds
	// the one-shot failover decision latency (discovery + replica read).
	MaxPostKillUs float64 `json:"max_post_kill_us"`

	// Fault-tolerance counters aggregated across workers.
	Failovers       uint64 `json:"failovers"`
	DegradedPuts    uint64 `json:"degraded_puts"`
	PartialReplicas uint64 `json:"partial_replicas"`
	HealthRejects   uint64 `json:"health_rejects"`

	// Online repair: sweeps until one reported zero deficits, replicas
	// re-published, the final under-replicated gauge (must be 0), and the
	// reads served concurrently with repair (all must have succeeded).
	RepairSweeps         uint64 `json:"repair_sweeps"`
	RepairCopied         uint64 `json:"repair_copied"`
	UnderReplicatedFinal uint64 `json:"under_replicated_final"`
	ReadsDuringRepair    uint64 `json:"reads_during_repair"`
}

// ackedWrite is one worker's record of an acknowledged write: the value
// the cluster promised to hold for the key.
type ackedWrite struct {
	key   []byte
	value []byte
}

// Failover is the MN-loss chaos experiment: load a replicated Sphinx
// cluster, drive a 50/50 read/update workload over per-worker key
// partitions (unique value per write, so verification detects silent
// loss), kill one memory node halfway through, and require that every
// acknowledged write stays readable, that reads fail over in one
// decision, and that repair sweeps restore full replication while a
// reader keeps being served.
func Failover(cfg Config, out io.Writer) (*FailoverReport, error) {
	if cfg.Replication < 2 {
		cfg.Replication = core.DefaultReplication
	}
	cfg = cfg.withDefaults()
	if cfg.MNs < 3 {
		return nil, fmt.Errorf("failover: need >= 3 memory nodes, have %d", cfg.MNs)
	}
	fmt.Fprintf(out, "# Failover — kill 1 of %d MNs mid-run, R=%d, dataset=%v keys=%d workers=%d\n",
		cfg.MNs, cfg.Replication, cfg.Dataset, cfg.Keys, cfg.Workers)
	cl, err := NewCluster(Sphinx, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Load(0); err != nil {
		return nil, fmt.Errorf("failover load: %w", err)
	}

	rep := &FailoverReport{
		System:      Sphinx.String(),
		MNs:         cfg.MNs,
		Replication: cfg.Replication,
		Workers:     cfg.Workers,
	}

	// The victim is the ring owner of the first key, so the kill is
	// guaranteed to sever live tree paths and hash entries.
	nodes := cl.Ring.Nodes()
	victim := cl.Ring.OwnerKey(cl.keys[0])
	for i, n := range nodes {
		if n == victim {
			rep.KilledNode = i
		}
	}

	workers := cfg.Workers
	ops := cfg.OpsPerWorker
	killAt := ops / 2
	var killOnce sync.Once
	var killed uint32

	type workerOut struct {
		acked    []ackedWrite
		preLats  []int64
		postLats []int64
		stats    core.Stats
		fstats   fabric.Stats
	}
	outs := make([]workerOut, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx, fc := cl.NewIndex(w % cfg.CNs)
			si := idx.(sphinxIndex)
			// Partitioned key shard: single writer per key, so the last
			// acknowledged value per key is the exact expected value.
			shard := make([][]byte, 0, len(cl.keys)/workers+1)
			for i := w; i < len(cl.keys); i += workers {
				shard = append(shard, cl.keys[i])
			}
			lastAcked := make(map[int][]byte, len(shard))
			o := &outs[w]
			rng := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(w+1)
			for i := 0; i < ops; i++ {
				if w == 0 && i == killAt {
					killOnce.Do(func() {
						cl.F.KillNode(victim)
						atomic.StoreUint32(&killed, 1)
					})
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				ki := int(rng>>33) % len(shard)
				key := shard[ki]
				start := fc.Clock()
				if rng&1 == 0 {
					v, ok, err := idx.Search(key)
					if err != nil {
						errCh <- fmt.Errorf("worker %d read op %d: %w", w, i, err)
						return
					}
					if want, wrote := lastAcked[ki]; wrote && (!ok || !bytes.Equal(v, want)) {
						errCh <- fmt.Errorf("worker %d op %d: read-your-write violated for %q", w, i, key)
						return
					}
				} else {
					val := []byte(fmt.Sprintf("w%d-op%d", w, i))
					if _, err := idx.Update(key, val); err != nil {
						errCh <- fmt.Errorf("worker %d update op %d: %w", w, i, err)
						return
					}
					// Acknowledged: the cluster must never lose it.
					lastAcked[ki] = val
				}
				lat := fc.Clock() - start
				if atomic.LoadUint32(&killed) == 1 {
					o.postLats = append(o.postLats, lat)
				} else {
					o.preLats = append(o.preLats, lat)
				}
			}
			for ki, val := range lastAcked {
				o.acked = append(o.acked, ackedWrite{key: shard[ki], value: val})
			}
			o.stats = si.c.Stats()
			o.fstats = fc.Stats()
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	var pre, post []int64
	for w := range outs {
		o := &outs[w]
		pre = append(pre, o.preLats...)
		post = append(post, o.postLats...)
		rep.AckedWrites += uint64(len(o.acked))
		rep.Failovers += o.stats.Failovers
		rep.DegradedPuts += o.stats.DegradedPuts
		rep.PartialReplicas += o.stats.PartialReplicas
		rep.HealthRejects += o.fstats.HealthRejects
	}
	rep.PreKillOps = uint64(len(pre))
	rep.PostKillOps = uint64(len(post))
	rep.PreKillP50Us, rep.PreKillP99Us = latPercentiles(pre)
	rep.PostKillP50Us, rep.PostKillP99Us = latPercentiles(post)
	for _, l := range post {
		if us := float64(l) / 1e6; us > rep.MaxPostKillUs {
			rep.MaxPostKillUs = us
		}
	}

	// Verification: a fresh client re-reads every acknowledged write.
	vidx, _ := cl.NewIndex(0)
	for w := range outs {
		for _, aw := range outs[w].acked {
			v, ok, err := vidx.Search(aw.key)
			rep.VerifiedReads++
			switch {
			case err != nil || !ok:
				rep.LostAckedWrites++
			case !bytes.Equal(v, aw.value):
				rep.WrongValueReads++
			}
		}
	}

	// Online repair: sweep until a pass reports zero deficits, reading
	// live keys between sweeps to prove the cluster serves throughout.
	ridx, _ := cl.NewIndex(1 % cfg.CNs)
	rc := ridx.(sphinxIndex).c
	reader, _ := cl.NewIndex(2 % cfg.CNs)
	for sweep := 0; sweep < 10; sweep++ {
		srep, err := rc.RepairSweep()
		if err != nil {
			return nil, fmt.Errorf("repair sweep %d: %w", sweep, err)
		}
		for i := 0; i < 32 && i < len(cl.keys); i++ {
			if _, _, err := reader.Search(cl.keys[i*(len(cl.keys)/32+1)%len(cl.keys)]); err != nil {
				return nil, fmt.Errorf("read during repair sweep %d: %w", sweep, err)
			}
			rep.ReadsDuringRepair++
		}
		if srep.Deficits == 0 {
			break
		}
	}
	if ft := cl.sphinxShared.FT; ft != nil {
		rep.UnderReplicatedFinal = ft.UnderReplicated()
		rep.RepairSweeps, rep.RepairCopied = ft.RepairTotals()
	}

	fmt.Fprintf(out, "killed MN %d at op %d/%d per worker\n", rep.KilledNode, killAt, ops)
	fmt.Fprintf(out, "acked writes %d, verified %d: lost %d, wrong %d\n",
		rep.AckedWrites, rep.VerifiedReads, rep.LostAckedWrites, rep.WrongValueReads)
	fmt.Fprintf(out, "latency p50/p99 us: pre-kill %.2f/%.2f  post-kill %.2f/%.2f  (max post %.2f)\n",
		rep.PreKillP50Us, rep.PreKillP99Us, rep.PostKillP50Us, rep.PostKillP99Us, rep.MaxPostKillUs)
	fmt.Fprintf(out, "failovers %d  degraded puts %d  partial replicas %d  breaker rejects %d\n",
		rep.Failovers, rep.DegradedPuts, rep.PartialReplicas, rep.HealthRejects)
	fmt.Fprintf(out, "repair: %d sweeps, %d replicas copied, under-replicated %d, %d reads served during repair\n",
		rep.RepairSweeps, rep.RepairCopied, rep.UnderReplicatedFinal, rep.ReadsDuringRepair)
	return rep, nil
}

// latPercentiles returns the p50 and p99 of a latency sample in
// microseconds (0, 0 for an empty sample).
func latPercentiles(lats []int64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := make([]int64, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2]) / 1e6, float64(s[len(s)*99/100]) / 1e6
}
