package bench

import (
	"fmt"
	"io"
	"runtime"

	"sphinx/internal/core"
	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
	"sphinx/internal/ycsb"
)

// Fig4 regenerates the paper's Fig. 4 for one dataset: YCSB throughput of
// LOAD, A, B, C, D, E for each compared system. The LOAD measurement is
// the dataset population itself; the remaining workloads run against the
// loaded index with CN caches warm, as on the testbed.
func Fig4(cfg Config, systems []System, out io.Writer) ([]Result, error) {
	if len(systems) == 0 {
		systems = PaperSystems
	}
	fmt.Fprintf(out, "# Fig. 4 — YCSB throughput, dataset=%v keys=%d workers=%d\n",
		cfg.withDefaults().Dataset, cfg.withDefaults().Keys, cfg.withDefaults().Workers)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, sys := range systems {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			return nil, err
		}
		load, err := cl.Load(0)
		if err != nil {
			return nil, fmt.Errorf("%v load: %w", sys, err)
		}
		results = append(results, load)
		fmt.Fprintln(out, load.Row())
		for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE} {
			r, err := cl.Run(w, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("%v workload %s: %w", sys, w.Name, err)
			}
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
		}
	}
	return results, nil
}

// Fig5Workers is the paper's worker sweep (6–192 across 3 CNs).
var Fig5Workers = []int{6, 12, 24, 48, 96, 192}

// Fig5 regenerates the paper's Fig. 5 for one dataset: the
// throughput–latency curve of YCSB-A as the worker count grows. Each
// system is loaded once and swept.
func Fig5(cfg Config, systems []System, workerSteps []int, out io.Writer) ([]Result, error) {
	if len(systems) == 0 {
		systems = PaperSystems
	}
	if len(workerSteps) == 0 {
		workerSteps = Fig5Workers
	}
	fmt.Fprintf(out, "# Fig. 5 — YCSB-A throughput vs latency, dataset=%v keys=%d\n",
		cfg.withDefaults().Dataset, cfg.withDefaults().Keys)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, sys := range systems {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("%v load: %w", sys, err)
		}
		for _, workers := range workerSteps {
			r, err := cl.Run(ycsb.WorkloadA, workers, 0)
			if err != nil {
				return nil, fmt.Errorf("%v workers=%d: %w", sys, workers, err)
			}
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
		}
	}
	return results, nil
}

// Fig6 regenerates the paper's Fig. 6: MN-side memory usage after loading
// the dataset into ART, Sphinx and SMART. The paper's two headline numbers
// fall out directly: the inner-node hash table's overhead over the plain
// tree (3.3% u64 / 4.9% email at paper scale) and SMART's multiple of the
// original ART (2.1–3.0×).
func Fig6(cfg Config, out io.Writer) ([]MemUsage, error) {
	fmt.Fprintf(out, "# Fig. 6 — MN-side memory, dataset=%v keys=%d\n",
		cfg.withDefaults().Dataset, cfg.withDefaults().Keys)
	fmt.Fprintf(out, "%-14s %12s %12s %12s %12s %10s %10s\n",
		"system", "inner(B)", "leaf(B)", "hash(B)", "total(B)", "INHT ovh", "vs ART")
	var artTotal uint64
	var usages []MemUsage
	for _, sys := range []System{ART, Sphinx, SMART} {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("%v load: %w", sys, err)
		}
		mu, err := cl.MemoryUsage()
		if err != nil {
			return nil, err
		}
		usages = append(usages, mu)
		if sys == ART {
			artTotal = mu.IndexBytes()
		}
		inhtOvh := "-"
		if sys == Sphinx {
			inhtOvh = fmt.Sprintf("%.1f%%", 100*float64(mu.HashBytes())/float64(mu.IndexBytes()))
		}
		vsART := "-"
		if artTotal > 0 {
			vsART = fmt.Sprintf("%.2fx", float64(mu.IndexBytes())/float64(artTotal))
		}
		fmt.Fprintf(out, "%-14s %12d %12d %12d %12d %10s %10s\n",
			mu.System, mu.ByClass[1], mu.ByClass[2], mu.ByClass[3], mu.Total, inhtOvh, vsART)
	}
	return usages, nil
}

// Ablation quantifies Sphinx's design choices (DESIGN.md experiment
// index): the filter cache (round trips and bytes saved vs hash-only),
// doorbell batching, and filter capacity pressure.
func Ablation(cfg Config, out io.Writer) ([]Result, error) {
	systems := []System{Sphinx, SphinxNoSFC, SphinxNoBatch, SphinxNoDirCache, SphinxTinySFC, SphinxTinyRand}
	fmt.Fprintf(out, "# Ablation — Sphinx variants, dataset=%v keys=%d workers=%d\n",
		cfg.withDefaults().Dataset, cfg.withDefaults().Keys, cfg.withDefaults().Workers)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, sys := range systems {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("%v load: %w", sys, err)
		}
		for _, w := range []ycsb.Workload{ycsb.WorkloadC, ycsb.WorkloadA} {
			r, err := cl.Run(w, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("%v workload %s: %w", sys, w.Name, err)
			}
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
			if d := r.Diag(); d != "" {
				fmt.Fprintln(out, d)
			}
		}
	}
	return results, nil
}

// TreeDepthScaling measures how Sphinx's advantage over the naive ART
// grows with dataset size (tree depth). Not a paper figure, but the
// bridge between this repository's reduced-scale runs and the paper's
// 60 M-key factors: Sphinx's warm path is 3 round trips at any depth,
// while the baseline pays one per level, so the throughput ratio tracks
// tree depth. (The `sphinxbench treedepth` experiment; `scaling` is the
// CN-multicore worker sweep, WorkerScaling.)
func TreeDepthScaling(base Config, keySteps []int, out io.Writer) ([]Result, error) {
	if len(keySteps) == 0 {
		keySteps = []int{10_000, 50_000, 250_000}
	}
	fmt.Fprintf(out, "# Tree depth — Sphinx vs ART on YCSB-C as the tree deepens, dataset=%v\n",
		base.withDefaults().Dataset)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, keys := range keySteps {
		cfg := base
		cfg.Keys = keys
		var pair [2]Result
		for i, sys := range []System{Sphinx, ART} {
			cl, err := NewCluster(sys, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := cl.Load(0); err != nil {
				return nil, fmt.Errorf("%v keys=%d load: %w", sys, keys, err)
			}
			r, err := cl.Run(ycsb.WorkloadC, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("%v keys=%d: %w", sys, keys, err)
			}
			r.Workload = fmt.Sprintf("C/%dk", keys/1000)
			pair[i] = r
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
		}
		fmt.Fprintf(out, "    keys=%d: Sphinx/ART throughput %.2fx, ART depth cost %.2f RT/op vs Sphinx %.2f\n",
			keys, pair[0].ThroughputMops/pair[1].ThroughputMops,
			pair[1].RoundTripsPerOp, pair[0].RoundTripsPerOp)
	}
	return results, nil
}

// ScalingWorkers is the default worker sweep of the CN-multicore scaling
// experiment.
var ScalingWorkers = []int{1, 2, 4, 8, 16}

// WorkerScaling measures CN-side multicore scalability: wall-clock YCSB-C
// throughput as the worker count grows, for the lock-free Succinct Filter
// Cache against the retained mutex-serialized baseline. The fabric is
// exact-in-data but virtual-in-time, so virtual throughput is identical
// for both modes; any separation between the two rows is pure CN-side CPU
// contention — the per-CN shared filter is the one structure every worker
// of a CN touches on every operation, and with a mutex even the
// read-dominant warm path serializes (Contains mutates the hotness bit).
// ParallelEfficiency is each point's per-worker wall throughput relative
// to the sweep's first point; perfect scaling holds it at 1.0.
//
// Wall-clock numbers depend on the machine (GOMAXPROCS is printed in the
// header); on a single-core host both modes stay near-flat and only the
// mutex's queueing overhead separates them.
func WorkerScaling(base Config, workerSteps []int, out io.Writer) ([]Result, error) {
	if len(workerSteps) == 0 {
		workerSteps = ScalingWorkers
	}
	cfg := base.withDefaults()
	fmt.Fprintf(out, "# Scaling — CN multicore: YCSB-C wall-clock throughput vs workers, dataset=%v keys=%d GOMAXPROCS=%d\n",
		cfg.Dataset, cfg.Keys, runtime.GOMAXPROCS(0))
	fmt.Fprintf(out, "%-16s %8s %8s %14s %14s %12s\n",
		"system", "sfc", "workers", "wall(Mops)", "virt(Mops)", "efficiency")
	var results []Result
	best := map[core.FilterCacheMode]Result{}
	for _, mode := range []core.FilterCacheMode{core.FilterLockFree, core.FilterMutex} {
		mcfg := base
		mcfg.SFCMode = mode
		name := "Sphinx"
		if mode == core.FilterMutex {
			name = "Sphinx-mutexSFC"
		}
		cl, err := NewCluster(Sphinx, mcfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("%s load: %w", name, err)
		}
		var basePerWorker float64
		for _, wkr := range workerSteps {
			if wkr < 1 {
				return nil, fmt.Errorf("scaling: invalid worker count %d", wkr)
			}
			r, err := cl.Run(ycsb.WorkloadC, wkr, 0)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", name, wkr, err)
			}
			r.System = name
			r.Workload = fmt.Sprintf("C/w%d", wkr)
			perWorker := r.WallMops / float64(wkr)
			if wkr == workerSteps[0] {
				basePerWorker = perWorker
			}
			if basePerWorker > 0 {
				r.ParallelEfficiency = perWorker / basePerWorker
			}
			results = append(results, r)
			best[mode] = r
			fmt.Fprintf(out, "%-16s %8s %8d %14.3f %14.3f %12.2f\n",
				name, mode, wkr, r.WallMops, r.ThroughputMops, r.ParallelEfficiency)
		}
	}
	lf, mx := best[core.FilterLockFree], best[core.FilterMutex]
	if mx.WallMops > 0 {
		fmt.Fprintf(out, "    at %d workers: lock-free %.2fx mutex wall throughput (efficiency %.2f vs %.2f)\n",
			lf.Workers, lf.WallMops/mx.WallMops, lf.ParallelEfficiency, mx.ParallelEfficiency)
	}
	return results, nil
}

// ValueSweep measures YCSB-A across value sizes (the paper fixes 64 B;
// this extension shows where the in-place update protocol's single-WRITE
// saving and the speculative leaf read interact with payload size).
func ValueSweep(base Config, sizes []int, out io.Writer) ([]Result, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 64, 256, 1024}
	}
	fmt.Fprintf(out, "# Value sweep — Sphinx YCSB-A across value sizes, dataset=%v keys=%d\n",
		base.withDefaults().Dataset, base.withDefaults().Keys)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	for _, size := range sizes {
		cfg := base
		cfg.ValueSize = size
		cl, err := NewCluster(Sphinx, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("valsize=%d load: %w", size, err)
		}
		r, err := cl.Run(ycsb.WorkloadA, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("valsize=%d: %w", size, err)
		}
		r.Workload = fmt.Sprintf("A/%dB", size)
		results = append(results, r)
		fmt.Fprintln(out, r.Row())
	}
	return results, nil
}

// PipelineDepths is the default issue-depth sweep.
var PipelineDepths = []int{1, 2, 4, 8, 16}

// PipelineSweep measures pipelined session throughput: Sphinx under
// YCSB-C (warm filter) and YCSB-A as the per-worker issue depth grows.
// At depth 1 each worker is the sequential client of the other figures;
// at depth d, same-stage verbs of the d in-flight ops share doorbell
// batches, so RT/op falls toward 3/d windows and virtual-time
// throughput rises until NIC contention bites. The depth-8-vs-1 speedup
// on YCSB-C is this repository's pipelining acceptance number.
func PipelineSweep(base Config, depths []int, out io.Writer) ([]Result, error) {
	if len(depths) == 0 {
		depths = PipelineDepths
	}
	cfg := base.withDefaults()
	fmt.Fprintf(out, "# Pipeline — Sphinx issue-depth sweep, dataset=%v keys=%d workers=%d\n",
		cfg.Dataset, cfg.Keys, cfg.Workers)
	fmt.Fprintln(out, ResultHeader())
	cl, err := NewCluster(Sphinx, base)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Load(0); err != nil {
		return nil, fmt.Errorf("pipeline load: %w", err)
	}
	var results []Result
	baseline := map[string]Result{}
	for _, w := range []ycsb.Workload{ycsb.WorkloadC, ycsb.WorkloadA} {
		for _, d := range depths {
			cl.Cfg.Depth = d
			r, err := cl.Run(w, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("pipeline %s depth=%d: %w", w.Name, d, err)
			}
			r.Workload = fmt.Sprintf("%s/d%d", w.Name, d)
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
			if d == depths[0] {
				baseline[w.Name] = r
			} else if b := baseline[w.Name]; b.ThroughputMops > 0 {
				fmt.Fprintf(out, "    %s depth %d: %.2fx vs depth %d (%.2f RT/op vs %.2f)\n",
					w.Name, d, r.ThroughputMops/b.ThroughputMops, b.Depth,
					r.RoundTripsPerOp, b.RoundTripsPerOp)
			}
		}
	}
	return results, nil
}

// FastpathDepths is the issue-depth sweep the fastpath experiment adds
// for the LAC-on system after the depth-1 ablation pair, showing how
// speculative reads coalesce into shared pipeline flushes.
var FastpathDepths = []int{4, 8}

// Fastpath measures the speculative 1-RT warm-read path (DESIGN.md
// §5.12): YCSB-C with the run split into a warmup pass (the leaf-address
// cache learning addresses) and a steady-state pass (the converged fast
// path), for Sphinx against the Sphinx-noLAC ablation. The acceptance
// numbers are the steady-state depth-1 RT/op — well under 2.0 with the
// LAC on, ≈3.0 without — and the lac_reconciled verdict: every
// speculative round trip accounted as exactly one hit or refute, and the
// four read stages summing to the fabric's own counter. Metrics are
// forced on (the verdict needs them); the warm split is the experiment's
// whole point, so Config.Warm is implied.
func Fastpath(base Config, out io.Writer) ([]Result, error) {
	cfg := base
	cfg.Warm = true
	cfg.Metrics = true
	cfg.Depth = 1
	d := cfg.withDefaults()
	fmt.Fprintf(out, "# Fastpath — speculative warm reads: YCSB-C warmup/steady, LAC on vs off, dataset=%v keys=%d workers=%d\n",
		d.Dataset, d.Keys, d.Workers)
	fmt.Fprintln(out, ResultHeader())
	var results []Result
	steady := map[System]Result{}
	for _, sys := range []System{Sphinx, SphinxNoLAC} {
		cl, err := NewCluster(sys, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := cl.Load(0); err != nil {
			return nil, fmt.Errorf("%v load: %w", sys, err)
		}
		warmup, st, err := cl.RunPhases(ycsb.WorkloadC, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("%v fastpath: %w", sys, err)
		}
		for _, r := range []Result{warmup, st} {
			r.Workload = "C/" + r.Phase
			results = append(results, r)
			fmt.Fprintln(out, r.Row())
			if diag := fastpathDiag(r); diag != "" {
				fmt.Fprintln(out, diag)
			}
		}
		steady[sys] = st
		if sys == Sphinx {
			// Depth sweep on the now fully warm cache: speculative reads
			// of concurrent ops share doorbell flushes, so RT/op falls
			// below even the 1-RT sequential fast path.
			for _, dep := range FastpathDepths {
				cl.Cfg.Depth = dep
				r, err := cl.Run(ycsb.WorkloadC, 0, 0)
				if err != nil {
					return nil, fmt.Errorf("%v fastpath depth=%d: %w", sys, dep, err)
				}
				r.Workload = fmt.Sprintf("C/d%d", dep)
				r.Phase = "steady"
				results = append(results, r)
				fmt.Fprintln(out, r.Row())
				if diag := fastpathDiag(r); diag != "" {
					fmt.Fprintln(out, diag)
				}
			}
			cl.Cfg.Depth = 1
		}
	}
	on, off := steady[Sphinx], steady[SphinxNoLAC]
	if off.ThroughputMops > 0 {
		fmt.Fprintf(out, "    steady YCSB-C depth 1: LAC on %.2f RT/op vs off %.2f (%.2fx throughput, p50 %.2f vs %.2f us)\n",
			on.RoundTripsPerOp, off.RoundTripsPerOp,
			on.ThroughputMops/off.ThroughputMops, on.P50LatUs, off.P50LatUs)
	}
	return results, nil
}

// SkewThetas is the default zipfian sweep of the skew experiment: truly
// uniform, the paper's default skew, and a pathological hot spot.
var SkewThetas = []float64{ThetaUniform, 0.99, 1.2}

// SkewSpeedupGate is the skew experiment's acceptance threshold: at
// θ=0.99 the hot-replicated system must deliver at least this multiple
// of the unreplicated baseline's steady-state throughput.
const SkewSpeedupGate = 1.5

// SkewPoint is one θ of the sweep: steady-state throughput of the
// unreplicated baseline vs the hot-replicated system, their per-MN
// round-trip imbalance scalars, and the hot layer's trust-but-verify
// verdict.
type SkewPoint struct {
	Theta         float64 `json:"theta"`
	BaseMops      float64 `json:"base_mops"`
	HotMops       float64 `json:"hot_mops"`
	Speedup       float64 `json:"speedup"`
	BaseImbalance float64 `json:"base_imbalance"`
	HotImbalance  float64 `json:"hot_imbalance"`
	HotReconciled *bool   `json:"hot_reconciled,omitempty"`
}

// SkewReport is the skew experiment's verdict: the sweep points plus the
// pass/fail of the θ=0.99 gates (speedup ≥ Gate, imbalance flattened,
// every point's hot reads reconciled).
type SkewReport struct {
	Gate         float64     `json:"gate"`
	Points       []SkewPoint `json:"points"`
	SpeedupAt099 float64     `json:"speedup_at_099,omitempty"`
	Pass         bool        `json:"pass"`
}

// skewNet is the skew experiment's network model: the default fabric
// with a 10× per-byte cost (2.5 GB/s-class NICs). With 4 KiB values this
// makes the value-read round trip's NIC occupancy the dominant cost, so
// a skewed key distribution genuinely saturates the hot key's home MN —
// the regime the hot-replication layer exists for. At the default
// 25 GB/s the simulated NICs never queue at this scale and every
// placement looks flat.
func skewNet(base fabric.Config) fabric.Config {
	if base == (fabric.Config{}) {
		base = fabric.DefaultConfig()
	}
	base.PerByteFs *= 10
	return base
}

// Skew measures hot-spot tolerance under zipfian skew (DESIGN.md §5.13):
// read-only YCSB-C swept across request skews, for the unreplicated
// Sphinx baseline against Sphinx-hot (hotness-driven read replication
// with contention-aware replica choice). The cluster shape is forced to
// the saturation regime: a small key population with 4 KiB values on
// many slow-NIC MNs, so the baseline's throughput collapses onto the
// hottest key's home NIC as θ grows while the replicated system spreads
// the same reads over the replica set. Each run is split warmup/steady
// (the tracker must first learn the hot set); gates are evaluated on the
// steady pass. Metrics are forced on: the per-MN shares feed the
// imbalance scalar and the hot section carries the reconciliation
// verdict.
func Skew(base Config, thetas []float64, out io.Writer) ([]Result, *SkewReport, error) {
	if len(thetas) == 0 {
		thetas = SkewThetas
	}
	cfg := base
	cfg.Keys = 10_000
	cfg.ValueSize = 4096
	if cfg.MNs < 8 {
		cfg.MNs = 16
	}
	if cfg.Workers < 48 {
		cfg.Workers = 48
	}
	cfg.Depth = 1
	cfg.Metrics = true
	cfg.Warm = true
	cfg.Net = skewNet(base.Net)
	d := cfg.withDefaults()
	fmt.Fprintf(out, "# Skew — hot-spot tolerance: YCSB-C theta sweep, replicated vs unreplicated, dataset=%v keys=%d mns=%d workers=%d value=%dB\n",
		d.Dataset, d.Keys, d.MNs, d.Workers, d.ValueSize)
	fmt.Fprintln(out, ResultHeader())
	rep := &SkewReport{Gate: SkewSpeedupGate}
	var results []Result
	for _, theta := range thetas {
		tcfg := cfg
		tcfg.Theta = theta
		if theta == 0 {
			tcfg.Theta = ThetaUniform
		}
		eff := theta
		if eff < 0 {
			eff = 0
		}
		pt := SkewPoint{Theta: eff}
		for _, sys := range []System{Sphinx, SphinxHot} {
			cl, err := NewCluster(sys, tcfg)
			if err != nil {
				return nil, nil, err
			}
			if _, err := cl.Load(0); err != nil {
				return nil, nil, fmt.Errorf("%v theta=%.2f load: %w", sys, eff, err)
			}
			warmup, steady, err := cl.RunPhases(ycsb.WorkloadC, 0, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("%v theta=%.2f: %w", sys, eff, err)
			}
			for _, r := range []Result{warmup, steady} {
				r.Workload = fmt.Sprintf("t%.2f/%c", eff, r.Phase[0])
				results = append(results, r)
				fmt.Fprintln(out, r.Row())
				if diag := skewDiag(r); diag != "" {
					fmt.Fprintln(out, diag)
				}
			}
			if sys == SphinxHot {
				pt.HotMops = steady.ThroughputMops
				pt.HotImbalance = steady.MNImbalance
				if steady.Metrics != nil && steady.Metrics.Hot != nil {
					pt.HotReconciled = steady.Metrics.Hot.HotReconciled
				}
			} else {
				pt.BaseMops = steady.ThroughputMops
				pt.BaseImbalance = steady.MNImbalance
			}
		}
		if pt.BaseMops > 0 {
			pt.Speedup = pt.HotMops / pt.BaseMops
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(out, "    theta=%.2f: replicated %.2fx unreplicated (MN imbalance %.2f -> %.2f, reconciled %s)\n",
			eff, pt.Speedup, pt.BaseImbalance, pt.HotImbalance, verdictString(pt.HotReconciled))
	}
	if rep.evaluate() {
		fmt.Fprintf(out, "    gate: theta=0.99 replicated >= %.1fx unreplicated, imbalance flattened, hot reads reconciled -> pass=%v\n",
			rep.Gate, rep.Pass)
	} else {
		fmt.Fprintf(out, "    gate: sweep has no theta~0.99 point; speedup gate unevaluated -> pass=false\n")
	}
	return results, rep, nil
}

// evaluate fills in the report's Pass/SpeedupAt099 verdict from its
// points: every point's hot reads reconciled, and at θ≈0.99 the
// replicated speedup clears Gate with the imbalance flattened. Returns
// whether a θ≈0.99 point was present at all; without one the speedup
// gate cannot be asserted, so Pass fails closed — a custom sweep must
// include the gate point to be green, not merely avoid it.
func (rep *SkewReport) evaluate() (gated bool) {
	rep.Pass = true
	for _, pt := range rep.Points {
		if pt.HotReconciled == nil || !*pt.HotReconciled {
			rep.Pass = false
		}
		if pt.Theta > 0.98 && pt.Theta < 1.0 {
			gated = true
			rep.SpeedupAt099 = pt.Speedup
			if pt.Speedup < rep.Gate || pt.HotImbalance >= pt.BaseImbalance {
				rep.Pass = false
			}
		}
	}
	if !gated {
		rep.Pass = false
	}
	return gated
}

// verdictString renders a tri-state reconciliation verdict.
func verdictString(v *bool) string {
	switch {
	case v == nil:
		return "n/a"
	case *v:
		return "true"
	default:
		return "FALSE"
	}
}

// skewDiag renders one result's hot-replication section plus its per-MN
// imbalance, or "" when neither is present.
func skewDiag(r Result) string {
	if r.Metrics == nil || r.Metrics.Hot == nil {
		if r.MNImbalance > 0 {
			return fmt.Sprintf("    [mn] imbalance %.2f (busiest/mean RT share over %d nodes)",
				r.MNImbalance, len(r.MNShares))
		}
		return ""
	}
	h := r.Metrics.Hot
	return fmt.Sprintf("    [hot] hits %d  refutes %d  aborts %d  promotes %d  refreshes %d  hit-rate %.1f%%  imbalance %.2f  reconciled %s",
		h.HotHits, h.HotRefutes, h.HotAborts, h.Promotes, h.Refreshes,
		100*h.HitRate, r.MNImbalance, verdictString(h.HotReconciled))
}

// fastpathDiag renders one result's leaf-address-cache section, or ""
// when absent (the noLAC ablation).
func fastpathDiag(r Result) string {
	if r.Metrics == nil || r.Metrics.LAC == nil {
		return ""
	}
	l := r.Metrics.LAC
	verdict := "n/a"
	if l.LACReconciled != nil {
		verdict = "FALSE"
		if *l.LACReconciled {
			verdict = "true"
		}
	}
	return fmt.Sprintf("    [lac] hits %d  misses %d  refutes %d  aborts %d  hit-rate %.1f%%  occupancy %.1f%%  reconciled %s",
		l.SpecHits, l.SpecMisses, l.SpecRefutes, l.SpecAborts,
		100*l.HitRate, 100*l.Occupancy, verdict)
}

// WriteCSV renders results as CSV for external plotting.
func WriteCSV(results []Result, out io.Writer) error {
	if _, err := fmt.Fprintln(out, "system,workload,dataset,workers,ops,tput_mops,avg_us,p50_us,p99_us,rt_per_op,verbs_per_op,bytes_per_op,filter_hit_pct,fp_per_kop,restarts,transients,timeouts,node_down,lock_steals,leaf_breaks,delete_repairs"); err != nil {
		return err
	}
	for _, r := range results {
		if _, err := fmt.Fprintf(out, "%s,%s,%s,%d,%d,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%.2f,%.3f,%d,%d,%d,%d,%d,%d,%d\n",
			r.System, r.Workload, r.Dataset, r.Workers, r.Ops,
			r.ThroughputMops, r.AvgLatUs, r.P50LatUs, r.P99LatUs,
			r.RoundTripsPerOp, r.VerbsPerOp, r.BytesPerOp,
			r.SphinxFilterHitPct, r.SphinxFPPerKOp,
			r.Restarts, r.TransientFaults, r.Timeouts, r.NodeDownRejects,
			r.LockSteals, r.LeafLockBreaks, r.DeleteRepairs); err != nil {
			return err
		}
	}
	return nil
}

// DatasetConfigs returns a config per paper dataset with shared settings.
func DatasetConfigs(base Config) []Config {
	u := base
	u.Dataset = dataset.U64
	e := base
	e.Dataset = dataset.Email
	return []Config{u, e}
}
