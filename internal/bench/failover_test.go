package bench

import (
	"io"
	"testing"

	"sphinx/internal/dataset"
)

// TestFailoverExperimentSmoke runs the MN-loss chaos experiment at reduced
// scale and asserts its acceptance gates: no acknowledged write lost or
// stale, repair converged to zero deficits, and the cluster served reads
// while repairing. (CI runs the same experiment through sphinxbench with
// -race and gates on the JSON report.)
func TestFailoverExperimentSmoke(t *testing.T) {
	cfg := smallConfig(dataset.U64)
	cfg.Keys = 6000
	cfg.OpsPerWorker = 300
	rep, err := Failover(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AckedWrites == 0 || rep.VerifiedReads != rep.AckedWrites {
		t.Errorf("verification incomplete: %+v", rep)
	}
	if rep.LostAckedWrites != 0 {
		t.Errorf("lost %d acked writes", rep.LostAckedWrites)
	}
	if rep.WrongValueReads != 0 {
		t.Errorf("%d stale reads of acked writes", rep.WrongValueReads)
	}
	if rep.UnderReplicatedFinal != 0 {
		t.Errorf("repair did not converge: under-replicated %d after %d sweeps",
			rep.UnderReplicatedFinal, rep.RepairSweeps)
	}
	if rep.RepairCopied == 0 {
		t.Errorf("repair copied no replicas after a kill")
	}
	if rep.ReadsDuringRepair == 0 {
		t.Errorf("no reads served during repair")
	}
	if rep.Failovers == 0 {
		t.Errorf("no failovers recorded after the kill")
	}
	if rep.PostKillOps == 0 || rep.PreKillOps == 0 {
		t.Errorf("latency split empty: pre=%d post=%d", rep.PreKillOps, rep.PostKillOps)
	}
}
