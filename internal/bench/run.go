package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/rart"
	"sphinx/internal/ycsb"
)

// Result is one (system, workload) measurement in the units the paper
// reports: throughput in Mops/s and latency in microseconds, both in
// virtual network time.
type Result struct {
	System   string `json:"system"`
	Workload string `json:"workload"`
	Dataset  string `json:"dataset"`
	Workers  int    `json:"workers"`
	// Depth is the per-worker issue depth the run phase used (1 =
	// sequential clients).
	Depth int `json:"depth"`
	// Phase labels the measurement pass when Config.Warm splits a run into
	// a warmup pass and a steady-state pass over the same workload
	// ("warmup" / "steady"); empty for single-pass runs.
	Phase string `json:"phase,omitempty"`

	Ops            uint64  `json:"ops"`
	ElapsedPs      int64   `json:"elapsed_ps"`
	ThroughputMops float64 `json:"tput_mops"`
	AvgLatUs       float64 `json:"avg_us"`
	P50LatUs       float64 `json:"p50_us"`
	P99LatUs       float64 `json:"p99_us"`

	RoundTripsPerOp float64 `json:"rt_per_op"`
	VerbsPerOp      float64 `json:"verbs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`

	// Wall-clock counterparts of the virtual-time numbers: the phase's
	// real elapsed time and throughput. The virtual clock is deterministic
	// and blind to CN-side CPU work, so lock contention and cache-line
	// ping-pong between workers only ever show up here — the scaling
	// experiment reads these fields. Noisy by nature (real scheduling),
	// unlike everything above.
	WallElapsedNs int64   `json:"wall_ns,omitempty"`
	WallMops      float64 `json:"wall_tput_mops,omitempty"`
	// ParallelEfficiency is set by the scaling sweep: this point's
	// per-worker wall-clock throughput relative to the sweep's first
	// point (1.0 = perfect scaling when the sweep starts at 1 worker).
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`

	// Sphinx-only diagnostics (zero for other systems): how operations
	// were routed and how often the probabilistic machinery misfired.
	SphinxFilterHitPct   float64 `json:"filter_hit_pct,omitempty"`
	SphinxFPPerKOp       float64 `json:"fp_per_kop,omitempty"`
	SphinxRestartsPerKOp float64 `json:"restarts_per_kop,omitempty"`
	SphinxCollisions     uint64  `json:"collisions,omitempty"`

	// Fault and recovery accounting, all systems: nonzero only when a
	// fault plan is active or locks were contended. Restarts counts
	// operation-level re-descents; the rest count injected fabric faults
	// survived and the stuck-lock recovery work performed.
	Restarts        uint64 `json:"restarts,omitempty"`
	TransientFaults uint64 `json:"transients,omitempty"`
	Timeouts        uint64 `json:"timeouts,omitempty"`
	NodeDownRejects uint64 `json:"node_down,omitempty"`
	LockSteals      uint64 `json:"lock_steals,omitempty"`
	LeafLockBreaks  uint64 `json:"leaf_breaks,omitempty"`
	DeleteRepairs   uint64 `json:"delete_repairs,omitempty"`

	// RoundTrips is the phase's absolute fabric round-trip total (the
	// denominator of the metrics reconciliation check). Present only when
	// Config.Metrics is set.
	RoundTrips uint64 `json:"round_trips,omitempty"`

	// MNShares is the per-memory-node breakdown of this measurement
	// window's fabric round trips (each Load/Run phase is one window:
	// NIC counters are snapshotted at phase start and diffed at the end).
	// MNImbalance is the window's normalized hotspot scalar: the busiest
	// member node's round-trip share over the mean share (1.0 = perfectly
	// balanced, N = everything on one of N nodes). Present only when
	// Config.Metrics is set.
	MNShares    []MNShare `json:"mn_shares,omitempty"`
	MNImbalance float64   `json:"mn_imbalance,omitempty"`

	// Metrics is the phase's observability section: per-op and per-stage
	// histograms plus the round-trip reconciliation verdict. Present only
	// when Config.Metrics is set.
	Metrics *MetricsBlock `json:"metrics,omitempty"`
}

// Diag renders the Sphinx diagnostics line, or "" for other systems.
func (r Result) Diag() string {
	if r.SphinxFilterHitPct == 0 && r.SphinxFPPerKOp == 0 && r.SphinxRestartsPerKOp == 0 {
		return ""
	}
	return fmt.Sprintf("    [sphinx] filter-hit %.1f%%  falsePos %.2f/kop  restarts %.2f/kop  collisions %d",
		r.SphinxFilterHitPct, r.SphinxFPPerKOp, r.SphinxRestartsPerKOp, r.SphinxCollisions)
}

// FaultLine renders the fault/recovery counters, or "" when the run saw
// neither injected faults nor lock recovery.
func (r Result) FaultLine() string {
	if r.Restarts == 0 && r.TransientFaults == 0 && r.Timeouts == 0 &&
		r.NodeDownRejects == 0 && r.LockSteals == 0 && r.LeafLockBreaks == 0 &&
		r.DeleteRepairs == 0 {
		return ""
	}
	return fmt.Sprintf("    [faults] restarts %d  transients %d  timeouts %d  nodeDown %d  lockSteals %d  leafBreaks %d  deleteRepairs %d",
		r.Restarts, r.TransientFaults, r.Timeouts, r.NodeDownRejects,
		r.LockSteals, r.LeafLockBreaks, r.DeleteRepairs)
}

// header returns the column header matching Result.Row.
func ResultHeader() string {
	return fmt.Sprintf("%-14s %-8s %-6s %7s %12s %10s %10s %10s %8s %8s %10s",
		"system", "workload", "data", "workers", "tput(Mops)", "avg(us)", "p50(us)", "p99(us)", "RT/op", "verbs/op", "bytes/op")
}

// Row renders the result as one aligned table line.
func (r Result) Row() string {
	return fmt.Sprintf("%-14s %-8s %-6s %7d %12.3f %10.2f %10.2f %10.2f %8.2f %8.2f %10.0f",
		r.System, r.Workload, r.Dataset, r.Workers,
		r.ThroughputMops, r.AvgLatUs, r.P50LatUs, r.P99LatUs,
		r.RoundTripsPerOp, r.VerbsPerOp, r.BytesPerOp)
}

// Load inserts the full dataset with the given number of workers. When
// measured, the insert phase itself is the benchmark (the paper's LOAD
// workload); otherwise it is just population.
func (cl *Cluster) Load(workers int) (Result, error) {
	if workers <= 0 {
		workers = cl.Cfg.Workers
	}
	cl.F.ResetTimelines() // fresh measurement phase: idle network
	cl.beginPhaseMetrics()
	nicBase := cl.nicBase()
	keys := cl.keys
	value := cl.value
	wallStart := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	lats := make([][]int64, workers)
	clients := make([]*fabric.Client, workers)
	idxs := make([]Index, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx, fc := cl.NewIndex(w % cl.Cfg.CNs)
			clients[w] = fc
			idxs[w] = idx
			rec := cl.armTail(idx, fc)
			lat := make([]int64, 0, len(keys)/workers+1)
			for i := w; i < len(keys); i += workers {
				start, rt0 := fc.Clock(), fc.RoundTrips()
				if rec != nil {
					rec.BeginReuse(obs.OpPut.String(), start)
				}
				if _, err := idx.Insert(keys[i], value); err != nil {
					errCh <- fmt.Errorf("load worker %d key %d: %w", w, i, err)
					return
				}
				lat = append(lat, fc.Clock()-start)
				cl.observeOp(obs.OpPut, fc.Clock()-start, fc.RoundTrips()-rt0)
				if rec != nil {
					rec.End(fc.Clock())
					cl.tail.Offer(obs.OpPut, rec.Trace())
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	r := cl.summarize("LOAD", workers, clients, lats)
	attachWall(&r, wall)
	r.Depth = 1 // loading is always sequential
	coreAgg, hashAgg, isSphinx := cl.aggSphinx(idxs, nil)
	cl.attachSphinxDiag(&r, coreAgg, isSphinx)
	attachRecoveryDiag(&r, idxs, nil)
	cl.attachMetrics(&r)
	cl.attachMNShares(&r, nicBase)
	cl.attachIndexBlocks(&r, coreAgg, hashAgg, isSphinx)
	return r, nil
}

// armTail gives one sequential worker a trace recorder feeding the tail
// sampler: teed into the client's batch observer chain, and (for Sphinx
// workers) installed on the core client so locate annotations — false
// positives, collisions, restarts — arrive in the captured timelines.
// Returns nil when tail sampling is off.
func (cl *Cluster) armTail(idx Index, fc *fabric.Client) *obs.Recorder {
	if cl.tail == nil {
		return nil
	}
	rec := obs.NewRecorder()
	if observer := cl.phaseObs(); observer != nil {
		fc.SetObserver(obs.Tee{A: observer, B: rec})
	} else {
		fc.SetObserver(rec)
	}
	if si, ok := idx.(sphinxIndex); ok {
		si.c.SetRecorder(rec)
	}
	return rec
}

// Run drives one YCSB workload. The index must already be loaded. Every
// worker gets a fresh fabric client (clock zero) so that the measurement
// window is clean; CN-level caches keep the warmth they gained during
// loading, as on a real cluster.
func (cl *Cluster) Run(w ycsb.Workload, workers, opsPerWorker int) (Result, error) {
	if workers <= 0 {
		workers = cl.Cfg.Workers
	}
	if opsPerWorker <= 0 {
		opsPerWorker = cl.Cfg.OpsPerWorker
	}
	depth := cl.Cfg.Depth
	if depth < 1 {
		depth = 1
	}
	cl.F.ResetTimelines() // fresh measurement phase: idle network
	cl.beginPhaseMetrics()
	nicBase := cl.nicBase()
	wallStart := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	lats := make([][]int64, workers)
	clients := make([]*fabric.Client, workers)
	idxs := make([]Index, workers)
	pls := make([]*core.Pipeline, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(w, cl.space, cl.zipf, cl.Cfg.Seed+int64(wk)*7919)
			if depth > 1 {
				if pl, fc, ok := cl.NewPipeline(wk % cl.Cfg.CNs); ok {
					clients[wk] = fc
					pls[wk] = pl
					lat, err := runPipelined(cl, pl, gen, cl.value, opsPerWorker, depth)
					if err != nil {
						errCh <- fmt.Errorf("worker %d: %w", wk, err)
						return
					}
					lats[wk] = lat
					return
				}
			}
			idx, fc := cl.NewIndex(wk % cl.Cfg.CNs)
			clients[wk] = fc
			idxs[wk] = idx
			rec := cl.armTail(idx, fc)
			lat := make([]int64, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				op := gen.Next()
				kind := ycsbOpKind(op.Kind)
				start, rt0 := fc.Clock(), fc.RoundTrips()
				if rec != nil {
					rec.BeginReuse(kind.String(), start)
				}
				var err error
				switch op.Kind {
				case ycsb.OpRead:
					_, _, err = idx.Search(op.Key)
				case ycsb.OpUpdate:
					_, err = idx.Update(op.Key, cl.value)
				case ycsb.OpInsert:
					_, err = idx.Insert(op.Key, cl.value)
				case ycsb.OpScan:
					_, err = idx.ScanN(op.Key, op.ScanLen)
				}
				if err != nil {
					errCh <- fmt.Errorf("worker %d op %d (%v): %w", wk, i, op.Kind, err)
					return
				}
				lat = append(lat, fc.Clock()-start)
				cl.observeOp(kind, fc.Clock()-start, fc.RoundTrips()-rt0)
				if rec != nil {
					rec.End(fc.Clock())
					cl.tail.Offer(kind, rec.Trace())
				}
			}
			lats[wk] = lat
		}(wk)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	r := cl.summarize(w.Name, workers, clients, lats)
	attachWall(&r, wall)
	r.Depth = depth
	coreAgg, hashAgg, isSphinx := cl.aggSphinx(idxs, pls)
	cl.attachSphinxDiag(&r, coreAgg, isSphinx)
	attachRecoveryDiag(&r, idxs, pls)
	cl.attachMetrics(&r)
	cl.attachMNShares(&r, nicBase)
	cl.attachIndexBlocks(&r, coreAgg, hashAgg, isSphinx)
	return r, nil
}

// RunPhases drives one workload twice, labelling the passes "warmup" and
// "steady". Each Run gets fresh fabric clients (clock zero), but the
// CN-level caches — succinct filter and leaf-address cache — keep what
// they learned, so the pair exposes cache learning as a measurement
// instead of averaging the cold ramp into the steady state: the warmup
// pass pays the misses, the steady pass shows the converged RT/op. The
// generator seeds repeat across passes, so under a skewed distribution
// the steady pass is maximally warm for exactly the keys that matter.
func (cl *Cluster) RunPhases(w ycsb.Workload, workers, opsPerWorker int) (warmup, steady Result, err error) {
	warmup, err = cl.Run(w, workers, opsPerWorker)
	if err != nil {
		return warmup, steady, err
	}
	warmup.Phase = "warmup"
	steady, err = cl.Run(w, workers, opsPerWorker)
	if err != nil {
		return warmup, steady, err
	}
	steady.Phase = "steady"
	return warmup, steady, nil
}

// RunMaybePhased runs the workload honouring Config.Warm: split into
// warmup+steady passes when set (two results), a single unlabelled pass
// otherwise (one result).
func (cl *Cluster) RunMaybePhased(w ycsb.Workload, workers, opsPerWorker int) ([]Result, error) {
	if cl.Cfg.Warm {
		warmup, steady, err := cl.RunPhases(w, workers, opsPerWorker)
		if err != nil {
			return nil, err
		}
		return []Result{warmup, steady}, nil
	}
	r, err := cl.Run(w, workers, opsPerWorker)
	if err != nil {
		return nil, err
	}
	return []Result{r}, nil
}

// attachWall fills the wall-clock throughput fields from a measured
// phase duration.
func attachWall(r *Result, wall time.Duration) {
	if wall <= 0 {
		return
	}
	r.WallElapsedNs = wall.Nanoseconds()
	r.WallMops = float64(r.Ops) / wall.Seconds() / 1e6
}

// ycsbOpKind maps a YCSB op to its metrics op kind.
func ycsbOpKind(k ycsb.OpKind) obs.OpKind {
	switch k {
	case ycsb.OpUpdate:
		return obs.OpUpdate
	case ycsb.OpInsert:
		return obs.OpPut
	case ycsb.OpScan:
		return obs.OpScan
	default:
		return obs.OpGet
	}
}

// runPipelined drives one worker's share of a workload through a
// pipelined executor, one issue window at a time: depth ops in flight,
// windows of a few depths so that generation (which for YCSB-D tracks
// the growing key space) never runs far ahead of execution. Per-op
// latency spans each op's own in-flight window.
func runPipelined(cl *Cluster, pl *core.Pipeline, gen *ycsb.Generator, value []byte, total, depth int) ([]int64, error) {
	lat := make([]int64, 0, total)
	window := depth * 8
	opBuf := make([]ycsb.Op, 0, window)
	pipeOps := make([]*core.PipeOp, window)
	for i := range pipeOps {
		pipeOps[i] = &core.PipeOp{}
	}
	for done := 0; done < total; {
		n := window
		if total-done < n {
			n = total - done
		}
		opBuf = gen.NextN(opBuf[:0], n)
		for i, op := range opBuf {
			po := pipeOps[i]
			*po = core.PipeOp{Key: op.Key}
			switch op.Kind {
			case ycsb.OpRead:
				po.Kind = core.PipeGet
			case ycsb.OpUpdate:
				po.Kind = core.PipeUpdate
				po.Value = value
			case ycsb.OpInsert:
				po.Kind = core.PipePut
				po.Value = value
			case ycsb.OpScan:
				po.Kind = core.PipeScan
				po.Limit = op.ScanLen
			}
		}
		pl.Run(pipeOps[:n], depth)
		for i, po := range pipeOps[:n] {
			if po.Err != nil {
				return nil, fmt.Errorf("op %d (%v): %w", done+i, opBuf[i].Kind, po.Err)
			}
			lat = append(lat, po.EndPs-po.StartPs)
			// Round trips are shared across in-flight ops (doorbell
			// coalescing), so no per-op attribution exists at depth>1;
			// the per-stage histograms carry the RT accounting instead.
			cl.observeOp(pipeOpKind(po.Kind), po.EndPs-po.StartPs, 0)
		}
		done += n
	}
	return lat, nil
}

// attachSphinxDiag folds the phase's aggregated Sphinx client counters
// (see aggSphinx) into the result's diagnostic fields.
func (cl *Cluster) attachSphinxDiag(r *Result, agg core.Stats, found bool) {
	if !found || r.Ops == 0 {
		return
	}
	locates := agg.FilterHits + agg.FilterFallbacks + agg.RootStarts
	if locates > 0 {
		r.SphinxFilterHitPct = 100 * float64(agg.FilterHits) / float64(locates)
	}
	r.SphinxFPPerKOp = 1000 * float64(agg.FalsePositives) / float64(r.Ops)
	r.SphinxRestartsPerKOp = 1000 * float64(agg.Restarts) / float64(r.Ops)
	r.SphinxCollisions = agg.CollisionRetry
	r.Restarts = agg.Restarts
}

// attachRecoveryDiag aggregates node-engine lock-recovery counters; every
// system's index wrapper exposes its engine, and pipelined executors
// aggregate over their lanes.
func attachRecoveryDiag(r *Result, idxs []Index, pls []*core.Pipeline) {
	var agg rart.EngineStats
	for _, ix := range idxs {
		if ex, ok := ix.(interface{ engine() *rart.Engine }); ok {
			if e := ex.engine(); e != nil {
				agg = agg.Add(e.Stats())
			}
		}
	}
	for _, pl := range pls {
		if pl != nil {
			agg = agg.Add(pl.EngineStats())
		}
	}
	r.LockSteals = agg.LockSteals
	r.LeafLockBreaks = agg.LeafLockBreaks
	r.DeleteRepairs = agg.DeleteRepairs
}

// summarize folds per-worker clocks, latencies and network stats into a
// Result. Throughput is total operations over the slowest worker's virtual
// time, matching how a wall-clock experiment would measure a fixed
// per-worker op count.
func (cl *Cluster) summarize(workload string, workers int, clients []*fabric.Client, lats [][]int64) Result {
	var all []int64
	var elapsed int64
	var net fabric.Stats
	var ops uint64
	for w := range clients {
		if clients[w] == nil {
			continue
		}
		if c := clients[w].Clock(); c > elapsed {
			elapsed = c
		}
		net = net.Add(clients[w].Stats())
		all = append(all, lats[w]...)
		ops += uint64(len(lats[w]))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r := Result{
		System:   cl.Sys.String(),
		Workload: workload,
		Dataset:  cl.Cfg.Dataset.String(),
		Workers:  workers,
		Ops:      ops,
	}
	if elapsed > 0 {
		r.ElapsedPs = elapsed
		// ops / (ps → s): ops * 1e12 / ps, reported in Mops.
		r.ThroughputMops = float64(ops) / (float64(elapsed) / 1e12) / 1e6
	}
	if len(all) > 0 {
		var sum int64
		for _, l := range all {
			sum += l
		}
		r.AvgLatUs = float64(sum) / float64(len(all)) / 1e6
		r.P50LatUs = float64(all[len(all)/2]) / 1e6
		r.P99LatUs = float64(all[len(all)*99/100]) / 1e6
	}
	if ops > 0 {
		r.RoundTripsPerOp = float64(net.RoundTrips) / float64(ops)
		r.VerbsPerOp = float64(net.Verbs) / float64(ops)
		r.BytesPerOp = float64(net.BytesRead+net.BytesWrite) / float64(ops)
	}
	r.TransientFaults = net.Transients
	r.Timeouts = net.Timeouts
	r.NodeDownRejects = net.NodeDownRejects
	if cl.runMetrics != nil {
		r.RoundTrips = net.RoundTrips
	}
	return r
}

// MemUsage aggregates MN-side memory by allocation class (Fig. 6).
type MemUsage struct {
	System  string
	Dataset string
	ByClass [mem.NumClasses]uint64
	Total   uint64 // all classes (the index's MN footprint)
}

// IndexBytes is the tree footprint (inner + leaf), the baseline the
// paper's INHT-overhead percentage is computed against.
func (m MemUsage) IndexBytes() uint64 {
	return m.ByClass[mem.ClassInner] + m.ByClass[mem.ClassLeaf]
}

// HashBytes is the inner-node-hash-table footprint.
func (m MemUsage) HashBytes() uint64 { return m.ByClass[mem.ClassHash] }

// MemoryUsage reads every memory node's allocator counters.
func (cl *Cluster) MemoryUsage() (MemUsage, error) {
	mu := MemUsage{System: cl.Sys.String(), Dataset: cl.Cfg.Dataset.String()}
	ops := cl.F.Regions()
	for _, node := range cl.memberNodes() {
		u, err := mem.ReadUsage(ops, node)
		if err != nil {
			return mu, err
		}
		for c := 0; c < int(mem.NumClasses); c++ {
			mu.ByClass[c] += u.ByClass[c]
		}
	}
	for _, b := range mu.ByClass {
		mu.Total += b
	}
	return mu, nil
}
