package bench

import (
	"io"
	"strings"
	"sync"
	"testing"

	"sphinx/internal/dataset"
	"sphinx/internal/ycsb"
)

// TestIndexBlocksAttached checks the per-phase SFC/INHT sections: hit
// depth observed, measured FP rate next to the analytic bound, INHT load
// factor from the MN-side scan, and the FP↔hash-read-RT reconciliation
// verdict on the read-only workload.
func TestIndexBlocksAttached(t *testing.T) {
	cfg := smallConfig(dataset.U64)
	cfg.Metrics = true
	cfg.Tail = true
	cl, err := NewCluster(Sphinx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Load(0); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Run(ycsb.WorkloadC, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics == nil || r.Metrics.SFC == nil || r.Metrics.INHT == nil {
		t.Fatalf("missing metrics sections: %+v", r.Metrics)
	}
	sfc, inht := r.Metrics.SFC, r.Metrics.INHT
	if sfc.HitDepth.Count == 0 || sfc.HitDepth.Mean <= 0 {
		t.Errorf("no SFC hit-depth distribution: %+v", sfc.HitDepth)
	}
	if sfc.Load <= 0 || sfc.AnalyticFPBound <= 0 {
		t.Errorf("SFC load/bound not exported: load=%v bound=%v", sfc.Load, sfc.AnalyticFPBound)
	}
	if sfc.FilterHits == 0 {
		t.Error("warm YCSB-C run resolved no locates via the filter")
	}
	if sfc.FPReconciled == nil {
		t.Fatal("read-only depth-1 phase did not get an fp_reconciled verdict")
	}
	if !*sfc.FPReconciled {
		t.Errorf("false positives do not reconcile with hash-read round trips: %+v / lookups=%d retries=%d refreshes=%d",
			sfc, inht.Lookups, inht.RetryReads, inht.Refreshes)
	}
	if inht.LoadFactor <= 0 || inht.Entries == 0 || inht.CapacityEntries == 0 {
		t.Errorf("INHT usage scan empty: %+v", inht)
	}
	if inht.Lookups == 0 || inht.Candidates.Count == 0 {
		t.Errorf("INHT lookup accounting empty: %+v", inht)
	}
	if r.Metrics.TailOffered == 0 {
		t.Error("tail sampler was not offered any ops")
	}

	// The write-heavy workload must not claim the read-only invariant.
	ra, err := cl.Run(ycsb.WorkloadA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Metrics.SFC != nil && ra.Metrics.SFC.FPReconciled != nil {
		t.Error("fp_reconciled set for a write-heavy phase")
	}

	// The filter-less ablation gets an INHT section but no SFC section.
	cfgNo := cfg
	clNo, err := NewCluster(SphinxNoSFC, cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clNo.Load(0); err != nil {
		t.Fatal(err)
	}
	rNo, err := clNo.Run(ycsb.WorkloadC, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rNo.Metrics.SFC != nil {
		t.Error("filter-less ablation produced an SFC section")
	}
	// The parallel-read path prepares raw bucket reads rather than
	// calling Lookup, so only the structural scan is asserted here.
	if rNo.Metrics.INHT == nil || rNo.Metrics.INHT.LoadFactor <= 0 {
		t.Errorf("filter-less ablation INHT section: %+v", rNo.Metrics.INHT)
	}
}

// TestLiveRegistryServesDuringRun scrapes the Live registry concurrently
// with a running workload (meaningful under -race) and asserts the
// metric families the CI smoke test curls for are present.
func TestLiveRegistryServesDuringRun(t *testing.T) {
	lv := NewLive()
	cfg := smallConfig(dataset.U64)
	cfg.Metrics = true
	cfg.Live = lv
	reg := lv.Registry() // built before scraping starts

	cl, err := NewCluster(Sphinx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			_ = snap.WritePrometheus(io.Discard, "sphinx")
			_ = snap.WriteJSON(io.Discard)
			lv.Tail.Samples()
		}
	}()
	if _, err := cl.Load(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ycsb.WorkloadC, 0, 0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb, "sphinx"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sphinx_sfc_load", "sphinx_sfc_hit_depth", "sphinx_sfc_false_positive_rate",
		"sphinx_inht_load_factor", "sphinx_inht_lookups",
		"sphinx_core_filter_hits", "sphinx_filter_hits",
		"sphinx_tail_offered", "sphinx_bench_op_latency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live /metrics output missing %s", want)
		}
	}
	if offered, _ := lv.Tail.Stats(); offered == 0 {
		t.Error("live tail sampler saw no ops")
	}
}
