package bench

import (
	"encoding/json"
	"io"
)

// JSONReport is the machine-readable form of one experiment's results,
// written as BENCH_<experiment>.json by cmd/sphinxbench so the perf
// trajectory (throughput, tail latency, RT/op, fault counters) is
// trackable across changes without parsing tables.
type JSONReport struct {
	Experiment   string  `json:"experiment"`
	Keys         int     `json:"keys"`
	Workers      int     `json:"workers"`
	OpsPerWorker int     `json:"ops_per_worker"`
	Seed         int64   `json:"seed"`
	Theta        float64 `json:"theta"`

	Results []Result `json:"results,omitempty"`
	// MemUsages carries fig6's per-system memory accounting (its runs
	// produce no Result rows).
	MemUsages []MemUsage `json:"mem_usages,omitempty"`
	// Failover carries the MN-loss chaos experiment's durability and
	// repair verdict (its run produces no Result rows).
	Failover *FailoverReport `json:"failover,omitempty"`
	// Elastic carries the membership chaos experiment's durability,
	// convergence and per-MN rebalancing verdict (its Result rows are the
	// MN-count sweep).
	Elastic *ElasticReport `json:"elastic,omitempty"`
	// Skew carries the hot-spot tolerance experiment's theta-sweep
	// verdict (its Result rows are the per-theta warmup/steady pairs).
	Skew *SkewReport `json:"skew,omitempty"`
}

// NewJSONReport captures the experiment's sweep-invariant settings.
func NewJSONReport(experiment string, cfg Config) JSONReport {
	cfg = cfg.withDefaults()
	return JSONReport{
		Experiment:   experiment,
		Keys:         cfg.Keys,
		Workers:      cfg.Workers,
		OpsPerWorker: cfg.OpsPerWorker,
		Seed:         cfg.Seed,
		Theta:        cfg.Theta,
	}
}

// WriteJSON renders the report as indented JSON.
func (rep JSONReport) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
