package bench

import (
	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/obs"
)

// HistJSON is the compact JSON shape of one histogram: count plus the
// summary points a reader actually plots. Latency histograms report
// microseconds; round-trip histograms report counts. Quantiles are bucket
// upper bounds (power-of-two buckets), so they are conservative.
type HistJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// MetricsBlock is the per-result observability section emitted into
// BENCH_*.json when Config.Metrics is set. Its headline value is the
// reconciliation verdict: the per-stage round-trip histograms must sum to
// the fabric's own RoundTrips counter at every pipeline depth, and the
// per-op histograms must match it too at depth 1 (at depth > 1 round
// trips are shared across in-flight ops, so no per-op attribution
// exists).
type MetricsBlock struct {
	OpLatencyUs    map[string]HistJSON `json:"op_latency_us,omitempty"`
	OpRoundTrips   map[string]HistJSON `json:"op_round_trips,omitempty"`
	StageLatencyUs map[string]HistJSON `json:"stage_latency_us,omitempty"`

	StageRoundTrips map[string]uint64 `json:"stage_round_trips,omitempty"`
	StageVerbs      map[string]uint64 `json:"stage_verbs,omitempty"`
	StageBytes      map[string]uint64 `json:"stage_bytes,omitempty"`
	StageFaults     map[string]uint64 `json:"stage_faults,omitempty"`

	// OpRTTotal and StageRTTotal are the two histogram-side sums;
	// FabricRoundTrips is the ground truth from the clients' counters.
	OpRTTotal        uint64 `json:"op_rt_total"`
	StageRTTotal     uint64 `json:"stage_rt_total"`
	FabricRoundTrips uint64 `json:"fabric_round_trips"`
	RTReconciled     bool   `json:"rt_reconciled"`

	// SFC, INHT, LAC and Hot are the index-semantic efficacy sections,
	// present for Sphinx-family results (SFC absent for the filter-less
	// ablation, LAC absent for the leaf-address-cache-less one, Hot
	// present only when the hot read-replication layer is bootstrapped).
	SFC  *SFCBlock  `json:"sfc,omitempty"`
	INHT *INHTBlock `json:"inht,omitempty"`
	LAC  *LACBlock  `json:"lac,omitempty"`
	Hot  *HotBlock  `json:"hot,omitempty"`

	// Tail sampling totals for this phase (Config.Tail or Config.Live).
	TailOffered  uint64 `json:"tail_offered,omitempty"`
	TailCaptured uint64 `json:"tail_captured,omitempty"`
}

// beginPhaseMetrics resets the phase metric set: each measurement phase
// (load, or one workload run) gets a fresh one so its section reconciles
// against that phase's ResetTimelines-cleared fabric counters. The
// cumulative sources (index distributions, CN filter counters, tail
// totals) get baseline snapshots instead, so per-phase sections report
// deltas while live scrapes see them accumulate.
func (cl *Cluster) beginPhaseMetrics() {
	if cl.Cfg.Metrics {
		cl.runMetrics = obs.NewMetrics()
	}
	if cl.index != nil {
		cl.hitDepthBase = cl.index.SFCHitDepth.Snapshot()
		cl.probesBase = cl.index.SFCProbes.Snapshot()
		cl.candBase = cl.index.INHTCandidates.Snapshot()
	}
	cl.filterBase = cl.filterStatsAgg()
	cl.lacBase = cl.lacStatsAgg()
	if cl.tail != nil {
		cl.tailBaseOff, cl.tailBaseCap = cl.tail.Stats()
	}
}

// pipeOpKind maps a pipelined op kind to its metrics op kind.
func pipeOpKind(k core.PipeKind) obs.OpKind {
	switch k {
	case core.PipePut:
		return obs.OpPut
	case core.PipeUpdate:
		return obs.OpUpdate
	case core.PipeDelete:
		return obs.OpDelete
	case core.PipeScan:
		return obs.OpScan
	default:
		return obs.OpGet
	}
}

func histJSON(h obs.HistSnapshot, scale float64) HistJSON {
	return HistJSON{
		Count: h.Count,
		Mean:  h.Mean() * scale,
		P50:   float64(h.Quantile(0.50)) * scale,
		P99:   float64(h.Quantile(0.99)) * scale,
		Max:   float64(h.Max()) * scale,
	}
}

// attachMetrics folds the phase's metric set into the result and runs the
// round-trip reconciliation check. r.Depth and r.RoundTrips must already
// be set.
func (cl *Cluster) attachMetrics(r *Result) {
	m := cl.runMetrics
	if m == nil {
		return
	}
	const psToUs = 1e-6
	b := &MetricsBlock{
		OpLatencyUs:     map[string]HistJSON{},
		OpRoundTrips:    map[string]HistJSON{},
		StageLatencyUs:  map[string]HistJSON{},
		StageRoundTrips: map[string]uint64{},
		StageVerbs:      map[string]uint64{},
		StageBytes:      map[string]uint64{},
		StageFaults:     map[string]uint64{},
	}
	for k := 0; k < obs.NumOps; k++ {
		kind := obs.OpKind(k)
		if lat := m.OpLatency(kind); lat.Count > 0 {
			b.OpLatencyUs[kind.String()] = histJSON(lat, psToUs)
			b.OpRoundTrips[kind.String()] = histJSON(m.OpRT(kind), 1)
		}
	}
	for s := 0; s < fabric.NumStages; s++ {
		stage := fabric.Stage(s)
		name := stage.String()
		if lat := m.StageLatency(stage); lat.Count > 0 {
			b.StageLatencyUs[name] = histJSON(lat, psToUs)
		}
		if rt := m.StageRT(stage); rt.Sum > 0 {
			b.StageRoundTrips[name] = rt.Sum
		}
		verbs, bytes, faults := m.StageCounters(stage)
		if verbs > 0 {
			b.StageVerbs[name] = verbs
		}
		if bytes > 0 {
			b.StageBytes[name] = bytes
		}
		if faults > 0 {
			b.StageFaults[name] = faults
		}
	}
	b.OpRTTotal = m.OpRTTotal()
	b.StageRTTotal = m.StageRTTotal()
	b.FabricRoundTrips = r.RoundTrips
	b.RTReconciled = b.StageRTTotal == b.FabricRoundTrips &&
		(r.Depth > 1 || b.OpRTTotal == b.FabricRoundTrips)
	if cl.tail != nil {
		offered, captured := cl.tail.Stats()
		b.TailOffered = offered - cl.tailBaseOff
		b.TailCaptured = captured - cl.tailBaseCap
	}
	r.Metrics = b
}
