package bench

import (
	"testing"

	"sphinx/internal/fabric"
	"sphinx/internal/ycsb"
)

// TestThetaUniformReachesZipfian is the regression test for the uniform-
// distribution bug: Config normalizes Theta == 0 to the default 0.99
// (zero value means unset), which used to make a uniform run impossible —
// an explicit theta 0 was silently re-skewed. The ThetaUniform sentinel
// must reach ycsb.NewZipfian as a true theta of 0.
func TestThetaUniformReachesZipfian(t *testing.T) {
	cl, err := NewCluster(Sphinx, Config{
		Keys: 100, Workers: 1, OpsPerWorker: 1,
		Net:   fabric.InstantConfig(),
		Theta: ThetaUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.zipf.Theta(); got != 0 {
		t.Fatalf("ThetaUniform built a zipfian with theta %v, want 0", got)
	}
	if got := cl.Cfg.Theta; got != 0 {
		t.Fatalf("ThetaUniform normalized to %v, want 0", got)
	}
}

func TestThetaDefaults(t *testing.T) {
	if got := (Config{}).withDefaults().Theta; got != ycsb.DefaultTheta {
		t.Fatalf("unset Theta = %v, want default %v", got, ycsb.DefaultTheta)
	}
	if got := (Config{Theta: 0.5}).withDefaults().Theta; got != 0.5 {
		t.Fatalf("explicit Theta 0.5 = %v", got)
	}
	if got := (Config{Theta: -2}).withDefaults().Theta; got != 0 {
		t.Fatalf("negative Theta = %v, want uniform 0", got)
	}
}
