package bench

import (
	"sync/atomic"

	"sphinx/internal/core"
	"sphinx/internal/cuckoo"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/racehash"
)

// Live is the harness's cluster-spanning observability surface: one
// metric set, index-distribution set and tail sampler that every cluster
// the harness creates feeds for its whole lifetime, servable over HTTP
// while experiments run (sphinxbench -serve). Per-phase Result sections
// are unaffected — they diff against phase baselines; Live accumulates.
//
// Experiments create clusters one after another; the gauge sources (SFC
// load, INHT usage) read through the most recent Sphinx-family cluster,
// which is the one currently running.
type Live struct {
	Metrics *obs.Metrics
	Index   *obs.IndexMetrics
	Tail    *obs.TailSampler
	// Plane is the cluster observability plane behind /mn, /slo and
	// /alerts: per-MN windowed load series, SLO burn rates over the live
	// histograms, and the default alert rules. Its collector follows the
	// current cluster like the gauge sources do; -serve mode ticks it
	// from a wall-clock sampler.
	Plane *obs.Plane

	reg *obs.Registry
	cur atomic.Pointer[Cluster]
}

// NewLive creates the live telemetry surface. Pass it via Config.Live to
// every cluster that should report into it.
func NewLive() *Live {
	lv := &Live{
		Metrics: obs.NewMetrics(),
		Index:   obs.NewIndexMetrics(),
		Tail:    obs.NewTailSampler(0, 0),
	}
	// The read-p99 objective is deliberately loose for a simulated
	// fabric (25 µs); it exists so /slo and the burn-rate alerts have a
	// live series to chew on, not as a tuned production target.
	lv.Plane, _ = obs.NewPlane(obs.PlaneOptions{
		Collect: func() []obs.MNSample {
			if cl := lv.cur.Load(); cl != nil {
				return cl.collectMNs()
			}
			return nil
		},
		Latency: func(k obs.OpKind) obs.HistSnapshot { return lv.Metrics.OpLatency(k) },
		SLOs: []obs.SLO{
			{Name: "read-p99", Op: obs.OpGet, Quantile: 0.99, LatencyPs: 25_000_000},
		},
	})
	return lv
}

// attach points the gauge sources at a newly created cluster.
func (lv *Live) attach(cl *Cluster) {
	if len(cl.filters) > 0 {
		lv.cur.Store(cl)
	}
}

// Registry assembles (once) the registry behind /metrics and /snapshot:
// the live histograms, index distributions, tail counters, and gauge/
// counter sources that follow the current cluster. Every source is
// scrape-safe concurrently with running workers: filter cache stats are
// padded atomics (lock-free SFC), INHT usage scans go through the region
// locks, and the finished-phase core/hash counters are mutex-guarded on
// the cluster.
func (lv *Live) Registry() *obs.Registry {
	if lv.reg != nil {
		return lv.reg
	}
	r := obs.NewRegistry()
	r.AddMetrics("bench", lv.Metrics)
	lv.Index.Register(r)
	lv.Plane.Register(r)
	r.AddCounters("tail", lv.Tail.Counters)
	r.AddCounterStruct("core", func() any {
		if cl := lv.cur.Load(); cl != nil {
			return cl.phaseDoneCore()
		}
		return core.Stats{}
	})
	r.AddCounterStruct("inht", func() any {
		if cl := lv.cur.Load(); cl != nil {
			return cl.phaseDoneHash()
		}
		return racehash.Stats{}
	})
	r.AddCounterStruct("filter", func() any {
		if cl := lv.cur.Load(); cl != nil {
			return cl.filterStatsAgg()
		}
		return cuckoo.Stats{}
	})
	r.AddGauges("sfc", func() map[string]float64 {
		cl := lv.cur.Load()
		if cl == nil {
			return nil
		}
		occupied, capacity, load, bound := cl.filterOccupancy()
		g := map[string]float64{
			"occupied_slots":    float64(occupied),
			"capacity_slots":    float64(capacity),
			"load":              load,
			"analytic_fp_bound": bound,
		}
		fst := cl.filterStatsAgg()
		if probes := fst.Hits + fst.Misses; probes > 0 {
			g["false_positive_rate"] = float64(cl.phaseDoneCore().FalsePositives) / float64(probes)
		}
		return g
	})
	r.AddCounterStruct("lac", func() any {
		if cl := lv.cur.Load(); cl != nil {
			return cl.lacStatsAgg()
		}
		return core.LACStats{}
	})
	r.AddGauges("lac", func() map[string]float64 {
		cl := lv.cur.Load()
		if cl == nil || len(cl.lacs) == 0 {
			return nil
		}
		occupied, capacity, bytes := cl.lacOccupancy()
		g := map[string]float64{
			"occupied_slots": float64(occupied),
			"capacity_slots": float64(capacity),
			"size_bytes":     float64(bytes),
		}
		if capacity > 0 {
			g["occupancy"] = float64(occupied) / float64(capacity)
		}
		st := cl.phaseDoneCore()
		if probes := st.SpecHits + st.SpecMisses + st.SpecRefutes + st.SpecAborts; probes > 0 {
			g["hit_rate"] = float64(st.SpecHits) / float64(probes)
		}
		return g
	})
	r.AddGauges("inht", func() map[string]float64 {
		cl := lv.cur.Load()
		if cl == nil {
			return nil
		}
		u := cl.inhtUsage()
		return map[string]float64{
			"load_factor":      u.LoadFactor(),
			"entries":          float64(u.Entries),
			"capacity_entries": float64(u.Capacity),
			"segments":         float64(u.Segments),
			"dir_entries":      float64(u.DirEntries),
		}
	})
	lv.reg = r
	return r
}

// SFCBlock is the per-phase succinct-filter-cache efficacy section of a
// result's metrics: where locates landed in the prefix walk, how the
// measured false-positive rate compares to the cuckoo filter's analytic
// bound, and (for read-only sequential phases) whether every false
// positive reconciles against an extra hash-read-stage round trip.
type SFCBlock struct {
	// HitDepth is the distribution of the longest-prefix-hit depth (key
	// bytes matched) over filter-resolved locates; Probes is the local
	// filter probes spent per locate.
	HitDepth HistJSON `json:"hit_depth"`
	Probes   HistJSON `json:"probes"`

	Load          float64 `json:"load"`
	OccupiedSlots uint64  `json:"occupied_slots"`
	CapacitySlots uint64  `json:"capacity_slots"`

	FilterHits     uint64 `json:"filter_hits"`
	FalsePositives uint64 `json:"false_positives"`
	// Evictions and HotMarks are this phase's share of eviction and
	// hotness-bit churn across the CN filter caches.
	Evictions uint64 `json:"evictions,omitempty"`
	HotMarks  uint64 `json:"hot_marks,omitempty"`

	MeasuredFPRate  float64 `json:"measured_fp_rate"`
	AnalyticFPBound float64 `json:"analytic_fp_bound"`

	// FPReconciled is set for read-only depth-1 phases: true iff hash
	// lookups == filter hits + false positives AND the hash-read stage's
	// round trips == lookups + stale-directory retries + 2×refreshes —
	// i.e. every false positive shows up as exactly one extra hash-entry
	// round trip (DESIGN.md §5.9). Absent when the phase wrote, restarted
	// or ran pipelined (coalescing shares round trips across ops).
	FPReconciled *bool `json:"fp_reconciled,omitempty"`
}

// INHTBlock is the per-phase inner-node-hash-table section: structural
// load from an MN-side scan plus this phase's lookup/maintenance
// counters.
type INHTBlock struct {
	// Candidates is the distribution of fingerprint-matching candidates
	// per lookup (>1 means fingerprint collisions bought wasted reads).
	Candidates HistJSON `json:"candidates"`

	LoadFactor      float64 `json:"load_factor"`
	Entries         uint64  `json:"entries"`
	CapacityEntries uint64  `json:"capacity_entries"`
	Segments        uint64  `json:"segments"`
	DirEntries      uint64  `json:"dir_entries"`

	Lookups         uint64 `json:"lookups"`
	RetryReads      uint64 `json:"retry_reads,omitempty"`
	Refreshes       uint64 `json:"refreshes,omitempty"`
	StaleEntries    uint64 `json:"stale_entries,omitempty"`
	FPMismatches    uint64 `json:"fp_mismatches,omitempty"`
	BucketOverflows uint64 `json:"bucket_overflows,omitempty"`
	Splits          uint64 `json:"splits,omitempty"`
}

// LACBlock is the per-phase leaf-address-cache efficacy section of a
// result's metrics: how warm-read speculation performed (one-RT hits vs
// misses, refutes and aborts), the cache's maintenance churn, and (for
// read-only sequential phases) whether the speculative round trips
// reconcile exactly against the fabric's counters.
type LACBlock struct {
	// SpecHits..SpecAborts are this phase's speculative-read outcomes:
	// hits served in one verified round trip, misses that went straight
	// to the hash path, refutes that unlearned a stale entry and fell
	// back, and aborts (unstable leaf image or transient fabric error)
	// that fell back without unlearning.
	SpecHits    uint64 `json:"spec_hits"`
	SpecMisses  uint64 `json:"spec_misses"`
	SpecRefutes uint64 `json:"spec_refutes,omitempty"`
	SpecAborts  uint64 `json:"spec_aborts,omitempty"`
	// HitRate is hits over all speculative decisions (hits + misses +
	// refutes + aborts).
	HitRate float64 `json:"hit_rate"`

	// Learns/Unlearns/Evictions are this phase's share of cache
	// maintenance across the CN leaf-address caches.
	Learns    uint64 `json:"learns,omitempty"`
	Unlearns  uint64 `json:"unlearns,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`

	Occupancy     float64 `json:"occupancy"`
	OccupiedSlots uint64  `json:"occupied_slots"`
	CapacitySlots uint64  `json:"capacity_slots"`
	SizeBytes     uint64  `json:"size_bytes"`

	// LACReconciled is set for read-only depth-1 phases: true iff the
	// leaf-spec stage's round trips == speculative hits + refutes (every
	// speculative read is exactly one RT, and a healthy read-only phase
	// never aborts) AND hash + node + leaf + leaf-spec stage round trips
	// == the fabric's own counter — i.e. every fallback re-descent is
	// fully accounted and the fast path never double-pays. Absent when
	// the phase wrote, restarted or ran pipelined.
	LACReconciled *bool `json:"lac_reconciled,omitempty"`
}

// HotBlock is the per-phase hot read-replication section of a result's
// metrics: how the hotness-driven replica read path performed (verified
// 1-RT hits vs refutations of retired record images), the promotion and
// write-refresh churn, and (for read-only depth-1 phases) whether the
// hot-read round trips reconcile exactly against the fabric's counters.
type HotBlock struct {
	// HotHits..HotAborts are this phase's replica-read outcomes: hits
	// served in one verified round trip, refutations that unlearned a
	// stale route and fell back, and aborts (transient fabric errors)
	// that fell back without a verdict.
	HotHits    uint64 `json:"hot_hits"`
	HotRefutes uint64 `json:"hot_refutes,omitempty"`
	HotAborts  uint64 `json:"hot_aborts,omitempty"`
	// Promotes/Demotes/Refreshes are the layer's maintenance churn:
	// keys promoted into replicated placement, demoted back out, and
	// writes that republished at least one hot record.
	Promotes  uint64 `json:"promotes,omitempty"`
	Demotes   uint64 `json:"demotes,omitempty"`
	Refreshes uint64 `json:"refreshes,omitempty"`
	// HitRate is hits over all replica-read attempts.
	HitRate float64 `json:"hit_rate"`
	// TrackerBytes is the CN hot-key trackers' total footprint.
	TrackerBytes uint64 `json:"tracker_bytes,omitempty"`

	// HotReconciled is set for read-only depth-1 phases: true iff the
	// hot-read stage's round trips == replica-read hits + refutations
	// (every attempt is exactly one verified RT — never a wrong value,
	// never a double-pay) with zero aborts. The full-sum check lives in
	// LACReconciled, whose stage sum includes the hot stages.
	HotReconciled *bool `json:"hot_reconciled,omitempty"`
}

// nicBase snapshots the per-MN NIC counters at phase start (the window
// baseline for attachMNShares), or nil when metrics are off.
func (cl *Cluster) nicBase() []fabric.NICStats {
	if !cl.Cfg.Metrics {
		return nil
	}
	return cl.F.NICStats()
}

// MNShare is one memory node's slice of a measurement window's fabric
// round trips, with the NIC busy/queued-wait time that round-trip load
// produced (the hotspot signal the contention-aware replica choice
// steers by).
type MNShare struct {
	Node       int     `json:"node"`
	RoundTrips uint64  `json:"round_trips"`
	Share      float64 `json:"share"`
	BusyPs     int64   `json:"busy_ps,omitempty"`
	WaitPs     int64   `json:"wait_ps,omitempty"`
}

// attachMNShares diffs the per-MN NIC counters against the phase-start
// baseline and attaches the window's shares plus the normalized
// max/mean imbalance scalar (computed over current member nodes, so a
// killed or drained node does not deflate the mean).
func (cl *Cluster) attachMNShares(r *Result, base []fabric.NICStats) {
	if base == nil {
		return
	}
	cur := cl.F.NICStats()
	baseByNode := make(map[mem.NodeID]fabric.NICStats, len(base))
	for _, b := range base {
		baseByNode[b.Node] = b
	}
	members := make(map[mem.NodeID]bool)
	for _, n := range cl.memberNodes() {
		members[n] = true
	}
	var total, maxMemberRT uint64
	shares := make([]MNShare, 0, len(cur))
	for _, st := range cur {
		b := baseByNode[st.Node]
		rt := st.RoundTrips - b.RoundTrips
		total += rt
		if members[st.Node] && rt > maxMemberRT {
			maxMemberRT = rt
		}
		if rt == 0 && !members[st.Node] {
			continue
		}
		shares = append(shares, MNShare{
			Node:       int(st.Node),
			RoundTrips: rt,
			BusyPs:     st.BusyPs - b.BusyPs,
			WaitPs:     st.WaitPs - b.WaitPs,
		})
	}
	if total == 0 {
		return
	}
	for i := range shares {
		shares[i].Share = float64(shares[i].RoundTrips) / float64(total)
	}
	r.MNShares = shares
	if n := len(members); n > 0 {
		mean := float64(total) / float64(n)
		r.MNImbalance = float64(maxMemberRT) / mean
	}
}

// lacStatsAgg sums the CN leaf-address caches' maintenance counters
// (empty for systems without one).
func (cl *Cluster) lacStatsAgg() core.LACStats {
	var agg core.LACStats
	for _, lc := range cl.lacs {
		agg = agg.Add(lc.Stats())
	}
	return agg
}

// lacOccupancy aggregates live entries, slot capacity and byte footprint
// across the CN leaf-address caches.
func (cl *Cluster) lacOccupancy() (occupied, capacity, bytes uint64) {
	for _, lc := range cl.lacs {
		o, c := lc.Occupancy()
		occupied += o
		capacity += c
		bytes += lc.SizeBytes()
	}
	return occupied, capacity, bytes
}

// filterStatsAgg sums the CN filter caches' counters (empty for systems
// without a filter).
func (cl *Cluster) filterStatsAgg() cuckoo.Stats {
	var agg cuckoo.Stats
	for _, f := range cl.filters {
		st := f.FilterStats()
		agg.Inserts += st.Inserts
		agg.Duplicates += st.Duplicates
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.SecondWins += st.SecondWins
		agg.Relocations += st.Relocations
		agg.Evictions += st.Evictions
		agg.KickDrops += st.KickDrops
		agg.HotMarks += st.HotMarks
		agg.Deletes += st.Deletes
	}
	return agg
}

// filterOccupancy aggregates slot occupancy across the CN filter caches;
// the analytic bound is averaged (the caches share one geometry).
func (cl *Cluster) filterOccupancy() (occupied, capacity uint64, load, bound float64) {
	for _, f := range cl.filters {
		o, c := f.Occupancy()
		occupied += o
		capacity += c
		bound += f.AnalyticFPBound()
	}
	if capacity > 0 {
		load = float64(occupied) / float64(capacity)
	}
	if n := len(cl.filters); n > 0 {
		bound /= float64(n)
	}
	return occupied, capacity, load, bound
}

// collectMNs samples every memory node for the observability plane:
// fabric NIC accounting (cumulative — the plane windows the deltas),
// breaker health, hash-table load for nodes holding an INHT, and arena
// occupancy (skipped for killed nodes, whose regions are gone).
func (cl *Cluster) collectMNs() []obs.MNSample {
	h := cl.F.Health()
	members := make(map[mem.NodeID]bool)
	for _, n := range cl.memberNodes() {
		members[n] = true
	}
	tables := cl.sphinxShared.Tables
	if m := cl.sphinxShared.Members; m != nil {
		tables = m.Current().Tables
	}
	ops := cl.F.Regions()
	stats := cl.F.NICStats()
	out := make([]obs.MNSample, 0, len(stats))
	for _, st := range stats {
		n := st.Node
		state := h.State(n)
		s := obs.MNSample{
			Node: int(n), Member: members[n],
			Health: state.String(), HealthCode: float64(state),
			RoundTrips: st.RoundTrips, Verbs: st.Verbs, Bytes: st.Bytes,
			Faults: st.Faults, BusyPs: st.BusyPs, WaitPs: st.WaitPs,
		}
		if t, ok := tables[n]; ok {
			u := racehash.ReadUsage(cl.F.Region(n), t)
			s.HashLoad = u.LoadFactor()
			s.HashEntries = u.Entries
		}
		if !cl.F.NodeKilled(n) {
			if mu, err := mem.ReadUsage(ops, n); err == nil {
				for _, b := range mu.ByClass {
					s.ArenaUsed += b
				}
				s.ArenaCap = cl.F.RegionSize(n)
			}
		}
		out = append(out, s)
	}
	return out
}

// memberNodes returns the memory nodes of the current placement — the
// epoch-versioned ring when the system publishes one (elastic membership
// may have added or drained nodes since bootstrap), the static bootstrap
// ring otherwise.
func (cl *Cluster) memberNodes() []mem.NodeID {
	if m := cl.sphinxShared.Members; m != nil {
		return m.Current().Ring.Nodes()
	}
	return cl.Ring.Nodes()
}

// inhtUsage scans every memory node's hash-table structure MN-side (no
// virtual-clock cost; race-clean through the region locks). The table set
// comes from the current placement, so tables bootstrapped by an elastic
// add are counted and drained ones are not.
func (cl *Cluster) inhtUsage() racehash.Usage {
	var u racehash.Usage
	tables := cl.sphinxShared.Tables
	if m := cl.sphinxShared.Members; m != nil {
		tables = m.Current().Tables
	}
	for node, t := range tables {
		u = u.Add(racehash.ReadUsage(cl.F.Region(node), t))
	}
	return u
}

// phaseDoneCore and phaseDoneHash return the core/hash counters of all
// finished phases (live scrape sources; per-phase worker clients are
// aggregated into these at each phase end).
func (cl *Cluster) phaseDoneCore() core.Stats {
	cl.doneMu.Lock()
	defer cl.doneMu.Unlock()
	return cl.doneCore
}

func (cl *Cluster) phaseDoneHash() racehash.Stats {
	cl.doneMu.Lock()
	defer cl.doneMu.Unlock()
	return cl.doneHash
}

// aggSphinx folds the phase's Sphinx worker counters (sequential clients
// and pipelined executors) into one pair of core/hash totals.
func (cl *Cluster) aggSphinx(idxs []Index, pls []*core.Pipeline) (core.Stats, racehash.Stats, bool) {
	var coreAgg core.Stats
	var hashAgg racehash.Stats
	found := false
	for _, ix := range idxs {
		if si, ok := ix.(sphinxIndex); ok && si.c != nil {
			coreAgg = coreAgg.Add(si.c.Stats())
			hashAgg = hashAgg.Add(si.c.HashStats())
			found = true
		}
	}
	for _, pl := range pls {
		if pl != nil {
			coreAgg = coreAgg.Add(pl.Stats())
			hashAgg = hashAgg.Add(pl.HashStats())
			found = true
		}
	}
	return coreAgg, hashAgg, found
}

// attachIndexBlocks fills the result's SFC and INHT sections from the
// phase deltas, and folds the phase's worker counters into the cluster's
// lifetime totals for the live registry.
func (cl *Cluster) attachIndexBlocks(r *Result, coreAgg core.Stats, hashAgg racehash.Stats, isSphinx bool) {
	if !isSphinx {
		return
	}
	cl.doneMu.Lock()
	cl.doneCore = cl.doneCore.Add(coreAgg)
	cl.doneHash = cl.doneHash.Add(hashAgg)
	cl.doneMu.Unlock()
	if r.Metrics == nil || cl.index == nil {
		return
	}

	inht := &INHTBlock{
		Candidates:      histJSON(cl.index.INHTCandidates.Snapshot().Sub(cl.candBase), 1),
		Lookups:         hashAgg.Lookups,
		RetryReads:      hashAgg.RetryReads,
		Refreshes:       hashAgg.Refreshes,
		StaleEntries:    coreAgg.StaleEntries,
		FPMismatches:    coreAgg.FPMismatches,
		BucketOverflows: hashAgg.BucketOverflows,
		Splits:          hashAgg.Splits,
	}
	u := cl.inhtUsage()
	inht.LoadFactor = u.LoadFactor()
	inht.Entries = u.Entries
	inht.CapacityEntries = u.Capacity
	inht.Segments = u.Segments
	inht.DirEntries = u.DirEntries
	r.Metrics.INHT = inht

	// Leaf-address-cache section (absent for the SphinxNoLAC ablation).
	if len(cl.lacs) > 0 {
		lacSt := cl.lacStatsAgg()
		occupied, capacity, bytes := cl.lacOccupancy()
		lac := &LACBlock{
			SpecHits:      coreAgg.SpecHits,
			SpecMisses:    coreAgg.SpecMisses,
			SpecRefutes:   coreAgg.SpecRefutes,
			SpecAborts:    coreAgg.SpecAborts,
			Learns:        lacSt.Learns - cl.lacBase.Learns,
			Unlearns:      lacSt.Unlearns - cl.lacBase.Unlearns,
			Evictions:     lacSt.Evictions - cl.lacBase.Evictions,
			OccupiedSlots: occupied,
			CapacitySlots: capacity,
			SizeBytes:     bytes,
		}
		if probes := coreAgg.SpecHits + coreAgg.SpecMisses + coreAgg.SpecRefutes + coreAgg.SpecAborts; probes > 0 {
			lac.HitRate = float64(coreAgg.SpecHits) / float64(probes)
		}
		if capacity > 0 {
			lac.Occupancy = float64(occupied) / float64(capacity)
		}
		// The speculative-RT reconciliation holds only for sequential
		// read-only phases on a healthy index, like FPReconciled: every
		// speculative read then costs exactly one leaf-spec round trip
		// (hit or refute, never an abort), and the read stages — plus
		// the hot-replica read and maintenance stages when the hot layer
		// is on — sum to the fabric's own counter.
		if cl.runMetrics != nil && r.Depth == 1 &&
			coreAgg.Inserts == 0 && coreAgg.Updates == 0 && coreAgg.Deletes == 0 &&
			coreAgg.Scans == 0 && coreAgg.Restarts == 0 && coreAgg.StaleEntries == 0 {
			specRT := cl.runMetrics.StageRT(fabric.StageLeafSpec).Sum
			hashRT := cl.runMetrics.StageRT(fabric.StageHashRead).Sum
			nodeRT := cl.runMetrics.StageRT(fabric.StageNodeRead).Sum
			leafRT := cl.runMetrics.StageRT(fabric.StageLeafRead).Sum
			hotRT := cl.runMetrics.StageRT(fabric.StageHotRead).Sum +
				cl.runMetrics.StageRT(fabric.StageHotPub).Sum
			ok := specRT == coreAgg.SpecHits+coreAgg.SpecRefutes &&
				coreAgg.SpecAborts == 0 &&
				hashRT+nodeRT+leafRT+specRT+hotRT == r.Metrics.FabricRoundTrips
			lac.LACReconciled = &ok
		}
		r.Metrics.LAC = lac
	}

	// Hot read-replication section (absent unless the layer was
	// bootstrapped for this cluster).
	if cl.sphinxShared.Hot != nil && r.Metrics != nil {
		hot := &HotBlock{
			HotHits:    coreAgg.HotHits,
			HotRefutes: coreAgg.HotRefutes,
			HotAborts:  coreAgg.HotAborts,
			Promotes:   coreAgg.HotPromotes,
			Demotes:    coreAgg.HotDemotes,
			Refreshes:  coreAgg.HotRefreshes,
		}
		if attempts := coreAgg.HotHits + coreAgg.HotRefutes + coreAgg.HotAborts; attempts > 0 {
			hot.HitRate = float64(coreAgg.HotHits) / float64(attempts)
		}
		for _, hs := range cl.hotsets {
			hot.TrackerBytes += hs.SizeBytes()
		}
		// Trust-but-verify accounting, same preconditions as the LAC
		// verdict: in a sequential read-only phase every hot-read stage
		// round trip must be exactly one verified hit or one refutation.
		if cl.runMetrics != nil && r.Depth == 1 &&
			coreAgg.Inserts == 0 && coreAgg.Updates == 0 && coreAgg.Deletes == 0 &&
			coreAgg.Scans == 0 && coreAgg.Restarts == 0 && coreAgg.StaleEntries == 0 {
			hotReadRT := cl.runMetrics.StageRT(fabric.StageHotRead).Sum
			ok := hotReadRT == coreAgg.HotHits+coreAgg.HotRefutes &&
				coreAgg.HotAborts == 0
			hot.HotReconciled = &ok
		}
		r.Metrics.Hot = hot
	}

	// The filter-less ablation allocates no filter traffic even though
	// the CN filter caches exist; it gets no SFC section.
	if len(cl.filters) == 0 || cl.Sys == SphinxNoSFC {
		return
	}
	fst := cl.filterStatsAgg()
	probes := fst.Hits + fst.Misses - cl.filterBase.Hits - cl.filterBase.Misses
	occupied, capacity, load, bound := cl.filterOccupancy()
	sfc := &SFCBlock{
		HitDepth:        histJSON(cl.index.SFCHitDepth.Snapshot().Sub(cl.hitDepthBase), 1),
		Probes:          histJSON(cl.index.SFCProbes.Snapshot().Sub(cl.probesBase), 1),
		Load:            load,
		OccupiedSlots:   occupied,
		CapacitySlots:   capacity,
		FilterHits:      coreAgg.FilterHits,
		FalsePositives:  coreAgg.FalsePositives,
		Evictions:       fst.Evictions - cl.filterBase.Evictions,
		HotMarks:        fst.HotMarks - cl.filterBase.HotMarks,
		AnalyticFPBound: bound,
	}
	if probes > 0 {
		sfc.MeasuredFPRate = float64(coreAgg.FalsePositives) / float64(probes)
	}
	// The FP↔round-trip reconciliation is meaningful only when the phase
	// was purely sequential reads on a healthy index: writes and restarts
	// add hash-stage traffic of their own, and pipelining coalesces many
	// lookups into shared round trips.
	if cl.runMetrics != nil && r.Depth == 1 &&
		coreAgg.Inserts == 0 && coreAgg.Updates == 0 && coreAgg.Deletes == 0 &&
		coreAgg.Scans == 0 && coreAgg.Restarts == 0 && coreAgg.StaleEntries == 0 {
		hashRT := cl.runMetrics.StageRT(fabric.StageHashRead).Sum
		wantRT := hashAgg.Lookups + hashAgg.RetryReads + 2*hashAgg.Refreshes
		ok := hashAgg.Lookups == coreAgg.FilterHits+coreAgg.FalsePositives &&
			hashRT == wantRT
		sfc.FPReconciled = &ok
	}
	r.Metrics.SFC = sfc
}
