// Package bench is the experiment harness that regenerates the paper's
// evaluation (§V): it builds simulated DM clusters, loads datasets, drives
// YCSB workloads through each of the four compared systems and reports
// throughput, latency and memory in the same shape as the paper's figures.
package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"sphinx/internal/cuckoo"

	"sphinx/internal/artdm"
	"sphinx/internal/consistenthash"
	"sphinx/internal/core"
	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/smart"
	"sphinx/internal/ycsb"
)

// System identifies one compared index (paper §V-A Comparisons), plus the
// ablation variants this repository adds.
type System int

// The compared systems.
const (
	Sphinx System = iota
	SMART
	SMARTC // SMART with the 10× cache (paper's SMART+C)
	ART    // the original ART ported to DM

	// Ablations (not in the paper's figures; see DESIGN.md).
	SphinxNoSFC      // inner-node hash table only, filter cache disabled
	SphinxNoBatch    // doorbell batching disabled
	SphinxTinySFC    // capacity-starved filter cache (eviction pressure)
	SphinxTinyRand   // starved filter with random eviction (vs second chance)
	SphinxNoDirCache // hash-table directory caches disabled
	SphinxNoLAC      // speculative leaf-address cache disabled (3-RT warm reads)
	SphinxHot        // hotness-driven read replication enabled (skew experiment)
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case Sphinx:
		return "Sphinx"
	case SMART:
		return "SMART"
	case SMARTC:
		return "SMART+C"
	case ART:
		return "ART"
	case SphinxNoSFC:
		return "Sphinx-noSFC"
	case SphinxNoBatch:
		return "Sphinx-noDB"
	case SphinxTinySFC:
		return "Sphinx-tinySFC"
	case SphinxTinyRand:
		return "Sphinx-tinyRnd"
	case SphinxNoDirCache:
		return "Sphinx-noDirC"
	case SphinxNoLAC:
		return "Sphinx-noLAC"
	case SphinxHot:
		return "Sphinx-hot"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// PaperSystems lists the four systems of Fig. 4 and Fig. 5.
var PaperSystems = []System{Sphinx, SMART, SMARTC, ART}

// ThetaUniform is the Config.Theta sentinel selecting a truly uniform
// request distribution (zipfian theta 0). Config.Theta == 0 means
// "unset, use the paper's default 0.99", so uniform must be asked for
// explicitly.
const ThetaUniform = -1.0

// Config describes one cluster/experiment setup. Zero values select the
// defaults matching the paper's testbed shape at reduced scale.
type Config struct {
	Dataset      dataset.Kind
	Keys         int // loaded key count (paper: 60 M; default here: 100 k)
	ValueSize    int // paper: 64
	MNs, CNs     int // paper: 3 and 3 (colocated)
	Workers      int // total workers, split across CNs (paper: 6–192)
	OpsPerWorker int
	Net          fabric.Config
	Seed         int64
	// Theta is the zipfian skew of the request distribution (default the
	// paper's 0.99; lower it toward 0 for near-uniform requests). The
	// zero value means "default skew" — a truly uniform run must be
	// requested with the explicit ThetaUniform sentinel (or any negative
	// value), because 0 is indistinguishable from unset.
	Theta float64

	// Depth is the per-worker issue depth: how many operations each
	// worker keeps in flight during the run phase, with same-stage verbs
	// of concurrent ops coalesced into shared doorbell batches. 1 (the
	// default) is the sequential client; >1 applies to the Sphinx-family
	// systems only — SMART and ART keep their sequential clients, as in
	// the paper. The load phase is always sequential.
	Depth int

	// Cache budgets in bytes. Zero selects the paper's ratios: Sphinx and
	// SMART get 20 MB per 480 MB of u64 key bytes (≈4.17%), SMART+C 10×
	// that — both computed against the u64-equivalent key volume so that
	// email runs see the same absolute budget, as in §V-A.
	SphinxCache uint64
	SmartCache  uint64
	SmartCCache uint64

	// LeafCacheBytes is the Sphinx-family per-CN budget for the speculative
	// leaf-address cache (default 512 KiB — 64K packed 8-byte entries).
	// SphinxNoLAC ignores it.
	LeafCacheBytes uint64

	// Warm splits each measurement into a warmup pass and a steady-state
	// pass over the same workload: the experiment reports both phases
	// (Result.Phase "warmup" / "steady") so CN-cache learning — filter and
	// leaf-address cache alike — is visible instead of averaged away.
	Warm bool

	// SFCMode selects the Succinct Filter Cache's concurrency control for
	// the Sphinx-family systems: the default lock-free filter, or the
	// mutex-serialized baseline the scaling experiment ablates against.
	SFCMode core.FilterCacheMode

	// HotReplicas enables the hotness-driven read-replication layer for
	// the Sphinx-family systems: each CN tracks its hottest read keys and
	// promotes them into this many replicated, immutable, versioned
	// records spread over ring-successor MNs; hot reads then pick among
	// replicas with power-of-two-choices on NIC load. 0 (the default)
	// disables the layer; the SphinxHot system forces
	// core.DefaultHotReplication when unset.
	HotReplicas int

	// HotSetBytes is the per-CN budget for the hot-key tracker (frequency
	// sketch + replica route caches). 0 selects core.DefaultHotSetBytes.
	HotSetBytes uint64

	// Replication enables the memory-node fault-tolerance layer for the
	// Sphinx-family systems: every published entry is replicated to this
	// many distinct MNs, reads fail over behind the per-node health
	// breaker, and repair sweeps re-replicate after a loss. 0 (the
	// default) disables the layer; the failover experiment forces >= 2.
	Replication int

	// Faults, when non-nil, is installed on the fabric at cluster
	// creation: every phase (load and run) then exercises the retry,
	// backoff and recovery paths, and each result's fault/recovery
	// counters (Result.FaultLine) become nonzero. See
	// docs/failure-model.md.
	Faults *fabric.FaultPlan

	// Metrics enables per-phase observability: every worker client gets a
	// shared obs.Metrics batch observer and each operation's latency and
	// round trips are recorded, producing a Result.Metrics section whose
	// per-stage round-trip totals reconcile against the fabric counters.
	// Sphinx-family results additionally carry SFC and INHT efficacy
	// sections (hit-depth distribution, measured FP rate vs the analytic
	// bound, hash-table load factor).
	Metrics bool

	// Tail enables tail-latency trace sampling: sequential (depth-1)
	// workers record each op's round-trip timeline, and ops above the
	// moving per-kind p99 keep their trace, pre-explained. Counts land in
	// the Result.Metrics tail fields; the traces themselves are servable
	// via Live.
	Tail bool

	// Live, when non-nil, accumulates every phase's metrics, index
	// distributions and tail samples into a harness-lifetime surface
	// servable over HTTP while experiments run (sphinxbench -serve). It
	// implies Tail.
	Live *Live
}

func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 64
	}
	if c.MNs == 0 {
		c.MNs = 3
	}
	if c.CNs == 0 {
		c.CNs = 3
	}
	if c.Workers == 0 {
		c.Workers = 24
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 2000
	}
	if c.Net == (fabric.Config{}) {
		c.Net = fabric.DefaultConfig()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Theta == 0 {
		c.Theta = ycsb.DefaultTheta
	}
	if c.Theta < 0 {
		// ThetaUniform (or any negative sentinel): a genuinely uniform
		// request distribution. Previously `-theta 0` silently became the
		// default 0.99 skew through the zero-value branch above.
		c.Theta = 0
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	u64Bytes := uint64(c.Keys) * 8
	if c.SphinxCache == 0 {
		c.SphinxCache = u64Bytes * 417 / 10000
	}
	if c.SmartCache == 0 {
		c.SmartCache = u64Bytes * 417 / 10000
	}
	if c.SmartCCache == 0 {
		c.SmartCCache = u64Bytes * 4170 / 10000
	}
	if c.LeafCacheBytes == 0 {
		c.LeafCacheBytes = 512 << 10
	}
	return c
}

// Index is the operation surface shared by all compared systems.
type Index interface {
	Search(key []byte) ([]byte, bool, error)
	Insert(key, value []byte) (bool, error)
	Update(key, value []byte) (bool, error)
	Delete(key []byte) (bool, error)
	ScanN(lo []byte, n int) ([]rart.KV, error)
}

// Cluster is one bootstrapped system instance plus its dataset and
// workload state.
type Cluster struct {
	Sys  System
	Cfg  Config
	F    *fabric.Fabric
	Ring *consistenthash.Ring

	keys  [][]byte
	space *ycsb.KeySpace
	zipf  *ycsb.Zipfian
	value []byte

	sphinxShared core.Shared
	smartShared  smart.Shared
	artShared    artdm.Shared
	filters      []*core.FilterCache // per CN
	lacs         []*core.LeafCache   // per CN (nil for SphinxNoLAC)
	hotsets      []*core.HotSet      // per CN (nil unless hot replication is on)
	caches       []*smart.NodeCache  // per CN

	// runMetrics is the current measurement phase's metric set, created
	// fresh at the top of Load and Run when Cfg.Metrics is set and shared
	// by every worker client of that phase (obs.Metrics is atomic).
	runMetrics *obs.Metrics
	// live is Cfg.Live: the harness-lifetime surface every phase also
	// reports into (teed with runMetrics on each worker client).
	live *Live
	// index receives SFC/INHT distribution observations from every
	// Sphinx worker; per-phase sections diff against the *Base snapshots
	// taken at phase start (the set itself accumulates, so a live scrape
	// mid-phase sees it moving).
	index        *obs.IndexMetrics
	hitDepthBase obs.HistSnapshot
	probesBase   obs.HistSnapshot
	candBase     obs.HistSnapshot
	filterBase   cuckoo.Stats
	lacBase      core.LACStats
	// tail samples slow-op timelines from sequential workers.
	tail                     *obs.TailSampler
	tailBaseOff, tailBaseCap uint64

	// doneMu guards the lifetime core/hash counter totals folded in at
	// each phase end, read by live-registry scrape goroutines.
	doneMu   sync.Mutex
	doneCore core.Stats
	doneHash racehash.Stats
}

// NewCluster builds the fabric, bootstraps the system and generates the
// dataset (not yet loaded into the index).
func NewCluster(sys System, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	f := fabric.New(cfg.Net)
	if cfg.Faults != nil {
		f.SetFaultPlan(cfg.Faults)
	}
	nodes := make([]mem.NodeID, cfg.MNs)
	perMN := uint64(64<<20) + uint64(cfg.Keys)*6*1024/uint64(cfg.MNs)
	for i := range nodes {
		nodes[i] = f.AddNode(perMN)
	}
	ring, err := consistenthash.NewChecked(nodes, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: building placement ring: %w", err)
	}

	cl := &Cluster{Sys: sys, Cfg: cfg, F: f, Ring: ring, live: cfg.Live}
	switch {
	case cfg.Live != nil:
		cl.index = cfg.Live.Index
		cl.tail = cfg.Live.Tail
	default:
		if cfg.Metrics {
			cl.index = obs.NewIndexMetrics()
		}
		if cfg.Tail {
			cl.tail = obs.NewTailSampler(0, 0)
		}
	}
	cl.keys = dataset.Generate(cfg.Dataset, cfg.Keys, cfg.Seed)
	cl.space = ycsb.NewKeySpace(cl.keys, dataset.Novel(cfg.Dataset, cfg.Seed+7))
	cl.zipf = ycsb.NewZipfian(uint64(cfg.Keys), cfg.Theta)
	cl.value = make([]byte, cfg.ValueSize)
	rand.New(rand.NewSource(cfg.Seed)).Read(cl.value)

	switch sys {
	case Sphinx, SphinxNoSFC, SphinxNoBatch, SphinxTinySFC, SphinxTinyRand, SphinxNoDirCache, SphinxNoLAC, SphinxHot:
		if cfg.Replication > 0 {
			cl.sphinxShared, err = core.BootstrapReplicated(f, ring, cfg.Keys, cfg.Replication)
		} else {
			cl.sphinxShared, err = core.Bootstrap(f, ring, cfg.Keys)
		}
		hotR := cfg.HotReplicas
		if sys == SphinxHot && hotR == 0 {
			hotR = core.DefaultHotReplication
		}
		if err == nil && hotR > 0 {
			if err = core.BootstrapHot(f, &cl.sphinxShared, 4096, hotR); err == nil {
				cl.hotsets = make([]*core.HotSet, cfg.CNs)
				for i := range cl.hotsets {
					cl.hotsets[i] = core.NewHotSet(cfg.HotSetBytes, uint64(cfg.Seed)+uint64(i)*7919+3, cl.sphinxShared.Hot.R)
				}
			}
		}
		cl.filters = make([]*core.FilterCache, cfg.CNs)
		for i := range cl.filters {
			budget := cfg.SphinxCache
			policy := cuckoo.PolicySecondChance
			switch sys {
			case SphinxTinySFC:
				budget /= 64
			case SphinxTinyRand:
				budget /= 64
				policy = cuckoo.PolicyRandom
			}
			cl.filters[i] = core.NewFilterCacheBytesPolicyMode(budget, uint64(cfg.Seed)+uint64(i)|1, policy, cfg.SFCMode)
		}
		if sys != SphinxNoLAC {
			cl.lacs = make([]*core.LeafCache, cfg.CNs)
			for i := range cl.lacs {
				cl.lacs[i] = core.NewLeafCacheBytes(cfg.LeafCacheBytes, uint64(cfg.Seed)+uint64(i))
			}
		}
	case SMART, SMARTC:
		cl.smartShared, err = smart.Bootstrap(f, ring)
		budget := cfg.SmartCache
		if sys == SMARTC {
			budget = cfg.SmartCCache
		}
		cl.caches = make([]*smart.NodeCache, cfg.CNs)
		for i := range cl.caches {
			cl.caches[i] = smart.NewNodeCache(budget)
		}
	case ART:
		cl.artShared, err = artdm.Bootstrap(f, ring)
	default:
		return nil, fmt.Errorf("bench: unknown system %v", sys)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Live != nil {
		cfg.Live.attach(cl)
	}
	return cl, nil
}

// phaseObs composes the harness-lifetime and per-phase batch observers
// for a worker client, returning nil when neither is active. The nil
// check matters at the call sites: installing a typed-nil observer would
// make the interface non-nil and panic on the first batch.
func (cl *Cluster) phaseObs() fabric.BatchObserver {
	var live, phase fabric.BatchObserver
	if cl.live != nil {
		live = cl.live.Metrics
	}
	if cl.runMetrics != nil {
		phase = cl.runMetrics
	}
	switch {
	case live != nil && phase != nil:
		return obs.Tee{A: live, B: phase}
	case live != nil:
		return live
	default:
		return phase
	}
}

// observeOp records one finished operation into the per-phase and
// harness-lifetime metric sets (whichever are active).
func (cl *Cluster) observeOp(k obs.OpKind, latencyPs int64, roundTrips uint64) {
	if cl.runMetrics != nil {
		cl.runMetrics.ObserveOp(k, latencyPs, roundTrips)
	}
	if cl.live != nil {
		cl.live.Metrics.ObserveOp(k, latencyPs, roundTrips)
	}
}

// scanAdapter bridges the per-system Scan(lo, hi, limit) signatures to the
// YCSB scan(start, count) shape.
type sphinxIndex struct{ c *core.Client }

func (s sphinxIndex) Search(k []byte) ([]byte, bool, error) { return s.c.Search(k) }
func (s sphinxIndex) Insert(k, v []byte) (bool, error)      { return s.c.Insert(k, v) }
func (s sphinxIndex) Update(k, v []byte) (bool, error)      { return s.c.Update(k, v) }
func (s sphinxIndex) Delete(k []byte) (bool, error)         { return s.c.Delete(k) }
func (s sphinxIndex) ScanN(lo []byte, n int) ([]rart.KV, error) {
	return s.c.Scan(lo, nil, n)
}
func (s sphinxIndex) engine() *rart.Engine { return s.c.Engine() }

type smartIndex struct{ c *smart.Client }

func (s smartIndex) Search(k []byte) ([]byte, bool, error) { return s.c.Search(k) }
func (s smartIndex) Insert(k, v []byte) (bool, error)      { return s.c.Insert(k, v) }
func (s smartIndex) Update(k, v []byte) (bool, error)      { return s.c.Update(k, v) }
func (s smartIndex) Delete(k []byte) (bool, error)         { return s.c.Delete(k) }
func (s smartIndex) ScanN(lo []byte, n int) ([]rart.KV, error) {
	return s.c.Scan(lo, nil, n)
}
func (s smartIndex) engine() *rart.Engine { return s.c.Engine() }

type artIndex struct{ c *artdm.Client }

func (s artIndex) Search(k []byte) ([]byte, bool, error) { return s.c.Search(k) }
func (s artIndex) Insert(k, v []byte) (bool, error)      { return s.c.Insert(k, v) }
func (s artIndex) Update(k, v []byte) (bool, error)      { return s.c.Update(k, v) }
func (s artIndex) Delete(k []byte) (bool, error)         { return s.c.Delete(k) }
func (s artIndex) ScanN(lo []byte, n int) ([]rart.KV, error) {
	return s.c.Scan(lo, nil, n)
}
func (s artIndex) engine() *rart.Engine { return s.c.Engine() }

// sphinxOptions returns the core.Options for one worker of a
// Sphinx-family system on the given compute node, or ok=false for the
// baselines.
func (cl *Cluster) sphinxOptions(cn int) (core.Options, bool) {
	var o core.Options
	switch cl.Sys {
	case Sphinx, SphinxNoBatch, SphinxTinySFC, SphinxTinyRand, SphinxNoLAC, SphinxHot:
		o = core.Options{Filter: cl.filters[cn%len(cl.filters)]}
	case SphinxNoSFC:
		o = core.Options{DisableFilter: true}
	case SphinxNoDirCache:
		o = core.Options{
			Filter:          cl.filters[cn%len(cl.filters)],
			DisableDirCache: true,
		}
	default:
		return core.Options{}, false
	}
	// Every Sphinx-family variant shares its CN's leaf-address cache, so
	// that (like the filter) warmth crosses worker and phase boundaries;
	// SphinxNoLAC has none and runs with the fast path disabled.
	if len(cl.lacs) > 0 {
		o.LeafCache = cl.lacs[cn%len(cl.lacs)]
	} else {
		o.DisableLeafCache = true
	}
	// Workers of one CN share that CN's hot-key tracker, like the filter:
	// the promotion claim bit then arbitrates one promoter per CN and the
	// learned replica routes are visible to every worker on the node.
	if len(cl.hotsets) > 0 {
		o.Hot = cl.hotsets[cn%len(cl.hotsets)]
	}
	// The nil guard matters: assigning a nil observer interface
	// unconditionally would make the field non-nil and panic on first
	// event.
	if observer := cl.phaseObs(); observer != nil {
		o.Observer = observer
	}
	o.Index = cl.index
	return o, true
}

// NewIndex mounts the cluster's system for one worker on the given compute
// node. The returned index is single-worker; CN-level caches are shared.
func (cl *Cluster) NewIndex(cn int) (Index, *fabric.Client) {
	fc := cl.F.NewClient()
	if cl.Sys == SphinxNoBatch {
		fc.SetNoBatch(true)
	}
	if observer := cl.phaseObs(); observer != nil {
		fc.SetObserver(observer)
	}
	if opts, ok := cl.sphinxOptions(cn); ok {
		return sphinxIndex{core.NewClient(cl.sphinxShared, fc, opts)}, fc
	}
	switch cl.Sys {
	case SMART, SMARTC:
		c := smart.NewClient(cl.smartShared, fc, smart.Options{Cache: cl.caches[cn%len(cl.caches)]})
		return smartIndex{c}, fc
	case ART:
		c := artdm.NewClient(cl.artShared, fc, rart.Config{})
		return artIndex{c}, fc
	default:
		panic("bench: unknown system")
	}
}

// NewIndexNoSpec mounts a Sphinx-family worker like NewIndex but with
// the speculative leaf-address cache disabled. The elastic chaos run's
// measured workers use this: the LAC's 1-RT hits mask most of a
// migration's epoch-fallback cost, and its shared-slot collision
// refutes cost the same 4 round trips as a fallback — latency-
// indistinguishable from chaos. With it off the warm read path is
// deterministic, so the run's latency SLO cleanly separates steady
// windows from transitions. Baselines (no speculation) fall through to
// NewIndex.
func (cl *Cluster) NewIndexNoSpec(cn int) (Index, *fabric.Client) {
	opts, ok := cl.sphinxOptions(cn)
	if !ok {
		return cl.NewIndex(cn)
	}
	opts.LeafCache = nil
	opts.DisableLeafCache = true
	fc := cl.F.NewClient()
	if cl.Sys == SphinxNoBatch {
		fc.SetNoBatch(true)
	}
	if observer := cl.phaseObs(); observer != nil {
		fc.SetObserver(observer)
	}
	return sphinxIndex{core.NewClient(cl.sphinxShared, fc, opts)}, fc
}

// NewPipeline mounts a pipelined Sphinx executor for one worker, or
// ok=false for the baseline systems, which keep sequential clients. The
// returned fabric client is the executor's main client: all round trips
// and bytes account there, exactly as for a sequential worker.
func (cl *Cluster) NewPipeline(cn int) (*core.Pipeline, *fabric.Client, bool) {
	opts, ok := cl.sphinxOptions(cn)
	if !ok {
		return nil, nil, false
	}
	fc := cl.F.NewClient()
	if cl.Sys == SphinxNoBatch {
		fc.SetNoBatch(true)
	}
	if observer := cl.phaseObs(); observer != nil {
		fc.SetObserver(observer)
	}
	return core.NewPipeline(cl.sphinxShared, fc, opts), fc, true
}

// Keys exposes the loaded key set (for verification in tests).
func (cl *Cluster) Keys() [][]byte { return cl.keys }

// Value returns the run's value payload.
func (cl *Cluster) Value() []byte { return cl.value }
