package fabric

import (
	"sync/atomic"

	"sphinx/internal/mem"
)

// loadCacheRefreshEvery is the default tick period of a LoadCache: how
// many Tick calls elapse between snapshot refreshes. Refreshing takes the
// fabric mutex plus every per-NIC lock, which is far too expensive per
// operation; at one refresh per 256 route decisions the amortized cost is
// a fraction of a single verb post.
const loadCacheRefreshEvery = 256

// loadSnap is one immutable per-MN contention snapshot: a score per node,
// swapped in whole via an atomic pointer so readers never see a torn
// refresh.
type loadSnap struct {
	score []int64 // indexed by NodeID
	wait  []int64 // cumulative WaitPs at snapshot time (next window's base)
	busy  []int64 // cumulative BusyPs at snapshot time
}

// LoadCache is a cheap, slightly stale view of per-MN NIC contention for
// replica-choice routing. The authoritative signal is the fabric's
// per-NIC queued-wait counter (nic.waitPs: time batches spent waiting on
// a saturated NIC), but reading it takes locks — so the cache refreshes a
// windowed snapshot once every loadCacheRefreshEvery ticks and serves
// route decisions lock-free from the last snapshot.
//
// The score of a node is its last-window queueing delay, with last-window
// busy time as the low-order tiebreak: waitPs separates saturated NICs
// from idle ones, and when nothing queues yet, busyPs still points the
// chooser away from the NIC doing more work. Staleness is bounded by the
// refresh period and is exactly the point: power-of-two-choices needs
// only a signal that is right on average, and a tick-fresh signal would
// cost more than the imbalance it removes.
type LoadCache struct {
	f     *Fabric
	every uint64
	ticks atomic.Uint64
	snap  atomic.Pointer[loadSnap]
}

// NewLoadCache creates a contention cache over the fabric, refreshing
// every refreshEvery ticks (0 selects the default period). The first
// snapshot is taken immediately.
func (f *Fabric) NewLoadCache(refreshEvery uint64) *LoadCache {
	if refreshEvery == 0 {
		refreshEvery = loadCacheRefreshEvery
	}
	lc := &LoadCache{f: f, every: refreshEvery}
	lc.Refresh()
	return lc
}

// Tick advances the cache's route-decision counter, refreshing the
// snapshot when the period elapses. Callers tick once per route decision.
func (lc *LoadCache) Tick() {
	if lc.ticks.Add(1)%lc.every == 0 {
		lc.Refresh()
	}
}

// Refresh rebuilds the snapshot from live NIC counters. Concurrent
// refreshes are harmless (both publish a valid snapshot).
func (lc *LoadCache) Refresh() {
	stats := lc.f.NICStats()
	prev := lc.snap.Load()
	ns := &loadSnap{
		score: make([]int64, len(stats)),
		wait:  make([]int64, len(stats)),
		busy:  make([]int64, len(stats)),
	}
	for i, s := range stats {
		ns.wait[i] = s.WaitPs
		ns.busy[i] = s.BusyPs
		var pw, pb int64
		if prev != nil && i < len(prev.wait) {
			pw, pb = prev.wait[i], prev.busy[i]
		}
		waitWin := s.WaitPs - pw
		busyWin := s.BusyPs - pb
		// Queueing dominates; busy time breaks ties between unsaturated
		// NICs. The shift keeps both in one comparable scalar without
		// overflow at realistic window sizes.
		ns.score[i] = waitWin*8 + busyWin
	}
	lc.snap.Store(ns)
}

// Score returns the node's contention score from the last snapshot
// (higher = more loaded). Unknown nodes score 0.
func (lc *LoadCache) Score(id mem.NodeID) int64 {
	s := lc.snap.Load()
	if s == nil || int(id) >= len(s.score) {
		return 0
	}
	return s.score[id]
}

// PickLighter is the power-of-two-choices decision: between two candidate
// replicas it returns the one whose NIC scored lower contention in the
// last window, preferring a on ties (callers pass their primary first).
// It ticks the cache, so sustained routing keeps the snapshot fresh.
func (lc *LoadCache) PickLighter(a, b mem.NodeID) mem.NodeID {
	lc.Tick()
	if lc.Score(b) < lc.Score(a) {
		return b
	}
	return a
}
