package fabric

import (
	"bytes"
	"sync"
	"testing"

	"sphinx/internal/mem"
)

func newTestFabric(cfg Config) (*Fabric, mem.NodeID) {
	f := New(cfg)
	id := f.AddNode(1 << 20)
	return f, id
}

func TestReadWriteRoundTrip(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	c := f.NewClient()
	src := []byte("sphinx over simulated rdma")
	addr := mem.NewAddr(id, 4096)
	if err := c.Write(addr, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := c.Read(addr, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Errorf("round trip: %q != %q", dst, src)
	}
}

func TestUint64Helpers(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	c := f.NewClient()
	addr := mem.NewAddr(id, 512)
	if err := c.WriteUint64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := c.ReadUint64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("ReadUint64 = %#x", v)
	}
}

func TestCASAndFAA(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	c := f.NewClient()
	addr := mem.NewAddr(id, 256)
	if err := c.WriteUint64(addr, 7); err != nil {
		t.Fatal(err)
	}
	old, err := c.CompareSwap(addr, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if old != 7 {
		t.Errorf("CAS pre-image = %d", old)
	}
	old, err = c.FetchAdd(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if old != 9 {
		t.Errorf("FAA pre-image = %d", old)
	}
	v, _ := c.ReadUint64(addr)
	if v != 12 {
		t.Errorf("final value = %d, want 12", v)
	}
}

func TestUnknownNodeError(t *testing.T) {
	f, _ := newTestFabric(InstantConfig())
	c := f.NewClient()
	if err := c.Read(mem.NewAddr(42, 0), make([]byte, 8)); err == nil {
		t.Error("expected error reading unknown node")
	}
}

func TestBatchIsOneRoundTrip(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	c := f.NewClient()
	var bufs [8][8]byte
	ops := make([]Op, 8)
	for i := range ops {
		ops[i] = Op{Kind: Read, Addr: mem.NewAddr(id, uint64(i)*64), Data: bufs[i][:]}
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.RoundTrips != 1 {
		t.Errorf("batch of 8 took %d round trips, want 1", s.RoundTrips)
	}
	if s.Verbs != 8 {
		t.Errorf("verbs = %d, want 8", s.Verbs)
	}
}

func TestSequentialReadsAreSeparateRoundTrips(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	c := f.NewClient()
	buf := make([]byte, 8)
	for i := 0; i < 5; i++ {
		if err := c.Read(mem.NewAddr(id, uint64(i)*64), buf); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.RoundTrips != 5 {
		t.Errorf("round trips = %d, want 5", s.RoundTrips)
	}
}

func TestBatchSpanningNodesIsOneRoundTrip(t *testing.T) {
	f := New(DefaultConfig())
	a := f.AddNode(1 << 16)
	b := f.AddNode(1 << 16)
	c := f.NewClient()
	var b1, b2 [8]byte
	ops := []Op{
		{Kind: Read, Addr: mem.NewAddr(a, 0), Data: b1[:]},
		{Kind: Read, Addr: mem.NewAddr(b, 0), Data: b2[:]},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.RoundTrips != 1 {
		t.Errorf("cross-node batch took %d round trips, want 1", s.RoundTrips)
	}
}

func TestClockAdvancesByCostModel(t *testing.T) {
	cfg := Config{RTTPs: 2_000_000, PerVerbPs: 10_000, PerByteFs: 1_000_000, ClientVerbPs: 100_000}
	f := New(cfg)
	id := f.AddNode(1 << 16)
	c := f.NewClient()
	buf := make([]byte, 64)
	if err := c.Read(mem.NewAddr(id, 0), buf); err != nil {
		t.Fatal(err)
	}
	// client 100000 + nic (10000 + 64*1000) + rtt 2000000
	want := int64(100_000 + 10_000 + 64_000 + 2_000_000)
	if c.Clock() != want {
		t.Errorf("clock = %d, want %d", c.Clock(), want)
	}
}

func TestInstantConfigZeroTime(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	c := f.NewClient()
	if err := c.Write(mem.NewAddr(id, 0), make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if c.Clock() != 0 {
		t.Errorf("instant config advanced the clock to %d", c.Clock())
	}
}

func TestNICContentionInflatesLatency(t *testing.T) {
	// Saturate one MN NIC with a large transfer from one client; a second
	// client issuing afterwards must queue behind it.
	cfg := Config{RTTPs: 1_000_000, PerVerbPs: 0, PerByteFs: 1_000_000_000} // 1ns per byte
	f := New(cfg)
	id := f.AddNode(1 << 20)
	hog := f.NewClient()
	late := f.NewClient()
	if err := hog.Write(mem.NewAddr(id, 0), make([]byte, 100_000)); err != nil {
		t.Fatal(err)
	}
	if err := late.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// The hog reserved 100 µs of NIC time starting at 0; the late client's
	// 8-byte read must start after it.
	minLate := int64(100_000 * 1_000_000) // 100 µs in ps
	if late.Clock() < minLate {
		t.Errorf("late client clock %d shows no queueing (want ≥ %d)", late.Clock(), minLate)
	}
}

func TestNICStatsAccumulate(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	c := f.NewClient()
	if err := c.Write(mem.NewAddr(id, 0), make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	st := f.NICStats()
	if len(st) != 1 || st[0].Verbs != 1 || st[0].Bytes != 256 {
		t.Errorf("NIC stats = %+v", st)
	}
}

func TestStatsSubAdd(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	c := f.NewClient()
	before := c.Stats()
	_ = c.Write(mem.NewAddr(id, 0), make([]byte, 8))
	_ = c.Read(mem.NewAddr(id, 0), make([]byte, 8))
	delta := c.Stats().Sub(before)
	if delta.RoundTrips != 2 || delta.BytesRead != 8 || delta.BytesWrite != 8 {
		t.Errorf("delta = %+v", delta)
	}
	sum := delta.Add(delta)
	if sum.RoundTrips != 4 {
		t.Errorf("sum round trips = %d", sum.RoundTrips)
	}
}

func TestBatchExecutesInPostingOrder(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	c := f.NewClient()
	addr := mem.NewAddr(id, 128)
	// Write 5 then CAS 5→6 in one batch: CAS must observe the write.
	var five [8]byte
	five[0] = 5
	ops := []Op{
		{Kind: Write, Addr: addr, Data: five[:]},
		{Kind: CAS, Addr: addr, Expect: 5, Desired: 6},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	if ops[1].Old != 5 {
		t.Errorf("CAS pre-image = %d, want 5 (ordering violated)", ops[1].Old)
	}
	v, _ := c.ReadUint64(addr)
	if v != 6 {
		t.Errorf("final = %d, want 6", v)
	}
}

func TestConcurrentClientsFAA(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	addr := mem.NewAddr(id, 512) // clear of the allocator header
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := f.NewClient()
			for i := 0; i < each; i++ {
				if _, err := c.FetchAdd(addr, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c := f.NewClient()
	v, _ := c.ReadUint64(addr)
	if v != workers*each {
		t.Errorf("FAA total = %d, want %d", v, workers*each)
	}
}

func TestAllocatorOverFabricPaysRoundTrips(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	c := f.NewClient()
	a := mem.NewAllocator(c, 4096)
	if _, err := a.Alloc(id, mem.ClassInner, 64); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.RoundTrips != 2 {
		t.Errorf("slab reservation took %d round trips, want 2 (bump FAA + class FAA)", s.RoundTrips)
	}
}

func TestVerbKindString(t *testing.T) {
	if Read.String() != "READ" || Write.String() != "WRITE" || CAS.String() != "CAS" || FAA.String() != "FAA" {
		t.Error("verb names wrong")
	}
}
