package fabric

import (
	"sync"
	"testing"

	"sphinx/internal/mem"
)

// TestNICBackfill verifies the slotted-timeline property that motivated
// it: a client whose virtual clock is far behind another's must be able
// to use NIC capacity in its own (earlier) time region, instead of
// queueing behind work that is later in virtual time.
func TestNICBackfill(t *testing.T) {
	cfg := Config{RTTPs: 1_000_000, PerVerbPs: 10_000}
	f := New(cfg)
	id := f.AddNode(1 << 16)

	// Client A runs far ahead in virtual time.
	a := f.NewClient()
	a.AdvanceClock(1_000_000_000) // 1 ms
	if err := a.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Client B arrives later in real time but earlier in virtual time;
	// the NIC was idle then, so B must complete near its own clock.
	b := f.NewClient()
	if err := b.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	want := cfg.RTTPs + cfg.PerVerbPs
	if b.Clock() > want+nicSlotPs {
		t.Errorf("late-arriving early-clock client pushed to %d ps; want ≈%d (no backfill)", b.Clock(), want)
	}
}

// TestNICSaturation verifies that overload at one virtual instant spills
// work into later slots: N clients all issuing at t=0 must see growing
// completion times once demand exceeds slot capacity.
func TestNICSaturation(t *testing.T) {
	// Each verb costs 400000 ps of NIC time: one 1 µs slot holds 2.5.
	cfg := Config{RTTPs: 0, PerVerbPs: 400_000}
	f := New(cfg)
	id := f.AddNode(1 << 16)
	const n = 20
	clocks := make([]int64, n)
	for i := 0; i < n; i++ {
		c := f.NewClient()
		if err := c.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
		clocks[i] = c.Clock()
	}
	// 20 × 0.4 µs = 8 µs of demand at t=0: the last completions must be
	// pushed several slots out.
	var max int64
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	if max < 6_000_000 {
		t.Errorf("max completion %d ps; saturation did not spill into later slots", max)
	}
}

func TestResetTimelines(t *testing.T) {
	f := New(Config{RTTPs: 1_000_000, PerVerbPs: 900_000})
	id := f.AddNode(1 << 16)
	// Saturate the early timeline.
	for i := 0; i < 10; i++ {
		c := f.NewClient()
		if err := c.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	f.ResetTimelines()
	c := f.NewClient()
	if err := c.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if c.Clock() > 2_000_000+nicSlotPs {
		t.Errorf("post-reset client queued to %d ps; timeline not cleared", c.Clock())
	}
}

func TestNoBatchMode(t *testing.T) {
	f := New(DefaultConfig())
	id := f.AddNode(1 << 16)
	c := f.NewClient()
	c.SetNoBatch(true)
	ops := make([]Op, 4)
	bufs := make([][8]byte, 4)
	for i := range ops {
		ops[i] = Op{Kind: Read, Addr: mem.NewAddr(id, uint64(i)*64), Data: bufs[i][:]}
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RoundTrips; got != 4 {
		t.Errorf("no-batch mode: %d round trips for 4 verbs, want 4", got)
	}
	// Ordering within the former batch must be preserved.
	c2 := f.NewClient()
	c2.SetNoBatch(true)
	addr := mem.NewAddr(id, 512)
	var five [8]byte
	five[0] = 5
	seq := []Op{
		{Kind: Write, Addr: addr, Data: five[:]},
		{Kind: CAS, Addr: addr, Expect: 5, Desired: 6},
	}
	if err := c2.Batch(seq); err != nil {
		t.Fatal(err)
	}
	if seq[1].Old != 5 {
		t.Errorf("no-batch ordering violated: CAS saw %d", seq[1].Old)
	}
}

func TestNICBackfillConcurrent(t *testing.T) {
	// Hammer the timeline from goroutines with wildly different virtual
	// clocks; the map-based slots must stay consistent under -race.
	f := New(Config{RTTPs: 100_000, PerVerbPs: 50_000})
	id := f.AddNode(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := f.NewClient()
			c.AdvanceClock(int64(w) * 10_000_000)
			for i := 0; i < 200; i++ {
				if err := c.Read(mem.NewAddr(id, 0), make([]byte, 8)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := f.NICStats()
	if st[0].Verbs != 8*200 {
		t.Errorf("verbs = %d, want %d", st[0].Verbs, 8*200)
	}
}

func TestCostModelByteRounding(t *testing.T) {
	// Per-byte costs are charged in femtoseconds and rounded up to whole
	// picoseconds per op, never down to zero.
	cfg := Config{PerByteFs: 1} // 1 fs/B: 64 B = 0.064 ps → must charge ≥1 ps
	f := New(cfg)
	id := f.AddNode(1 << 16)
	c := f.NewClient()
	if err := c.Read(mem.NewAddr(id, 0), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	st := f.NICStats()
	if st[0].BusyPs < 1 {
		t.Errorf("sub-picosecond byte cost rounded to zero: %d", st[0].BusyPs)
	}
}

func TestBatchChargesEachTargetNIC(t *testing.T) {
	cfg := Config{PerVerbPs: 1000}
	f := New(cfg)
	a := f.AddNode(1 << 16)
	b := f.AddNode(1 << 16)
	c := f.NewClient()
	ops := []Op{
		{Kind: Read, Addr: mem.NewAddr(a, 0), Data: make([]byte, 8)},
		{Kind: Read, Addr: mem.NewAddr(a, 64), Data: make([]byte, 8)},
		{Kind: Read, Addr: mem.NewAddr(b, 0), Data: make([]byte, 8)},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	st := f.NICStats()
	if st[0].Verbs != 2 || st[1].Verbs != 1 {
		t.Errorf("per-NIC verb split wrong: %+v", st)
	}
	if st[0].BusyPs != 2000 || st[1].BusyPs != 1000 {
		t.Errorf("per-NIC busy split wrong: %+v", st)
	}
}
