package fabric

// Stage labels what part of an index operation a doorbell batch serves.
// The index layers annotate their fabric client with the current stage
// (Client.SetStage) before posting batches, so an installed BatchObserver
// can attribute round trips, verbs, bytes and virtual latency to the
// paper's per-stage cost model (§III, §IV) without the fabric knowing
// anything about trees, hash tables or filters.
type Stage uint8

// Batch stages, in rough warm-path order. StageFilterProbe never reaches
// the fabric (the succinct filter cache is CN-local); it exists so trace
// annotations can label the probe step with the same vocabulary.
const (
	StageNone        Stage = iota // unannotated traffic
	StageFlush                    // pipelined session's shared doorbell flush (mixed stages)
	StageFilterProbe              // local SFC probe — trace label only, no round trip
	StageHashRead                 // inner-node hash table bucket read (§III-A)
	StageNodeRead                 // inner node fetch
	StageLeafRead                 // leaf fetch
	StageLock                     // node lease acquisition (CAS + piggybacked read)
	StageAlloc                    // allocator FAA traffic
	StageLeafWrite                // leaf image write (fresh, in-place or invalidation)
	StageNodeWrite                // fresh inner node write
	StageInstall                  // slot install / delete commit with piggybacked unlock
	StagePublish                  // post-commit publication (grow/split swings, repairs)
	StageUnlock                   // bare lock release
	StageScan                     // scan descent traffic
	StageLeafSpec                 // speculative 1-RT leaf read off the CN-side leaf-address cache
	StageHotRead                  // speculative 1-RT hot-replica record read (replica chosen by p2c)
	StageHotPub                   // hot-replica maintenance: promotion publishes, write-side probe/refresh, demotion removes

	// NumStages sizes per-stage arrays.
	NumStages = int(StageHotPub) + 1
)

// String names the stage as metrics and traces report it.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageFlush:
		return "flush"
	case StageFilterProbe:
		return "sfc-probe"
	case StageHashRead:
		return "hash-read"
	case StageNodeRead:
		return "node-read"
	case StageLeafRead:
		return "leaf-read"
	case StageLock:
		return "lock"
	case StageAlloc:
		return "alloc"
	case StageLeafWrite:
		return "leaf-write"
	case StageNodeWrite:
		return "node-write"
	case StageInstall:
		return "install"
	case StagePublish:
		return "publish"
	case StageUnlock:
		return "unlock"
	case StageScan:
		return "scan"
	case StageLeafSpec:
		return "leaf-spec"
	case StageHotRead:
		return "hot-read"
	case StageHotPub:
		return "hot-pub"
	default:
		return "stage?"
	}
}

// BatchEvent describes one doorbell batch — or one pipeline lane's share
// of a coalesced flush — to an observer.
type BatchEvent struct {
	Stage   Stage
	StartPs int64 // observed client's clock when the batch was posted
	EndPs   int64 // observed client's clock at completion
	Verbs   int   // verbs that actually executed
	Bytes   uint64
	// RoundTrips is how many round trips the event added to the observed
	// client's accounting: 1 for an ordinary batch; 0 for a pipeline
	// lane's share of a shared flush (the flush accounts on the main
	// client) and for rejected or crashed batches that never completed.
	RoundTrips uint64
	// Err is the fault the batch completed with, nil on success.
	Err error
}

// BatchObserver receives an event for every doorbell batch the observed
// client executes. An observer shared across clients (pipeline mains and
// their lanes, or several workers) must be safe for concurrent use.
type BatchObserver interface {
	ObserveBatch(ev BatchEvent)
}
