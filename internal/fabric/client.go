package fabric

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"sphinx/internal/mem"
)

// Stats accumulates one client's network accounting. Round trips and bytes
// are the quantities the paper's analysis is phrased in (§III), so the
// index implementations are validated against them directly in tests. The
// fault counters record what the installed FaultPlan injected against this
// client; they stay zero on a fault-free fabric.
//
// The client increments these fields atomically and Client.Stats loads
// them atomically, so a live metrics scrape can snapshot a client while
// pipeline flushes drive it from another goroutine. A snapshot is a set
// of monotone counters, not an atomic cut across fields.
type Stats struct {
	RoundTrips uint64
	Verbs      uint64
	BytesRead  uint64
	BytesWrite uint64
	ByKind     [4]uint64

	Transients      uint64 // batches failed with ErrTransient
	Timeouts        uint64 // batches whose completion was lost (ErrTimeout)
	NodeDownRejects uint64 // batches rejected by a node-down window or a killed node
	HealthRejects   uint64 // batches rejected locally by an open/dead breaker (zero cost)
	Delays          uint64 // latency spikes injected
}

// Sub returns s - t, field-wise; used to measure a single index operation.
func (s Stats) Sub(t Stats) Stats {
	s.RoundTrips -= t.RoundTrips
	s.Verbs -= t.Verbs
	s.BytesRead -= t.BytesRead
	s.BytesWrite -= t.BytesWrite
	for i := range s.ByKind {
		s.ByKind[i] -= t.ByKind[i]
	}
	s.Transients -= t.Transients
	s.Timeouts -= t.Timeouts
	s.NodeDownRejects -= t.NodeDownRejects
	s.HealthRejects -= t.HealthRejects
	s.Delays -= t.Delays
	return s
}

// Add returns s + t, field-wise; used to aggregate workers.
func (s Stats) Add(t Stats) Stats {
	s.RoundTrips += t.RoundTrips
	s.Verbs += t.Verbs
	s.BytesRead += t.BytesRead
	s.BytesWrite += t.BytesWrite
	for i := range s.ByKind {
		s.ByKind[i] += t.ByKind[i]
	}
	s.Transients += t.Transients
	s.Timeouts += t.Timeouts
	s.NodeDownRejects += t.NodeDownRejects
	s.HealthRejects += t.HealthRejects
	s.Delays += t.Delays
	return s
}

// Client is one compute-node worker's endpoint on the fabric. Each client
// has a private virtual clock; clients are not safe for concurrent use
// (each worker goroutine owns one, mirroring per-coroutine QPs in the
// paper's systems).
type Client struct {
	f       *Fabric
	id      int
	clock   int64 // picoseconds of virtual time
	stats   Stats
	noBatch bool

	// pipe, when non-nil, marks this client as a pipeline lane: its
	// doorbell batches are handed to the pipe, which coalesces the
	// batches of all runnable lanes into one flush on the pipe's main
	// client. See pipe.go.
	pipe *Pipe

	// Observability state: the stage label the index layer has annotated
	// on this client (see stage.go) and an optional per-batch observer.
	stage Stage
	obs   BatchObserver

	// Fault-injection state: the plan snapshot taken at creation, the
	// private deterministic random stream, the count of verbs actually
	// posted (for crash points), and whether the client has crashed.
	plan    *FaultPlan
	rng     uint64
	posted  uint64
	crashed bool
}

// SetNoBatch disables doorbell batching for this client: every verb in a
// Batch pays its own round trip. This exists for the ablation study of the
// batching mechanism (paper [23]); correctness is unaffected because verbs
// still execute in posting order.
func (c *Client) SetNoBatch(v bool) { c.noBatch = v }

// NewClient creates a client with clock zero. Client IDs are assigned in
// creation order; together with the fault plan's seed they determine the
// client's private fault and jitter stream.
func (f *Fabric) NewClient() *Client {
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	plan := f.plan
	f.mu.Unlock()
	var seed uint64
	if plan != nil {
		seed = plan.Seed
	}
	return &Client{
		f: f, id: id, plan: plan,
		rng: mix64(seed + 0x9e3779b97f4a7c15*(uint64(id)+1)),
	}
}

// ID returns the client's fabric-unique ID (also its lock-lease owner ID).
func (c *Client) ID() int { return c.id }

// Rand64 draws from the client's private deterministic stream; retry
// policies use it for jitter so backoff sequences are reproducible.
func (c *Client) Rand64() uint64 { return splitmix64(&c.rng) }

// Kill marks the client crashed: every subsequent verb fails with
// ErrClientCrashed. Tests use it to abandon a client mid-protocol.
func (c *Client) Kill() { c.crashed = true }

// Crashed reports whether the client has passed its crash point.
func (c *Client) Crashed() bool { return c.crashed }

// Clock returns the client's virtual time in picoseconds.
func (c *Client) Clock() int64 { return c.clock }

// AdvanceClock adds local (CN-side) compute time to the client's clock.
// Index code uses it to charge non-network work such as hashing.
func (c *Client) AdvanceClock(ps int64) { c.clock += ps }

// Stats returns a snapshot of the client's accounting. The fields are
// loaded atomically so a metrics scrape may call this concurrently with
// the goroutine driving the client.
func (c *Client) Stats() Stats {
	var s Stats
	s.RoundTrips = atomic.LoadUint64(&c.stats.RoundTrips)
	s.Verbs = atomic.LoadUint64(&c.stats.Verbs)
	s.BytesRead = atomic.LoadUint64(&c.stats.BytesRead)
	s.BytesWrite = atomic.LoadUint64(&c.stats.BytesWrite)
	for i := range s.ByKind {
		s.ByKind[i] = atomic.LoadUint64(&c.stats.ByKind[i])
	}
	s.Transients = atomic.LoadUint64(&c.stats.Transients)
	s.Timeouts = atomic.LoadUint64(&c.stats.Timeouts)
	s.NodeDownRejects = atomic.LoadUint64(&c.stats.NodeDownRejects)
	s.HealthRejects = atomic.LoadUint64(&c.stats.HealthRejects)
	s.Delays = atomic.LoadUint64(&c.stats.Delays)
	return s
}

// RoundTrips returns the client's round-trip count without copying the
// whole Stats struct; per-op metric deltas read it on the hot path.
func (c *Client) RoundTrips() uint64 { return atomic.LoadUint64(&c.stats.RoundTrips) }

// SetStage annotates the client with the stage its next batches serve and
// returns the previous stage, enabling the save/restore idiom
//
//	defer c.SetStage(c.SetStage(fabric.StageLeafRead))
//
// without any allocation.
func (c *Client) SetStage(s Stage) Stage {
	prev := c.stage
	c.stage = s
	return prev
}

// Stage returns the client's current stage annotation.
func (c *Client) Stage() Stage { return c.stage }

// SetObserver installs a per-batch observer (nil uninstalls). On a
// pipeline lane the observer sees the lane's share of each coalesced
// flush with RoundTrips == 0; on the flushing main client it sees the
// whole flush under StageFlush.
func (c *Client) SetObserver(o BatchObserver) { c.obs = o }

// Observer returns the installed per-batch observer, if any.
func (c *Client) Observer() BatchObserver { return c.obs }

// Fabric returns the fabric the client is attached to.
func (c *Client) Fabric() *Fabric { return c.f }

// Batch posts the given verbs as one doorbell batch: a single round trip,
// regardless of how many verbs or how many memory nodes it spans (verbs to
// different nodes are issued in parallel). Results for CAS/FAA are written
// into each Op's Old field; Read destinations are filled in place.
//
// This is the primitive behind the paper's "reading all these hash entries
// can be performed in a single round trip" (§III-A) and its piggybacked
// lock acquisition/release (§IV).
func (c *Client) Batch(ops []Op) error {
	if c.pipe != nil {
		return c.pipe.submit(c, ops)
	}
	_, err := c.run(ops)
	return err
}

// nodeShare accumulates one target NIC's slice of a batch.
type nodeShare struct {
	node  mem.NodeID
	cost  int64
	verbs int
	bytes uint64
}

// run executes ops on this client, reporting how many leading verbs
// actually moved data. The count is what a coalescing pipe needs to
// demultiplex a partial (transient) failure back onto the in-flight
// operations that contributed verbs to the batch; Batch callers only see
// the error. The no-batch split and observer notification live here, so
// each physical doorbell batch (one runBatch call) produces exactly one
// BatchEvent.
func (c *Client) run(ops []Op) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if c.noBatch && len(ops) > 1 {
		done := 0
		for i := range ops {
			n, err := c.run(ops[i : i+1])
			done += n
			if err != nil {
				return done, err
			}
		}
		return done, nil
	}
	if c.obs == nil {
		return c.runBatch(ops)
	}
	startPs := c.clock
	rt0 := atomic.LoadUint64(&c.stats.RoundTrips)
	n, err := c.runBatch(ops)
	var bytes uint64
	for i := 0; i < n; i++ {
		bytes += opBytes(&ops[i])
	}
	c.obs.ObserveBatch(BatchEvent{
		Stage:      c.stage,
		StartPs:    startPs,
		EndPs:      c.clock,
		Verbs:      n,
		Bytes:      bytes,
		RoundTrips: atomic.LoadUint64(&c.stats.RoundTrips) - rt0,
		Err:        err,
	})
	return n, err
}

// runBatch executes ops as one physical doorbell batch.
func (c *Client) runBatch(ops []Op) (int, error) {
	if c.crashed {
		return 0, faultErr(ErrClientCrashed, "client %d", c.id)
	}
	cfg := c.f.cfg
	start := c.clock + cfg.ClientVerbPs*int64(len(ops))

	// Charge each target NIC once per batch with that node's share. A
	// batch rarely spans more than a few nodes, so a small linear table
	// (stack-allocated, unlike a map) holds the shares; it is kept sorted
	// by node ID so the reservation order is deterministic.
	var shareBuf [4]nodeShare
	shares := shareBuf[:0]
	for i := range ops {
		op := &ops[i]
		b := opBytes(op)
		node := op.Addr.Node()
		var sh *nodeShare
		for j := range shares {
			if shares[j].node == node {
				sh = &shares[j]
				break
			}
		}
		if sh == nil {
			shares = append(shares, nodeShare{node: node})
			sh = &shares[len(shares)-1]
		}
		sh.cost += cfg.PerVerbPs + (cfg.PerByteFs*int64(b)+999)/1000
		sh.verbs++
		sh.bytes += b
	}
	for i := 1; i < len(shares); i++ {
		for j := i; j > 0 && shares[j].node < shares[j-1].node; j-- {
			shares[j], shares[j-1] = shares[j-1], shares[j]
		}
	}

	// Permanent-kill and breaker checks come first: they are independent
	// of the fault plan (KillNode works on a plan-free fabric) and, when
	// gating is on, reject locally before any virtual time is spent.
	h := c.f.health
	for _, sh := range shares {
		if c.f.NodeKilled(sh.node) {
			if h.Gated() && h.State(sh.node) == HealthDead {
				// Known dead: the CN-side breaker rejects before posting,
				// costing nothing — the fail-fast path failover relies on.
				atomic.AddUint64(&c.stats.HealthRejects, 1)
				return 0, faultErr(ErrNodeKilled, "node %d (breaker dead)", sh.node)
			}
			// Discovery: contacting the dead node costs one round trip of
			// waiting, then the shared breaker learns the death.
			atomic.AddUint64(&c.stats.NodeDownRejects, 1)
			if n, err := c.f.node(sh.node); err == nil {
				n.nic.chargeFault()
			}
			c.clock += cfg.RTTPs
			h.MarkDead(sh.node)
			return 0, faultErr(ErrNodeKilled, "node %d", sh.node)
		}
		if h.Gated() {
			if ok, dead := h.admit(sh.node); !ok {
				atomic.AddUint64(&c.stats.HealthRejects, 1)
				if dead {
					return 0, faultErr(ErrNodeKilled, "node %d (breaker dead)", sh.node)
				}
				return 0, faultErr(ErrBreakerOpen, "node %d", sh.node)
			}
		}
	}

	// Fault decisions happen before any byte moves, in a fixed order, so
	// the injected sequence is a pure function of (plan seed, client ID,
	// batch sequence) and never of goroutine scheduling.
	execUpTo := len(ops)
	var faultRes error
	var extraPs int64
	if plan := c.plan; plan != nil {
		if limit, ok := plan.CrashAfterVerbs[c.id]; ok && c.posted+uint64(len(ops)) > limit {
			// The batch carrying the Nth posted verb executes only up to
			// it; the client is dead from here on, taking any locks it
			// holds to the grave.
			rem := 0
			if limit > c.posted {
				rem = int(limit - c.posted)
			}
			for i := 0; i < rem; i++ {
				if err := c.execute(&ops[i]); err != nil {
					return i, err
				}
			}
			c.posted = limit
			c.crashed = true
			return rem, faultErr(ErrClientCrashed, "client %d crashed after verb %d", c.id, limit)
		}
		for _, sh := range shares {
			if w, down := plan.downNode(sh.node, c.clock); down {
				atomic.AddUint64(&c.stats.NodeDownRejects, 1)
				if n, err := c.f.node(sh.node); err == nil {
					n.nic.chargeFault()
				}
				// The rejected attempt still costs a round trip of waiting.
				c.clock += cfg.RTTPs
				h.ReportFailure(sh.node)
				return 0, faultErr(ErrNodeDown, "node %d down [%dps,%dps)", sh.node, w.FromPs, w.ToPs)
			}
		}
		// Seeded rolls, always three per batch and always in this order,
		// so one roll's outcome never shifts the stream of the others.
		rT, rTo, rD := splitmix64(&c.rng), splitmix64(&c.rng), splitmix64(&c.rng)
		switch {
		case uint32(rT&0xffff) < plan.TransientPer64k:
			execUpTo = int((rT >> 16) % uint64(len(ops)))
			atomic.AddUint64(&c.stats.Transients, 1)
			faultRes = faultErr(ErrTransient, "verb %d/%d %v", execUpTo, len(ops), ops[execUpTo].Kind)
		case uint32(rTo&0xffff) < plan.TimeoutPer64k:
			atomic.AddUint64(&c.stats.Timeouts, 1)
			extraPs = plan.timeoutPs()
			for _, sh := range shares {
				h.ReportFailure(sh.node)
			}
			faultRes = faultErr(ErrTimeout, "batch of %d verbs", len(ops))
		case uint32(rD&0xffff) < plan.DelayPer64k:
			atomic.AddUint64(&c.stats.Delays, 1)
			extraPs = plan.delayPs()
		}
		if faultRes != nil {
			for _, sh := range shares {
				if n, err := c.f.node(sh.node); err == nil {
					n.nic.chargeFault()
				}
			}
		}
	}

	// The batch's one round trip is attributed to the NIC that gates its
	// completion: the share with the latest reservation finish (ties
	// break to the lowest node ID, since shares are sorted). Every path
	// that returns before this loop charges neither the client round
	// trip nor any NIC, so Σ per-NIC rts == Σ client RoundTrips holds
	// unconditionally, faults included.
	completion := start
	var gate *nic
	for i := range shares {
		sh := &shares[i]
		n, err := c.f.node(sh.node)
		if err != nil {
			return 0, err
		}
		s := n.nic.reserve(start, sh.cost, sh.verbs, sh.bytes)
		if gate == nil {
			gate = &n.nic
		}
		if fin := s + sh.cost + cfg.RTTPs; fin > completion {
			completion = fin
			gate = &n.nic
		}
	}
	if gate != nil {
		gate.chargeRT()
	}

	// Execute the data movement. Within a batch, verbs execute in posting
	// order (RDMA guarantees ordering within one QP). A transient fault
	// truncates execution at the failing verb; a timeout executes fully
	// but the client never learns the outcome.
	for i := 0; i < execUpTo; i++ {
		if err := c.execute(&ops[i]); err != nil {
			return i, err
		}
	}

	c.posted += uint64(execUpTo)
	c.clock = completion + extraPs
	atomic.AddUint64(&c.stats.RoundTrips, 1)
	atomic.AddUint64(&c.stats.Verbs, uint64(execUpTo))
	if faultRes == nil {
		for _, sh := range shares {
			h.ReportSuccess(sh.node)
		}
	}
	return execUpTo, faultRes
}

func (c *Client) execute(op *Op) error {
	n, err := c.f.node(op.Addr.Node())
	if err != nil {
		return err
	}
	r := n.region
	off := op.Addr.Offset()
	switch op.Kind {
	case Read:
		r.Read(off, op.Data)
		atomic.AddUint64(&c.stats.BytesRead, uint64(len(op.Data)))
	case Write:
		r.Write(off, op.Data)
		atomic.AddUint64(&c.stats.BytesWrite, uint64(len(op.Data)))
	case CAS:
		op.Old = r.CompareSwap(off, op.Expect, op.Desired)
		atomic.AddUint64(&c.stats.BytesWrite, 8)
	case FAA:
		op.Old = r.FetchAdd(off, op.Delta)
		atomic.AddUint64(&c.stats.BytesWrite, 8)
	default:
		return fmt.Errorf("fabric: unknown verb %d", op.Kind)
	}
	atomic.AddUint64(&c.stats.ByKind[op.Kind], 1)
	if c.f.Trace != nil {
		c.f.Trace(c, op)
	}
	return nil
}

// Read fetches len(dst) bytes at addr in one round trip.
func (c *Client) Read(addr mem.Addr, dst []byte) error {
	return c.Batch([]Op{{Kind: Read, Addr: addr, Data: dst}})
}

// Write stores src at addr in one round trip.
func (c *Client) Write(addr mem.Addr, src []byte) error {
	return c.Batch([]Op{{Kind: Write, Addr: addr, Data: src}})
}

// ReadUint64 fetches the 8-byte word at addr.
func (c *Client) ReadUint64(addr mem.Addr) (uint64, error) {
	var buf [8]byte
	if err := c.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteUint64 stores an 8-byte word at addr. The store is atomic because it
// fits in one line (RDMA writes up to 8 B are atomic on Mellanox NICs).
func (c *Client) WriteUint64(addr mem.Addr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return c.Write(addr, buf[:])
}

// CompareSwap executes an RDMA CAS and returns the pre-image. The swap
// succeeded iff the returned value equals expect.
func (c *Client) CompareSwap(addr mem.Addr, expect, desired uint64) (uint64, error) {
	ops := []Op{{Kind: CAS, Addr: addr, Expect: expect, Desired: desired}}
	if err := c.Batch(ops); err != nil {
		return 0, err
	}
	return ops[0].Old, nil
}

// FetchAdd executes an RDMA FAA and returns the pre-image. Together with
// ReadUint64 it satisfies mem.RemoteOps, so a mem.Allocator can run over a
// client and pay real round trips.
func (c *Client) FetchAdd(addr mem.Addr, delta uint64) (uint64, error) {
	ops := []Op{{Kind: FAA, Addr: addr, Delta: delta}}
	if err := c.Batch(ops); err != nil {
		return 0, err
	}
	return ops[0].Old, nil
}
