// Per-MN health tracking: a circuit breaker over each memory node, fed by
// the node-down rejections and completion timeouts this fabric's clients
// observe. With gating enabled, batches targeting a node whose breaker is
// open are rejected locally — at zero virtual-time cost, the way a real CN
// would consult a connection-state table before posting a WQE — so
// replica-aware callers can fail over in one decision instead of
// exhausting a backoff budget against a dead node.
//
// The tracker is shared by every client of a fabric (it models the CN-side
// health service a production deployment would gossip), is safe for
// concurrent use, and is purely observational until EnableGating(true):
// feeding it costs a few atomics and never perturbs virtual clocks, so
// fault-free workloads keep byte-identical timing.
package fabric

import (
	"sync/atomic"

	"sphinx/internal/mem"
)

// HealthState is one memory node's breaker state.
type HealthState uint32

// Breaker states.
const (
	// HealthClosed: the node is believed healthy; all traffic admitted.
	HealthClosed HealthState = iota
	// HealthOpen: recent failures tripped the breaker; traffic is rejected
	// locally except for periodic half-open probes.
	HealthOpen
	// HealthDead: the node is known permanently lost (killed); all traffic
	// is rejected, no probes.
	HealthDead
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case HealthClosed:
		return "closed"
	case HealthOpen:
		return "open"
	case HealthDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Breaker tuning: failThreshold consecutive down/timeout observations open
// a node's breaker; while open, every probeInterval-th admission attempt is
// let through as a half-open probe (one success closes the breaker again).
const (
	failThreshold = 8
	probeInterval = 8
)

// Health is the fabric-wide per-MN breaker table.
type Health struct {
	gated    uint32
	state    [mem.MaxNodes]uint32
	fails    [mem.MaxNodes]uint32
	attempts [mem.MaxNodes]uint32
}

// NewHealth returns a tracker with every node closed and gating off.
func NewHealth() *Health { return &Health{} }

// EnableGating turns breaker enforcement on or off. Off (the default), the
// tracker only records observations.
func (h *Health) EnableGating(on bool) {
	v := uint32(0)
	if on {
		v = 1
	}
	atomic.StoreUint32(&h.gated, v)
}

// Gated reports whether breaker enforcement is on.
func (h *Health) Gated() bool { return atomic.LoadUint32(&h.gated) != 0 }

// State returns the node's current breaker state.
func (h *Health) State(node mem.NodeID) HealthState {
	return HealthState(atomic.LoadUint32(&h.state[node]))
}

// Alive reports whether the node is not known permanently dead. Placement
// decisions (replica selection, repair targets) filter on it.
func (h *Health) Alive(node mem.NodeID) bool { return h.State(node) != HealthDead }

// ReportFailure records one down/timeout observation against the node;
// failThreshold consecutive observations open its breaker.
func (h *Health) ReportFailure(node mem.NodeID) {
	if atomic.AddUint32(&h.fails[node], 1) >= failThreshold {
		atomic.CompareAndSwapUint32(&h.state[node], uint32(HealthClosed), uint32(HealthOpen))
	}
}

// ReportSuccess records a clean batch against the node: the failure streak
// resets and an open breaker closes. A dead node stays dead.
func (h *Health) ReportSuccess(node mem.NodeID) {
	atomic.StoreUint32(&h.fails[node], 0)
	atomic.CompareAndSwapUint32(&h.state[node], uint32(HealthOpen), uint32(HealthClosed))
}

// MarkDead records the node as permanently lost. Terminal: no probe or
// success resurrects it.
func (h *Health) MarkDead(node mem.NodeID) {
	atomic.StoreUint32(&h.state[node], uint32(HealthDead))
}

// admit decides whether a batch may target the node under gating.
// Closed admits; dead rejects; open rejects except every probeInterval-th
// attempt, which goes through as a half-open probe.
func (h *Health) admit(node mem.NodeID) (ok, dead bool) {
	switch h.State(node) {
	case HealthClosed:
		return true, false
	case HealthDead:
		return false, true
	default:
		return atomic.AddUint32(&h.attempts[node], 1)%probeInterval == 0, false
	}
}
