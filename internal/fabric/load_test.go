package fabric

import (
	"testing"

	"sphinx/internal/mem"
)

// burn posts n sizeable reads at node, accruing NIC busy (and, once
// saturated, queued-wait) time.
func burn(t *testing.T, c *Client, node mem.NodeID, n int) {
	t.Helper()
	buf := make([]byte, 32<<10)
	for i := 0; i < n; i++ {
		if err := c.Read(mem.NewAddr(node, 0), buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadCacheScoresLoadedNode pins the signal: after one-sided load on
// node A, the refreshed snapshot scores A above the idle node B.
func TestLoadCacheScoresLoadedNode(t *testing.T) {
	f := New(DefaultConfig())
	a := f.AddNode(1 << 20)
	b := f.AddNode(1 << 20)
	c := f.NewClient()
	lc := f.NewLoadCache(0)
	burn(t, c, a, 50)
	lc.Refresh()
	if sa, sb := lc.Score(a), lc.Score(b); sa <= sb {
		t.Errorf("Score(loaded)=%d <= Score(idle)=%d", sa, sb)
	}
	if got := lc.PickLighter(a, b); got != b {
		t.Errorf("PickLighter(loaded, idle) = %d, want %d", got, b)
	}
	// Ties (and a lighter first argument) prefer the first argument.
	if got := lc.PickLighter(b, a); got != b {
		t.Errorf("PickLighter(idle, loaded) = %d, want %d", got, b)
	}
}

// TestLoadCacheConvergesAwayFromLoadedMN drives the power-of-two-choices
// loop the hot read path runs: traffic follows PickLighter, each request
// loads the chosen node, and the cache's periodic refresh re-scores. The
// imbalance must converge — the initially idle node absorbs the bulk of
// the early picks, and over the whole run neither node ends up with the
// overwhelming majority that static routing to the primary would give.
func TestLoadCacheConvergesAwayFromLoadedMN(t *testing.T) {
	f := New(DefaultConfig())
	a := f.AddNode(1 << 20)
	b := f.AddNode(1 << 20)
	c := f.NewClient()
	// Refresh every 8 decisions so the window tracks the routed traffic.
	lc := f.NewLoadCache(8)
	// Pre-load node A: the hotspot the chooser must route around.
	burn(t, c, a, 100)
	lc.Refresh()
	picks := map[mem.NodeID]int{}
	for i := 0; i < 200; i++ {
		n := lc.PickLighter(a, b)
		picks[n]++
		burn(t, c, n, 1)
	}
	if picks[b] == 0 {
		t.Fatal("chooser never routed away from the pre-loaded node")
	}
	// The first picks after the pre-load must go to B (A's window is hot).
	// Over the run, feedback balances the two: neither should keep more
	// than ~3/4 of the traffic.
	if picks[a] > 150 || picks[b] > 150 {
		t.Errorf("picks did not converge: a=%d b=%d (want both <= 150/200)", picks[a], picks[b])
	}
}
