// Fault injection: a deterministic, seeded fault model the fabric consults
// on every doorbell batch, so the client stack's retry and recovery paths
// can be exercised reproducibly (docs/failure-model.md).
//
// Faults are decided per client from a private splitmix64 stream seeded by
// (plan seed, client ID), so the fault sequence one client observes depends
// only on the plan and on that client's own batch sequence — never on
// goroutine scheduling. The same seed therefore yields the same fault
// sequence, and for a single-threaded workload the same final index state.
package fabric

import (
	"errors"
	"fmt"

	"sphinx/internal/mem"
)

// Typed fault errors. ErrTransient, ErrTimeout and ErrNodeDown are
// retriable: higher layers back off and redo the operation. ErrClientCrashed
// is terminal: the client is dead and every subsequent verb fails.
var (
	// ErrTransient is a verb that the NIC completed with an error (RNR
	// NAK, ECC hiccup, dropped ACK on a reliable QP after retries). Verbs
	// posted before the failing one in the same batch have executed; the
	// failing verb and everything after it have not.
	ErrTransient = errors.New("fabric: transient verb failure")
	// ErrTimeout is a lost completion: the batch executed on the memory
	// node, but the client never saw the CQE. The client's clock advances
	// by the timeout before it gives up — the outcome is in doubt.
	ErrTimeout = errors.New("fabric: completion timed out")
	// ErrNodeDown is returned for any verb targeting a memory node inside
	// one of the plan's down windows. Nothing executes.
	ErrNodeDown = errors.New("fabric: memory node down")
	// ErrClientCrashed is returned once a client passed its planned crash
	// point (and forever after): the compute node died mid-operation.
	ErrClientCrashed = errors.New("fabric: client crashed")
)

// ErrNodeKilled is returned for any verb targeting a permanently killed
// memory node (Fabric.KillNode). It wraps ErrNodeDown so existing
// retriable-error classification still matches, but replica-aware layers
// match ErrNodeKilled specifically to fail over in one decision instead of
// burning a retry budget on a node that will never come back.
var ErrNodeKilled = fmt.Errorf("fabric: memory node killed (permanent): %w", ErrNodeDown)

// ErrBreakerOpen is returned for a batch rejected locally because the
// target node's health breaker is open (gating enabled, node suspected
// down but not known dead). It wraps ErrNodeDown for retriable-error
// classification; replica-aware layers match it to fail over immediately
// instead of sleeping out a backoff schedule against a suspect node.
var ErrBreakerOpen = fmt.Errorf("fabric: health breaker open: %w", ErrNodeDown)

// DownWindow marks one memory node unreachable for a window of virtual
// time. The window is judged against the observing client's clock, keeping
// the decision deterministic per client.
type DownWindow struct {
	Node   mem.NodeID
	FromPs int64
	ToPs   int64
}

// FaultPlan is a seeded, reproducible fault schedule. Probabilities are
// per doorbell batch, in parts per 65536, decided from the per-client
// stream in a fixed order (transient, timeout, delay) so outcomes never
// depend on which roll fired first. The zero plan injects nothing.
//
// Install a plan with Fabric.SetFaultPlan before creating clients.
type FaultPlan struct {
	Seed uint64

	// TransientPer64k is the chance (out of 65536) that a batch fails
	// with ErrTransient after a prefix of its verbs executed.
	TransientPer64k uint32
	// TimeoutPer64k is the chance that a batch executes fully but its
	// completion is lost (ErrTimeout).
	TimeoutPer64k uint32
	// TimeoutPs is how much the client's clock advances waiting for a
	// lost completion. Defaults to DefaultTimeoutPs.
	TimeoutPs int64
	// DelayPer64k is the chance of a latency spike: the batch succeeds
	// but completes DelayPs late.
	DelayPer64k uint32
	// DelayPs is the extra completion latency of a spike. Defaults to
	// DefaultDelayPs.
	DelayPs int64

	// Down lists node-down windows.
	Down []DownWindow

	// CrashAfterVerbs kills a client (by ID) after it has posted the
	// given number of verbs: the batch containing the Nth verb executes
	// only up to verb N, then the client is dead — including any verbs
	// that would have released locks it holds.
	CrashAfterVerbs map[int]uint64
}

// Default fault timing parameters (virtual time).
const (
	DefaultTimeoutPs = 8_000_000  // 8 µs: ~4 RTTs of waiting before giving up
	DefaultDelayPs   = 20_000_000 // 20 µs spike, an order above the base RTT
)

func (p *FaultPlan) timeoutPs() int64 {
	if p.TimeoutPs <= 0 {
		return DefaultTimeoutPs
	}
	return p.TimeoutPs
}

func (p *FaultPlan) delayPs() int64 {
	if p.DelayPs <= 0 {
		return DefaultDelayPs
	}
	return p.DelayPs
}

// downNode returns the down window covering (node, nowPs), if any.
func (p *FaultPlan) downNode(node mem.NodeID, nowPs int64) (DownWindow, bool) {
	for _, w := range p.Down {
		if w.Node == node && nowPs >= w.FromPs && nowPs < w.ToPs {
			return w, true
		}
	}
	return DownWindow{}, false
}

// splitmix64 is the per-client deterministic fault/jitter stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// mix64 scrambles a seed; used to derive per-client streams.
func mix64(v uint64) uint64 {
	s := v
	return splitmix64(&s)
}

// faultErr wraps a typed fault error with batch context.
func faultErr(base error, format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), base)
}
