package fabric

import (
	"errors"
	"sort"
	"sync"
)

// Pipe coalesces the doorbell batches of several concurrent in-flight
// operations into shared flushes, filling the RTT window that a strictly
// sequential client leaves idle (§III's three-round-trip path becomes
// three *shared* round trips for a whole window of operations).
//
// Each in-flight operation runs on its own lane: a full fabric client
// with its own ID (so lock leases name the true owner), its own
// deterministic jitter stream and its own virtual clock. A lane's Batch
// calls block in submit until every other runnable lane has also posted
// its next batch; the pipe then merges all pending batches — ordered by
// lane ID, so the merged verb sequence is independent of goroutine
// scheduling — and executes them as ONE doorbell batch on the main
// client. One flush, one round trip, one set of fault rolls.
//
// Accounting invariants:
//   - All network statistics (round trips, verbs, bytes, fault counters)
//     accrue on the main client only; lanes stay at zero. A session's
//     Stats therefore remain exact whether its ops ran sequentially or
//     pipelined, and RoundTrips counts flushes — the quantity the paper's
//     per-op analysis is phrased in.
//   - Virtual time: a flush departs when its last participant has posted
//     (max over lane clocks) and every participant resumes at the shared
//     completion time, exactly as if each had posted the merged batch.
//
// Fault demultiplexing: a transient fault truncates the merged batch at
// one verb; lanes whose verbs all executed before the truncation point
// observed complete successful completions and proceed, while the rest
// see ErrTransient and retry independently (per-lane backoff, per-lane
// jitter). Timeouts, node-down rejections and client crashes are
// batch-wide: every participant sees the error, as it would have
// sequentially.
type Pipe struct {
	main *Client

	mu      sync.Mutex
	active  int
	waiting []*pipeCall

	flushes   uint64
	merged    uint64 // flushes that carried more than one lane's batch
	coalesced uint64 // verbs that rode a shared flush
}

// pipeCall is one lane's pending doorbell batch; done carries the lane's
// demultiplexed completion status. The lane's stage annotation and clock
// are captured at submit time so the observer event reflects what the
// lane was doing when it posted, not the merged flush.
type pipeCall struct {
	lane    *Client
	ops     []Op
	done    chan error
	stage   Stage
	startPs int64
}

// NewPipe creates a coalescer that flushes on the given client. The main
// client must not itself be a lane. Flushes carry verbs from mixed
// stages, so the main client's batches are annotated StageFlush; per-
// stage attribution comes from the lanes' own observer events.
func NewPipe(main *Client) *Pipe {
	if main.pipe != nil {
		panic("fabric: NewPipe on a pipeline lane")
	}
	main.SetStage(StageFlush)
	return &Pipe{main: main}
}

// Main returns the client flushes execute (and account) on.
func (p *Pipe) Main() *Client { return p.main }

// NewLane creates a lane client: a full fabric client whose doorbell
// batches are redirected into the pipe's shared flushes. The lane starts
// at the main client's current virtual time.
func (p *Pipe) NewLane() *Client {
	lane := p.main.f.NewClient()
	lane.pipe = p
	lane.clock = p.main.clock
	return lane
}

// BeginLanes opens a pipelined run: the given lanes are declared
// runnable, and no flush fires until each of them has either posted a
// batch (submit) or retired (Done). Lanes are synced forward to the main
// clock so a reused lane does not reach back in virtual time.
func (p *Pipe) BeginLanes(lanes []*Client) {
	p.mu.Lock()
	for _, l := range lanes {
		if l.pipe != p {
			p.mu.Unlock()
			panic("fabric: BeginLanes with a foreign lane")
		}
		if l.clock < p.main.clock {
			l.clock = p.main.clock
		}
	}
	p.active += len(lanes)
	p.mu.Unlock()
}

// Done retires one lane from the current run. Its virtual time folds
// into the main clock (the run lasts until its slowest lane finishes),
// and if every remaining runnable lane is already waiting, the flush the
// retiree was holding back fires now.
func (p *Pipe) Done(lane *Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active <= 0 {
		panic("fabric: Pipe.Done without matching BeginLanes")
	}
	if lane.clock > p.main.clock {
		p.main.clock = lane.clock
	}
	p.active--
	if p.active > 0 && len(p.waiting) >= p.active {
		p.flushLocked()
	}
}

// Flushes returns how many doorbell flushes the pipe has executed; each
// cost exactly one round trip on the main client.
func (p *Pipe) Flushes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushes
}

// Coalesced returns how many flushes merged more than one lane's batch
// and how many verbs rode those shared flushes — the savings the
// round-trip accounting tests assert on.
func (p *Pipe) Coalesced() (flushes, verbs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.merged, p.coalesced
}

// submit hands one lane's doorbell batch to the pipe and blocks the
// lane's goroutine until the flush carrying it completes. The last
// runnable lane to arrive triggers the flush. Outside a BeginLanes/Done
// window a batch flushes immediately, so a lone lane behaves exactly
// like a sequential client.
func (p *Pipe) submit(lane *Client, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	call := &pipeCall{
		lane: lane, ops: ops, done: make(chan error, 1),
		stage: lane.stage, startPs: lane.clock,
	}
	p.mu.Lock()
	p.waiting = append(p.waiting, call)
	if len(p.waiting) >= p.active {
		p.flushLocked()
	}
	p.mu.Unlock()
	return <-call.done
}

// flushLocked merges every pending batch into one doorbell batch on the
// main client and demultiplexes the completion. Caller holds p.mu.
func (p *Pipe) flushLocked() {
	calls := p.waiting
	p.waiting = nil
	if len(calls) == 0 {
		return
	}
	// Lane-ID order makes the merged verb sequence (and therefore NIC
	// timing, fault rolls and CAS outcomes) a pure function of the lanes'
	// batch streams, never of goroutine scheduling.
	sort.Slice(calls, func(i, j int) bool { return calls[i].lane.id < calls[j].lane.id })

	// The doorbell rings when the last participant posts.
	total := 0
	for _, cl := range calls {
		if cl.lane.clock > p.main.clock {
			p.main.clock = cl.lane.clock
		}
		total += len(cl.ops)
	}

	merged := calls[0].ops
	if len(calls) > 1 {
		merged = make([]Op, 0, total)
		for _, cl := range calls {
			merged = append(merged, cl.ops...)
		}
	}

	executed, err := p.main.run(merged)

	p.flushes++
	if len(calls) > 1 {
		p.merged++
		p.coalesced += uint64(total)
		// Copy CAS/FAA pre-images back into the callers' op slices (READ
		// destinations alias the callers' buffers already).
		off := 0
		for _, cl := range calls {
			for i := range cl.ops {
				cl.ops[i].Old = merged[off+i].Old
			}
			off += len(cl.ops)
		}
	}

	off := 0
	for _, cl := range calls {
		end := off + len(cl.ops)
		cerr := err
		if err != nil && errors.Is(err, ErrTransient) && end <= executed {
			// Every verb this lane contributed executed before the batch
			// died, so the lane observed a complete successful completion.
			// (Timeouts, node-down windows and crashes stay batch-wide:
			// those lose or reject the whole completion.)
			cerr = nil
		}
		cl.lane.clock = p.main.clock
		// Notify the lane's observer before releasing the lane goroutine:
		// the send on done is the happens-before edge that lets a
		// non-concurrency-safe observer (a trace recorder) be read by the
		// resuming lane. RoundTrips is 0 — the flush accounted its single
		// round trip on the main client's own event.
		if o := cl.lane.obs; o != nil {
			var bytes uint64
			executedHere := len(cl.ops)
			if end > executed {
				executedHere = executed - off
				if executedHere < 0 {
					executedHere = 0
				}
			}
			for i := 0; i < executedHere; i++ {
				bytes += opBytes(&cl.ops[i])
			}
			o.ObserveBatch(BatchEvent{
				Stage:   cl.stage,
				StartPs: cl.startPs,
				EndPs:   p.main.clock,
				Verbs:   executedHere,
				Bytes:   bytes,
				Err:     cerr,
			})
		}
		cl.done <- cerr
		off = end
	}
}
